package gasf

import (
	"fmt"
	"time"

	"gasf/internal/seglog"
)

// Functional options configure the Broker constructors, replacing the
// flag-bag Options struct at the facade boundary. Options that shape the
// engine or the runtime (shards, queues, algorithm, policy) apply to
// NewEmbedded — a dialed broker's server owns that configuration, so
// passing them to Dial is an error rather than a silent no-op.
// WithQueueDepth is also a SubOption: on a subscription it bounds that
// session's delivery queue on either transport.

// brokerConfig is the resolved option set.
type brokerConfig struct {
	remote      bool // set by Dial before options apply
	engine      Options
	subQueue    int
	maxSubQueue int
	policy      SlowPolicy
	dialTimeout time.Duration
	dataDir     string
	seglog      seglog.Options
	telemetry   int
	srcTimeout  time.Duration
	scanEvery   time.Duration
	err         error
}

func (c *brokerConfig) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("gasf: "+format, args...)
	}
}

// Option configures a Broker constructor (NewEmbedded or Dial).
type Option interface{ applyBroker(*brokerConfig) }

// subConfig is the resolved per-subscription option set.
type subConfig struct {
	queue      int
	resume     bool
	resumeFrom uint64
	err        error
}

// SubOption configures one Subscribe call.
type SubOption interface{ applySub(*subConfig) }

// BrokerSubOption is an option meaningful both at broker construction
// and on an individual subscription (WithQueueDepth).
type BrokerSubOption interface {
	Option
	SubOption
}

// embeddedOption is an Option valid only for NewEmbedded.
type embeddedOption struct {
	name string
	f    func(*brokerConfig)
}

func (o embeddedOption) applyBroker(c *brokerConfig) {
	if c.remote {
		c.fail("option %s does not apply to a dialed broker: the server owns its engine and runtime configuration", o.name)
		return
	}
	o.f(c)
}

// remoteOption is an Option valid only for Dial.
type remoteOption struct {
	name string
	f    func(*brokerConfig)
}

func (o remoteOption) applyBroker(c *brokerConfig) {
	if !c.remote {
		c.fail("option %s only applies to a dialed broker", o.name)
		return
	}
	o.f(c)
}

// WithShards sets the number of worker shards sources are
// hash-partitioned onto; 0 means GOMAXPROCS.
func WithShards(n int) Option {
	return embeddedOption{"WithShards", func(c *brokerConfig) {
		if n < 0 {
			c.fail("WithShards(%d): shard count cannot be negative", n)
			return
		}
		c.engine.ShardCount = n
	}}
}

// WithFlushBatch sets the released-transmission batch size per shard
// flush; 0 means the runtime default.
func WithFlushBatch(n int) Option {
	return embeddedOption{"WithFlushBatch", func(c *brokerConfig) {
		if n < 0 {
			c.fail("WithFlushBatch(%d): batch cannot be negative", n)
			return
		}
		c.engine.FlushBatch = n
	}}
}

// queueDepthOption carries WithQueueDepth to both scopes.
type queueDepthOption int

func (n queueDepthOption) applyBroker(c *brokerConfig) {
	if c.remote {
		c.fail("option WithQueueDepth does not apply to a dialed broker (pass it to Subscribe to size that session's delivery queue)")
		return
	}
	if n <= 0 {
		c.fail("WithQueueDepth(%d): depth must be positive", int(n))
		return
	}
	c.engine.QueueDepth = int(n)
}

func (n queueDepthOption) applySub(c *subConfig) {
	if n <= 0 {
		if c.err == nil {
			c.err = fmt.Errorf("gasf: WithQueueDepth(%d): depth must be positive", int(n))
		}
		return
	}
	c.queue = int(n)
}

// WithQueueDepth bounds a queue, by scope: as a broker option it sets
// the per-shard input ring depth of an embedded broker; as a
// subscription option it sets that session's delivery queue depth —
// how many deliveries are buffered before the slow-consumer policy
// applies — on either transport (the networked path relays it in the
// subscriber hello, clamped by the server's MaxSubscriberQueue).
func WithQueueDepth(n int) BrokerSubOption { return queueDepthOption(n) }

// WithSubscriberQueue sets the default delivery queue depth for
// subscriptions that do not request their own with WithQueueDepth.
func WithSubscriberQueue(n int) Option {
	return embeddedOption{"WithSubscriberQueue", func(c *brokerConfig) {
		if n <= 0 {
			c.fail("WithSubscriberQueue(%d): depth must be positive", n)
			return
		}
		c.subQueue = n
	}}
}

// WithMaxSubscriberQueue caps the per-subscription queue depth a
// Subscribe may request (memory protection).
func WithMaxSubscriberQueue(n int) Option {
	return embeddedOption{"WithMaxSubscriberQueue", func(c *brokerConfig) {
		if n <= 0 {
			c.fail("WithMaxSubscriberQueue(%d): depth must be positive", n)
			return
		}
		c.maxSubQueue = n
	}}
}

// WithSlowPolicy selects how a full subscription delivery queue is
// treated: PolicyBlock applies backpressure up to the publishers,
// PolicyDrop discards deliveries to the slow subscriber and counts them.
func WithSlowPolicy(p SlowPolicy) Option {
	return embeddedOption{"WithSlowPolicy", func(c *brokerConfig) {
		if p != PolicyBlock && p != PolicyDrop {
			c.fail("WithSlowPolicy(%v): unknown policy", p)
			return
		}
		c.policy = p
	}}
}

// WithAlgorithm selects the group-aware decision algorithm (RG or PS)
// for the engines the broker deploys per source.
func WithAlgorithm(a Algorithm) Option {
	return embeddedOption{"WithAlgorithm", func(c *brokerConfig) { c.engine.Algorithm = a }}
}

// WithStrategy selects the output-scheduling strategy (§3.4).
func WithStrategy(s OutputStrategy) Option {
	return embeddedOption{"WithStrategy", func(c *brokerConfig) { c.engine.Strategy = s }}
}

// WithBatchSize sets the release period, in input tuples, for the
// Batched output strategy.
func WithBatchSize(n int) Option {
	return embeddedOption{"WithBatchSize", func(c *brokerConfig) {
		if n <= 0 {
			c.fail("WithBatchSize(%d): size must be positive", n)
			return
		}
		c.engine.BatchSize = n
	}}
}

// WithCuts enables timely cuts with the given group time constraint
// (the conjunction of the group's delay requirements, §3.1).
func WithCuts(maxDelay time.Duration) Option {
	return embeddedOption{"WithCuts", func(c *brokerConfig) {
		if maxDelay <= 0 {
			c.fail("WithCuts(%v): the group time constraint must be positive", maxDelay)
			return
		}
		c.engine.Cuts = true
		c.engine.MaxDelay = maxDelay
	}}
}

// WithEngineOptions replaces the broker's whole engine option set — the
// escape hatch for knobs without a dedicated functional option
// (tie-breaks, punctuations, multicast delay) and the bridge for code
// migrating from the batch Run* surface. Later options still override
// individual fields.
func WithEngineOptions(o Options) Option {
	return embeddedOption{"WithEngineOptions", func(c *brokerConfig) { c.engine = o }}
}

// FsyncMode selects when the durable log syncs appended records to
// stable storage.
type FsyncMode = seglog.Policy

const (
	// FsyncInterval (the default) syncs dirty segments on a background
	// interval: bounded data loss on a crash, negligible publish-path
	// cost.
	FsyncInterval FsyncMode = seglog.SyncInterval
	// FsyncNever leaves syncing to the OS page cache.
	FsyncNever FsyncMode = seglog.SyncNever
	// FsyncAlways syncs every append before acknowledging it.
	FsyncAlways FsyncMode = seglog.SyncAlways
)

// DurabilityOption tunes the durable log opened by WithDurability.
type DurabilityOption func(*seglog.Options)

// WithSegmentBytes sets the byte size at which log segments rotate;
// 0 means the 64 MiB default.
func WithSegmentBytes(n int64) DurabilityOption {
	return func(o *seglog.Options) { o.SegmentBytes = n }
}

// WithFsync selects the log's fsync policy.
func WithFsync(m FsyncMode) DurabilityOption {
	return func(o *seglog.Options) { o.Fsync = m }
}

// WithFsyncInterval sets the background sync interval used by
// FsyncInterval; 0 means the 200ms default.
func WithFsyncInterval(d time.Duration) DurabilityOption {
	return func(o *seglog.Options) { o.Interval = d }
}

// WithDurability makes an embedded broker durable: every delivered
// transmission is appended to a per-source segment log under dir before
// fan-out, deliveries carry their log offsets, and subscriptions may
// catch up from a recorded offset with WithResumeFrom. NewEmbedded
// recovers the log (truncating any torn tail) before accepting work.
// A dialed broker inherits durability from its server (-data-dir), so
// this option does not apply to Dial.
func WithDurability(dir string, opts ...DurabilityOption) Option {
	return embeddedOption{"WithDurability", func(c *brokerConfig) {
		if dir == "" {
			c.fail("WithDurability(%q): empty data directory", dir)
			return
		}
		c.dataDir = dir
		for _, o := range opts {
			if o != nil {
				o(&c.seglog)
			}
		}
	}}
}

// resumeOption carries WithResumeFrom.
type resumeOption uint64

func (o resumeOption) applySub(c *subConfig) {
	c.resume = true
	c.resumeFrom = uint64(o)
}

// WithResumeFrom asks for a catch-up subscription against a durable
// broker (an embedded broker built WithDurability, or a server started
// with -data-dir): the source's durable log records from offset on that
// name this application are delivered first, in order and with their
// offsets, then the live stream continues seamlessly — no gap, no
// duplicate. A consumer that checkpointed Delivery.Offset o resumes
// with WithResumeFrom(o+1); WithResumeFrom(0) replays from the start.
// Subscribing with an offset beyond the log head is an error, as is
// resuming against a broker with no durable log.
func WithResumeFrom(offset uint64) SubOption { return resumeOption(offset) }

// WithTelemetry tunes the embedded broker's pipeline telemetry: the
// frugal delivery-latency quantiles and the sampled stage-timing
// histograms read back with Embedded.Telemetry. sampleEvery is the
// stage-timing sampling period, rounded up to a power of two (one timed
// event per period per stage bounds the steady-state clock cost); 0
// keeps the default period, and a negative value disables telemetry
// entirely. Telemetry is on by default — this option exists to widen or
// narrow the sampling, or to switch the subsystem off.
func WithTelemetry(sampleEvery int) Option {
	return embeddedOption{"WithTelemetry", func(c *brokerConfig) {
		if sampleEvery < 0 {
			c.telemetry = -1
			return
		}
		c.telemetry = sampleEvery
	}}
}

// WithSourceTimeout enables flow-gap expiry on an embedded broker: a
// source that neither publishes nor sits in a backpressured submit for
// d is finished automatically (its engine tail flushes and its
// subscribers' streams end), exactly as the networked server expires a
// silent publisher. By default embedded sources live until Finish or
// Close. A dialed broker inherits its server's -source-timeout, so this
// option does not apply to Dial.
func WithSourceTimeout(d time.Duration) Option {
	return embeddedOption{"WithSourceTimeout", func(c *brokerConfig) {
		if d <= 0 {
			c.fail("WithSourceTimeout(%v): the timeout must be positive", d)
			return
		}
		c.srcTimeout = d
	}}
}

// WithScanInterval sets the flow-gap detection granularity used with
// WithSourceTimeout: silence is detected no earlier than the timeout
// and no later than about two intervals past it. The default derives
// timeout/8 clamped to [10ms, 1s]; meaningless (and an error to pass)
// without WithSourceTimeout.
func WithScanInterval(d time.Duration) Option {
	return embeddedOption{"WithScanInterval", func(c *brokerConfig) {
		if d <= 0 {
			c.fail("WithScanInterval(%v): the interval must be positive", d)
			return
		}
		c.scanEvery = d
	}}
}

// WithDialTimeout bounds each session dial (the TCP connect plus the
// hello handshake) of a dialed broker; contexts with earlier deadlines
// tighten it per call. 0 means the transport default of 5s.
func WithDialTimeout(d time.Duration) Option {
	return remoteOption{"WithDialTimeout", func(c *brokerConfig) {
		if d < 0 {
			c.fail("WithDialTimeout(%v): timeout cannot be negative", d)
			return
		}
		c.dialTimeout = d
	}}
}

// resolveBrokerConfig applies opts over the defaults.
func resolveBrokerConfig(remote bool, opts []Option) (brokerConfig, error) {
	cfg := brokerConfig{remote: remote, policy: PolicyBlock}
	for _, o := range opts {
		if o == nil {
			continue
		}
		o.applyBroker(&cfg)
	}
	if cfg.err == nil && cfg.scanEvery > 0 && cfg.srcTimeout == 0 {
		cfg.fail("WithScanInterval(%v) requires WithSourceTimeout", cfg.scanEvery)
	}
	return cfg, cfg.err
}

// resolveSubConfig applies opts over the defaults (0 = broker default
// queue depth).
func resolveSubConfig(opts []SubOption) (subConfig, error) {
	var cfg subConfig
	for _, o := range opts {
		if o == nil {
			continue
		}
		o.applySub(&cfg)
	}
	return cfg, cfg.err
}
