package gasf

import (
	"fmt"
	"math/rand"
	"time"

	"gasf/internal/seglog"
)

// Functional options configure the Broker constructors, replacing the
// flag-bag Options struct at the facade boundary. Options that shape the
// engine or the runtime (shards, queues, algorithm, policy) apply to
// NewEmbedded — a dialed broker's server owns that configuration, so
// passing them to Dial is an error rather than a silent no-op.
// WithQueueDepth is also a SubOption: on a subscription it bounds that
// session's delivery queue on either transport.

// brokerConfig is the resolved option set.
type brokerConfig struct {
	remote          bool // set by Dial before options apply
	engine          Options
	subQueue        int
	maxSubQueue     int
	policy          SlowPolicy
	evictAfterDrops int
	dialTimeout     time.Duration
	reconnect       *Backoff
	dataDir         string
	seglog          seglog.Options
	telemetry       int
	srcTimeout      time.Duration
	scanEvery       time.Duration
	err             error
}

func (c *brokerConfig) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("gasf: "+format, args...)
	}
}

// Option configures a Broker constructor (NewEmbedded or Dial).
type Option interface{ applyBroker(*brokerConfig) }

// subConfig is the resolved per-subscription option set.
type subConfig struct {
	queue      int
	resume     bool
	resumeFrom uint64
	recvBuffer int
	err        error
}

// SubOption configures one Subscribe call.
type SubOption interface{ applySub(*subConfig) }

// BrokerSubOption is an option meaningful both at broker construction
// and on an individual subscription (WithQueueDepth).
type BrokerSubOption interface {
	Option
	SubOption
}

// embeddedOption is an Option valid only for NewEmbedded.
type embeddedOption struct {
	name string
	f    func(*brokerConfig)
}

func (o embeddedOption) applyBroker(c *brokerConfig) {
	if c.remote {
		c.fail("option %s does not apply to a dialed broker: the server owns its engine and runtime configuration", o.name)
		return
	}
	o.f(c)
}

// remoteOption is an Option valid only for Dial.
type remoteOption struct {
	name string
	f    func(*brokerConfig)
}

func (o remoteOption) applyBroker(c *brokerConfig) {
	if !c.remote {
		c.fail("option %s only applies to a dialed broker", o.name)
		return
	}
	o.f(c)
}

// WithShards sets the number of worker shards sources are
// hash-partitioned onto; 0 means GOMAXPROCS.
func WithShards(n int) Option {
	return embeddedOption{"WithShards", func(c *brokerConfig) {
		if n < 0 {
			c.fail("WithShards(%d): shard count cannot be negative", n)
			return
		}
		c.engine.ShardCount = n
	}}
}

// WithFlushBatch sets the released-transmission batch size per shard
// flush; 0 means the runtime default.
func WithFlushBatch(n int) Option {
	return embeddedOption{"WithFlushBatch", func(c *brokerConfig) {
		if n < 0 {
			c.fail("WithFlushBatch(%d): batch cannot be negative", n)
			return
		}
		c.engine.FlushBatch = n
	}}
}

// queueDepthOption carries WithQueueDepth to both scopes.
type queueDepthOption int

func (n queueDepthOption) applyBroker(c *brokerConfig) {
	if c.remote {
		c.fail("option WithQueueDepth does not apply to a dialed broker (pass it to Subscribe to size that session's delivery queue)")
		return
	}
	if n <= 0 {
		c.fail("WithQueueDepth(%d): depth must be positive", int(n))
		return
	}
	c.engine.QueueDepth = int(n)
}

func (n queueDepthOption) applySub(c *subConfig) {
	if n <= 0 {
		if c.err == nil {
			c.err = fmt.Errorf("gasf: WithQueueDepth(%d): depth must be positive", int(n))
		}
		return
	}
	c.queue = int(n)
}

// WithQueueDepth bounds a queue, by scope: as a broker option it sets
// the per-shard input ring depth of an embedded broker; as a
// subscription option it sets that session's delivery queue depth —
// how many deliveries are buffered before the slow-consumer policy
// applies — on either transport (the networked path relays it in the
// subscriber hello, clamped by the server's MaxSubscriberQueue).
func WithQueueDepth(n int) BrokerSubOption { return queueDepthOption(n) }

// WithSubscriberQueue sets the default delivery queue depth for
// subscriptions that do not request their own with WithQueueDepth.
func WithSubscriberQueue(n int) Option {
	return embeddedOption{"WithSubscriberQueue", func(c *brokerConfig) {
		if n <= 0 {
			c.fail("WithSubscriberQueue(%d): depth must be positive", n)
			return
		}
		c.subQueue = n
	}}
}

// WithMaxSubscriberQueue caps the per-subscription queue depth a
// Subscribe may request (memory protection).
func WithMaxSubscriberQueue(n int) Option {
	return embeddedOption{"WithMaxSubscriberQueue", func(c *brokerConfig) {
		if n <= 0 {
			c.fail("WithMaxSubscriberQueue(%d): depth must be positive", n)
			return
		}
		c.maxSubQueue = n
	}}
}

// WithSlowPolicy selects how a full subscription delivery queue is
// treated: PolicyBlock applies backpressure up to the publishers,
// PolicyDrop discards deliveries to the slow subscriber and counts them,
// and PolicyDegrade blocks while adaptively coarsening the precision of
// pressured subscriptions whose filters support scaling (restored
// stepwise once the pressure clears).
func WithSlowPolicy(p SlowPolicy) Option {
	return embeddedOption{"WithSlowPolicy", func(c *brokerConfig) {
		if p != PolicyBlock && p != PolicyDrop && p != PolicyDegrade {
			c.fail("WithSlowPolicy(%v): unknown policy", p)
			return
		}
		c.policy = p
	}}
}

// WithEvictAfterDrops evicts a PolicyDrop subscription once its dropped
// delivery count reaches n: instead of losing deliveries silently
// forever, the subscription is detached and its Recv surfaces
// ErrEvicted with the reason. 0 (the default) never evicts.
func WithEvictAfterDrops(n int) Option {
	return embeddedOption{"WithEvictAfterDrops", func(c *brokerConfig) {
		if n < 0 {
			c.fail("WithEvictAfterDrops(%d): threshold cannot be negative", n)
			return
		}
		c.evictAfterDrops = n
	}}
}

// WithAlgorithm selects the group-aware decision algorithm (RG or PS)
// for the engines the broker deploys per source.
func WithAlgorithm(a Algorithm) Option {
	return embeddedOption{"WithAlgorithm", func(c *brokerConfig) { c.engine.Algorithm = a }}
}

// WithStrategy selects the output-scheduling strategy (§3.4).
func WithStrategy(s OutputStrategy) Option {
	return embeddedOption{"WithStrategy", func(c *brokerConfig) { c.engine.Strategy = s }}
}

// WithBatchSize sets the release period, in input tuples, for the
// Batched output strategy.
func WithBatchSize(n int) Option {
	return embeddedOption{"WithBatchSize", func(c *brokerConfig) {
		if n <= 0 {
			c.fail("WithBatchSize(%d): size must be positive", n)
			return
		}
		c.engine.BatchSize = n
	}}
}

// WithCuts enables timely cuts with the given group time constraint
// (the conjunction of the group's delay requirements, §3.1).
func WithCuts(maxDelay time.Duration) Option {
	return embeddedOption{"WithCuts", func(c *brokerConfig) {
		if maxDelay <= 0 {
			c.fail("WithCuts(%v): the group time constraint must be positive", maxDelay)
			return
		}
		c.engine.Cuts = true
		c.engine.MaxDelay = maxDelay
	}}
}

// WithEngineOptions replaces the broker's whole engine option set — the
// escape hatch for knobs without a dedicated functional option
// (tie-breaks, punctuations, multicast delay) and the bridge for code
// migrating from the batch Run* surface. Later options still override
// individual fields.
func WithEngineOptions(o Options) Option {
	return embeddedOption{"WithEngineOptions", func(c *brokerConfig) { c.engine = o }}
}

// FsyncMode selects when the durable log syncs appended records to
// stable storage.
type FsyncMode = seglog.Policy

const (
	// FsyncInterval (the default) syncs dirty segments on a background
	// interval: bounded data loss on a crash, negligible publish-path
	// cost.
	FsyncInterval FsyncMode = seglog.SyncInterval
	// FsyncNever leaves syncing to the OS page cache.
	FsyncNever FsyncMode = seglog.SyncNever
	// FsyncAlways syncs every append before acknowledging it.
	FsyncAlways FsyncMode = seglog.SyncAlways
)

// DurabilityOption tunes the durable log opened by WithDurability.
type DurabilityOption func(*seglog.Options)

// WithSegmentBytes sets the byte size at which log segments rotate;
// 0 means the 64 MiB default.
func WithSegmentBytes(n int64) DurabilityOption {
	return func(o *seglog.Options) { o.SegmentBytes = n }
}

// WithFsync selects the log's fsync policy.
func WithFsync(m FsyncMode) DurabilityOption {
	return func(o *seglog.Options) { o.Fsync = m }
}

// WithFsyncInterval sets the background sync interval used by
// FsyncInterval; 0 means the 200ms default.
func WithFsyncInterval(d time.Duration) DurabilityOption {
	return func(o *seglog.Options) { o.Interval = d }
}

// WithDurability makes an embedded broker durable: every delivered
// transmission is appended to a per-source segment log under dir before
// fan-out, deliveries carry their log offsets, and subscriptions may
// catch up from a recorded offset with WithResumeFrom. NewEmbedded
// recovers the log (truncating any torn tail) before accepting work.
// A dialed broker inherits durability from its server (-data-dir), so
// this option does not apply to Dial.
func WithDurability(dir string, opts ...DurabilityOption) Option {
	return embeddedOption{"WithDurability", func(c *brokerConfig) {
		if dir == "" {
			c.fail("WithDurability(%q): empty data directory", dir)
			return
		}
		c.dataDir = dir
		for _, o := range opts {
			if o != nil {
				o(&c.seglog)
			}
		}
	}}
}

// resumeOption carries WithResumeFrom.
type resumeOption uint64

func (o resumeOption) applySub(c *subConfig) {
	c.resume = true
	c.resumeFrom = uint64(o)
}

// recvBufferOption carries WithRecvBuffer.
type recvBufferOption int

func (o recvBufferOption) applySub(c *subConfig) {
	if o <= 0 {
		if c.err == nil {
			c.err = fmt.Errorf("gasf: WithRecvBuffer(%d): size must be positive", int(o))
		}
		return
	}
	c.recvBuffer = int(o)
}

// WithRecvBuffer pins a dialed subscription's kernel receive buffer to
// roughly n bytes, disabling its autotuning. By default the kernel
// grows the buffer by megabytes for a slow reader, absorbing a large
// backlog before TCP backpressure reaches the server — which keeps the
// server's slow-consumer policy (block, drop, degrade) from noticing a
// lagging consumer until long after the lag began. A bounded buffer
// makes consumer lag propagate to the server promptly, at the cost of
// burst-absorption headroom. Only meaningful on a dialed broker; an
// embedded broker has no socket and rejects the option.
func WithRecvBuffer(n int) SubOption { return recvBufferOption(n) }

// WithResumeFrom asks for a catch-up subscription against a durable
// broker (an embedded broker built WithDurability, or a server started
// with -data-dir): the source's durable log records from offset on that
// name this application are delivered first, in order and with their
// offsets, then the live stream continues seamlessly — no gap, no
// duplicate. A consumer that checkpointed Delivery.Offset o resumes
// with WithResumeFrom(o+1); WithResumeFrom(0) replays from the start.
// Subscribing with an offset beyond the log head is an error, as is
// resuming against a broker with no durable log.
func WithResumeFrom(offset uint64) SubOption { return resumeOption(offset) }

// WithTelemetry tunes the embedded broker's pipeline telemetry: the
// frugal delivery-latency quantiles and the sampled stage-timing
// histograms read back with Embedded.Telemetry. sampleEvery is the
// stage-timing sampling period, rounded up to a power of two (one timed
// event per period per stage bounds the steady-state clock cost); 0
// keeps the default period, and a negative value disables telemetry
// entirely. Telemetry is on by default — this option exists to widen or
// narrow the sampling, or to switch the subsystem off.
func WithTelemetry(sampleEvery int) Option {
	return embeddedOption{"WithTelemetry", func(c *brokerConfig) {
		if sampleEvery < 0 {
			c.telemetry = -1
			return
		}
		c.telemetry = sampleEvery
	}}
}

// WithSourceTimeout enables flow-gap expiry on an embedded broker: a
// source that neither publishes nor sits in a backpressured submit for
// d is finished automatically (its engine tail flushes and its
// subscribers' streams end), exactly as the networked server expires a
// silent publisher. By default embedded sources live until Finish or
// Close. A dialed broker inherits its server's -source-timeout, so this
// option does not apply to Dial.
func WithSourceTimeout(d time.Duration) Option {
	return embeddedOption{"WithSourceTimeout", func(c *brokerConfig) {
		if d <= 0 {
			c.fail("WithSourceTimeout(%v): the timeout must be positive", d)
			return
		}
		c.srcTimeout = d
	}}
}

// WithScanInterval sets the flow-gap detection granularity used with
// WithSourceTimeout: silence is detected no earlier than the timeout
// and no later than about two intervals past it. The default derives
// timeout/8 clamped to [10ms, 1s]; meaningless (and an error to pass)
// without WithSourceTimeout.
func WithScanInterval(d time.Duration) Option {
	return embeddedOption{"WithScanInterval", func(c *brokerConfig) {
		if d <= 0 {
			c.fail("WithScanInterval(%v): the interval must be positive", d)
			return
		}
		c.scanEvery = d
	}}
}

// WithDialTimeout bounds each session dial (the TCP connect plus the
// hello handshake) of a dialed broker; contexts with earlier deadlines
// tighten it per call. 0 means the transport default of 5s.
func WithDialTimeout(d time.Duration) Option {
	return remoteOption{"WithDialTimeout", func(c *brokerConfig) {
		if d < 0 {
			c.fail("WithDialTimeout(%v): timeout cannot be negative", d)
			return
		}
		c.dialTimeout = d
	}}
}

// Backoff parameterizes the retry schedule of WithReconnect: delays grow
// from Base by Factor per consecutive failure, capped at Max, with a
// uniform random perturbation of ±Jitter (a fraction of the delay) so a
// fleet of clients does not thunder back in lockstep after a restart.
// Zero fields take the defaults noted per field.
type Backoff struct {
	// Base is the first retry delay; 0 means 100ms.
	Base time.Duration
	// Max caps the grown delay; 0 means 5s.
	Max time.Duration
	// Factor multiplies the delay per consecutive failure; 0 means 2.
	Factor float64
	// Jitter is the ± perturbation as a fraction of the delay, in [0, 1];
	// 0 means 0.2.
	Jitter float64
}

func (b Backoff) withDefaults() (Backoff, error) {
	if b.Base < 0 || b.Max < 0 || b.Factor < 0 || b.Jitter < 0 || b.Jitter > 1 {
		return b, fmt.Errorf("gasf: WithReconnect(%+v): negative field or jitter outside [0, 1]", b)
	}
	if b.Base == 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max == 0 {
		b.Max = 5 * time.Second
	}
	if b.Max < b.Base {
		b.Max = b.Base
	}
	if b.Factor == 0 {
		b.Factor = 2
	}
	if b.Factor < 1 {
		return b, fmt.Errorf("gasf: WithReconnect(%+v): factor must be >= 1", b)
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	return b, nil
}

// delay returns the backoff delay for the attempt'th consecutive failure
// (attempt 0 = first retry), jittered.
func (b Backoff) delay(attempt int) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt && d < float64(b.Max); i++ {
		d *= b.Factor
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	// Uniform in [1-Jitter, 1+Jitter).
	d *= 1 + b.Jitter*(2*rand.Float64()-1)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// WithReconnect makes a dialed broker's sessions self-healing: when a
// source or subscription session loses its connection, the operation in
// flight transparently redials on b's schedule (bounded by the call's
// context) and resumes. Against a durable server a subscription resumes
// from its last delivered log offset — gapless and duplicate-free — and
// a source republishes the tuples not yet fenced by a Sync barrier,
// trimmed by the server's resume hint. Against a non-durable server the
// sessions still redial, but continuity is best-effort. A stream end
// caused by the source finishing, and an eviction, are terminal and
// never redialed; a stream end forced by server shutdown (the server
// tags those goodbyes) is treated as connection loss, so sessions ride
// through a server restart — against a permanently stopped server they
// keep retrying until the calling context expires.
func WithReconnect(b Backoff) Option {
	return remoteOption{"WithReconnect", func(c *brokerConfig) {
		bo, err := b.withDefaults()
		if err != nil {
			c.err = err
			return
		}
		c.reconnect = &bo
	}}
}

// resolveBrokerConfig applies opts over the defaults.
func resolveBrokerConfig(remote bool, opts []Option) (brokerConfig, error) {
	cfg := brokerConfig{remote: remote, policy: PolicyBlock}
	for _, o := range opts {
		if o == nil {
			continue
		}
		o.applyBroker(&cfg)
	}
	if cfg.err == nil && cfg.scanEvery > 0 && cfg.srcTimeout == 0 {
		cfg.fail("WithScanInterval(%v) requires WithSourceTimeout", cfg.scanEvery)
	}
	return cfg, cfg.err
}

// resolveSubConfig applies opts over the defaults (0 = broker default
// queue depth).
func resolveSubConfig(opts []SubOption) (subConfig, error) {
	var cfg subConfig
	for _, o := range opts {
		if o == nil {
			continue
		}
		o.applySub(&cfg)
	}
	return cfg, cfg.err
}
