module gasf

go 1.22
