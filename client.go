package gasf

import (
	"gasf/internal/server"
)

// Networked client API: Client dials a gasf-server and opens publisher
// (source) and subscriber (application) sessions over the binary wire
// protocol. See internal/server for the protocol and DESIGN.md §7 for the
// server architecture.
//
// New code should prefer the unified Broker surface — gasf.Dial returns
// the same wire sessions behind the transport-agnostic, context-first
// interface that an embedded broker also implements (see broker.go and
// DESIGN.md §10). Client remains as a thin veneer for existing callers.

// Publisher is a client-side source session streaming tuples to a server.
type Publisher = server.Publisher

// StreamSub is a client-side subscriber session receiving a filtered
// transmission stream from a server.
type StreamSub = server.Subscriber

// StreamDelivery is one transmission received by a StreamSub.
type StreamDelivery = server.Delivery

// ErrStreamEnded reports a graceful end of a subscription stream (the
// source finished or the server drained).
var ErrStreamEnded = server.ErrStreamEnded

// Client dials a gasf-server.
type Client struct {
	// Addr is the server's TCP address, e.g. "localhost:7070".
	Addr string
}

// NewClient returns a client for the server at addr.
func NewClient(addr string) *Client { return &Client{Addr: addr} }

// Publish opens a source session: the source name and schema are
// advertised in the handshake, then tuples stream with Publisher.Publish
// (caller-managed timestamps) or Publisher.PublishNow (wall clock).
func (c *Client) Publish(source string, schema *Schema) (*Publisher, error) {
	return server.DialPublisher(c.Addr, source, schema)
}

// Subscribe joins a source's filter group with a quality specification in
// the paper's notation (e.g. "DC1(temperature, 0.5, 0.25)") and returns
// the session; receive with StreamSub.Recv. The subscription joins the
// live group at a tuple boundary — the paper's group re-derivation (§4.3)
// — without disturbing the source's other subscribers.
func (c *Client) Subscribe(app, source, spec string) (*StreamSub, error) {
	return server.DialSubscriber(c.Addr, app, source, spec)
}

// SubscribeBuffered is Subscribe with an explicit server-side send-queue
// depth for this session; 0 accepts the server default.
//
// Deprecated: queue depth is a subscription option on the unified Broker
// surface — use Dial(addr) and Subscribe(ctx, app, source, spec,
// WithQueueDepth(queue)) instead. SubscribeBuffered remains a working
// wrapper over the same wire session.
func (c *Client) SubscribeBuffered(app, source, spec string, queue int) (*StreamSub, error) {
	return server.DialSubscriberBuffered(c.Addr, app, source, spec, queue)
}

// ServerConfig configures an embedded streaming server (see cmd/gasf-server
// for the standalone binary).
type ServerConfig = server.Config

// Server is the networked streaming server.
type Server = server.Server

// SlowPolicy selects how a full subscriber delivery queue is treated —
// backpressure (PolicyBlock) or counted drops (PolicyDrop). It is shared
// by ServerConfig.Policy and the broker option WithSlowPolicy.
type SlowPolicy = server.Policy

// Slow-consumer policies for ServerConfig.Policy and WithSlowPolicy.
const (
	// PolicyBlock applies backpressure from slow subscribers up to the
	// publishers.
	PolicyBlock = server.PolicyBlock
	// PolicyDrop drops deliveries to slow subscribers and counts them.
	PolicyDrop = server.PolicyDrop
	// PolicyDegrade blocks like PolicyBlock but adaptively coarsens the
	// precision of pressured subscriptions whose filters support scaling
	// (the DC family), announcing each change in Subscription.QoS and
	// restoring full fidelity stepwise once the pressure clears.
	PolicyDegrade = server.PolicyDegrade
)

// ParsePolicy reads a slow-consumer policy name ("block", "drop" or
// "degrade").
func ParsePolicy(s string) (SlowPolicy, error) { return server.ParsePolicy(s) }

// StartServer starts an embedded streaming server; useful for tests and
// single-process deployments.
func StartServer(cfg ServerConfig) (*Server, error) { return server.Start(cfg) }
