package gasf_test

import (
	"context"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"gasf"
)

// Crash-recovery suite for the durable log: a server killed mid-stream
// and restarted over the same data directory must recover the log,
// truncate any torn tail, and serve resumed subscriptions whose replayed
// history and spliced live stream carry contiguous offsets — no gap, no
// duplicate — across the crash.

// recoverySeries builds n step tuples (schema "v", value steps by 1) so
// a "DC1(v, 0.5, 0)" subscriber receives every released tuple.
func recoverySeries(t *testing.T, n, offset int) *gasf.Series {
	t.Helper()
	s, err := gasf.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	sr := gasf.NewSeries(s)
	base := time.Unix(1, 0)
	for i := 0; i < n; i++ {
		tp, err := gasf.NewTuple(s, offset+i, base.Add(time.Duration(offset+i+1)*time.Millisecond), []float64{float64(offset + i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	return sr
}

func publishAll(ctx context.Context, t *testing.T, src gasf.Source, sr *gasf.Series) {
	t.Helper()
	batch := make([]*gasf.Tuple, 0, sr.Len())
	for i := 0; i < sr.Len(); i++ {
		batch = append(batch, sr.At(i))
	}
	if err := src.PublishBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if err := src.Sync(ctx); err != nil {
		t.Fatal(err)
	}
}

// drainSub receives until the stream ends gracefully.
func drainSub(ctx context.Context, t *testing.T, sub gasf.Subscription) []*gasf.Delivery {
	t.Helper()
	var out []*gasf.Delivery
	for {
		d, err := sub.Recv(ctx)
		if errors.Is(err, gasf.ErrStreamEnded) {
			return out
		}
		if err != nil {
			t.Fatalf("after %d deliveries: %v", len(out), err)
		}
		out = append(out, d)
	}
}

// TestKillRestartRecovery kills a durable server mid-stream (hard abort,
// no drain) and restarts it over the same directory. The publisher
// reconnects and continues; the subscriber resumes from its checkpoint
// and must see one dense offset sequence spanning the crash: the
// replayed pre-crash records, then the post-crash live stream, with no
// gap and no duplicate. The one tuple the engine was still holding back
// at the kill was never released — so it is absent by contract, not
// lost from the log.
func TestKillRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	srv, err := gasf.StartServer(gasf.ServerConfig{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := gasf.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	wave1 := recoverySeries(t, 100, 0)
	src, err := rb.OpenSource(ctx, "src", wave1.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rb.Subscribe(ctx, "a", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	publishAll(ctx, t, src, wave1)
	// Consume every released delivery (the last tuple's set is held back
	// until a later tuple closes it, so 99 of 100 release) — this also
	// proves all 99 records hit the log before the kill, since the append
	// happens before the frame reaches the subscriber queue.
	for i := 0; i < wave1.Len()-1; i++ {
		d, err := sub.Recv(ctx)
		if err != nil {
			t.Fatalf("pre-crash delivery %d: %v", i, err)
		}
		if d.Offset != uint64(i) {
			t.Fatalf("pre-crash delivery %d carries offset %d", i, d.Offset)
		}
	}
	// The app's durable checkpoint lags its reads — it resumes from 41.
	const checkpoint = 40

	// Crash: abort without draining. The client sessions die with it.
	if err := srv.Close(); err != nil {
		t.Fatalf("hard close: %v", err)
	}
	closeCtx, closeCancel := context.WithTimeout(context.Background(), time.Second)
	rb.Close(closeCtx)
	closeCancel()

	// Restart over the same directory: startup recovery reopens the log.
	srv2, err := gasf.StartServer(gasf.ServerConfig{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.Shutdown(ctx)
	rb2, err := gasf.Dial(srv2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rb2.Close(ctx)
	src2, err := rb2.OpenSource(ctx, "src", wave1.Schema())
	if err != nil {
		t.Fatalf("reopen source: %v", err)
	}
	sub2, err := rb2.Subscribe(ctx, "a", "src", "DC1(v, 0.5, 0)", gasf.WithResumeFrom(checkpoint+1))
	if err != nil {
		t.Fatalf("resume subscribe: %v", err)
	}
	wave2 := recoverySeries(t, 100, wave1.Len())
	publishAll(ctx, t, src2, wave2)
	if err := src2.Finish(ctx); err != nil {
		t.Fatal(err)
	}

	all := drainSub(ctx, t, sub2)
	// Replay: offsets 41..98 (the pre-crash log past the checkpoint).
	// Live: offsets 99..198 — wave 2's 99 in-stream releases plus the
	// tail flushed by Finish, appended right where recovery left the head.
	replayed := wave1.Len() - 1 - (checkpoint + 1)
	want := replayed + wave2.Len()
	if len(all) != want {
		t.Fatalf("got %d deliveries, want %d", len(all), want)
	}
	for i, d := range all {
		if wantOff := uint64(checkpoint + 1 + i); d.Offset != wantOff {
			t.Fatalf("delivery %d: offset %d, want %d (gap or duplicate across the crash)", i, d.Offset, wantOff)
		}
		wantSeq := checkpoint + 1 + i
		if i >= replayed {
			// Tuple 99 was held back and never released: the live leg
			// starts at wave 2's first tuple.
			wantSeq = wave1.Len() + (i - replayed)
		}
		if d.Tuple.Seq != wantSeq {
			t.Fatalf("delivery %d: seq %d, want %d", i, d.Tuple.Seq, wantSeq)
		}
	}
}

// TestRecoveryTornTail corrupts the final segment behind a stopped
// server — once by truncating mid-record (a torn write), once by
// flipping a payload byte (CRC damage) — and restarts. Recovery must
// drop exactly the damaged final record: the resumed subscriber replays
// the intact prefix, the damaged offset is reused by the next live
// release, and the offset sequence stays dense.
func TestRecoveryTornTail(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0xFF
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			srv, err := gasf.StartServer(gasf.ServerConfig{DataDir: dir, Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := gasf.Dial(srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			wave1 := recoverySeries(t, 50, 0)
			src, err := rb.OpenSource(ctx, "src", wave1.Schema())
			if err != nil {
				t.Fatal(err)
			}
			sub, err := rb.Subscribe(ctx, "a", "src", "DC1(v, 0.5, 0)")
			if err != nil {
				t.Fatal(err)
			}
			publishAll(ctx, t, src, wave1)
			if err := src.Finish(ctx); err != nil {
				t.Fatal(err)
			}
			// A graceful finish flushes the held-back tail: offsets 0..49.
			if n := len(drainSub(ctx, t, sub)); n != wave1.Len() {
				t.Fatalf("clean run delivered %d of %d", n, wave1.Len())
			}
			if err := rb.Close(ctx); err != nil {
				t.Fatal(err)
			}
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}

			// Damage the final record of the last (only) segment.
			segs, err := filepath.Glob(filepath.Join(dir, hex.EncodeToString([]byte("src")), "*.seg"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("locating segments: %v (%d found)", err, len(segs))
			}
			sort.Strings(segs)
			tc.damage(t, segs[len(segs)-1])

			srv2, err := gasf.StartServer(gasf.ServerConfig{DataDir: dir, Logf: t.Logf})
			if err != nil {
				t.Fatalf("restart over damaged log: %v", err)
			}
			defer srv2.Shutdown(ctx)
			rb2, err := gasf.Dial(srv2.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer rb2.Close(ctx)
			src2, err := rb2.OpenSource(ctx, "src", wave1.Schema())
			if err != nil {
				t.Fatal(err)
			}
			// The head moved back one record, so the old head is now beyond
			// it and must be rejected.
			if _, err := rb2.Subscribe(ctx, "a", "src", "DC1(v, 0.5, 0)",
				gasf.WithResumeFrom(uint64(wave1.Len())+1)); err == nil {
				t.Fatal("resume beyond the recovered head succeeded")
			}
			sub2, err := rb2.Subscribe(ctx, "a", "src", "DC1(v, 0.5, 0)", gasf.WithResumeFrom(0))
			if err != nil {
				t.Fatalf("resume subscribe: %v", err)
			}
			wave2 := recoverySeries(t, 50, wave1.Len())
			publishAll(ctx, t, src2, wave2)
			if err := src2.Finish(ctx); err != nil {
				t.Fatal(err)
			}

			all := drainSub(ctx, t, sub2)
			// Replay: offsets 0..48 (record 49 was damaged and dropped).
			// Live: offsets 49..98, seqs 50..99 — the first post-restart
			// release reuses the truncated offset.
			replayed := wave1.Len() - 1
			if len(all) != replayed+wave2.Len() {
				t.Fatalf("got %d deliveries, want %d", len(all), replayed+wave2.Len())
			}
			for i, d := range all {
				if d.Offset != uint64(i) {
					t.Fatalf("delivery %d: offset %d (gap or duplicate across recovery)", i, d.Offset)
				}
				wantSeq := i
				if i >= replayed {
					wantSeq = wave1.Len() + (i - replayed)
				}
				if d.Tuple.Seq != wantSeq {
					t.Fatalf("delivery %d: seq %d, want %d", i, d.Tuple.Seq, wantSeq)
				}
			}
		})
	}
}
