package experiments

import "testing"

// TestFig13Ordering: the intro's trade-off holds end to end over the
// overlay: raw > self-interested > group-aware on the wireless medium, and
// group-aware never exceeds self-interested on links.
func TestFig13Ordering(t *testing.T) {
	rep, err := Fig13Bandwidth(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	raw := rep.Values["no filtering + multicast/wireless"]
	si := rep.Values["self-interested filtering + multicast/wireless"]
	ga := rep.Values["group-aware filtering + multicast/wireless"]
	if !(ga < si && si < raw) {
		t.Errorf("wireless ordering violated: GA %.0f, SI %.0f, raw %.0f", ga, si, raw)
	}
	gaLink := rep.Values["group-aware filtering + multicast/link"]
	siLink := rep.Values["self-interested filtering + multicast/link"]
	if gaLink > siLink {
		t.Errorf("link bytes: GA %.0f above SI %.0f", gaLink, siLink)
	}
}
