package experiments

import (
	"fmt"
	"time"

	"gasf/internal/core"
	"gasf/internal/metrics"
	"gasf/internal/quality"
)

// Table52Specs regenerates Table 5.2: the ten filter groups of the
// extensibility evaluation.
func Table52Specs(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	groups, err := quality.Table52(sr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Group", "Filter 1", "Filter 2", "Filter 3")
	for _, g := range groups {
		row := []string{g.Name}
		for _, sp := range g.Specs {
			row = append(row, sp.String())
		}
		tb.AddRow(row...)
	}
	return &Report{ID: "T5.2", Title: "Specifications for ten groups of filters", Text: tb.String(),
		Values: map[string]float64{"groups": float64(len(groups))}}, nil
}

// runTable52 executes GA (RG) and SI for every Table 5.2 group.
func runTable52(cfg Config) ([]quality.Group, []*core.Result, []*core.Result, error) {
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	groups, err := quality.Table52(sr, cfg.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	var gas, sis []*core.Result
	for _, g := range groups {
		ga, err := runVariant(g, sr, variant{name: "RG", opts: core.Options{Algorithm: core.RG, MulticastDelay: cfg.MulticastDelay}})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", g.Name, err)
		}
		si, err := runVariant(g, sr, variant{name: "SI", si: true, opts: core.Options{MulticastDelay: cfg.MulticastDelay}})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", g.Name, err)
		}
		gas, sis = append(gas, ga), append(sis, si)
	}
	return groups, gas, sis, nil
}

// Fig52OutputRatio regenerates Fig 5.2: output ratio per batch of 100
// tuples for the ten groups (average and median). Paper shape: eight of
// ten groups fall below 0.80; sampling-only groups benefit least.
func Fig52OutputRatio(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	groups, gas, sis, err := runTable52(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("group", "avg output ratio", "median output ratio")
	vals := make(map[string]float64)
	for i, g := range groups {
		avg, median := batchOutputRatio(gas[i], sis[i], cfg.N, 100)
		tb.AddRow(g.Name, fmtRatio(avg), fmtRatio(median))
		vals[g.Name+"/avg"] = avg
		vals[g.Name+"/median"] = median
	}
	return &Report{ID: "F5.2", Title: "Benefit of group-aware filtering", Text: tb.String(), Values: vals}, nil
}

// Table53CPUBatch regenerates Table 5.3: average CPU cost per batch of 100
// tuples, group-aware versus self-interested.
func Table53CPUBatch(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	groups, gas, sis, err := runTable52(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Group", "Group-aware (ms)", "Self-interested (ms)")
	vals := make(map[string]float64)
	perBatch := func(r *core.Result) float64 {
		if r.Stats.Inputs == 0 {
			return 0
		}
		return float64(r.Stats.CPU) / float64(r.Stats.Inputs) * 100 / float64(time.Millisecond)
	}
	for i, g := range groups {
		ga, si := perBatch(gas[i]), perBatch(sis[i])
		tb.AddRow(g.Name, fmt.Sprintf("%.3f", ga), fmt.Sprintf("%.3f", si))
		vals[g.Name+"/ga"] = ga
		vals[g.Name+"/si"] = si
	}
	return &Report{ID: "T5.3", Title: "Average CPU cost per batch of 100 tuples", Text: tb.String(), Values: vals}, nil
}

// Fig53OverheadRatio regenerates Fig 5.3: the CPU overhead ratio
// (group-aware over self-interested) per group. Paper shape: between ~1.5x
// and ~3x.
func Fig53OverheadRatio(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	groups, gas, sis, err := runTable52(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("group", "CPU overhead ratio")
	vals := make(map[string]float64)
	for i, g := range groups {
		ratio := 0.0
		if sis[i].Stats.CPU > 0 {
			ratio = float64(gas[i].Stats.CPU) / float64(sis[i].Stats.CPU)
		}
		tb.AddRow(g.Name, fmt.Sprintf("%.2f", ratio))
		vals[g.Name] = ratio
	}
	return &Report{ID: "F5.3", Title: "CPU overhead ratios", Text: tb.String(), Values: vals}, nil
}
