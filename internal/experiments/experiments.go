// Package experiments reproduces every table and figure of the paper's
// evaluation (Chapters 4 and 5). Each experiment is a named runner that
// generates its workload, executes the group-aware filtering variants
// against the self-interested baseline, and renders the same rows/series
// the paper reports. cmd/gasf-experiments runs them from the command line;
// bench_test.go wraps each in a benchmark.
//
// Absolute CPU numbers differ from the paper's 2005-era Java prototype;
// the shapes — who wins, by what factor, where the trends bend — are the
// reproduction targets, recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gasf/internal/core"
	"gasf/internal/metrics"
	"gasf/internal/quality"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// Config scales the experiments.
type Config struct {
	// N is the trace length; 0 means the paper's "more than ten
	// thousand measurements" (10000).
	N int
	// Seed drives trace generation and random spec draws.
	Seed int64
	// Runs is the repetition count for box-plot experiments; 0 means
	// the paper's 10.
	Runs int
	// MulticastDelay is the constant delivery cost; 0 means the 12 ms
	// the paper measures for local delivery (§4.4).
	MulticastDelay time.Duration
	// Quick shrinks workloads for tests and smoke benchmarks.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 10000
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	if c.MulticastDelay == 0 {
		c.MulticastDelay = 12 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Quick {
		if c.N > 2000 {
			c.N = 2000
		}
		if c.Runs > 3 {
			c.Runs = 3
		}
	}
	return c
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	// Text is the rendered table(s), one per paper row/series.
	Text string
	// Values exposes key measurements for assertions and EXPERIMENTS.md.
	Values map[string]float64
}

// Runner executes one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (*Report, error)
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{"F1.3", "Fig 1.3: bandwidth consumption trade-off", Fig13Bandwidth},
		{"T4.1", "Table 4.1: specifications for groups of filters", Table41Specs},
		{"F4.2", "Fig 4.2: O/I ratios for three groups of group-aware filters", Fig42OIRatios},
		{"F4.3-4.5", "Figs 4.3-4.5: CPU cost per tuple (box plots)", Fig43to45CPUCost},
		{"F4.6-4.8", "Figs 4.6-4.8: latency per tuple (box plots)", Fig46to48Latency},
		{"F4.9", "Fig 4.9: cuts affect latency for DC_Fluoro", Fig49CutLatency},
		{"F4.10", "Fig 4.10: CPU cost of cuts for DC_Fluoro", Fig410CutCPU},
		{"F4.11", "Fig 4.11: percent of regions cut for DC_Fluoro", Fig411PercentCut},
		{"F4.12", "Fig 4.12: cuts affect O/I ratios in DC_Fluoro", Fig412CutOI},
		{"F4.13", "Fig 4.13: output strategy affects data timeliness", Fig413OutputStrategyLatency},
		{"F4.14", "Fig 4.14: CPU cost of output strategies", Fig414OutputStrategyCPU},
		{"F4.15", "Fig 4.15: slack's effect on DC-type filters", Fig415SlackSweep},
		{"F4.16", "Fig 4.16: delta's effect on DC-type filters", Fig416DeltaSweep},
		{"F4.17", "Fig 4.17: group size's effect on output ratio", Fig417GroupSize},
		{"F4.18", "Fig 4.18: group size's effect on CPU cost", Fig418GroupSizeCPU},
		{"F4.19", "Fig 4.19: filter specifications for multiple data sources", Fig419SourceSpecs},
		{"F4.20", "Fig 4.20: O/I ratios of filtering with different data sources", Fig420SourceOI},
		{"F4.21-4.23", "Figs 4.21-4.23: source update patterns", Fig421to423Traces},
		{"F4.24", "Fig 4.24: CPU cost of filtering with different data sources", Fig424SourceCPU},
		{"T5.2", "Table 5.2: specifications for ten groups of filters", Table52Specs},
		{"F5.2", "Fig 5.2: benefit of group-aware filtering (output ratios)", Fig52OutputRatio},
		{"T5.3", "Table 5.3: average CPU cost per batch of 100 tuples", Table53CPUBatch},
		{"F5.3", "Fig 5.3: CPU overhead ratios", Fig53OverheadRatio},
		{"A1", "Ablation: utility tie-break (latest vs earliest)", AblationTieBreak},
		{"A2", "Ablation: region segmentation vs whole-stream batching", AblationSegmentation},
		{"A3", "Ablation: greedy vs exact hitting set per region", AblationGreedyVsExact},
	}
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, error) {
	for _, r := range Registry() {
		if strings.EqualFold(r.ID, id) {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// --- shared workload helpers -------------------------------------------

// namosTrace builds the default evaluation trace.
func namosTrace(cfg Config) (*tuple.Series, error) {
	return trace.NAMOS(trace.Config{N: cfg.N, Seed: cfg.Seed})
}

// variant names one algorithm configuration of Fig 4.2's table.
type variant struct {
	name string
	opts core.Options
	si   bool
}

// fiveVariants is the algorithm set of the basic-results figures:
// RG, RG+C, PS, PS+C (125 ms budget, as in the paper's "large enough so
// few regions were cut"), and SI.
func fiveVariants(mc time.Duration) []variant {
	cut := 125 * time.Millisecond
	return []variant{
		{name: "RG", opts: core.Options{Algorithm: core.RG, MulticastDelay: mc}},
		{name: "RG+C", opts: core.Options{Algorithm: core.RG, Cuts: true, MaxDelay: cut, MulticastDelay: mc}},
		{name: "PS", opts: core.Options{Algorithm: core.PS, MulticastDelay: mc}},
		{name: "PS+C", opts: core.Options{Algorithm: core.PS, Cuts: true, MaxDelay: cut, MulticastDelay: mc}},
		{name: "SI", opts: core.Options{MulticastDelay: mc}, si: true},
	}
}

// runVariant executes one algorithm variant over a freshly built group.
func runVariant(g quality.Group, sr *tuple.Series, v variant) (*core.Result, error) {
	fs, err := g.Build()
	if err != nil {
		return nil, err
	}
	if v.si {
		return core.RunSelfInterested(fs, sr, v.opts)
	}
	return core.Run(fs, sr, v.opts)
}

// fmtMS formats a duration in milliseconds with 3 decimals.
func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// fmtRatio formats a ratio with 4 decimals.
func fmtRatio(r float64) string { return fmt.Sprintf("%.4f", r) }

// batchOutputRatio computes the paper's §5.4 metric: the output ratio
// (group-aware outputs over self-interested outputs) per batch of
// batchSize input tuples, returning the average and median across batches
// with non-zero SI output.
func batchOutputRatio(ga, si *core.Result, n, batchSize int) (avg, median float64) {
	counts := func(r *core.Result) []int {
		c := make([]int, (n+batchSize-1)/batchSize)
		seen := make(map[int]bool)
		for _, tr := range r.Transmissions {
			if seen[tr.Tuple.Seq] {
				continue
			}
			seen[tr.Tuple.Seq] = true
			if b := tr.Tuple.Seq / batchSize; b < len(c) {
				c[b]++
			}
		}
		return c
	}
	gaC, siC := counts(ga), counts(si)
	var ratios []float64
	for i := range gaC {
		if siC[i] > 0 {
			ratios = append(ratios, float64(gaC[i])/float64(siC[i]))
		}
	}
	if len(ratios) == 0 {
		return 0, 0
	}
	s := metrics.Summarize(ratios)
	return s.Mean, s.Median
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
