package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"gasf/internal/core"
	"gasf/internal/metrics"
	"gasf/internal/quality"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// Table41Specs regenerates Table 4.1: the three filter groups derived from
// the trace's srcStatistics.
func Table41Specs(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	groups, err := quality.Table41(sr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("GROUP NAME", "FILTER")
	for _, g := range groups {
		for _, sp := range g.Specs {
			tb.AddRow(g.Name, sp.String())
		}
	}
	vals := map[string]float64{"groups": float64(len(groups))}
	return &Report{ID: "T4.1", Title: "Specifications for groups of filters", Text: tb.String(), Values: vals}, nil
}

// Fig42OIRatios regenerates Fig 4.2: O/I ratios of the three Table 4.1
// groups under RG, RG+C, PS, PS+C and SI. Paper shape: every group-aware
// variant lands well below SI (0.33-0.38 vs 0.46-0.51 on NAMOS).
func Fig42OIRatios(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	groups, err := quality.Table41(sr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("group", "algorithm", "O/I ratio")
	vals := make(map[string]float64)
	for _, g := range groups {
		for _, v := range fiveVariants(cfg.MulticastDelay) {
			res, err := runVariant(g, sr, v)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", g.Name, v.name, err)
			}
			oi := res.Stats.OIRatio()
			tb.AddRow(g.Name, v.name, fmtRatio(oi))
			vals[g.Name+"/"+v.name] = oi
		}
	}
	return &Report{ID: "F4.2", Title: "O/I ratios for three groups", Text: tb.String(), Values: vals}, nil
}

// cpuBoxplots runs each variant cfg.Runs times and box-plots the mean CPU
// cost per tuple (the paper's Figs 4.3-4.5 layout).
func cpuBoxplots(cfg Config, sr *tuple.Series, groups []quality.Group) (*metrics.Table, map[string]float64, error) {
	tb := metrics.NewTable("group", "algorithm", "CPU/tuple (ms, box plot)")
	vals := make(map[string]float64)
	for _, g := range groups {
		for _, v := range fiveVariants(cfg.MulticastDelay) {
			var samples []float64
			for run := 0; run < cfg.Runs; run++ {
				res, err := runVariant(g, sr, v)
				if err != nil {
					return nil, nil, err
				}
				samples = append(samples, float64(res.Stats.CPUPerTuple())/float64(time.Millisecond))
			}
			bp := metrics.NewBoxPlot(samples)
			tb.AddRow(g.Name, v.name, bp.String())
			vals[g.Name+"/"+v.name] = bp.Median
		}
	}
	return tb, vals, nil
}

// Fig43to45CPUCost regenerates Figs 4.3-4.5: CPU cost per tuple for the
// three groups. Paper shape: group-aware filters cost several times the SI
// baseline, but stay well under the inter-arrival interval.
func Fig43to45CPUCost(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	groups, err := quality.Table41(sr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb, vals, err := cpuBoxplots(cfg, sr, groups)
	if err != nil {
		return nil, err
	}
	return &Report{ID: "F4.3-4.5", Title: "CPU cost per tuple", Text: tb.String(), Values: vals}, nil
}

// Fig46to48Latency regenerates Figs 4.6-4.8: per-delivery latency box
// plots. Paper shape: SI ~12 ms (the delivery constant); group-aware
// variants add the region wait (~tens of ms at a 10 ms tuple interval).
func Fig46to48Latency(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	groups, err := quality.Table41(sr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("group", "algorithm", "latency (ms, box plot)", "mean (ms)")
	vals := make(map[string]float64)
	for _, g := range groups {
		for _, v := range fiveVariants(cfg.MulticastDelay) {
			res, err := runVariant(g, sr, v)
			if err != nil {
				return nil, err
			}
			samples := metrics.Durations(res.Stats.Latencies)
			bp := metrics.NewBoxPlot(samples)
			mean := metrics.Summarize(samples).Mean
			tb.AddRow(g.Name, v.name, bp.String(), fmt.Sprintf("%.2f", mean))
			vals[g.Name+"/"+v.name] = mean
		}
	}
	return &Report{ID: "F4.6-4.8", Title: "Latency per tuple", Text: tb.String(), Values: vals}, nil
}

// cutBudgets are the paper's RG+C(01)..RG+C(05) sweep: 125 ms down
// 16-fold to 8 ms (§4.5).
var cutBudgets = []time.Duration{
	125 * time.Millisecond,
	60 * time.Millisecond,
	30 * time.Millisecond,
	15 * time.Millisecond,
	8 * time.Millisecond,
}

// fluoroGroup returns the DC_Fluoro group used by the cut experiments.
func fluoroGroup(cfg Config, sr *tuple.Series) (quality.Group, error) {
	groups, err := quality.Table41(sr, cfg.Seed)
	if err != nil {
		return quality.Group{}, err
	}
	return groups[0], nil
}

// cutSweep runs RG+C across the budget sweep.
func cutSweep(cfg Config) ([]*core.Result, *tuple.Series, error) {
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, nil, err
	}
	g, err := fluoroGroup(cfg, sr)
	if err != nil {
		return nil, nil, err
	}
	var out []*core.Result
	for _, budget := range cutBudgets {
		res, err := runVariant(g, sr, variant{
			name: "RG+C",
			opts: core.Options{Algorithm: core.RG, Cuts: true, MaxDelay: budget, MulticastDelay: cfg.MulticastDelay},
		})
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
	}
	return out, sr, nil
}

// Fig49CutLatency regenerates Fig 4.9: tightening the budget from 125 ms
// to 8 ms drops mean latency toward the SI floor.
func Fig49CutLatency(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	results, _, err := cutSweep(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("budget", "latency mean (ms)", "latency (box plot)")
	vals := make(map[string]float64)
	for i, res := range results {
		samples := metrics.Durations(res.Stats.Latencies)
		mean := metrics.Summarize(samples).Mean
		name := fmt.Sprintf("RG+C(%02d)=%v", i+1, cutBudgets[i])
		tb.AddRow(name, fmt.Sprintf("%.2f", mean), metrics.NewBoxPlot(samples).String())
		vals[fmt.Sprintf("budget%d", i+1)] = mean
	}
	return &Report{ID: "F4.9", Title: "Cuts affect latency", Text: tb.String(), Values: vals}, nil
}

// Fig410CutCPU regenerates Fig 4.10: the CPU cost of enforcing cuts stays
// small (well under the tuple interval).
func Fig410CutCPU(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	results, _, err := cutSweep(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("budget", "CPU/tuple (ms)", "greedy share (ms)")
	vals := make(map[string]float64)
	for i, res := range results {
		cpu := float64(res.Stats.CPUPerTuple()) / float64(time.Millisecond)
		greedy := float64(res.Stats.GreedyCPU) / float64(res.Stats.Inputs) / float64(time.Millisecond)
		tb.AddRow(fmt.Sprintf("RG+C(%02d)", i+1), fmt.Sprintf("%.4f", cpu), fmt.Sprintf("%.4f", greedy))
		vals[fmt.Sprintf("budget%d", i+1)] = cpu
	}
	return &Report{ID: "F4.10", Title: "CPU cost of cuts", Text: tb.String(), Values: vals}, nil
}

// Fig411PercentCut regenerates Fig 4.11: the share of regions closed by a
// cut rises as the budget tightens.
func Fig411PercentCut(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	results, _, err := cutSweep(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("budget", "% regions cut", "regions")
	vals := make(map[string]float64)
	for i, res := range results {
		pct := 0.0
		if res.Stats.Regions > 0 {
			pct = 100 * float64(res.Stats.RegionsCut) / float64(res.Stats.Regions)
		}
		tb.AddRow(fmt.Sprintf("RG+C(%02d)", i+1), fmt.Sprintf("%.1f", pct), fmt.Sprintf("%d", res.Stats.Regions))
		vals[fmt.Sprintf("budget%d", i+1)] = pct
	}
	return &Report{ID: "F4.11", Title: "Percent of regions cut", Text: tb.String(), Values: vals}, nil
}

// Fig412CutOI regenerates Fig 4.12: cuts trade a slightly higher O/I ratio
// for latency; never worse than SI.
func Fig412CutOI(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	results, sr, err := cutSweep(cfg)
	if err != nil {
		return nil, err
	}
	g, err := fluoroGroup(cfg, sr)
	if err != nil {
		return nil, err
	}
	si, err := runVariant(g, sr, variant{name: "SI", si: true, opts: core.Options{MulticastDelay: cfg.MulticastDelay}})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("budget", "O/I ratio")
	vals := make(map[string]float64)
	for i, res := range results {
		tb.AddRow(fmt.Sprintf("RG+C(%02d)", i+1), fmtRatio(res.Stats.OIRatio()))
		vals[fmt.Sprintf("budget%d", i+1)] = res.Stats.OIRatio()
	}
	tb.AddRow("SI", fmtRatio(si.Stats.OIRatio()))
	vals["SI"] = si.Stats.OIRatio()
	return &Report{ID: "F4.12", Title: "Cuts affect O/I ratio", Text: tb.String(), Values: vals}, nil
}

// strategyVariants is the Fig 4.13/4.14 set: PS with each output strategy,
// plus SI.
func strategyVariants(cfg Config) []variant {
	mc := cfg.MulticastDelay
	return []variant{
		{name: "PS", opts: core.Options{Algorithm: core.PS, MulticastDelay: mc}},
		{name: "PS(B)-100", opts: core.Options{Algorithm: core.PS, Strategy: core.Batched, BatchSize: 100, MulticastDelay: mc}},
		{name: "PS(B)-300", opts: core.Options{Algorithm: core.PS, Strategy: core.Batched, BatchSize: 300, MulticastDelay: mc}},
		{name: "PS(Pcs)", opts: core.Options{Algorithm: core.PS, Strategy: core.PerCandidateSet, MulticastDelay: mc}},
		{name: "SI", si: true, opts: core.Options{MulticastDelay: mc}},
	}
}

// Fig413OutputStrategyLatency regenerates Fig 4.13: per-candidate-set
// release beats region release; oversized batches backlog badly.
func Fig413OutputStrategyLatency(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	g, err := fluoroGroup(cfg, sr)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("strategy", "latency mean (ms)", "latency (box plot)")
	vals := make(map[string]float64)
	for _, v := range strategyVariants(cfg) {
		res, err := runVariant(g, sr, v)
		if err != nil {
			return nil, err
		}
		samples := metrics.Durations(res.Stats.Latencies)
		mean := metrics.Summarize(samples).Mean
		tb.AddRow(v.name, fmt.Sprintf("%.2f", mean), metrics.NewBoxPlot(samples).String())
		vals[v.name] = mean
	}
	return &Report{ID: "F4.13", Title: "Output strategy affects timeliness", Text: tb.String(), Values: vals}, nil
}

// Fig414OutputStrategyCPU regenerates Fig 4.14: batched output skips
// region bookkeeping pressure at release time and costs slightly less CPU.
func Fig414OutputStrategyCPU(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	g, err := fluoroGroup(cfg, sr)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("strategy", "CPU/tuple (ms)")
	vals := make(map[string]float64)
	for _, v := range strategyVariants(cfg) {
		res, err := runVariant(g, sr, v)
		if err != nil {
			return nil, err
		}
		cpu := float64(res.Stats.CPUPerTuple()) / float64(time.Millisecond)
		tb.AddRow(v.name, fmt.Sprintf("%.4f", cpu))
		vals[v.name] = cpu
	}
	return &Report{ID: "F4.14", Title: "CPU cost of output strategies", Text: tb.String(), Values: vals}, nil
}

// Fig415SlackSweep regenerates Fig 4.15: output ratio (GA/SI) versus slack
// as a percentage of delta. Paper shape: ~1.0 at 3% slack falling to
// ~0.74 at 50%.
func Fig415SlackSweep(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	stat, err := quality.SrcStatistics(sr, "tmpr4")
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("slack (% of delta)", "output ratio")
	vals := make(map[string]float64)
	for _, pct := range []float64{3, 10, 20, 30, 40, 50} {
		g := quality.Group{Name: "DC_Tmpr"}
		for i, mult := range []float64{1, 2, 1.55} {
			delta := mult * stat
			g.Specs = append(g.Specs, quality.Spec{
				Kind: quality.DC1, Attrs: []string{"tmpr4"},
				Delta: delta, Slack: pct / 100 * delta,
			})
			_ = i
		}
		ga, err := runVariant(g, sr, variant{name: "RG", opts: core.Options{Algorithm: core.RG}})
		if err != nil {
			return nil, err
		}
		si, err := runVariant(g, sr, variant{name: "SI", si: true})
		if err != nil {
			return nil, err
		}
		ratio := float64(ga.Stats.DistinctOutputs) / float64(si.Stats.DistinctOutputs)
		tb.AddRow(fmt.Sprintf("%.0f%%", pct), fmtRatio(ratio))
		vals[fmt.Sprintf("slack%.0f", pct)] = ratio
	}
	return &Report{ID: "F4.15", Title: "Slack's effect on performance", Text: tb.String(), Values: vals}, nil
}

// Fig416DeltaSweep regenerates Fig 4.16: two filters fixed at 2x and 3x
// srcStatistics, the third swept from 1x to 2x; the output ratio is mostly
// level with jumps where candidate overlap changes discontinuously.
func Fig416DeltaSweep(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	stat, err := quality.SrcStatistics(sr, "tmpr4")
	if err != nil {
		return nil, err
	}
	slack := 0.5 * stat
	tb := metrics.NewTable("delta (x srcStat)", "output ratio")
	vals := make(map[string]float64)
	var ratios []float64
	for mult := 1.0; mult <= 2.001; mult += 0.1 {
		g := quality.Group{Name: "DC_Tmpr", Specs: []quality.Spec{
			{Kind: quality.DC1, Attrs: []string{"tmpr4"}, Delta: 2 * stat, Slack: slack},
			{Kind: quality.DC1, Attrs: []string{"tmpr4"}, Delta: 3 * stat, Slack: slack},
			{Kind: quality.DC1, Attrs: []string{"tmpr4"}, Delta: mult * stat, Slack: slack},
		}}
		ga, err := runVariant(g, sr, variant{name: "RG", opts: core.Options{Algorithm: core.RG}})
		if err != nil {
			return nil, err
		}
		si, err := runVariant(g, sr, variant{name: "SI", si: true})
		if err != nil {
			return nil, err
		}
		ratio := float64(ga.Stats.DistinctOutputs) / float64(si.Stats.DistinctOutputs)
		ratios = append(ratios, ratio)
		tb.AddRow(fmt.Sprintf("%.1f", mult), fmtRatio(ratio))
		vals[fmt.Sprintf("delta%.1f", mult)] = ratio
	}
	s := metrics.Summarize(ratios)
	tb.AddRow("average", fmtRatio(s.Mean))
	tb.AddRow("median", fmtRatio(s.Median))
	vals["average"], vals["median"] = s.Mean, s.Median
	return &Report{ID: "F4.16", Title: "Delta's effect on performance", Text: tb.String(), Values: vals}, nil
}

// Fig417GroupSize regenerates Fig 4.17: output ratio versus group size
// (3..20 filters, cfg.Runs random draws each); the median trends downward.
func Fig417GroupSize(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{3, 5, 7, 9, 11, 13, 15, 17, 20}
	if cfg.Quick {
		sizes = []int{3, 7, 12, 20}
	}
	tb := metrics.NewTable("group size", "output ratio (box plot)", "median")
	vals := make(map[string]float64)
	for _, n := range sizes {
		var ratios []float64
		for run := 0; run < cfg.Runs; run++ {
			g, err := quality.GroupSizeGroup("tmpr4", sr, n, cfg.Seed+int64(run)*101+int64(n))
			if err != nil {
				return nil, err
			}
			ga, err := runVariant(g, sr, variant{name: "RG", opts: core.Options{Algorithm: core.RG}})
			if err != nil {
				return nil, err
			}
			si, err := runVariant(g, sr, variant{name: "SI", si: true})
			if err != nil {
				return nil, err
			}
			if si.Stats.DistinctOutputs > 0 {
				ratios = append(ratios, float64(ga.Stats.DistinctOutputs)/float64(si.Stats.DistinctOutputs))
			}
		}
		bp := metrics.NewBoxPlot(ratios)
		tb.AddRow(fmt.Sprintf("%d", n), bp.String(), fmtRatio(bp.Median))
		vals[fmt.Sprintf("n%d", n)] = bp.Median
	}
	return &Report{ID: "F4.17", Title: "Group size's effect on output ratio", Text: tb.String(), Values: vals}, nil
}

// Fig418GroupSizeCPU regenerates Fig 4.18: CPU per batch of 100 tuples
// grows roughly linearly with group size, group-aware costing about twice
// self-interested.
func Fig418GroupSizeCPU(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{3, 5, 7, 9, 11, 13, 15, 17, 20}
	if cfg.Quick {
		sizes = []int{3, 7, 12, 20}
	}
	tb := metrics.NewTable("group size", "GA CPU/100 tuples (ms)", "SI CPU/100 tuples (ms)", "ratio")
	vals := make(map[string]float64)
	for _, n := range sizes {
		g, err := quality.GroupSizeGroup("tmpr4", sr, n, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		ga, err := runVariant(g, sr, variant{name: "RG", opts: core.Options{Algorithm: core.RG}})
		if err != nil {
			return nil, err
		}
		si, err := runVariant(g, sr, variant{name: "SI", si: true})
		if err != nil {
			return nil, err
		}
		gaCPU := float64(ga.Stats.CPU) / float64(ga.Stats.Inputs) * 100 / float64(time.Millisecond)
		siCPU := float64(si.Stats.CPU) / float64(si.Stats.Inputs) * 100 / float64(time.Millisecond)
		ratio := math.Inf(1)
		if siCPU > 0 {
			ratio = gaCPU / siCPU
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", gaCPU), fmt.Sprintf("%.3f", siCPU), fmt.Sprintf("%.2f", ratio))
		vals[fmt.Sprintf("n%d/ga", n)] = gaCPU
		vals[fmt.Sprintf("n%d/si", n)] = siCPU
	}
	return &Report{ID: "F4.18", Title: "Group size's effect on CPU cost", Text: tb.String(), Values: vals}, nil
}

// sourceWorkloads builds the three Fig 4.19/4.20 data sources with their
// groups.
func sourceWorkloads(cfg Config) (map[string]*tuple.Series, map[string]quality.Group, error) {
	cow, err := trace.Cow(trace.Config{N: cfg.N, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	seis, err := trace.Seismic(trace.Config{N: cfg.N, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	fire, err := trace.FireHRR(trace.Config{N: cfg.N, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	series := map[string]*tuple.Series{"cow": cow, "seismic": seis, "fire": fire}
	groups := make(map[string]quality.Group, 3)
	for name, attr := range map[string]string{"cow": "E-orient", "seismic": "seis", "fire": "HRR"} {
		g, err := quality.SourceGroup("DC_"+name, attr, series[name], cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		groups[name] = g
	}
	return series, groups, nil
}

// Fig419SourceSpecs regenerates Fig 4.19: the filter specifications for
// the cow/volcano/fire sources.
func Fig419SourceSpecs(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	_, groups, err := sourceWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("GROUP NAME", "FILTER")
	for _, name := range []string{"cow", "seismic", "fire"} {
		for _, sp := range groups[name].Specs {
			tb.AddRow(groups[name].Name, sp.String())
		}
	}
	return &Report{ID: "F4.19", Title: "Filter specifications for multiple data sources", Text: tb.String(),
		Values: map[string]float64{"groups": 3}}, nil
}

// Fig420SourceOI regenerates Fig 4.20: O/I ratios per data source and
// algorithm. Paper shape: group-aware filtering reduces bandwidth to
// ~83% (cow), ~74% (seismic) and ~60% (fire HRR) of self-interested.
func Fig420SourceOI(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	series, groups, err := sourceWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("source", "algorithm", "O/I ratio", "output ratio vs SI")
	vals := make(map[string]float64)
	for _, name := range []string{"cow", "seismic", "fire"} {
		si, err := runVariant(groups[name], series[name], variant{name: "SI", si: true, opts: core.Options{MulticastDelay: cfg.MulticastDelay}})
		if err != nil {
			return nil, err
		}
		for _, v := range fiveVariants(cfg.MulticastDelay) {
			res := si
			if !v.si {
				res, err = runVariant(groups[name], series[name], v)
				if err != nil {
					return nil, err
				}
			}
			ratio := 1.0
			if si.Stats.DistinctOutputs > 0 {
				ratio = float64(res.Stats.DistinctOutputs) / float64(si.Stats.DistinctOutputs)
			}
			tb.AddRow(name, v.name, fmtRatio(res.Stats.OIRatio()), fmtRatio(ratio))
			vals[name+"/"+v.name] = ratio
		}
	}
	return &Report{ID: "F4.20", Title: "O/I ratios with different data sources", Text: tb.String(), Values: vals}, nil
}

// Fig421to423Traces summarizes the update patterns of the three sources
// (the paper plots the raw series; we report the statistics the analysis
// relies on: burstiness vs smoothness).
func Fig421to423Traces(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	series, _, err := sourceWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	attrs := map[string]string{"cow": "E-orient", "seismic": "seis", "fire": "HRR"}
	tb := metrics.NewTable("source", "tuples", "srcStatistics", "max step / mean step", "quiet steps %")
	vals := make(map[string]float64)
	for _, name := range []string{"cow", "seismic", "fire"} {
		sr := series[name]
		col, err := sr.Column(attrs[name])
		if err != nil {
			return nil, err
		}
		stat, err := sr.MeanAbsChange(attrs[name])
		if err != nil {
			return nil, err
		}
		maxStep, quiet := 0.0, 0
		for i := 1; i < len(col); i++ {
			d := math.Abs(col[i] - col[i-1])
			if d > maxStep {
				maxStep = d
			}
			if d < stat/4 {
				quiet++
			}
		}
		burst := maxStep / stat
		quietPct := 100 * float64(quiet) / float64(len(col)-1)
		tb.AddRow(name, fmt.Sprintf("%d", sr.Len()), fmt.Sprintf("%.5g", stat),
			fmt.Sprintf("%.1f", burst), fmt.Sprintf("%.1f", quietPct))
		vals[name+"/burst"] = burst
		vals[name+"/quietPct"] = quietPct
	}
	return &Report{ID: "F4.21-4.23", Title: "Source update patterns", Text: tb.String(), Values: vals}, nil
}

// Fig424SourceCPU regenerates Fig 4.24: CPU cost per tuple per source; the
// group-aware overhead stays below ~50% extra for each source.
func Fig424SourceCPU(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	series, groups, err := sourceWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("source", "algorithm", "CPU/tuple (ms)")
	vals := make(map[string]float64)
	for _, name := range []string{"cow", "seismic", "fire"} {
		for _, v := range fiveVariants(cfg.MulticastDelay) {
			res, err := runVariant(groups[name], series[name], v)
			if err != nil {
				return nil, err
			}
			cpu := float64(res.Stats.CPUPerTuple()) / float64(time.Millisecond)
			tb.AddRow(name, v.name, fmt.Sprintf("%.4f", cpu))
			vals[name+"/"+v.name] = cpu
		}
	}
	return &Report{ID: "F4.24", Title: "CPU cost with different data sources", Text: tb.String(), Values: vals}, nil
}

// RenderValues produces a stable one-line rendering of a report's value
// map; used by EXPERIMENTS.md generation and debugging.
func RenderValues(vals map[string]float64) string {
	var b strings.Builder
	for _, k := range sortedKeys(vals) {
		fmt.Fprintf(&b, "%s=%.4g ", k, vals[k])
	}
	return strings.TrimSpace(b.String())
}
