package experiments

import (
	"strings"
	"testing"
)

// quickCfg keeps test workloads small.
func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// TestRegistryComplete: every evaluation table and figure has a runner.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"F1.3",
		"T4.1", "F4.2", "F4.3-4.5", "F4.6-4.8", "F4.9", "F4.10", "F4.11",
		"F4.12", "F4.13", "F4.14", "F4.15", "F4.16", "F4.17", "F4.18",
		"F4.19", "F4.20", "F4.21-4.23", "F4.24",
		"T5.2", "F5.2", "T5.3", "F5.3",
		"A1", "A2", "A3",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, err := Find("F4.2"); err != nil {
		t.Errorf("Find(F4.2): %v", err)
	}
	if _, err := Find("f4.2"); err != nil {
		t.Errorf("Find is case-sensitive: %v", err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find(nope) should fail")
	}
}

// TestAllExperimentsRun executes every runner on the quick config; each
// must produce a non-empty report.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep, err := r.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if rep.Text == "" {
				t.Errorf("%s produced empty text", r.ID)
			}
			if len(rep.Values) == 0 {
				t.Errorf("%s produced no values", r.ID)
			}
		})
	}
}

// TestFig42Shape: the headline result — every group-aware variant beats SI
// on O/I ratio for all three groups.
func TestFig42Shape(t *testing.T) {
	rep, err := Fig42OIRatios(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"DC_Fluoro", "DC_Hybrid", "DC_Tmpr"} {
		si := rep.Values[g+"/SI"]
		if si <= 0 {
			t.Fatalf("%s SI ratio missing", g)
		}
		for _, alg := range []string{"RG", "RG+C", "PS", "PS+C"} {
			ga := rep.Values[g+"/"+alg]
			if ga > si {
				t.Errorf("%s/%s O/I %.4f above SI %.4f", g, alg, ga, si)
			}
			if ga > 0.9*si {
				t.Logf("%s/%s saves only %.1f%% (GA %.4f vs SI %.4f)", g, alg, 100*(1-ga/si), ga, si)
			}
		}
	}
}

// TestFig49Shape: latency decreases monotonically (within 1 ms noise) as
// the budget tightens.
func TestFig49Shape(t *testing.T) {
	rep, err := Fig49CutLatency(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := rep.Values["budget1"]
	for i := 2; i <= 5; i++ {
		cur := rep.Values[intKey("budget", i)]
		if cur > prev+1 {
			t.Errorf("latency rose from %.2f to %.2f at budget %d", prev, cur, i)
		}
		prev = cur
	}
}

func intKey(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// TestFig411Shape: percent of regions cut grows as the budget tightens.
func TestFig411Shape(t *testing.T) {
	rep, err := Fig411PercentCut(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["budget5"] <= rep.Values["budget1"] {
		t.Errorf("percent cut did not increase: %.1f -> %.1f",
			rep.Values["budget1"], rep.Values["budget5"])
	}
}

// TestFig415Shape: the output ratio decreases as slack grows (Fig 4.15's
// monotone trend), and sits near 1.0 at 3% slack.
func TestFig415Shape(t *testing.T) {
	rep, err := Fig415SlackSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["slack3"] < 0.9 {
		t.Errorf("3%% slack ratio %.4f unexpectedly low", rep.Values["slack3"])
	}
	if rep.Values["slack50"] >= rep.Values["slack3"] {
		t.Errorf("ratio did not fall with slack: 3%%=%.4f 50%%=%.4f",
			rep.Values["slack3"], rep.Values["slack50"])
	}
}

// TestFig417Shape: larger groups trend toward lower output ratios.
func TestFig417Shape(t *testing.T) {
	rep, err := Fig417GroupSize(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	small, large := rep.Values["n3"], rep.Values["n20"]
	if small == 0 || large == 0 {
		t.Fatalf("missing endpoints: %v", rep.Values)
	}
	if large > small {
		t.Errorf("output ratio grew with group size: n3=%.4f n20=%.4f", small, large)
	}
}

// TestFig53Shape: the CPU overhead ratio is above 1 for every group (group
// awareness costs CPU; that is the trade).
func TestFig53Shape(t *testing.T) {
	rep, err := Fig53OverheadRatio(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for name, ratio := range rep.Values {
		if ratio <= 1 {
			t.Errorf("group %s overhead ratio %.2f <= 1", name, ratio)
		}
	}
}

// TestAblationSegmentationEqualOutputs: Theorem 2 in action — identical
// O/I with and without region-time release.
func TestAblationSegmentationEqualOutputs(t *testing.T) {
	rep, err := AblationSegmentation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["region/oi"] != rep.Values["whole/oi"] {
		t.Errorf("segmentation changed output: %.4f vs %.4f",
			rep.Values["region/oi"], rep.Values["whole/oi"])
	}
	if rep.Values["whole/latency"] <= rep.Values["region/latency"] {
		t.Errorf("whole-stream latency %.2f not above per-region %.2f",
			rep.Values["whole/latency"], rep.Values["region/latency"])
	}
}

// TestAblationGreedyGap: the greedy solution never beats exact, and the
// overall gap stays within the theoretical H(max set) bound — in practice
// tiny.
func TestAblationGreedyGap(t *testing.T) {
	rep, err := AblationGreedyVsExact(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Values["greedy"] < rep.Values["exact"] {
		t.Errorf("greedy %v beat exact %v", rep.Values["greedy"], rep.Values["exact"])
	}
	if rep.Values["overall"] > 1.5 {
		t.Errorf("greedy/exact overall ratio %.3f suspiciously large", rep.Values["overall"])
	}
}

// TestBatchOutputRatioHelper sanity-checks the §5.4 metric computation.
func TestBatchOutputRatioHelper(t *testing.T) {
	rep, err := Fig52OutputRatio(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range rep.Values {
		if strings.HasSuffix(key, "/avg") || strings.HasSuffix(key, "/median") {
			if v <= 0 || v > 1.2 {
				t.Errorf("%s = %.4f outside plausible output-ratio range", key, v)
			}
		}
	}
}

// TestRenderValuesStable: deterministic rendering.
func TestRenderValuesStable(t *testing.T) {
	vals := map[string]float64{"b": 2, "a": 1}
	if got := RenderValues(vals); got != "a=1 b=2" {
		t.Errorf("RenderValues = %q", got)
	}
}
