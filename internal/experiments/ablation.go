package experiments

import (
	"fmt"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/hitting"
	"gasf/internal/metrics"
)

// AblationTieBreak compares the paper's freshness tie-break (latest
// timestamp) with the earliest-timestamp alternative: the output size is
// expected to match while delivered data ages differ.
func AblationTieBreak(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	g, err := fluoroGroup(cfg, sr)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("tie-break", "O/I ratio", "mean delivered-data age (ms)")
	vals := make(map[string]float64)
	for _, tc := range []struct {
		name string
		ties core.TieBreak
	}{
		{"prefer-latest", core.PreferLatest},
		{"prefer-earliest", core.PreferEarliest},
	} {
		res, err := runVariant(g, sr, variant{name: tc.name,
			opts: core.Options{Algorithm: core.RG, Ties: tc.ties, MulticastDelay: cfg.MulticastDelay}})
		if err != nil {
			return nil, err
		}
		// Data age at release: how stale the chosen tuple already was
		// when released — the freshness the tie-break rule targets.
		var age time.Duration
		var n int
		for _, tr := range res.Transmissions {
			age += tr.ReleasedAt.Sub(tr.Tuple.TS)
			n++
		}
		meanAge := 0.0
		if n > 0 {
			meanAge = float64(age) / float64(n) / float64(time.Millisecond)
		}
		tb.AddRow(tc.name, fmtRatio(res.Stats.OIRatio()), fmt.Sprintf("%.2f", meanAge))
		vals[tc.name+"/oi"] = res.Stats.OIRatio()
		vals[tc.name+"/age"] = meanAge
	}
	return &Report{ID: "A1", Title: "Tie-break ablation", Text: tb.String(), Values: vals}, nil
}

// AblationSegmentation validates Theorem 2 operationally: deciding per
// region (RG) versus holding everything to the end of the stream (batched
// release over the whole run) yields identical output sets; only latency
// differs.
func AblationSegmentation(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	g, err := fluoroGroup(cfg, sr)
	if err != nil {
		return nil, err
	}
	regionRes, err := runVariant(g, sr, variant{name: "RG",
		opts: core.Options{Algorithm: core.RG, MulticastDelay: cfg.MulticastDelay}})
	if err != nil {
		return nil, err
	}
	wholeRes, err := runVariant(g, sr, variant{name: "RG-whole",
		opts: core.Options{Algorithm: core.RG, Strategy: core.Batched, BatchSize: cfg.N + 1, MulticastDelay: cfg.MulticastDelay}})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("variant", "O/I ratio", "mean latency (ms)")
	for _, row := range []struct {
		name string
		res  *core.Result
	}{{"per-region", regionRes}, {"whole-stream", wholeRes}} {
		tb.AddRow(row.name, fmtRatio(row.res.Stats.OIRatio()),
			fmt.Sprintf("%.2f", float64(row.res.Stats.MeanLatency())/float64(time.Millisecond)))
	}
	vals := map[string]float64{
		"region/oi":      regionRes.Stats.OIRatio(),
		"whole/oi":       wholeRes.Stats.OIRatio(),
		"region/latency": float64(regionRes.Stats.MeanLatency()) / float64(time.Millisecond),
		"whole/latency":  float64(wholeRes.Stats.MeanLatency()) / float64(time.Millisecond),
	}
	return &Report{ID: "A2", Title: "Segmentation ablation", Text: tb.String(), Values: vals}, nil
}

// AblationGreedyVsExact measures the greedy hitting set's optimality gap:
// it re-collects every region's candidate sets on a short stream and
// solves each both greedily and exactly. Theorem 1 bounds the gap at
// H(max set size); in practice the regions are small and the gap is tiny.
func AblationGreedyVsExact(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := cfg.N
	if n > 3000 {
		n = 3000 // the exact solver is exponential in the worst case
	}
	shortCfg := cfg
	shortCfg.N = n
	sr, err := namosTrace(shortCfg)
	if err != nil {
		return nil, err
	}
	g, err := fluoroGroup(shortCfg, sr)
	if err != nil {
		return nil, err
	}
	fs, err := g.Build()
	if err != nil {
		return nil, err
	}
	// Collect candidate sets per region by replaying the filters and
	// tracking closures; regions are approximated by greedy connected
	// grouping on cover intersection, which is exactly what the engine
	// uses.
	var all []*filter.CandidateSet
	for i := 0; i < sr.Len(); i++ {
		for _, f := range fs {
			ev, err := f.Process(sr.At(i))
			if err != nil {
				return nil, err
			}
			if ev.Closed != nil {
				all = append(all, ev.Closed)
			}
		}
	}
	for _, f := range fs {
		if cs, _ := f.Cut(); cs != nil {
			all = append(all, cs)
		}
	}
	regions := groupByCover(all)
	greedyTotal, exactTotal := 0, 0
	worst := 1.0
	for _, sets := range regions {
		gp, err := hitting.Greedy(sets)
		if err != nil {
			return nil, err
		}
		ep, err := hitting.Exact(sets)
		if err != nil {
			return nil, err
		}
		greedyTotal += len(gp)
		exactTotal += len(ep)
		if len(ep) > 0 {
			if r := float64(len(gp)) / float64(len(ep)); r > worst {
				worst = r
			}
		}
	}
	tb := metrics.NewTable("metric", "value")
	tb.AddRow("regions", fmt.Sprintf("%d", len(regions)))
	tb.AddRow("greedy total picks", fmt.Sprintf("%d", greedyTotal))
	tb.AddRow("exact total picks", fmt.Sprintf("%d", exactTotal))
	overall := 1.0
	if exactTotal > 0 {
		overall = float64(greedyTotal) / float64(exactTotal)
	}
	tb.AddRow("overall ratio", fmtRatio(overall))
	tb.AddRow("worst region ratio", fmtRatio(worst))
	vals := map[string]float64{
		"greedy":  float64(greedyTotal),
		"exact":   float64(exactTotal),
		"overall": overall,
		"worst":   worst,
	}
	return &Report{ID: "A3", Title: "Greedy vs exact hitting set", Text: tb.String(), Values: vals}, nil
}

// groupByCover partitions closed candidate sets into connected components
// by time-cover overlap (the region definition), assuming sets arrive
// roughly cover-ordered.
func groupByCover(sets []*filter.CandidateSet) [][]*filter.CandidateSet {
	if len(sets) == 0 {
		return nil
	}
	// Sort by cover start.
	sorted := make([]*filter.CandidateSet, len(sets))
	copy(sorted, sets)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].MinTS().Before(sorted[j-1].MinTS()); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var out [][]*filter.CandidateSet
	cur := []*filter.CandidateSet{sorted[0]}
	curMax := sorted[0].MaxTS()
	for _, cs := range sorted[1:] {
		if !cs.MinTS().After(curMax) {
			cur = append(cur, cs)
			if cs.MaxTS().After(curMax) {
				curMax = cs.MaxTS()
			}
			continue
		}
		out = append(out, cur)
		cur = []*filter.CandidateSet{cs}
		curMax = cs.MaxTS()
	}
	return append(out, cur)
}
