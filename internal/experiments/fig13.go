package experiments

import (
	"fmt"

	"gasf/internal/core"
	"gasf/internal/metrics"
	"gasf/internal/multicast"
	"gasf/internal/overlay"
	"gasf/internal/wire"
)

// Fig13Bandwidth regenerates the trade-off of Fig 1.3: the bandwidth
// consumed by (a) multicasting the raw stream, (b) self-interested
// filtering with multicast, and (c) group-aware filtering with multicast,
// measured on a 7-node overlay in both the wired (per-link bytes) and
// wireless (per-medium-transmission bytes) views. Group-aware filtering
// must squeeze the stream into the smallest pipe.
func Fig13Bandwidth(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sr, err := namosTrace(cfg)
	if err != nil {
		return nil, err
	}
	g, err := fluoroGroup(cfg, sr)
	if err != nil {
		return nil, err
	}

	net, err := overlay.New(overlay.Config{Nodes: 7, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	fs, err := g.Build()
	if err != nil {
		return nil, err
	}
	members := make(map[string]overlay.NodeID, len(fs))
	var apps []string
	for i, f := range fs {
		members[f.ID()] = net.NodeByIndex(i + 1)
		apps = append(apps, f.ID())
	}
	tree, err := multicast.BuildTree(net, net.NodeByIndex(0), members)
	if err != nil {
		return nil, err
	}

	send := func(trs []core.Transmission) (linkBytes, wirelessBytes int64, err error) {
		acct := multicast.NewAccounting()
		for _, tr := range trs {
			tr := tr
			_, err := tree.MulticastSized(tr.Destinations, func(branch []string) int {
				return wire.TransmissionSize(tr.Tuple, branch)
			}, acct)
			if err != nil {
				return 0, 0, err
			}
		}
		return acct.TotalBytes(), acct.WirelessBytes(), nil
	}

	// (a) no filtering: every tuple to every application.
	var raw []core.Transmission
	for i := 0; i < sr.Len(); i++ {
		raw = append(raw, core.Transmission{Tuple: sr.At(i), Destinations: apps, ReleasedAt: sr.At(i).TS})
	}
	// (b) self-interested filtering.
	si, err := runVariant(g, sr, variant{name: "SI", si: true})
	if err != nil {
		return nil, err
	}
	// (c) group-aware filtering.
	ga, err := runVariant(g, sr, variant{name: "RG", opts: core.Options{Algorithm: core.RG}})
	if err != nil {
		return nil, err
	}

	tb := metrics.NewTable("configuration", "link bytes", "wireless bytes", "vs raw")
	vals := make(map[string]float64)
	var rawWireless int64
	for _, row := range []struct {
		name string
		trs  []core.Transmission
	}{
		{"no filtering + multicast", raw},
		{"self-interested filtering + multicast", si.Transmissions},
		{"group-aware filtering + multicast", ga.Transmissions},
	} {
		link, wireless, err := send(row.trs)
		if err != nil {
			return nil, err
		}
		if rawWireless == 0 {
			rawWireless = wireless
		}
		frac := float64(wireless) / float64(rawWireless)
		tb.AddRow(row.name, fmt.Sprintf("%d", link), fmt.Sprintf("%d", wireless), fmtRatio(frac))
		vals[row.name+"/wireless"] = float64(wireless)
		vals[row.name+"/link"] = float64(link)
	}
	return &Report{ID: "F1.3", Title: "Bandwidth consumption trade-off", Text: tb.String(), Values: vals}, nil
}
