// Package intern provides a concurrency-safe bounded string interner.
//
// Long-lived registries keyed by names that repeat across sessions
// (source names surviving reconnect cycles, app names) otherwise retain
// one heap copy per session generation; interning pins one canonical
// copy and lets every later arrival share it. The table is bounded the
// same way wire.Interner is: when it fills, it is reset wholesale — an
// epoch flip — so an adversarial or unbounded name population costs
// re-interning, never unbounded memory.
package intern

import "sync"

// DefaultLimit bounds a Pool's table when New is given no limit.
const DefaultLimit = 1 << 16

// Pool is a bounded, concurrency-safe string interner. The read path
// (a hit) takes only the read lock.
type Pool struct {
	limit int
	mu    sync.RWMutex
	m     map[string]string
	// epochs counts wholesale resets (table overflow).
	epochs uint64
}

// New returns a pool bounded to limit entries (0 means DefaultLimit).
func New(limit int) *Pool {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Pool{limit: limit, m: make(map[string]string)}
}

// Intern returns the canonical copy of s, inserting it if absent.
func (p *Pool) Intern(s string) string {
	if p == nil {
		return s
	}
	p.mu.RLock()
	c, ok := p.m[s]
	p.mu.RUnlock()
	if ok {
		return c
	}
	p.mu.Lock()
	if c, ok = p.m[s]; ok {
		p.mu.Unlock()
		return c
	}
	if len(p.m) >= p.limit {
		p.m = make(map[string]string)
		p.epochs++
	}
	p.m[s] = s
	p.mu.Unlock()
	return s
}

// Len returns the current table size.
func (p *Pool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.m)
}

// Epochs returns how many times the table overflowed and was reset.
func (p *Pool) Epochs() uint64 {
	if p == nil {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.epochs
}
