package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

func TestInternCanonicalizes(t *testing.T) {
	p := New(0)
	a := p.Intern(string([]byte("source-7")))
	b := p.Intern(string([]byte("source-7")))
	if a != b {
		t.Fatal("interned strings differ")
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("interned copies do not share backing data")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}

func TestInternOverflowResets(t *testing.T) {
	p := New(8)
	for i := 0; i < 20; i++ {
		p.Intern(fmt.Sprintf("name-%d", i))
	}
	if p.Len() > 8 {
		t.Fatalf("table grew past its limit: %d", p.Len())
	}
	if p.Epochs() == 0 {
		t.Fatal("overflow never reset the table")
	}
	// Interning still works after a reset.
	a := p.Intern("name-19")
	b := p.Intern("name-19")
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("post-reset interning broken")
	}
}

func TestInternConcurrent(t *testing.T) {
	p := New(1024)
	var wg sync.WaitGroup
	out := make([][]string, 8)
	for g := range out {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := make([]string, 64)
			for i := range got {
				got[i] = p.Intern(fmt.Sprintf("shared-%d", i))
			}
			out[g] = got
		}(g)
	}
	wg.Wait()
	for i := 0; i < 64; i++ {
		want := unsafe.StringData(out[0][i])
		for g := 1; g < len(out); g++ {
			if unsafe.StringData(out[g][i]) != want {
				t.Fatalf("goroutines disagree on canonical copy of shared-%d", i)
			}
		}
	}
}

func TestInternNilSafe(t *testing.T) {
	var p *Pool
	if got := p.Intern("x"); got != "x" {
		t.Fatalf("nil pool returned %q", got)
	}
	if p.Len() != 0 || p.Epochs() != 0 {
		t.Fatal("nil pool stats nonzero")
	}
}
