package hitting

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gasf/internal/filter"
	"gasf/internal/tuple"
)

var schema = tuple.MustSchema("v")

func tupleAt(seq int) *tuple.Tuple {
	return tuple.MustNew(schema, seq, time.Unix(0, int64(seq)*int64(time.Millisecond)), []float64{float64(seq)})
}

// setOf builds a degree-1 candidate set over the given tuple seqs.
func setOf(owner string, ordinal int, seqs ...int) *filter.CandidateSet {
	members := make([]*tuple.Tuple, len(seqs))
	for i, s := range seqs {
		members[i] = tupleAt(s)
	}
	return &filter.CandidateSet{Owner: owner, Ordinal: ordinal, Members: members, PickDegree: 1}
}

func pickSeqs(picks []Pick) []int {
	out := make([]int, len(picks))
	for i, p := range picks {
		out[i] = p.Tuple.Seq
	}
	return out
}

// TestGreedyPaperRegion2 reproduces the hitting-set run of Fig 2.8 on
// region 2: sets A={3,4,5}, B={3,4}, C={5,6,7,8}, A'={7,8}, B'={7,8} (seqs
// of values {45,50,59},{45,50},{59,80,97,100},{97,100},{97,100}). Greedy
// picks 100 (seq 8, utility 3, latest among ties with 97), then 50 (seq 4,
// tie with 45 broken by recency).
func TestGreedyPaperRegion2(t *testing.T) {
	sets := []*filter.CandidateSet{
		setOf("A", 1, 3, 4, 5),
		setOf("B", 1, 3, 4),
		setOf("C", 1, 5, 6, 7, 8),
		setOf("A", 2, 7, 8),
		setOf("B", 2, 7, 8),
	}
	picks, err := Greedy(sets)
	if err != nil {
		t.Fatal(err)
	}
	got := pickSeqs(picks)
	if len(got) != 2 || got[0] != 8 || got[1] != 4 {
		t.Fatalf("greedy picks = %v, want [8 4] (tuples 100 then 50)", got)
	}
	// Destinations: 8 -> A,B,C; 4 -> A,B.
	owners0 := picks[0].Owners()
	if len(owners0) != 3 {
		t.Errorf("pick 8 owners = %v, want A,B,C", owners0)
	}
	owners1 := picks[1].Owners()
	if len(owners1) != 2 {
		t.Errorf("pick 4 owners = %v, want A,B", owners1)
	}
	if !Hits(sets, picks) {
		t.Error("greedy picks do not hit all sets")
	}
}

func TestGreedyTieBreakLatestTimestamp(t *testing.T) {
	// Two disjoint singletons-ish sets with equal utility everywhere:
	// {1,2} and {3,4}. All tuples have utility 1; latest TS (seq 4) wins
	// first.
	sets := []*filter.CandidateSet{setOf("A", 0, 1, 2), setOf("B", 0, 3, 4)}
	picks, err := Greedy(sets)
	if err != nil {
		t.Fatal(err)
	}
	got := pickSeqs(picks)
	if len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Errorf("picks = %v, want [4 2]", got)
	}
}

func TestGreedyEmptyAndErrors(t *testing.T) {
	picks, err := Greedy(nil)
	if err != nil || picks != nil {
		t.Errorf("Greedy(nil) = %v, %v; want nil, nil", picks, err)
	}
	_, err = Greedy([]*filter.CandidateSet{{Owner: "A", PickDegree: 1}})
	if err == nil {
		t.Error("empty candidate set should fail")
	}
}

func TestExactMatchesKnownOptimum(t *testing.T) {
	// Classic instance where greedy can be suboptimal: sets {1,2}, {1,3},
	// {2,3}. Optimum is 2 (e.g. {1,2} hits sets 1,2 via 1 and set 3 via
	// 2). Any single tuple hits at most 2 sets.
	sets := []*filter.CandidateSet{
		setOf("A", 0, 1, 2),
		setOf("B", 0, 1, 3),
		setOf("C", 0, 2, 3),
	}
	picks, err := Exact(sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 2 {
		t.Fatalf("exact size = %d, want 2 (%v)", len(picks), pickSeqs(picks))
	}
	if !Hits(sets, picks) {
		t.Error("exact picks do not hit all sets")
	}
}

func TestMultiDegreeGreedy(t *testing.T) {
	// One set of 4 tuples needing 2 picks, overlapping a degree-1 set.
	big := setOf("S", 0, 1, 2, 3, 4)
	big.PickDegree = 2
	small := setOf("D", 0, 3, 4)
	sets := []*filter.CandidateSet{big, small}
	picks, err := Greedy(sets)
	if err != nil {
		t.Fatal(err)
	}
	if !Hits(sets, picks) {
		t.Fatalf("multi-degree picks invalid: %v", pickSeqs(picks))
	}
	// Optimal union is 2 tuples: e.g. {4, 3} both in big (quota 2) with 4
	// (or 3) hitting small.
	if len(picks) != 2 {
		t.Errorf("multi-degree greedy size = %d, want 2 (%v)", len(picks), pickSeqs(picks))
	}
}

func TestMultiDegreeQuotaClamped(t *testing.T) {
	cs := setOf("S", 0, 1, 2)
	cs.PickDegree = 5 // more than members
	picks, err := Greedy([]*filter.CandidateSet{cs})
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 2 {
		t.Errorf("clamped quota picks = %d, want 2", len(picks))
	}
	if !Hits([]*filter.CandidateSet{cs}, picks) {
		t.Error("picks invalid")
	}
}

func TestGreedyRespectsEligibility(t *testing.T) {
	// Top-1 restriction: only the max-valued member is eligible.
	cs := setOf("S", 0, 1, 9, 5)
	cs.Restrict = filter.Top
	cs.RestrictAttr = 0
	cs.PickDegree = 1
	picks, err := Greedy([]*filter.CandidateSet{cs})
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 1 || picks[0].Tuple.Seq != 9 {
		t.Errorf("picks = %v, want the top-valued tuple seq 9", pickSeqs(picks))
	}
}

// randomInstance builds a random degree-1 instance with nSets sets over a
// universe of nTuples tuples; sets are contiguous runs so they resemble
// real candidate sets.
func randomInstance(rng *rand.Rand, nSets, nTuples int) []*filter.CandidateSet {
	sets := make([]*filter.CandidateSet, 0, nSets)
	for i := 0; i < nSets; i++ {
		start := rng.Intn(nTuples)
		length := 1 + rng.Intn(4)
		if start+length > nTuples {
			length = nTuples - start
		}
		seqs := make([]int, length)
		for j := range seqs {
			seqs[j] = start + j
		}
		sets = append(sets, setOf(string(rune('A'+i%26)), i, seqs...))
	}
	return sets
}

// TestGreedyApproximationRatioProperty: greedy always hits all sets, never
// beats the optimum, and stays within the H(max |C|) bound of Theorem 1.
func TestGreedyApproximationRatioProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := randomInstance(rng, 2+rng.Intn(5), 6+rng.Intn(6))
		greedy, err := Greedy(sets)
		if err != nil {
			return false
		}
		if !Hits(sets, greedy) {
			return false
		}
		exact, err := Exact(sets)
		if err != nil {
			return false
		}
		if !Hits(sets, exact) {
			return false
		}
		if len(greedy) < len(exact) {
			return false // greedy cannot beat the optimum
		}
		maxSet := 0
		for _, cs := range sets {
			if len(cs.Members) > maxSet {
				maxSet = len(cs.Members)
			}
		}
		h := 0.0
		for i := 1; i <= maxSet; i++ {
			h += 1 / float64(i)
		}
		return float64(len(greedy)) <= h*float64(len(exact))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestExactIsMinimalProperty: removing any pick from the exact solution
// breaks coverage (a certificate of minimality, weaker than optimality but
// cheap to verify independently).
func TestExactIsMinimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := randomInstance(rng, 2+rng.Intn(4), 8)
		exact, err := Exact(sets)
		if err != nil {
			return false
		}
		for drop := range exact {
			reduced := make([]Pick, 0, len(exact)-1)
			for i, p := range exact {
				if i != drop {
					reduced = append(reduced, p)
				}
			}
			// Re-derive credits for the reduced pick set: a pick's
			// recorded Sets may shift, so check coverage from
			// scratch by re-crediting greedily.
			if coversAll(sets, reduced) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// coversAll re-derives whether the picked tuples can satisfy all quotas,
// ignoring the recorded credits.
func coversAll(sets []*filter.CandidateSet, picks []Pick) bool {
	chosen := make(map[int]bool)
	for _, p := range picks {
		chosen[p.Tuple.Seq] = true
	}
	for _, cs := range sets {
		k := cs.PickDegree
		if k <= 0 {
			k = 1
		}
		el := cs.Eligible()
		if k > len(el) {
			k = len(el)
		}
		have := 0
		for _, m := range el {
			if chosen[m.Seq] {
				have++
			}
		}
		if have < k {
			return false
		}
	}
	return true
}

func TestHitsDetectsBadPicks(t *testing.T) {
	sets := []*filter.CandidateSet{setOf("A", 0, 1, 2)}
	// Pick outside the set.
	bad := []Pick{{Tuple: tupleAt(9), Sets: sets}}
	if Hits(sets, bad) {
		t.Error("Hits accepted an ineligible pick")
	}
	// No picks at all.
	if Hits(sets, nil) {
		t.Error("Hits accepted empty picks for a non-empty instance")
	}
	// Duplicate picks.
	dup := []Pick{
		{Tuple: tupleAt(1), Sets: sets},
		{Tuple: tupleAt(1), Sets: sets},
	}
	if Hits(sets, dup) {
		t.Error("Hits accepted duplicate picks")
	}
}

func TestGreedyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sets := randomInstance(rng, 6, 12)
	a, err := Greedy(sets)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(sets)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := pickSeqs(a), pickSeqs(b)
	if len(sa) != len(sb) {
		t.Fatalf("non-deterministic sizes: %v vs %v", sa, sb)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("non-deterministic picks: %v vs %v", sa, sb)
		}
	}
}

// TestGreedyWithinLogBoundLargeRandom exercises a larger instance where the
// exact solver is still feasible, checking the bound numerically.
func TestGreedyWithinLogBoundLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		sets := randomInstance(rng, 8, 14)
		greedy, err := Greedy(sets)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Exact(sets)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(greedy)) / float64(len(exact))
		if ratio > math.Log(14)+1 {
			t.Errorf("trial %d: ratio %g exceeds ln(n)+1", trial, ratio)
		}
	}
}
