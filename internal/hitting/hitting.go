// Package hitting implements the minimum hitting-set solvers at the core of
// group-aware stream filtering.
//
// Theorem 1 of the paper reduces group-aware filtering to minimum hitting
// set: given the candidate sets of a region, pick one tuple from each set so
// that the union of picks is smallest. The greedy algorithm (Fig 2.7)
// achieves the classical H(max |C|) approximation ratio. Chapter 5 extends
// the problem to multi-degree candidacy (Definition 6): each set i requires
// pickDegree_i distinct tuples; the greedy generalizes by crediting a chosen
// tuple to every unsatisfied set that contains it and only retiring a set
// once its quota is met.
//
// An exact branch-and-bound solver is provided for tests and ablations; it
// verifies the approximation ratio and the region-optimality theorem
// (Theorem 2) on small instances.
package hitting

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"gasf/internal/filter"
	"gasf/internal/tuple"
)

// Pick is one chosen output tuple together with the candidate sets it was
// credited to. The multicast layer derives the tuple's destination list
// from the owners of those sets.
type Pick struct {
	Tuple *tuple.Tuple
	// Sets lists the candidate sets satisfied (in part, for multi-degree
	// sets) by this pick.
	Sets []*filter.CandidateSet
}

// Owners returns the deduplicated owner IDs of the credited sets, in
// first-seen order.
func (p Pick) Owners() []string {
	seen := make(map[string]bool, len(p.Sets))
	var out []string
	for _, cs := range p.Sets {
		if !seen[cs.Owner] {
			seen[cs.Owner] = true
			out = append(out, cs.Owner)
		}
	}
	return out
}

// entry tracks one distinct tuple across the region's candidate sets.
type entry struct {
	t      *tuple.Tuple
	sets   []int // indices of sets in which the tuple is eligible
	chosen bool
}

// problem is the normalized hitting-set instance.
type problem struct {
	sets    []*filter.CandidateSet
	need    []int          // remaining picks per set
	entries []*entry       // distinct eligible tuples
	bySeq   map[int]*entry // seq -> entry
	perSet  [][]*entry     // eligible entries per set
}

// build normalizes candidate sets into a problem instance, validating that
// each set's quota is satisfiable.
func build(sets []*filter.CandidateSet) (*problem, error) {
	p := &problem{
		sets:   sets,
		need:   make([]int, len(sets)),
		bySeq:  make(map[int]*entry),
		perSet: make([][]*entry, len(sets)),
	}
	for i, cs := range sets {
		if len(cs.Members) == 0 {
			return nil, fmt.Errorf("hitting: set %s-%d is empty", cs.Owner, cs.Ordinal)
		}
		el := cs.Eligible()
		k := cs.PickDegree
		if k <= 0 {
			k = 1
		}
		if k > len(el) {
			k = len(el)
		}
		p.need[i] = k
		for _, m := range el {
			e, ok := p.bySeq[m.Seq]
			if !ok {
				e = &entry{t: m}
				p.bySeq[m.Seq] = e
				p.entries = append(p.entries, e)
			}
			e.sets = append(e.sets, i)
			p.perSet[i] = append(p.perSet[i], e)
		}
	}
	// Deterministic entry order: by sequence number.
	sort.Slice(p.entries, func(a, b int) bool { return p.entries[a].t.Seq < p.entries[b].t.Seq })
	return p, nil
}

// utility of an entry: the number of unsatisfied sets it is eligible in and
// not yet chosen for.
func (p *problem) utility(e *entry) int {
	if e.chosen {
		return 0
	}
	u := 0
	for _, si := range e.sets {
		if p.need[si] > 0 {
			u++
		}
	}
	return u
}

// Greedy solves the (multi-degree) hitting-set instance with the paper's
// greedy heuristic: repeatedly pick the tuple with the highest group
// utility, breaking ties by the latest timestamp to favor temporal
// freshness (Fig 2.7), credit it to every unsatisfied set containing it,
// and retire sets whose quota is met. Picks are returned in choice order.
func Greedy(sets []*filter.CandidateSet) ([]Pick, error) {
	return GreedyWithOptions(sets, false)
}

// GreedyWithOptions is Greedy with a configurable tie-break: when
// preferEarliest is set, utility ties go to the earliest tuple instead of
// the latest (the ablation variant of the paper's freshness rule).
func GreedyWithOptions(sets []*filter.CandidateSet, preferEarliest bool) ([]Pick, error) {
	var s Solver
	return s.Greedy(sets, preferEarliest)
}

// Solver runs the greedy heuristic with reusable internal state, so a
// caller deciding a stream of regions (the engine's hot path) allocates
// nothing per decision beyond amortized growth. The zero value is ready to
// use; a Solver is not safe for concurrent use.
type Solver struct {
	need    []int
	entries []gentry
	byseq   map[int]int
	picks   []Pick
}

// gentry tracks one distinct tuple across a region's candidate sets; the
// Solver recycles the per-entry set lists between solves.
type gentry struct {
	t      *tuple.Tuple
	sets   []int
	chosen bool
}

// build normalizes the candidate sets into the solver's scratch state,
// validating that each set's quota is satisfiable. Entries end up sorted
// by sequence number for determinism.
func (s *Solver) build(sets []*filter.CandidateSet) error {
	if s.byseq == nil {
		s.byseq = make(map[int]int)
	} else {
		clear(s.byseq)
	}
	s.need = s.need[:0]
	s.entries = s.entries[:0]
	for i, cs := range sets {
		if len(cs.Members) == 0 {
			return fmt.Errorf("hitting: set %s-%d is empty", cs.Owner, cs.Ordinal)
		}
		el := cs.Eligible()
		k := cs.PickDegree
		if k <= 0 {
			k = 1
		}
		if k > len(el) {
			k = len(el)
		}
		s.need = append(s.need, k)
		for _, m := range el {
			idx, ok := s.byseq[m.Seq]
			if !ok {
				idx = len(s.entries)
				if idx < cap(s.entries) {
					s.entries = s.entries[:idx+1]
					e := &s.entries[idx]
					e.t, e.sets, e.chosen = m, e.sets[:0], false
				} else {
					s.entries = append(s.entries, gentry{t: m})
				}
				s.byseq[m.Seq] = idx
			}
			s.entries[idx].sets = append(s.entries[idx].sets, i)
		}
	}
	// Deterministic entry order: by sequence number (unique per region).
	slices.SortFunc(s.entries, func(a, b gentry) int { return cmp.Compare(a.t.Seq, b.t.Seq) })
	return nil
}

// utility of an entry: the number of unsatisfied sets it is eligible in
// and not yet chosen for.
func (s *Solver) utility(e *gentry) int {
	if e.chosen {
		return 0
	}
	u := 0
	for _, si := range e.sets {
		if s.need[si] > 0 {
			u++
		}
	}
	return u
}

// Greedy solves one instance. The returned picks (and their Sets lists)
// are backed by solver scratch and stay valid only until the next call.
func (s *Solver) Greedy(sets []*filter.CandidateSet, preferEarliest bool) ([]Pick, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	if err := s.build(sets); err != nil {
		return nil, err
	}
	remaining := 0
	for _, n := range s.need {
		remaining += n
	}
	fresher := func(a, b *gentry) bool {
		if preferEarliest {
			return a.t.TS.Before(b.t.TS) || (a.t.TS.Equal(b.t.TS) && a.t.Seq < b.t.Seq)
		}
		return a.t.TS.After(b.t.TS) || (a.t.TS.Equal(b.t.TS) && a.t.Seq > b.t.Seq)
	}
	picks := s.picks[:0]
	for remaining > 0 {
		var best *gentry
		bestU := 0
		for i := range s.entries {
			e := &s.entries[i]
			u := s.utility(e)
			if u == 0 {
				continue
			}
			if best == nil || u > bestU || (u == bestU && fresher(e, best)) {
				best, bestU = e, u
			}
		}
		if best == nil {
			// Unreachable: every unsatisfied set has an unchosen
			// eligible tuple because need <= |eligible|.
			return nil, fmt.Errorf("hitting: no pickable tuple with %d picks outstanding", remaining)
		}
		best.chosen = true
		i := len(picks)
		if i < cap(picks) {
			picks = picks[:i+1]
			picks[i].Tuple, picks[i].Sets = best.t, picks[i].Sets[:0]
		} else {
			picks = append(picks, Pick{Tuple: best.t})
		}
		for _, si := range best.sets {
			if s.need[si] > 0 {
				s.need[si]--
				remaining--
				picks[i].Sets = append(picks[i].Sets, sets[si])
			}
		}
	}
	s.picks = picks
	return picks, nil
}

// Exact solves the instance optimally by branch and bound; intended for
// tests and ablation benches on small regions (it is exponential in the
// worst case). It minimizes the number of distinct chosen tuples.
func Exact(sets []*filter.CandidateSet) ([]Pick, error) {
	if len(sets) == 0 {
		return nil, nil
	}
	p, err := build(sets)
	if err != nil {
		return nil, err
	}
	best := len(p.entries) + 1
	var bestChoice []*entry
	var current []*entry

	var rec func()
	rec = func() {
		if len(current) >= best {
			return // prune
		}
		// Find the unsatisfied set with the fewest remaining options.
		target, options := -1, 0
		for si := range p.sets {
			if p.need[si] == 0 {
				continue
			}
			avail := 0
			for _, e := range p.perSet[si] {
				if !e.chosen {
					avail++
				}
			}
			if avail < p.need[si] {
				return // infeasible branch
			}
			if target == -1 || avail < options {
				target, options = si, avail
			}
		}
		if target == -1 {
			// All satisfied: record the solution.
			if len(current) < best {
				best = len(current)
				bestChoice = append([]*entry(nil), current...)
			}
			return
		}
		for _, e := range p.perSet[target] {
			if e.chosen {
				continue
			}
			e.chosen = true
			credited := make([]int, 0, len(e.sets))
			for _, si := range e.sets {
				if p.need[si] > 0 {
					p.need[si]--
					credited = append(credited, si)
				}
			}
			current = append(current, e)
			rec()
			current = current[:len(current)-1]
			for _, si := range credited {
				p.need[si]++
			}
			e.chosen = false
		}
	}
	rec()
	if bestChoice == nil {
		return nil, fmt.Errorf("hitting: no feasible solution")
	}
	// Rebuild per-set credits for the optimal choice, deterministically
	// by choice order.
	for i := range p.need {
		el := p.sets[i].Eligible()
		k := p.sets[i].PickDegree
		if k <= 0 {
			k = 1
		}
		if k > len(el) {
			k = len(el)
		}
		p.need[i] = k
	}
	var picks []Pick
	for _, e := range bestChoice {
		pick := Pick{Tuple: e.t}
		for _, si := range e.sets {
			if p.need[si] > 0 {
				p.need[si]--
				pick.Sets = append(pick.Sets, p.sets[si])
			}
		}
		picks = append(picks, pick)
	}
	return picks, nil
}

// Hits reports whether the picks satisfy every set's quota with eligible,
// distinct tuples — the validity predicate used by tests and by the
// engine's self-checks.
func Hits(sets []*filter.CandidateSet, picks []Pick) bool {
	credit := make(map[*filter.CandidateSet]int)
	seen := make(map[int]bool)
	for _, pk := range picks {
		if seen[pk.Tuple.Seq] {
			return false // duplicate pick
		}
		seen[pk.Tuple.Seq] = true
		for _, cs := range pk.Sets {
			eligible := false
			for _, m := range cs.Eligible() {
				if m.Seq == pk.Tuple.Seq {
					eligible = true
					break
				}
			}
			if !eligible {
				return false
			}
			credit[cs]++
		}
	}
	for _, cs := range sets {
		k := cs.PickDegree
		if k <= 0 {
			k = 1
		}
		if el := len(cs.Eligible()); k > el {
			k = el
		}
		if credit[cs] < k {
			return false
		}
	}
	return true
}
