package telemetry

import (
	"sync/atomic"
	"time"
)

// Stage enumerates the instrumented hot-path stages, in pipeline order.
type Stage int

const (
	// StageIngestDecode times wire decode of one inbound tuple frame.
	StageIngestDecode Stage = iota
	// StageRingWait times residency in a shard ring: submit to pop.
	StageRingWait
	// StageEngineStep times one engine Step call.
	StageEngineStep
	// StageFanout times one sink fan-out cycle: encode + enqueue to
	// every subscriber of the batch.
	StageFanout
	// StageEgressWrite times one vectored egress write to a
	// subscriber connection.
	StageEgressWrite

	numStages
)

var stageNames = [numStages]string{
	StageIngestDecode: "ingest_decode",
	StageRingWait:     "ring_wait",
	StageEngineStep:   "engine_step",
	StageFanout:       "fanout_enqueue",
	StageEgressWrite:  "egress_write",
}

// Name returns the Prometheus label value for the stage.
func (s Stage) Name() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages returns all instrumented stages in pipeline order.
func Stages() []Stage {
	return []Stage{StageIngestDecode, StageRingWait, StageEngineStep, StageFanout, StageEgressWrite}
}

// DefaultSampleEvery is the default sampling period: one in every 64
// events per stage pays the two clock reads; the rest pay one atomic
// increment on the gate counter.
const DefaultSampleEvery = 64

// Pipeline carries the stage histograms, their sampling gates, and the
// aggregate delivery-latency estimator pair for one broker instance.
// A nil *Pipeline disables instrumentation: every method is nil-safe.
type Pipeline struct {
	mask     uint64
	every    int
	gates    [numStages]atomic.Uint64
	hists    [numStages]Histogram
	delivery *LatencyPair
}

// New builds a pipeline sampling one in every sampleEvery events per
// stage (rounded up to a power of two; 0 means DefaultSampleEvery).
// Delivery-latency observation is not sampled — frugal updates are
// cheap enough to keep for every delivery.
func New(sampleEvery int) *Pipeline {
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	period := 1
	for period < sampleEvery {
		period <<= 1
	}
	return &Pipeline{mask: uint64(period - 1), every: period, delivery: NewLatencyPair()}
}

// SampleEvery returns the effective sampling period.
func (p *Pipeline) SampleEvery() int {
	if p == nil {
		return 0
	}
	return p.every
}

// Sample reports whether this event should be timed: true once per
// sampling period per stage. Alloc-free; one atomic add.
func (p *Pipeline) Sample(s Stage) bool {
	if p == nil {
		return false
	}
	return p.gates[s].Add(1)&p.mask == 0
}

// Observe records a sampled stage duration.
func (p *Pipeline) Observe(s Stage, d time.Duration) {
	if p == nil {
		return
	}
	p.hists[s].Observe(d)
}

// ObserveDelivery feeds one end-to-end delivery latency sample into the
// aggregate pair.
func (p *Pipeline) ObserveDelivery(d time.Duration) {
	if p == nil {
		return
	}
	p.delivery.Observe(d)
}

// Delivery returns the aggregate delivery-latency pair (nil when
// disabled).
func (p *Pipeline) Delivery() *LatencyPair {
	if p == nil {
		return nil
	}
	return p.delivery
}

// StageSnapshot is a point-in-time read of one stage histogram.
type StageSnapshot struct {
	Stage string            `json:"stage"`
	Hist  HistogramSnapshot `json:"histogram"`
}

// Snapshot is a full point-in-time read of a Pipeline, JSON-ready for
// the /debug/gasf introspection endpoint.
type Snapshot struct {
	SampleEvery int             `json:"sample_every"`
	Delivery    LatencySnapshot `json:"delivery_latency"`
	Stages      []StageSnapshot `json:"stages"`
}

// Snapshot reads the pipeline. Returns a zero Snapshot when disabled.
func (p *Pipeline) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	s := Snapshot{SampleEvery: p.every, Delivery: p.delivery.Snapshot()}
	for _, st := range Stages() {
		s.Stages = append(s.Stages, StageSnapshot{Stage: st.Name(), Hist: p.hists[st].Snapshot()})
	}
	return s
}

// StageHist exposes the histogram for one stage for exposition.
func (p *Pipeline) StageHist(s Stage) *Histogram {
	if p == nil {
		return nil
	}
	return &p.hists[s]
}
