package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram layout: power-of-two nanosecond buckets starting at
// 2^minShift ns (1.024µs). Bucket 0 holds everything at or below the
// first bound; the final bucket is the +Inf overflow. 26 finite bounds
// reach 2^35 ns ≈ 34s, past any sane stage duration.
const (
	histMinShift = 10
	histFinite   = 26
	histBuckets  = histFinite + 1
)

// Histogram is a fixed-bucket log-scale duration histogram. Observe is
// alloc-free and lock-free; buckets are independent atomic words, so a
// concurrent snapshot is only torn across buckets, never within one.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// bucketOf maps a nanosecond duration to its bucket index: finite
// bucket i covers (2^(minShift+i-1), 2^(minShift+i)] ns with bucket 0
// absorbing everything at or below 2^minShift.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns-1)) - histMinShift
	if b < 0 {
		return 0
	}
	if b >= histFinite {
		return histFinite // +Inf overflow bucket
	}
	return b
}

// BucketBound returns the inclusive upper bound of finite bucket i in
// seconds (Prometheus `le` convention). i must be < histFinite.
func BucketBound(i int) float64 {
	return float64(uint64(1)<<(histMinShift+i)) / 1e9
}

// NumBuckets returns the finite bucket count (the exposition adds +Inf).
func NumBuckets() int { return histFinite }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	if ns > 0 {
		h.sum.Add(ns)
	}
}

// HistogramSnapshot is a point-in-time read with cumulative counts in
// Prometheus order: Cumulative[i] counts samples ≤ BucketBound(i), and
// Count is the +Inf total.
type HistogramSnapshot struct {
	Cumulative [histFinite]uint64 `json:"cumulative"`
	Count      uint64             `json:"count"`
	SumSeconds float64            `json:"sum_seconds"`
}

// Snapshot reads the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var run uint64
	for i := 0; i < histFinite; i++ {
		run += h.buckets[i].Load()
		s.Cumulative[i] = run
	}
	s.Count = run + h.buckets[histBuckets-1].Load()
	s.SumSeconds = float64(h.sum.Load()) / 1e9
	return s
}
