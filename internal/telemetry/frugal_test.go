package telemetry

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gasf/internal/metrics"
)

// rankBand is the documented accuracy contract for the frugal
// estimators: after a long stream, the estimate — time-averaged over
// the last quarter of the stream, since a one-word stochastic estimator
// oscillates around its target — must land between the exact
// (q-rankBand) and (q+rankBand) sample quantiles. Checking rank rather
// than absolute distance makes the bound meaningful across
// distributions with very different scales and tail weights (a p99
// estimate of a Pareto stream can be absolutely far from exact while
// still ranking within a fraction of a percent of the target).
const rankBand = 0.05

// distributions the property test sweeps: uniform, heavy-tailed Pareto,
// and a bimodal mixture with a wide gap between the modes.
var testDistributions = []struct {
	name string
	gen  func(r *rand.Rand) int64
}{
	{"uniform", func(r *rand.Rand) int64 {
		return int64(r.Intn(1_000_000)) + 1
	}},
	{"pareto", func(r *rand.Rand) int64 {
		// alpha=1.5, xm=1000: heavy tail, p99 far above p50.
		u := r.Float64()
		if u == 0 {
			u = 1e-12
		}
		v := 1000 * math.Pow(u, -1/1.5)
		if v > 1e12 {
			v = 1e12
		}
		return int64(v)
	}},
	{"bimodal", func(r *rand.Rand) int64 {
		if r.Intn(2) == 0 {
			return 1_000 + int64(r.Intn(100))
		}
		return 10_000_000 + int64(r.Intn(100_000))
	}},
}

// TestQuantileAccuracy is the estimator property test: on three stream
// shapes, the frugal p50 and p99 estimates rank within rankBand of the
// exact sample quantiles computed by metrics.Quantile.
func TestQuantileAccuracy(t *testing.T) {
	const n = 400_000
	for _, dist := range testDistributions {
		for _, q := range []float64{0.5, 0.99} {
			r := rand.New(rand.NewSource(7))
			e := NewQuantile(q)
			xs := make([]float64, 0, n)
			var tail float64
			var tailN int
			for i := 0; i < n; i++ {
				v := dist.gen(r)
				e.Observe(v)
				xs = append(xs, float64(v))
				if i >= n*3/4 {
					tail += float64(e.Estimate())
					tailN++
				}
			}
			est := tail / float64(tailN)
			lo := metrics.Quantile(xs, q-rankBand)
			hi := metrics.Quantile(xs, math.Min(q+rankBand, 1))
			if est < lo || est > hi {
				exact := metrics.Quantile(xs, q)
				t.Errorf("%s q=%v: tail-averaged estimate %.0f outside rank band [%.0f, %.0f] (exact %.0f)",
					dist.name, q, est, lo, hi, exact)
			}
		}
	}
}

// TestFrugal1UAccuracy checks the one-memory baseline on the one stream
// shape it is suited to: a small value range relative to stream length.
func TestFrugal1UAccuracy(t *testing.T) {
	const n = 200_000
	r := rand.New(rand.NewSource(3))
	e := NewFrugal1U(0.5)
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := int64(r.Intn(1000))
		e.Observe(v)
		xs = append(xs, float64(v))
	}
	est := float64(e.Estimate())
	lo := metrics.Quantile(xs, 0.5-rankBand)
	hi := metrics.Quantile(xs, 0.5+rankBand)
	if est < lo || est > hi {
		t.Errorf("1U median estimate %.0f outside rank band [%.0f, %.0f]", est, lo, hi)
	}
}

// TestQuantileRange pins the clamp invariant deterministically: the
// estimate never leaves the closed range of observed values.
func TestQuantileRange(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	e := NewQuantile(0.9)
	min, max := int64(math.MaxInt64), int64(math.MinInt64)
	for i := 0; i < 50_000; i++ {
		// Wild swings exercise the overshoot clamps.
		v := int64(r.Intn(3)) * int64(r.Intn(1_000_000_000))
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		e.Observe(v)
		if got := e.Estimate(); got < min || got > max {
			t.Fatalf("after %d samples estimate %d left observed range [%d, %d]", i+1, got, min, max)
		}
	}
}

// TestQuantileConcurrent drives one estimator from several goroutines:
// no data race (under -race) and the estimate still ends inside the
// observed range. Lost step updates are acceptable; corruption is not.
func TestQuantileConcurrent(t *testing.T) {
	e := NewQuantile(0.5)
	var wg sync.WaitGroup
	const perG, goroutines = 20_000, 4
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				e.Observe(int64(r.Intn(1_000_000)))
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if got := e.Estimate(); got < 0 || got > 1_000_000 {
		t.Fatalf("concurrent estimate %d left observed range [0, 1000000]", got)
	}
}

// TestLatencyPair covers the bundled pair: nil-safety, negative clamp,
// count/sum accounting, and both quantile targets.
func TestLatencyPair(t *testing.T) {
	var nilPair *LatencyPair
	nilPair.Observe(time.Second) // must not panic
	if s := nilPair.Snapshot(); s.Count != 0 {
		t.Fatalf("nil pair snapshot count %d", s.Count)
	}

	l := NewLatencyPair()
	l.Observe(-time.Second) // clamps to 0
	for i := 1; i <= 1000; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	s := l.Snapshot()
	if s.Count != 1001 {
		t.Fatalf("count %d, want 1001", s.Count)
	}
	wantSum := float64(1000*1001/2) * 1e-3 // sum of 1..1000 ms in seconds
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Fatalf("sum %.6fs, want %.6fs", s.SumSeconds, wantSum)
	}
	if s.P50 <= 0 || s.P50 > time.Second {
		t.Fatalf("p50 %v outside observed range", s.P50)
	}
	if s.P99 < s.P50/2 {
		// The estimators are stochastic; p99 materially below p50 on an
		// increasing ramp means the pair is wired to the wrong targets.
		t.Fatalf("p99 %v implausibly below p50 %v", s.P99, s.P50)
	}
}

// TestNowSince checks the monotonic stamp helpers: stamps are positive
// (a zero stamp is the "unset" sentinel) and Since measures forward.
func TestNowSince(t *testing.T) {
	s := Now()
	if s <= 0 {
		t.Fatalf("Now() = %d, want > 0", s)
	}
	if d := Since(s); d < 0 {
		t.Fatalf("Since(Now()) = %v, want >= 0", d)
	}
}

// TestObserveAllocs pins the alloc-free contract of every observe-path
// entry point: estimator, pair, histogram, and the sampling gate.
func TestObserveAllocs(t *testing.T) {
	e := NewQuantile(0.5)
	l := NewLatencyPair()
	var h Histogram
	p := New(1)
	checks := []struct {
		name string
		f    func()
	}{
		{"Quantile.Observe", func() { e.Observe(12345) }},
		{"LatencyPair.Observe", func() { l.Observe(12345) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Pipeline.Sample", func() { p.Sample(StageEngineStep) }},
		{"Pipeline.Observe", func() { p.Observe(StageEngineStep, 12345) }},
		{"Pipeline.ObserveDelivery", func() { p.ObserveDelivery(12345) }},
	}
	for _, c := range checks {
		if avg := testing.AllocsPerRun(1000, c.f); avg != 0 {
			t.Errorf("%s allocates %.2f allocs/op, want 0", c.name, avg)
		}
	}
}

// FuzzQuantileObserve fuzzes arbitrary sample sequences into both
// estimator variants and enforces the range invariant: the estimate
// never leaves [min, max] of the observed values.
func FuzzQuantileObserve(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	seed := make([]byte, 0, 64)
	for _, v := range []uint64{1, math.MaxInt64, 42, 0, 1 << 40, 7, 7, 1} {
		seed = binary.LittleEndian.AppendUint64(seed, v)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		e2 := NewQuantile(0.9)
		e1 := NewFrugal1U(0.9)
		min, max := int64(math.MaxInt64), int64(math.MinInt64)
		for len(data) >= 8 {
			v := int64(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			e2.Observe(v)
			e1.Observe(v)
			if got := e2.Estimate(); got < min || got > max {
				t.Fatalf("2U estimate %d left observed range [%d, %d]", got, min, max)
			}
			if got := e1.Estimate(); got < min || got > max {
				t.Fatalf("1U estimate %d left observed range [%d, %d]", got, min, max)
			}
		}
	})
}
