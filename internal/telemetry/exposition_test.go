package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestWriterProducesValidExposition round-trips the Writer through the
// strict validator: every family shape the broker emits — gauge,
// counter, labeled samples, histogram, summary, escaped values — must
// parse clean.
func TestWriterProducesValidExposition(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Gauge("t_active", "Active sessions.")
	w.SampleU(3)
	w.Counter("t_events_total", "Events with a\nmultiline \\ help.")
	w.SampleU(7, Label{Name: "shard", Value: "0"})
	w.SampleU(9, Label{Name: "shard", Value: "1"})
	w.Counter("t_odd_total", "Label value with \"quotes\" and \\ backslash.")
	w.SampleU(1, Label{Name: "who", Value: `a"b\c` + "\n"})

	var h Histogram
	h.Observe(500 * time.Nanosecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Hour) // overflow bucket
	w.HistogramFamily("t_duration_seconds", "Stage durations.")
	w.WriteHistogram(h.Snapshot(), Label{Name: "stage", Value: "x"})
	w.WriteHistogram(h.Snapshot(), Label{Name: "stage", Value: "y"})

	l := NewLatencyPair()
	l.Observe(time.Millisecond)
	l.Observe(2 * time.Millisecond)
	w.SummaryFamily("t_latency_seconds", "Delivery latency.")
	w.WriteLatencySummary(l.Snapshot(), Label{Name: "policy", Value: "drop"})

	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	if err := Validate([]byte(sb.String())); err != nil {
		t.Fatalf("writer output failed strict validation: %v\n%s", err, sb.String())
	}
}

// TestWriterRejectsBadCounter pins the writer-side guard that produced
// the original exposition bug class: counters must end in _total.
func TestWriterRejectsBadCounter(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Counter("t_events", "no suffix")
	if w.Err() == nil {
		t.Fatal("counter without _total accepted")
	}
}

// TestValidateRejects sweeps the malformed expositions the strict
// parser must refuse — including the exact historical bug: a series
// with no HELP/TYPE metadata.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bare series without metadata", "gasf_shard_enqueued_total 5\n"},
		{"sample before TYPE", "# HELP a_total h\na_total 1\n"},
		{"duplicate HELP", "# HELP a_total h\n# HELP a_total h\n# TYPE a_total counter\na_total 1\n"},
		{"duplicate TYPE", "# HELP a_total h\n# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n"},
		{"counter without _total", "# HELP a h\n# TYPE a counter\na 1\n"},
		{"unknown type", "# HELP a h\n# TYPE a widget\na 1\n"},
		{"non-contiguous family", "# HELP a h\n# TYPE a gauge\na 1\n# HELP b h\n# TYPE b gauge\nb 1\na 2\n"},
		{"duplicate series", "# HELP a h\n# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n"},
		{"gauge with reserved suffix", "# HELP a h\n# TYPE a histogram\n" +
			"a_bucket{le=\"+Inf\"} 1\na_sum 1\na_count 1\n" +
			"# HELP a_sum h\n# TYPE a_sum gauge\na_sum 1\n"},
		{"histogram missing +Inf", "# HELP a h\n# TYPE a histogram\na_bucket{le=\"1\"} 1\na_sum 1\na_count 1\n"},
		{"histogram missing _sum", "# HELP a h\n# TYPE a histogram\na_bucket{le=\"+Inf\"} 1\na_count 1\n"},
		{"histogram buckets decreasing", "# HELP a h\n# TYPE a histogram\n" +
			"a_bucket{le=\"1\"} 5\na_bucket{le=\"2\"} 3\na_bucket{le=\"+Inf\"} 5\na_sum 1\na_count 5\n"},
		{"histogram +Inf below count", "# HELP a h\n# TYPE a histogram\n" +
			"a_bucket{le=\"+Inf\"} 4\na_sum 1\na_count 5\n"},
		{"summary quantile out of range", "# HELP a h\n# TYPE a summary\n" +
			"a{quantile=\"1.5\"} 1\na_sum 1\na_count 1\n"},
		{"summary without quantiles", "# HELP a h\n# TYPE a summary\na_sum 1\na_count 1\n"},
		{"bad label name", "# HELP a h\n# TYPE a gauge\na{__x=\"1\"} 1\n"},
		{"unterminated labels", "# HELP a h\n# TYPE a gauge\na{x=\"1\" 1\n"},
		{"bad value", "# HELP a h\n# TYPE a gauge\na one\n"},
		{"invalid metric name", "# HELP 9a h\n# TYPE 9a gauge\n9a 1\n"},
	}
	for _, c := range cases {
		if err := Validate([]byte(c.in)); err == nil {
			t.Errorf("%s: accepted\n%s", c.name, c.in)
		}
	}
}

// TestValidateAccepts covers valid corners: escaped label values,
// timestamps, free-form comments, untyped series, and a full
// histogram/summary complement.
func TestValidateAccepts(t *testing.T) {
	in := "# a free-form comment\n" +
		"# HELP a_total events\n# TYPE a_total counter\n" +
		"a_total{x=\"with \\\"quotes\\\" and \\\\ and \\n\"} 5 1700000000\n" +
		"# HELP b h\n# TYPE b untyped\nb 3.5\n" +
		"# HELP h_s durations\n# TYPE h_s histogram\n" +
		"h_s_bucket{le=\"0.1\"} 1\nh_s_bucket{le=\"+Inf\"} 2\nh_s_sum 0.5\nh_s_count 2\n" +
		"# HELP s_s lat\n# TYPE s_s summary\n" +
		"s_s{quantile=\"0.5\"} 0.01\ns_s{quantile=\"0.99\"} 0.2\ns_s_sum 1\ns_s_count 9\n"
	if err := Validate([]byte(in)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}
