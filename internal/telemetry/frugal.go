// Package telemetry provides the broker's low-cost observability layer:
// frugal-streaming quantile estimators (one machine word of state per
// quantile), fixed-bucket log-scale duration histograms, and per-stage
// sampling gates that bound the steady-state cost of timing the hot
// path. Everything here is alloc-free on the observe path and safe for
// concurrent use; estimators tolerate lossy interleavings (a dropped
// update perturbs convergence, never correctness of the state machine).
package telemetry

import (
	"sync/atomic"
	"time"
)

// base anchors stage timestamps to the process monotonic clock, so ring
// residency survives wall-clock steps. Stamp with Now, measure with
// Since.
var base = time.Now()

// Now returns a monotonic nanosecond stamp suitable for storing in a
// single int64 word (e.g. inside a ring cell). Always > 0.
func Now() int64 { return int64(time.Since(base)) + 1 }

// Since converts a stamp from Now into the elapsed duration.
func Since(stamp int64) time.Duration { return time.Since(base) - time.Duration(stamp-1) }

// Quantile is a Frugal-2U streaming quantile estimator ("Frugal
// Streaming for Estimating Quantiles", Ma/Muthukrishnan/Sandler 2014).
// It keeps one word for the running estimate plus one word of adaptive
// step state, updates in O(1) with no allocation, and converges to the
// target quantile of the stream distribution. All state lives in atomic
// words so concurrent writers are safe; interleaved updates may lose a
// step adjustment, which only slows convergence.
//
// The estimate is seeded with the first observed sample and every
// subsequent move is clamped to the triggering sample, so the estimate
// never leaves the closed range of observed values — the invariant the
// fuzz test enforces.
type Quantile struct {
	q      float64
	thresh uint64 // q scaled to [0, 2^64): move-up probability
	seeded atomic.Bool
	est    atomic.Int64
	step   atomic.Int64
	sign   atomic.Int64
	rng    atomic.Uint64
}

// NewQuantile returns an estimator targeting quantile q in (0, 1).
func NewQuantile(q float64) *Quantile {
	e := &Quantile{}
	e.init(q)
	return e
}

func (e *Quantile) init(q float64) {
	if q <= 0 {
		q = 0.001
	}
	if q >= 1 {
		q = 0.999
	}
	e.q = q
	e.thresh = uint64(q * float64(1<<63) * 2)
	e.rng.Store(0x9e3779b97f4a7c15)
}

// rand draws a xorshift64* variate. The state word is atomic but the
// read-modify-write is intentionally lossy under contention: estimator
// quality does not depend on sequence integrity.
func (e *Quantile) rand() uint64 {
	x := e.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.rng.Store(x)
	return x * 0x2545f4914f6cdd1d
}

// rampDelay is how many consecutive same-direction moves travel at unit
// size before the geometric ramp engages. Near the stationary point,
// move directions alternate frequently, runs stay short, and the
// estimator behaves like the paper's unit-step form — whose balance of
// move probabilities (q up, 1-q down) pins the stationary rank at the
// target quantile. Only a sustained one-sided run — the signature of a
// distant target or a distribution shift — unlocks doubling, so wide
// value ranges (nanoseconds to seconds) are crossed in logarithmically
// many moves without biasing the steady state.
const rampDelay = 6

// stepSize maps a same-direction run length to a move size: unit moves
// for short runs, then powers of two, capped well below the int64 range
// so the estimate cannot wrap.
func stepSize(run int64) int64 {
	if run <= rampDelay {
		return 1
	}
	sh := run - rampDelay
	if sh > 60 {
		sh = 60
	}
	return int64(1) << sh
}

// Observe feeds one sample. Alloc-free; a handful of atomic operations
// on the common path. The update is the paper's Frugal-2U with a
// delayed-geometric f (see rampDelay): the step word holds the current
// same-direction run length, a direction reversal resets it, and an
// overshoot clamps the estimate to the triggering sample and resets the
// run so a jump into a heavy tail cannot keep compounding.
func (e *Quantile) Observe(v int64) {
	if !e.seeded.Load() {
		if e.seeded.CompareAndSwap(false, true) {
			e.est.Store(v)
			e.step.Store(1)
			e.sign.Store(1)
			return
		}
	}
	m := e.est.Load()
	if v == m {
		return
	}
	r := e.rand()
	if v > m {
		if r >= e.thresh {
			// Move up only with probability q.
			return
		}
		run := int64(1) // reversal: settle back to unit steps
		if e.sign.Load() > 0 {
			run = e.step.Load() + 1 // same direction: extend the run
		}
		nm := m + stepSize(run)
		if nm > v || nm < m { // overshoot (or wrap): clamp to sample
			nm = v
			run = 1
		}
		e.step.Store(run)
		e.sign.Store(1)
		e.est.Store(nm)
		return
	}
	// v < m: move down only with probability 1-q.
	if r < e.thresh {
		return
	}
	run := int64(1)
	if e.sign.Load() < 0 {
		run = e.step.Load() + 1
	}
	nm := m - stepSize(run)
	if nm < v || nm > m { // overshoot below (or wrap): clamp to sample
		nm = v
		run = 1
	}
	e.step.Store(run)
	e.sign.Store(-1)
	e.est.Store(nm)
}

// Estimate returns the current quantile estimate (0 before any sample).
func (e *Quantile) Estimate() int64 { return e.est.Load() }

// Target returns the quantile this estimator tracks.
func (e *Quantile) Target() float64 { return e.q }

// Seeded reports whether at least one sample has been observed.
func (e *Quantile) Seeded() bool { return e.seeded.Load() }

// Frugal1U is the one-memory variant from the same paper: a single
// word of state, ±1 moves. It needs streams whose value range is small
// relative to the stream length to converge, so the broker uses the 2U
// form for nanosecond latencies; 1U is kept as the reference baseline
// the property tests compare against.
type Frugal1U struct {
	thresh uint64
	seeded atomic.Bool
	est    atomic.Int64
	rng    atomic.Uint64
}

// NewFrugal1U returns a one-memory estimator targeting quantile q.
func NewFrugal1U(q float64) *Frugal1U {
	if q <= 0 {
		q = 0.001
	}
	if q >= 1 {
		q = 0.999
	}
	e := &Frugal1U{thresh: uint64(q * float64(1<<63) * 2)}
	e.rng.Store(0x853c49e6748fea9b)
	return e
}

// Observe feeds one sample.
func (e *Frugal1U) Observe(v int64) {
	if !e.seeded.Load() {
		if e.seeded.CompareAndSwap(false, true) {
			e.est.Store(v)
			return
		}
	}
	x := e.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.rng.Store(x)
	r := x * 0x2545f4914f6cdd1d
	m := e.est.Load()
	if v > m && r < e.thresh {
		e.est.Store(m + 1)
	} else if v < m && r >= e.thresh {
		e.est.Store(m - 1)
	}
}

// Estimate returns the current estimate.
func (e *Frugal1U) Estimate() int64 { return e.est.Load() }

// LatencyPair bundles the p50/p99 estimators attached to a subscriber
// session, a source group, or the pipeline aggregate, plus exact
// count/sum words so the pair can expose a complete Prometheus summary.
type LatencyPair struct {
	p50   Quantile
	p99   Quantile
	count atomic.Uint64
	sum   atomic.Int64
}

// NewLatencyPair returns an initialized pair.
func NewLatencyPair() *LatencyPair {
	l := &LatencyPair{}
	l.p50.init(0.5)
	l.p99.init(0.99)
	return l
}

// Observe feeds one latency sample into both estimators. Alloc-free
// and nil-safe (a nil pair means telemetry is disabled).
func (l *LatencyPair) Observe(d time.Duration) {
	if l == nil {
		return
	}
	n := int64(d)
	if n < 0 {
		n = 0
	}
	l.p50.Observe(n)
	l.p99.Observe(n)
	l.count.Add(1)
	l.sum.Add(n)
}

// LatencySnapshot is a point-in-time read of a LatencyPair.
type LatencySnapshot struct {
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	Count      uint64        `json:"count"`
	SumSeconds float64       `json:"sum_seconds"`
}

// Snapshot reads the pair (zero when nil).
func (l *LatencyPair) Snapshot() LatencySnapshot {
	if l == nil {
		return LatencySnapshot{}
	}
	return LatencySnapshot{
		P50:        time.Duration(l.p50.Estimate()),
		P99:        time.Duration(l.p99.Estimate()),
		Count:      l.count.Load(),
		SumSeconds: float64(l.sum.Load()) / 1e9,
	}
}
