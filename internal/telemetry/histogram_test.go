package telemetry

import (
	"testing"
	"time"
)

// TestBucketBoundaries pins the log2 bucket layout: bucket i covers
// (2^(9+i), 2^(10+i)] nanoseconds, with everything at or below 1.024µs
// in bucket 0 and everything above the top finite bound in overflow.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 0},
		{1024, 0},                    // top of bucket 0
		{1025, 1},                    // bottom of bucket 1
		{2048, 1},                    // top of bucket 1
		{2049, 2},                    //
		{1 << 35, histFinite - 1},    // top finite bucket bound
		{1<<35 + 1, histFinite},      // overflow
		{int64(1) << 62, histFinite}, // deep overflow
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every finite bucket's upper bound must land in that bucket, and
	// one nanosecond more in the next.
	for i := 0; i < histFinite; i++ {
		bound := int64(1) << (histMinShift + i)
		if got := bucketOf(bound); got != i {
			t.Errorf("bucketOf(2^%d) = %d, want %d", histMinShift+i, got, i)
		}
		if got := bucketOf(bound + 1); got != i+1 {
			t.Errorf("bucketOf(2^%d+1) = %d, want %d", histMinShift+i, got, i+1)
		}
	}
}

// TestHistogramSnapshot checks the cumulative snapshot: counts
// accumulate across buckets, the total matches, and the sum is in
// seconds.
func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(2 * time.Microsecond)  // bucket 1
	h.Observe(100 * time.Second)     // overflow
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d, want 3", s.Count)
	}
	if s.Cumulative[0] != 1 {
		t.Fatalf("cumulative[0] = %d, want 1", s.Cumulative[0])
	}
	if s.Cumulative[1] != 2 {
		t.Fatalf("cumulative[1] = %d, want 2", s.Cumulative[1])
	}
	if last := s.Cumulative[histFinite-1]; last != 2 {
		t.Fatalf("top finite cumulative %d, want 2 (overflow only in +Inf)", last)
	}
	want := (500*time.Nanosecond + 2*time.Microsecond + 100*time.Second).Seconds()
	if diff := s.SumSeconds - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("sum %.9fs, want %.9fs", s.SumSeconds, want)
	}
	for i := 1; i < histFinite; i++ {
		if s.Cumulative[i] < s.Cumulative[i-1] {
			t.Fatalf("cumulative counts not monotone at bucket %d", i)
		}
	}
}

// TestBucketBound checks the exposition bounds are increasing seconds.
func TestBucketBound(t *testing.T) {
	if got := BucketBound(0); got != 1024e-9 {
		t.Fatalf("BucketBound(0) = %v, want 1.024e-6", got)
	}
	prev := 0.0
	for i := 0; i < histFinite; i++ {
		b := BucketBound(i)
		if b <= prev {
			t.Fatalf("BucketBound(%d) = %v not increasing past %v", i, b, prev)
		}
		prev = b
	}
}

// TestPipelineSampling covers the gate: period rounding to a power of
// two, one sample per period per stage, and nil-safety everywhere.
func TestPipelineSampling(t *testing.T) {
	p := New(48) // rounds up to 64
	if got := p.SampleEvery(); got != 64 {
		t.Fatalf("SampleEvery() = %d, want 64", got)
	}
	hits := 0
	for i := 0; i < 640; i++ {
		if p.Sample(StageFanout) {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("%d samples in 640 events at period 64, want 10", hits)
	}
	// Gates are per-stage: another stage starts its own period.
	p2 := New(4)
	for i := 0; i < 3; i++ {
		p2.Sample(StageEgressWrite)
	}
	if !p2.Sample(StageEgressWrite) {
		t.Fatal("4th event at period 4 not sampled")
	}
	if p2.Sample(StageIngestDecode) {
		t.Fatal("fresh stage gate sampled its first event")
	}

	var nilP *Pipeline
	if nilP.Sample(StageFanout) {
		t.Fatal("nil pipeline sampled")
	}
	nilP.Observe(StageFanout, time.Second)
	nilP.ObserveDelivery(time.Second)
	if nilP.Delivery() != nil {
		t.Fatal("nil pipeline returned a delivery pair")
	}
	if s := nilP.Snapshot(); s.SampleEvery != 0 || len(s.Stages) != 0 {
		t.Fatal("nil pipeline snapshot not zero")
	}
	if nilP.SampleEvery() != 0 {
		t.Fatal("nil pipeline has a sampling period")
	}
}

// TestPipelineSnapshot checks the JSON-ready snapshot covers every
// stage in pipeline order with its observations.
func TestPipelineSnapshot(t *testing.T) {
	p := New(1)
	p.Observe(StageEngineStep, 5*time.Microsecond)
	p.ObserveDelivery(3 * time.Millisecond)
	s := p.Snapshot()
	if s.SampleEvery != 1 {
		t.Fatalf("snapshot period %d, want 1", s.SampleEvery)
	}
	if len(s.Stages) != len(Stages()) {
		t.Fatalf("%d stages in snapshot, want %d", len(s.Stages), len(Stages()))
	}
	for i, st := range Stages() {
		if s.Stages[i].Stage != st.Name() {
			t.Fatalf("stage %d is %q, want %q", i, s.Stages[i].Stage, st.Name())
		}
	}
	if s.Stages[int(StageEngineStep)].Hist.Count != 1 {
		t.Fatal("engine_step observation missing from snapshot")
	}
	if s.Delivery.Count != 1 || s.Delivery.P50 != 3*time.Millisecond {
		t.Fatalf("delivery snapshot %+v, want one 3ms sample", s.Delivery)
	}
}
