package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one exposition label pair.
type Label struct {
	Name  string
	Value string
}

// Writer emits Prometheus text exposition format 0.0.4 with the
// invariants the strict validator checks: every family declares HELP
// and TYPE exactly once before its samples, family samples are
// contiguous, counters end in _total, histograms and summaries carry
// the full _bucket/quantile + _sum + _count complement.
type Writer struct {
	w   io.Writer
	cur string
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

func (w *Writer) family(name, typ, help string) {
	w.cur = name
	w.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter starts a counter family; name must end in _total.
func (w *Writer) Counter(name, help string) {
	if !strings.HasSuffix(name, "_total") {
		w.fail("counter %q must end in _total", name)
		return
	}
	w.family(name, "counter", help)
}

// Gauge starts a gauge family.
func (w *Writer) Gauge(name, help string) { w.family(name, "gauge", help) }

// HistogramFamily starts a histogram family.
func (w *Writer) HistogramFamily(name, help string) { w.family(name, "histogram", help) }

// SummaryFamily starts a summary family.
func (w *Writer) SummaryFamily(name, help string) { w.family(name, "summary", help) }

func (w *Writer) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf(format, args...)
	}
}

// Sample emits one sample under the current counter or gauge family.
func (w *Writer) Sample(v float64, labels ...Label) {
	w.sample(w.cur, "", v, labels, nil)
}

// SampleU emits one integer-valued sample.
func (w *Writer) SampleU(v uint64, labels ...Label) {
	w.Sample(float64(v), labels...)
}

func (w *Writer) sample(name, suffix string, v float64, labels []Label, extra *Label) {
	if name == "" {
		w.fail("sample emitted before any family declaration")
		return
	}
	w.printf("%s%s", name, suffix)
	if len(labels) > 0 || extra != nil {
		sep := "{"
		for _, l := range labels {
			w.printf(`%s%s="%s"`, sep, l.Name, escapeLabel(l.Value))
			sep = ","
		}
		if extra != nil {
			w.printf(`%s%s="%s"`, sep, extra.Name, escapeLabel(extra.Value))
		}
		w.printf("}")
	}
	w.printf(" %s\n", formatValue(v))
}

// WriteHistogram emits the _bucket/_sum/_count complement for one
// labelset under the current histogram family.
func (w *Writer) WriteHistogram(s HistogramSnapshot, labels ...Label) {
	for i := 0; i < histFinite; i++ {
		le := Label{Name: "le", Value: formatValue(BucketBound(i))}
		w.sample(w.cur, "_bucket", float64(s.Cumulative[i]), labels, &le)
	}
	inf := Label{Name: "le", Value: "+Inf"}
	w.sample(w.cur, "_bucket", float64(s.Count), labels, &inf)
	w.sample(w.cur, "_sum", s.SumSeconds, labels, nil)
	w.sample(w.cur, "_count", float64(s.Count), labels, nil)
}

// WriteLatencySummary emits the p50/p99 quantile series plus _sum and
// _count for one labelset under the current summary family. Durations
// are exposed in seconds.
func (w *Writer) WriteLatencySummary(s LatencySnapshot, labels ...Label) {
	q50 := Label{Name: "quantile", Value: "0.5"}
	q99 := Label{Name: "quantile", Value: "0.99"}
	w.sample(w.cur, "", s.P50.Seconds(), labels, &q50)
	w.sample(w.cur, "", s.P99.Seconds(), labels, &q99)
	w.sample(w.cur, "_sum", s.SumSeconds, labels, nil)
	w.sample(w.cur, "_count", float64(s.Count), labels, nil)
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// --- strict validator ------------------------------------------------

type famState struct {
	typ    string
	help   bool
	closed bool // a different family's sample/decl has appeared since
}

// Validate strictly parses a full text exposition. It enforces, beyond
// basic syntax:
//   - every sample belongs to a family that declared HELP and TYPE
//     before the sample appeared;
//   - each family declares HELP and TYPE exactly once and all its
//     samples are contiguous;
//   - counter families end in _total;
//   - histogram families emit only _bucket/_sum/_count, buckets are
//     cumulative non-decreasing, the +Inf bucket exists and equals
//     _count, and _sum is present, for every labelset;
//   - summary families emit quantile series in [0,1] plus _sum/_count;
//   - no duplicate series (same name and labelset twice).
func Validate(data []byte) error {
	fams := map[string]*famState{}
	series := map[string]bool{}
	// histogram/summary coherence accumulators, keyed by family +
	// labelset (minus le/quantile).
	type hacc struct {
		buckets []struct {
			le float64
			v  float64
		}
		inf, infSet  bool
		infV         float64
		sum, count   float64
		sumOK, cntOK bool
		quantiles    int
		isSummaryFam bool
	}
	accs := map[string]*hacc{}
	var cur string

	closeOthers := func(name string) {
		for n, f := range fams {
			if n != name {
				f.closed = true
			}
		}
	}

	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			f := fams[name]
			if f == nil {
				f = &famState{}
				fams[name] = f
			}
			if f.closed {
				return fmt.Errorf("line %d: family %s re-opened after other samples", lineNo, name)
			}
			switch fields[1] {
			case "HELP":
				if f.help {
					return fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				f.help = true
			case "TYPE":
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE %s missing type", lineNo, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = fields[3]
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, fields[3], name)
				}
				if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
					return fmt.Errorf("line %d: counter %s does not end in _total", lineNo, name)
				}
			}
			cur = name
			closeOthers(name)
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, suffix := baseFamily(name, fams)
		if fam == "" {
			return fmt.Errorf("line %d: sample %s has no preceding HELP/TYPE declaration", lineNo, name)
		}
		f := fams[fam]
		if !f.help || f.typ == "" {
			return fmt.Errorf("line %d: family %s missing %s before samples", lineNo, fam,
				map[bool]string{true: "TYPE", false: "HELP"}[f.help])
		}
		if f.closed {
			return fmt.Errorf("line %d: samples for %s are not contiguous", lineNo, fam)
		}
		if fam != cur {
			cur = fam
			closeOthers(fam)
		}
		key := name + "{" + canonLabels(labels) + "}"
		if series[key] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		series[key] = true

		switch f.typ {
		case "counter", "gauge", "untyped":
			if suffix != "" {
				return fmt.Errorf("line %d: %s sample %s has reserved suffix %s", lineNo, f.typ, name, suffix)
			}
		case "histogram", "summary":
			akey := fam + "{" + canonLabels(stripMeta(labels)) + "}"
			a := accs[akey]
			if a == nil {
				a = &hacc{isSummaryFam: f.typ == "summary"}
				accs[akey] = a
			}
			switch suffix {
			case "_sum":
				a.sum, a.sumOK = value, true
			case "_count":
				a.count, a.cntOK = value, true
			case "_bucket":
				if f.typ != "histogram" {
					return fmt.Errorf("line %d: _bucket sample in summary %s", lineNo, fam)
				}
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				if le == "+Inf" {
					a.inf, a.infSet, a.infV = true, true, value
				} else {
					lf, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
					}
					a.buckets = append(a.buckets, struct{ le, v float64 }{lf, value})
				}
			case "":
				if f.typ != "summary" {
					return fmt.Errorf("line %d: bare sample %s in histogram family %s", lineNo, name, fam)
				}
				q, ok := labelValue(labels, "quantile")
				if !ok {
					return fmt.Errorf("line %d: summary sample %s missing quantile label", lineNo, name)
				}
				qf, err := strconv.ParseFloat(q, 64)
				if err != nil || qf < 0 || qf > 1 {
					return fmt.Errorf("line %d: summary quantile %q outside [0,1]", lineNo, q)
				}
				a.quantiles++
			default:
				return fmt.Errorf("line %d: unexpected suffix %s under %s family %s", lineNo, suffix, f.typ, fam)
			}
		}
	}

	for key, a := range accs {
		if !a.sumOK || !a.cntOK {
			return fmt.Errorf("family labelset %s missing _sum or _count", key)
		}
		if a.isSummaryFam {
			if a.quantiles == 0 {
				return fmt.Errorf("summary %s has no quantile series", key)
			}
			continue
		}
		if !a.infSet {
			return fmt.Errorf("histogram %s missing +Inf bucket", key)
		}
		sort.Slice(a.buckets, func(i, j int) bool { return a.buckets[i].le < a.buckets[j].le })
		prev := 0.0
		for _, b := range a.buckets {
			if b.v < prev {
				return fmt.Errorf("histogram %s buckets not cumulative at le=%g", key, b.le)
			}
			prev = b.v
		}
		if a.infV < prev {
			return fmt.Errorf("histogram %s +Inf bucket below finite buckets", key)
		}
		if a.infV != a.count {
			return fmt.Errorf("histogram %s +Inf bucket %g != _count %g", key, a.infV, a.count)
		}
		_ = a.inf
	}
	return nil
}

// baseFamily resolves a sample name to its declared family, peeling
// histogram/summary suffixes only when that family was declared with
// the matching type.
func baseFamily(name string, fams map[string]*famState) (fam, suffix string) {
	if _, ok := fams[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			base := strings.TrimSuffix(name, suf)
			if f, ok := fams[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
				return base, suf
			}
		}
	}
	return "", ""
}

func stripMeta(labels []Label) []Label {
	out := labels[:0:0]
	for _, l := range labels {
		if l.Name == "le" || l.Name == "quantile" {
			continue
		}
		out = append(out, l)
	}
	return out
}

func labelValue(labels []Label, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

func canonLabels(labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample parses one exposition sample line.
func parseSample(line string) (name string, labels []Label, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for len(rest) > 0 {
				c := rest[0]
				if c == '\\' && len(rest) > 1 {
					switch rest[1] {
					case 'n':
						val.WriteByte('\n')
					case '\\', '"':
						val.WriteByte(rest[1])
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c", rest[1])
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					closed = true
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, Label{Name: lname, Value: val.String()})
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	switch fields[0] {
	case "+Inf":
		value = math.Inf(1)
	case "-Inf":
		value = math.Inf(-1)
	case "NaN":
		value = math.NaN()
	default:
		value, err = strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
		}
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}
