package filter

import (
	"fmt"
	"time"

	"gasf/internal/tuple"
)

// wedgeEntry is one candidate extreme: the key (monotonically increasing;
// typically a timestamp in nanoseconds) and the monitored value.
type wedgeEntry struct {
	key int64
	val float64
}

// wedgeQueue is a monotonic deque: push at the back (discarding dominated
// entries first), evict at the front. It is a head-indexed slice compacted
// in place, so steady-state updates never allocate.
type wedgeQueue struct {
	buf  []wedgeEntry
	head int
}

func (q *wedgeQueue) empty() bool        { return q.head == len(q.buf) }
func (q *wedgeQueue) front() wedgeEntry  { return q.buf[q.head] }
func (q *wedgeQueue) back() wedgeEntry   { return q.buf[len(q.buf)-1] }
func (q *wedgeQueue) popBack()           { q.buf = q.buf[:len(q.buf)-1] }
func (q *wedgeQueue) push(e wedgeEntry)  { q.buf = append(q.buf, e) }
func (q *wedgeQueue) reset()             { q.buf, q.head = q.buf[:0], 0 }

func (q *wedgeQueue) popFront() {
	q.head++
	if q.head == len(q.buf) {
		q.reset()
		return
	}
	// Compact once the dead prefix dominates, keeping memory proportional
	// to the live window.
	if q.head >= 64 && q.head > len(q.buf)-q.head {
		n := copy(q.buf, q.buf[q.head:])
		q.buf, q.head = q.buf[:n], 0
	}
}

// MonotonicWedge maintains the running maximum and minimum of a sliding
// window using Lemire's streaming max-min filter: two monotonic deques
// (the "wedge") updated with amortized O(1) comparisons per element and —
// unlike the naive rescan of the window on every update — no per-element
// allocation in steady state.
//
// Keys must be pushed in non-decreasing order; eviction drops every entry
// whose key falls before the window start. The zero value is an empty
// wedge.
type MonotonicWedge struct {
	maxq wedgeQueue
	minq wedgeQueue
}

// Push appends the value observed at the given key (e.g. a timestamp in
// nanoseconds). Keys must not decrease between calls.
func (w *MonotonicWedge) Push(key int64, v float64) {
	for !w.maxq.empty() && w.maxq.back().val <= v {
		w.maxq.popBack()
	}
	w.maxq.push(wedgeEntry{key, v})
	for !w.minq.empty() && w.minq.back().val >= v {
		w.minq.popBack()
	}
	w.minq.push(wedgeEntry{key, v})
}

// EvictBefore drops every entry whose key is strictly less than from.
func (w *MonotonicWedge) EvictBefore(from int64) {
	for !w.maxq.empty() && w.maxq.front().key < from {
		w.maxq.popFront()
	}
	for !w.minq.empty() && w.minq.front().key < from {
		w.minq.popFront()
	}
}

// Empty reports whether the window holds no values.
func (w *MonotonicWedge) Empty() bool { return w.maxq.empty() }

// Max returns the window maximum; the window must be non-empty.
func (w *MonotonicWedge) Max() float64 { return w.maxq.front().val }

// Min returns the window minimum; the window must be non-empty.
func (w *MonotonicWedge) Min() float64 { return w.minq.front().val }

// Reset empties the wedge, keeping its storage.
func (w *MonotonicWedge) Reset() {
	w.maxq.reset()
	w.minq.reset()
}

// rangeSignal monitors the spread (max−min) of one attribute over a
// sliding time window. It is a §5.3 domain-specific candidate-computation
// signal: a delta-compression filter over it reacts to volatility changes
// rather than level changes (build one with NewDCSignal). The window scan
// uses the monotonic wedge, so each tuple costs amortized O(1) with no
// steady-state allocation.
type rangeSignal struct {
	attr   string
	window time.Duration
	idx    int
	bound  bool
	wedge  MonotonicWedge
}

// NewRangeSignal monitors the max−min spread of attr over the trailing
// time window (window must be positive).
func NewRangeSignal(attr string, window time.Duration) (Signal, error) {
	if attr == "" {
		return nil, fmt.Errorf("filter: range signal needs an attribute")
	}
	if window <= 0 {
		return nil, fmt.Errorf("filter: range signal window must be positive, got %v", window)
	}
	return &rangeSignal{attr: attr, window: window}, nil
}

func (s *rangeSignal) Value(t *tuple.Tuple) (float64, error) {
	if !s.bound {
		i, err := t.Schema().Index(s.attr)
		if err != nil {
			return 0, fmt.Errorf("filter: binding signal: %w", err)
		}
		s.idx, s.bound = i, true
	}
	ts := t.TS.UnixNano()
	s.wedge.Push(ts, t.ValueAt(s.idx))
	s.wedge.EvictBefore(ts - int64(s.window))
	return s.wedge.Max() - s.wedge.Min(), nil
}

func (s *rangeSignal) Reset() {
	s.bound = false
	s.wedge.Reset()
}

func (s *rangeSignal) String() string {
	return fmt.Sprintf("range(%s, %v)", s.attr, s.window)
}
