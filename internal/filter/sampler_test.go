package filter

import (
	"testing"
	"time"

	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// flatThenDynamic builds a series: 100 near-constant tuples then 100
// strongly varying ones, 10ms apart.
func flatThenDynamic(t *testing.T) *tuple.Series {
	t.Helper()
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	for i := 0; i < 200; i++ {
		v := 1.0
		if i >= 100 {
			// Alternate +-2: range 4 within the segment.
			if i%2 == 0 {
				v = 3
			} else {
				v = -1
			}
		}
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	return sr
}

func TestSSSegmentationAndRates(t *testing.T) {
	sr := flatThenDynamic(t)
	// 1s interval = 100 tuples at 10ms. Threshold 1: first segment quiet
	// (range ~0 -> 20%), second dynamic (range 4 -> 50%).
	f, err := NewSS("s", "v", time.Second, 1, 50, 20, Random)
	if err != nil {
		t.Fatal(err)
	}
	sets := runFilter(t, f, sr)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2", len(sets))
	}
	if n := len(sets[0].Members); n != 100 {
		t.Errorf("segment 0 has %d members, want 100", n)
	}
	if got, want := sets[0].PickDegree, 20; got != want {
		t.Errorf("quiet segment pick degree = %d, want %d (20%% of 100)", got, want)
	}
	if got, want := sets[1].PickDegree, 50; got != want {
		t.Errorf("dynamic segment pick degree = %d, want %d (50%% of 100)", got, want)
	}
	if sets[0].Reference != nil {
		t.Error("sampling sets must not carry a reference")
	}
}

func TestSSCutClosesPartialSegment(t *testing.T) {
	sr := flatThenDynamic(t)
	f, err := NewSS("s", "v", time.Second, 1, 50, 20, Random)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ { // mid-segment
		if _, err := f.Process(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs, dismissed := f.Cut()
	if cs == nil {
		t.Fatal("Cut returned no set for a non-empty partial segment")
	}
	if !cs.ClosedByCut || len(cs.Members) != 30 {
		t.Errorf("cut set = %v (byCut=%v), want 30 members", len(cs.Members), cs.ClosedByCut)
	}
	if len(dismissed) != 0 {
		t.Errorf("dismissed = %v, want none", dismissed)
	}
	// The next tuple starts a new segment.
	ev, err := f.Process(sr.At(30))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Admitted || ev.Closed != nil {
		t.Errorf("post-cut tuple event = %+v, want plain admission", ev)
	}
}

func TestSSPickDegreeAtLeastOne(t *testing.T) {
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	// 3 tuples at low rate 10% -> round(0.3)=0 -> clamp to 1.
	for i := 0; i < 3; i++ {
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{1})); err != nil {
			t.Fatal(err)
		}
	}
	f, err := NewSS("s", "v", time.Second, 99, 50, 10, Random)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if _, err := f.Process(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs, _ := f.Cut()
	if cs == nil || cs.PickDegree != 1 {
		t.Fatalf("pick degree = %v, want 1", cs)
	}
}

func TestSSValidation(t *testing.T) {
	mk := func(interval time.Duration, thr, hi, lo float64) error {
		_, err := NewSS("s", "v", interval, thr, hi, lo, Random)
		return err
	}
	if err := mk(0, 1, 50, 20); err == nil {
		t.Error("zero interval should fail")
	}
	if err := mk(time.Second, -1, 50, 20); err == nil {
		t.Error("negative threshold should fail")
	}
	if err := mk(time.Second, 1, 0, 20); err == nil {
		t.Error("zero high rate should fail")
	}
	if err := mk(time.Second, 1, 120, 20); err == nil {
		t.Error("rate over 100 should fail")
	}
	if err := mk(time.Second, 1, 20, 50); err == nil {
		t.Error("high < low should fail")
	}
	if err := mk(time.Second, 1, 50, 20); err != nil {
		t.Errorf("valid spec failed: %v", err)
	}
}

func TestSSSelfInterestedPickCountsMatch(t *testing.T) {
	sr := flatThenDynamic(t)
	f, err := NewSS("s", "v", time.Second, 1, 50, 20, Random)
	if err != nil {
		t.Fatal(err)
	}
	sets := runFilter(t, f, sr)
	si := runSI(f.SelfInterested(), sr)
	wantTotal := 0
	for _, cs := range sets {
		wantTotal += cs.PickDegree
	}
	if len(si) != wantTotal {
		t.Errorf("SI picked %d tuples, GA owes %d", len(si), wantTotal)
	}
	// SI picks must come from their segments in order.
	for i := 1; i < len(si); i++ {
		if si[i].Seq <= si[i-1].Seq {
			t.Errorf("SI picks out of order at %d: %d then %d", i, si[i-1].Seq, si[i].Seq)
		}
	}
}

func TestEligibleTopBottom(t *testing.T) {
	s := tuple.MustSchema("v")
	members := make([]*tuple.Tuple, 0, 5)
	for i, v := range []float64{5, 9, 1, 7, 3} {
		members = append(members, tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*time.Millisecond), []float64{v}))
	}
	base := CandidateSet{Owner: "s", Members: members, PickDegree: 2, RestrictAttr: 0}

	topSet := base
	topSet.Restrict = Top
	got := topSet.Eligible()
	// Top 2 by value: 9 and 7 (seqs 1, 3), arrival order preserved.
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 3 {
		t.Errorf("Top eligible = %v", got)
	}

	botSet := base
	botSet.Restrict = Bottom
	got = botSet.Eligible()
	// Bottom 2: 1 and 3 (seqs 2, 4).
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 4 {
		t.Errorf("Bottom eligible = %v", got)
	}

	randSet := base
	if n := len(randSet.Eligible()); n != 5 {
		t.Errorf("Random eligible = %d members, want all 5", n)
	}

	// Degree >= size: everything eligible.
	allSet := base
	allSet.Restrict = Top
	allSet.PickDegree = 9
	if n := len(allSet.Eligible()); n != 5 {
		t.Errorf("oversized degree eligible = %d, want 5", n)
	}
}

func TestEligibleTiesKept(t *testing.T) {
	s := tuple.MustSchema("v")
	members := make([]*tuple.Tuple, 0, 4)
	for i, v := range []float64{9, 9, 1, 9} {
		members = append(members, tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*time.Millisecond), []float64{v}))
	}
	cs := CandidateSet{Owner: "s", Members: members, PickDegree: 2, Restrict: Top, RestrictAttr: 0}
	// Boundary value is 9; all three 9s tie and stay eligible.
	if n := len(cs.Eligible()); n != 3 {
		t.Errorf("eligible with ties = %d, want 3", n)
	}
}

func TestCoverIntersects(t *testing.T) {
	s := tuple.MustSchema("v")
	mk := func(fromMS, toMS int) *CandidateSet {
		return &CandidateSet{Members: []*tuple.Tuple{
			tuple.MustNew(s, 0, trace.Epoch.Add(time.Duration(fromMS)*time.Millisecond), []float64{0}),
			tuple.MustNew(s, 1, trace.Epoch.Add(time.Duration(toMS)*time.Millisecond), []float64{0}),
		}}
	}
	tests := []struct {
		a, b *CandidateSet
		want bool
	}{
		{mk(0, 10), mk(5, 20), true},
		{mk(0, 10), mk(10, 20), true}, // touching covers intersect
		{mk(0, 10), mk(11, 20), false},
		{mk(5, 8), mk(0, 20), true}, // containment
	}
	for i, tc := range tests {
		if got := tc.a.CoverIntersects(tc.b); got != tc.want {
			t.Errorf("case %d: CoverIntersects = %v, want %v", i, got, tc.want)
		}
		if got := tc.b.CoverIntersects(tc.a); got != tc.want {
			t.Errorf("case %d (sym): CoverIntersects = %v, want %v", i, got, tc.want)
		}
	}
}

func TestPrescriptionString(t *testing.T) {
	for p, want := range map[Prescription]string{Random: "random", Top: "top", Bottom: "bottom", Prescription(9): "Prescription(9)"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}
