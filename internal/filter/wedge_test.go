package filter

import (
	"math/rand"
	"testing"
	"time"

	"gasf/internal/tuple"
)

// naiveWindow recomputes max/min of a window by rescanning it — the
// reference the wedge must match.
type naiveWindow struct {
	keys []int64
	vals []float64
}

func (n *naiveWindow) push(k int64, v float64) {
	n.keys = append(n.keys, k)
	n.vals = append(n.vals, v)
}

func (n *naiveWindow) evictBefore(from int64) {
	i := 0
	for i < len(n.keys) && n.keys[i] < from {
		i++
	}
	n.keys, n.vals = n.keys[i:], n.vals[i:]
}

func (n *naiveWindow) maxMin() (float64, float64) {
	max, min := n.vals[0], n.vals[0]
	for _, v := range n.vals[1:] {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	return max, min
}

// TestMonotonicWedgeMatchesNaive drives random walks with random window
// sizes through wedge and naive rescan and requires identical extremes.
func TestMonotonicWedgeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var w MonotonicWedge
		var ref naiveWindow
		window := int64(1 + rng.Intn(40))
		key := int64(0)
		v := 0.0
		for i := 0; i < 400; i++ {
			key += int64(1 + rng.Intn(3))
			v += rng.NormFloat64()
			w.Push(key, v)
			ref.push(key, v)
			from := key - window
			w.EvictBefore(from)
			ref.evictBefore(from)
			wantMax, wantMin := ref.maxMin()
			if w.Max() != wantMax || w.Min() != wantMin {
				t.Fatalf("trial %d step %d: wedge (%g,%g), naive (%g,%g)",
					trial, i, w.Max(), w.Min(), wantMax, wantMin)
			}
		}
	}
}

// TestMonotonicWedgeSteadyStateAllocs asserts the wedge's amortized
// update path stops allocating once its rings are warm.
func TestMonotonicWedgeSteadyStateAllocs(t *testing.T) {
	var w MonotonicWedge
	key := int64(0)
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	// Warm the rings.
	for i := 0; i < 1024; i++ {
		key++
		w.Push(key, vals[i%len(vals)])
		w.EvictBefore(key - 64)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		key++
		w.Push(key, vals[i%len(vals)])
		w.EvictBefore(key - 64)
		i++
	})
	if avg > 0.01 {
		t.Fatalf("wedge steady state allocates %.3f allocs/op, want 0", avg)
	}
}

// TestRangeSignal checks the windowed spread signal end to end against a
// naive rescan over a synthetic series.
func TestRangeSignal(t *testing.T) {
	s := tuple.MustSchema("v")
	sig, err := NewRangeSignal("v", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	base := time.Unix(100, 0)
	var ref naiveWindow
	v := 10.0
	ts := base
	for i := 0; i < 300; i++ {
		ts = ts.Add(time.Duration(500+rng.Intn(1500)) * time.Millisecond)
		v += rng.NormFloat64()
		tp := tuple.MustNew(s, i, ts, []float64{v})
		got, err := sig.Value(tp)
		if err != nil {
			t.Fatal(err)
		}
		ref.push(ts.UnixNano(), v)
		ref.evictBefore(ts.UnixNano() - int64(5*time.Second))
		wantMax, wantMin := ref.maxMin()
		if want := wantMax - wantMin; got != want {
			t.Fatalf("tuple %d: range %g, want %g", i, got, want)
		}
	}
	// A DC filter over the range signal composes via NewDCSignal.
	sig.Reset()
	f, err := NewDCSignal("R", sig, 1.0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if f.SignalName() != "range(v, 5s)" {
		t.Fatalf("signal name %q", f.SignalName())
	}
}

// TestRangeSignalValidation covers constructor errors.
func TestRangeSignalValidation(t *testing.T) {
	if _, err := NewRangeSignal("", time.Second); err == nil {
		t.Fatal("empty attribute accepted")
	}
	if _, err := NewRangeSignal("v", 0); err == nil {
		t.Fatal("zero window accepted")
	}
}
