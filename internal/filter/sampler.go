package filter

import (
	"fmt"
	"math"
	"time"

	"gasf/internal/tuple"
)

// SS is a stratified-sampling group-aware filter (Table 5.1): it segments
// the stream into fixed time intervals, classifies each segment by the
// sample range (max-min) of the monitored attribute, and owes the
// application a fraction of the segment's tuples — a high rate for dynamic
// segments, a low rate for quiet ones. Every tuple of a segment is a
// candidate, so the candidate set has multi-degree candidacy (§5.3) and the
// output decider may satisfy several filters with shared picks.
type SS struct {
	id           string
	attr         string
	interval     time.Duration
	threshold    float64
	highPct      float64
	lowPct       float64
	prescription Prescription

	idx     int
	bound   bool
	ordinal int

	segStartSet bool
	segStart    time.Time
	members     []*tuple.Tuple
	minV, maxV  float64
}

var _ Filter = (*SS)(nil)

// NewSS builds a stratified-sampling filter:
// SS(attr, timeInterval, threshold, highSmplRt, lowSmplRt). The sample
// rates are percentages of tuples per segment.
func NewSS(id, attr string, interval time.Duration, threshold, highPct, lowPct float64, p Prescription) (*SS, error) {
	if id == "" {
		return nil, fmt.Errorf("filter: empty filter id")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("filter %s: interval must be positive, got %v", id, interval)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("filter %s: threshold must be non-negative, got %g", id, threshold)
	}
	for _, pct := range []float64{highPct, lowPct} {
		if pct <= 0 || pct > 100 {
			return nil, fmt.Errorf("filter %s: sample rate %g%% outside (0, 100]", id, pct)
		}
	}
	if highPct < lowPct {
		return nil, fmt.Errorf("filter %s: high rate %g%% below low rate %g%%", id, highPct, lowPct)
	}
	return &SS{
		id: id, attr: attr, interval: interval,
		threshold: threshold, highPct: highPct, lowPct: lowPct,
		prescription: p,
	}, nil
}

// ID implements Filter.
func (f *SS) ID() string { return f.id }

// Spec implements Filter.
func (f *SS) Spec() string {
	return fmt.Sprintf("SS(%s, %v, %g, %g, %g)", f.attr, f.interval, f.threshold, f.highPct, f.lowPct)
}

// Stateful implements Filter: segment boundaries depend only on time.
func (f *SS) Stateful() bool { return false }

// ObserveChosen implements Filter; sampling sets do not rebase.
func (f *SS) ObserveChosen([]*tuple.Tuple) Event { return Event{} }

// Process implements Filter.
func (f *SS) Process(t *tuple.Tuple) (Event, error) {
	if !f.bound {
		i, err := t.Schema().Index(f.attr)
		if err != nil {
			return Event{}, fmt.Errorf("filter %s: %w", f.id, err)
		}
		f.idx, f.bound = i, true
	}
	v := t.ValueAt(f.idx)
	var closed *CandidateSet
	if f.segStartSet && !t.TS.Before(f.segStart.Add(f.interval)) {
		closed = f.closeSegment(false)
	}
	if !f.segStartSet {
		f.segStart = t.TS
		f.segStartSet = true
		f.minV, f.maxV = v, v
	}
	f.members = append(f.members, t)
	f.minV = math.Min(f.minV, v)
	f.maxV = math.Max(f.maxV, v)
	return Event{Admitted: true, Closed: closed}, nil
}

// closeSegment finalizes the current segment into a multi-degree candidate
// set.
func (f *SS) closeSegment(byCut bool) *CandidateSet {
	rate := f.lowPct
	if f.maxV-f.minV >= f.threshold {
		rate = f.highPct
	}
	n := len(f.members)
	k := int(math.Round(float64(n) * rate / 100))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	cs := &CandidateSet{
		Owner:        f.id,
		Ordinal:      f.ordinal,
		Members:      f.members,
		PickDegree:   k,
		Restrict:     f.prescription,
		RestrictAttr: f.idx,
		ClosedByCut:  byCut,
	}
	f.ordinal++
	f.members = nil
	f.segStartSet = false
	return cs
}

// Cut implements Filter: it closes the current partial segment.
func (f *SS) Cut() (*CandidateSet, []*tuple.Tuple) {
	if len(f.members) == 0 {
		return nil, nil
	}
	return f.closeSegment(true), nil
}

// Reset implements Filter.
func (f *SS) Reset() {
	f.bound, f.segStartSet = false, false
	f.ordinal = 0
	f.members = nil
}

// SelfInterested implements Filter: the baseline samples each segment on
// its own, picking evenly spaced tuples (a deterministic stand-in for the
// random sampling of §5.1; the pick count matches the group-aware
// PickDegree exactly, so any bandwidth difference comes purely from
// overlap).
func (f *SS) SelfInterested() SIFilter {
	cp := *f
	cp.Reset()
	return &siSS{ss: &cp}
}

// siSS is the self-interested stratified-sampling baseline.
type siSS struct {
	ss *SS
}

var _ SIFilter = (*siSS)(nil)

func (f *siSS) ID() string { return f.ss.id }

func (f *siSS) Process(t *tuple.Tuple) []*tuple.Tuple {
	ev, err := f.ss.Process(t)
	if err != nil {
		panic(err)
	}
	if ev.Closed == nil {
		return nil
	}
	return evenPicks(ev.Closed)
}

func (f *siSS) Flush() []*tuple.Tuple {
	cs, _ := f.ss.Cut()
	if cs == nil {
		return nil
	}
	return evenPicks(cs)
}

// evenPicks selects PickDegree evenly spaced tuples from the set's eligible
// members.
func evenPicks(cs *CandidateSet) []*tuple.Tuple {
	el := cs.Eligible()
	k := cs.PickDegree
	if k >= len(el) {
		out := make([]*tuple.Tuple, len(el))
		copy(out, el)
		return out
	}
	out := make([]*tuple.Tuple, 0, k)
	for i := 0; i < k; i++ {
		// Spread picks across the segment.
		j := (i*len(el) + len(el)/2) / k
		if j >= len(el) {
			j = len(el) - 1
		}
		out = append(out, el[j])
	}
	return out
}
