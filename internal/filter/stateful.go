package filter

import (
	"fmt"
	"math"

	"gasf/internal/tuple"
)

// StatefulDC is a delta-compression filter with stateful candidate sets
// (§2.3.3): each set's admission band is anchored on the output *chosen*
// from the previous set, not on a self-interested reference stream. The
// filter therefore needs its output decided as soon as each set closes,
// which is what the per-candidate-set greedy algorithm provides.
//
// Semantics: after a base value b (the previously chosen output's signal),
// the candidate set is the contiguous run of tuples whose signal v satisfies
// delta-slack <= |v-b| <= delta+slack. The first out-of-band tuple closes
// the set. A tuple that overshoots the band entirely (|v-b| > delta+slack)
// while no set is open forms a singleton set of its own, so the application
// still hears about abrupt jumps.
type StatefulDC struct {
	id    string
	sig   Signal
	delta float64
	slack float64

	started bool
	base    float64
	baseSet bool // base established by a chosen output
	ordinal int

	open     bool
	firstSet bool // the initial set anchors on the first tuple like stateless DC
	refTuple *tuple.Tuple
	members  []*tuple.Tuple

	// pending is the tuple that closed the last set; it is re-evaluated
	// once the chosen output is observed, because it may belong to the
	// next set.
	pending    *tuple.Tuple
	pendingVal float64
	hasPending bool
}

var _ Filter = (*StatefulDC)(nil)

// NewStatefulDC builds a stateful (slack, delta) delta-compression filter
// over one attribute.
func NewStatefulDC(id, attr string, delta, slack float64) (*StatefulDC, error) {
	if id == "" {
		return nil, fmt.Errorf("filter: empty filter id")
	}
	if delta <= 0 {
		return nil, fmt.Errorf("filter %s: delta must be positive, got %g", id, delta)
	}
	if slack < 0 || slack > delta/2 {
		return nil, fmt.Errorf("filter %s: slack %g outside [0, delta/2]", id, slack)
	}
	return &StatefulDC{id: id, sig: NewAttrSignal(attr), delta: delta, slack: slack}, nil
}

// ID implements Filter.
func (f *StatefulDC) ID() string { return f.id }

// Spec implements Filter.
func (f *StatefulDC) Spec() string {
	return fmt.Sprintf("SDC(%s, %g, %g)", f.sig, f.delta, f.slack)
}

// Stateful implements Filter.
func (f *StatefulDC) Stateful() bool { return true }

// inBand reports whether v falls in the admission band around the base.
func (f *StatefulDC) inBand(v float64) bool {
	d := math.Abs(v - f.base)
	return d >= f.delta-f.slack && d <= f.delta+f.slack
}

// Process implements Filter.
func (f *StatefulDC) Process(t *tuple.Tuple) (Event, error) {
	v, err := f.sig.Value(t)
	if err != nil {
		return Event{}, err
	}
	if f.hasPending {
		return Event{}, fmt.Errorf("filter %s: Process called before ObserveChosen resolved the closed set", f.id)
	}
	if !f.started {
		// The initial set anchors on the first tuple: candidates are
		// the contiguous run within slack of it.
		f.started = true
		f.base = v
		f.open, f.firstSet = true, true
		f.refTuple = t
		f.members = []*tuple.Tuple{t}
		return Event{Admitted: true}, nil
	}
	if f.open {
		ok := f.inBand(v)
		if f.firstSet {
			ok = math.Abs(v-f.base) <= f.slack
		}
		if ok {
			f.members = append(f.members, t)
			return Event{Admitted: true}, nil
		}
		// Out of band: close the set and park the tuple until the
		// chosen output rebases us.
		closed := f.closeSet(false)
		f.pending, f.pendingVal, f.hasPending = t, v, true
		return Event{Closed: closed}, nil
	}
	// No open set: a tuple entering the band opens one; an overshoot
	// forms a singleton set; anything else is ignored.
	return f.admitOrOvershoot(t, v), nil
}

// admitOrOvershoot handles a tuple arriving while no set is open.
func (f *StatefulDC) admitOrOvershoot(t *tuple.Tuple, v float64) Event {
	if f.inBand(v) {
		f.open = true
		f.refTuple = t
		f.members = []*tuple.Tuple{t}
		return Event{Admitted: true}
	}
	if math.Abs(v-f.base) > f.delta+f.slack {
		// Jumped over the band: owe the application a singleton set.
		f.open = true
		f.refTuple = t
		f.members = []*tuple.Tuple{t}
		closed := f.closeSet(false)
		// The set is closed immediately; the tuple is consumed, so
		// nothing is pending.
		return Event{Admitted: true, Closed: closed}
	}
	return Event{}
}

// closeSet finalizes the open set.
func (f *StatefulDC) closeSet(byCut bool) *CandidateSet {
	cs := &CandidateSet{
		Owner:       f.id,
		Ordinal:     f.ordinal,
		Members:     f.members,
		Reference:   f.refTuple,
		PickDegree:  1,
		ClosedByCut: byCut,
	}
	f.ordinal++
	f.open, f.firstSet = false, false
	f.refTuple = nil
	f.members = nil
	return cs
}

// ObserveChosen implements Filter: rebase on the chosen output and
// re-evaluate the tuple that closed the set (it may open — or, on a large
// jump, immediately close — the next set).
func (f *StatefulDC) ObserveChosen(chosen []*tuple.Tuple) Event {
	if len(chosen) == 0 {
		return Event{}
	}
	v, err := f.sig.Value(chosen[0])
	if err == nil {
		f.base = v
		f.baseSet = true
	}
	// Signal state: attrSignal keeps no history, so re-evaluating the
	// chosen tuple is safe. (StatefulDC only constructs attr signals.)
	if !f.hasPending {
		return Event{}
	}
	t, tv := f.pending, f.pendingVal
	f.pending, f.hasPending = nil, false
	return f.admitOrOvershoot(t, tv)
}

// Cut implements Filter.
func (f *StatefulDC) Cut() (*CandidateSet, []*tuple.Tuple) {
	if !f.open {
		return nil, nil
	}
	return f.closeSet(true), nil
}

// Reset implements Filter.
func (f *StatefulDC) Reset() {
	f.sig.Reset()
	f.started, f.open, f.firstSet, f.baseSet, f.hasPending = false, false, false, false, false
	f.base, f.ordinal = 0, 0
	f.refTuple, f.pending = nil, nil
	f.members = nil
}

// SelfInterested implements Filter: the baseline selects the first tuple,
// then every first tuple at least delta away from the last *selected*
// tuple — which for a stateful filter is the same recurrence as the
// stateless baseline.
func (f *StatefulDC) SelfInterested() SIFilter {
	return &siDC{id: f.id, sig: NewAttrSignal(f.sig.(*attrSignal).attr), delta: f.delta}
}
