package filter

import (
	"math"
	"testing"
	"time"

	"gasf/internal/trace"
	"gasf/internal/tuple"
)

func seriesOf(t *testing.T, vals ...float64) *tuple.Series {
	t.Helper()
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	for i, v := range vals {
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	return sr
}

// runStateful drives a stateful filter the way the PS engine does: when a
// set closes, choose() picks the output, ObserveChosen rebases, and any
// follow-on events (re-admission of the closing tuple) are folded in.
func runStateful(t *testing.T, f Filter, sr *tuple.Series, choose func(*CandidateSet) *tuple.Tuple) ([]*CandidateSet, []*tuple.Tuple) {
	t.Helper()
	var sets []*CandidateSet
	var chosen []*tuple.Tuple
	handle := func(ev Event) {
		for ev.Closed != nil {
			sets = append(sets, ev.Closed)
			pick := choose(ev.Closed)
			chosen = append(chosen, pick)
			ev = f.ObserveChosen([]*tuple.Tuple{pick})
		}
	}
	for i := 0; i < sr.Len(); i++ {
		ev, err := f.Process(sr.At(i))
		if err != nil {
			t.Fatalf("Process(%d): %v", i, err)
		}
		handle(ev)
	}
	if cs, _ := f.Cut(); cs != nil {
		sets = append(sets, cs)
		pick := choose(cs)
		chosen = append(chosen, pick)
		handle(f.ObserveChosen([]*tuple.Tuple{pick}))
	}
	return sets, chosen
}

// pickRef chooses the reference (first opener) of each set.
func pickRef(cs *CandidateSet) *tuple.Tuple { return cs.Reference }

// pickLast chooses the most recent member.
func pickLast(cs *CandidateSet) *tuple.Tuple { return cs.Members[len(cs.Members)-1] }

func TestStatefulDCBandsFollowChosenOutput(t *testing.T) {
	// (5, 20) stateful filter. Base 0 after first set; band [15, 25].
	sr := seriesOf(t, 0, 2, 16, 18, 30, 48, 52, 80)
	f, err := NewStatefulDC("f", "v", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	sets, chosen := runStateful(t, f, sr, pickLast)
	// Set 0: {0, 2} (first set: within slack 5 of first tuple 0),
	//   closed by 16; chosen = 2 -> band [17, 27].
	// Set 1: 16 re-evaluated: |16-2|=14 outside band; 18 in band {18};
	//   closed by 30 (|30-2|=28 > 27); chosen = 18 -> band [33, 43].
	// Set 2: 30 re-evaluated: |30-18|=12 no; 48 overshoots? |48-18|=30
	//   > 25... band is [15,25] around 18 -> [33,43] in absolute terms;
	//   48 > 43 -> overshoot singleton {48}; chosen = 48 -> band [63,73].
	// Then 52: |52-48|=4 no; 80: |80-48|=32 > 25 -> overshoot singleton.
	if len(sets) != 4 {
		t.Fatalf("got %d sets: %v", len(sets), sets)
	}
	wantMembers := [][]int{{0, 1}, {3}, {5}, {7}}
	for i, cs := range sets {
		if !eqInts(seqs(cs), wantMembers[i]) {
			t.Errorf("set %d members = %v, want %v", i, seqs(cs), wantMembers[i])
		}
	}
	wantChosen := []int{1, 3, 5, 7}
	for i, c := range chosen {
		if c.Seq != wantChosen[i] {
			t.Errorf("chosen %d = seq %d, want %d", i, c.Seq, wantChosen[i])
		}
	}
}

// TestStatefulDCChosenSpacing: the distance between consecutive chosen
// outputs always lies in [delta-slack, delta+slack] (quality guarantee),
// except across overshoot jumps which may exceed it.
func TestStatefulDCChosenSpacing(t *testing.T) {
	sr := seriesOf(t, 0, 5, 11, 17, 22, 26, 33, 39, 44, 50, 57, 61, 68)
	const delta, slack = 10.0, 3.0
	f, err := NewStatefulDC("f", "v", delta, slack)
	if err != nil {
		t.Fatal(err)
	}
	_, chosen := runStateful(t, f, sr, pickRef)
	if len(chosen) < 3 {
		t.Fatalf("too few outputs: %d", len(chosen))
	}
	for i := 1; i < len(chosen); i++ {
		gap := math.Abs(chosen[i].ValueAt(0) - chosen[i-1].ValueAt(0))
		if gap < delta-slack-1e-9 {
			t.Errorf("gap %d = %g below delta-slack = %g", i, gap, delta-slack)
		}
	}
}

func TestStatefulDCProcessBeforeObserveFails(t *testing.T) {
	sr := seriesOf(t, 0, 1, 30, 60)
	f, err := NewStatefulDC("f", "v", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Process(sr.At(0)); err != nil {
		t.Fatal(err)
	}
	ev, err := f.Process(sr.At(2)) // closes first set, parks tuple
	if err != nil {
		t.Fatal(err)
	}
	if ev.Closed == nil {
		t.Fatal("expected closure")
	}
	if _, err := f.Process(sr.At(3)); err == nil {
		t.Error("Process before ObserveChosen should fail for stateful filters")
	}
}

func TestStatefulDCCut(t *testing.T) {
	sr := seriesOf(t, 0, 1, 2)
	f, err := NewStatefulDC("f", "v", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if _, err := f.Process(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	cs, dismissed := f.Cut()
	if cs == nil || len(cs.Members) != 3 || !cs.ClosedByCut {
		t.Fatalf("Cut = %v, want the open 3-member set closed by cut", cs)
	}
	if dismissed != nil {
		t.Errorf("dismissed = %v, want none", dismissed)
	}
	// Cut with nothing open is a no-op.
	if cs, _ := f.Cut(); cs != nil {
		t.Error("second Cut should return nothing")
	}
}

func TestStatefulDCStatefulFlag(t *testing.T) {
	f, err := NewStatefulDC("f", "v", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Stateful() {
		t.Error("StatefulDC.Stateful() = false")
	}
	dc, err := NewDC1("g", "v", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Stateful() {
		t.Error("DC.Stateful() = true")
	}
}

func TestStatefulDCValidation(t *testing.T) {
	if _, err := NewStatefulDC("", "v", 20, 5); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewStatefulDC("f", "v", 0, 0); err == nil {
		t.Error("zero delta should fail")
	}
	if _, err := NewStatefulDC("f", "v", 20, 11); err == nil {
		t.Error("slack > delta/2 should fail")
	}
}

func TestStatefulDCSelfInterested(t *testing.T) {
	sr := seriesOf(t, 0, 5, 11, 17, 22, 30, 41, 52)
	f, err := NewStatefulDC("f", "v", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	si := runSI(f.SelfInterested(), sr)
	// SI: 0, then first >= 10 away: 11, then 22, then 33.. -> 41, 52.
	want := []int{0, 2, 4, 6, 7}
	var got []int
	for _, s := range si {
		got = append(got, s.Seq)
	}
	if !eqInts(got, want) {
		t.Errorf("SI selections = %v, want %v", got, want)
	}
}

func TestStatefulDCReset(t *testing.T) {
	sr := seriesOf(t, 0, 1, 30)
	f, err := NewStatefulDC("f", "v", 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if _, err := f.Process(sr.At(i)); err != nil {
			break // the stateful guard may fire; Reset must clear it
		}
	}
	f.Reset()
	ev, err := f.Process(sr.At(0))
	if err != nil {
		t.Fatalf("Process after Reset: %v", err)
	}
	if !ev.Admitted {
		t.Error("first tuple after Reset should be admitted")
	}
}
