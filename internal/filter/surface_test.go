package filter

import (
	"strings"
	"testing"
	"time"

	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// TestFilterContractSurface exercises the identification and description
// surface of every filter type: IDs, Spec strings, parameter accessors,
// statefulness flags, and no-op ObserveChosen for stateless filters.
func TestFilterContractSurface(t *testing.T) {
	dc1, err := NewDC1("a", "x", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	dc2, err := NewDC2("b", "x", 10, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dc3, err := NewDC3("c", []string{"x", "y"}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := NewDCSignal("d", NewAttrSignal("x"), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewSS("e", "x", time.Second, 1, 50, 20, Top)
	if err != nil {
		t.Fatal(err)
	}
	sdc, err := NewStatefulDC("f", "x", 10, 2)
	if err != nil {
		t.Fatal(err)
	}

	specs := map[Filter]string{
		dc1: "DC1(x, 10, 2)",
		dc2: "DC2(x, 10, 2)",
		dc3: "DC3(avg(x, y), 10, 2)",
		sig: "DC(x, 10, 2)",
		sdc: "SDC(x, 10, 2)",
	}
	for f, want := range specs {
		if got := f.Spec(); got != want {
			t.Errorf("%s.Spec() = %q, want %q", f.ID(), got, want)
		}
		if f != sdc && f.Stateful() {
			t.Errorf("%s unexpectedly stateful", f.ID())
		}
		if f != sdc {
			if ev := f.ObserveChosen(nil); ev.Admitted || ev.Closed != nil {
				t.Errorf("%s.ObserveChosen not a no-op", f.ID())
			}
		}
	}
	if !strings.Contains(ss.Spec(), "SS(x") {
		t.Errorf("SS.Spec() = %q", ss.Spec())
	}
	if ss.Stateful() {
		t.Error("SS unexpectedly stateful")
	}
	if dc1.Delta() != 10 || dc1.Slack() != 2 || dc1.SignalName() != "x" {
		t.Errorf("DC accessors: %g %g %q", dc1.Delta(), dc1.Slack(), dc1.SignalName())
	}
	ids := []string{dc1.ID(), dc2.ID(), dc3.ID(), sig.ID(), ss.ID(), sdc.ID()}
	want := []string{"a", "b", "c", "d", "e", "f"}
	for i := range ids {
		if ids[i] != want[i] {
			t.Errorf("ID %d = %q, want %q", i, ids[i], want[i])
		}
	}
}

// TestSelfInterestedVariantsRun: the SI counterparts of every DC variant
// run and select the first tuple.
func TestSelfInterestedVariantsRun(t *testing.T) {
	s := tuple.MustSchema("x", "y")
	sr := tuple.NewSeries(s)
	for i := 0; i < 20; i++ {
		v := float64(i * 3)
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v, -v})); err != nil {
			t.Fatal(err)
		}
	}
	dc2, err := NewDC2("b", "x", 100, 40, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dc3, err := NewDC3("c", []string{"x", "y"}, 4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := NewDCSignal("d", NewAttrSignal("x"), 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Filter{dc2, dc3, sig} {
		si := f.SelfInterested()
		if si.ID() != f.ID() {
			t.Errorf("SI id %q != %q", si.ID(), f.ID())
		}
		var picked int
		for i := 0; i < sr.Len(); i++ {
			picked += len(si.Process(sr.At(i)))
		}
		picked += len(si.Flush())
		if picked == 0 {
			t.Errorf("%s SI selected nothing", f.ID())
		}
	}
}

// TestDCResetRestoresInitialState: after Reset the filter reprocesses a
// stream identically.
func TestDCResetRestoresInitialState(t *testing.T) {
	sr := trace.PaperExample()
	f, err := NewDC1("f", "temperature", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int {
		var refs []int
		for i := 0; i < sr.Len(); i++ {
			ev, err := f.Process(sr.At(i))
			if err != nil {
				t.Fatal(err)
			}
			if ev.Closed != nil {
				refs = append(refs, ev.Closed.Reference.Seq)
			}
		}
		return refs
	}
	first := run()
	f.Reset()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("runs differ: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("runs differ at %d: %v vs %v", i, first, second)
		}
	}
}

// TestCandidateSetContainsAndString covers the inspection helpers.
func TestCandidateSetContainsAndString(t *testing.T) {
	s := tuple.MustSchema("v")
	cs := &CandidateSet{
		Owner:   "A",
		Members: []*tuple.Tuple{tuple.MustNew(s, 5, trace.Epoch, []float64{1})},
	}
	if !cs.Contains(5) || cs.Contains(6) {
		t.Error("Contains wrong")
	}
	if got := cs.String(); !strings.Contains(got, "A-0") || !strings.Contains(got, "[5]") {
		t.Errorf("String() = %q", got)
	}
}
