// Package filter implements the group-aware stream filters of the paper:
// the filter contract of §2.2.2, reference-based candidate sets (§2.2.3),
// the delta-compression family used throughout the evaluation, and the
// extended taxonomy of Chapter 5 (trend and multi-attribute variants,
// stratified sampling with multi-degree candidacy, stateful candidate
// sets).
//
// A group-aware filter consumes a stream tuple by tuple and produces
// candidate sets: for each output the filter owes its application, the set
// of quality-equivalent tuples any one of which satisfies the application.
// The engine in internal/core coordinates a group of filters so that their
// chosen outputs overlap as much as possible.
package filter

import (
	"fmt"
	"time"

	"gasf/internal/tuple"
)

// Prescription says how outputs are picked from a candidate set when the
// set allows more than one quality-equivalent choice (§5.2, Fig 5.1).
type Prescription int

const (
	// Random lets the output decider pick any eligible tuples; it is the
	// default and the case that benefits most from group-awareness.
	Random Prescription = iota
	// Top restricts candidacy to the k highest-valued tuples of the set.
	Top
	// Bottom restricts candidacy to the k lowest-valued tuples.
	Bottom
)

// String implements fmt.Stringer.
func (p Prescription) String() string {
	switch p {
	case Random:
		return "random"
	case Top:
		return "top"
	case Bottom:
		return "bottom"
	default:
		return fmt.Sprintf("Prescription(%d)", int(p))
	}
}

// CandidateSet is the set of quality-equivalent tuples for one output a
// filter owes its application (§2.2.3). Choosing any PickDegree tuples from
// Eligible() satisfies the filter.
type CandidateSet struct {
	// Owner is the ID of the filter that produced the set.
	Owner string
	// Ordinal is the 0-based index of this set within its filter.
	Ordinal int
	// Members are the admitted candidates in arrival order.
	Members []*tuple.Tuple
	// Reference is the tuple a self-interested filter would have output,
	// when the set is reference-based; nil otherwise (e.g. sampling sets).
	Reference *tuple.Tuple
	// PickDegree is how many tuples must be chosen from the set
	// (1 for delta-compression; k for multi-degree sampling sets, §5.3).
	PickDegree int
	// Restrict narrows eligibility per the filter's prescription;
	// Random means all members are eligible.
	Restrict Prescription
	// RestrictAttr is the schema position used to rank members for
	// Top/Bottom restriction.
	RestrictAttr int
	// ClosedByCut records that a timely cut (§3.3) forced the closure.
	ClosedByCut bool
}

// MinTS returns the earliest member timestamp; the lower bound of the
// set's time cover (Definition 1).
func (cs *CandidateSet) MinTS() time.Time { return cs.Members[0].TS }

// MaxTS returns the latest member timestamp; the upper bound of the set's
// time cover.
func (cs *CandidateSet) MaxTS() time.Time { return cs.Members[len(cs.Members)-1].TS }

// CoverIntersects reports whether the time covers of two candidate sets
// intersect (Definition 2: "connected").
func (cs *CandidateSet) CoverIntersects(other *CandidateSet) bool {
	return !cs.MaxTS().Before(other.MinTS()) && !other.MaxTS().Before(cs.MinTS())
}

// Contains reports whether the set contains the tuple with the given
// sequence number.
func (cs *CandidateSet) Contains(seq int) bool {
	for _, m := range cs.Members {
		if m.Seq == seq {
			return true
		}
	}
	return false
}

// Eligible returns the members that may be chosen as outputs, applying the
// Top/Bottom prescription if any. For Random (the default) it returns all
// members. The returned slice preserves arrival order.
func (cs *CandidateSet) Eligible() []*tuple.Tuple {
	if cs.Restrict == Random || cs.PickDegree >= len(cs.Members) {
		return cs.Members
	}
	// Rank by value at RestrictAttr; keep the top/bottom PickDegree,
	// including ties with the boundary value (the paper keeps ties).
	k := cs.PickDegree
	ranked := make([]*tuple.Tuple, len(cs.Members))
	copy(ranked, cs.Members)
	// Insertion sort: sets are small and this avoids an import cycle of
	// concerns; descending for Top, ascending for Bottom.
	less := func(a, b *tuple.Tuple) bool {
		if cs.Restrict == Top {
			return a.ValueAt(cs.RestrictAttr) > b.ValueAt(cs.RestrictAttr)
		}
		return a.ValueAt(cs.RestrictAttr) < b.ValueAt(cs.RestrictAttr)
	}
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && less(ranked[j], ranked[j-1]); j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	boundary := ranked[k-1].ValueAt(cs.RestrictAttr)
	eligible := make([]*tuple.Tuple, 0, k)
	for _, m := range cs.Members {
		v := m.ValueAt(cs.RestrictAttr)
		switch cs.Restrict {
		case Top:
			if v >= boundary {
				eligible = append(eligible, m)
			}
		case Bottom:
			if v <= boundary {
				eligible = append(eligible, m)
			}
		}
	}
	return eligible
}

// String implements fmt.Stringer.
func (cs *CandidateSet) String() string {
	vals := make([]int, len(cs.Members))
	for i, m := range cs.Members {
		vals[i] = m.Seq
	}
	ref := -1
	if cs.Reference != nil {
		ref = cs.Reference.Seq
	}
	return fmt.Sprintf("cands{%s-%d seqs=%v ref=%d pick=%d}", cs.Owner, cs.Ordinal, vals, ref, cs.PickDegree)
}

// Event reports what happened inside a filter while processing one tuple.
// The engine uses it to maintain group utilities (admit increments, dismiss
// decrements) and to collect closed candidate sets.
type Event struct {
	// Admitted reports that the processed tuple joined the filter's open
	// candidate set (possibly tentatively; see Dismissed).
	Admitted bool
	// Dismissed lists tuples removed from the open set during this step:
	// tentative candidates that turned out to be more than slack away
	// from the reference, or whose contiguity broke (§2.3.3). The slice
	// may alias filter-internal buffers and is valid only until the next
	// call into the filter; consumers must not retain it.
	Dismissed []*tuple.Tuple
	// Closed is the candidate set that closed during this step, if any.
	// A single tuple may close the previous set and be admitted into the
	// next one; then both Closed and Admitted are set.
	Closed *CandidateSet
}

// Filter is the group-aware filter contract of §2.2.2: a data-selection
// operator that computes, online, a candidate set per owed output, closes
// each set before starting the next, and can be forced to close early.
//
// Implementations are not safe for concurrent use; the engine serializes
// calls per group.
type Filter interface {
	// ID identifies the filter within its group (e.g. "A", or an
	// application name).
	ID() string
	// Spec returns the human-readable filter specification, e.g.
	// "DC1(fluoro, 0.0301, 0.0150)".
	Spec() string
	// Process consumes the next stream tuple and reports admissions,
	// dismissals and set closure.
	Process(t *tuple.Tuple) (Event, error)
	// Cut force-closes the open candidate set for a timely cut (§3.3).
	// If the open set is owed to the application (it has a reference, or
	// is a sampling segment with data) it is returned closed; a
	// tentative-only buffer is dismissed instead, with the dismissed
	// tuples reported so group utilities can be decremented. Cut is also
	// used to flush at end of stream.
	Cut() (closed *CandidateSet, dismissed []*tuple.Tuple)
	// Stateful reports whether candidate-set computation depends on the
	// output chosen from the previous set (§2.3.3 "stateful candidate
	// sets"). Stateful filters must have their output decided as soon as
	// each set closes.
	Stateful() bool
	// ObserveChosen informs the filter of the outputs chosen from its
	// most recently closed candidate set. Only stateful filters react:
	// they rebase on the chosen tuple and re-evaluate the tuple that
	// closed the set, which may admit it into (or even close) the next
	// set — the returned Event reports those effects so the engine can
	// keep group utilities consistent.
	ObserveChosen(chosen []*tuple.Tuple) Event
	// SelfInterested returns a fresh baseline filter with the same
	// specification that selects outputs greedily for itself, with no
	// slack exploitation (the paper's SI baseline).
	SelfInterested() SIFilter
	// Reset returns the filter to its initial state.
	Reset()
}

// SIFilter is a self-interested (non-group-aware) filter used as the
// baseline in every experiment. Process returns the tuples selected at this
// step (usually none or one; sampling filters emit batches at segment
// boundaries). Flush returns any final selections at end of stream.
type SIFilter interface {
	ID() string
	Process(t *tuple.Tuple) []*tuple.Tuple
	Flush() []*tuple.Tuple
}
