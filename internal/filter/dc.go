package filter

import (
	"fmt"
	"math"
	"time"

	"gasf/internal/tuple"
)

// phase of the stateless delta-compression state machine.
type dcPhase int

const (
	// dcSeekRef: no reference yet for the current owed output; tuples that
	// could be within slack of the upcoming reference are admitted
	// tentatively (§2.3.3: "isAdmissible may tentatively admit tuples
	// based on estimates of the next reference tuple").
	dcSeekRef dcPhase = iota
	// dcInRef: the reference has arrived; tuples within slack of it are
	// admitted until the first violation closes the set.
	dcInRef
)

// DC is a (slack, delta) delta-compression group-aware filter over an
// arbitrary monitored signal. It generalizes the DC1/DC2/DC3 types of
// Table 5.1, which differ only in their candidate-computation signal.
//
// Semantics (§2.1, §2.2.3): a self-interested DC filter outputs the first
// tuple, then every first tuple whose signal differs from the last
// reference by at least delta. The group-aware version computes, for each
// such reference tuple, the candidate set of tuples that are contiguous
// with it and within slack of its signal value; any one of them is a
// quality-equivalent output.
type DC struct {
	id          string
	kind        string // "DC1", "DC2", "DC3" for spec printing
	sig         Signal
	delta       float64
	slack       float64
	specSummary string

	// scale degrades (or restores) granularity at run time (§3.1):
	// the effective delta and slack are scale times the configured
	// values. Changes take effect when the next candidate set starts;
	// the open set keeps the slack it was opened with.
	scale    float64
	curSlack float64

	started bool
	phase   dcPhase
	lastRef float64 // signal value of the last reference
	ordinal int     // ordinal of the next set to close

	// Open set state (dcInRef). members is handed off to the closed
	// CandidateSet, so it is reallocated per set; the tentative buffer is
	// recycled in place.
	refTuple *tuple.Tuple
	refVal   float64
	members  []*tuple.Tuple

	// Tentative buffer (dcSeekRef).
	tentative []*tuple.Tuple
	tentVals  []float64
}

var _ Filter = (*DC)(nil)

// newDC validates parameters shared by every DC variant.
func newDC(id, kind string, sig Signal, delta, slack float64, spec string) (*DC, error) {
	if id == "" {
		return nil, fmt.Errorf("filter: empty filter id")
	}
	if delta <= 0 {
		return nil, fmt.Errorf("filter %s: delta must be positive, got %g", id, delta)
	}
	if slack < 0 {
		return nil, fmt.Errorf("filter %s: slack must be non-negative, got %g", id, slack)
	}
	// Axiom 1 needs slack < delta/2 to keep time covers disjoint; the
	// paper calls that "normally desirable" and its experiments use
	// slack <= 50% of delta. We accept slack up to delta/2.
	if slack > delta/2 {
		return nil, fmt.Errorf("filter %s: slack %g exceeds delta/2 (%g); violates Axiom 1", id, slack, delta/2)
	}
	return &DC{id: id, kind: kind, sig: sig, delta: delta, slack: slack, specSummary: spec, scale: 1}, nil
}

// NewDC1 builds a single-attribute delta-compression filter:
// DC1(attr, delta, slack).
func NewDC1(id, attr string, delta, slack float64) (*DC, error) {
	return newDC(id, "DC1", NewAttrSignal(attr), delta, slack,
		fmt.Sprintf("DC1(%s, %g, %g)", attr, delta, slack))
}

// NewDC2 builds a trend delta-compression filter: it monitors the change
// rate of attr per unit time (Table 5.1). A zero unit defaults to one
// second.
func NewDC2(id, attr string, delta, slack float64, unit time.Duration) (*DC, error) {
	return newDC(id, "DC2", NewTrendSignal(attr, unit), delta, slack,
		fmt.Sprintf("DC2(%s, %g, %g)", attr, delta, slack))
}

// NewDC3 builds a multi-attribute average delta-compression filter
// (Table 5.1): it monitors the mean of the given attributes.
func NewDC3(id string, attrs []string, delta, slack float64) (*DC, error) {
	sig, err := NewAvgSignal(attrs...)
	if err != nil {
		return nil, err
	}
	return newDC(id, "DC3", sig, delta, slack,
		fmt.Sprintf("DC3(%s, %g, %g)", sig, delta, slack))
}

// NewDCSignal builds a delta-compression filter over a caller-supplied
// signal; the extension hook of §5.3 for domain-specific candidate
// computation (distance functions, membership functions).
func NewDCSignal(id string, sig Signal, delta, slack float64) (*DC, error) {
	return newDC(id, "DC", sig, delta, slack,
		fmt.Sprintf("DC(%s, %g, %g)", sig, delta, slack))
}

// ID implements Filter.
func (f *DC) ID() string { return f.id }

// Spec implements Filter.
func (f *DC) Spec() string { return f.specSummary }

// Delta returns the compression granularity parameter.
func (f *DC) Delta() float64 { return f.delta }

// Slack returns the quality-slack parameter.
func (f *DC) Slack() float64 { return f.slack }

// SignalName returns the description of the monitored signal.
func (f *DC) SignalName() string { return f.sig.String() }

// Scale returns the current granularity degradation factor (1 = the
// configured granularity).
func (f *DC) Scale() float64 { return f.scale }

// SetScale degrades (scale > 1) or restores the filter's granularity at
// run time: the effective delta and slack become scale times the
// configured values, starting with the next candidate set. This is the
// adaptation hook of §3.1 ("applications ... are willing to adapt their
// data requirements according to system conditions"). Scale must be
// positive.
func (f *DC) SetScale(scale float64) error {
	if scale <= 0 {
		return fmt.Errorf("filter %s: scale must be positive, got %g", f.id, scale)
	}
	f.scale = scale
	return nil
}

// Stateful implements Filter: reference-based candidate sets are stateless
// (§2.3.3) — the reference stream is independent of chosen outputs.
func (f *DC) Stateful() bool { return false }

// ObserveChosen implements Filter; stateless filters ignore it.
func (f *DC) ObserveChosen([]*tuple.Tuple) Event { return Event{} }

// Process implements Filter.
func (f *DC) Process(t *tuple.Tuple) (Event, error) {
	v, err := f.sig.Value(t)
	if err != nil {
		return Event{}, err
	}
	if !f.started {
		// The first tuple is the first reference (a self-interested DC
		// filter always outputs the first tuple).
		f.started = true
		f.openSet(t, v, nil)
		return Event{Admitted: true}, nil
	}
	switch f.phase {
	case dcInRef:
		if math.Abs(v-f.refVal) <= f.curSlack {
			f.members = append(f.members, t)
			return Event{Admitted: true}, nil
		}
		// Violation: close the set, then re-process this tuple in the
		// seek phase — it may be tentative for, or even be, the next
		// reference.
		closed := f.closeSet(false)
		ev := f.seek(t, v)
		ev.Closed = closed
		return ev, nil
	case dcSeekRef:
		return f.seek(t, v), nil
	default:
		return Event{}, fmt.Errorf("filter %s: corrupt phase %d", f.id, f.phase)
	}
}

// seek handles a tuple while no reference has arrived for the next set.
func (f *DC) seek(t *tuple.Tuple, v float64) Event {
	delta, slack := f.delta*f.scale, f.slack*f.scale
	if math.Abs(v-f.lastRef) >= delta {
		// Reference found. Keep the suffix of the tentative buffer that
		// is contiguous with the reference and within slack of it;
		// dismiss the rest (§2.3.3 "check and dismiss candidates that
		// are more than slack away from the reference output").
		keepFrom := len(f.tentative)
		for i := len(f.tentative) - 1; i >= 0; i-- {
			if math.Abs(f.tentVals[i]-v) <= slack {
				keepFrom = i
			} else {
				break
			}
		}
		// The dismissed view stays valid until the next call into the
		// filter (the Event contract); the engine consumes it before then.
		dismissed := f.tentative[:keepFrom]
		f.openSet(t, v, f.tentative[keepFrom:])
		return Event{Admitted: true, Dismissed: dismissed}
	}
	if math.Abs(v-f.lastRef) >= delta-slack {
		// Potential candidate for the upcoming reference: admit
		// tentatively.
		f.tentative = append(f.tentative, t)
		f.tentVals = append(f.tentVals, v)
		return Event{Admitted: true}
	}
	// Contiguity break: the tuple is neither admissible nor a reference,
	// so any tentative candidates can no longer be contiguous with the
	// eventual reference.
	if len(f.tentative) == 0 {
		return Event{}
	}
	dismissed := f.tentative
	// Recycle the buffer in place: the dismissed view is consumed before
	// the next call can append into it again.
	f.tentative, f.tentVals = f.tentative[:0], f.tentVals[:0]
	return Event{Dismissed: dismissed}
}

// openSet starts the open candidate set around reference t. The members
// slice is freshly sized because it is handed off to the closed
// CandidateSet; the tentative buffer is recycled.
func (f *DC) openSet(ref *tuple.Tuple, refVal float64, kept []*tuple.Tuple) {
	f.phase = dcInRef
	f.curSlack = f.slack * f.scale
	f.refTuple, f.refVal = ref, refVal
	f.members = make([]*tuple.Tuple, 0, len(kept)+1)
	f.members = append(append(f.members, kept...), ref)
	f.tentative, f.tentVals = f.tentative[:0], f.tentVals[:0]
}

// closeSet finalizes the open set and transitions to seeking the next
// reference.
func (f *DC) closeSet(byCut bool) *CandidateSet {
	cs := &CandidateSet{
		Owner:       f.id,
		Ordinal:     f.ordinal,
		Members:     f.members,
		Reference:   f.refTuple,
		PickDegree:  1,
		ClosedByCut: byCut,
	}
	f.ordinal++
	f.lastRef = f.refVal
	f.phase = dcSeekRef
	f.refTuple = nil
	f.members = nil
	return cs
}

// Cut implements Filter: it force-closes the open candidate set (§3.3). A
// set with a reference is closed and returned; a tentative-only buffer is
// dismissed, because no output is owed until a reference arrives and
// keeping tentative admissions open would prevent the current region from
// closing.
func (f *DC) Cut() (*CandidateSet, []*tuple.Tuple) {
	if !f.started {
		return nil, nil
	}
	if f.phase == dcInRef {
		return f.closeSet(true), nil
	}
	dismissed := f.tentative
	f.tentative, f.tentVals = f.tentative[:0], f.tentVals[:0]
	return nil, dismissed
}

// Reset implements Filter.
func (f *DC) Reset() {
	f.sig.Reset()
	f.scale = 1
	f.started = false
	f.phase = dcSeekRef
	f.lastRef = 0
	f.ordinal = 0
	f.refTuple = nil
	f.members = nil
	f.tentative, f.tentVals = nil, nil
}

// SelfInterested implements Filter.
func (f *DC) SelfInterested() SIFilter {
	// Each SI filter needs its own signal state; rebuild from the spec.
	sig := f.freshSignal()
	return &siDC{id: f.id, sig: sig, delta: f.delta}
}

// freshSignal builds an unbound copy of the filter's signal.
func (f *DC) freshSignal() Signal {
	switch s := f.sig.(type) {
	case *attrSignal:
		return NewAttrSignal(s.attr)
	case *trendSignal:
		return NewTrendSignal(s.attr, s.unit)
	case *avgSignal:
		sig, err := NewAvgSignal(s.attrs...)
		if err != nil {
			// The original was validated at construction.
			panic(err)
		}
		return sig
	default:
		// Caller-supplied signals are reset and shared; acceptable
		// because GA and SI runs never interleave on one filter.
		f.sig.Reset()
		return f.sig
	}
}

// siDC is the self-interested delta-compression baseline: it selects the
// first tuple and then every first tuple at least delta away from the last
// selection, with no slack exploitation.
type siDC struct {
	id      string
	sig     Signal
	delta   float64
	started bool
	lastRef float64
}

var _ SIFilter = (*siDC)(nil)

func (f *siDC) ID() string { return f.id }

func (f *siDC) Process(t *tuple.Tuple) []*tuple.Tuple {
	v, err := f.sig.Value(t)
	if err != nil {
		// SI filters run on the same stream already validated by the
		// group-aware pass; a binding failure here is a programmer
		// error.
		panic(err)
	}
	if !f.started {
		f.started = true
		f.lastRef = v
		return []*tuple.Tuple{t}
	}
	if math.Abs(v-f.lastRef) >= f.delta {
		f.lastRef = v
		return []*tuple.Tuple{t}
	}
	return nil
}

func (f *siDC) Flush() []*tuple.Tuple { return nil }
