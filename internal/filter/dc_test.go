package filter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// runFilter processes a whole series through f, returning the closed
// candidate sets (including a final flush via Cut).
func runFilter(t *testing.T, f Filter, sr *tuple.Series) []*CandidateSet {
	t.Helper()
	var sets []*CandidateSet
	for i := 0; i < sr.Len(); i++ {
		ev, err := f.Process(sr.At(i))
		if err != nil {
			t.Fatalf("Process(%d): %v", i, err)
		}
		if ev.Closed != nil {
			sets = append(sets, ev.Closed)
		}
	}
	if cs, _ := f.Cut(); cs != nil {
		sets = append(sets, cs)
	}
	return sets
}

// runSI processes a whole series through the SI baseline.
func runSI(f SIFilter, sr *tuple.Series) []*tuple.Tuple {
	var out []*tuple.Tuple
	for i := 0; i < sr.Len(); i++ {
		out = append(out, f.Process(sr.At(i))...)
	}
	return append(out, f.Flush()...)
}

// seqs extracts member sequence numbers.
func seqs(cs *CandidateSet) []int {
	out := make([]int, len(cs.Members))
	for i, m := range cs.Members {
		out[i] = m.Seq
	}
	return out
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// vals maps tuple seq -> value for the paper example.
var paperVals = []float64{0, 35, 29, 45, 50, 59, 80, 97, 100, 112}

// TestPaperExampleCandidateSets reproduces Fig 2.5 exactly: the candidate
// sets of the three DC filters A=(10,50), B=(5,40), C=(25,80) on the
// worked example.
func TestPaperExampleCandidateSets(t *testing.T) {
	sr := trace.PaperExample()
	tests := []struct {
		name         string
		slack, delta float64
		wantSets     [][]int // member seqs per set
		wantRefs     []int   // reference seq per set
	}{
		{
			name: "A (10,50)", slack: 10, delta: 50,
			wantSets: [][]int{{0}, {3, 4, 5}, {7, 8}}, // {0},{45,50,59},{97,100}
			wantRefs: []int{0, 4, 8},                  // 0, 50, 100
		},
		{
			name: "B (5,40)", slack: 5, delta: 40,
			wantSets: [][]int{{0}, {3, 4}, {7, 8}}, // {0},{45,50},{97,100}
			wantRefs: []int{0, 3, 7},               // 0, 45, 97
		},
		{
			name: "C (25,80)", slack: 25, delta: 80,
			wantSets: [][]int{{0}, {5, 6, 7, 8}}, // {0},{59,80,97,100}
			wantRefs: []int{0, 6},                // 0, 80
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewDC1("f", "temperature", tc.delta, tc.slack)
			if err != nil {
				t.Fatal(err)
			}
			sets := runFilter(t, f, sr)
			if len(sets) != len(tc.wantSets) {
				t.Fatalf("got %d sets, want %d: %v", len(sets), len(tc.wantSets), sets)
			}
			for i, cs := range sets {
				if !eqInts(seqs(cs), tc.wantSets[i]) {
					t.Errorf("set %d members = %v, want %v", i, seqs(cs), tc.wantSets[i])
				}
				if cs.Reference == nil || cs.Reference.Seq != tc.wantRefs[i] {
					t.Errorf("set %d reference = %v, want seq %d", i, cs.Reference, tc.wantRefs[i])
				}
				if cs.Ordinal != i {
					t.Errorf("set %d ordinal = %d", i, cs.Ordinal)
				}
				if cs.PickDegree != 1 {
					t.Errorf("set %d pick degree = %d, want 1", i, cs.PickDegree)
				}
			}
		})
	}
}

// TestReferencesMatchSelfInterested: the references of group-aware sets are
// exactly the SI baseline's selections (the paper's claim that region-based
// filtering preserves the compression ratio, §2.3.3).
func TestReferencesMatchSelfInterested(t *testing.T) {
	sr := trace.PaperExample()
	f, err := NewDC1("f", "temperature", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	sets := runFilter(t, f, sr)
	si := runSI(f.SelfInterested(), sr)
	if len(sets) != len(si) {
		t.Fatalf("GA produced %d sets, SI selected %d tuples", len(sets), len(si))
	}
	for i := range sets {
		if sets[i].Reference.Seq != si[i].Seq {
			t.Errorf("set %d reference seq %d != SI selection seq %d", i, sets[i].Reference.Seq, si[i].Seq)
		}
	}
}

// TestContiguityBreakDismissesTentatives: a tuple that is neither
// admissible nor a reference flushes the tentative buffer (so candidates
// stay contiguous with the reference).
func TestContiguityBreakDismissesTentatives(t *testing.T) {
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	for i, v := range []float64{0, 44, 10, 50, 52, 90} {
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*time.Millisecond), []float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	f, err := NewDC1("f", "v", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 0 = ref. 44 tentative (>=40). 10 breaks contiguity -> dismiss 44.
	// 50 = ref (>=50); set {50, 52} closes at 90.
	var dismissed []int
	var sets []*CandidateSet
	for i := 0; i < sr.Len(); i++ {
		ev, err := f.Process(sr.At(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ev.Dismissed {
			dismissed = append(dismissed, d.Seq)
		}
		if ev.Closed != nil {
			sets = append(sets, ev.Closed)
		}
	}
	if !eqInts(dismissed, []int{1}) {
		t.Errorf("dismissed = %v, want [1] (the 44 tuple)", dismissed)
	}
	if len(sets) != 2 || !eqInts(seqs(sets[1]), []int{3, 4}) {
		t.Errorf("sets = %v, want second set {3,4} = values {50,52}", sets)
	}
}

// TestDismissalAtReferenceArrival: tentative tuples more than slack away
// from the reference are dismissed when it arrives (§2.3.3), keeping only
// the contiguous suffix.
func TestDismissalAtReferenceArrival(t *testing.T) {
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	// After ref 0 with (10, 50): 41 tentative, 48 tentative, 55 ref.
	// |41-55|=14 > 10 -> dismissed; |48-55|=7 <= 10 -> kept.
	for i, v := range []float64{0, 20, 41, 48, 55, 100} {
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*time.Millisecond), []float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	f, err := NewDC1("f", "v", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	var dismissedAtRef []int
	var sets []*CandidateSet
	for i := 0; i < sr.Len(); i++ {
		ev, err := f.Process(sr.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			for _, d := range ev.Dismissed {
				dismissedAtRef = append(dismissedAtRef, d.Seq)
			}
		}
		if ev.Closed != nil {
			sets = append(sets, ev.Closed)
		}
	}
	if !eqInts(dismissedAtRef, []int{2}) {
		t.Errorf("dismissed at reference = %v, want [2] (value 41)", dismissedAtRef)
	}
	if len(sets) < 2 || !eqInts(seqs(sets[1]), []int{3, 4}) {
		t.Errorf("second set = %v, want members {3,4} = values {48,55}", sets)
	}
}

// TestCutClosesOpenSet: Cut on an in-reference filter closes the set and
// marks it; on a seeking filter it dismisses tentatives.
func TestCutClosesOpenSet(t *testing.T) {
	s := tuple.MustSchema("v")
	mk := func(vals ...float64) *tuple.Series {
		sr := tuple.NewSeries(s)
		for i, v := range vals {
			if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*time.Millisecond), []float64{v})); err != nil {
				t.Fatal(err)
			}
		}
		return sr
	}

	t.Run("in reference", func(t *testing.T) {
		f, err := NewDC1("f", "v", 50, 10)
		if err != nil {
			t.Fatal(err)
		}
		sr := mk(0, 20, 50, 55) // {0} closed at 20; ref 50 open with {50,55}
		for i := 0; i < sr.Len(); i++ {
			if _, err := f.Process(sr.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		cs, dismissed := f.Cut()
		if cs == nil || !eqInts(seqs(cs), []int{2, 3}) {
			t.Fatalf("Cut returned %v, want set {2,3}", cs)
		}
		if !cs.ClosedByCut {
			t.Error("ClosedByCut not set")
		}
		if len(dismissed) != 0 {
			t.Errorf("dismissed = %v, want none", dismissed)
		}
	})

	t.Run("seeking with tentatives", func(t *testing.T) {
		f, err := NewDC1("f", "v", 50, 10)
		if err != nil {
			t.Fatal(err)
		}
		sr := mk(0, 20, 45) // {0} closed; 45 tentative (>=40)
		for i := 0; i < sr.Len(); i++ {
			if _, err := f.Process(sr.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		cs, dismissed := f.Cut()
		if cs != nil {
			t.Fatalf("Cut returned set %v for tentative-only filter", cs)
		}
		if len(dismissed) != 1 || dismissed[0].Seq != 2 {
			t.Errorf("dismissed = %v, want the tentative 45", dismissed)
		}
	})

	t.Run("fresh filter", func(t *testing.T) {
		f, err := NewDC1("f", "v", 50, 10)
		if err != nil {
			t.Fatal(err)
		}
		if cs, dis := f.Cut(); cs != nil || dis != nil {
			t.Error("Cut on a fresh filter should be a no-op")
		}
	})
}

// TestDCConstructorValidation covers parameter checks.
func TestDCConstructorValidation(t *testing.T) {
	tests := []struct {
		name         string
		id           string
		delta, slack float64
		wantErr      bool
	}{
		{"valid", "f", 50, 10, false},
		{"empty id", "", 50, 10, true},
		{"zero delta", "f", 0, 0, true},
		{"negative delta", "f", -1, 0, true},
		{"negative slack", "f", 50, -1, true},
		{"slack over half delta", "f", 50, 26, true},
		{"slack exactly half", "f", 50, 25, false},
		{"zero slack", "f", 50, 0, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewDC1(tc.id, "v", tc.delta, tc.slack)
			if (err != nil) != tc.wantErr {
				t.Errorf("NewDC1 error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

// TestDCUnknownAttribute: processing fails cleanly when the attribute is
// missing from the stream schema.
func TestDCUnknownAttribute(t *testing.T) {
	f, err := NewDC1("f", "nope", 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sr := trace.PaperExample()
	if _, err := f.Process(sr.At(0)); err == nil {
		t.Error("Process with unknown attribute should fail")
	}
}

// TestZeroSlackDegeneratesToSelfInterested: with slack 0, every candidate
// set is the singleton {reference}.
func TestZeroSlackDegeneratesToSelfInterested(t *testing.T) {
	sr := trace.PaperExample()
	f, err := NewDC1("f", "temperature", 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	sets := runFilter(t, f, sr)
	si := runSI(f.SelfInterested(), sr)
	if len(sets) != len(si) {
		t.Fatalf("sets %d != SI %d", len(sets), len(si))
	}
	for i, cs := range sets {
		if len(cs.Members) != 1 || cs.Members[0].Seq != si[i].Seq {
			t.Errorf("set %d = %v, want singleton {%d}", i, seqs(cs), si[i].Seq)
		}
	}
}

// TestDC2Trend: the trend filter fires on rate changes rather than level
// changes.
func TestDC2Trend(t *testing.T) {
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	// Values rise by 1 per 10ms tick (trend 100/s) for 5 tuples, then by
	// 5 per tick (trend 500/s). A DC2 with delta 300 (on trend/s) fires
	// when the slope changes.
	vals := []float64{0, 1, 2, 3, 4, 9, 14, 19, 24}
	for i, v := range vals {
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	f, err := NewDC2("f", "v", 300, 50, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sets := runFilter(t, f, sr)
	// First tuple (trend 0) is ref; trend jumps to 100 (no fire, <300);
	// at seq 5 trend = 500 -> |500-0| >= 300 fires.
	if len(sets) < 2 {
		t.Fatalf("got %d sets, want >= 2", len(sets))
	}
	if sets[1].Reference.Seq != 5 {
		t.Errorf("second reference at seq %d, want 5 (slope change)", sets[1].Reference.Seq)
	}
}

// TestDC3Average: the multi-attribute filter fires on the mean.
func TestDC3Average(t *testing.T) {
	s := tuple.MustSchema("a", "b")
	sr := tuple.NewSeries(s)
	rows := [][2]float64{{0, 0}, {10, 0}, {10, 10}, {30, 30}, {60, 60}}
	for i, r := range rows {
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*time.Millisecond), []float64{r[0], r[1]})); err != nil {
			t.Fatal(err)
		}
	}
	f, err := NewDC3("f", []string{"a", "b"}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	sets := runFilter(t, f, sr)
	// Means: 0, 5, 10, 30, 60. Refs: 0 (first), 30 (|30-0|>=20), 60.
	var refs []int
	for _, cs := range sets {
		refs = append(refs, cs.Reference.Seq)
	}
	if !eqInts(refs, []int{0, 3, 4}) {
		t.Errorf("references = %v, want [0 3 4]", refs)
	}
}

// randomWalkSeries builds a bounded random walk for property tests.
func randomWalkSeries(seed int64, n int) *tuple.Series {
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	rng := rand.New(rand.NewSource(seed))
	v := 0.0
	for i := 0; i < n; i++ {
		v += (rng.Float64()*2 - 1) * 8
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v})); err != nil {
			panic(err)
		}
	}
	return sr
}

// TestDCInvariantsProperty checks, over random walks and random (delta,
// slack) pairs, the core invariants of reference-based candidate sets:
//  1. references equal the SI baseline selections (count and identity);
//  2. every member is within slack of its reference;
//  3. members are contiguous in sequence numbers;
//  4. time covers of consecutive sets do not intersect (Axiom 1);
//  5. no tuple appears in two sets.
func TestDCInvariantsProperty(t *testing.T) {
	f := func(seedRaw uint32, deltaRaw, slackFracRaw uint8) bool {
		seed := int64(seedRaw)
		delta := 4 + float64(deltaRaw%60)
		slack := float64(slackFracRaw%51) / 100 * delta // 0..50% of delta
		sr := randomWalkSeries(seed, 400)
		dc, err := NewDC1("f", "v", delta, slack)
		if err != nil {
			return false
		}
		var sets []*CandidateSet
		for i := 0; i < sr.Len(); i++ {
			ev, err := dc.Process(sr.At(i))
			if err != nil {
				return false
			}
			if ev.Closed != nil {
				sets = append(sets, ev.Closed)
			}
		}
		if cs, _ := dc.Cut(); cs != nil {
			sets = append(sets, cs)
		}
		si := runSI(dc.SelfInterested(), sr)
		if len(sets) != len(si) {
			return false
		}
		seen := make(map[int]bool)
		for i, cs := range sets {
			if cs.Reference == nil || cs.Reference.Seq != si[i].Seq {
				return false
			}
			refV := cs.Reference.ValueAt(0)
			prev := -1
			for _, m := range cs.Members {
				if math.Abs(m.ValueAt(0)-refV) > slack+1e-9 {
					return false
				}
				if seen[m.Seq] {
					return false
				}
				seen[m.Seq] = true
				if prev >= 0 && m.Seq != prev+1 {
					return false
				}
				prev = m.Seq
			}
			if i > 0 && sets[i-1].CoverIntersects(cs) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
