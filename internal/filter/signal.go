package filter

import (
	"fmt"
	"strings"
	"time"

	"gasf/internal/tuple"
)

// Signal derives the scalar a filter monitors from each stream tuple. It is
// the "candidate computation" dimension of the taxonomy (§5.2): a list of
// attributes plus a state-update function. Signals may keep internal state
// (e.g. the previous value, for trends) and are not safe for concurrent use.
type Signal interface {
	// Value derives the monitored scalar from the tuple.
	Value(t *tuple.Tuple) (float64, error)
	// Reset clears internal state.
	Reset()
	// String describes the signal, e.g. "fluoro" or "trend(tmpr4)".
	String() string
}

// attrSignal reads a single attribute (DC1 candidate computation).
type attrSignal struct {
	attr  string
	idx   int
	bound bool
}

// NewAttrSignal monitors the raw value of one attribute.
func NewAttrSignal(attr string) Signal { return &attrSignal{attr: attr} }

func (s *attrSignal) Value(t *tuple.Tuple) (float64, error) {
	if !s.bound {
		i, err := t.Schema().Index(s.attr)
		if err != nil {
			return 0, fmt.Errorf("filter: binding signal: %w", err)
		}
		s.idx, s.bound = i, true
	}
	return t.ValueAt(s.idx), nil
}

func (s *attrSignal) Reset()         { s.bound = false }
func (s *attrSignal) String() string { return s.attr }

// trendSignal reads the rate of change of one attribute per unit time
// (DC2 candidate computation, Table 5.1). The trend of the first tuple is
// defined as zero.
type trendSignal struct {
	attr   string
	unit   time.Duration
	idx    int
	bound  bool
	has    bool
	prev   float64
	prevTS time.Time
}

// NewTrendSignal monitors the change of attr per unit of time. A zero unit
// defaults to one second.
func NewTrendSignal(attr string, unit time.Duration) Signal {
	if unit <= 0 {
		unit = time.Second
	}
	return &trendSignal{attr: attr, unit: unit}
}

func (s *trendSignal) Value(t *tuple.Tuple) (float64, error) {
	if !s.bound {
		i, err := t.Schema().Index(s.attr)
		if err != nil {
			return 0, fmt.Errorf("filter: binding signal: %w", err)
		}
		s.idx, s.bound = i, true
	}
	v := t.ValueAt(s.idx)
	if !s.has {
		s.has, s.prev, s.prevTS = true, v, t.TS
		return 0, nil
	}
	dt := t.TS.Sub(s.prevTS)
	trend := 0.0
	if dt > 0 {
		trend = (v - s.prev) / (float64(dt) / float64(s.unit))
	}
	s.prev, s.prevTS = v, t.TS
	return trend, nil
}

func (s *trendSignal) Reset() { s.bound, s.has = false, false }
func (s *trendSignal) String() string {
	return fmt.Sprintf("trend(%s)", s.attr)
}

// avgSignal reads the mean of several attributes (DC3 candidate
// computation: co-located sensors of similar capacity, §5.1).
type avgSignal struct {
	attrs []string
	idxs  []int
	bound bool
}

// NewAvgSignal monitors the average of the given attributes.
func NewAvgSignal(attrs ...string) (Signal, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("filter: average signal needs at least one attribute")
	}
	cp := make([]string, len(attrs))
	copy(cp, attrs)
	return &avgSignal{attrs: cp}, nil
}

func (s *avgSignal) Value(t *tuple.Tuple) (float64, error) {
	if !s.bound {
		s.idxs = make([]int, len(s.attrs))
		for i, a := range s.attrs {
			j, err := t.Schema().Index(a)
			if err != nil {
				return 0, fmt.Errorf("filter: binding signal: %w", err)
			}
			s.idxs[i] = j
		}
		s.bound = true
	}
	sum := 0.0
	for _, j := range s.idxs {
		sum += t.ValueAt(j)
	}
	return sum / float64(len(s.idxs)), nil
}

func (s *avgSignal) Reset() { s.bound = false }
func (s *avgSignal) String() string {
	return fmt.Sprintf("avg(%s)", strings.Join(s.attrs, ", "))
}

// SignalOverSeries evaluates a fresh pass of the signal over a whole series.
// It is used to compute srcStatistics of derived signals when constructing
// filter specifications (§4.3 picks deltas from the mean absolute change of
// the monitored signal).
func SignalOverSeries(sig Signal, sr *tuple.Series) ([]float64, error) {
	sig.Reset()
	out := make([]float64, sr.Len())
	for i := 0; i < sr.Len(); i++ {
		v, err := sig.Value(sr.At(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	sig.Reset()
	return out, nil
}

// MeanAbsChange computes the mean absolute difference between consecutive
// values; the srcStatistics measure of §4.3 applied to an arbitrary signal.
func MeanAbsChange(vals []float64) (float64, error) {
	if len(vals) < 2 {
		return 0, fmt.Errorf("filter: need at least 2 values for change statistics, got %d", len(vals))
	}
	sum := 0.0
	for i := 1; i < len(vals); i++ {
		d := vals[i] - vals[i-1]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(vals)-1), nil
}
