package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/tuple"
)

func ctlSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	s, err := tuple.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ctlSeries builds n tuples whose value strictly increases, so a
// (delta=0, slack=0) DC1 filter closes one singleton set per tuple and
// every tuple is delivered.
func ctlSeries(t *testing.T, s *tuple.Schema, n int) *tuple.Series {
	t.Helper()
	sr := tuple.NewSeries(s)
	base := time.Unix(0, 0)
	for i := 0; i < n; i++ {
		tp, err := tuple.New(s, i, base.Add(time.Duration(i+1)*time.Millisecond), []float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	return sr
}

// passAll builds a filter that delivers every tuple of a ctlSeries: the
// value steps by 1 between tuples, which exceeds delta, so every tuple
// closes the previous singleton set.
func passAll(t *testing.T, id string) filter.Filter {
	t.Helper()
	f, err := filter.NewDC1(id, "v", 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestControlAtTupleBoundary feeds tuples around a Control that adds a
// second filter, and checks the joiner's first delivery is the first tuple
// fed after the control was enqueued.
func TestControlAtTupleBoundary(t *testing.T) {
	s := ctlSchema(t)
	sr := ctlSeries(t, s, 100)
	eng, err := core.NewDynamicEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{Shards: 2})
	if err := rt.AddSource("src", eng); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := make(map[string][]int)
	sink := func(batch []Out) {
		mu.Lock()
		defer mu.Unlock()
		for _, o := range batch {
			for _, d := range o.Tr.Destinations {
				got[d] = append(got[d], o.Tr.Tuple.Seq)
			}
		}
	}
	if err := rt.Start(context.Background(), sink); err != nil {
		t.Fatal(err)
	}
	fA, fB := passAll(t, "A"), passAll(t, "B")
	if err := rt.Control("src", func(e *core.Engine) error {
		return e.AddFilter(fA)
	}); err != nil {
		t.Fatal(err)
	}
	joinAt := 50
	for i := 0; i < sr.Len(); i++ {
		if i == joinAt {
			if err := rt.Control("src", func(e *core.Engine) error {
				return e.AddFilter(fB)
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Feed("src", sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got["A"]) != sr.Len() {
		t.Fatalf("incumbent A got %d deliveries, want %d", len(got["A"]), sr.Len())
	}
	if len(got["B"]) != sr.Len()-joinAt {
		t.Fatalf("joiner B got %d deliveries, want %d", len(got["B"]), sr.Len()-joinAt)
	}
	if got["B"][0] != joinAt {
		t.Fatalf("joiner B first delivery is tuple %d, want %d", got["B"][0], joinAt)
	}
}

// TestControlErrorsPropagate checks fn errors reach the caller and failed
// or finished sources reject controls.
func TestControlErrorsPropagate(t *testing.T) {
	eng, err := core.NewDynamicEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{Shards: 1})
	if err := rt.AddSource("src", eng); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("boom")
	if err := rt.Control("src", func(*core.Engine) error { return wantErr }); err != wantErr {
		t.Fatalf("Control error = %v, want %v", err, wantErr)
	}
	if err := rt.Control("nope", func(*core.Engine) error { return nil }); err == nil {
		t.Fatal("Control on unknown source succeeded")
	}
	if err := rt.FinishSource("src"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Control("src", func(*core.Engine) error { return nil }); err == nil {
		t.Fatal("Control on finished source succeeded")
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveSourceAddRemove exercises AddSourceLive while the runtime is
// running and name reuse after RemoveSource.
func TestLiveSourceAddRemove(t *testing.T) {
	s := ctlSchema(t)
	rt := New(Config{Shards: 2})
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		eng, err := core.NewEngine([]filter.Filter{passAll(t, "A")}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.AddSourceLive("src", eng); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sr := ctlSeries(t, s, 10)
		for i := 0; i < sr.Len(); i++ {
			if err := rt.Feed("src", sr.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.FinishSource("src"); err != nil {
			t.Fatal(err)
		}
		if err := rt.RemoveSource("src"); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.RemoveSource("src"); err == nil {
		t.Fatal("RemoveSource of removed source succeeded")
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, snap := range rt.Metrics() {
		if snap.Sources != 0 {
			t.Fatalf("shard %d still reports %d sources", snap.Shard, snap.Sources)
		}
	}
}

// TestControlDrainRace hammers Control from another goroutine while the
// runtime drains: a racing control must get a clean error (runtime
// drained / source finished), never a send-on-closed-channel panic.
func TestControlDrainRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		eng, err := core.NewDynamicEngine(core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rt := New(Config{Shards: 1})
		if err := rt.AddSource("src", eng); err != nil {
			t.Fatal(err)
		}
		if err := rt.Start(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the drain wins the race; the
				// assertion is the absence of a panic.
				_ = rt.Control("src", func(*core.Engine) error { return nil })
			}
		}()
		if err := rt.Drain(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
	}
}

// TestRemoveSourceRequiresFinish guards against dropping a live source.
func TestRemoveSourceRequiresFinish(t *testing.T) {
	eng, err := core.NewDynamicEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{Shards: 1})
	if err := rt.AddSource("src", eng); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.RemoveSource("src"); err == nil {
		t.Fatal("RemoveSource of unfinished source succeeded")
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
}
