package shard

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkShardThroughput measures the runtime over the full shards ×
// sources matrix the ROADMAP tracks (1/2/4/8 shards × 10/100/1000
// sources). The CI smoke pass runs each cell once with a short trace;
// cmd/gasf-shardbench runs the same cells with a modeled dissemination
// cost and records BENCH_shard.json.
func BenchmarkShardThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, sources := range []int{10, 100, 1000} {
			name := fmt.Sprintf("shards=%d/sources=%d", shards, sources)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var tuples int
				for i := 0; i < b.N; i++ {
					res, err := RunCell(CellConfig{
						Shards:          shards,
						Sources:         sources,
						TuplesPerSource: 50,
						Seed:            1,
					})
					if err != nil {
						b.Fatal(err)
					}
					tuples += res.Tuples
				}
				b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/s")
			})
		}
	}
}

// BenchmarkShardThroughputDissemination is the deployment-shaped variant:
// each flush pays a blocking dissemination cost (cf. the ~12 ms multicast
// invocation measured in §4.1.2, scaled down to keep the benchmark
// short), which sharding overlaps across sources. This is the regime
// where shard count is expected to scale throughput even on few cores.
func BenchmarkShardThroughputDissemination(b *testing.B) {
	for _, shards := range []int{1, 4} {
		name := fmt.Sprintf("shards=%d/sources=100", shards)
		b.Run(name, func(b *testing.B) {
			var tuples int
			for i := 0; i < b.N; i++ {
				res, err := RunCell(CellConfig{
					Shards:             shards,
					Sources:            100,
					TuplesPerSource:    20,
					DisseminationDelay: 500 * time.Microsecond,
					Seed:               1,
				})
				if err != nil {
					b.Fatal(err)
				}
				tuples += res.Tuples
			}
			b.ReportMetric(float64(tuples)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}
