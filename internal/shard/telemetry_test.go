package shard

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"gasf/internal/core"
	"gasf/internal/telemetry"
	"gasf/internal/tuple"
)

// TestTelemetryAllocOverhead gates the cost of the stage-timing
// instrumentation on the shard hot path: a full run with telemetry
// sampling EVERY tuple (period 1, far hotter than the production
// default of 64) must not add measurably to the per-tuple allocation
// count of an uninstrumented run. The stamps and histogram updates are
// designed alloc-free; this catches a regression that reintroduces
// boxing or time.Time churn in the worker loop.
func TestTelemetryAllocOverhead(t *testing.T) {
	const tuples = 2000
	run := func(tel *telemetry.Pipeline) float64 {
		sr, groups, err := BuildWorkload(CellConfig{Sources: 1, TuplesPerSource: tuples, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		rt := New(Config{Shards: 1, Telemetry: tel})
		if err := rt.AddGroup("src", groups[0], core.Options{Algorithm: core.RG}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Start(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if err := rt.FeedAll(map[string]*tuple.Series{"src": sr}); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / tuples
	}
	// Take the best of a few runs per configuration: GC timing and
	// pool refills add run-to-run noise in both directions.
	best := func(tel func() *telemetry.Pipeline) float64 {
		m := run(tel())
		for i := 0; i < 2; i++ {
			if v := run(tel()); v < m {
				m = v
			}
		}
		return m
	}
	off := best(func() *telemetry.Pipeline { return nil })
	on := best(func() *telemetry.Pipeline { return telemetry.New(1) })
	t.Logf("allocs/tuple: telemetry off %.2f, on %.2f", off, on)
	if on > off+1.0 {
		t.Fatalf("telemetry adds %.2f allocs/tuple (off %.2f, on %.2f), budget 1.0", on-off, off, on)
	}
}

// TestTelemetryStageTiming checks the wiring end to end: with sampling
// on every event, a run must land observations in both shard-side stage
// histograms (ring residency and engine step).
func TestTelemetryStageTiming(t *testing.T) {
	tel := telemetry.New(1)
	sr, groups, err := BuildWorkload(CellConfig{Sources: 2, TuplesPerSource: 100, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{Shards: 2, Telemetry: tel})
	series := make(map[string]*tuple.Series)
	for i, g := range groups {
		name := fmt.Sprintf("src%d", i)
		if err := rt.AddGroup(name, g, core.Options{Algorithm: core.RG}); err != nil {
			t.Fatal(err)
		}
		series[name] = sr
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.FeedAll(series); err != nil {
		t.Fatal(err)
	}
	for _, st := range []telemetry.Stage{telemetry.StageRingWait, telemetry.StageEngineStep} {
		if n := tel.StageHist(st).Snapshot().Count; n == 0 {
			t.Errorf("stage %s recorded no observations", st.Name())
		}
	}
}
