package shard

import (
	"context"
	"sync"
	"sync/atomic"
)

// ring is the bounded lock-free multi-producer single-consumer queue
// behind each shard worker. It replaces the chan-based inbox so the
// runtime synchronizes per *batch*, not per task:
//
//   - Producers reserve a run of slots with one CAS on the tail cursor
//     (tryPush takes a whole slice), write their tasks, and publish each
//     cell with a per-cell sequence store — the Vyukov bounded-queue cell
//     protocol, restricted to a single consumer.
//   - The consumer drains whole runs of published cells (popRun) and
//     advances the head cursor once per run, so a worker pays one
//     synchronization per drained batch.
//   - Parking is edge-triggered, channel-doorbell style: the consumer
//     parks only on an empty ring (bell channel, rung by the producer
//     that makes the ring non-empty), and producers park only on a full
//     ring (a generation gate closed by the consumer when it frees
//     slots). Steady-state flow crosses the ring without any channel or
//     mutex operations.
//
// Memory-ordering note: the park paths use the store-then-recheck
// pattern on both sides (consumer stores `sleeping` then rechecks for
// published input; producers store `prodParked` then recheck for free
// slots; the waking side does the mirror-image store then flag load).
// Go's sync/atomic operations are sequentially consistent, so one of the
// two racing parties always observes the other — a parked party with
// work (or space) available is impossible.
//
// Capacity is rounded up to a power of two. Cell sequence values never
// repeat for the same (cell, lap) pair, so a stale cell from the
// previous lap can never be mistaken for a published one.
type ring struct {
	mask  uint64
	cells []ringCell

	_    [64]byte // keep the cursors off the cells' cache lines
	tail atomic.Uint64
	_    [64]byte
	head atomic.Uint64
	_    [64]byte

	// Consumer parking: sleeping is the consumer's declared intent to
	// park; bell (capacity 1) is rung by producers that observe it after
	// publishing.
	sleeping atomic.Bool
	bell     chan struct{}

	// Producer parking: prodParked is any producer's declared intent to
	// park on a full ring; the consumer broadcasts by closing the current
	// gate generation and installing a fresh one.
	gateMu     sync.Mutex
	gate       chan struct{}
	prodParked atomic.Bool

	// closed marks the end of input (set after the runtime seals, so no
	// producer can be mid-push); closedCh unparks the consumer for its
	// final drain.
	closed   atomic.Bool
	closedCh chan struct{}

	producerParks atomic.Uint64
	consumerParks atomic.Uint64
}

// ringCell is one slot: seq == index+1 marks the cell published for the
// current lap.
type ringCell struct {
	seq atomic.Uint64
	tk  task
}

func newRing(capacity int) *ring {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &ring{
		mask:     uint64(c - 1),
		cells:    make([]ringCell, c),
		bell:     make(chan struct{}, 1),
		gate:     make(chan struct{}),
		closedCh: make(chan struct{}),
	}
}

func (q *ring) capacity() uint64 { return q.mask + 1 }

// Len reports the slots currently reserved or published. It may briefly
// include reservations whose tasks are still being written; it is exact
// once producers are quiesced.
func (q *ring) Len() int {
	t, h := q.tail.Load(), q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// tryPush reserves up to len(tks) slots with a single CAS, fills them,
// and publishes each cell. It returns how many tasks were enqueued; 0
// means the ring is full. A partial push keeps the pushed prefix's FIFO
// position — the caller resubmits the rest behind it.
func (q *ring) tryPush(tks []task) int {
	want := uint64(len(tks))
	for {
		tail := q.tail.Load()
		free := q.capacity() - (tail - q.head.Load())
		if free == 0 {
			return 0
		}
		k := want
		if k > free {
			k = free
		}
		if !q.tail.CompareAndSwap(tail, tail+k) {
			continue
		}
		for i := uint64(0); i < k; i++ {
			c := &q.cells[(tail+i)&q.mask]
			c.tk = tks[i]
			c.seq.Store(tail + i + 1)
		}
		// Edge-triggered doorbell: only a consumer that declared intent
		// to park costs the producer a channel operation.
		if q.sleeping.Load() {
			select {
			case q.bell <- struct{}{}:
			default:
			}
		}
		return int(k)
	}
}

// popRun drains a run of published tasks into buf, advancing the head
// cursor once. Cells are cleared before the head moves, so a producer
// reusing the slot never races the consumer's write.
func (q *ring) popRun(buf []task) int {
	h := q.head.Load()
	n := 0
	for n < len(buf) {
		c := &q.cells[(h+uint64(n))&q.mask]
		if c.seq.Load() != h+uint64(n)+1 {
			break
		}
		buf[n] = c.tk
		c.tk = task{}
		n++
	}
	if n > 0 {
		q.head.Store(h + uint64(n))
		if q.prodParked.Load() {
			q.openGate()
		}
	}
	return n
}

// openGate broadcasts "slots freed" to every parked producer by closing
// the current gate generation.
func (q *ring) openGate() {
	q.gateMu.Lock()
	q.prodParked.Store(false)
	close(q.gate)
	q.gate = make(chan struct{})
	q.gateMu.Unlock()
}

// waitSpace parks the calling producer until the consumer frees slots or
// ctx is cancelled. It may return without space (spurious wake or stale
// gate); callers loop around tryPush.
func (q *ring) waitSpace(ctx context.Context) error {
	q.gateMu.Lock()
	gate := q.gate
	q.gateMu.Unlock()
	q.prodParked.Store(true)
	if q.tail.Load()-q.head.Load() < q.capacity() {
		// Space appeared between the failed push and the park; the
		// store-then-recheck order makes a missed wakeup impossible.
		return nil
	}
	q.producerParks.Add(1)
	select {
	case <-gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ready reports whether the cell at the head is published.
func (q *ring) ready() bool {
	h := q.head.Load()
	return q.cells[h&q.mask].seq.Load() == h+1
}

// park blocks the consumer until input is published, the ring closes, or
// ctx is cancelled. Spurious returns are fine; the caller loops.
func (q *ring) park(ctx context.Context) {
	q.sleeping.Store(true)
	if q.ready() || q.closed.Load() {
		q.sleeping.Store(false)
		return
	}
	q.consumerParks.Add(1)
	select {
	case <-q.bell:
	case <-q.closedCh:
	case <-ctx.Done():
	}
	q.sleeping.Store(false)
}

// close marks the end of input and unparks the consumer. It must only be
// called once no producer can be inside tryPush (the runtime seals
// first), so every reserved cell is already published.
func (q *ring) close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.closedCh)
	}
}

func (q *ring) isClosed() bool { return q.closed.Load() }
