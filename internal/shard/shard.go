// Package shard implements the sharded concurrent multi-source runtime:
// many independent single-source engines (internal/core) hash-partitioned
// onto a fixed set of worker shards, each shard owning its sources'
// engines and feeding them through a bounded input queue.
//
// The design keeps the paper's single-source semantics intact while
// letting multi-source workloads scale across cores:
//
//   - Every source is assigned to exactly one shard (FNV-1a hash of the
//     source name modulo the shard count), so all of a source's tuples are
//     processed by one goroutine in feed order. The per-source released
//     transmission sequence is therefore identical to a sequential
//     core.Run over the same tuples — the equivalence property test in
//     this package asserts byte-identical output.
//   - Shard inboxes are bounded lock-free MPSC rings (ring.go): producers
//     reserve runs of slots with one CAS (SubmitBatch crosses the shard
//     boundary in a single synchronization for a whole flush), the worker
//     drains whole runs per pop, and park/unpark happens only on
//     empty/non-empty (consumer doorbell) and full/non-full (producer
//     gate) transitions. Feeding a full shard blocks the producer
//     (backpressure) unless the non-blocking Offer is used, in which case
//     the tuple is dropped and counted.
//   - Released transmissions are flushed to the delivery sink in batches
//     (Config.FlushBatch) to amortize per-delivery dissemination cost;
//     a shard flushes early whenever its ring idles, so batching bounds
//     cost, not latency.
//   - Each shard keeps lock-free metrics counters (tuples enqueued,
//     processed, dropped, flush count, observed queue depth, drained-run
//     occupancy and park counts) exposed as Snapshots for monitoring and
//     benchmarks.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/telemetry"
	"gasf/internal/tuple"
)

// Default queue and batch sizes. The defaults favor throughput under
// load while the idle-flush rule keeps single-stream latency at one
// tuple.
const (
	DefaultQueueDepth = 256
	DefaultFlushBatch = 32
)

// Sentinel errors wrapped by the runtime's lookup failures, so callers
// layered above (the embedded broker, the networked server) can treat
// "the source is gone" distinctly from real faults with errors.Is.
var (
	// ErrUnknownSource reports an operation on a source name the runtime
	// does not know.
	ErrUnknownSource = errors.New("unknown source")
	// ErrSourceFinished reports an operation on a source whose stream has
	// already been finished.
	ErrSourceFinished = errors.New("finished")
	// ErrDrained reports an operation against a runtime that has already
	// drained.
	ErrDrained = errors.New("drained")
)

// Config sizes the runtime.
type Config struct {
	// Shards is the number of worker shards; 0 means GOMAXPROCS.
	Shards int
	// QueueDepth is the bounded input ring capacity per shard, rounded up
	// to a power of two; 0 means DefaultQueueDepth.
	QueueDepth int
	// FlushBatch is the released-transmission batch size per flush; 0
	// means DefaultFlushBatch.
	FlushBatch int
	// Telemetry, when non-nil, receives sampled ring-residency and
	// engine-Step stage timings. Nil disables instrumentation.
	Telemetry *telemetry.Pipeline
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.FlushBatch <= 0 {
		c.FlushBatch = DefaultFlushBatch
	}
	return c
}

// FromOptions extracts the runtime knobs from engine options. Zero knobs
// stay zero so several option sets can be merged before defaults apply.
func FromOptions(o core.Options) Config {
	return Config{Shards: o.ShardCount, QueueDepth: o.QueueDepth, FlushBatch: o.FlushBatch}
}

// Merge combines two configs by taking the larger of each knob.
func Merge(a, b Config) Config {
	if b.Shards > a.Shards {
		a.Shards = b.Shards
	}
	if b.QueueDepth > a.QueueDepth {
		a.QueueDepth = b.QueueDepth
	}
	if b.FlushBatch > a.FlushBatch {
		a.FlushBatch = b.FlushBatch
	}
	return a
}

// Out is one released transmission tagged with its source.
type Out struct {
	Source string
	Tr     core.Transmission
}

// Sink receives batched flushes of released transmissions. It is invoked
// from shard worker goroutines: all outputs of one source arrive from the
// same goroutine in release order, but different sources flush
// concurrently, so the sink must be safe for concurrent use. The batch
// slice is reused between flushes and must not be retained.
type Sink func(batch []Out)

// source is the per-source runtime state, owned by one shard worker after
// Start (sent/failErr/finished are only touched by that worker).
type source struct {
	name   string
	engine *core.Engine
	shard  int
	// sent indexes the engine transmissions already handed to the sink.
	sent int
	// failed latches the first engine error; later Feed/Offer/Control
	// calls are rejected so callers learn the stream broke. failErr is
	// written by the owning worker before the failed Store, so readers
	// that observed failed==true may read it.
	failed  atomic.Bool
	failErr error
	// finished marks that Finish ran on the engine.
	finished bool
	// closed is set by FinishSource on the feeding side to reject
	// further Feed/Offer calls.
	closed atomic.Bool
}

// task is one unit of shard work; a nil tuple with a nil control finishes
// the source.
type task struct {
	src *source
	t   *tuple.Tuple
	ctl *control
	// fin, when set on a finish marker, receives the engine's Finish
	// error after the final flush (FinishSourceWait).
	fin chan error
	// enq, when non-zero, is the telemetry.Now stamp taken at submit on
	// a sampled task; the worker turns it into a ring-wait observation.
	enq int64
}

// control is a caller-supplied function executed by the source's owning
// worker at a tuple boundary — after every tuple fed before it, before
// every tuple fed after. The server uses it to mutate live engine
// membership (AddFilter/RemoveFilter) without pausing other sources.
type control struct {
	fn   func(*core.Engine) error
	done chan error
}

// Runtime drives a set of registered sources over Config.Shards worker
// shards. Configure with AddSource/AddGroup, call Start once, feed tuples
// with Feed/Offer (per-source calls must be serialized by the caller, as
// with a single engine), then FinishSource/Drain.
type Runtime struct {
	cfg     Config
	workers []*worker

	mu      sync.Mutex
	sources map[string]*source
	started bool
	drained bool

	ctx     context.Context
	sink    Sink
	wg      sync.WaitGroup
	startAt time.Time
	endAt   time.Time

	// sendMu gates queue sends against Drain closing the queues: Feed /
	// Offer / Control / FinishSource hold the read side across their
	// send; Drain seals the runtime under the write side before closing,
	// so a racing send gets a clean error instead of a panic.
	sendMu sync.RWMutex
	sealed bool

	errMu sync.Mutex
	errs  []error
}

// New creates a runtime; zero config fields take defaults.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	r := &Runtime{cfg: cfg, sources: make(map[string]*source)}
	r.workers = make([]*worker, cfg.Shards)
	for i := range r.workers {
		r.workers[i] = &worker{id: i, rt: r, in: newRing(cfg.QueueDepth)}
	}
	return r
}

// Shards returns the shard count in effect.
func (r *Runtime) Shards() int { return r.cfg.Shards }

// ShardOf returns the shard index a source name partitions onto.
func (r *Runtime) ShardOf(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(r.cfg.Shards))
}

// AddSource registers a source with a pre-built engine. Sources must be
// added before Start; for sources arriving while the runtime is live, use
// AddSourceLive.
func (r *Runtime) AddSource(name string, engine *core.Engine) error {
	return r.addSource(name, engine, false)
}

// AddSourceLive registers a source while the runtime is running: tuples
// may be fed to it as soon as the call returns. The networked server uses
// it for publishers that connect after startup.
func (r *Runtime) AddSourceLive(name string, engine *core.Engine) error {
	return r.addSource(name, engine, true)
}

func (r *Runtime) addSource(name string, engine *core.Engine, live bool) error {
	if name == "" {
		return fmt.Errorf("shard: empty source name")
	}
	if engine == nil {
		return fmt.Errorf("shard: source %q has a nil engine", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started && !live {
		return fmt.Errorf("shard: cannot add source %q after Start", name)
	}
	if r.drained {
		return fmt.Errorf("shard: cannot add source %q after Drain", name)
	}
	if _, dup := r.sources[name]; dup {
		return fmt.Errorf("shard: source %q already added", name)
	}
	sh := r.ShardOf(name)
	r.sources[name] = &source{name: name, engine: engine, shard: sh}
	r.workers[sh].srcCount.Add(1)
	return nil
}

// RemoveSource forgets a finished source, freeing its name for reuse (a
// publisher reconnecting under the same name gets a fresh engine). The
// source must have been finished first; its engine result is no longer
// reported by Results after removal, so read it before removing if needed.
func (r *Runtime) RemoveSource(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	src, ok := r.sources[name]
	if !ok {
		return fmt.Errorf("shard: %w %q", ErrUnknownSource, name)
	}
	if !src.closed.Load() {
		return fmt.Errorf("shard: source %q not finished", name)
	}
	delete(r.sources, name)
	r.workers[src.shard].srcCount.Add(-1)
	return nil
}

// AddGroup registers a source with a fresh engine over the given filter
// group.
func (r *Runtime) AddGroup(name string, filters []filter.Filter, opts core.Options) error {
	e, err := core.NewEngine(filters, opts)
	if err != nil {
		return fmt.Errorf("shard: source %q: %w", name, err)
	}
	return r.AddSource(name, e)
}

// Start launches the shard workers. The sink may be nil when only the
// per-source Results are of interest. The context cancels feeding and
// stops the workers; tuples still queued at cancellation are dropped.
func (r *Runtime) Start(ctx context.Context, sink Sink) error {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("shard: already started")
	}
	r.started = true
	r.ctx = ctx
	r.sink = sink
	r.startAt = time.Now()
	for _, w := range r.workers {
		r.wg.Add(1)
		go w.run(ctx)
	}
	return nil
}

// lookup resolves a live source and its worker for feeding. allowFailed
// admits a source whose engine has failed (the finish path must still be
// able to retire it).
func (r *Runtime) lookup(name string, allowFailed bool) (*source, *worker, error) {
	r.mu.Lock()
	src, ok := r.sources[name]
	started := r.started
	r.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("shard: %w %q", ErrUnknownSource, name)
	}
	if !started {
		return nil, nil, fmt.Errorf("shard: Feed before Start")
	}
	if src.closed.Load() {
		return nil, nil, fmt.Errorf("shard: source %q already %w", name, ErrSourceFinished)
	}
	if !allowFailed && src.failed.Load() {
		// Observing failed==true synchronizes with the worker's Store, so
		// failErr (written before it) is safe to read here.
		return nil, nil, fmt.Errorf("shard: source %q failed: %w", name, src.failErr)
	}
	return src, r.workers[src.shard], nil
}

// boundCtx bounds a caller-supplied context by the runtime context: the
// returned context is done when either is, so a per-call deadline can
// never outlive a cancelled runtime (and vice versa). The fast path —
// callers passing context.Background(), i.e. "runtime lifetime only" —
// returns the runtime context itself with no allocation.
func (r *Runtime) boundCtx(ctx context.Context) (context.Context, func()) {
	if ctx == nil || ctx.Done() == nil {
		return r.ctx, func() {}
	}
	merged, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(r.ctx, cancel)
	return merged, func() { stop(); cancel() }
}

// sendTask delivers one task to a worker ring under the seal gate,
// blocking while the ring is full.
func (r *Runtime) sendTask(w *worker, tk task) error {
	tasks := [1]task{tk}
	_, err := r.submit(r.ctx, w, tasks[:], true)
	return err
}

// submit is the one copy of the seal-gated ring-push protocol: it pushes
// the tasks with as few ring synchronizations as the free space allows
// and reports how many were enqueued, erring when the runtime has
// drained (sealed) or ctx is cancelled. With block false a full ring
// returns the partial count instead of waiting; with block true a short
// count only accompanies an error. ctx must already be bounded by the
// runtime context (r.ctx itself, or a boundCtx merge).
func (r *Runtime) submit(ctx context.Context, w *worker, tasks []task, block bool) (int, error) {
	r.sendMu.RLock()
	defer r.sendMu.RUnlock()
	if r.sealed {
		return 0, fmt.Errorf("shard: runtime %w", ErrDrained)
	}
	pushed := 0
	for {
		pushed += w.in.tryPush(tasks[pushed:])
		if pushed == len(tasks) {
			return pushed, nil
		}
		if !block {
			return pushed, nil
		}
		if err := w.in.waitSpace(ctx); err != nil {
			return pushed, err
		}
	}
}

// Feed enqueues one tuple for its source's shard, blocking while the
// shard queue is full (backpressure). It fails once the runtime context
// is cancelled or the runtime drained.
func (r *Runtime) Feed(name string, t *tuple.Tuple) error {
	if t == nil {
		return fmt.Errorf("shard: nil tuple for source %q", name)
	}
	src, w, err := r.lookup(name, false)
	if err != nil {
		return err
	}
	// Fail fast once cancelled: the workers are exiting, so a racing
	// send could otherwise park the tuple in a queue nobody reads (the
	// Drain sweep still counts any that slip through as dropped).
	if err := r.ctx.Err(); err != nil {
		w.dropped.Add(1)
		return err
	}
	if err := r.sendTask(w, task{src: src, t: t}); err != nil {
		w.dropped.Add(1)
		return err
	}
	w.enqueued.Add(1)
	return nil
}

// Offer is the non-blocking Feed: it reports false, counting a drop,
// when the shard queue is full, and fails once the runtime context is
// cancelled or the runtime drained.
func (r *Runtime) Offer(name string, t *tuple.Tuple) (bool, error) {
	if t == nil {
		return false, fmt.Errorf("shard: nil tuple for source %q", name)
	}
	src, w, err := r.lookup(name, false)
	if err != nil {
		return false, err
	}
	if err := r.ctx.Err(); err != nil {
		w.dropped.Add(1)
		return false, err
	}
	tasks := [1]task{{src: src, t: t}}
	sent, err := r.submit(r.ctx, w, tasks[:], false)
	if sent == 0 {
		w.dropped.Add(1)
		return false, err
	}
	w.enqueued.Add(1)
	return true, nil
}

// taskBufPool recycles the task scratch behind SubmitBatch so batched
// feeding does not allocate per flush.
var taskBufPool = sync.Pool{New: func() any {
	s := make([]task, 0, DefaultFlushBatch)
	return &s
}}

// SubmitBatch enqueues a run of tuples for one source, crossing the
// shard boundary in as few ring synchronizations as free space allows
// (one CAS when the ring has room) instead of one per tuple. It blocks
// while the ring is full (backpressure) and preserves feed order: like
// Feed, per-source calls must be serialized by the caller. The slice is
// not retained. On error, tuples not enqueued are counted as dropped.
func (r *Runtime) SubmitBatch(name string, tuples []*tuple.Tuple) error {
	return r.SubmitBatchContext(context.Background(), name, tuples)
}

// SubmitBatchContext is SubmitBatch bounded by ctx: a producer blocked on
// a full ring unblocks — with an error, counting the unpushed tail as
// dropped — when either ctx or the runtime context is cancelled. The
// embedded broker uses it to give Publish calls per-caller deadlines.
func (r *Runtime) SubmitBatchContext(ctx context.Context, name string, tuples []*tuple.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	src, w, err := r.lookup(name, false)
	if err != nil {
		return err
	}
	ctx, release := r.boundCtx(ctx)
	defer release()
	if err := ctx.Err(); err != nil {
		w.dropped.Add(uint64(len(tuples)))
		return err
	}
	bp := taskBufPool.Get().(*[]task)
	tasks := (*bp)[:0]
	for _, t := range tuples {
		if t == nil {
			*bp = tasks[:0]
			taskBufPool.Put(bp)
			return fmt.Errorf("shard: nil tuple in batch for source %q", name)
		}
		tasks = append(tasks, task{src: src, t: t})
	}
	if r.cfg.Telemetry.Sample(telemetry.StageRingWait) {
		tasks[0].enq = telemetry.Now()
	}
	pushed, err := r.submit(ctx, w, tasks, true)
	w.enqueued.Add(uint64(pushed))
	if pushed < len(tasks) {
		w.dropped.Add(uint64(len(tasks) - pushed))
	}
	clear(tasks)
	*bp = tasks[:0]
	taskBufPool.Put(bp)
	return err
}

// Control runs fn on the source's engine from its owning shard worker at
// a tuple boundary, and blocks until fn has run (or the runtime context is
// cancelled). Tuples fed before the call are processed first; tuples fed
// after it (by the same feeder) are processed after. fn must not retain
// the engine past its return. Any outputs fn releases (e.g. a RemoveFilter
// closing a region) are flushed to the sink before Control returns.
func (r *Runtime) Control(name string, fn func(*core.Engine) error) error {
	return r.ControlContext(context.Background(), name, fn)
}

// ControlContext is Control bounded by ctx: both the enqueue (which can
// block behind a full ring) and the wait for the worker to run fn return
// early when ctx is cancelled. A cancellation after fn was enqueued does
// not revoke it — fn still runs at its tuple boundary; only the caller
// stops waiting. A cancellation during the enqueue means fn never runs.
func (r *Runtime) ControlContext(ctx context.Context, name string, fn func(*core.Engine) error) error {
	if fn == nil {
		return fmt.Errorf("shard: nil control function for source %q", name)
	}
	src, w, err := r.lookup(name, false)
	if err != nil {
		return err
	}
	ctx, release := r.boundCtx(ctx)
	defer release()
	if err := ctx.Err(); err != nil {
		return err
	}
	ctl := &control{fn: fn, done: make(chan error, 1)}
	tasks := [1]task{{src: src, ctl: ctl}}
	if _, err := r.submit(ctx, w, tasks[:], true); err != nil {
		return err
	}
	select {
	case err := <-ctl.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FinishSource marks the end of a source's stream: the shard runs the
// engine's Finish and flushes its remaining outputs. Further Feed calls
// for the source fail.
func (r *Runtime) FinishSource(name string) error {
	return r.finishSource(r.ctx, name, nil)
}

// FinishSourceWait is FinishSource that blocks until the engine's Finish
// has run and its final outputs have been flushed to the sink — the
// networked server and the embedded broker use it to flush a departing
// publisher's tail before tearing down its subscribers.
func (r *Runtime) FinishSourceWait(name string) error {
	return r.FinishSourceWaitContext(context.Background(), name)
}

// FinishSourceWaitContext is FinishSourceWait bounded by ctx — both the
// enqueue of the finish marker (which can block behind a full ring) and
// the wait for the final flush. A cancellation after the marker was
// enqueued does not un-finish the source: the engine still finishes at
// its boundary. A cancellation that struck while the marker was still
// queueing leaves the source closed to feeding; Drain retires it.
func (r *Runtime) FinishSourceWaitContext(ctx context.Context, name string) error {
	ctx, release := r.boundCtx(ctx)
	defer release()
	fin := make(chan error, 1)
	if err := r.finishSource(ctx, name, fin); err != nil {
		return err
	}
	select {
	case err := <-fin:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runtime) finishSource(ctx context.Context, name string, fin chan error) error {
	src, w, err := r.lookup(name, true)
	if err != nil {
		return err
	}
	src.closed.Store(true)
	tasks := [1]task{{src: src, fin: fin}}
	_, err = r.submit(ctx, w, tasks[:], true)
	return err
}

// Drain finishes every source not yet finished, closes the shard queues,
// and waits for the workers to exit. It must only be called after all
// feeding goroutines have stopped. It returns the accumulated engine and
// cancellation errors, if any.
func (r *Runtime) Drain() error {
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return fmt.Errorf("shard: Drain before Start")
	}
	if r.drained {
		r.mu.Unlock()
		return fmt.Errorf("shard: already drained")
	}
	r.drained = true
	names := make([]string, 0, len(r.sources))
	for name, src := range r.sources {
		if !src.closed.Load() {
			names = append(names, name)
		}
	}
	r.mu.Unlock()
	sort.Strings(names)
	if err := r.ctx.Err(); err != nil {
		// Cancelled: the workers are gone (or going); engines cannot be
		// finished, so the drain reports the cancellation instead.
		r.recordErr(err)
		names = nil
	}
	for _, name := range names {
		if err := r.FinishSource(name); err != nil {
			r.recordErr(err)
			break // context cancelled; remaining finishes would fail too
		}
	}
	// Seal before closing: a concurrent Feed/Control racing this drain
	// (e.g. a live subscribe as the run ends) errors out instead of
	// pushing into a closed ring. Taking the write side also waits out
	// any producer mid-push, so close() below sees every reserved cell
	// published.
	r.sendMu.Lock()
	r.sealed = true
	r.sendMu.Unlock()
	for _, w := range r.workers {
		w.in.close()
	}
	r.wg.Wait()
	// Sweep tuples stranded in the rings: after cancellation a push can
	// race the exiting worker, so count the leftovers as dropped to keep
	// Enqueued == Processed + worker drops + sweep drops. The workers
	// have exited, so Drain is the sole consumer here.
	for _, w := range r.workers {
		w.dropQueued()
	}
	r.mu.Lock()
	r.endAt = time.Now()
	r.mu.Unlock()
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return errors.Join(r.errs...)
}

// FeedAll drives one finite series per source through the runtime — one
// producer goroutine per source, submitting FlushBatch-sized batches
// with blocking backpressure — then drains. Feed errors are folded into
// the drain's joined error, so none are lost when engines fail too.
func (r *Runtime) FeedAll(series map[string]*tuple.Series) error {
	var wg sync.WaitGroup
	for name, sr := range series {
		wg.Add(1)
		go func(name string, sr *tuple.Series) {
			defer wg.Done()
			batch := make([]*tuple.Tuple, 0, r.cfg.FlushBatch)
			for i := 0; i < sr.Len(); i++ {
				batch = append(batch, sr.At(i))
				if len(batch) < cap(batch) && i+1 < sr.Len() {
					continue
				}
				if err := r.SubmitBatch(name, batch); err != nil {
					r.recordErr(err)
					return
				}
				batch = batch[:0]
			}
		}(name, sr)
	}
	wg.Wait()
	return r.Drain()
}

func (r *Runtime) recordErr(err error) {
	r.errMu.Lock()
	r.errs = append(r.errs, err)
	r.errMu.Unlock()
}

// Results returns the per-source engine results. Call after Drain for
// complete, settled results.
func (r *Runtime) Results() map[string]*core.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]*core.Result, len(r.sources))
	for name, src := range r.sources {
		out[name] = src.engine.Result()
	}
	return out
}

// drainRunMax bounds one popRun, so a worker's drain buffer stays small
// even when the ring is deep.
const drainRunMax = 256

// worker is one shard: a goroutine owning the engines of its sources.
type worker struct {
	id      int
	rt      *Runtime
	in      *ring
	pending []Out

	srcCount atomic.Int64

	enqueued  atomic.Uint64
	processed atomic.Uint64
	dropped   atomic.Uint64
	flushes   atomic.Uint64
	maxQueue  atomic.Int64
	drains    atomic.Uint64
	drained   atomic.Uint64
}

func (w *worker) run(ctx context.Context) {
	defer w.rt.wg.Done()
	n := int(w.in.capacity())
	if n > drainRunMax {
		n = drainRunMax
	}
	buf := make([]task, n)
	for {
		if ctx.Err() != nil {
			w.dropQueued()
			return
		}
		n := w.in.popRun(buf)
		if n == 0 {
			if w.in.isClosed() {
				// Sealed and empty: every producer is gone and the final
				// finish markers have been handled.
				w.flush()
				return
			}
			w.in.park(ctx)
			continue
		}
		w.observeDepth(int64(n) + int64(w.in.Len()))
		w.drains.Add(1)
		w.drained.Add(uint64(n))
		for i := range buf[:n] {
			w.handle(buf[i])
			buf[i] = task{}
		}
		// Idle flush: batching amortizes cost but must not hold output
		// once the ring has caught up.
		if len(w.pending) > 0 && !w.in.ready() {
			w.flush()
		}
	}
}

// dropQueued counts the tuples abandoned in the ring at cancellation (or
// swept by Drain after the workers exited).
func (w *worker) dropQueued() {
	var buf [64]task
	for {
		n := w.in.popRun(buf[:])
		if n == 0 {
			return
		}
		for i := 0; i < n; i++ {
			if buf[i].t != nil {
				w.dropped.Add(1)
			}
			buf[i] = task{}
		}
	}
}

func (w *worker) handle(tk task) {
	src := tk.src
	if tk.ctl != nil {
		var err error
		if src.failed.Load() {
			err = fmt.Errorf("shard %d: source %q already failed", w.id, src.name)
		} else {
			err = tk.ctl.fn(src.engine)
			w.collect(src)
			w.flush()
		}
		tk.ctl.done <- err
		return
	}
	if tk.t == nil { // finish marker
		var finErr error
		switch {
		case src.failed.Load():
			// The stream already broke; report the original failure so a
			// FinishSourceWait caller learns the stream did not end clean.
			finErr = src.failErr
		case !src.finished:
			if err := src.engine.Finish(); err != nil {
				w.fail(src, err)
				finErr = err
			} else {
				w.collect(src)
			}
		}
		src.finished = true
		w.flush()
		if tk.fin != nil {
			tk.fin <- finErr
		}
		return
	}
	if src.failed.Load() {
		w.dropped.Add(1)
		return
	}
	tel := w.rt.cfg.Telemetry
	if tk.enq != 0 {
		tel.Observe(telemetry.StageRingWait, telemetry.Since(tk.enq))
	}
	var stepErr error
	if tel.Sample(telemetry.StageEngineStep) {
		t0 := time.Now()
		stepErr = src.engine.Step(tk.t)
		tel.Observe(telemetry.StageEngineStep, time.Since(t0))
	} else {
		stepErr = src.engine.Step(tk.t)
	}
	if stepErr != nil {
		w.fail(src, stepErr)
		w.dropped.Add(1) // the failing tuple was not processed
		return
	}
	w.processed.Add(1)
	w.collect(src)
	if len(w.pending) >= w.rt.cfg.FlushBatch {
		w.flush()
	}
}

// collect stages the engine's newly released transmissions for the next
// flush.
func (w *worker) collect(src *source) {
	trs := src.engine.Result().Transmissions
	for ; src.sent < len(trs); src.sent++ {
		w.pending = append(w.pending, Out{Source: src.name, Tr: trs[src.sent]})
	}
}

func (w *worker) flush() {
	if len(w.pending) == 0 {
		return
	}
	w.flushes.Add(1)
	if w.rt.sink != nil {
		w.rt.sink(w.pending)
	}
	w.pending = w.pending[:0]
}

func (w *worker) fail(src *source, err error) {
	src.failErr = err
	src.failed.Store(true)
	w.rt.recordErr(fmt.Errorf("shard %d: source %q: %w", w.id, src.name, err))
}

func (w *worker) observeDepth(d int64) {
	for {
		cur := w.maxQueue.Load()
		if d <= cur || w.maxQueue.CompareAndSwap(cur, d) {
			return
		}
	}
}
