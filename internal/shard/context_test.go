package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// wedgedRuntime builds a 1-shard runtime whose worker is parked inside a
// control function until release is closed. With queue 1 the ring is
// also filled, so producers block; a larger queue leaves room for more
// tasks behind the parked worker.
func wedgedRuntime(t *testing.T, queue int) (*Runtime, *tuple.Series, chan struct{}) {
	t.Helper()
	f, err := filter.NewDC1("app", "temperature", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{Shards: 1, QueueDepth: queue})
	if err := rt.AddGroup("src", []filter.Filter{f}, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		_ = rt.Control("src", func(*core.Engine) error {
			close(entered)
			<-release
			return nil
		})
	}()
	<-entered
	sr := trace.PaperExample()
	// One tuple behind the parked worker (fills a single-slot ring).
	if err := rt.Feed("src", sr.At(0)); err != nil {
		t.Fatal(err)
	}
	return rt, sr, release
}

// TestSubmitBatchContextDeadline proves a producer blocked on a full
// ring honors its own deadline: the submit returns DeadlineExceeded
// while the runtime stays healthy, and feeding resumes once the shard
// unwedges.
func TestSubmitBatchContextDeadline(t *testing.T) {
	rt, sr, release := wedgedRuntime(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := rt.SubmitBatchContext(ctx, "src", []*tuple.Tuple{sr.At(1), sr.At(2)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit returned %v, want deadline exceeded", err)
	}
	close(release)
	// The runtime survived the cancelled submit: the remaining tuples
	// still flow and the drain settles clean.
	for i := 3; i < sr.Len(); i++ {
		if err := rt.SubmitBatchContext(context.Background(), "src", []*tuple.Tuple{sr.At(i)}); err != nil {
			t.Fatalf("submit after cancel: %v", err)
		}
	}
	if err := rt.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := rt.Results()["src"]
	if res.Stats.Inputs == 0 {
		t.Error("no tuples processed after recovered submit")
	}
	snaps := rt.Metrics()
	var dropped uint64
	for _, s := range snaps {
		dropped += s.Dropped
	}
	if dropped == 0 {
		t.Error("cancelled submit should count its unpushed tuples as dropped")
	}
}

// TestControlContextDeadline proves a caller waiting on an enqueued
// control can stop waiting without wedging the runtime — and that the
// abandoned control still runs at its tuple boundary afterwards. The
// queue has room, so the control enqueues; only the wait is cancelled.
func TestControlContextDeadline(t *testing.T) {
	rt, _, release := wedgedRuntime(t, 8)
	ran := make(chan struct{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := rt.ControlContext(ctx, "src", func(*core.Engine) error {
		close(ran)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked control returned %v, want deadline exceeded", err)
	}
	close(release)
	select {
	case <-ran:
		// The abandoned control still executed once the worker caught up.
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned control never ran")
	}
	if err := rt.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestControlContextBlockedEnqueue proves a control whose enqueue itself
// is cancelled (full ring) reports the deadline and never runs.
func TestControlContextBlockedEnqueue(t *testing.T) {
	rt, _, release := wedgedRuntime(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := rt.ControlContext(ctx, "src", func(*core.Engine) error {
		t.Error("cancelled enqueue must not run the control")
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked enqueue returned %v, want deadline exceeded", err)
	}
	close(release)
	if err := rt.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestFinishSourceWaitContext covers the bounded finish wait: with the
// single-slot ring full behind the wedged worker, even the finish
// marker's enqueue blocks, and the deadline must still get the caller
// out.
func TestFinishSourceWaitContext(t *testing.T) {
	rt, _, release := wedgedRuntime(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := rt.FinishSourceWaitContext(ctx, "src"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked finish wait returned %v, want deadline exceeded", err)
	}
	close(release)
	if err := rt.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestSentinelErrors pins the errors.Is contract layered brokers rely
// on.
func TestSentinelErrors(t *testing.T) {
	rt := New(Config{Shards: 1})
	f, _ := filter.NewDC1("app", "temperature", 50, 10)
	if err := rt.AddGroup("src", []filter.Filter{f}, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Feed("ghost", nil); err == nil {
		t.Fatal("nil tuple should fail")
	}
	if _, _, err := rt.lookup("ghost", false); !errors.Is(err, ErrUnknownSource) {
		t.Errorf("unknown source error = %v, want ErrUnknownSource", err)
	}
	if err := rt.FinishSource("src"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.lookup("src", false); !errors.Is(err, ErrSourceFinished) {
		t.Errorf("finished source error = %v, want ErrSourceFinished", err)
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Feed("src", trace.PaperExample().At(0)); err == nil {
		t.Error("feed after drain should fail")
	} else if !errors.Is(err, ErrSourceFinished) && !errors.Is(err, ErrDrained) {
		t.Errorf("post-drain feed error = %v, want a drain/finish sentinel", err)
	}
}
