package shard

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// CellConfig parameterizes one throughput measurement: Sources identical
// single-source workloads (a DC1 filter group over a shared NAMOS trace)
// driven concurrently through a runtime with Shards shards.
//
// DisseminationDelay models the blocking cost of handing one flushed
// batch to the dissemination layer. The paper's testbed measures an
// application-level multicast invocation cost of roughly 12 ms (§4.1.2);
// in a deployment that cost is paid synchronously by the source node's
// send path, so sharding overlaps it across sources. Zero measures pure
// engine CPU throughput instead.
type CellConfig struct {
	Shards          int
	Sources         int
	TuplesPerSource int
	// FiltersPerSource sizes each source's filter group; 0 means 3.
	FiltersPerSource   int
	QueueDepth         int
	FlushBatch         int
	DisseminationDelay time.Duration
	Seed               int64
	// Procs pins GOMAXPROCS for the measured section (restored after),
	// making the cell one point of the GOMAXPROCS × shards scaling
	// matrix; 0 leaves the scheduler as-is.
	Procs int
}

// CellResult is one measured cell of the throughput matrix.
type CellResult struct {
	Procs           int     `json:"gomaxprocs"`
	Shards          int     `json:"shards"`
	Sources         int     `json:"sources"`
	TuplesPerSource int     `json:"tuples_per_source"`
	Tuples          int     `json:"tuples"`
	ElapsedMS       float64 `json:"elapsed_ms"`
	TuplesPerSec    float64 `json:"tuples_per_sec"`
	Transmissions   int     `json:"transmissions"`
	Flushes         uint64  `json:"flushes"`
	Dropped         uint64  `json:"dropped"`
	MaxQueueDepth   int     `json:"max_queue_depth"`
	AvgDrainRun     float64 `json:"avg_drain_run"`
	ProducerParks   uint64  `json:"producer_parks"`
}

// BuildWorkload generates the shared series and per-source filter groups
// of one cell. Filter construction is excluded from the timed section.
func BuildWorkload(cfg CellConfig) (*tuple.Series, [][]filter.Filter, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sr, err := trace.NAMOS(trace.Config{N: cfg.TuplesPerSource, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		return nil, nil, err
	}
	nf := cfg.FiltersPerSource
	if nf <= 0 {
		nf = 3
	}
	groups := make([][]filter.Filter, cfg.Sources)
	for s := range groups {
		fs := make([]filter.Filter, nf)
		for i := range fs {
			mult := 1 + float64(i)*0.37
			f, err := filter.NewDC1(fmt.Sprintf("app%d", i+1), "tmpr4", mult*stat, 0.5*mult*stat)
			if err != nil {
				return nil, nil, err
			}
			fs[i] = f
		}
		groups[s] = fs
	}
	return sr, groups, nil
}

// RunCell measures one cell: it builds the workload, then times feeding
// every source concurrently (one producer goroutine per source, blocking
// backpressure) until fully drained.
func RunCell(cfg CellConfig) (CellResult, error) {
	sr, groups, err := BuildWorkload(cfg)
	if err != nil {
		return CellResult{}, err
	}
	if cfg.Procs > 0 {
		prev := runtime.GOMAXPROCS(cfg.Procs)
		defer runtime.GOMAXPROCS(prev)
	}
	rt := New(Config{Shards: cfg.Shards, QueueDepth: cfg.QueueDepth, FlushBatch: cfg.FlushBatch})
	series := make(map[string]*tuple.Series, cfg.Sources)
	for s := range groups {
		name := fmt.Sprintf("src%04d", s)
		if err := rt.AddGroup(name, groups[s], core.Options{Algorithm: core.RG}); err != nil {
			return CellResult{}, err
		}
		series[name] = sr
	}
	sink := Sink(nil)
	if cfg.DisseminationDelay > 0 {
		delay := cfg.DisseminationDelay
		sink = func(batch []Out) { time.Sleep(delay) }
	}

	start := time.Now()
	if err := rt.Start(context.Background(), sink); err != nil {
		return CellResult{}, err
	}
	if err := rt.FeedAll(series); err != nil {
		return CellResult{}, err
	}
	elapsed := time.Since(start)

	res := CellResult{
		Procs:           runtime.GOMAXPROCS(0),
		Shards:          cfg.Shards,
		Sources:         cfg.Sources,
		TuplesPerSource: sr.Len(),
		Tuples:          cfg.Sources * sr.Len(),
		ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
		Dropped:         rt.TotalDropped(),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.TuplesPerSec = float64(res.Tuples) / secs
	}
	var drains, drained uint64
	for _, snap := range rt.Metrics() {
		res.Flushes += snap.Flushes
		res.ProducerParks += snap.ProducerParks
		drains += snap.Drains
		if snap.Drains > 0 {
			drained += uint64(snap.AvgDrainRun*float64(snap.Drains) + 0.5)
		}
		if snap.MaxQueueDepth > res.MaxQueueDepth {
			res.MaxQueueDepth = snap.MaxQueueDepth
		}
	}
	if drains > 0 {
		res.AvgDrainRun = float64(drained) / float64(drains)
	}
	for _, r := range rt.Results() {
		res.Transmissions += r.Stats.Transmissions
	}
	return res, nil
}
