package shard

import "time"

// Snapshot is one shard's counters at a point in time. Counters are
// monotonic; rates are derived from the runtime's start instant.
type Snapshot struct {
	// Shard is the shard index.
	Shard int
	// Sources is the number of sources partitioned onto the shard.
	Sources int
	// Enqueued counts tuples accepted into the shard queue.
	Enqueued uint64
	// Processed counts tuples stepped through an engine.
	Processed uint64
	// Dropped counts tuples lost: Offer rejections on a full queue,
	// tuples abandoned at cancellation, and tuples discarded after a
	// source's engine failed.
	Dropped uint64
	// Flushes counts sink flushes (batched delivery handoffs).
	Flushes uint64
	// QueueDepth is the ring occupancy at snapshot time.
	QueueDepth int
	// MaxQueueDepth is the highest ring occupancy observed by the worker.
	MaxQueueDepth int
	// Drains counts the worker's ring pops that returned tasks; each is
	// one consumer-side synchronization.
	Drains uint64
	// AvgDrainRun is the mean tasks per drain — the batch-occupancy
	// figure: 1.0 means the ring degenerated to task-at-a-time hand-off,
	// higher means producers and the worker amortize synchronization.
	AvgDrainRun float64
	// ProducerParks counts producer park events on a full ring (the
	// backpressure stall signal).
	ProducerParks uint64
	// ConsumerParks counts worker park events on an empty ring (idle
	// transitions; high rates with low AvgDrainRun indicate a trickle
	// workload, not a saturated one).
	ConsumerParks uint64
	// Elapsed is the time since Start.
	Elapsed time.Duration
	// TuplesPerSec is Processed over Elapsed.
	TuplesPerSec float64
}

// Metrics returns a snapshot per shard. Safe to call while the runtime is
// running.
func (r *Runtime) Metrics() []Snapshot {
	r.mu.Lock()
	started := r.started
	startAt, endAt := r.startAt, r.endAt
	r.mu.Unlock()
	var elapsed time.Duration
	switch {
	case !started:
	case !endAt.IsZero(): // drained: freeze the run's duration
		elapsed = endAt.Sub(startAt)
	default:
		elapsed = time.Since(startAt)
	}
	out := make([]Snapshot, len(r.workers))
	for i, w := range r.workers {
		s := Snapshot{
			Shard:         w.id,
			Sources:       int(w.srcCount.Load()),
			Enqueued:      w.enqueued.Load(),
			Processed:     w.processed.Load(),
			Dropped:       w.dropped.Load(),
			Flushes:       w.flushes.Load(),
			QueueDepth:    w.in.Len(),
			MaxQueueDepth: int(w.maxQueue.Load()),
			Drains:        w.drains.Load(),
			ProducerParks: w.in.producerParks.Load(),
			ConsumerParks: w.in.consumerParks.Load(),
			Elapsed:       elapsed,
		}
		if s.Drains > 0 {
			s.AvgDrainRun = float64(w.drained.Load()) / float64(s.Drains)
		}
		if secs := elapsed.Seconds(); secs > 0 {
			s.TuplesPerSec = float64(s.Processed) / secs
		}
		out[i] = s
	}
	return out
}

// TotalProcessed sums processed tuples across shards.
func (r *Runtime) TotalProcessed() uint64 {
	var n uint64
	for _, w := range r.workers {
		n += w.processed.Load()
	}
	return n
}

// TotalDropped sums dropped tuples across shards.
func (r *Runtime) TotalDropped() uint64 {
	var n uint64
	for _, w := range r.workers {
		n += w.dropped.Load()
	}
	return n
}
