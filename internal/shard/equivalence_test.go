package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/quality"
	"gasf/internal/trace"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// fingerprint serializes a result's released sequence with the wire
// encoding so equivalence is asserted byte-for-byte: release instant,
// destination labels and tuple payload of every transmission, in release
// order, plus any punctuations.
func fingerprint(t testing.TB, res *core.Result) []byte {
	t.Helper()
	var buf []byte
	for _, tr := range res.Transmissions {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(tr.ReleasedAt.UnixNano()))
		var err error
		buf, err = wire.AppendTransmission(buf, tr.Tuple, tr.Destinations)
		if err != nil {
			t.Fatalf("encoding transmission: %v", err)
		}
	}
	for _, p := range res.Punctuations {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.At.UnixNano()))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Horizon.UnixNano()))
	}
	return buf
}

// eqSource is one randomized (filter group, trace) pair of a case.
type eqSource struct {
	name  string
	sr    *tuple.Series
	specs []quality.Spec
	opts  core.Options
}

// build instantiates a fresh filter group from the source's specs, so the
// sequential and sharded runs never share filter state.
func (s eqSource) build(t testing.TB) []filter.Filter {
	t.Helper()
	out := make([]filter.Filter, len(s.specs))
	for i, sp := range s.specs {
		f, err := sp.Build(fmt.Sprintf("app%d", i+1))
		if err != nil {
			t.Fatalf("building %v: %v", sp, err)
		}
		out[i] = f
	}
	return out
}

// randomTrace picks one of the synthetic generators with a random length
// and seed.
func randomTrace(t testing.TB, rng *rand.Rand) *tuple.Series {
	t.Helper()
	n := 60 + rng.Intn(300)
	cfg := trace.Config{N: n, Seed: rng.Int63n(1 << 30)}
	var (
		sr  *tuple.Series
		err error
	)
	switch rng.Intn(4) {
	case 0:
		sr, err = trace.NAMOS(cfg)
	case 1:
		sr, err = trace.Cow(cfg)
	case 2:
		sr, err = trace.Seismic(cfg)
	default:
		sr, err = trace.FireHRR(cfg)
	}
	if err != nil {
		t.Fatalf("generating trace: %v", err)
	}
	return sr
}

// randomSpecs draws a filter group over the trace's schema, with deltas
// derived from the measured source statistic as §4.3 prescribes.
func randomSpecs(t testing.TB, rng *rand.Rand, sr *tuple.Series) []quality.Spec {
	t.Helper()
	attrs := sr.Schema().Names()
	count := 1 + rng.Intn(4)
	specs := make([]quality.Spec, count)
	for i := range specs {
		attr := attrs[rng.Intn(len(attrs))]
		stat, err := sr.MeanAbsChange(attr)
		if err != nil {
			t.Fatalf("stat for %s: %v", attr, err)
		}
		if stat == 0 {
			stat = 1e-6
		}
		delta := stat * (0.5 + 2.5*rng.Float64())
		// Axiom 1 requires slack <= delta/2.
		slack := delta * (0.1 + 0.38*rng.Float64())
		switch k := rng.Intn(10); {
		case k < 5:
			specs[i] = quality.Spec{Kind: quality.DC1, Attrs: []string{attr}, Delta: delta, Slack: slack}
		case k < 7:
			specs[i] = quality.Spec{Kind: quality.SDC, Attrs: []string{attr}, Delta: delta, Slack: slack}
		case k < 8 && len(attrs) >= 2:
			second := attrs[rng.Intn(len(attrs))]
			for second == attr {
				second = attrs[rng.Intn(len(attrs))]
			}
			specs[i] = quality.Spec{Kind: quality.DC3, Attrs: []string{attr, second}, Delta: delta, Slack: slack}
		case k < 9:
			// DC2 monitors the change rate per second; the traces tick
			// every 10 ms, so scale the statistic accordingly.
			specs[i] = quality.Spec{Kind: quality.DC2, Attrs: []string{attr}, Delta: delta * 100, Slack: slack * 100}
		default:
			specs[i] = quality.Spec{
				Kind:      quality.SS,
				Attrs:     []string{attr},
				Interval:  time.Duration(5+rng.Intn(16)) * trace.DefaultInterval,
				Threshold: stat * (0.5 + rng.Float64()),
				HighPct:   40 + 60*rng.Float64(),
				LowPct:    5 + 30*rng.Float64(),
				Prescription: []filter.Prescription{
					filter.Random, filter.Top, filter.Bottom,
				}[rng.Intn(3)],
			}
		}
	}
	return specs
}

// randomOptions draws engine options covering both algorithms, all output
// strategies, cuts and punctuations.
func randomOptions(rng *rand.Rand) core.Options {
	opts := core.Options{MulticastDelay: 12 * time.Millisecond}
	if rng.Intn(2) == 1 {
		opts.Algorithm = core.PS
	}
	switch rng.Intn(4) {
	case 0:
		opts.Strategy = core.PerCandidateSet
	case 1:
		opts.Strategy = core.Batched
		opts.BatchSize = 2 + rng.Intn(40)
	}
	if rng.Intn(10) < 3 {
		opts.Cuts = true
		opts.MaxDelay = time.Duration(30+rng.Intn(120)) * time.Millisecond
	}
	if rng.Intn(2) == 1 {
		opts.EmitPunctuations = true
	}
	if rng.Intn(5) == 0 {
		opts.Ties = core.PreferEarliest
	}
	return opts
}

// runSharded drives every source through one runtime, feeding each source
// from its own goroutine so the shards interleave work, and returns the
// per-source results.
func runSharded(t testing.TB, cfg Config, sources []eqSource) map[string]*core.Result {
	t.Helper()
	rt := New(cfg)
	for _, s := range sources {
		if err := rt.AddGroup(s.name, s.build(t), s.opts); err != nil {
			t.Fatalf("adding %s: %v", s.name, err)
		}
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	series := make(map[string]*tuple.Series, len(sources))
	for _, s := range sources {
		series[s.name] = s.sr
	}
	if err := rt.FeedAll(series); err != nil {
		t.Fatalf("feed: %v", err)
	}
	return rt.Results()
}

// TestShardSequentialEquivalence is the acceptance property test: for
// randomized (filter group, trace) cases across algorithms, strategies,
// cuts, shard counts and queue sizes, the sharded runtime's per-source
// released sequence is byte-identical to a sequential core.Run of the
// same group over the same trace.
func TestShardSequentialEquivalence(t *testing.T) {
	runEquivalenceCases(t, 20260730, 20, 3) // 60 randomized (group, trace) pairs
}

// TestShardEquivalenceAcrossGOMAXPROCS re-runs the byte-identical
// harness with the scheduler pinned to 1 and then 4 procs: the batched
// ring pipeline must be oblivious to how much real parallelism backs the
// shard workers (single-proc interleaving and true concurrency hit
// different park/unpark and drain-run paths).
func TestShardEquivalenceAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			runEquivalenceCases(t, 20260731+int64(procs), 6, 3)
		})
	}
}

func runEquivalenceCases(t *testing.T, seed int64, cases, sourcesPerCase int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < cases; c++ {
		cfg := Config{
			Shards:     1 + rng.Intn(8),
			QueueDepth: 1 + rng.Intn(32),
			FlushBatch: 1 + rng.Intn(8),
		}
		sources := make([]eqSource, sourcesPerCase)
		for i := range sources {
			sr := randomTrace(t, rng)
			sources[i] = eqSource{
				name:  fmt.Sprintf("case%d-src%d", c, i),
				sr:    sr,
				specs: randomSpecs(t, rng, sr),
				opts:  randomOptions(rng),
			}
		}
		got := runSharded(t, cfg, sources)
		for _, s := range sources {
			want, err := core.Run(s.build(t), s.sr, s.opts)
			if err != nil {
				t.Fatalf("case %d %s: sequential run: %v", c, s.name, err)
			}
			sh, ok := got[s.name]
			if !ok {
				t.Fatalf("case %d: no sharded result for %s", c, s.name)
			}
			if !bytes.Equal(fingerprint(t, sh), fingerprint(t, want)) {
				t.Errorf("case %d %s (shards=%d queue=%d flush=%d, %d filters, alg=%v strat=%v cuts=%v): sharded released sequence differs from sequential\nsharded:    %d transmissions\nsequential: %d transmissions",
					c, s.name, cfg.Shards, cfg.QueueDepth, cfg.FlushBatch,
					len(s.specs), s.opts.Algorithm, s.opts.Strategy, s.opts.Cuts,
					sh.Stats.Transmissions, want.Stats.Transmissions)
			}
			if sh.Stats.DistinctOutputs != want.Stats.DistinctOutputs {
				t.Errorf("case %d %s: distinct outputs %d != sequential %d",
					c, s.name, sh.Stats.DistinctOutputs, want.Stats.DistinctOutputs)
			}
		}
	}
}

// TestShardPaperExampleEquivalence pins the worked ten-tuple example: the
// sharded runtime must reproduce Fig 2.8 exactly, like the sequential
// engine does.
func TestShardPaperExampleEquivalence(t *testing.T) {
	mk := func() []filter.Filter {
		a, _ := filter.NewDC1("A", "temperature", 50, 10)
		b, _ := filter.NewDC1("B", "temperature", 40, 5)
		c, _ := filter.NewDC1("C", "temperature", 80, 25)
		return []filter.Filter{a, b, c}
	}
	sr := trace.PaperExample()
	opts := core.Options{Algorithm: core.RG}
	want, err := core.Run(mk(), sr, opts)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{Shards: 4, QueueDepth: 2, FlushBatch: 1})
	if err := rt.AddGroup("temp", mk(), opts); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sunk int
	if err := rt.Start(context.Background(), func(batch []Out) {
		mu.Lock()
		sunk += len(batch)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if err := rt.Feed("temp", sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	got := rt.Results()["temp"]
	if !bytes.Equal(fingerprint(t, got), fingerprint(t, want)) {
		t.Errorf("sharded paper example differs from sequential run")
	}
	if got.Stats.DistinctOutputs != 3 {
		t.Errorf("distinct outputs = %d, want 3", got.Stats.DistinctOutputs)
	}
	if sunk != got.Stats.Transmissions {
		t.Errorf("sink saw %d transmissions, result has %d", sunk, got.Stats.Transmissions)
	}
}
