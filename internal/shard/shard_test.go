package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/trace"
)

func exampleGroup(t testing.TB) []filter.Filter {
	t.Helper()
	a, err := filter.NewDC1("A", "temperature", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := filter.NewDC1("B", "temperature", 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	return []filter.Filter{a, b}
}

func TestConfigDefaults(t *testing.T) {
	rt := New(Config{})
	if rt.Shards() < 1 {
		t.Fatalf("shard count %d < 1", rt.Shards())
	}
	if rt.cfg.QueueDepth != DefaultQueueDepth || rt.cfg.FlushBatch != DefaultFlushBatch {
		t.Errorf("defaults not applied: %+v", rt.cfg)
	}
	merged := Merge(Config{Shards: 2, QueueDepth: 8}, Config{Shards: 4, FlushBatch: 16})
	if merged.Shards != 4 || merged.QueueDepth != 8 || merged.FlushBatch != 16 {
		t.Errorf("merge = %+v", merged)
	}
}

func TestShardPartitionIsStable(t *testing.T) {
	rt := New(Config{Shards: 4})
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("src%d", i)
		sh := rt.ShardOf(name)
		if sh < 0 || sh >= 4 {
			t.Fatalf("shard %d out of range", sh)
		}
		if sh != rt.ShardOf(name) {
			t.Fatalf("partition of %q not stable", name)
		}
	}
}

func TestRegistrationErrors(t *testing.T) {
	rt := New(Config{Shards: 2})
	if err := rt.AddSource("", nil); err == nil {
		t.Error("empty name should fail")
	}
	if err := rt.AddSource("s", nil); err == nil {
		t.Error("nil engine should fail")
	}
	if err := rt.AddGroup("s", exampleGroup(t), core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.AddGroup("s", exampleGroup(t), core.Options{}); err == nil {
		t.Error("duplicate source should fail")
	}
	if err := rt.Feed("s", trace.PaperExample().At(0)); err == nil {
		t.Error("feed before start should fail")
	}
	if err := rt.Drain(); err == nil {
		t.Error("drain before start should fail")
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background(), nil); err == nil {
		t.Error("double start should fail")
	}
	if err := rt.AddGroup("late", exampleGroup(t), core.Options{}); err == nil {
		t.Error("add after start should fail")
	}
	if err := rt.Feed("ghost", trace.PaperExample().At(0)); err == nil {
		t.Error("feed to unknown source should fail")
	}
	if err := rt.Feed("s", nil); err == nil {
		t.Error("nil tuple should fail")
	}
	if err := rt.FinishSource("s"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Feed("s", trace.PaperExample().At(0)); err == nil {
		t.Error("feed after finish should fail")
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Drain(); err == nil {
		t.Error("double drain should fail")
	}
}

// TestOfferDropsWhenFull blocks the single shard inside a sink flush,
// fills its one-slot queue, and checks Offer rejects and counts the drop.
func TestOfferDropsWhenFull(t *testing.T) {
	rt := New(Config{Shards: 1, QueueDepth: 1, FlushBatch: 1})
	// PS + per-candidate-set: from the second tuple on, every step
	// releases output, so the sink runs (and can block the worker).
	if err := rt.AddGroup("s", exampleGroup(t), core.Options{
		Algorithm: core.PS, Strategy: core.PerCandidateSet,
	}); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	if err := rt.Start(context.Background(), func(batch []Out) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}); err != nil {
		t.Fatal(err)
	}
	// The paper example's values swing by >= 50, so the A/B filters
	// close a set on every second tuple under PS.
	ex := trace.PaperExample()
	if err := rt.Feed("s", ex.At(0)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Feed("s", ex.At(1)); err != nil {
		t.Fatal(err)
	}
	<-entered                                      // worker is now blocked inside the sink
	if err := rt.Feed("s", ex.At(2)); err != nil { // fills the queue
		t.Fatal(err)
	}
	ok, err := rt.Offer("s", ex.At(3))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Offer should reject on a full queue")
	}
	if got := rt.TotalDropped(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	close(release)
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestCancellationStopsFeeding(t *testing.T) {
	rt := New(Config{Shards: 1, QueueDepth: 1, FlushBatch: 1})
	if err := rt.AddGroup("s", exampleGroup(t), core.Options{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := rt.Start(ctx, nil); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The worker may still race one successful enqueue after cancel;
	// within a few attempts Feed must fail with the context error.
	var err error
	ex := trace.PaperExample()
	deadline := time.After(5 * time.Second)
	for i := 0; err == nil && i < ex.Len(); i++ {
		select {
		case <-deadline:
			t.Fatal("Feed never observed cancellation")
		default:
		}
		err = rt.Feed("s", ex.At(i))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("feed error = %v, want context.Canceled", err)
	}
	if err := rt.Drain(); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain error = %v, want context.Canceled", err)
	}
}

func TestEngineErrorPropagates(t *testing.T) {
	rt := New(Config{Shards: 2})
	if err := rt.AddGroup("bad", exampleGroup(t), core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	ex := trace.PaperExample()
	if err := rt.Feed("bad", ex.At(1)); err != nil {
		t.Fatal(err)
	}
	// Same timestamp again: the engine rejects non-increasing time.
	if err := rt.Feed("bad", ex.At(1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Feed("bad", ex.At(2)); err != nil {
		t.Fatal(err)
	}
	err := rt.Drain()
	if err == nil || !strings.Contains(err.Error(), `source "bad"`) {
		t.Fatalf("drain error = %v, want engine error naming the source", err)
	}
	if rt.TotalDropped() == 0 {
		t.Error("tuples after an engine failure should count as dropped")
	}
}

func TestMetricsCounters(t *testing.T) {
	rt := New(Config{Shards: 3, QueueDepth: 4, FlushBatch: 2})
	names := []string{"a", "b", "c", "d", "e"}
	for _, n := range names {
		if err := rt.AddGroup(n, exampleGroup(t), core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Start(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	ex := trace.PaperExample()
	for i := 0; i < ex.Len(); i++ {
		for _, n := range names {
			if err := rt.Feed(n, ex.At(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	snaps := rt.Metrics()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	var enq, proc, srcs uint64
	var flushes, drains uint64
	for _, s := range snaps {
		enq += s.Enqueued
		proc += s.Processed
		srcs += uint64(s.Sources)
		flushes += s.Flushes
		drains += s.Drains
		if s.QueueDepth != 0 {
			t.Errorf("shard %d queue depth %d after drain", s.Shard, s.QueueDepth)
		}
		if s.Elapsed <= 0 {
			t.Errorf("shard %d elapsed %v", s.Shard, s.Elapsed)
		}
		if s.Drains > 0 && s.AvgDrainRun < 1 {
			t.Errorf("shard %d avg drain run %.2f < 1 with %d drains", s.Shard, s.AvgDrainRun, s.Drains)
		}
	}
	want := uint64(len(names) * ex.Len())
	if enq != want || proc != want {
		t.Errorf("enqueued %d processed %d, want %d", enq, proc, want)
	}
	if srcs != uint64(len(names)) {
		t.Errorf("sources across shards = %d, want %d", srcs, len(names))
	}
	if flushes == 0 {
		t.Error("no flushes recorded")
	}
	if drains == 0 {
		t.Error("no ring drains recorded")
	}
	if rt.TotalProcessed() != want {
		t.Errorf("TotalProcessed = %d, want %d", rt.TotalProcessed(), want)
	}
}

// TestStressManySources exercises backpressure and cross-shard
// interleaving under -race: many sources on few shards with tiny queues,
// checking every tuple is processed and one spot-checked source matches
// the sequential engine.
func TestStressManySources(t *testing.T) {
	const sources = 40
	sr, err := trace.NAMOS(trace.Config{N: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		t.Fatal(err)
	}
	group := func() []filter.Filter {
		a, _ := filter.NewDC1("A", "tmpr4", stat, 0.5*stat)
		b, _ := filter.NewDC1("B", "tmpr4", 2*stat, stat)
		return []filter.Filter{a, b}
	}
	rt := New(Config{Shards: 4, QueueDepth: 2, FlushBatch: 3})
	for i := 0; i < sources; i++ {
		if err := rt.AddGroup(fmt.Sprintf("src%02d", i), group(), core.Options{Algorithm: core.PS}); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	perSource := make(map[string]int)
	if err := rt.Start(context.Background(), func(batch []Out) {
		mu.Lock()
		for _, o := range batch {
			perSource[o.Source] += len(o.Tr.Destinations)
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < sources; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for j := 0; j < sr.Len(); j++ {
				if err := rt.Feed(name, sr.At(j)); err != nil {
					t.Error(err)
					return
				}
			}
		}(fmt.Sprintf("src%02d", i))
	}
	wg.Wait()
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	if got, want := rt.TotalProcessed(), uint64(sources*sr.Len()); got != want {
		t.Errorf("processed %d tuples, want %d", got, want)
	}
	want, err := core.Run(group(), sr, core.Options{Algorithm: core.PS})
	if err != nil {
		t.Fatal(err)
	}
	results := rt.Results()
	for i := 0; i < sources; i++ {
		name := fmt.Sprintf("src%02d", i)
		got := results[name]
		if got.Stats.Transmissions != want.Stats.Transmissions ||
			got.Stats.DistinctOutputs != want.Stats.DistinctOutputs {
			t.Errorf("%s: (transmissions, distinct) = (%d, %d), want (%d, %d)",
				name, got.Stats.Transmissions, got.Stats.DistinctOutputs,
				want.Stats.Transmissions, want.Stats.DistinctOutputs)
		}
		if perSource[name] != got.Stats.Deliveries {
			t.Errorf("%s: sink saw %d deliveries, result has %d",
				name, perSource[name], got.Stats.Deliveries)
		}
	}
}

// TestStressCancelMidStream cancels while many producers are blocked on
// backpressure and checks the runtime unwinds without deadlock.
func TestStressCancelMidStream(t *testing.T) {
	const sources = 16
	sr, err := trace.NAMOS(trace.Config{N: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{Shards: 2, QueueDepth: 1, FlushBatch: 1})
	for i := 0; i < sources; i++ {
		a, _ := filter.NewDC1("A", "tmpr4", 0.01, 0.005)
		if err := rt.AddGroup(fmt.Sprintf("src%02d", i), []filter.Filter{a}, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	slow := func(batch []Out) { time.Sleep(100 * time.Microsecond) }
	if err := rt.Start(ctx, slow); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < sources; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for j := 0; j < sr.Len(); j++ {
				if err := rt.Feed(name, sr.At(j)); err != nil {
					return // cancellation
				}
			}
		}(fmt.Sprintf("src%02d", i))
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("producers did not unwind after cancel")
	}
	if err := rt.Drain(); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain error = %v, want context.Canceled", err)
	}
	// No tuple vanishes uncounted: everything enqueued was either
	// processed or counted dropped (worker drain, queue sweep). Dropped
	// may exceed the difference because feed-side rejections also count.
	var enq, proc, drop uint64
	for _, s := range rt.Metrics() {
		enq, proc, drop = enq+s.Enqueued, proc+s.Processed, drop+s.Dropped
	}
	if enq > proc+drop {
		t.Errorf("%d enqueued tuples unaccounted for (processed %d, dropped %d)", enq-proc-drop, proc, drop)
	}
}

func TestRunCellSmoke(t *testing.T) {
	res, err := RunCell(CellConfig{Shards: 2, Sources: 6, TuplesPerSource: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 6*80 {
		t.Errorf("tuples = %d, want %d", res.Tuples, 6*80)
	}
	if res.TuplesPerSec <= 0 || res.ElapsedMS <= 0 {
		t.Errorf("degenerate measurement: %+v", res)
	}
	if res.Transmissions == 0 || res.Flushes == 0 {
		t.Errorf("no output measured: %+v", res)
	}
	if res.Dropped != 0 {
		t.Errorf("dropped %d tuples under pure backpressure", res.Dropped)
	}
}
