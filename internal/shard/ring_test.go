package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/tuple"
)

// ringTask fabricates a distinguishable task: the producer id rides in a
// dedicated source struct, the per-producer sequence in the tuple seq.
func ringTask(src *source, seq int) task {
	return task{src: src, t: &tuple.Tuple{Seq: seq}}
}

// TestRingFIFOPerProducer drives many producers through one ring under
// -race and checks every pushed task is popped exactly once, in
// per-producer order — the property the per-source released sequence
// depends on.
func TestRingFIFOPerProducer(t *testing.T) {
	const (
		producers = 8
		perProd   = 5000
		batchMax  = 7
	)
	q := newRing(64)
	srcs := make([]*source, producers)
	for i := range srcs {
		srcs[i] = &source{name: fmt.Sprintf("p%d", i)}
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]task, 0, batchMax)
			next := 0
			for next < perProd {
				batch = batch[:0]
				n := 1 + (next+p)%batchMax
				for j := 0; j < n && next < perProd; j++ {
					batch = append(batch, ringTask(srcs[p], next))
					next++
				}
				rem := batch
				for len(rem) > 0 {
					k := q.tryPush(rem)
					rem = rem[k:]
					if len(rem) > 0 {
						if err := q.waitSpace(ctx); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(p)
	}

	seen := make([]int, producers) // next expected seq per producer
	total := 0
	done := make(chan error, 1)
	go func() {
		buf := make([]task, 32)
		for total < producers*perProd {
			n := q.popRun(buf)
			if n == 0 {
				if q.isClosed() && !q.ready() {
					done <- fmt.Errorf("ring closed with %d tasks missing", producers*perProd-total)
					return
				}
				q.park(ctx)
				continue
			}
			for i := 0; i < n; i++ {
				var p int
				if _, err := fmt.Sscanf(buf[i].src.name, "p%d", &p); err != nil {
					done <- err
					return
				}
				if got, want := buf[i].t.Seq, seen[p]; got != want {
					done <- fmt.Errorf("producer %d: popped seq %d, want %d", p, got, want)
					return
				}
				seen[p]++
				total++
			}
		}
		done <- nil
	}()
	wg.Wait()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("consumer did not drain all tasks")
	}
	if q.Len() != 0 {
		t.Fatalf("ring holds %d tasks after full drain", q.Len())
	}
}

// TestRingCapacityOne pins the degenerate ring: capacity one must still
// round-trip tasks and exercise both park paths.
func TestRingCapacityOne(t *testing.T) {
	q := newRing(1)
	if got := q.capacity(); got != 1 {
		t.Fatalf("capacity = %d, want 1", got)
	}
	src := &source{name: "s"}
	ctx := context.Background()
	done := make(chan struct{})
	const n = 1000
	go func() {
		defer close(done)
		for i := 0; i < n; {
			one := []task{ringTask(src, i)}
			if q.tryPush(one) == 1 {
				i++
				continue
			}
			if err := q.waitSpace(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	buf := make([]task, 4)
	for popped := 0; popped < n; {
		k := q.popRun(buf)
		if k == 0 {
			q.park(ctx)
			continue
		}
		for i := 0; i < k; i++ {
			if buf[i].t.Seq != popped {
				t.Fatalf("popped seq %d, want %d", buf[i].t.Seq, popped)
			}
			popped++
		}
	}
	<-done
}

// TestRingCloseStress races close against a parked consumer and checks
// the final drain still sees everything that was pushed.
func TestRingCloseStress(t *testing.T) {
	for round := 0; round < 200; round++ {
		q := newRing(8)
		src := &source{name: "s"}
		pushed := make(chan int, 1)
		go func() {
			n := 0
			for i := 0; i < 20; i++ {
				one := []task{ringTask(src, i)}
				if q.tryPush(one) == 0 {
					break // full: the consumer may already be gone
				}
				n++
			}
			pushed <- n
			q.close()
		}()
		got := 0
		buf := make([]task, 8)
		ctx := context.Background()
		for {
			n := q.popRun(buf)
			got += n
			if n == 0 {
				if q.isClosed() && !q.ready() {
					break
				}
				q.park(ctx)
			}
		}
		if want := <-pushed; got != want {
			t.Fatalf("round %d: popped %d of %d pushed tasks", round, got, want)
		}
	}
}

// TestRuntimeControlFeedCloseStress is the runtime-level -race stress the
// issue asks for: many producers feeding batches, concurrent Control
// storms on every source, then a drain racing the tail — no deadlock, no
// lost tuple, controls serialized at tuple boundaries.
func TestRuntimeControlFeedCloseStress(t *testing.T) {
	const (
		sources   = 6
		perSource = 400
		ctlBursts = 25
	)
	s, err := tuple.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	rt := New(Config{Shards: 3, QueueDepth: 4, FlushBatch: 2})
	for i := 0; i < sources; i++ {
		eng, err := core.NewDynamicEngine(core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.AddSource(fmt.Sprintf("src%d", i), eng); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Start(context.Background(), func([]Out) {}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < sources; i++ {
		name := fmt.Sprintf("src%d", i)
		wg.Add(2)
		// Feeder: batched submits with tiny queues force producer parks.
		go func(name string) {
			defer wg.Done()
			base := time.Unix(0, 0)
			batch := make([]*tuple.Tuple, 0, 3)
			for j := 0; j < perSource; j++ {
				tp, err := tuple.New(s, j, base.Add(time.Duration(j+1)*time.Millisecond), []float64{float64(j)})
				if err != nil {
					t.Error(err)
					return
				}
				batch = append(batch, tp)
				if len(batch) == cap(batch) || j == perSource-1 {
					if err := rt.SubmitBatch(name, batch); err != nil {
						t.Error(err)
						return
					}
					batch = batch[:0]
				}
			}
		}(name)
		// Controller: filter churn interleaved with the feed.
		go func(name string, idx int) {
			defer wg.Done()
			for c := 0; c < ctlBursts; c++ {
				id := fmt.Sprintf("app-%d-%d", idx, c)
				err := rt.Control(name, func(e *core.Engine) error {
					f := passAll(t, id)
					if err := e.AddFilter(f); err != nil {
						return err
					}
					return e.RemoveFilter(id)
				})
				if err != nil {
					t.Errorf("control %s: %v", id, err)
					return
				}
			}
		}(name, i)
	}
	wg.Wait()
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	var enq, proc uint64
	for _, snap := range rt.Metrics() {
		enq += snap.Enqueued
		proc += snap.Processed
	}
	if want := uint64(sources * perSource); enq != want || proc != want {
		t.Fatalf("enqueued %d processed %d, want %d each", enq, proc, want)
	}
}
