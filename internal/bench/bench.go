// Package bench is the hot-path benchmark harness behind cmd/gasf-profile
// and the CI benchmark smoke job: it measures the core engine step, the
// wire encode/decode paths and the networked serve loop with allocation
// accounting, and renders the results as the committed BENCH_hotpath.json
// so regressions are visible in review (DESIGN.md §8).
package bench

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/server"
	"gasf/internal/trace"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// Config sizes a harness run.
type Config struct {
	// Quick shrinks the workloads for CI smoke runs.
	Quick bool
	// Serve enables the in-process networked open-loop benchmark.
	Serve bool
	// Publishers/Subscribers/TuplesPerSource size the serve benchmark;
	// zero takes defaults (2/8/20000, or 2000 tuples under Quick).
	Publishers, Subscribers, TuplesPerSource int
	// MatrixProcs × MatrixShards name the cells of the open-loop
	// GOMAXPROCS × shards scaling matrix; empty skips the sweep.
	// MatrixShards defaults to MatrixProcs.
	MatrixProcs, MatrixShards []int
}

// Metric is one benchmark result.
type Metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// ServeMetric is one open-loop serve result (the headline run or one
// scaling-matrix cell).
type ServeMetric struct {
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Shards          int     `json:"shards"`
	Publishers      int     `json:"publishers"`
	Subscribers     int     `json:"subscribers"`
	TuplesPerSource int     `json:"tuples_per_source"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	TuplesPerSec    float64 `json:"tuples_per_sec"`
	DeliveriesTotal uint64  `json:"deliveries_total"`
	BytesOut        uint64  `json:"bytes_out"`
}

// Report is the BENCH_hotpath.json document.
type Report struct {
	Schema      string        `json:"schema"`
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	NumCPU      int           `json:"num_cpu"`
	CoreStepRG  Metric        `json:"core_step_rg"`
	CoreStepPS  Metric        `json:"core_step_ps"`
	WireEncode  Metric        `json:"wire_encode_transmission"`
	WireDecode  Metric        `json:"wire_decode_tuple_into"`
	Serve       *ServeMetric  `json:"serve_open_loop,omitempty"`
	ServeMatrix []ServeMetric `json:"serve_scaling_matrix,omitempty"`
	// P99Under2xOverloadMs is the loadbench -overload acceptance number
	// (the "p99_under_2x_overload" entry of BENCH_serve.json): the
	// client-observed p99 delivery latency, in milliseconds, while
	// publishers sustain twice the subscribers' drain capacity under the
	// degrade slow-consumer policy. Zero means the mode was not run.
	P99Under2xOverloadMs float64 `json:"p99_under_2x_overload,omitempty"`
	// UpstreamDedupRatio and FederationRelayP99Ms are the loadbench
	// -federated acceptance numbers (the "federation" section of
	// BENCH_serve.json): local subscriber sessions per core→edge relay
	// leg across the edge tier, and the worst edge's p99 relay delivery
	// latency in milliseconds. Zero means the mode was not run.
	UpstreamDedupRatio   float64 `json:"upstream_dedup_ratio,omitempty"`
	FederationRelayP99Ms float64 `json:"federation_relay_p99_ms,omitempty"`
}

// Run executes the harness.
func Run(cfg Config) (*Report, error) {
	rep := &Report{
		Schema:      "gasf hot-path benchmarks v1: per-tuple core step (3-filter DC1 group, NAMOS trace), wire transmission encode / tuple decode-into, open-loop networked serve",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	var err error
	if rep.CoreStepRG, err = coreStep(core.RG, cfg.Quick); err != nil {
		return nil, err
	}
	if rep.CoreStepPS, err = coreStep(core.PS, cfg.Quick); err != nil {
		return nil, err
	}
	if rep.WireEncode, err = wireEncode(); err != nil {
		return nil, err
	}
	if rep.WireDecode, err = wireDecode(); err != nil {
		return nil, err
	}
	if cfg.Serve {
		sm, err := serveOpenLoop(cfg, 0)
		if err != nil {
			return nil, err
		}
		rep.Serve = sm
	}
	shardsList := cfg.MatrixShards
	if len(shardsList) == 0 {
		shardsList = cfg.MatrixProcs
	}
	if len(cfg.MatrixProcs) > 0 {
		restore := runtime.GOMAXPROCS(0)
		defer runtime.GOMAXPROCS(restore)
		for _, p := range cfg.MatrixProcs {
			for _, sh := range shardsList {
				runtime.GOMAXPROCS(p)
				sm, err := serveOpenLoop(cfg, sh)
				if err != nil {
					return nil, fmt.Errorf("matrix cell procs=%d shards=%d: %w", p, sh, err)
				}
				rep.ServeMatrix = append(rep.ServeMatrix, *sm)
			}
		}
	}
	return rep, nil
}

// dc1Series builds the benchmark trace once.
func dc1Series(n int) (*tuple.Series, float64, error) {
	sr, err := trace.NAMOS(trace.Config{N: n, Seed: 5})
	if err != nil {
		return nil, 0, err
	}
	stat, err := sr.MeanAbsChange("fluoro")
	if err != nil {
		return nil, 0, err
	}
	return sr, stat, nil
}

func dc1Group(stat float64) ([]filter.Filter, error) {
	out := make([]filter.Filter, 3)
	for i := range out {
		mult := 1 + float64(i)*0.37
		f, err := filter.NewDC1(string(rune('A'+i)), "fluoro", mult*stat, 0.5*mult*stat)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// coreStep measures one engine Step on the DC1 trace, amortized per input
// tuple.
func coreStep(alg core.Algorithm, quick bool) (Metric, error) {
	n := 2000
	if quick {
		n = 500
	}
	sr, stat, err := dc1Series(n)
	if err != nil {
		return Metric{}, err
	}
	var failure error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			group, err := dc1Group(stat)
			if err != nil {
				failure = err
				return
			}
			res, err := core.Run(group, sr, core.Options{Algorithm: alg})
			if err != nil {
				failure = err
				return
			}
			if res.Stats.Transmissions == 0 {
				failure = fmt.Errorf("bench: degenerate run released nothing")
				return
			}
		}
	})
	if failure != nil {
		return Metric{}, failure
	}
	div := float64(sr.Len())
	return Metric{
		NsPerOp:     float64(res.NsPerOp()) / div,
		AllocsPerOp: float64(res.AllocsPerOp()) / div,
		BytesPerOp:  float64(res.AllocedBytesPerOp()) / div,
	}, nil
}

// wireEncode measures the cached labeled-transmission encode path.
func wireEncode() (Metric, error) {
	s, err := tuple.NewSchema("a", "b", "c")
	if err != nil {
		return Metric{}, err
	}
	tp, err := tuple.New(s, 7, time.Unix(3, 500), []float64{1, -2, 3})
	if err != nil {
		return Metric{}, err
	}
	dests := []string{"app-a", "app-b", "app-c"}
	var enc wire.TransmissionEncoder
	buf := make([]byte, 0, 256)
	var failure error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, failure = enc.AppendTransmission(buf[:0], 1, tp, dests)
			if failure != nil {
				return
			}
		}
	})
	return Metric{
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: float64(res.AllocsPerOp()),
		BytesPerOp:  float64(res.AllocedBytesPerOp()),
	}, failure
}

// wireDecode measures the reuse decode path.
func wireDecode() (Metric, error) {
	s, err := tuple.NewSchema("a", "b", "c")
	if err != nil {
		return Metric{}, err
	}
	tp, err := tuple.New(s, 7, time.Unix(3, 500), []float64{1, -2, 3})
	if err != nil {
		return Metric{}, err
	}
	data, err := wire.AppendTuple(nil, tp)
	if err != nil {
		return Metric{}, err
	}
	var dst tuple.Tuple
	var failure error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, failure = wire.DecodeTupleInto(&dst, s, data); failure != nil {
				return
			}
		}
	})
	return Metric{
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: float64(res.AllocsPerOp()),
		BytesPerOp:  float64(res.AllocedBytesPerOp()),
	}, failure
}

// serveOpenLoop runs an in-process networked server over loopback with
// unthrottled publishers (the BENCH_serve open-loop configuration, sized
// down) and reports ingest throughput. shards 0 leaves the runtime at
// its GOMAXPROCS default.
func serveOpenLoop(cfg Config, shards int) (*ServeMetric, error) {
	pubs, subs, tuples := cfg.Publishers, cfg.Subscribers, cfg.TuplesPerSource
	if pubs <= 0 {
		pubs = 2
	}
	if subs <= 0 {
		subs = 8
	}
	if tuples <= 0 {
		tuples = 20000
		if cfg.Quick {
			tuples = 2000
		}
	}
	srv, err := server.Start(server.Config{Engine: core.Options{ShardCount: shards}})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	addr := srv.Addr().String()
	schema, err := tuple.NewSchema("v")
	if err != nil {
		return nil, err
	}
	publishers := make([]*server.Publisher, pubs)
	for i := range publishers {
		if publishers[i], err = server.DialPublisher(addr, fmt.Sprintf("bench%d", i), schema); err != nil {
			return nil, err
		}
	}
	subscribers := make([]*server.Subscriber, subs)
	for i := range subscribers {
		source := fmt.Sprintf("bench%d", i%pubs)
		if subscribers[i], err = server.DialSubscriber(addr, fmt.Sprintf("app%d", i), source, "DC1(v, 0.5, 0)"); err != nil {
			return nil, err
		}
	}

	errCh := make(chan error, pubs+subs)
	done := make(chan struct{})
	var deliveries uint64
	countCh := make(chan uint64, subs)
	for i, sub := range subscribers {
		go func(i int, sub *server.Subscriber) {
			n := uint64(0)
			var d server.Delivery
			for {
				err := sub.RecvInto(&d)
				if err == server.ErrStreamEnded {
					break
				}
				if err != nil {
					errCh <- fmt.Errorf("subscriber %d: %w", i, err)
					break
				}
				n++
			}
			countCh <- n
		}(i, sub)
	}
	// Publishers ship pubBatch-sized bursts with one write each, the
	// same batched load-generation discipline as cmd/gasf-loadbench.
	const pubBatch = 256
	start := time.Now()
	for i, pub := range publishers {
		go func(i int, pub *server.Publisher) {
			defer func() { done <- struct{}{} }()
			vals := make([][]float64, 0, pubBatch)
			backing := make([]float64, pubBatch)
			for n := 0; n < tuples; {
				k := tuples - n
				if k > pubBatch {
					k = pubBatch
				}
				vals = vals[:0]
				for j := 0; j < k; j++ {
					backing[j] = float64(n + j)
					vals = append(vals, backing[j:j+1])
				}
				if err := pub.PublishNowBatch(vals); err != nil {
					errCh <- fmt.Errorf("publisher %d tuple %d: %w", i, n, err)
					return
				}
				n += k
			}
			if err := pub.Close(); err != nil {
				errCh <- fmt.Errorf("publisher %d close: %w", i, err)
			}
		}(i, pub)
	}
	for range publishers {
		<-done
	}
	for range subscribers {
		deliveries += <-countCh
	}
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	c := srv.Counters()
	return &ServeMetric{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Shards:          srv.Runtime().Shards(),
		Publishers:      pubs,
		Subscribers:     subs,
		TuplesPerSource: tuples,
		ElapsedSec:      elapsed.Seconds(),
		TuplesPerSec:    float64(c.TuplesIn) / elapsed.Seconds(),
		DeliveriesTotal: deliveries,
		BytesOut:        c.BytesOut,
	}, nil
}

// Compare reports regressions of cur against base beyond the fractional
// threshold (0.3 = 30% slower, or 30% more allocs). It returns one line
// per regression; an empty slice means within budget.
func Compare(cur, base *Report, threshold float64) []string {
	var out []string
	check := func(name string, cur, base float64) {
		if base <= 0 {
			return
		}
		if cur > base*(1+threshold) {
			out = append(out, fmt.Sprintf("%s regressed: %.1f vs baseline %.1f (+%.0f%%, threshold %.0f%%)",
				name, cur, base, 100*(cur/base-1), 100*threshold))
		}
	}
	check("core_step_rg ns/op", cur.CoreStepRG.NsPerOp, base.CoreStepRG.NsPerOp)
	check("core_step_rg allocs/op", cur.CoreStepRG.AllocsPerOp, base.CoreStepRG.AllocsPerOp)
	check("core_step_ps ns/op", cur.CoreStepPS.NsPerOp, base.CoreStepPS.NsPerOp)
	check("core_step_ps allocs/op", cur.CoreStepPS.AllocsPerOp, base.CoreStepPS.AllocsPerOp)
	check("wire_encode ns/op", cur.WireEncode.NsPerOp, base.WireEncode.NsPerOp)
	check("wire_encode allocs/op", cur.WireEncode.AllocsPerOp, base.WireEncode.AllocsPerOp)
	check("wire_decode ns/op", cur.WireDecode.NsPerOp, base.WireDecode.NsPerOp)
	check("wire_decode allocs/op", cur.WireDecode.AllocsPerOp, base.WireDecode.AllocsPerOp)
	// Bounded latency under overload: like ns/op, higher is worse. A
	// baseline (or current run) without the -overload entry skips the
	// gate rather than failing it.
	if cur.P99Under2xOverloadMs > 0 {
		check("p99_under_2x_overload ms", cur.P99Under2xOverloadMs, base.P99Under2xOverloadMs)
	}
	// Federation: relay p99 gates like any latency (higher is worse);
	// the dedup ratio gates inverted — a LOWER ratio means the edge tier
	// lost upstream sharing, the one thing it exists to provide.
	if cur.FederationRelayP99Ms > 0 {
		check("federation_relay_p99 ms", cur.FederationRelayP99Ms, base.FederationRelayP99Ms)
	}
	if cur.UpstreamDedupRatio > 0 && base.UpstreamDedupRatio > 0 &&
		cur.UpstreamDedupRatio < base.UpstreamDedupRatio*(1-threshold) {
		out = append(out, fmt.Sprintf("upstream_dedup_ratio regressed: %.2f vs baseline %.2f (-%.0f%%, threshold %.0f%%)",
			cur.UpstreamDedupRatio, base.UpstreamDedupRatio,
			100*(1-cur.UpstreamDedupRatio/base.UpstreamDedupRatio), 100*threshold))
	}
	checkServe := func(name string, cur, base *ServeMetric) {
		if cur == nil || base == nil || base.TuplesPerSec <= 0 {
			return
		}
		if cur.TuplesPerSec < base.TuplesPerSec*(1-threshold) {
			out = append(out, fmt.Sprintf("%s regressed: %.0f tuples/s vs baseline %.0f (-%.0f%%, threshold %.0f%%)",
				name, cur.TuplesPerSec, base.TuplesPerSec,
				100*(1-cur.TuplesPerSec/base.TuplesPerSec), 100*threshold))
		}
	}
	checkServe("serve_open_loop", cur.Serve, base.Serve)
	// Matrix cells gate against the baseline cell with the same
	// (GOMAXPROCS, shards) coordinates; cells absent from the baseline
	// are informational until the baseline is refreshed.
	for i := range cur.ServeMatrix {
		cc := &cur.ServeMatrix[i]
		for j := range base.ServeMatrix {
			bc := &base.ServeMatrix[j]
			if bc.GOMAXPROCS == cc.GOMAXPROCS && bc.Shards == cc.Shards {
				checkServe(fmt.Sprintf("serve_matrix[procs=%d,shards=%d]", cc.GOMAXPROCS, cc.Shards), cc, bc)
				break
			}
		}
	}
	return out
}
