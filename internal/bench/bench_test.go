package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunQuick exercises the whole harness at smoke size and sanity-checks
// the report: the micro benchmarks must produce positive timings, the wire
// paths must be allocation-free, and the report must round-trip as JSON.
func TestRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke run")
	}
	rep, err := Run(Config{Quick: true, Serve: true, Publishers: 1, Subscribers: 2, TuplesPerSource: 400})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoreStepRG.NsPerOp <= 0 || rep.CoreStepPS.NsPerOp <= 0 {
		t.Fatalf("degenerate core timings: %+v %+v", rep.CoreStepRG, rep.CoreStepPS)
	}
	if rep.WireEncode.AllocsPerOp != 0 {
		t.Errorf("wire encode allocates %.2f allocs/op, want 0", rep.WireEncode.AllocsPerOp)
	}
	if rep.WireDecode.AllocsPerOp != 0 {
		t.Errorf("wire decode-into allocates %.2f allocs/op, want 0", rep.WireDecode.AllocsPerOp)
	}
	if rep.Serve == nil || rep.Serve.TuplesPerSec <= 0 {
		t.Fatalf("serve benchmark missing or degenerate: %+v", rep.Serve)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Serve == nil || back.Serve.TuplesPerSec != rep.Serve.TuplesPerSec {
		t.Fatal("report did not round-trip")
	}
}

// TestCompare covers the regression comparator's directions and threshold.
func TestCompare(t *testing.T) {
	base := &Report{
		CoreStepRG: Metric{NsPerOp: 1000, AllocsPerOp: 4},
		WireEncode: Metric{NsPerOp: 50},
		Serve:      &ServeMetric{TuplesPerSec: 100000},
	}
	same := &Report{
		CoreStepRG: Metric{NsPerOp: 1100, AllocsPerOp: 4},
		WireEncode: Metric{NsPerOp: 55},
		Serve:      &ServeMetric{TuplesPerSec: 95000},
	}
	if regs := Compare(same, base, 0.30); len(regs) != 0 {
		t.Fatalf("within-threshold run flagged: %v", regs)
	}
	bad := &Report{
		CoreStepRG: Metric{NsPerOp: 1500, AllocsPerOp: 9},
		WireEncode: Metric{NsPerOp: 50},
		Serve:      &ServeMetric{TuplesPerSec: 40000},
	}
	regs := Compare(bad, base, 0.30)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions (rg ns, rg allocs, serve), got %d: %v", len(regs), regs)
	}
	// Faster-than-baseline must never flag.
	fast := &Report{
		CoreStepRG: Metric{NsPerOp: 100, AllocsPerOp: 1},
		Serve:      &ServeMetric{TuplesPerSec: 900000},
	}
	if regs := Compare(fast, base, 0.30); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

// TestCompareMatrix covers the scaling-matrix gate: cells match on
// (GOMAXPROCS, shards), regress on slower throughput, and cells absent
// from the baseline stay informational.
func TestCompareMatrix(t *testing.T) {
	base := &Report{
		CoreStepRG: Metric{NsPerOp: 1000},
		ServeMatrix: []ServeMetric{
			{GOMAXPROCS: 1, Shards: 1, TuplesPerSec: 100000},
			{GOMAXPROCS: 4, Shards: 4, TuplesPerSec: 300000},
		},
	}
	cur := &Report{
		CoreStepRG: Metric{NsPerOp: 1000},
		ServeMatrix: []ServeMetric{
			{GOMAXPROCS: 1, Shards: 1, TuplesPerSec: 95000},  // within threshold
			{GOMAXPROCS: 4, Shards: 4, TuplesPerSec: 150000}, // regressed
			{GOMAXPROCS: 2, Shards: 2, TuplesPerSec: 1},      // no baseline cell
		},
	}
	regs := Compare(cur, base, 0.30)
	if len(regs) != 1 {
		t.Fatalf("want exactly the procs=4 cell flagged, got %v", regs)
	}
	if want := "serve_matrix[procs=4,shards=4]"; !strings.Contains(regs[0], want) {
		t.Fatalf("regression %q does not name %s", regs[0], want)
	}
}
