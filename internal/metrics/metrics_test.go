package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	if s.StdDev != 2 {
		t.Errorf("StdDev = %g, want 2", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Error("empty sample should summarize to zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2} // unsorted input allowed
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.5, 2}, {1, 3}, {0.25, 1.5}, {0.75, 2.5}, {-1, 1}, {2, 3},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(empty) should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestBoxPlotOutliers(t *testing.T) {
	// Tight cluster with one extreme point.
	xs := []float64{10, 11, 12, 13, 14, 100}
	b := NewBoxPlot(xs)
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.HighWhisker != 14 {
		t.Errorf("HighWhisker = %g, want 14", b.HighWhisker)
	}
	if b.LowWhisker != 10 {
		t.Errorf("LowWhisker = %g, want 10", b.LowWhisker)
	}
	if b.Median != 12.5 {
		t.Errorf("Median = %g, want 12.5", b.Median)
	}
	if !strings.Contains(b.String(), "outliers=1") {
		t.Errorf("String() = %q missing outlier count", b.String())
	}
}

func TestBoxPlotNoOutliers(t *testing.T) {
	b := NewBoxPlot([]float64{1, 2, 3, 4, 5})
	if len(b.Outliers) != 0 {
		t.Errorf("Outliers = %v, want none", b.Outliers)
	}
	if b.LowWhisker != 1 || b.HighWhisker != 5 {
		t.Errorf("whiskers = %g..%g, want 1..5", b.LowWhisker, b.HighWhisker)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int8, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		qa := float64(aRaw) / 255
		qb := float64(bRaw) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return va <= vb+1e-9 && va >= sorted[0]-1e-9 && vb <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: box-plot whiskers always bracket the median, and every point is
// either within the whiskers or an outlier.
func TestBoxPlotPartitionProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		b := NewBoxPlot(xs)
		if b.LowWhisker > b.Median || b.HighWhisker < b.Median {
			return false
		}
		outlier := make(map[float64]int)
		for _, o := range b.Outliers {
			outlier[o]++
		}
		for _, x := range xs {
			if x >= b.LowWhisker && x <= b.HighWhisker {
				continue
			}
			if outlier[x] == 0 {
				return false
			}
			outlier[x]--
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDurations(t *testing.T) {
	got := Durations([]time.Duration{time.Millisecond, 2500 * time.Microsecond})
	if got[0] != 1 || got[1] != 2.5 {
		t.Errorf("Durations = %v, want [1 2.5]", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("algo", "O/I")
	tb.AddRow("RG", "0.3635")
	tb.AddRow("SI") // short row padded
	out := tb.String()
	if !strings.Contains(out, "algo") || !strings.Contains(out, "0.3635") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList(" 1, 4,8 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 8 {
		t.Fatalf("ParseIntList = %v, %v", got, err)
	}
	if got, err := ParseIntList(""); err != nil || got != nil {
		t.Fatalf("empty input = %v, %v, want nil, nil", got, err)
	}
	for _, bad := range []string{"0", "-1", "x", "1,,y"} {
		if _, err := ParseIntList(bad); err == nil {
			t.Errorf("ParseIntList(%q) accepted", bad)
		}
	}
}
