// Package metrics provides the statistics used by the paper's evaluation
// (§4.4): output/input ratios, output ratios relative to the
// self-interested baseline, and the box-plot summaries (minimum, quartiles,
// median, maximum, 1.5·IQR outliers) used in Figs 4.3-4.10 and 4.17.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Summary holds basic aggregates of a sample.
type Summary struct {
	N            int
	Mean, Median float64
	Min, Max     float64
	StdDev       float64
}

// Summarize computes the summary of a sample. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample using linear
// interpolation between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxPlot is the five-number summary with 1.5·IQR outliers, matching the
// paper's plots: "Any data observation which lies more than 1.5·IQR lower
// than the first quartile or 1.5·IQR higher than the third quartile is
// considered an outlier."
type BoxPlot struct {
	Q1, Median, Q3 float64
	// LowWhisker and HighWhisker are the extreme non-outlier values.
	LowWhisker, HighWhisker float64
	Outliers                []float64
}

// NewBoxPlot computes the box plot of a sample.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	b := BoxPlot{
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.LowWhisker, b.HighWhisker = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		b.LowWhisker = math.Min(b.LowWhisker, x)
		b.HighWhisker = math.Max(b.HighWhisker, x)
	}
	sort.Float64s(b.Outliers)
	return b
}

// String renders the box plot on one line.
func (b BoxPlot) String() string {
	s := fmt.Sprintf("[%.4g | %.4g %.4g %.4g | %.4g]", b.LowWhisker, b.Q1, b.Median, b.Q3, b.HighWhisker)
	if len(b.Outliers) > 0 {
		s += fmt.Sprintf(" outliers=%d", len(b.Outliers))
	}
	return s
}

// Durations converts a duration sample to float64 milliseconds for the
// statistics helpers.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Table is a minimal fixed-width text table for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// ParseIntList reads a comma-separated list of positive ints (the
// benchmark commands' GOMAXPROCS/shard-list flag syntax); empty input
// returns nil.
func ParseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("metrics: bad list value %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
