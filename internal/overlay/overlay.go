// Package overlay simulates the peer-to-peer overlay infrastructure the
// prototype runs on (§4.1.1): a ring of nodes with DHT-style finger
// routing in the spirit of Pastry/Scribe, per-link delay and bandwidth
// parameters, and key-based rendezvous routing. The multicast layer builds
// Scribe-like trees on top of it (internal/multicast).
//
// The simulator is in-process and deterministic; link delays and
// capacities default to values calibrated against the paper's Emulab
// deployments (1-5 Mbps links, §4.1.2/§5.4).
//
// The ring's rendezvous primitive (HashKey plus successor ownership) is
// promoted to the real networked deployment by internal/federate, which
// places sources on core brokers and congregates each group's relay
// fan-out on one edge with the same arithmetic. The simulation-only
// ownership and delay-accounting paths that federate superseded are
// gone from here; what remains is exactly what the in-process
// simulations (multicast, solar, experiments) still route with.
package overlay

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"
)

// NodeID is a position on the identifier ring.
type NodeID uint32

// HashKey maps an arbitrary string key (a group name, a source name) to a
// ring position, for rendezvous routing.
func HashKey(key string) NodeID {
	h := fnv.New32a()
	// fnv never fails.
	_, _ = h.Write([]byte(key))
	return NodeID(h.Sum32())
}

// Link models one overlay hop.
type Link struct {
	// Delay is the one-way propagation plus forwarding delay.
	Delay time.Duration
	// Bandwidth is the link capacity in bits per second.
	Bandwidth float64
}

// DefaultLink matches the Emulab setup of §5.4: 5 Mbps, a few ms per hop.
var DefaultLink = Link{Delay: 5 * time.Millisecond, Bandwidth: 5e6}

// Network is a static overlay of nodes on an identifier ring. Each node
// knows its ring successor and a set of finger shortcuts (successors of
// id + 2^k), giving O(log n) greedy routing.
type Network struct {
	ids   []NodeID // sorted ring positions
	names map[NodeID]string
	link  Link
	// neighbors lists each node's routing candidates (successor +
	// fingers), precomputed.
	neighbors map[NodeID][]NodeID
}

// Config parameterizes a network.
type Config struct {
	// Nodes is the number of overlay nodes; the paper's deployments use
	// 5-7.
	Nodes int
	// Link is applied to every hop; zero value means DefaultLink.
	Link Link
	// Seed perturbs node placement on the ring.
	Seed int64
}

// New builds a network of cfg.Nodes nodes named "node0".."nodeN-1" spread
// deterministically around the ring.
func New(cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("overlay: need at least 2 nodes, got %d", cfg.Nodes)
	}
	link := cfg.Link
	if link.Delay == 0 && link.Bandwidth == 0 {
		link = DefaultLink
	}
	if link.Delay < 0 || link.Bandwidth <= 0 {
		return nil, fmt.Errorf("overlay: invalid link %+v", link)
	}
	n := &Network{
		names:     make(map[NodeID]string, cfg.Nodes),
		link:      link,
		neighbors: make(map[NodeID][]NodeID, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%d", i)
		id := HashKey(fmt.Sprintf("%s#%d", name, cfg.Seed))
		for {
			if _, dup := n.names[id]; !dup {
				break
			}
			id++ // resolve rare collisions deterministically
		}
		n.names[id] = name
		n.ids = append(n.ids, id)
	}
	sort.Slice(n.ids, func(i, j int) bool { return n.ids[i] < n.ids[j] })
	for _, id := range n.ids {
		n.neighbors[id] = n.fingerTable(id)
	}
	return n, nil
}

// Nodes returns the ring positions in order.
func (n *Network) Nodes() []NodeID {
	cp := make([]NodeID, len(n.ids))
	copy(cp, n.ids)
	return cp
}

// Name returns the human-readable name of a node.
func (n *Network) Name(id NodeID) string { return n.names[id] }

// Link returns the per-hop link parameters.
func (n *Network) Link() Link { return n.link }

// NodeByIndex returns the i-th node in ring order; convenient for placing
// sources and applications deterministically.
func (n *Network) NodeByIndex(i int) NodeID {
	return n.ids[((i%len(n.ids))+len(n.ids))%len(n.ids)]
}

// successorOf returns the first node at or clockwise after the ring
// position k.
func (n *Network) successorOf(k NodeID) NodeID {
	i := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= k })
	if i == len(n.ids) {
		i = 0
	}
	return n.ids[i]
}

// fingerTable computes a node's routing candidates: the ring successor
// plus successors of id+2^k for k = 4..31 (small powers collapse onto the
// successor for small rings).
func (n *Network) fingerTable(id NodeID) []NodeID {
	seen := map[NodeID]bool{id: true}
	var out []NodeID
	add := func(c NodeID) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	add(n.successorOf(id + 1))
	for k := uint(4); k < 32; k++ {
		add(n.successorOf(id + 1<<k))
	}
	return out
}

// clockwise returns the clockwise distance from a to b on the ring.
func clockwise(a, b NodeID) uint32 { return uint32(b - a) }

// Route returns the hop sequence from one node to another using greedy
// clockwise finger routing: each hop moves to the neighbor with the
// smallest remaining clockwise distance to the target. The result includes
// both endpoints. Route(from, from) returns just the node itself.
func (n *Network) Route(from, to NodeID) ([]NodeID, error) {
	if _, ok := n.names[from]; !ok {
		return nil, fmt.Errorf("overlay: unknown node %d", from)
	}
	if _, ok := n.names[to]; !ok {
		return nil, fmt.Errorf("overlay: unknown node %d", to)
	}
	path := []NodeID{from}
	cur := from
	for cur != to {
		best := cur
		bestDist := clockwise(cur, to)
		for _, nb := range n.neighbors[cur] {
			if d := clockwise(nb, to); d < bestDist || (nb == to) {
				best, bestDist = nb, d
				if nb == to {
					break
				}
			}
		}
		if best == cur {
			// Greedy clockwise routing on a ring with successor
			// links always makes progress; reaching here is a bug.
			return nil, fmt.Errorf("overlay: routing stuck at %s toward %s", n.names[cur], n.names[to])
		}
		cur = best
		path = append(path, cur)
		if len(path) > len(n.ids)+1 {
			return nil, fmt.Errorf("overlay: routing loop from %s to %s", n.names[from], n.names[to])
		}
	}
	return path, nil
}
