package overlay

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 1}); err == nil {
		t.Error("1-node network should fail")
	}
	if _, err := New(Config{Nodes: 3, Link: Link{Delay: -time.Second, Bandwidth: 1}}); err == nil {
		t.Error("negative delay should fail")
	}
	if _, err := New(Config{Nodes: 3, Link: Link{Delay: time.Millisecond, Bandwidth: 0}}); err == nil {
		t.Error("zero bandwidth should fail")
	}
	n, err := New(Config{Nodes: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Nodes()); got != 7 {
		t.Errorf("Nodes = %d, want 7", got)
	}
	if n.Link() != DefaultLink {
		t.Errorf("Link = %+v, want default", n.Link())
	}
}

func TestRouteReachesEveryPair(t *testing.T) {
	n, err := New(Config{Nodes: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids := n.Nodes()
	for _, from := range ids {
		for _, to := range ids {
			path, err := n.Route(from, to)
			if err != nil {
				t.Fatalf("Route(%s, %s): %v", n.Name(from), n.Name(to), err)
			}
			if path[0] != from || path[len(path)-1] != to {
				t.Fatalf("path endpoints wrong: %v", path)
			}
			if from == to && len(path) != 1 {
				t.Errorf("self route has %d hops", len(path)-1)
			}
			if len(path)-1 > len(ids) {
				t.Errorf("path longer than node count: %d", len(path)-1)
			}
		}
	}
}

func TestRouteUnknownNode(t *testing.T) {
	n, err := New(Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Route(NodeID(1), n.Nodes()[0]); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := n.Route(n.Nodes()[0], NodeID(1)); err == nil {
		t.Error("unknown target should fail")
	}
}

func TestNodeByIndexWraps(t *testing.T) {
	n, err := New(Config{Nodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n.NodeByIndex(0) != n.NodeByIndex(5) {
		t.Error("NodeByIndex should wrap modulo node count")
	}
	if n.NodeByIndex(-1) != n.NodeByIndex(4) {
		t.Error("NodeByIndex should handle negatives")
	}
}

// Property: routing always terminates with a valid path for random network
// sizes and node pairs.
func TestRoutingTerminatesProperty(t *testing.T) {
	f := func(sizeRaw uint8, seed int64, aRaw, bRaw uint8) bool {
		size := 2 + int(sizeRaw%30)
		n, err := New(Config{Nodes: size, Seed: seed})
		if err != nil {
			return false
		}
		ids := n.Nodes()
		from := ids[int(aRaw)%len(ids)]
		to := ids[int(bRaw)%len(ids)]
		path, err := n.Route(from, to)
		if err != nil {
			return false
		}
		// Hops must all be known nodes and strictly progress.
		for i := 1; i < len(path); i++ {
			if _, ok := n.names[path[i]]; !ok {
				return false
			}
			if clockwise(path[i], to) >= clockwise(path[i-1], to) && path[i] != to {
				return false
			}
		}
		return path[len(path)-1] == to
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashKey("x") != HashKey("x") {
		t.Error("HashKey not deterministic")
	}
	if HashKey("x") == HashKey("y") {
		t.Error("suspicious collision between distinct short keys")
	}
}
