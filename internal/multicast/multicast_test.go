package multicast

import (
	"testing"
	"time"

	"gasf/internal/overlay"
)

func testNet(t *testing.T, nodes int) *overlay.Network {
	t.Helper()
	n, err := overlay.New(overlay.Config{Nodes: nodes, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func subs(net *overlay.Network, apps ...string) map[string]overlay.NodeID {
	m := make(map[string]overlay.NodeID, len(apps))
	for i, a := range apps {
		m[a] = net.NodeByIndex(i + 1)
	}
	return m
}

func TestBuildTreeValidation(t *testing.T) {
	net := testNet(t, 5)
	if _, err := BuildTree(nil, net.NodeByIndex(0), subs(net, "a")); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := BuildTree(net, net.NodeByIndex(0), nil); err == nil {
		t.Error("empty membership should fail")
	}
	tr, err := BuildTree(net, net.NodeByIndex(0), subs(net, "a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Members(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Members = %v", got)
	}
	if tr.Root() != net.NodeByIndex(0) {
		t.Error("wrong root")
	}
}

func TestMulticastDeliversToExactDestinations(t *testing.T) {
	net := testNet(t, 8)
	tr, err := BuildTree(net, net.NodeByIndex(0), subs(net, "A", "B", "C"))
	if err != nil {
		t.Fatal(err)
	}
	acct := NewAccounting()
	ds, err := tr.Multicast([]string{"A", "C"}, 100, acct)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].App != "A" || ds[1].App != "C" {
		t.Fatalf("deliveries = %v", ds)
	}
	for _, d := range ds {
		if d.Delay <= 0 {
			t.Errorf("delivery %s has non-positive delay %v", d.App, d.Delay)
		}
	}
	if acct.TotalMessages() == 0 {
		t.Error("no link traffic recorded")
	}
}

func TestMulticastUnknownMember(t *testing.T) {
	net := testNet(t, 5)
	tr, err := BuildTree(net, net.NodeByIndex(0), subs(net, "A"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Multicast([]string{"nope"}, 10, nil); err == nil {
		t.Error("unknown destination should fail")
	}
	if ds, err := tr.Multicast(nil, 10, nil); err != nil || ds != nil {
		t.Error("empty destination list should be a no-op")
	}
}

// TestSharedLinksCountedOnce: the defining property of multicast — a tuple
// going to several subscribers behind the same branch crosses the shared
// links once.
func TestSharedLinksCountedOnce(t *testing.T) {
	net := testNet(t, 10)
	members := subs(net, "A", "B", "C", "D", "E")
	tr, err := BuildTree(net, net.NodeByIndex(0), members)
	if err != nil {
		t.Fatal(err)
	}
	all := NewAccounting()
	if _, err := tr.Multicast([]string{"A", "B", "C", "D", "E"}, 100, all); err != nil {
		t.Fatal(err)
	}
	separate := NewAccounting()
	for _, app := range []string{"A", "B", "C", "D", "E"} {
		if _, err := tr.Multicast([]string{app}, 100, separate); err != nil {
			t.Fatal(err)
		}
	}
	if all.TotalBytes() >= separate.TotalBytes() {
		t.Errorf("multicast bytes %d not below unicast-sum bytes %d",
			all.TotalBytes(), separate.TotalBytes())
	}
}

// TestDelayGrowsWithDepth: a subscriber farther down the tree sees more
// delay than one at the root's child.
func TestDelayGrowsWithDepth(t *testing.T) {
	net, err := overlay.New(overlay.Config{Nodes: 12, Seed: 2,
		Link: overlay.Link{Delay: 10 * time.Millisecond, Bandwidth: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	members := make(map[string]overlay.NodeID)
	for i := 1; i < 12; i++ {
		members[string(rune('A'+i-1))] = net.NodeByIndex(i)
	}
	tr, err := BuildTree(net, net.NodeByIndex(0), members)
	if err != nil {
		t.Fatal(err)
	}
	apps := tr.Members()
	ds, err := tr.Multicast(apps, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	minD, maxD := ds[0].Delay, ds[0].Delay
	for _, d := range ds {
		if d.Delay < minD {
			minD = d.Delay
		}
		if d.Delay > maxD {
			maxD = d.Delay
		}
	}
	if maxD == minD {
		t.Skip("all members at equal depth for this seed; no depth contrast")
	}
	if maxD < 2*minD {
		t.Logf("depth contrast is mild: min %v max %v", minD, maxD)
	}
}

func TestAccountingAggregates(t *testing.T) {
	a := NewAccounting()
	k1 := LinkKey{From: 1, To: 2}
	k2 := LinkKey{From: 2, To: 3}
	a.add(k1, 100)
	a.add(k1, 100)
	a.add(k2, 50)
	if got := a.TotalMessages(); got != 3 {
		t.Errorf("TotalMessages = %d, want 3", got)
	}
	if got := a.TotalBytes(); got != 250 {
		t.Errorf("TotalBytes = %d, want 250", got)
	}
	busiest, n := a.BusiestLink()
	if busiest != k1 || n != 200 {
		t.Errorf("BusiestLink = %v %d, want %v 200", busiest, n, k1)
	}
	empty := NewAccounting()
	if _, n := empty.BusiestLink(); n != 0 {
		t.Errorf("empty BusiestLink bytes = %d", n)
	}
}
