// Package multicast implements the application-level multicast service the
// engine's output feeds into (§1.2, §2.4.3): Scribe-style trees built over
// the overlay (each member routes toward the group's rendezvous root and
// the reverse paths form the tree), tuple-level destination labeling so a
// tuple crosses any link at most once, and per-link traffic accounting
// used by the bandwidth experiments.
package multicast

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gasf/internal/overlay"
)

// LinkKey identifies a directed overlay link.
type LinkKey struct {
	From, To overlay.NodeID
}

// Accounting aggregates traffic over a run. It is safe for concurrent use.
//
// Two views are kept. The wired view counts each directed link crossing
// (messages/bytes per link). The wireless view counts each forwarding
// node's sends: in the multi-hop wireless mesh the paper targets, a node
// transmits a tuple once on the shared medium no matter how many tree
// children need it, so the node-send count is the bandwidth measure that
// group-aware filtering minimizes.
type Accounting struct {
	mu        sync.Mutex
	messages  map[LinkKey]int
	bytes     map[LinkKey]int64
	nodeSends map[overlay.NodeID]int
	nodeBytes map[overlay.NodeID]int64
}

// NewAccounting creates an empty accounting ledger.
func NewAccounting() *Accounting {
	return &Accounting{
		messages:  make(map[LinkKey]int),
		bytes:     make(map[LinkKey]int64),
		nodeSends: make(map[overlay.NodeID]int),
		nodeBytes: make(map[overlay.NodeID]int64),
	}
}

func (a *Accounting) add(k LinkKey, sizeBytes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.messages[k]++
	a.bytes[k] += int64(sizeBytes)
}

func (a *Accounting) addSend(n overlay.NodeID, sizeBytes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nodeSends[n]++
	a.nodeBytes[n] += int64(sizeBytes)
}

// WirelessBytes returns the total bytes transmitted on the shared medium:
// one send per forwarding node per multicast payload.
func (a *Accounting) WirelessBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total int64
	for _, b := range a.nodeBytes {
		total += b
	}
	return total
}

// NodeSends returns the number of medium transmissions by one node (the
// source node's count is the group's total output demand).
func (a *Accounting) NodeSends(n overlay.NodeID) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nodeSends[n]
}

// TotalMessages returns the number of link crossings recorded.
func (a *Accounting) TotalMessages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, n := range a.messages {
		total += n
	}
	return total
}

// TotalBytes returns the bytes that crossed links.
func (a *Accounting) TotalBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total int64
	for _, n := range a.bytes {
		total += n
	}
	return total
}

// BusiestLink returns the link with the most bytes and its byte count.
func (a *Accounting) BusiestLink() (LinkKey, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var bestKey LinkKey
	var best int64 = -1
	// Deterministic scan order.
	keys := make([]LinkKey, 0, len(a.bytes))
	for k := range a.bytes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, k := range keys {
		if a.bytes[k] > best {
			bestKey, best = k, a.bytes[k]
		}
	}
	if best < 0 {
		best = 0
	}
	return bestKey, best
}

// Tree is a Scribe-style multicast tree rooted at the source's node. Each
// subscriber joined by routing toward the root; tree edges are the reverse
// of those join paths.
type Tree struct {
	net  *overlay.Network
	root overlay.NodeID
	// children maps a node to its downstream tree neighbors.
	children map[overlay.NodeID][]overlay.NodeID
	// memberNode maps a subscriber (application ID) to its node.
	memberNode map[string]overlay.NodeID
	// depth caches hop counts from the root.
	depth map[overlay.NodeID]int
}

// BuildTree constructs the multicast tree for one group: subscribers is a
// map from application ID to the node hosting it. The root is typically
// the source node, so forwarding starts where the group-aware filters run.
func BuildTree(net *overlay.Network, root overlay.NodeID, subscribers map[string]overlay.NodeID) (*Tree, error) {
	if net == nil {
		return nil, fmt.Errorf("multicast: nil network")
	}
	if len(subscribers) == 0 {
		return nil, fmt.Errorf("multicast: tree needs at least one subscriber")
	}
	t := &Tree{
		net:        net,
		root:       root,
		children:   make(map[overlay.NodeID][]overlay.NodeID),
		memberNode: make(map[string]overlay.NodeID, len(subscribers)),
		depth:      map[overlay.NodeID]int{root: 0},
	}
	edge := make(map[LinkKey]bool)
	// Deterministic join order.
	apps := make([]string, 0, len(subscribers))
	for app := range subscribers {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		node := subscribers[app]
		t.memberNode[app] = node
		// Join: route from the member toward the root; reversing the
		// path gives the delivery branch root -> ... -> member.
		path, err := net.Route(node, root)
		if err != nil {
			return nil, fmt.Errorf("multicast: joining %s: %w", app, err)
		}
		for i := len(path) - 1; i > 0; i-- {
			parent, child := path[i], path[i-1]
			k := LinkKey{From: parent, To: child}
			if !edge[k] {
				edge[k] = true
				t.children[parent] = append(t.children[parent], child)
			}
		}
	}
	// Compute depths by walking from the root.
	var walk func(n overlay.NodeID)
	walk = func(n overlay.NodeID) {
		for _, c := range t.children[n] {
			if _, seen := t.depth[c]; !seen {
				t.depth[c] = t.depth[n] + 1
				walk(c)
			}
		}
	}
	walk(root)
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() overlay.NodeID { return t.root }

// HasMember reports whether the application is a member of this tree.
func (t *Tree) HasMember(app string) bool {
	_, ok := t.memberNode[app]
	return ok
}

// Members returns the subscriber IDs in sorted order.
func (t *Tree) Members() []string {
	out := make([]string, 0, len(t.memberNode))
	for app := range t.memberNode {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Delivery reports one subscriber's receipt of a multicast payload.
type Delivery struct {
	App   string
	Node  overlay.NodeID
	Delay time.Duration
}

// Multicast sends one payload of sizeBytes to the given destination
// subscribers (tuple-level multicast: every payload may have a different
// destination set, §2.2.1). The payload crosses each tree link at most
// once — links are shared by all destinations below them — and the
// returned deliveries carry per-destination delays. Traffic is recorded in
// acct when non-nil.
func (t *Tree) Multicast(dests []string, sizeBytes int, acct *Accounting) ([]Delivery, error) {
	return t.MulticastSized(dests, func([]string) int { return sizeBytes }, acct)
}

// MulticastSized is Multicast with per-branch message sizing: sizeBelow
// receives the (sorted) destinations reachable through a branch and
// returns the bytes the message occupies on that hop. This models label
// pruning at forwarding nodes — a tuple headed for {A, B, C} carries only
// {A}'s label down A's branch — which is what makes destination-labeled
// multicast cheaper than unicast fan-out on every topology.
func (t *Tree) MulticastSized(dests []string, sizeBelow func(dests []string) int, acct *Accounting) ([]Delivery, error) {
	if len(dests) == 0 {
		return nil, nil
	}
	// Destination nodes and per-node destination apps.
	nodeApps := make(map[overlay.NodeID][]string)
	for _, app := range dests {
		node, ok := t.memberNode[app]
		if !ok {
			return nil, fmt.Errorf("multicast: %q is not a member of this group", app)
		}
		nodeApps[node] = append(nodeApps[node], app)
	}
	var deliveries []Delivery
	// walk returns the destinations at or below n; deliveries record the
	// accumulated delay of the path that reached them.
	var walk func(n overlay.NodeID, delay time.Duration) []string
	walk = func(n overlay.NodeID, delay time.Duration) []string {
		var below []string
		if apps, ok := nodeApps[n]; ok {
			sorted := make([]string, len(apps))
			copy(sorted, apps)
			sort.Strings(sorted)
			for _, app := range sorted {
				deliveries = append(deliveries, Delivery{App: app, Node: n, Delay: delay})
			}
			below = append(below, sorted...)
		}
		var childDests []string
		for _, c := range t.children[n] {
			// The hop size depends on the labels carried down this
			// branch; discover the branch's destinations before
			// charging the hop.
			branch := t.collectBelow(c, nodeApps)
			if len(branch) == 0 {
				continue
			}
			size := sizeBelow(branch)
			hop := t.net.Link().Delay +
				time.Duration(float64(size*8)/t.net.Link().Bandwidth*float64(time.Second))
			below = append(below, walk(c, delay+hop)...)
			childDests = append(childDests, branch...)
			if acct != nil {
				acct.add(LinkKey{From: n, To: c}, size)
			}
		}
		if len(childDests) > 0 && acct != nil {
			// Wireless view: one medium transmission serves every
			// needed child; it carries the union of the branches'
			// labels (each child prunes on forwarding).
			acct.addSend(n, sizeBelow(sortedUnion(childDests)))
		}
		return below
	}
	walk(t.root, 0)
	if len(deliveries) != len(dests) {
		return nil, fmt.Errorf("multicast: delivered %d of %d destinations (unreachable members)", len(deliveries), len(dests))
	}
	sort.Slice(deliveries, func(i, j int) bool { return deliveries[i].App < deliveries[j].App })
	return deliveries, nil
}

// collectBelow gathers the destination apps at or below a node, sorted.
func (t *Tree) collectBelow(n overlay.NodeID, nodeApps map[overlay.NodeID][]string) []string {
	var out []string
	var rec func(m overlay.NodeID)
	rec = func(m overlay.NodeID) {
		out = append(out, nodeApps[m]...)
		for _, c := range t.children[m] {
			rec(c)
		}
	}
	rec(n)
	sort.Strings(out)
	return out
}

// sortedUnion deduplicates and sorts app labels.
func sortedUnion(apps []string) []string {
	seen := make(map[string]bool, len(apps))
	out := make([]string, 0, len(apps))
	for _, a := range apps {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}
