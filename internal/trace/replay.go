package trace

import (
	"context"
	"time"

	"gasf/internal/tuple"
)

// Replayer turns a finite Series back into a live stream, the way the
// prototype replays NAMOS traces as Solar sources (§4.1.2). It supports two
// pacing modes:
//
//   - paced (Realtime=true): tuples are emitted observing their original
//     inter-arrival intervals, scaled by Speedup;
//   - unpaced (Realtime=false): tuples are emitted as fast as the consumer
//     drains them, which is what the deterministic virtual-clock experiments
//     use.
type Replayer struct {
	// Series is the trace to replay.
	Series *tuple.Series
	// Realtime enables wall-clock pacing.
	Realtime bool
	// Speedup divides the original intervals when Realtime is set;
	// 0 or 1 means original speed.
	Speedup float64
}

// Run emits every tuple of the series on out, in order, and then closes out.
// It stops early when ctx is cancelled. Run always closes out before
// returning so consumers can range over the channel.
func (r *Replayer) Run(ctx context.Context, out chan<- *tuple.Tuple) error {
	defer close(out)
	speed := r.Speedup
	if speed <= 0 {
		speed = 1
	}
	n := r.Series.Len()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for i := 0; i < n; i++ {
		t := r.Series.At(i)
		if r.Realtime && i > 0 {
			gap := t.TS.Sub(r.Series.At(i - 1).TS)
			gap = time.Duration(float64(gap) / speed)
			if gap > 0 {
				if timer == nil {
					timer = time.NewTimer(gap)
				} else {
					timer.Reset(gap)
				}
				select {
				case <-timer.C:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		select {
		case out <- t:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
