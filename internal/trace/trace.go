// Package trace provides the data sources used by the paper's evaluation.
//
// The paper replays real deployments: NAMOS lake-buoy traces (§4.2), a cow
// orientation trace, volcano seismic readings, fire-experiment HRR(Q)
// readings (§4.7.4) and an engineered chlorine-plume simulation (§5.5.1).
// Those data sets are not redistributable, so this package generates
// deterministic synthetic traces that preserve the properties the paper's
// analysis depends on: the value-update *pattern* of each source (smooth
// drift, clustered bursts, oscillation with event swells, ramp-and-decay)
// and a measurable srcStatistics (mean absolute inter-tuple change) from
// which filter deltas are derived exactly as in §4.3. The substitutions are
// documented in DESIGN.md.
//
// All generators are seeded and reproducible.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gasf/internal/tuple"
)

// DefaultInterval is the inter-arrival spacing used throughout the paper's
// evaluation: the NAMOS replay runs at about 10 ms per tuple (§4.2).
const DefaultInterval = 10 * time.Millisecond

// Epoch is the timestamp of the first tuple of every generated trace. A
// fixed epoch keeps traces, logs and tests reproducible.
var Epoch = time.Date(2006, 8, 1, 0, 0, 0, 0, time.UTC)

// Config controls trace generation.
type Config struct {
	// N is the number of tuples to generate. The paper's traces contain
	// "more than ten thousand measurements".
	N int
	// Interval is the inter-arrival time between consecutive tuples.
	// Zero means DefaultInterval.
	Interval time.Duration
	// Seed seeds the deterministic generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 10000
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	return c
}

func (c Config) timestamp(i int) time.Time {
	return Epoch.Add(time.Duration(i) * c.Interval)
}

// build assembles a series from per-tuple value rows.
func build(s *tuple.Schema, c Config, row func(i int, out []float64)) (*tuple.Series, error) {
	sr := tuple.NewSeries(s)
	buf := make([]float64, s.Len())
	for i := 0; i < c.N; i++ {
		row(i, buf)
		t, err := tuple.New(s, i, c.timestamp(i), buf)
		if err != nil {
			return nil, fmt.Errorf("trace: building tuple %d: %w", i, err)
		}
		if err := sr.Append(t); err != nil {
			return nil, fmt.Errorf("trace: appending tuple %d: %w", i, err)
		}
	}
	return sr, nil
}

// NAMOSAttrs lists the attributes of the NAMOS buoy schema in order: six
// thermistor channels and one fluorometer channel (§4.2).
var NAMOSAttrs = []string{"tmpr1", "tmpr2", "tmpr3", "tmpr4", "tmpr5", "tmpr6", "fluoro"}

// NAMOS generates a synthetic Lake Fulmor buoy trace: six thermistor
// channels performing slow mean-reverting random walks around stratified
// depth temperatures, plus a fluorometer channel with a slow diel swell and
// measurement noise. The magnitudes are tuned so that srcStatistics of the
// thermistor channels lands in the few-hundredths-of-a-degree range the
// paper's Table 4.1 deltas imply.
func NAMOS(c Config) (*tuple.Series, error) {
	c = c.withDefaults()
	s := tuple.MustSchema(NAMOSAttrs...)
	rng := rand.New(rand.NewSource(c.Seed))

	// Thermistors at increasing depth: warmer near the surface.
	temp := []float64{24.5, 23.8, 23.1, 22.4, 21.9, 21.5}
	fluoroPhase := rng.Float64() * 2 * math.Pi
	fluoro := 5.0

	return build(s, c, func(i int, out []float64) {
		for ch := 0; ch < 6; ch++ {
			// Track the channel's base temperature plus a slow
			// sinusoidal forcing closely, with sensor noise well
			// below the drift amplitude: the water temperature
			// dwells near slowly moving values, which is what makes
			// candidate sets long on the real NAMOS traces.
			base := []float64{24.5, 23.8, 23.1, 22.4, 21.9, 21.5}[ch]
			forcing := 0.6 * math.Sin(2*math.Pi*float64(i)/2000+float64(ch))
			pull := 0.05 * (base + forcing - temp[ch])
			step := 0.0012 * (rng.Float64()*2 - 1)
			temp[ch] += pull + step
			out[ch] = temp[ch]
		}
		// Fluorometer: diel swell with mild measurement jitter.
		swell := 1.8 * math.Sin(2*math.Pi*float64(i)/3000+fluoroPhase)
		fluoro += 0.05*(5.0+swell-fluoro) + 0.3*(rng.Float64()*2-1)
		if fluoro < 0 {
			fluoro = 0
		}
		out[6] = fluoro
	})
}

// Cow generates a synthetic cow-orientation trace (§4.7.4, Fig 4.21): long
// quiet plateaus interrupted by clustered brief changes, mirroring the
// "clustered brief changes over time" the paper reports for the MIT
// bio-monitoring data.
func Cow(c Config) (*tuple.Series, error) {
	c = c.withDefaults()
	s := tuple.MustSchema("E-orient")
	rng := rand.New(rand.NewSource(c.Seed))

	level := 813.0
	burstLeft := 0
	burstRate := 0.0
	return build(s, c, func(i int, out []float64) {
		if burstLeft > 0 {
			// Inside a burst: the cow turns — a directional
			// transition over several samples, not white noise.
			level += burstRate
			burstLeft--
		} else {
			// Quiet plateau: tiny jitter; occasionally start a turn.
			level += 0.03 * (rng.Float64()*2 - 1)
			if rng.Float64() < 0.015 {
				burstLeft = 4 + rng.Intn(12)
				burstRate = (0.5 + rng.Float64()) * float64(1-2*rng.Intn(2))
			}
		}
		// Keep orientation in a plausible sensor band; a clamped turn
		// ends early.
		if level < 805 {
			level, burstLeft = 805, 0
		}
		if level > 822 {
			level, burstLeft = 822, 0
		}
		out[0] = level
	})
}

// Seismic generates a synthetic volcano seismic trace (§4.7.4, Fig 4.22):
// band-limited background oscillation in roughly ±0.004 with occasional
// event swells where the amplitude grows severalfold.
func Seismic(c Config) (*tuple.Series, error) {
	c = c.withDefaults()
	s := tuple.MustSchema("seis")
	rng := rand.New(rand.NewSource(c.Seed))

	amp := 0.0012
	eventLeft := 0
	phase := rng.Float64() * 2 * math.Pi
	return build(s, c, func(i int, out []float64) {
		if eventLeft > 0 {
			eventLeft--
			if eventLeft == 0 {
				amp = 0.0012
			}
		} else if rng.Float64() < 0.002 {
			eventLeft = 60 + rng.Intn(120)
			amp = 0.0035
		}
		// Two superposed oscillations plus noise make the signal
		// band-limited rather than a pure sine.
		v := amp*math.Sin(2*math.Pi*float64(i)/23+phase) +
			0.4*amp*math.Sin(2*math.Pi*float64(i)/7.3) +
			0.25*amp*(rng.Float64()*2-1)
		out[0] = v
	})
}

// FireHRR generates a synthetic fire-experiment heat-release-rate trace
// (§4.7.4, Fig 4.23): a smooth ignition ramp to a peak of a few units,
// a plateau with slow undulation, and a decay phase.
func FireHRR(c Config) (*tuple.Series, error) {
	c = c.withDefaults()
	s := tuple.MustSchema("HRR")
	rng := rand.New(rand.NewSource(c.Seed))

	n := float64(c.N)
	return build(s, c, func(i int, out []float64) {
		x := float64(i) / n
		var base float64
		switch {
		case x < 0.25: // growth
			base = 3.7 * (x / 0.25) * (x / 0.25)
		case x < 0.65: // fully developed, slow undulation
			base = 3.7 - 0.4*math.Sin(2*math.Pi*(x-0.25)/0.2)
		default: // decay
			base = 3.7 * math.Exp(-4*(x-0.65))
		}
		// Measurement noise an order of magnitude below the ramp
		// slope: a 100 Hz heat-release signal is physically smooth.
		v := base + 0.002*(rng.Float64()*2-1)
		if v < 0 {
			v = 0
		}
		out[0] = v
	})
}

// ChlorineConfig extends Config with the plume model parameters of the
// train-derailment scenario (§5.5.1).
type ChlorineConfig struct {
	Config
	// WindSpeed in m/s carries the puff downwind.
	WindSpeed float64
	// WindDir in radians; 0 points along +x.
	WindDir float64
	// SensorX, SensorY locate the reporting sensor relative to the spill
	// at the origin, in meters.
	SensorX, SensorY float64
	// ReleaseRate scales the source strength.
	ReleaseRate float64
}

func (c ChlorineConfig) withDefaults() ChlorineConfig {
	c.Config = c.Config.withDefaults()
	if c.WindSpeed == 0 {
		c.WindSpeed = 2.5
	}
	if c.SensorX == 0 && c.SensorY == 0 {
		c.SensorX, c.SensorY = 400, 60
	}
	if c.ReleaseRate == 0 {
		c.ReleaseRate = 1000
	}
	return c
}

// Chlorine generates a chlorine-concentration trace at a fixed sensor using
// a 2-D Gaussian puff advection-diffusion model: a continuous release at the
// origin drifts with the wind while spreading; the sensor sees the
// concentration rise as the plume envelope reaches it, with gusty
// fluctuations on top.
func Chlorine(cc ChlorineConfig) (*tuple.Series, error) {
	cc = cc.withDefaults()
	s := tuple.MustSchema("chlorine")
	rng := rand.New(rand.NewSource(cc.Seed))

	dirX, dirY := math.Cos(cc.WindDir), math.Sin(cc.WindDir)
	dt := cc.Interval.Seconds()
	return build(s, cc.Config, func(i int, out []float64) {
		t := float64(i+1) * dt
		// Plume centroid position.
		cx, cy := cc.WindSpeed*t*dirX, cc.WindSpeed*t*dirY
		// Spread grows with travel time (Fickian diffusion).
		sigma := 10 + 0.8*cc.WindSpeed*t
		dx, dy := cc.SensorX-cx, cc.SensorY-cy
		conc := cc.ReleaseRate / (2 * math.Pi * sigma * sigma) *
			math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
		v := conc * 1e4 // scale to a convenient ppm-like range
		// Additive sensor noise: the detector integrates over its
		// sampling window, so readings are smooth relative to the
		// plume's rise and fall.
		v += 0.15 * (rng.Float64()*2 - 1)
		if v < 0 {
			v = 0
		}
		out[0] = v
	})
}

// PaperExample returns the worked nine-plus-one tuple example the paper uses
// throughout (Figs 2.3, 2.5, 2.8, 2.11, 3.4, 3.5):
// values {0, 35, 29, 45, 50, 59, 80, 97, 100, 112} on attribute "temperature",
// one tuple per time slot.
func PaperExample() *tuple.Series {
	s := tuple.MustSchema("temperature")
	sr := tuple.NewSeries(s)
	for i, v := range []float64{0, 35, 29, 45, 50, 59, 80, 97, 100, 112} {
		t := tuple.MustNew(s, i, Epoch.Add(time.Duration(i)*DefaultInterval), []float64{v})
		if err := sr.Append(t); err != nil {
			// Construction is fully under our control; failure is a bug.
			panic(err)
		}
	}
	return sr
}
