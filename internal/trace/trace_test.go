package trace

import (
	"context"
	"math"
	"testing"
	"time"

	"gasf/internal/tuple"
)

func TestNAMOSShape(t *testing.T) {
	sr, err := NAMOS(Config{N: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", sr.Len())
	}
	if got := sr.Schema().Names(); len(got) != 7 || got[6] != "fluoro" {
		t.Fatalf("schema = %v", got)
	}
	// srcStatistics of thermistor channels should be in the
	// few-hundredths range that makes Table 4.1's deltas sensible.
	for _, attr := range []string{"tmpr2", "tmpr4", "tmpr6"} {
		st, err := sr.MeanAbsChange(attr)
		if err != nil {
			t.Fatal(err)
		}
		if st < 0.001 || st > 0.2 {
			t.Errorf("srcStatistics(%s) = %g, want within [0.001, 0.2]", attr, st)
		}
	}
	// Timestamps advance by the default 10ms interval.
	if gap := sr.At(1).TS.Sub(sr.At(0).TS); gap != DefaultInterval {
		t.Errorf("interval = %v, want %v", gap, DefaultInterval)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func(Config) (*tuple.Series, error){
		"namos":   NAMOS,
		"cow":     Cow,
		"seismic": Seismic,
		"fire":    FireHRR,
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			a, err := gen(Config{N: 500, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			b, err := gen(Config{N: 500, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < a.Len(); i++ {
				for j := range a.At(i).Values {
					if a.At(i).Values[j] != b.At(i).Values[j] {
						t.Fatalf("tuple %d attr %d differs across same-seed runs", i, j)
					}
				}
			}
			c, err := gen(Config{N: 500, Seed: 43})
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for i := 0; i < a.Len() && same; i++ {
				for j := range a.At(i).Values {
					if a.At(i).Values[j] != c.At(i).Values[j] {
						same = false
						break
					}
				}
			}
			if same {
				t.Error("different seeds produced identical traces")
			}
		})
	}
}

// TestCowBurstiness checks the "clustered brief changes" pattern: the cow
// trace should have both near-flat stretches and steps far above its mean
// change, unlike a uniformly smooth source.
func TestCowBurstiness(t *testing.T) {
	sr, err := Cow(Config{N: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	col, err := sr.Column("E-orient")
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := sr.MeanAbsChange("E-orient")
	big, small := 0, 0
	for i := 1; i < len(col); i++ {
		d := math.Abs(col[i] - col[i-1])
		if d > 5*mean {
			big++
		}
		if d < mean/4 {
			small++
		}
	}
	if big == 0 {
		t.Error("cow trace has no burst steps (> 5x mean change)")
	}
	if small == 0 {
		t.Error("cow trace has no quiet steps (< mean/4)")
	}
}

// TestSeismicOscillation checks sign changes: a seismic signal oscillates
// around zero many times.
func TestSeismicOscillation(t *testing.T) {
	sr, err := Seismic(Config{N: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := sr.Column("seis")
	crossings := 0
	for i := 1; i < len(col); i++ {
		if (col[i] > 0) != (col[i-1] > 0) {
			crossings++
		}
	}
	if crossings < 50 {
		t.Errorf("seismic zero crossings = %d, want >= 50", crossings)
	}
	// Amplitude should stay in a ±0.01 band.
	for i, v := range col {
		if math.Abs(v) > 0.01 {
			t.Fatalf("seismic value %d out of band: %g", i, v)
		}
	}
}

// TestFireHRRShape checks the ramp / plateau / decay structure.
func TestFireHRRShape(t *testing.T) {
	sr, err := FireHRR(Config{N: 4000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := sr.Column("HRR")
	peak, peakAt := 0.0, 0
	for i, v := range col {
		if v > peak {
			peak, peakAt = v, i
		}
	}
	if peak < 3 || peak > 5 {
		t.Errorf("HRR peak = %g, want around 3.7", peak)
	}
	if frac := float64(peakAt) / float64(len(col)); frac > 0.7 {
		t.Errorf("peak at %.0f%% of trace, want before decay phase", frac*100)
	}
	if last := col[len(col)-1]; last > peak/2 {
		t.Errorf("HRR end value = %g, want decayed below half of peak %g", last, peak)
	}
	for i, v := range col {
		if v < 0 {
			t.Fatalf("negative HRR at %d: %g", i, v)
		}
	}
}

// TestChlorinePlumeArrival checks that the sensor sees the concentration
// rise as the plume advects past it.
func TestChlorinePlumeArrival(t *testing.T) {
	sr, err := Chlorine(ChlorineConfig{Config: Config{N: 6000, Seed: 5, Interval: 100 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := sr.Column("chlorine")
	first, peak := col[0], 0.0
	for _, v := range col {
		if v > peak {
			peak = v
		}
		if v < 0 {
			t.Fatal("negative concentration")
		}
	}
	if peak <= first*10 && peak <= 1e-6 {
		t.Errorf("plume never arrived: first=%g peak=%g", first, peak)
	}
}

func TestPaperExample(t *testing.T) {
	sr := PaperExample()
	want := []float64{0, 35, 29, 45, 50, 59, 80, 97, 100, 112}
	if sr.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", sr.Len(), len(want))
	}
	for i, w := range want {
		if got := sr.At(i).ValueAt(0); got != w {
			t.Errorf("tuple %d = %g, want %g", i, got, w)
		}
	}
}

func TestReplayerUnpaced(t *testing.T) {
	sr := PaperExample()
	ch := make(chan *tuple.Tuple)
	r := &Replayer{Series: sr}
	errc := make(chan error, 1)
	go func() { errc <- r.Run(context.Background(), ch) }()
	var got []float64
	for tp := range ch {
		got = append(got, tp.ValueAt(0))
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if len(got) != sr.Len() {
		t.Fatalf("received %d tuples, want %d", len(got), sr.Len())
	}
}

func TestReplayerCancel(t *testing.T) {
	sr, err := NAMOS(Config{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan *tuple.Tuple)
	r := &Replayer{Series: sr, Realtime: true} // paced, so it blocks
	errc := make(chan error, 1)
	go func() { errc <- r.Run(ctx, ch) }()
	<-ch // receive one tuple, then cancel mid-replay
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("Run should report context cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestReplayerPacedSpeedup(t *testing.T) {
	sr, err := NAMOS(Config{N: 20, Seed: 1, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan *tuple.Tuple, 32)
	r := &Replayer{Series: sr, Realtime: true, Speedup: 20}
	start := time.Now()
	if err := r.Run(context.Background(), ch); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 19 gaps of 20ms at 20x speedup: ~19ms, generously bounded.
	if elapsed > 2*time.Second {
		t.Errorf("paced replay too slow: %v", elapsed)
	}
	if n := len(ch); n != 20 {
		t.Errorf("buffered %d tuples, want 20", n)
	}
}
