package region

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestRegionPartitionProperty: for random closed-set collections, Flush
// produces a partition into components that are (a) internally connected
// through cover overlap and (b) maximal — no set of one region's cover
// touches another region's cover.
func TestRegionPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%20)
		var tr Tracker
		total := 0
		for i := 0; i < n; i++ {
			start := rng.Intn(200)
			width := rng.Intn(30)
			tr.Add(setSpan("F", i, start, start+width))
			total++
		}
		regions := tr.Flush()
		got := 0
		for _, r := range regions {
			got += len(r.Sets)
		}
		if got != total {
			return false // partition must cover every set exactly once
		}
		// Maximality: covers of distinct regions must not touch.
		for i := range regions {
			for j := i + 1; j < len(regions); j++ {
				iMin, iMax := regions[i].Cover()
				jMin, jMax := regions[j].Cover()
				if !(iMax.Before(jMin) || jMax.Before(iMin)) {
					return false
				}
			}
		}
		// Internal connectivity: each region's sets, sorted by start,
		// must chain through overlaps (interval connectivity).
		for _, r := range regions {
			maxSeen := time.Time{}
			for k, cs := range r.Sets {
				if k == 0 {
					maxSeen = cs.MaxTS()
					continue
				}
				if cs.MinTS().After(maxSeen) {
					return false // gap inside a region
				}
				if cs.MaxTS().After(maxSeen) {
					maxSeen = cs.MaxTS()
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestReadyNeverEmitsGrowable: whatever the open-set configuration, a
// region emitted by Ready can never gain a new member afterwards — adding
// any closed set whose cover starts after every open min and after `now`
// cannot touch it.
func TestReadyNeverEmitsGrowable(t *testing.T) {
	f := func(seed int64, nRaw, openRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tracker
		n := 1 + int(nRaw%12)
		maxEnd := 0
		for i := 0; i < n; i++ {
			start := rng.Intn(100)
			width := rng.Intn(20)
			tr.Add(setSpan("F", i, start, start+width))
			if start+width > maxEnd {
				maxEnd = start + width
			}
		}
		var openMins []time.Time
		for i := 0; i < int(openRaw%4); i++ {
			openMins = append(openMins, at(rng.Intn(120)))
		}
		now := at(rng.Intn(150))
		emitted := tr.Ready(openMins, now)
		for _, r := range emitted {
			_, max := r.Cover()
			if max.After(now) {
				return false // stream has not even reached the cover end
			}
			for _, om := range openMins {
				if !om.After(max) {
					return false // an open set could still join
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
