package region

import (
	"testing"
	"time"

	"gasf/internal/filter"
	"gasf/internal/tuple"
)

var schema = tuple.MustSchema("v")

func at(ms int) time.Time {
	return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond)
}

// setSpan builds a candidate set whose members sit at the given
// millisecond offsets (seqs equal to offsets for easy identification).
func setSpan(owner string, ordinal int, offsets ...int) *filter.CandidateSet {
	members := make([]*tuple.Tuple, len(offsets))
	for i, o := range offsets {
		members[i] = tuple.MustNew(schema, o, at(o), []float64{0})
	}
	return &filter.CandidateSet{Owner: owner, Ordinal: ordinal, Members: members, PickDegree: 1}
}

// TestPaperExampleRegions reproduces the region structure of Fig 2.5:
// region 1 = the three {0} sets; region 2 = the five later sets, connected
// through C's wide set.
func TestPaperExampleRegions(t *testing.T) {
	// Time slots 1..10 -> offsets 0..90 (10ms apart).
	sets := []*filter.CandidateSet{
		setSpan("A", 0, 0), setSpan("B", 0, 0), setSpan("C", 0, 0),
		setSpan("A", 1, 30, 40, 50), // {45,50,59}
		setSpan("B", 1, 30, 40),     // {45,50}
		setSpan("C", 1, 50, 60, 70, 80),
		setSpan("A", 2, 70, 80),
		setSpan("B", 2, 70, 80),
	}
	var tr Tracker
	for _, cs := range sets {
		tr.Add(cs)
	}
	regions := tr.Flush()
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(regions))
	}
	if len(regions[0].Sets) != 3 {
		t.Errorf("region 1 has %d sets, want 3", len(regions[0].Sets))
	}
	if len(regions[1].Sets) != 5 {
		t.Errorf("region 2 has %d sets, want 5", len(regions[1].Sets))
	}
	if got := regions[1].TupleCount(); got != 6 {
		t.Errorf("region 2 tuple count = %d, want 6 (seqs 30..80)", got)
	}
	min, max := regions[1].Cover()
	if !min.Equal(at(30)) || !max.Equal(at(80)) {
		t.Errorf("region 2 cover = [%v, %v], want [30ms, 80ms]", min, max)
	}
}

func TestReadyBlockedByOpenSet(t *testing.T) {
	var tr Tracker
	tr.Add(setSpan("A", 0, 0, 10))
	// An open set started at 5ms (inside the cover): region must wait.
	if got := tr.Ready([]time.Time{at(5)}, at(20)); got != nil {
		t.Fatalf("Ready returned %v while an open set overlaps", got)
	}
	if tr.PendingSets() != 1 {
		t.Error("blocked set must stay pending")
	}
	// Open set now starts after the cover: region closes.
	regions := tr.Ready([]time.Time{at(11)}, at(20))
	if len(regions) != 1 {
		t.Fatalf("Ready = %v, want the region", regions)
	}
	if tr.PendingSets() != 0 {
		t.Error("emitted region left sets pending")
	}
}

func TestReadyBlockedByStreamTime(t *testing.T) {
	var tr Tracker
	tr.Add(setSpan("A", 0, 0, 30))
	// Stream has only advanced to 20ms (< cover end): not ready, because
	// a set touching the cover could still open at time 30.
	if got := tr.Ready(nil, at(20)); got != nil {
		t.Fatalf("Ready = %v before stream reached cover end", got)
	}
	if got := tr.Ready(nil, at(30)); len(got) != 1 {
		t.Fatalf("Ready = %v at cover end, want region", got)
	}
}

func TestReadyEmitsOnlyFinalComponents(t *testing.T) {
	var tr Tracker
	tr.Add(setSpan("A", 0, 0, 10))
	tr.Add(setSpan("B", 0, 40, 50)) // later component, still growable
	regions := tr.Ready([]time.Time{at(45)}, at(50))
	if len(regions) != 1 {
		t.Fatalf("got %d regions, want 1 (the early component)", len(regions))
	}
	if _, max := regions[0].Cover(); !max.Equal(at(10)) {
		t.Errorf("emitted region cover end = %v, want 10ms", max)
	}
	if tr.PendingSets() != 1 {
		t.Errorf("pending = %d, want 1", tr.PendingSets())
	}
}

func TestTouchingCoversConnect(t *testing.T) {
	var tr Tracker
	tr.Add(setSpan("A", 0, 0, 10))
	tr.Add(setSpan("B", 0, 10, 20)) // shares boundary timestamp
	regions := tr.Flush()
	if len(regions) != 1 {
		t.Fatalf("touching covers produced %d regions, want 1", len(regions))
	}
}

func TestTransitiveConnectivity(t *testing.T) {
	// A [0,10], C [40,50] disjoint; B [5,45] bridges them (Definition 3).
	var tr Tracker
	tr.Add(setSpan("A", 0, 0, 10))
	tr.Add(setSpan("C", 0, 40, 50))
	tr.Add(setSpan("B", 0, 5, 45))
	regions := tr.Flush()
	if len(regions) != 1 {
		t.Fatalf("bridged sets produced %d regions, want 1", len(regions))
	}
	if len(regions[0].Sets) != 3 {
		t.Errorf("region sets = %d, want 3", len(regions[0].Sets))
	}
}

func TestEarliestPending(t *testing.T) {
	var tr Tracker
	if _, ok := tr.EarliestPending(); ok {
		t.Error("EarliestPending on empty tracker should report none")
	}
	tr.Add(setSpan("B", 0, 40, 50))
	tr.Add(setSpan("A", 0, 20, 30))
	got, ok := tr.EarliestPending()
	if !ok || !got.Equal(at(20)) {
		t.Errorf("EarliestPending = %v, %v; want 20ms", got, ok)
	}
}

func TestClosedByCut(t *testing.T) {
	cut := setSpan("A", 0, 0)
	cut.ClosedByCut = true
	r := &Region{Sets: []*filter.CandidateSet{setSpan("B", 0, 0), cut}}
	if !r.ClosedByCut() {
		t.Error("ClosedByCut = false for region with a cut set")
	}
	r2 := &Region{Sets: []*filter.CandidateSet{setSpan("B", 0, 0)}}
	if r2.ClosedByCut() {
		t.Error("ClosedByCut = true for region without cut sets")
	}
}

func TestFlushEmptiesTracker(t *testing.T) {
	var tr Tracker
	if got := tr.Flush(); got != nil {
		t.Errorf("Flush on empty tracker = %v", got)
	}
	tr.Add(setSpan("A", 0, 0))
	tr.Add(setSpan("B", 0, 100))
	regions := tr.Flush()
	if len(regions) != 2 || tr.PendingSets() != 0 {
		t.Errorf("Flush = %d regions, pending %d; want 2, 0", len(regions), tr.PendingSets())
	}
}
