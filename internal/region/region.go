// Package region implements region-based segmentation (§2.3.2): grouping
// closed candidate sets into maximal families connected by time-cover
// intersection (Definitions 2-5), and detecting the earliest moment a
// region can no longer grow — the point where the greedy hitting-set
// algorithm may run without sacrificing optimality (Theorem 2) or the
// approximation ratio (Theorem 3).
package region

import (
	"sort"
	"time"

	"gasf/internal/filter"
)

// Region is a maximal family of connected candidate sets (Definition 4).
type Region struct {
	// Sets are the member candidate sets, ordered by their earliest
	// timestamp.
	Sets []*filter.CandidateSet
}

// Cover returns the region's time cover: the union of its sets' covers
// (Definition 5). Because member sets are connected, the union is the
// interval [min, max].
func (r *Region) Cover() (min, max time.Time) {
	min, max = r.Sets[0].MinTS(), r.Sets[0].MaxTS()
	for _, cs := range r.Sets[1:] {
		if cs.MinTS().Before(min) {
			min = cs.MinTS()
		}
		if cs.MaxTS().After(max) {
			max = cs.MaxTS()
		}
	}
	return min, max
}

// TupleCount returns the number of distinct tuples across the region's
// sets; the paper's region size, which drives the run-time predictor.
func (r *Region) TupleCount() int {
	seen := make(map[int]bool)
	for _, cs := range r.Sets {
		for _, m := range cs.Members {
			seen[m.Seq] = true
		}
	}
	return len(seen)
}

// ClosedByCut reports whether any member set was closed by a timely cut;
// used for the "percent of regions cut" metric (Fig 4.11).
func (r *Region) ClosedByCut() bool {
	for _, cs := range r.Sets {
		if cs.ClosedByCut {
			return true
		}
	}
	return false
}

// Tracker accumulates closed candidate sets and extracts regions as soon
// as they can no longer grow.
//
// A pending component can still grow in two ways only: an open candidate
// set whose earliest admitted tuple falls inside the component's cover may
// close into it, or a future set may start inside the cover. Since
// admissions happen at arrival and source timestamps are strictly
// increasing, a future set's cover starts after the current stream time;
// so a component is final once (a) every open set's earliest admitted
// timestamp is after the component's cover and (b) the stream has advanced
// to the end of the cover. This is the same condition as the paper's group
// utility check (a closed set containing a tuple whose utility exceeds the
// closed-set count implies an open set admitting it), expressed on time
// covers.
type Tracker struct {
	pending []*filter.CandidateSet
}

// Add registers a closed candidate set.
func (tr *Tracker) Add(cs *filter.CandidateSet) {
	tr.pending = append(tr.pending, cs)
}

// PendingSets returns the number of closed sets not yet emitted.
func (tr *Tracker) PendingSets() int { return len(tr.pending) }

// EarliestPending returns the earliest timestamp across pending sets, used
// by the cut controller to compute the current region span.
func (tr *Tracker) EarliestPending() (time.Time, bool) {
	if len(tr.pending) == 0 {
		return time.Time{}, false
	}
	min := tr.pending[0].MinTS()
	for _, cs := range tr.pending[1:] {
		if cs.MinTS().Before(min) {
			min = cs.MinTS()
		}
	}
	return min, true
}

// components partitions the pending sets into connected components by
// cover intersection. Because connectivity over intervals is exactly
// interval overlap (with transitive closure), sorting by start time and
// sweep-merging is sufficient.
func (tr *Tracker) components() []*Region {
	if len(tr.pending) == 0 {
		return nil
	}
	sorted := make([]*filter.CandidateSet, len(tr.pending))
	copy(sorted, tr.pending)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].MinTS().Before(sorted[j].MinTS())
	})
	var out []*Region
	cur := &Region{Sets: []*filter.CandidateSet{sorted[0]}}
	curMax := sorted[0].MaxTS()
	for _, cs := range sorted[1:] {
		if !cs.MinTS().After(curMax) { // touching covers are connected
			cur.Sets = append(cur.Sets, cs)
			if cs.MaxTS().After(curMax) {
				curMax = cs.MaxTS()
			}
			continue
		}
		out = append(out, cur)
		cur = &Region{Sets: []*filter.CandidateSet{cs}}
		curMax = cs.MaxTS()
	}
	return append(out, cur)
}

// Ready extracts and returns every region that can no longer grow, given
// the earliest admitted timestamps of all currently open candidate sets
// and the current stream time (the timestamp of the most recently
// processed tuple). Extracted sets leave the tracker.
func (tr *Tracker) Ready(openMins []time.Time, now time.Time) []*Region {
	comps := tr.components()
	if comps == nil {
		return nil
	}
	var ready []*Region
	var keep []*filter.CandidateSet
	for _, r := range comps {
		_, max := r.Cover()
		ok := !max.After(now)
		if ok {
			for _, om := range openMins {
				if !om.After(max) {
					ok = false
					break
				}
			}
		}
		if ok {
			ready = append(ready, r)
		} else {
			keep = append(keep, r.Sets...)
		}
	}
	tr.pending = keep
	return ready
}

// Flush extracts every remaining region regardless of growth potential;
// used at end of stream.
func (tr *Tracker) Flush() []*Region {
	out := tr.components()
	tr.pending = nil
	return out
}
