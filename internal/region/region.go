// Package region implements region-based segmentation (§2.3.2): grouping
// closed candidate sets into maximal families connected by time-cover
// intersection (Definitions 2-5), and detecting the earliest moment a
// region can no longer grow — the point where the greedy hitting-set
// algorithm may run without sacrificing optimality (Theorem 2) or the
// approximation ratio (Theorem 3).
package region

import (
	"slices"
	"time"

	"gasf/internal/filter"
)

// Region is a maximal family of connected candidate sets (Definition 4).
type Region struct {
	// Sets are the member candidate sets, ordered by their earliest
	// timestamp.
	Sets []*filter.CandidateSet
}

// Cover returns the region's time cover: the union of its sets' covers
// (Definition 5). Because member sets are connected, the union is the
// interval [min, max].
func (r *Region) Cover() (min, max time.Time) {
	min, max = r.Sets[0].MinTS(), r.Sets[0].MaxTS()
	for _, cs := range r.Sets[1:] {
		if cs.MinTS().Before(min) {
			min = cs.MinTS()
		}
		if cs.MaxTS().After(max) {
			max = cs.MaxTS()
		}
	}
	return min, max
}

// TupleCount returns the number of distinct tuples across the region's
// sets; the paper's region size, which drives the run-time predictor.
func (r *Region) TupleCount() int {
	// Members within one set are distinct, so single-set regions (the
	// common case) need no cross-set deduplication.
	if len(r.Sets) == 1 {
		return len(r.Sets[0].Members)
	}
	seen := make(map[int]bool)
	for _, cs := range r.Sets {
		for _, m := range cs.Members {
			seen[m.Seq] = true
		}
	}
	return len(seen)
}

// ClosedByCut reports whether any member set was closed by a timely cut;
// used for the "percent of regions cut" metric (Fig 4.11).
func (r *Region) ClosedByCut() bool {
	for _, cs := range r.Sets {
		if cs.ClosedByCut {
			return true
		}
	}
	return false
}

// Tracker accumulates closed candidate sets and extracts regions as soon
// as they can no longer grow.
//
// A pending component can still grow in two ways only: an open candidate
// set whose earliest admitted tuple falls inside the component's cover may
// close into it, or a future set may start inside the cover. Since
// admissions happen at arrival and source timestamps are strictly
// increasing, a future set's cover starts after the current stream time;
// so a component is final once (a) every open set's earliest admitted
// timestamp is after the component's cover and (b) the stream has advanced
// to the end of the cover. This is the same condition as the paper's group
// utility check (a closed set containing a tuple whose utility exceeds the
// closed-set count implies an open set admitting it), expressed on time
// covers.
type Tracker struct {
	pending []*filter.CandidateSet
}

// Add registers a closed candidate set.
func (tr *Tracker) Add(cs *filter.CandidateSet) {
	tr.pending = append(tr.pending, cs)
}

// PendingSets returns the number of closed sets not yet emitted.
func (tr *Tracker) PendingSets() int { return len(tr.pending) }

// EarliestPending returns the earliest timestamp across pending sets, used
// by the cut controller to compute the current region span.
func (tr *Tracker) EarliestPending() (time.Time, bool) {
	if len(tr.pending) == 0 {
		return time.Time{}, false
	}
	min := tr.pending[0].MinTS()
	for _, cs := range tr.pending[1:] {
		if cs.MinTS().Before(min) {
			min = cs.MinTS()
		}
	}
	return min, true
}

// sortPending stably orders the pending sets by start time, in place.
// Connectivity over intervals is exactly interval overlap (with transitive
// closure), so sorting by start time and sweep-merging yields components.
func (tr *Tracker) sortPending() {
	slices.SortStableFunc(tr.pending, func(a, b *filter.CandidateSet) int {
		switch {
		case a.MinTS().Before(b.MinTS()):
			return -1
		case b.MinTS().Before(a.MinTS()):
			return 1
		default:
			return 0
		}
	})
}

// componentEnd returns the end index (exclusive) and cover maximum of the
// connected component starting at index i of the sorted pending slice.
func (tr *Tracker) componentEnd(i int) (int, time.Time) {
	curMax := tr.pending[i].MaxTS()
	j := i + 1
	for j < len(tr.pending) && !tr.pending[j].MinTS().After(curMax) {
		// Touching covers are connected.
		if tr.pending[j].MaxTS().After(curMax) {
			curMax = tr.pending[j].MaxTS()
		}
		j++
	}
	return j, curMax
}

// Ready extracts and returns every region that can no longer grow, given
// the earliest admitted timestamps of all currently open candidate sets
// and the current stream time (the timestamp of the most recently
// processed tuple). Extracted sets leave the tracker. The sweep runs in
// place over the pending slice: the steady state (no region ready yet)
// allocates nothing.
func (tr *Tracker) Ready(openMins []time.Time, now time.Time) []*Region {
	n := len(tr.pending)
	if n == 0 {
		return nil
	}
	tr.sortPending()
	var ready []*Region
	keep := tr.pending[:0]
	for i := 0; i < n; {
		j, max := tr.componentEnd(i)
		ok := !max.After(now)
		if ok {
			for _, om := range openMins {
				if !om.After(max) {
					ok = false
					break
				}
			}
		}
		if ok {
			sets := make([]*filter.CandidateSet, j-i)
			copy(sets, tr.pending[i:j])
			ready = append(ready, &Region{Sets: sets})
		} else {
			// keep trails i, so this in-place compaction never overwrites
			// a component not yet visited.
			keep = append(keep, tr.pending[i:j]...)
		}
		i = j
	}
	for k := len(keep); k < n; k++ {
		tr.pending[k] = nil
	}
	tr.pending = keep
	return ready
}

// Flush extracts every remaining region regardless of growth potential;
// used at end of stream.
func (tr *Tracker) Flush() []*Region {
	n := len(tr.pending)
	if n == 0 {
		return nil
	}
	tr.sortPending()
	var out []*Region
	for i := 0; i < n; {
		j, _ := tr.componentEnd(i)
		sets := make([]*filter.CandidateSet, j-i)
		copy(sets, tr.pending[i:j])
		out = append(out, &Region{Sets: sets})
		i = j
	}
	tr.pending = nil
	return out
}
