package server

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// subWriteBufSize sizes the per-subscriber buffered writer; coalesced
// flushes are bounded by it, so one slow frame cannot delay the rest of a
// burst beyond one buffer.
const subWriteBufSize = 32 << 10

// subscriber is one connected application session: a bounded queue of
// encoded, refcounted frames between the shard workers (producers, via
// Server.sink) and a writer goroutine that owns the connection's write
// side.
type subscriber struct {
	s      *Server
	app    string
	source string
	conn   net.Conn

	// out carries shared frames to the writer. Only the sink sends on
	// it, only for a live source; it is closed exactly once, after the
	// source's final flush, to let the writer drain the tail and send
	// the goodbye.
	out chan *frame
	// done is closed when the subscriber leaves (client disconnect or
	// removal), releasing any sink send blocked on a full queue.
	done      chan struct{}
	leaveOnce sync.Once
	finOnce   sync.Once

	dropped atomic.Uint64
}

func newSubscriber(s *Server, app, source string, conn net.Conn, queue int) *subscriber {
	return &subscriber{
		s:      s,
		app:    app,
		source: source,
		conn:   conn,
		out:    make(chan *frame, queue),
		done:   make(chan struct{}),
	}
}

// send enqueues one shared frame under the server's slow-consumer policy.
// It is called from shard workers; frames for one source arrive from one
// worker at a time, in release order. The frame reference is consumed:
// either the writer releases it after flushing, or it is released here on
// a drop.
func (sub *subscriber) send(fr *frame) {
	select {
	case <-sub.done:
		// The subscriber already left; frames queued for it are lost.
		sub.drop(fr)
		return
	default:
	}
	switch sub.s.cfg.Policy {
	case PolicyDrop:
		select {
		case sub.out <- fr:
			sub.s.ctr.deliveriesOut.Add(1)
		default:
			sub.drop(fr)
		}
	default: // PolicyBlock
		select {
		case sub.out <- fr:
			sub.s.ctr.deliveriesOut.Add(1)
		case <-sub.done:
			sub.drop(fr)
		}
	}
}

func (sub *subscriber) drop(fr *frame) {
	fr.release()
	sub.dropped.Add(1)
	sub.s.ctr.subscriberDrops.Add(1)
}

// leave marks the subscriber gone: sink sends stop blocking on it and the
// writer exits without flushing (the peer is not reading anyway).
func (sub *subscriber) leave() {
	sub.leaveOnce.Do(func() { close(sub.done) })
}

// finishStream closes the queue after the source's last flush: the writer
// drains what remains, sends a goodbye, and closes the connection. Safe
// only once no sink flush can still target this subscriber.
func (sub *subscriber) finishStream() {
	sub.finOnce.Do(func() { close(sub.out) })
}

// droppedCount returns the deliveries lost to the slow-consumer policy.
func (sub *subscriber) droppedCount() uint64 { return sub.dropped.Load() }

// writeFrame copies one shared frame into the buffered writer, counts its
// egress bytes, and releases the reference (bufio has copied the bytes by
// the time Write returns).
func (sub *subscriber) writeFrame(bw *bufio.Writer, fr *frame) error {
	_, err := bw.Write(fr.buf)
	if err == nil {
		sub.s.ctr.bytesOut.Add(uint64(len(fr.buf)))
	}
	fr.release()
	return err
}

// drainQueued releases frames left in the queue when the writer exits
// without delivering them (departure or write error), so an abandoning
// exit does not strand refcounted frames outside the pool. A frame a
// racing sink enqueues after this sweep is reclaimed by GC; every later
// send sees done closed and releases its own reference.
func (sub *subscriber) drainQueued() {
	for {
		select {
		case fr, ok := <-sub.out:
			if !ok {
				return
			}
			fr.release()
		default:
			return
		}
	}
}

// writeLoop owns the connection's write side: it streams queued frames —
// coalescing whatever is already queued into one buffered flush instead
// of one Write syscall per frame — heartbeats when idle, and finishes
// with a goodbye when the stream ends.
func (sub *subscriber) writeLoop() {
	defer sub.s.connWG.Done()
	defer sub.conn.Close()
	defer sub.drainQueued()
	bw := bufio.NewWriterSize(sub.conn, subWriteBufSize)
	goodbye := func() {
		sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
		if writeFrameTo(bw, FrameGoodbye, nil) == nil {
			bw.Flush()
		}
		sub.leave()
	}
	hb := time.NewTicker(sub.s.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		select {
		case <-sub.done:
			return
		case fr, ok := <-sub.out:
			if !ok {
				goodbye()
				return
			}
			sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
			err := sub.writeFrame(bw, fr)
			closed := false
		coalesce:
			// Fold frames already queued into this flush, bounded by the
			// write buffer so the deadline covers a bounded burst.
			for err == nil && bw.Buffered() < subWriteBufSize {
				select {
				case more, ok := <-sub.out:
					if !ok {
						closed = true
						break coalesce
					}
					err = sub.writeFrame(bw, more)
				default:
					break coalesce
				}
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				sub.s.removeSubscriber(sub)
				return
			}
			if closed {
				goodbye()
				return
			}
		case <-hb.C:
			sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
			err := writeFrameTo(bw, FrameHeartbeat, nil)
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				sub.s.removeSubscriber(sub)
				return
			}
		}
	}
}

// readLoop consumes the client's side of the session until it leaves
// (goodbye or disconnect); client heartbeats are permitted and ignored.
func (sub *subscriber) readLoop() {
	br := bufio.NewReaderSize(sub.conn, 4<<10)
	var buf []byte
	for {
		kind, b, err := ReadFrameInto(br, buf)
		if err != nil {
			break
		}
		buf = b
		if kind == FrameGoodbye {
			break
		}
	}
	select {
	case <-sub.done:
		// The session already ended server-side (source finished or
		// shutdown); the registry entry is gone.
	default:
		sub.s.removeSubscriber(sub)
	}
	sub.conn.Close()
}
