package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gasf/internal/adapt"
	"gasf/internal/core"
	"gasf/internal/telemetry"
	"gasf/internal/wire"
)

// subWriteBatchBytes bounds how many frame bytes one egress cycle
// coalesces into a single vectored write, so one write deadline always
// covers a bounded burst.
const subWriteBatchBytes = 32 << 10

// subscriber is one connected application session: a bounded queue of
// frame batches between the shard workers (producers, via Server.sink,
// one queue operation per release cycle) and a writer goroutine that
// owns the connection's write side and drains queued batches into
// vectored writes.
type subscriber struct {
	s      *Server
	app    string
	source string
	conn   net.Conn

	// stage accumulates this subscriber's frames during one sink call.
	// It is owned by the source's shard worker (per-source sink calls
	// are serialized), lives only within a single sink invocation, and
	// is always handed to the queue before the call returns.
	stage *frameBatch

	// out carries frame batches to the writer. Only the sink sends on
	// it, only for a live source; it is closed exactly once, after the
	// source's final flush, to let the writer drain the tail and send
	// the goodbye.
	out chan *frameBatch
	// done is closed when the subscriber leaves (client disconnect or
	// removal), releasing any sink send blocked on a full queue.
	done chan struct{}
	// writerDone is closed when writeLoop exits; the read side waits on
	// it before writing the departure ack, so the two goroutines never
	// interleave writes on the connection.
	writerDone chan struct{}
	leaveOnce  sync.Once
	finOnce    sync.Once

	// resume asks the writer to replay the source's durable log over
	// [resumeFrom, spliceTo) before draining live deliveries. spliceTo is
	// the fence captured inside the AddFilter control closure — every
	// live delivery for this session carries an offset >= spliceTo, so
	// the replayed history and the live stream tile the log exactly.
	resume     bool
	resumeFrom uint64
	spliceTo   uint64

	// lat estimates this session's delivery-latency quantiles (tuple
	// source timestamp to egress write). Fed by the writer goroutine,
	// read by the introspection endpoint. Nil when telemetry is off.
	lat *telemetry.LatencyPair

	dropped atomic.Uint64

	// Degrade-policy state (PolicyDegrade with a Scalable filter only;
	// gov is nil otherwise). The governor is driven from sendBatch —
	// one shard worker serializes all sends for a source, so it needs no
	// lock. scalable is the session's live filter: SetScale must only
	// run inside a Runtime.Control closure (tuple boundary, owning
	// worker), which is why decisions go through the applier goroutine
	// (scaleLoop) instead of being applied inline.
	gov      *adapt.Governor
	scalable adapt.Scalable
	// scaleKick wakes the applier; targetScale carries the float64 bits
	// of the governor's latest decision. Kicks coalesce — applying only
	// the newest target is correct because targets are absolute.
	scaleKick   chan struct{}
	targetScale atomic.Uint64
	// qosKick asks the writer to announce the applied scale (qosScale,
	// float64 bits) to the client with a FrameQoS frame.
	qosKick  chan struct{}
	qosScale atomic.Uint64

	// evictKick asks the writer to end the session with a typed notice:
	// an "evicted: reason" error frame, then disconnect. evictReason is
	// written once (evictOnce) before the kick.
	evictKick   chan struct{}
	evictReason string
	evictOnce   sync.Once

	// leg, on an edge node, is the upstream relay leg this session fans
	// out from. Relay members live outside the subscriber registry (a
	// group's members deliberately share one app name) and outside the
	// engine; removal refcounts the leg instead of touching a filter.
	leg *relayLeg
	// relayEdge, on a core, names the edge an upstream leg session
	// belongs to (empty for direct subscribers).
	relayEdge string
}

func newSubscriber(s *Server, app, source string, conn net.Conn, queue int) *subscriber {
	sub := &subscriber{
		s:          s,
		app:        app,
		source:     source,
		conn:       conn,
		out:        make(chan *frameBatch, queue),
		done:       make(chan struct{}),
		writerDone: make(chan struct{}),
		scaleKick:  make(chan struct{}, 1),
		qosKick:    make(chan struct{}, 1),
		evictKick:  make(chan struct{}, 1),
	}
	sub.targetScale.Store(math.Float64bits(1))
	if s.tel != nil {
		sub.lat = telemetry.NewLatencyPair()
	}
	return sub
}

// sendBatch enqueues one release cycle's frames under the server's
// slow-consumer policy — a single queue operation however many frames
// the cycle released. It is called from shard workers; batches for one
// source arrive from one worker at a time, in release order. The batch
// and every frame reference in it are consumed: either the writer
// releases them after the vectored write, or they are released here on
// a drop.
func (sub *subscriber) sendBatch(b *frameBatch) {
	n := uint64(len(b.frames))
	select {
	case <-sub.done:
		// The subscriber already left; frames queued for it are lost.
		sub.drop(b, n)
		return
	default:
	}
	switch sub.s.cfg.Policy {
	case PolicyDrop:
		select {
		case sub.out <- b:
			sub.enqueued(n)
		default:
			sub.drop(b, n)
		}
	case PolicyDegrade:
		// Zero-loss like block; additionally, each hand-off feeds the
		// governor one pressure sample so a backlog tightens the
		// subscriber's effective spec instead of stalling the pipeline
		// indefinitely.
		sub.observePressure()
		select {
		case sub.out <- b:
			sub.enqueued(n)
		case <-sub.done:
			sub.drop(b, n)
		}
	default: // PolicyBlock
		select {
		case sub.out <- b:
			sub.enqueued(n)
		case <-sub.done:
			sub.drop(b, n)
		}
	}
}

// observePressure feeds the degrade governor one sample — queue
// occupancy plus the session's delivery-p99 estimate — and hands any
// scale change to the applier. Runs on the source's owning shard
// worker, which serializes all sends for this subscriber, so the
// governor state needs no lock.
func (sub *subscriber) observePressure() {
	if sub.gov == nil {
		return
	}
	var p99 time.Duration
	if sub.lat != nil {
		p99 = sub.lat.Snapshot().P99
	}
	scale, changed := sub.gov.Observe(time.Now(), len(sub.out), cap(sub.out), p99)
	if !changed {
		return
	}
	prev := math.Float64frombits(sub.targetScale.Load())
	sub.targetScale.Store(math.Float64bits(scale))
	if scale > prev {
		sub.s.ctr.qosDegrades.Add(1)
		sub.s.lg.Info("subscriber degraded", "app", sub.app, "source", sub.source, "scale", scale, "queue", len(sub.out), "p99", p99)
	} else {
		sub.s.ctr.qosRestores.Add(1)
		sub.s.lg.Info("subscriber restored", "app", sub.app, "source", sub.source, "scale", scale)
	}
	select {
	case sub.scaleKick <- struct{}{}:
	default:
	}
}

// scaleLoop applies governor decisions to the session's live filter.
// SetScale must run at a tuple boundary on the source's owning worker,
// and Control must never be called from that worker (it would enqueue
// into the ring the worker itself drains), so the applier is its own
// goroutine: the sender records a target and kicks; the applier applies
// the newest target, then hands the announcement to the writer.
func (sub *subscriber) scaleLoop() {
	defer sub.s.connWG.Done()
	for {
		select {
		case <-sub.done:
			return
		case <-sub.writerDone:
			return
		case <-sub.scaleKick:
		}
		target := math.Float64frombits(sub.targetScale.Load())
		err := sub.s.runtimeOp(func() error {
			return sub.s.rt.Control(sub.source, func(*core.Engine) error {
				return sub.scalable.SetScale(target)
			})
		})
		if err != nil {
			// The source is finishing or the server draining; the session
			// is about to end anyway.
			continue
		}
		sub.qosScale.Store(math.Float64bits(target))
		select {
		case sub.qosKick <- struct{}{}:
		default:
		}
	}
}

// enqueued accounts a successful queue hand-off, then re-checks the
// departure latch: writeLoop's exit sweep (drainQueued) and this send
// can interleave so the batch lands after the sweep ran, which used to
// strand its frame references outside the pool forever. If done turns
// out closed, this sender sweeps the queue itself — channel receives
// are exactly-once, so however many racing senders sweep, every
// stranded batch is released exactly once.
func (sub *subscriber) enqueued(n uint64) {
	sub.s.ctr.deliveriesOut.Add(n)
	select {
	case <-sub.done:
		sub.drainQueued()
	default:
	}
}

func (sub *subscriber) drop(b *frameBatch, n uint64) {
	b.releaseAll()
	dropped := sub.dropped.Add(n)
	sub.s.ctr.subscriberDrops.Add(n)
	if limit := sub.s.cfg.EvictAfterDrops; limit > 0 && dropped >= uint64(limit) {
		sub.evict(fmt.Sprintf("%d deliveries dropped (limit %d)", dropped, limit))
	}
}

// evictPrefix tags slow-consumer eviction notices inside error frames,
// so clients can surface a typed ErrEvicted instead of a generic remote
// error.
const evictPrefix = "evicted: "

// evict asks the writer to end the session with a typed eviction
// notice. Unlike the write-timeout eviction (where the socket itself is
// the problem), a drop-threshold eviction happens while the connection
// is writable, so the notice is deliverable.
func (sub *subscriber) evict(reason string) {
	sub.evictOnce.Do(func() {
		select {
		case <-sub.done:
			// Already departed; drops past the end are not an eviction.
			return
		default:
		}
		sub.evictReason = reason
		sub.s.ctr.subscriberEvictions.Add(1)
		sub.s.lg.Warn("subscriber evicted", "app", sub.app, "source", sub.source, "reason", reason)
		select {
		case sub.evictKick <- struct{}{}:
		default:
		}
	})
}

// leave marks the subscriber gone: sink sends stop blocking on it and the
// writer exits without flushing (the peer is not reading anyway).
func (sub *subscriber) leave() {
	sub.leaveOnce.Do(func() { close(sub.done) })
}

// finishStream closes the queue after the source's last flush: the writer
// drains what remains, sends a goodbye, and closes the connection. Safe
// only once no sink flush can still target this subscriber.
func (sub *subscriber) finishStream() {
	sub.finOnce.Do(func() { close(sub.out) })
}

// droppedCount returns the deliveries lost to the slow-consumer policy.
func (sub *subscriber) droppedCount() uint64 { return sub.dropped.Load() }

// drainQueued releases batches left in the queue when the writer exits
// without delivering them (departure or write error), so an abandoning
// exit does not strand refcounted frames outside the pool. A batch a
// racing sink enqueues after this sweep is caught by the sender itself:
// sendBatch re-checks done after every successful enqueue (enqueued)
// and runs this sweep again, so no interleaving leaks a frame.
func (sub *subscriber) drainQueued() {
	for {
		select {
		case b, ok := <-sub.out:
			if !ok {
				return
			}
			b.releaseAll()
		default:
			return
		}
	}
}

// egress is the writer's staging area for one vectored write: the iovec
// list handed to net.Buffers and the frames behind it, released once the
// kernel has the bytes.
type egress struct {
	bufs   net.Buffers
	frames []*frame
	bytes  int
}

// stage appends a queued batch's frames to the pending vectored write
// and recycles the batch slice (the frames are now referenced by the
// egress staging until released).
func (e *egress) stage(b *frameBatch) {
	for _, fr := range b.frames {
		e.bufs = append(e.bufs, fr.buf)
		e.frames = append(e.frames, fr)
		e.bytes += len(fr.buf)
	}
	putBatch(b)
}

// flush ships the staged frames with one vectored write (net.Buffers
// issues writev on TCP, chunking the iovec list as needed) and releases
// every staged reference — the bytes are with the kernel or lost to the
// error either way.
func (e *egress) flush(sub *subscriber) error {
	if len(e.frames) == 0 {
		return nil
	}
	tel := sub.s.tel
	var t0 time.Time
	if tel.Sample(telemetry.StageEgressWrite) {
		t0 = time.Now()
	}
	// WriteTo consumes the slice it is called on (advancing the header
	// past written buffers), so it runs on a copy: e.bufs keeps the
	// original header and its capacity survives the reset below.
	bb := e.bufs
	n, err := bb.WriteTo(sub.conn)
	sub.s.ctr.bytesOut.Add(uint64(n))
	if !t0.IsZero() {
		tel.Observe(telemetry.StageEgressWrite, time.Since(t0))
	}
	if tel != nil && err == nil {
		// One clock read covers the whole vectored write; per-frame
		// latency is the write instant minus the tuple's source
		// timestamp, fed to the session, group, and aggregate
		// estimators (all alloc-free frugal updates).
		now := time.Now().UnixNano()
		for _, fr := range e.frames {
			if fr.ts == 0 {
				continue
			}
			d := time.Duration(now - fr.ts)
			sub.lat.Observe(d)
			fr.src.Observe(d)
			tel.ObserveDelivery(d)
		}
	}
	for _, fr := range e.frames {
		fr.release()
	}
	clear(e.frames)
	clear(e.bufs)
	e.frames = e.frames[:0]
	e.bufs = e.bufs[:0]
	e.bytes = 0
	return err
}

// writeLoop owns the connection's write side: it streams queued frame
// batches — coalescing whatever is already queued into one vectored
// write instead of one syscall (or one buffer copy) per frame —
// heartbeats when idle, and finishes with a goodbye when the stream
// ends. On an externally initiated departure (done closed by readLoop's
// removal) it exits without closing the connection: the read side still
// owes the client its departure ack.
func (sub *subscriber) writeLoop() {
	defer sub.s.connWG.Done()
	defer close(sub.writerDone)
	defer sub.drainQueued()
	if sub.resume {
		// History first: stream the app's slice of the durable log up to
		// the splice fence. Live deliveries released meanwhile queue up
		// in out (they all carry offsets >= spliceTo) and drain below in
		// order, so the client sees one seamless, gapless stream.
		if err := sub.replay(); err != nil {
			if !errors.Is(err, errReplayAborted) {
				sub.s.lg.Warn("replay failed", "source", sub.source, "app", sub.app, "err", err)
				sub.s.removeSubscriber(sub)
				sub.conn.Close()
			}
			return
		}
	}
	var e egress
	goodbye := func() {
		// A stream end during server drain is tagged so reconnect-aware
		// subscribers resume against a restarted server instead of
		// treating the end as the source finishing.
		var payload []byte
		if sub.s.isDraining() {
			payload = goodbyeDrainPayload
		}
		sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
		_ = WriteFrame(sub.conn, FrameGoodbye, payload)
		sub.leave()
		sub.conn.Close()
	}
	hb := time.NewTicker(sub.s.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		select {
		case <-sub.done:
			return
		case b, ok := <-sub.out:
			if !ok {
				goodbye()
				return
			}
			sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
			e.stage(b)
			closed := false
		coalesce:
			// Fold batches already queued into this vectored write,
			// bounded so the deadline covers a bounded burst.
			for e.bytes < subWriteBatchBytes {
				select {
				case more, ok := <-sub.out:
					if !ok {
						closed = true
						break coalesce
					}
					e.stage(more)
				default:
					break coalesce
				}
			}
			if err := e.flush(sub); err != nil {
				sub.s.removeSubscriber(sub)
				sub.conn.Close()
				return
			}
			if closed {
				goodbye()
				return
			}
		case <-sub.qosKick:
			sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
			if err := WriteFrame(sub.conn, FrameQoS, EncodeQoS(math.Float64frombits(sub.qosScale.Load()))); err != nil {
				sub.s.removeSubscriber(sub)
				sub.conn.Close()
				return
			}
		case <-sub.evictKick:
			// Best-effort notice, then disconnect: the reason rides an
			// error frame so the client sees a typed eviction, not a bare
			// EOF.
			sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
			_ = WriteFrame(sub.conn, FrameError, []byte(evictPrefix+sub.evictReason))
			sub.s.removeSubscriber(sub)
			sub.conn.Close()
			return
		case <-hb.C:
			sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
			if err := WriteFrame(sub.conn, FrameHeartbeat, nil); err != nil {
				sub.s.removeSubscriber(sub)
				sub.conn.Close()
				return
			}
		}
	}
}

// errReplayAborted marks a replay cut short by the subscriber's own
// departure — an orderly exit, not a failure.
var errReplayAborted = errors.New("server: replay aborted by departure")

// replay streams the records of [resumeFrom, spliceTo) addressed to
// this app from the durable log, each as an offset-bearing transmission
// frame. The log holds exactly the bytes the live fan-out delivered, so
// the replayed stream is byte-identical to what the app would have
// received live; records not naming the app (delivered while it was
// away, to others) are skipped without decoding their tuples.
func (sub *subscriber) replay() error {
	var buf []byte
	err := sub.s.log.Read(sub.source, sub.resumeFrom, sub.spliceTo, func(off uint64, payload []byte) error {
		select {
		case <-sub.done:
			return errReplayAborted
		default:
		}
		if !wire.TransmissionHasDestination(payload, sub.app) {
			return nil
		}
		buf = beginFrame(buf[:0], FrameTransmissionOff)
		buf = binary.LittleEndian.AppendUint64(buf, off)
		buf = append(buf, payload...)
		buf = endFrame(buf)
		sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
		n, err := sub.conn.Write(buf)
		sub.s.ctr.bytesOut.Add(uint64(n))
		if err != nil {
			return err
		}
		sub.s.ctr.replayRecordsOut.Add(1)
		return nil
	})
	if err == nil {
		sub.s.ctr.replaysServed.Add(1)
	}
	return err
}

// readLoop consumes the client's side of the session until it leaves
// (goodbye or disconnect); client heartbeats are permitted and ignored.
// A client-initiated departure is acknowledged with a final goodbye
// written only after the filter has left the live group and the writer
// has stopped — a client that waits for the ack (Leave) knows its
// removal has been applied at a tuple boundary.
func (sub *subscriber) readLoop() {
	br := bufio.NewReaderSize(sub.conn, 4<<10)
	var buf []byte
	for {
		kind, b, err := ReadFrameInto(br, buf)
		if err != nil {
			break
		}
		buf = b
		if kind == FrameGoodbye {
			break
		}
	}
	select {
	case <-sub.done:
		// The session already ended server-side (source finished or
		// shutdown); the registry entry is gone.
	default:
		sub.s.removeSubscriber(sub)
		<-sub.writerDone
		sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
		_ = WriteFrame(sub.conn, FrameGoodbye, nil)
	}
	sub.conn.Close()
}
