package server

import (
	"sync"
	"sync/atomic"
	"time"

	"net"
)

// subscriber is one connected application session: a bounded queue of
// encoded frames between the shard workers (producers, via Server.sink)
// and a writer goroutine that owns the connection's write side.
type subscriber struct {
	s      *Server
	app    string
	source string
	conn   net.Conn

	// out carries encoded frames to the writer. Only the sink sends on
	// it, only for a live source; it is closed exactly once, after the
	// source's final flush, to let the writer drain the tail and send
	// the goodbye.
	out chan []byte
	// done is closed when the subscriber leaves (client disconnect or
	// removal), releasing any sink send blocked on a full queue.
	done      chan struct{}
	leaveOnce sync.Once
	finOnce   sync.Once

	dropped atomic.Uint64
}

func newSubscriber(s *Server, app, source string, conn net.Conn, queue int) *subscriber {
	return &subscriber{
		s:      s,
		app:    app,
		source: source,
		conn:   conn,
		out:    make(chan []byte, queue),
		done:   make(chan struct{}),
	}
}

// send enqueues one encoded frame under the server's slow-consumer
// policy. It is called from shard workers; frames for one source arrive
// from one worker at a time, in release order.
func (sub *subscriber) send(frame []byte) {
	select {
	case <-sub.done:
		// The subscriber already left; frames queued for it are lost.
		sub.drop()
		return
	default:
	}
	switch sub.s.cfg.Policy {
	case PolicyDrop:
		select {
		case sub.out <- frame:
			sub.s.ctr.deliveriesOut.Add(1)
		default:
			sub.drop()
		}
	default: // PolicyBlock
		select {
		case sub.out <- frame:
			sub.s.ctr.deliveriesOut.Add(1)
		case <-sub.done:
			sub.drop()
		}
	}
}

func (sub *subscriber) drop() {
	sub.dropped.Add(1)
	sub.s.ctr.subscriberDrops.Add(1)
}

// leave marks the subscriber gone: sink sends stop blocking on it and the
// writer exits without flushing (the peer is not reading anyway).
func (sub *subscriber) leave() {
	sub.leaveOnce.Do(func() { close(sub.done) })
}

// finishStream closes the queue after the source's last flush: the writer
// drains what remains, sends a goodbye, and closes the connection. Safe
// only once no sink flush can still target this subscriber.
func (sub *subscriber) finishStream() {
	sub.finOnce.Do(func() { close(sub.out) })
}

// droppedCount returns the deliveries lost to the slow-consumer policy.
func (sub *subscriber) droppedCount() uint64 { return sub.dropped.Load() }

// writeLoop owns the connection's write side: it streams queued frames,
// heartbeats when idle, and finishes with a goodbye when the stream ends.
func (sub *subscriber) writeLoop() {
	defer sub.s.connWG.Done()
	defer sub.conn.Close()
	hb := time.NewTicker(sub.s.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		select {
		case <-sub.done:
			return
		case frame, ok := <-sub.out:
			if !ok {
				sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
				_ = WriteFrame(sub.conn, FrameGoodbye, nil)
				sub.leave()
				return
			}
			sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
			if _, err := sub.conn.Write(frame); err != nil {
				sub.s.removeSubscriber(sub)
				return
			}
			sub.s.ctr.bytesOut.Add(uint64(len(frame)))
		case <-hb.C:
			sub.conn.SetWriteDeadline(time.Now().Add(sub.s.cfg.WriteTimeout))
			if err := WriteFrame(sub.conn, FrameHeartbeat, nil); err != nil {
				sub.s.removeSubscriber(sub)
				return
			}
		}
	}
}

// readLoop consumes the client's side of the session until it leaves
// (goodbye or disconnect); client heartbeats are permitted and ignored.
func (sub *subscriber) readLoop() {
	for {
		kind, _, err := ReadFrame(sub.conn)
		if err != nil {
			break
		}
		if kind == FrameGoodbye {
			break
		}
	}
	select {
	case <-sub.done:
		// The session already ended server-side (source finished or
		// shutdown); the registry entry is gone.
	default:
		sub.s.removeSubscriber(sub)
	}
	sub.conn.Close()
}
