package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/quality"
	"gasf/internal/trace"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// namosSeries builds a deterministic trace for equivalence runs.
func namosSeries(t *testing.T, n int) *tuple.Series {
	t.Helper()
	sr, err := trace.NAMOS(trace.Config{N: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// stepSeries builds n tuples over schema ("v") whose value steps by 1, so
// a "DC1(v, 0.5, 0)" subscriber receives every tuple exactly once.
func stepSeries(t *testing.T, n, offset int) *tuple.Series {
	t.Helper()
	s, err := tuple.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	sr := tuple.NewSeries(s)
	base := time.Unix(1, 0)
	for i := 0; i < n; i++ {
		tp, err := tuple.New(s, offset+i, base.Add(time.Duration(offset+i+1)*time.Millisecond), []float64{float64(offset + i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	return sr
}

// publishSeries streams a whole series then closes the publisher.
func publishSeries(t *testing.T, addr, source string, sr *tuple.Series) {
	t.Helper()
	pub, err := DialPublisher(addr, source, sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatalf("publishing tuple %d: %v", i, err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
}

// recvAll drains a subscriber until the stream ends gracefully.
func recvAll(t *testing.T, sub *Subscriber) []*Delivery {
	t.Helper()
	var out []*Delivery
	for {
		d, err := sub.Recv()
		if errors.Is(err, ErrStreamEnded) {
			return out
		}
		if err != nil {
			t.Fatalf("after %d deliveries: %v", len(out), err)
		}
		out = append(out, d)
	}
}

// TestPublishSubscribeEndToEnd runs one publisher and two subscribers
// through a full stream lifecycle over loopback.
func TestPublishSubscribeEndToEnd(t *testing.T) {
	s := startServer(t, Config{})
	addr := s.Addr().String()
	sr := namosSeries(t, 300)

	pub, err := DialPublisher(addr, "buoy", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	subA, err := DialSubscriber(addr, "A", "buoy", "DC1(fluoro, 0.3, 0.15)")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := subA.Schema().String(), sr.Schema().String(); got != want {
		t.Fatalf("handshake schema %s, want %s", got, want)
	}
	subB, err := DialSubscriber(addr, "B", "buoy", "DC1(fluoro, 0.5, 0.25)")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var dA, dB []*Delivery
	wg.Add(2)
	go func() { defer wg.Done(); dA = recvAll(t, subA) }()
	go func() { defer wg.Done(); dB = recvAll(t, subB) }()

	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(dA) == 0 || len(dB) == 0 {
		t.Fatalf("deliveries A=%d B=%d, want both > 0", len(dA), len(dB))
	}
	for _, d := range dA {
		found := false
		for _, dest := range d.Destinations {
			if dest == "A" {
				found = true
			}
		}
		if !found {
			t.Fatalf("A received transmission not addressed to it: %v", d.Destinations)
		}
	}
	c := s.Counters()
	if c.TuplesIn != uint64(sr.Len()) {
		t.Fatalf("TuplesIn = %d, want %d", c.TuplesIn, sr.Len())
	}
	if c.SourcesFinished != 1 || c.SourcesFailed != 0 {
		t.Fatalf("sources finished=%d failed=%d, want 1/0", c.SourcesFinished, c.SourcesFailed)
	}
}

// TestBatchPublishRecvInto drives the batched client paths end to end:
// PublishNowBatch ships whole bursts in one write (one server-side ring
// submission per run) and RecvInto receives into reused storage; every
// tuple must arrive exactly once, in order, with interned labels.
func TestBatchPublishRecvInto(t *testing.T) {
	s := startServer(t, Config{})
	addr := s.Addr().String()
	schema, err := tuple.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := DialPublisher(addr, "burst", schema)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := DialSubscriber(addr, "A", "burst", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}

	const tuples = 500
	var wg sync.WaitGroup
	wg.Add(1)
	var got []float64
	var labels []string
	go func() {
		defer wg.Done()
		var d Delivery
		for {
			err := sub.RecvInto(&d)
			if err == ErrStreamEnded {
				return
			}
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = append(got, d.Tuple.Values[0])
			labels = append(labels, d.Destinations[0])
		}
	}()
	// Mixed burst sizes, including a single-tuple batch and one empty.
	if err := pub.PublishNowBatch(nil); err != nil {
		t.Fatal(err)
	}
	vals := make([][]float64, 0, 64)
	backing := make([]float64, 64)
	n := 0
	for n < tuples {
		k := 1 + n%64
		if n+k > tuples {
			k = tuples - n
		}
		vals = vals[:0]
		for j := 0; j < k; j++ {
			backing[j] = float64(n + j)
			vals = append(vals, backing[j:j+1])
		}
		if err := pub.PublishNowBatch(vals); err != nil {
			t.Fatal(err)
		}
		n += k
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(got) != tuples {
		t.Fatalf("received %d tuples, want %d", len(got), tuples)
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("delivery %d carries value %v, want %d (order or loss)", i, v, i)
		}
	}
	for i := 1; i < len(labels); i++ {
		if labels[i] != "A" {
			t.Fatalf("delivery %d labeled %q, want A", i, labels[i])
		}
	}
	if c := s.Counters(); c.TuplesIn != tuples {
		t.Fatalf("TuplesIn = %d, want %d", c.TuplesIn, tuples)
	}
}

// TestNetworkedEquivalence is the acceptance test at the network layer: a
// churn-free run through the server's live-subscribe path must hand every
// subscriber a byte stream identical to the wire encoding of a static
// in-process core.Run over the same group.
func TestNetworkedEquivalence(t *testing.T) {
	specs := []struct{ app, spec string }{
		{"A", "DC1(fluoro, 0.3, 0.15)"},
		{"B", "DC1(fluoro, 0.5, 0.25)"},
		{"C", "DC3(tmpr2, tmpr4, 0.2, 0.1)"},
	}
	sr := namosSeries(t, 600)

	// Static reference: the same filter group, same order, in process.
	var filters []filter.Filter
	for _, sp := range specs {
		parsed, err := quality.Parse(sp.spec)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parsed.Build(sp.app)
		if err != nil {
			t.Fatal(err)
		}
		filters = append(filters, f)
	}
	static, err := core.Run(filters, sr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := make(map[string][]byte)
	for _, tr := range static.Transmissions {
		var buf []byte
		buf, err = wire.AppendTransmission(buf, tr.Tuple, tr.Destinations)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range tr.Destinations {
			wantBytes[app] = append(wantBytes[app], buf...)
		}
	}

	// Networked run: subscribers join through the live path, in order,
	// before the publisher streams.
	s := startServer(t, Config{})
	addr := s.Addr().String()
	pub, err := DialPublisher(addr, "buoy", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*Subscriber, len(specs))
	for i, sp := range specs {
		subs[i], err = DialSubscriber(addr, sp.app, "buoy", sp.spec)
		if err != nil {
			t.Fatalf("subscribing %s: %v", sp.app, err)
		}
	}
	got := make([][]byte, len(specs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, d := range recvAll(t, subs[i]) {
				var buf []byte
				buf, err := wire.AppendTransmission(buf, d.Tuple, d.Destinations)
				if err != nil {
					t.Errorf("re-encoding: %v", err)
					return
				}
				got[i] = append(got[i], buf...)
			}
		}(i)
	}
	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, sp := range specs {
		if len(wantBytes[sp.app]) == 0 {
			t.Fatalf("degenerate case: static run delivered nothing to %s", sp.app)
		}
		if string(got[i]) != string(wantBytes[sp.app]) {
			t.Fatalf("subscriber %s stream differs from static run (%d vs %d bytes)",
				sp.app, len(got[i]), len(wantBytes[sp.app]))
		}
	}
}

// TestHandshakeRejections covers the handshake error surface.
func TestHandshakeRejections(t *testing.T) {
	s := startServer(t, Config{})
	addr := s.Addr().String()
	sr := stepSeries(t, 1, 0)

	if _, err := DialSubscriber(addr, "A", "ghost", "DC1(v, 0.5, 0)"); err == nil {
		t.Fatal("subscribing to unknown source succeeded")
	}
	pub, err := DialPublisher(addr, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if _, err := DialPublisher(addr, "src", sr.Schema()); err == nil {
		t.Fatal("duplicate source name succeeded")
	}
	if _, err := DialSubscriber(addr, "A", "src", "DC1(nope, 0.5, 0)"); err == nil {
		t.Fatal("subscribing with unknown attribute succeeded")
	}
	if _, err := DialSubscriber(addr, "A", "src", "garbage"); err == nil {
		t.Fatal("subscribing with malformed spec succeeded")
	}
	subA, err := DialSubscriber(addr, "A", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	defer subA.Close()
	if _, err := DialSubscriber(addr, "A", "src", "DC1(v, 0.5, 0)"); err == nil {
		t.Fatal("duplicate app name succeeded")
	}
	if s.Counters().HandshakeRejects == 0 {
		t.Fatal("rejects not counted")
	}
}

// wideSeries builds n pass-all tuples over a 64-attribute schema, making
// each transmission ~0.5KiB so socket buffers fill quickly.
func wideSeries(t *testing.T, n int) *tuple.Series {
	t.Helper()
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	s, err := tuple.NewSchema(names...)
	if err != nil {
		t.Fatal(err)
	}
	sr := tuple.NewSeries(s)
	base := time.Unix(1, 0)
	values := make([]float64, len(names))
	for i := 0; i < n; i++ {
		for j := range values {
			values[j] = float64(i)
		}
		tp, err := tuple.New(s, i, base.Add(time.Duration(i+1)*time.Millisecond), values)
		if err != nil {
			t.Fatal(err)
		}
		if err := sr.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	return sr
}

// TestSlowConsumerDrop checks the drop policy: a subscriber that stops
// reading loses deliveries (counted) without stalling the publisher,
// while a fast subscriber with queue headroom receives everything.
func TestSlowConsumerDrop(t *testing.T) {
	n := 4000
	s := startServer(t, Config{
		Policy:       PolicyDrop,
		WriteTimeout: 500 * time.Millisecond,
	})
	addr := s.Addr().String()
	sr := wideSeries(t, n)

	pub, err := DialPublisher(addr, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// The fast subscriber's queue holds the whole stream, so it can
	// never drop; the slow one's 4-slot queue overflows immediately.
	fast, err := DialSubscriberBuffered(addr, "fast", "src", "DC1(a0, 0.5, 0)", n+16)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := DialSubscriberBuffered(addr, "slow", "src", "DC1(a0, 0.5, 0)", 4)
	if err != nil {
		t.Fatal(err)
	}
	// The slow subscriber never reads: once its TCP window fills, the
	// server's writer hits WriteTimeout and the session is dropped; the
	// publisher must stay unaffected throughout.
	defer slow.Close()

	var fastGot []*Delivery
	done := make(chan struct{})
	go func() { defer close(done); fastGot = recvAll(t, fast) }()
	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	<-done

	if len(fastGot) != n {
		t.Fatalf("fast subscriber got %d deliveries, want %d", len(fastGot), n)
	}
	for i, d := range fastGot {
		if d.Tuple.Seq != i {
			t.Fatalf("fast subscriber delivery %d has seq %d", i, d.Tuple.Seq)
		}
	}
	c := s.Counters()
	if c.SubscriberDrops == 0 {
		t.Fatal("no drops counted for the slow subscriber")
	}
	t.Logf("slow subscriber dropped %d of %d deliveries", c.SubscriberDrops, n)
}

// TestSourceExpiry checks flow-gap detection: a publisher that goes
// silent is expired and its subscribers see a clean end of stream.
func TestSourceExpiry(t *testing.T) {
	s := startServer(t, Config{
		HeartbeatInterval: 50 * time.Millisecond,
		SourceTimeout:     200 * time.Millisecond,
	})
	addr := s.Addr().String()
	sr := stepSeries(t, 10, 0)

	pub, err := DialPublisher(addr, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := DialSubscriber(addr, "A", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Heartbeats hold the session open through one timeout window.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := pub.Heartbeat(); err != nil {
			t.Fatalf("heartbeat rejected: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := s.Counters().SourcesExpired; got != 0 {
		t.Fatalf("source expired despite heartbeats (%d)", got)
	}
	// Then the publisher goes silent; the stream must end for the
	// subscriber with the tail delivered.
	got := recvAll(t, sub)
	if len(got) != sr.Len() {
		t.Fatalf("subscriber got %d deliveries, want %d", len(got), sr.Len())
	}
	if s.Counters().SourcesExpired != 1 {
		t.Fatalf("SourcesExpired = %d, want 1", s.Counters().SourcesExpired)
	}
}

// TestGracefulShutdown checks Shutdown flushes in-flight streams: every
// tuple published before Shutdown is delivered before the goodbye.
func TestGracefulShutdown(t *testing.T) {
	s, err := Start(Config{Logf: t.Logf, DrainGrace: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	n := 500
	sr := stepSeries(t, n, 0)
	pub, err := DialPublisher(addr, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := DialSubscriber(addr, "A", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	var got []*Delivery
	done := make(chan struct{})
	go func() { defer close(done); got = recvAll(t, sub) }()
	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	if len(got) != n {
		t.Fatalf("subscriber got %d of %d deliveries across shutdown", len(got), n)
	}
}

// TestDrainGoodbyeTagged pins the two flavors of stream end apart: a
// source finishing yields plain ErrStreamEnded, while a server shutdown
// tags its goodbyes so both publisher and subscriber sessions surface
// ErrServerDraining (still wrapping ErrStreamEnded for callers that
// treat every graceful end alike). Reconnect-aware clients depend on
// the distinction to redial a restarted server instead of latching the
// end as final.
func TestDrainGoodbyeTagged(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A source-finish end must stay untagged.
	s1 := startServer(t, Config{})
	sr := stepSeries(t, 10, 0)
	pub1, err := DialPublisher(s1.Addr().String(), "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := DialSubscriber(s1.Addr().String(), "A", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if err := pub1.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub1.Close(); err != nil {
		t.Fatal(err)
	}
	for {
		_, err := sub1.Recv()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrStreamEnded) {
			t.Fatalf("finish end: %v, want ErrStreamEnded", err)
		}
		if errors.Is(err, ErrServerDraining) {
			t.Fatalf("finish end tagged as server drain: %v", err)
		}
		break
	}

	// A shutdown-forced end must be tagged on both session kinds.
	s2, err := Start(Config{Logf: t.Logf, DrainGrace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Shutdown(ctx) })
	pub, err := DialPublisher(s2.Addr().String(), "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := DialSubscriber(s2.Addr().String(), "A", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Sync(ctx); err != nil {
		t.Fatalf("pre-shutdown sync: %v", err)
	}
	subErr := make(chan error, 1)
	go func() {
		for {
			if _, err := sub2.Recv(); err != nil {
				subErr <- err
				return
			}
		}
	}()
	shutDone := make(chan struct{})
	go func() { defer close(shutDone); s2.Shutdown(ctx) }()
	// The shutdown goodbye is queued ahead of any later pong, so the
	// first Sync to read past it sees the tag.
	var syncErr error
	for syncErr == nil {
		syncErr = pub.Sync(ctx)
		time.Sleep(2 * time.Millisecond)
	}
	if !errors.Is(syncErr, ErrServerDraining) || !errors.Is(syncErr, ErrStreamEnded) {
		t.Fatalf("publisher sync across shutdown: %v, want ErrServerDraining wrapping ErrStreamEnded", syncErr)
	}
	select {
	case err := <-subErr:
		if !errors.Is(err, ErrServerDraining) || !errors.Is(err, ErrStreamEnded) {
			t.Fatalf("subscriber end across shutdown: %v, want ErrServerDraining wrapping ErrStreamEnded", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("subscriber stream never ended across shutdown")
	}
	<-shutDone
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMetricsEndpoints exercises /metrics and /healthz.
func TestMetricsEndpoints(t *testing.T) {
	s := startServer(t, Config{})
	sr := stepSeries(t, 20, 0)
	publishSeries(t, s.Addr().String(), "src", sr)
	waitFor(t, "source to finish", func() bool { return s.Counters().SourcesFinished == 1 })

	h := s.MetricsHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"gasf_tuples_in_total 20",
		"gasf_sources_finished_total 1",
		"gasf_shard_processed_total",
		"# TYPE gasf_sources_active gauge",
		"# TYPE gasf_tuples_in_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}

// TestPublisherTimestampValidation checks the server rejects
// non-monotonic source streams with a protocol error.
func TestPublisherTimestampValidation(t *testing.T) {
	s := startServer(t, Config{})
	sr := stepSeries(t, 2, 0)
	pub, err := DialPublisher(s.Addr().String(), "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// The client itself refuses disorder.
	if err := pub.Publish(sr.At(1)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(sr.At(0)); err == nil {
		t.Fatal("client accepted a timestamp regression")
	}
}
