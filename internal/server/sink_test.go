package server

import (
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/shard"
	"gasf/internal/telemetry"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// sinkFixture builds a Server with registries only — no listener, no
// goroutines — so the fan-out path can be driven deterministically.
type sinkFixture struct {
	s      *Server
	src    *sourceSession
	schema *tuple.Schema
}

func newSinkFixture(t *testing.T) *sinkFixture {
	t.Helper()
	schema, err := tuple.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Policy: PolicyDrop, Logf: t.Logf}.withDefaults()
	// Telemetry sampling every event: the fan-out alloc gate below must
	// hold with the stage timers fully hot, not just at the default
	// 1-in-64 sampling.
	s := &Server{
		cfg:     cfg,
		lg:      cfg.resolveLogger(),
		tel:     telemetry.New(1),
		sources: make(map[string]*sourceSession),
		subs:    make(map[string]map[string]*subscriber),
	}
	src := &sourceSession{name: "s1", schema: schema, lat: telemetry.NewLatencyPair()}
	s.sources["s1"] = src
	s.subs["s1"] = make(map[string]*subscriber)
	return &sinkFixture{s: s, src: src, schema: schema}
}

// subscribe registers a queue-only subscriber session.
func (fx *sinkFixture) subscribe(app string, queue int) *subscriber {
	sub := newSubscriber(fx.s, app, "s1", nil, queue)
	fx.s.mu.Lock()
	fx.s.subs["s1"][app] = sub
	fx.src.subEpoch++
	fx.s.mu.Unlock()
	return sub
}

// unsubscribe removes the registry entry the way removeSubscriber does.
func (fx *sinkFixture) unsubscribe(sub *subscriber) {
	sub.leave()
	fx.s.dropSubscriberEntry(sub)
}

func (fx *sinkFixture) out(t *testing.T, seq int, dests ...string) shard.Out {
	t.Helper()
	ts := time.Unix(1, 0).Add(time.Duration(seq) * time.Millisecond)
	tp, err := tuple.New(fx.schema, seq, ts, []float64{float64(seq)})
	if err != nil {
		t.Fatal(err)
	}
	return shard.Out{Source: "s1", Tr: core.Transmission{Tuple: tp, Destinations: dests, ReleasedAt: ts}}
}

// take pops one release-cycle batch from a subscriber queue, asserts it
// carries exactly one frame, and returns that frame without releasing
// it (the batch itself is recycled, as the writer would).
func take(t *testing.T, sub *subscriber) *frame {
	t.Helper()
	select {
	case b := <-sub.out:
		if len(b.frames) != 1 {
			t.Fatalf("cycle batch carries %d frames, want 1", len(b.frames))
		}
		fr := b.frames[0]
		putBatch(b)
		return fr
	default:
		t.Fatal("no frame queued")
		return nil
	}
}

// decodeFrame decodes a transmission frame into tuple and destinations.
func decodeFrame(t *testing.T, fx *sinkFixture, fr *frame) (*tuple.Tuple, []string) {
	t.Helper()
	if len(fr.buf) < frameHeaderLen || fr.buf[0] != FrameTransmission {
		t.Fatalf("bad frame: %v", fr.buf)
	}
	tp, dests, n, err := wire.DecodeTransmission(fx.schema, fr.buf[frameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if n != len(fr.buf)-frameHeaderLen {
		t.Fatalf("frame carries %d trailing bytes", len(fr.buf)-frameHeaderLen-n)
	}
	return tp, dests
}

// TestSinkEncodesOnlyLiveLabels is the satellite gate: once a subscriber
// departs, transmissions the engine still addresses to it must not spend
// egress bytes on its label — remaining subscribers receive frames
// labeled with the live targets only.
func TestSinkEncodesOnlyLiveLabels(t *testing.T) {
	fx := newSinkFixture(t)
	subA := fx.subscribe("a", 16)
	subB := fx.subscribe("b", 16)

	// Both live: the frame carries both labels.
	fx.s.sink([]shard.Out{fx.out(t, 1, "a", "b")})
	frA, frB := take(t, subA), take(t, subB)
	if frA != frB {
		t.Fatal("fan-out did not share one frame across subscriber queues")
	}
	_, dests := decodeFrame(t, fx, frA)
	if len(dests) != 2 || dests[0] != "a" || dests[1] != "b" {
		t.Fatalf("live labels %v, want [a b]", dests)
	}
	bothLen := len(frA.buf)
	frA.release()
	frB.release()

	// b departs; the engine still owes it an output decided earlier.
	fx.unsubscribe(subB)
	fx.s.sink([]shard.Out{fx.out(t, 2, "a", "b")})
	fr := take(t, subA)
	tp, dests := decodeFrame(t, fx, fr)
	if tp.Seq != 2 {
		t.Fatalf("seq %d, want 2", tp.Seq)
	}
	if len(dests) != 1 || dests[0] != "a" {
		t.Fatalf("labels after departure %v, want [a]", dests)
	}
	// The departed label stopped consuming egress bytes.
	want, err := wire.AppendTransmission(nil, tp, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fr.buf) - frameHeaderLen; got != len(want) {
		t.Fatalf("frame payload %d bytes, want %d (single live label)", got, len(want))
	}
	if len(fr.buf) >= bothLen {
		t.Fatalf("frame with departed label (%dB) not smaller than dual-label frame (%dB)", len(fr.buf), bothLen)
	}
	fr.release()

	// Nothing was queued for the departed subscriber.
	select {
	case <-subB.out:
		t.Fatal("departed subscriber received a frame")
	default:
	}
}

// TestSinkEpochInvalidatesCache verifies a subscription change between
// identical destination lists refreshes the cached targets: a rejoining
// app must start receiving again immediately.
func TestSinkEpochInvalidatesCache(t *testing.T) {
	fx := newSinkFixture(t)
	subA := fx.subscribe("a", 16)
	fx.s.sink([]shard.Out{fx.out(t, 1, "a", "b")})
	take(t, subA).release()

	// b joins between two transmissions with the same destination list.
	subB := fx.subscribe("b", 16)
	fx.s.sink([]shard.Out{fx.out(t, 2, "a", "b")})
	frA, frB := take(t, subA), take(t, subB)
	_, dests := decodeFrame(t, fx, frB)
	if len(dests) != 2 {
		t.Fatalf("labels %v after rejoin, want both", dests)
	}
	frA.release()
	frB.release()
}

// TestSinkSourceGone covers flushes racing a finished source: no frames,
// no panic.
func TestSinkSourceGone(t *testing.T) {
	fx := newSinkFixture(t)
	sub := fx.subscribe("a", 16)
	fx.s.mu.Lock()
	delete(fx.s.sources, "s1")
	fx.s.mu.Unlock()
	fx.s.sink([]shard.Out{fx.out(t, 1, "a")})
	select {
	case <-sub.out:
		t.Fatal("frame delivered for a retired source")
	default:
	}
}

// TestSinkBatchHandoff pins the per-cycle hand-off contract: one sink
// flush carrying several transmissions reaches each subscriber as ONE
// queued batch holding all of its frames in release order, not one
// queue entry per frame.
func TestSinkBatchHandoff(t *testing.T) {
	fx := newSinkFixture(t)
	subA := fx.subscribe("a", 16)
	subB := fx.subscribe("b", 16)
	fx.s.sink([]shard.Out{
		fx.out(t, 1, "a", "b"),
		fx.out(t, 2, "a"),
		fx.out(t, 3, "a", "b"),
	})
	bA := <-subA.out
	if got := len(bA.frames); got != 3 {
		t.Fatalf("a's cycle batch carries %d frames, want 3", got)
	}
	for i, want := range []int{1, 2, 3} {
		tp, _ := decodeFrame(t, fx, bA.frames[i])
		if tp.Seq != want {
			t.Fatalf("a's frame %d is seq %d, want %d (release order)", i, tp.Seq, want)
		}
	}
	bB := <-subB.out
	if got := len(bB.frames); got != 2 {
		t.Fatalf("b's cycle batch carries %d frames, want 2", got)
	}
	if bA.frames[0] != bB.frames[0] || bA.frames[2] != bB.frames[1] {
		t.Fatal("fan-out did not share frames across subscriber batches")
	}
	select {
	case <-subA.out:
		t.Fatal("subscriber a got more than one queue entry for one cycle")
	case <-subB.out:
		t.Fatal("subscriber b got more than one queue entry for one cycle")
	default:
	}
	bA.releaseAll()
	bB.releaseAll()
}

// TestSinkFanoutAllocs is the §8 regression gate for the shared-frame
// fan-out: steady-state sink → queue → release cycles must not allocate
// (the pooled frame and cached prefix absorb everything). A tolerance of
// half an alloc/op absorbs a GC emptying the sync.Pool mid-measurement.
func TestSinkFanoutAllocs(t *testing.T) {
	fx := newSinkFixture(t)
	subA := fx.subscribe("a", 4)
	subB := fx.subscribe("b", 4)
	batch := []shard.Out{fx.out(t, 1, "a", "b")}
	cycle := func() {
		fx.s.sink(batch)
		take(t, subA).release()
		take(t, subB).release()
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	avg := testing.AllocsPerRun(2000, cycle)
	// Under -race, sync.Pool drops a quarter of its Puts by design, so
	// the pooled frame/batch/scratch round-trips (4 per cycle) show up as
	// allocations; the widened budget still catches per-frame or
	// per-subscriber allocation regressions.
	budget := 0.5
	if raceEnabled {
		budget = 4.5
	}
	if avg > budget {
		t.Fatalf("fan-out path allocates %.2f allocs/op in steady state, budget %.1f", avg, budget)
	}
}
