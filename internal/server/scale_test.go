package server

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gasf/internal/tuple"
)

// TestHandshakeLatencyUnderIdleLoad pins the accept-path guarantee that
// motivated the timer wheel: tracking a large idle population must not
// stall new handshakes. 50k fake sessions are injected straight into
// the registry and the wheel (net.Pipe, no file descriptors), and real
// TCP handshakes are timed while the scan loop runs over them. The old
// O(n)-under-mutex gap scan made every handshake wait for a full
// registry walk; the wheel touches only due buckets.
func TestHandshakeLatencyUnderIdleLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-session fixture")
	}
	s := startServer(t, Config{
		SourceTimeout: 30 * time.Second, // far beyond the test: nothing expires
		ScanInterval:  10 * time.Millisecond,
		DrainGrace:    50 * time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	schema := scaleSchema(t)

	const idle = 50_000
	pipes := make([]net.Conn, 0, idle)
	t.Cleanup(func() {
		// Release the fake sessions before the server's shutdown cleanup
		// runs (LIFO): a closed peer makes the drain's goodbye writes
		// fail fast instead of blocking on unread pipes.
		for _, c := range pipes {
			c.Close()
		}
	})
	s.mu.Lock()
	for i := 0; i < idle; i++ {
		client, srvEnd := net.Pipe()
		pipes = append(pipes, client)
		name := s.names.Intern(fmt.Sprintf("idle%d", i))
		src := s.newSourceSession(name, srvEnd, schema)
		s.sources[name] = src
		s.sketch.Record(name, s.wheel.NowTick())
		s.wheel.Add(&src.gap, src)
	}
	s.mu.Unlock()
	if got := s.wheel.Size(); got != idle {
		t.Fatalf("wheel tracks %d entries, want %d", got, idle)
	}

	// Let the scan loop run a few intervals over the full population.
	time.Sleep(100 * time.Millisecond)

	addr := s.Addr().String()
	const probes = 25
	lats := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		start := time.Now()
		pub, err := DialPublisher(addr, fmt.Sprintf("probe%d", i), schema)
		if err != nil {
			t.Fatalf("handshake %d under idle load: %v", i, err)
		}
		lats = append(lats, time.Since(start))
		pub.Close()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50, max := lats[len(lats)/2], lats[len(lats)-1]
	t.Logf("handshake under %d idle sources: p50=%v max=%v", idle, p50, max)
	if p50 > 250*time.Millisecond {
		t.Errorf("median handshake latency %v under %d idle sources", p50, idle)
	}
	if max > 2*time.Second {
		t.Errorf("worst handshake latency %v under %d idle sources", max, idle)
	}
}

// scaleSchema returns the single-field schema every scale fixture uses.
func scaleSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	return stepSeries(t, 1, 0).Schema()
}

// TestExpiryUnderChurn drives flow-gap expiry while everything around
// it churns (run with -race): heartbeat-only publishers must survive
// every scan, silent neighbors must all expire, and a
// subscribe/unsubscribe storm against both must neither wedge nor be
// wedged by the expiry path.
func TestExpiryUnderChurn(t *testing.T) {
	s := startServer(t, Config{
		HeartbeatInterval: 50 * time.Millisecond,
		SourceTimeout:     300 * time.Millisecond,
		ScanInterval:      20 * time.Millisecond,
		Logf:              func(string, ...any) {},
	})
	addr := s.Addr().String()
	schema := scaleSchema(t)

	const survivors = 8
	const silent = 8
	for i := 0; i < silent; i++ {
		pub, err := DialPublisher(addr, fmt.Sprintf("quiet%d", i), schema)
		if err != nil {
			t.Fatal(err)
		}
		defer pub.Close()
	}
	hbPubs := make([]*Publisher, survivors)
	for i := range hbPubs {
		pub, err := DialPublisher(addr, fmt.Sprintf("hb%d", i), schema)
		if err != nil {
			t.Fatal(err)
		}
		defer pub.Close()
		hbPubs[i] = pub
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var hbErr atomic.Value
	for i, pub := range hbPubs {
		wg.Add(1)
		go func(i int, pub *Publisher) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(25 * time.Millisecond):
					if err := pub.Heartbeat(); err != nil {
						hbErr.Store(fmt.Errorf("survivor hb%d lost its session: %w", i, err))
						return
					}
				}
			}
		}(i, pub)
	}
	// Subscriber churn across both populations while the silent half
	// expires underneath it.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				source := fmt.Sprintf("hb%d", (g+i)%survivors)
				if i%2 == 0 {
					source = fmt.Sprintf("quiet%d", (g+i)%silent)
				}
				sub, err := DialSubscriber(addr, fmt.Sprintf("churn%d", g), source, "DC1(v, 0.5, 0)")
				if err != nil {
					continue // the source may just have expired
				}
				sub.Close()
			}
		}(g)
	}

	waitFor(t, "silent sources to expire", func() bool {
		return s.Counters().SourcesExpired >= silent
	})
	close(stop)
	wg.Wait()
	if err, ok := hbErr.Load().(error); ok {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.SourcesExpired != silent {
		t.Errorf("SourcesExpired = %d, want exactly the %d silent sources", c.SourcesExpired, silent)
	}
	if c.ClosedFlowGap != uint64(silent) {
		t.Errorf("ClosedFlowGap = %d, want %d", c.ClosedFlowGap, silent)
	}
	// Every survivor still answers.
	for i, pub := range hbPubs {
		if err := pub.Heartbeat(); err != nil {
			t.Errorf("survivor hb%d dead after churn: %v", i, err)
		}
	}
}
