package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gasf/internal/federate"
	"gasf/internal/quality"
	"gasf/internal/telemetry"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// FederationConfig places a server in a multi-broker topology. The
// zero value is the standalone single-node broker, byte-for-byte the
// pre-federation behavior.
type FederationConfig struct {
	// Role selects the node's tier: RoleCore owns sources (publishers
	// connect here, engines run here), RoleEdge holds subscriber
	// sessions and opens at most one upstream subscription per
	// (source-owning core, group). RoleSingle is the standalone broker.
	Role federate.Role
	// Self is this node's name in the peer list. Required for edges
	// (upstream legs identify themselves with it); optional for cores,
	// where setting it together with Peers turns on placement
	// enforcement — publishers for sources this core does not own are
	// redirected to the owner.
	Self string
	// Peers is the core tier: every core node, by stable name and
	// address. Placement is consistent hashing of the source name over
	// this set, so every node handed the same peer list computes the
	// same owner for every source. Required for edges.
	Peers []federate.Node
	// DialTimeout bounds one upstream leg dial + handshake; 0 means 5s.
	DialTimeout time.Duration
}

// legKey is the dedup identity of one upstream leg: the source plus
// the group — app and the canonical quality-spec rendering. However
// many local subscribers share the key, the core→edge link carries the
// group's filtered stream exactly once.
type legKey struct {
	source, app, spec string
}

// relayMgr is an edge node's upstream-leg registry: one refcounted leg
// per legKey, created by the first local subscriber of a group and
// torn down through the acked-departure path by the last leave.
type relayMgr struct {
	s       *Server
	self    string
	timeout time.Duration
	// lat estimates relay delivery latency (tuple source timestamp to
	// edge egress write) over sampled frames. Nil when telemetry is off.
	lat *telemetry.LatencyPair

	mu     sync.Mutex
	legs   map[legKey]*relayLeg
	closed bool
}

func newRelayMgr(s *Server) *relayMgr {
	m := &relayMgr{
		s:       s,
		self:    s.cfg.Federation.Self,
		timeout: s.cfg.Federation.DialTimeout,
		legs:    make(map[legKey]*relayLeg),
	}
	if m.timeout <= 0 {
		m.timeout = 5 * time.Second
	}
	if s.tel != nil {
		m.lat = telemetry.NewLatencyPair()
	}
	return m
}

// relayLeg is one upstream subscription: a connection to the
// source-owning core carrying the group's filtered stream, fanned out
// to every local member through the pooled refcounted frame path. The
// leg speaks the ordinary subscriber protocol (version 3 hello), so
// the core sees exactly the membership a single-node deployment would.
type relayLeg struct {
	mgr   *relayMgr
	key   legKey
	queue int

	// ready is closed once the first dial resolves; err (set before the
	// close) rejects waiters when it failed. schemaPayload is the
	// upstream hello-ok body, replayed verbatim to every local member's
	// handshake.
	ready         chan struct{}
	err           error
	schemaPayload []byte
	schema        *tuple.Schema

	// closing latches teardown (last member left, or shutdown); bye
	// interrupts redial backoff; done closes when the run loop exits.
	closing atomic.Bool
	bye     chan struct{}
	done    chan struct{}

	mu      sync.Mutex
	members []*subscriber
	scratch []*subscriber // fan-out copy, so sends run outside the lock
	conn    net.Conn
	// coreName is the owner the current connection was dialed against;
	// when a rebalance moves the source, resume state resets (offsets
	// name positions in per-core logs and do not transfer).
	coreName string

	// Resume state, written by the run loop per offset-bearing frame and
	// read by introspection, hence atomic.
	lastOffset atomic.Uint64
	seenOffset atomic.Bool
	durable    atomic.Bool
}

// errLegClosing reports an upstream leg torn down mid-operation.
var errLegClosing = errors.New("server: upstream leg closing")

// ensureLeg finds or creates the leg for a group. The creator performs
// the first upstream dial outside the registry lock; concurrent
// subscribers of the same group wait on ready and share the result.
func (m *relayMgr) ensureLeg(key legKey, queue int) (*relayLeg, error) {
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, errDraining
		}
		leg := m.legs[key]
		if leg == nil {
			// (source, app) is unique broker-wide, exactly as on a single
			// node: a same-app subscription under a different spec is a
			// conflict, rejected here rather than discovered as an
			// "already subscribed" refusal from the core after retries.
			for k, other := range m.legs {
				if k.source == key.source && k.app == key.app && !other.closing.Load() {
					m.mu.Unlock()
					return nil, fmt.Errorf("app %q already subscribed to source %q with a different spec", key.app, key.source)
				}
			}
			leg = &relayLeg{
				mgr:   m,
				key:   key,
				queue: queue,
				ready: make(chan struct{}),
				bye:   make(chan struct{}),
				done:  make(chan struct{}),
			}
			m.legs[key] = leg
			m.mu.Unlock()
			if err := leg.dialFirst(); err != nil {
				m.drop(leg)
				leg.err = err
				close(leg.ready)
				close(leg.done)
				return nil, err
			}
			close(leg.ready)
			m.s.connWG.Add(1)
			go leg.run()
			return leg, nil
		}
		m.mu.Unlock()
		<-leg.ready
		if leg.err != nil {
			return nil, leg.err
		}
		if leg.closing.Load() {
			// Raced with the last member's teardown; wait it out and
			// create a fresh leg. The wait matters: the core rejects a
			// second session for the app until the departure is acked.
			<-leg.done
			continue
		}
		return leg, nil
	}
}

// drop removes a leg from the registry (if still registered).
func (m *relayMgr) drop(leg *relayLeg) {
	m.mu.Lock()
	if m.legs[leg.key] == leg {
		delete(m.legs, leg.key)
	}
	m.mu.Unlock()
}

// attach adds a local member to the leg; false when the leg began
// closing concurrently (the caller re-runs ensureLeg).
func (leg *relayLeg) attach(sub *subscriber) bool {
	leg.mu.Lock()
	defer leg.mu.Unlock()
	if leg.closing.Load() {
		return false
	}
	leg.members = append(leg.members, sub)
	return true
}

// detach removes a departed member. The last member's departure tears
// the leg down through the acked path: a goodbye upstream, then a wait
// for the core's departure ack (bounded by read deadlines), so when
// the local client's own Leave ack goes out, the group at the core has
// already been re-derived without this app — exactly the ordering a
// single-node departure guarantees.
func (m *relayMgr) detach(sub *subscriber) {
	leg := sub.leg
	leg.mu.Lock()
	for i, s2 := range leg.members {
		if s2 == sub {
			leg.members = append(leg.members[:i], leg.members[i+1:]...)
			break
		}
	}
	// The CAS is the teardown latch: detach and shutdown race to it, and
	// only the winner closes bye (a second close would panic).
	last := len(leg.members) == 0 && leg.closing.CompareAndSwap(false, true)
	var conn net.Conn
	if last {
		conn = leg.conn
	}
	leg.mu.Unlock()
	if !last {
		return
	}
	m.drop(leg)
	close(leg.bye)
	if conn != nil {
		conn.SetWriteDeadline(time.Now().Add(m.s.cfg.WriteTimeout))
		if err := WriteFrame(conn, FrameGoodbye, nil); err != nil {
			conn.Close()
		} else {
			// The run loop exits on the core's ack; the deadline bounds
			// the wait if the core never answers.
			conn.SetReadDeadline(time.Now().Add(m.s.cfg.WriteTimeout))
		}
	}
	<-leg.done
}

// dialFirst opens the leg's first upstream connection, inside the
// subscriber handshake of the member that created it. Most rejections
// (unknown source, bad spec) surface immediately — the local client
// sees the same error a single-node subscribe would — but a transient
// "already subscribed" is retried briefly: it means the previous leg
// for this group is mid-teardown and the core has not acked its
// departure yet.
func (leg *relayLeg) dialFirst() error {
	m := leg.mgr
	deadline := time.Now().Add(m.s.cfg.HandshakeTimeout)
	for {
		core, ok := m.s.ownerOf(leg.key.source)
		if !ok {
			return fmt.Errorf("server: no core topology to place source %q", leg.key.source)
		}
		conn, payload, err := leg.dialUpstream(core, false)
		if err == nil {
			schema, derr := DecodeSchema(payload)
			if derr != nil {
				conn.Close()
				return fmt.Errorf("server: upstream schema: %w", derr)
			}
			leg.schemaPayload, leg.schema = payload, schema
			// Publish the conn under the lock, re-checking closing: a
			// server shutdown that snapshotted this leg mid-dial saw conn
			// nil and is waiting on done, so the dial must not hand a live
			// conn to a run loop shutdown can no longer interrupt.
			leg.mu.Lock()
			if leg.closing.Load() {
				leg.mu.Unlock()
				conn.Close()
				return errDraining
			}
			leg.conn, leg.coreName = conn, core.Name
			leg.mu.Unlock()
			m.s.ctr.fedLegDials.Add(1)
			m.s.lg.Info("upstream leg opened", "source", leg.key.source, "app", leg.key.app, "core", core.Name)
			return nil
		}
		if !errors.Is(err, ErrAlreadySubscribed) || time.Now().After(deadline) {
			return err
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-m.s.stop:
			return errDraining
		}
	}
}

// dialUpstream performs one relay handshake against a core.
func (leg *relayLeg) dialUpstream(core federate.Node, resume bool) (net.Conn, []byte, error) {
	hello, err := EncodeSubHelloRelay(leg.key.app, leg.key.source, leg.key.spec,
		leg.queue, resume, leg.lastOffset.Load()+1, leg.mgr.self)
	if err != nil {
		return nil, nil, err
	}
	return dialHello(core.Addr, FrameSubHello, hello, leg.mgr.timeout)
}

// relay stream-end reasons.
const (
	relayRedial = iota // drain goodbye, error frame or connection error
	relayFinish        // plain goodbye: the source finished upstream
	relayClosed        // teardown ack after a local goodbye
)

// run is the leg's read loop: it decodes nothing it does not have to,
// reconstructs each transmission frame byte-identically (same kind,
// same payload — offsets included), and fans it out to every local
// member through the refcounted frame pool. On a drain goodbye or a
// connection error it redials with backoff, resuming a durable
// upstream from lastOffset+1 so members ride through core restarts and
// partitions without a gap or a duplicate.
func (leg *relayLeg) run() {
	defer leg.mgr.s.connWG.Done()
	defer close(leg.done)
	for {
		leg.mu.Lock()
		conn := leg.conn
		leg.mu.Unlock()
		reason := leg.readStream(conn)
		conn.Close()
		if leg.closing.Load() || reason == relayClosed {
			return
		}
		if reason == relayFinish {
			leg.finishMembers()
			leg.mgr.drop(leg)
			return
		}
		if !leg.redial() {
			return
		}
	}
}

// readStream consumes one upstream connection until it ends.
func (leg *relayLeg) readStream(conn net.Conn) int {
	br := bufio.NewReaderSize(conn, streamReadBuf)
	var (
		buf []byte
		// Relay-latency sampling state: decoding every transmission just
		// to read its timestamp would tax the relay hot path, so one in
		// relaySampleEvery frames is decoded into reused scratch.
		nframes uint64
		scratch tuple.Tuple
		labels  [][]byte
	)
	for {
		kind, b, err := ReadFrameInto(br, buf)
		if err != nil {
			if !leg.closing.Load() {
				leg.mgr.s.lg.Warn("upstream leg lost", "source", leg.key.source, "app", leg.key.app, "err", err)
			}
			return relayRedial
		}
		buf = b
		switch kind {
		case FrameTransmission, FrameTransmissionOff:
			payload := buf
			if kind == FrameTransmissionOff {
				if len(payload) < 8 {
					return relayRedial
				}
				leg.lastOffset.Store(binary.LittleEndian.Uint64(payload))
				leg.seenOffset.Store(true)
				leg.durable.Store(true)
				payload = payload[8:]
			}
			leg.mgr.s.ctr.fedRelayFrames.Add(1)
			var ts int64
			if leg.mgr.lat != nil && nframes%relaySampleEvery == 0 {
				if l, _, err := wire.DecodeTransmissionInto(&scratch, leg.schema, labels[:0], payload); err == nil {
					labels = l
					ts = scratch.TS.UnixNano()
				}
			}
			nframes++
			leg.fanout(kind, buf, ts)
		case FrameQoS:
			// The core degraded (or restored) the group's effective
			// quality; forward the announcement to every member.
			if scale, err := DecodeQoS(buf); err == nil {
				leg.forwardQoS(scale)
			}
		case FrameHeartbeat:
			// Members heartbeat on their own writer's idle timer.
		case FrameGoodbye:
			if leg.closing.Load() {
				return relayClosed
			}
			if string(buf) == goodbyeDrainTag {
				return relayRedial
			}
			return relayFinish
		case FrameError:
			leg.mgr.s.lg.Warn("upstream leg error", "source", leg.key.source, "app", leg.key.app, "err", string(buf))
			return relayRedial
		}
	}
}

// relaySampleEvery sets the relay-latency sampling period: one in this
// many relayed frames is decoded for its source timestamp.
const relaySampleEvery = 8

// fanout hands one reconstructed frame to every local member: encoded
// once into a pooled refcounted frame, retained per member, one queue
// hand-off each. The member list is copied under the lock so a slow
// member blocking under PolicyBlock never holds up a concurrent
// detach.
func (leg *relayLeg) fanout(kind byte, payload []byte, ts int64) {
	leg.mu.Lock()
	members := append(leg.scratch[:0], leg.members...)
	leg.scratch = members
	leg.mu.Unlock()
	if len(members) == 0 {
		return
	}
	fr := getFrame()
	b := beginFrame(fr.buf, kind)
	b = append(b, payload...)
	fr.buf = endFrame(b)
	fr.ts = ts
	fr.src = leg.mgr.lat
	fr.retain(len(members))
	for _, sub := range members {
		batch := getBatch()
		batch.frames = append(batch.frames, fr)
		sub.sendBatch(batch)
	}
}

// forwardQoS mirrors an upstream QoS announcement to every member.
func (leg *relayLeg) forwardQoS(scale float64) {
	leg.mu.Lock()
	members := append(leg.scratch[:0], leg.members...)
	leg.scratch = members
	leg.mu.Unlock()
	bits := math.Float64bits(scale)
	for _, sub := range members {
		sub.qosScale.Store(bits)
		select {
		case sub.qosKick <- struct{}{}:
		default:
		}
	}
}

// finishMembers ends every member's stream gracefully (the upstream
// source finished): the member writers drain their queues and send the
// same goodbye a single-node subscriber would receive.
func (leg *relayLeg) finishMembers() {
	leg.mu.Lock()
	members := append([]*subscriber(nil), leg.members...)
	leg.mu.Unlock()
	for _, sub := range members {
		sub.finishStream()
	}
}

// redial re-establishes the upstream leg after a drain goodbye, an
// error, or a rebalance-forced disconnect, with exponential backoff.
// Against a durable core it resumes from lastOffset+1 — the splice
// fence on the core makes the replayed tail plus the live stream
// gapless and duplicate-free — and falls back to a live subscribe when
// resume is impossible (non-durable core, or the source moved to a
// core whose log does not contain the old offsets).
func (leg *relayLeg) redial() bool {
	m := leg.mgr
	backoff := 20 * time.Millisecond
	for {
		if leg.closing.Load() {
			return false
		}
		core, ok := m.s.ownerOf(leg.key.source)
		if !ok {
			return false
		}
		if core.Name != leg.coreName {
			// The source moved: offsets name positions in the old core's
			// log and mean nothing on the new one. Rejoin live; the
			// rebalance protocol quiesces publishers across the move, so
			// the live rejoin loses nothing.
			leg.seenOffset.Store(false)
			leg.durable.Store(false)
		}
		resume := leg.durable.Load() && leg.seenOffset.Load()
		conn, payload, err := leg.dialUpstream(core, resume)
		if err == nil {
			if schema, derr := DecodeSchema(payload); derr == nil {
				leg.schema = schema
			}
			leg.mu.Lock()
			if leg.closing.Load() {
				leg.mu.Unlock()
				conn.Close()
				return false
			}
			leg.conn, leg.coreName = conn, core.Name
			leg.mu.Unlock()
			m.s.ctr.fedLegRedials.Add(1)
			if resume {
				m.s.ctr.fedLegResumes.Add(1)
			}
			m.s.lg.Info("upstream leg re-established", "source", leg.key.source, "app", leg.key.app,
				"core", core.Name, "resume", resume)
			return true
		}
		if resume && errors.Is(err, ErrResumeUnavailable) {
			// The core came back without its log (or without durability);
			// a live rejoin is the best remaining contract.
			leg.seenOffset.Store(false)
			leg.durable.Store(false)
			continue
		}
		select {
		case <-leg.bye:
			return false
		case <-m.s.stop:
			return false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// shutdown tears down every leg during server drain: upstream conns
// close (the cores clean their sessions on disconnect), run loops
// exit, and every local member's stream finishes with the drain-tagged
// goodbye the writer emits while the server drains.
func (m *relayMgr) shutdown() {
	m.mu.Lock()
	m.closed = true
	legs := make([]*relayLeg, 0, len(m.legs))
	for _, leg := range m.legs {
		legs = append(legs, leg)
	}
	m.legs = make(map[legKey]*relayLeg)
	m.mu.Unlock()
	for _, leg := range legs {
		if leg.closing.CompareAndSwap(false, true) {
			// Lost to a concurrent last-member detach otherwise: it owns
			// bye, and its teardown closes the leg on its own.
			close(leg.bye)
		}
		leg.mu.Lock()
		conn := leg.conn
		leg.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
	}
	for _, leg := range legs {
		<-leg.done
		leg.finishMembers()
	}
}

// counts reports the live leg and member totals.
func (m *relayMgr) counts() (legs, members int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, leg := range m.legs {
		legs++
		leg.mu.Lock()
		members += len(leg.members)
		leg.mu.Unlock()
	}
	return legs, members
}

// serveEdgeSubscriber runs a local subscriber session on an edge node:
// instead of joining an engine, the session joins (or creates) the
// upstream leg for its group and fans out from it. The handshake
// answer is the core's own hello-ok schema, so clients cannot tell an
// edge from a single-node broker.
func (s *Server) serveEdgeSubscriber(conn net.Conn, h SubHello, spec quality.Spec) {
	if h.Relay {
		s.reject(conn, fmt.Errorf("edge node cannot serve a relay leg (relay hellos go to cores)"))
		return
	}
	if h.Resume {
		// Resume state lives in the core's durable log. A partitioned
		// edge resumes its upstream legs itself; local clients just
		// reconnect and stream live. The typed rejection is what makes
		// that true: a reconnecting client redialing with Resume matches
		// ErrResumeUnavailable and falls back to a live re-subscription.
		s.reject(conn, fmt.Errorf("%w: an edge node serves live streams only (its upstream leg resumes on the subscribers' behalf)", ErrResumeUnavailable))
		return
	}
	if s.isDraining() {
		s.reject(conn, errDraining)
		return
	}
	queue := h.Queue
	if queue <= 0 {
		queue = s.cfg.SubscriberQueue
	}
	if queue > s.cfg.MaxSubscriberQueue {
		queue = s.cfg.MaxSubscriberQueue
	}
	if s.cfg.SubscriberSendBuffer > 0 {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(s.cfg.SubscriberSendBuffer)
		}
	}
	// The canonical spec rendering is the dedup key: equivalent specs
	// parse and re-render identically, so equal groups share one leg.
	key := legKey{source: h.Source, app: h.App, spec: spec.String()}
	var (
		leg *relayLeg
		sub *subscriber
	)
	for {
		var err error
		leg, err = s.fed.ensureLeg(key, queue)
		if err != nil {
			s.reject(conn, err)
			return
		}
		sub = newSubscriber(s, h.App, h.Source, conn, queue)
		sub.leg = leg
		if leg.attach(sub) {
			break
		}
		// The leg closed between lookup and attach (last member left);
		// ensureLeg will wait out the teardown and dial a fresh one.
	}
	if err := WriteFrame(conn, FrameHelloOK, leg.schemaPayload); err != nil {
		s.removeSubscriber(sub)
		conn.Close()
		return
	}
	s.ctr.subscribersAccepted.Add(1)
	s.lg.Info("subscriber joined", "app", h.App, "source", h.Source, "spec", key.spec, "via_leg", true)
	s.connWG.Add(1)
	go sub.writeLoop()
	sub.readLoop()
}

// FederationStats is a point-in-time view of a node's federation
// state, for metrics, loadbench reports and introspection.
type FederationStats struct {
	Role string `json:"role"`
	Self string `json:"self,omitempty"`
	// UpstreamLegs and LocalSubscribers describe an edge's relay state;
	// DedupRatio is local subscribers per upstream leg — the group-aware
	// dedup factor the federation exists to deliver (1 means no sharing;
	// K means each inter-node stream serves K local sessions).
	UpstreamLegs     int     `json:"upstream_legs"`
	LocalSubscribers int     `json:"local_subscribers"`
	DedupRatio       float64 `json:"dedup_ratio"`
	// Relay is the sampled relay delivery latency (tuple source
	// timestamp to edge egress write).
	Relay telemetry.LatencySnapshot `json:"relay_latency"`
}

// FederationStats snapshots the node's federation state. The zero Role
// string "single" reports a standalone node.
func (s *Server) FederationStats() FederationStats {
	st := FederationStats{
		Role: s.cfg.Federation.Role.String(),
		Self: s.cfg.Federation.Self,
	}
	if s.fed != nil {
		st.UpstreamLegs, st.LocalSubscribers = s.fed.counts()
		if st.UpstreamLegs > 0 {
			st.DedupRatio = float64(st.LocalSubscribers) / float64(st.UpstreamLegs)
		}
		st.Relay = s.fed.lat.Snapshot()
	}
	return st
}

// ownerOf resolves the core owning a source under the current
// topology; ok is false on a node with no core topology configured.
func (s *Server) ownerOf(source string) (federate.Node, bool) {
	s.fedMu.RLock()
	topo := s.topo
	s.fedMu.RUnlock()
	if topo == nil {
		return federate.Node{}, false
	}
	return topo.Owner(source), true
}

// UpdatePeers installs a new core peer list — the rebalance entry
// point for node join/leave. Placement recomputes immediately; on an
// edge, every leg whose source moved to a different core is forced off
// its connection, and its run loop re-subscribes live against the new
// owner. Callers orchestrating a move quiesce the affected publishers
// (Sync, then reopen on the new owner) around this call; the parity
// suite pins the resulting streams gapless.
func (s *Server) UpdatePeers(cores []federate.Node) error {
	topo, err := federate.NewTopology(cores)
	if err != nil {
		return err
	}
	s.fedMu.Lock()
	s.topo = topo
	s.fedMu.Unlock()
	if s.fed == nil {
		return nil
	}
	s.fed.mu.Lock()
	legs := make([]*relayLeg, 0, len(s.fed.legs))
	for _, leg := range s.fed.legs {
		legs = append(legs, leg)
	}
	s.fed.mu.Unlock()
	moved := 0
	for _, leg := range legs {
		owner := topo.Owner(leg.key.source)
		leg.mu.Lock()
		conn := leg.conn
		stale := conn != nil && leg.coreName != owner.Name
		leg.mu.Unlock()
		if stale {
			// Cutting the connection sends the run loop through redial,
			// which re-resolves the owner and rejoins there.
			conn.Close()
			moved++
		}
	}
	s.lg.Info("peers updated", "cores", len(cores), "legs_moved", moved)
	return nil
}
