// Package server implements the networked streaming service: a TCP
// server that accepts source sessions (publishers streaming wire-encoded
// tuples) and subscriber sessions (applications sending a quality
// specification and receiving their filtered transmission stream), all
// multiplexed onto the sharded group-aware filtering runtime
// (internal/shard) with dynamic group membership (internal/core
// AddFilter/RemoveFilter).
//
// The protocol frames the binary tuple encoding of internal/wire:
//
//	frame:  u8 kind | u32 payload length (little-endian) | payload
//
// A connection opens with exactly one hello frame declaring its role:
//
//	source hello:     name | u16 attr count | attr names   (strings are uvarint length + bytes)
//	subscriber hello: app name | source name | quality spec (internal/quality notation)
//
// The server answers hello-ok (carrying the source schema for
// subscribers, empty for sources) or error (a message, then close). After
// the handshake a source streams tuple frames (wire tuple encoding bound
// to the advertised schema) interleaved with heartbeats; a subscriber
// receives transmission frames (wire transmission encoding: destination
// labels + tuple) and heartbeats. Goodbye announces a graceful end of
// stream in either direction. A source may interleave ping frames: the
// server answers each with a pong once every earlier tuple has been
// submitted to the shard runtime (the Sync barrier). A subscriber that
// sends its goodbye receives a final goodbye back once its filter has
// left the live group, so a departure can be awaited.
package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// Frame kinds.
const (
	// FrameSourceHello opens a source (publisher) session.
	FrameSourceHello byte = 1
	// FrameSubHello opens a subscriber session.
	FrameSubHello byte = 2
	// FrameHelloOK acknowledges a hello; for subscribers it carries the
	// source schema.
	FrameHelloOK byte = 3
	// FrameError carries a fatal error message; the sender closes after.
	FrameError byte = 4
	// FrameTuple carries one wire-encoded tuple (source -> server).
	FrameTuple byte = 5
	// FrameTransmission carries one wire-encoded labeled transmission
	// (server -> subscriber).
	FrameTransmission byte = 6
	// FrameHeartbeat is an empty liveness frame.
	FrameHeartbeat byte = 7
	// FrameGoodbye announces a graceful end of stream. An empty payload
	// is a plain end (the source finished); the payload goodbyeDrainTag
	// marks an end forced by server shutdown or drain, which
	// reconnect-aware clients treat as an invitation to re-establish the
	// session against a restarted server.
	FrameGoodbye byte = 8
	// FramePing is a publish barrier (source -> server): the server
	// submits every tuple received before it to the shard ring, then
	// echoes the payload back in a FramePong. When the pong arrives, the
	// pinged tuples are ordered ahead of any membership change a later
	// subscribe or unsubscribe applies — the ordering guarantee behind
	// Source.Sync in the unified broker API.
	FramePing byte = 9
	// FramePong answers a FramePing with the same payload.
	FramePong byte = 10
	// FrameTransmissionOff carries one labeled transmission prefixed
	// with its u64 little-endian durable log offset (server ->
	// subscriber). A durable server sends all transmissions in this
	// form so every delivery names the checkpoint to resume after;
	// non-durable servers keep the offset-less FrameTransmission.
	FrameTransmissionOff byte = 11
	// FrameQoS announces a quality-of-service change to a subscriber
	// (server -> subscriber) under the degrade slow-consumer policy: the
	// payload is the u64 little-endian bit pattern of the float64
	// granularity scale now applied to the session's filter (1 = the
	// subscribed quality, larger = coarser). Informational — the
	// delivery stream itself is unchanged in framing, only in content.
	FrameQoS byte = 12
)

// goodbyeDrainTag is the FrameGoodbye payload marking a stream end
// forced by server shutdown or drain rather than by the source
// finishing; clients map it to ErrServerDraining.
const goodbyeDrainTag = "drain"

// goodbyeDrainPayload is the drain tag as a reusable frame payload.
var goodbyeDrainPayload = []byte(goodbyeDrainTag)

// SubProtoVersion is the subscriber protocol version this package
// speaks. Version 2 (the durability bump) adds the trailing
// version/resume fields to the subscriber hello and the offset-bearing
// FrameTransmissionOff delivery frame. A version-1 hello (no trailer)
// is still decoded, but a durable server rejects it: its encode-once
// fan-out produces only offset-bearing frames, which a v1 client would
// not understand.
const SubProtoVersion = 2

// SubProtoVersionRelay is the subscriber protocol version spoken by an
// edge node's upstream legs (the federation bump): it appends a relay
// section to the version-2 hello naming the edge the leg belongs to, so
// the core can account and introspect relay sessions separately from
// direct subscribers. Everything after the handshake is unchanged — a
// relay leg receives the exact transmission stream a direct subscriber
// with the same app and spec would, which is what makes cross-node
// fan-out byte-identical to the single-node run.
const SubProtoVersionRelay = 3

// MaxFramePayload bounds a frame payload; larger frames are rejected as
// malformed (a tuple of 65535 float64 values is ~512KiB).
const MaxFramePayload = 1 << 20

// frameHeaderLen is the encoded size of a frame header.
const frameHeaderLen = 1 + 4

// AppendFrame appends a framed payload to buf.
func AppendFrame(buf []byte, kind byte, payload []byte) []byte {
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// WriteFrame writes one frame, staging it in a pooled encode buffer so
// control-plane writes (hellos, heartbeats, goodbyes, errors) do not
// allocate per frame.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("server: frame payload %d exceeds limit", len(payload))
	}
	bp := wire.GetBuf()
	buf := AppendFrame((*bp)[:0], kind, payload)
	_, err := w.Write(buf)
	*bp = buf
	wire.PutBuf(bp)
	return err
}

// ReadFrame reads one frame, rejecting payloads over MaxFramePayload.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	kind, payload, err := ReadFrameInto(r, nil)
	return kind, payload, err
}

// ReadFrameInto is ReadFrame with a caller-recycled payload buffer: the
// returned payload aliases buf (grown as needed) and is valid only until
// the next call with the same buffer. Read loops that decode payloads
// without retaining them use it to keep the steady state allocation-free;
// it returns the payload so the caller can carry the grown buffer
// forward.
func ReadFrameInto(r io.Reader, buf []byte) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, buf, err
	}
	kind := hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFramePayload {
		return 0, buf, fmt.Errorf("server: frame payload %d exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, buf, fmt.Errorf("server: truncated frame payload: %w", err)
	}
	return kind, buf, nil
}

// beginFrame starts encoding a frame in place at the start of buf: it
// appends the kind and a length placeholder for endFrame to patch. The
// frame must begin at buf[0].
func beginFrame(buf []byte, kind byte) []byte {
	return append(buf, kind, 0, 0, 0, 0)
}

// endFrame patches the payload length of a frame started with beginFrame.
func endFrame(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(buf)-frameHeaderLen))
	return buf
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readString consumes a uvarint-length-prefixed string.
func readString(data []byte) (string, int, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 {
		return "", 0, fmt.Errorf("server: bad string length")
	}
	if uint64(len(data)-n) < l {
		return "", 0, fmt.Errorf("server: truncated string (%d of %d bytes)", len(data)-n, l)
	}
	return string(data[n : n+int(l)]), n + int(l), nil
}

// EncodeSourceHello encodes a source hello payload.
func EncodeSourceHello(name string, schema *tuple.Schema) ([]byte, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty source name")
	}
	if schema == nil {
		return nil, fmt.Errorf("server: nil schema")
	}
	buf := appendString(nil, name)
	return appendSchema(buf, schema)
}

// DecodeSourceHello decodes a source hello payload.
func DecodeSourceHello(data []byte) (name string, schema *tuple.Schema, err error) {
	name, n, err := readString(data)
	if err != nil {
		return "", nil, err
	}
	if name == "" {
		return "", nil, fmt.Errorf("server: empty source name")
	}
	schema, _, err = decodeSchema(data[n:])
	if err != nil {
		return "", nil, err
	}
	return name, schema, nil
}

// SubHello is a decoded subscriber hello. Version 1 payloads carry
// app, source, spec and queue; version 2 appends the protocol version
// and an optional resume point; version 3 appends a relay section
// identifying an edge node's upstream leg. Resume distinguishes "no
// resume" from "resume from offset 0".
type SubHello struct {
	App, Source, Spec string
	Queue             int
	Version           int
	Resume            bool
	ResumeFrom        uint64
	Relay             bool
	RelayEdge         string
}

// EncodeSubHello encodes a subscriber hello payload with no resume
// request. queue requests a per-subscriber send-queue depth; 0 accepts
// the server default.
func EncodeSubHello(app, source, spec string, queue int) ([]byte, error) {
	return EncodeSubHelloResume(app, source, spec, queue, false, 0)
}

// EncodeSubHelloResume encodes a subscriber hello payload, optionally
// requesting replay of the source's durable log from a record offset.
// The version/resume fields trail the version-1 payload, so old servers
// that ignore trailing bytes would misparse them — which is why the
// hello always carries an explicit version for the server to check.
func EncodeSubHelloResume(app, source, spec string, queue int, resume bool, from uint64) ([]byte, error) {
	if app == "" || source == "" || spec == "" {
		return nil, fmt.Errorf("server: subscriber hello needs app, source and spec")
	}
	if queue < 0 {
		return nil, fmt.Errorf("server: negative queue depth %d", queue)
	}
	buf := appendString(nil, app)
	buf = appendString(buf, source)
	buf = appendString(buf, spec)
	buf = binary.AppendUvarint(buf, uint64(queue))
	buf = binary.AppendUvarint(buf, SubProtoVersion)
	if resume {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, from)
	} else {
		buf = append(buf, 0)
	}
	return buf, nil
}

// EncodeSubHelloRelay encodes the version-3 subscriber hello an edge
// node opens an upstream leg with: the version-2 resume form plus a
// relay section naming the edge. The app and spec are the REAL group
// identity of the local subscribers the leg serves — never a synthetic
// relay name — so the core derives exactly the membership a single-node
// deployment would, and the destination labels inside every
// transmission stay byte-identical across topologies.
func EncodeSubHelloRelay(app, source, spec string, queue int, resume bool, from uint64, edge string) ([]byte, error) {
	if edge == "" {
		return nil, fmt.Errorf("server: relay hello needs an edge name")
	}
	if app == "" || source == "" || spec == "" {
		return nil, fmt.Errorf("server: subscriber hello needs app, source and spec")
	}
	if queue < 0 {
		return nil, fmt.Errorf("server: negative queue depth %d", queue)
	}
	buf := appendString(nil, app)
	buf = appendString(buf, source)
	buf = appendString(buf, spec)
	buf = binary.AppendUvarint(buf, uint64(queue))
	buf = binary.AppendUvarint(buf, SubProtoVersionRelay)
	if resume {
		buf = append(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, from)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, 1)
	buf = appendString(buf, edge)
	return buf, nil
}

// DecodeSubHello decodes a subscriber hello payload of either protocol
// version: a payload ending right after the queue depth is version 1.
func DecodeSubHello(data []byte) (h SubHello, err error) {
	app, n, err := readString(data)
	if err != nil {
		return SubHello{}, err
	}
	source, m, err := readString(data[n:])
	if err != nil {
		return SubHello{}, err
	}
	spec, k, err := readString(data[n+m:])
	if err != nil {
		return SubHello{}, err
	}
	rest := data[n+m+k:]
	q, qn := binary.Uvarint(rest)
	if qn <= 0 || q > 1<<20 {
		return SubHello{}, fmt.Errorf("server: bad queue depth in subscriber hello")
	}
	rest = rest[qn:]
	if app == "" || source == "" || spec == "" {
		return SubHello{}, fmt.Errorf("server: subscriber hello needs app, source and spec")
	}
	h = SubHello{App: app, Source: source, Spec: spec, Queue: int(q), Version: 1}
	if len(rest) == 0 {
		return h, nil
	}
	v, vn := binary.Uvarint(rest)
	if vn <= 0 || v < 2 || v > 1<<10 {
		return SubHello{}, fmt.Errorf("server: bad protocol version in subscriber hello")
	}
	rest = rest[vn:]
	h.Version = int(v)
	if len(rest) < 1 {
		return SubHello{}, fmt.Errorf("server: truncated resume flag in subscriber hello")
	}
	flag := rest[0]
	rest = rest[1:]
	switch flag {
	case 0:
	case 1:
		if len(rest) < 8 {
			return SubHello{}, fmt.Errorf("server: truncated resume offset in subscriber hello")
		}
		h.Resume = true
		h.ResumeFrom = binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
	default:
		return SubHello{}, fmt.Errorf("server: bad resume flag in subscriber hello")
	}
	if h.Version >= SubProtoVersionRelay {
		if len(rest) < 1 {
			return SubHello{}, fmt.Errorf("server: truncated relay flag in subscriber hello")
		}
		flag := rest[0]
		rest = rest[1:]
		switch flag {
		case 0:
		case 1:
			edge, en, err := readString(rest)
			if err != nil {
				return SubHello{}, fmt.Errorf("server: relay edge name: %w", err)
			}
			if edge == "" {
				return SubHello{}, fmt.Errorf("server: empty relay edge name in subscriber hello")
			}
			h.Relay, h.RelayEdge = true, edge
			rest = rest[en:]
		default:
			return SubHello{}, fmt.Errorf("server: bad relay flag in subscriber hello")
		}
	}
	if len(rest) != 0 {
		return SubHello{}, fmt.Errorf("server: trailing bytes in subscriber hello")
	}
	return h, nil
}

// appendSchema appends a schema (u16 count + names).
func appendSchema(buf []byte, s *tuple.Schema) ([]byte, error) {
	names := s.Names()
	if len(names) > 1<<16-1 {
		return nil, fmt.Errorf("server: schema with %d attributes exceeds the u16 limit", len(names))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(names)))
	for _, n := range names {
		buf = appendString(buf, n)
	}
	return buf, nil
}

// decodeSchema consumes an encoded schema.
func decodeSchema(data []byte) (*tuple.Schema, int, error) {
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("server: truncated schema header")
	}
	count := int(binary.LittleEndian.Uint16(data))
	off := 2
	names := make([]string, 0, count)
	for i := 0; i < count; i++ {
		name, n, err := readString(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("server: schema attribute %d: %w", i, err)
		}
		names = append(names, name)
		off += n
	}
	s, err := tuple.NewSchema(names...)
	if err != nil {
		return nil, 0, fmt.Errorf("server: %w", err)
	}
	return s, off, nil
}

// EncodeQoS encodes a FrameQoS payload.
func EncodeQoS(scale float64) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], math.Float64bits(scale))
	return p[:]
}

// DecodeQoS decodes a FrameQoS payload.
func DecodeQoS(data []byte) (float64, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("server: bad QoS frame length %d", len(data))
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(data))
	if !(scale > 0) || math.IsInf(scale, 0) {
		return 0, fmt.Errorf("server: bad QoS scale %g", scale)
	}
	return scale, nil
}

// EncodeSourceHelloOK encodes the source hello-ok payload. A non-durable
// server sends an empty payload (also what pre-durability servers sent,
// so old publishers need no change). A durable server advertises a
// resume hint: the highest tuple sequence its log holds for this source
// (maxSeq < 0 when the log is empty), which a reconnecting publisher
// uses to trim its republish window to exactly the tuples the log never
// saw.
func EncodeSourceHelloOK(maxSeq int64, durable bool) []byte {
	if !durable {
		return nil
	}
	if maxSeq < 0 {
		return []byte{0}
	}
	buf := make([]byte, 1, 9)
	buf[0] = 1
	return binary.LittleEndian.AppendUint64(buf, uint64(maxSeq))
}

// DecodeSourceHelloOK decodes a source hello-ok payload; durable is
// false for the empty (non-durable or legacy) form, and maxSeq is -1
// when a durable log holds nothing for the source.
func DecodeSourceHelloOK(data []byte) (maxSeq int64, durable bool, err error) {
	switch {
	case len(data) == 0:
		return 0, false, nil
	case data[0] == 0 && len(data) == 1:
		return -1, true, nil
	case data[0] == 1 && len(data) == 9:
		return int64(binary.LittleEndian.Uint64(data[1:])), true, nil
	}
	return 0, false, fmt.Errorf("server: malformed source hello-ok (%d bytes)", len(data))
}

// EncodeSchema encodes a schema payload (the hello-ok body sent to
// subscribers).
func EncodeSchema(s *tuple.Schema) ([]byte, error) { return appendSchema(nil, s) }

// DecodeSchema decodes a schema payload.
func DecodeSchema(data []byte) (*tuple.Schema, error) {
	s, _, err := decodeSchema(data)
	return s, err
}
