package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gasf/internal/tuple"
)

// TestSubscriptionChurn drives several publishers while subscribers join
// and leave mid-stream, and asserts every stable subscriber receives its
// source's tuples exactly once, in order — no losses, no duplicates —
// regardless of the churn around it. Run under -race in CI.
func TestSubscriptionChurn(t *testing.T) {
	const (
		sources        = 3
		tuplesPerSrc   = 1500
		churnersPerSrc = 4
	)
	s := startServer(t, Config{})
	addr := s.Addr().String()

	schema, err := tuple.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, sources*(churnersPerSrc+2))

	for si := 0; si < sources; si++ {
		source := fmt.Sprintf("src%d", si)
		pub, err := DialPublisher(addr, source, schema)
		if err != nil {
			t.Fatal(err)
		}
		// The stable subscriber joins before the first tuple, with a
		// pass-all spec: values step by 1 > delta, so every tuple is a
		// closed singleton set and must be delivered exactly once.
		stable, err := DialSubscriber(addr, "stable", source, "DC1(v, 0.5, 0)")
		if err != nil {
			t.Fatal(err)
		}

		wg.Add(1)
		go func(sub *Subscriber, source string) { // stable consumer
			defer wg.Done()
			next := 0
			for {
				d, err := sub.Recv()
				if err == ErrStreamEnded {
					break
				}
				if err != nil {
					errs <- fmt.Errorf("%s stable: %w", source, err)
					return
				}
				if d.Tuple.Seq != next {
					errs <- fmt.Errorf("%s stable: got seq %d, want %d (lost or duplicated)", source, d.Tuple.Seq, next)
					return
				}
				next++
			}
			if next != tuplesPerSrc {
				errs <- fmt.Errorf("%s stable: stream ended after %d of %d tuples", source, next, tuplesPerSrc)
			}
		}(stable, source)

		wg.Add(1)
		go func(pub *Publisher, source string, seed int64) { // publisher
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			base := time.Unix(1, 0)
			for i := 0; i < tuplesPerSrc; i++ {
				tp, err := tuple.New(schema, i, base.Add(time.Duration(i+1)*time.Millisecond), []float64{float64(i)})
				if err != nil {
					errs <- err
					return
				}
				if err := pub.Publish(tp); err != nil {
					errs <- fmt.Errorf("%s publish %d: %w", source, i, err)
					return
				}
				if i%97 == 0 {
					time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
				}
			}
			if err := pub.Close(); err != nil {
				errs <- err
			}
		}(pub, source, int64(si))

		for ci := 0; ci < churnersPerSrc; ci++ {
			wg.Add(1)
			go func(source string, ci int) { // churning subscriber
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + ci)))
				for round := 0; ; round++ {
					app := fmt.Sprintf("churn%d-%d", ci, round)
					sub, err := DialSubscriber(addr, app, source, "DC1(v, 3.5, 1.5)")
					if err != nil {
						// The source may already be finished; churn ends.
						return
					}
					// Consume a random number of deliveries, then leave.
					limit := rng.Intn(40)
					ended := false
					for i := 0; i < limit; i++ {
						if _, err := sub.Recv(); err != nil {
							ended = true
							break
						}
					}
					sub.Close()
					if ended {
						return
					}
				}
			}(source, ci)
		}
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
