package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gasf/internal/telemetry"
)

// get issues one request against the server's metrics mux and returns
// the response code and body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// TestMetricsStrictExposition runs live traffic through a server with
// stage timing sampled on every event, then parses the complete
// /metrics output with the strict exposition validator — the
// regression test for the historical bug where shard series were
// emitted with no HELP/TYPE metadata. It also pins that the telemetry
// families (stage histograms, delivery summaries, per-group summaries)
// are present and populated.
func TestMetricsStrictExposition(t *testing.T) {
	s := startServer(t, Config{TelemetrySampleEvery: 1})
	addr := s.Addr().String()
	sr := stepSeries(t, 200, 0)

	pub, err := DialPublisher(addr, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := DialSubscriber(addr, "A", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Scrape while the source session is still connected: the
	// per-group latency series exists for live sources. The engine may
	// hold back the final tuple until end-of-stream, so wait for all
	// but the last delivery.
	waitFor(t, "deliveries to flow", func() bool {
		return s.Counters().DeliveriesOut >= uint64(sr.Len()-1)
	})

	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if err := telemetry.Validate([]byte(body)); err != nil {
		t.Fatalf("/metrics output failed strict validation: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE gasf_shard_enqueued_total counter",
		"# TYPE gasf_stage_duration_seconds histogram",
		`gasf_stage_duration_seconds_bucket{stage="engine_step",le="+Inf"}`,
		"# TYPE gasf_delivery_latency_seconds summary",
		`gasf_delivery_latency_seconds{policy="block",quantile="0.5"}`,
		"# TYPE gasf_group_delivery_latency_seconds summary",
		`gasf_group_delivery_latency_seconds_count{source="src"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
	// With sampling on every event and 200 delivered tuples, the
	// delivery summary cannot be empty.
	if !strings.Contains(body, "gasf_delivery_latency_seconds_count") ||
		strings.Contains(body, `gasf_delivery_latency_seconds_count{policy="block"} 0`) {
		t.Error("delivery latency summary recorded no samples")
	}

	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, sub); len(got) != sr.Len() {
		t.Fatalf("subscriber got %d deliveries, want %d", len(got), sr.Len())
	}
}

// TestReadyzDrainWindow is the drain-window regression test: once a
// graceful Shutdown begins, /readyz must flip to 503 "draining" for the
// whole drain window (so a load balancer stops routing) while /healthz
// keeps answering 200 (the process is alive and draining, not dead).
func TestReadyzDrainWindow(t *testing.T) {
	s, err := Start(Config{Logf: t.Logf, DrainGrace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sr := stepSeries(t, 1, 0)
	// A connected publisher holds the drain window open: Shutdown
	// waits up to DrainGrace for it to finish.
	pub, err := DialPublisher(s.Addr().String(), "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if code, body := get(t, s, "/readyz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("readyz before drain: %d %q", code, body)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitFor(t, "readyz to report draining", func() bool {
		code, body := get(t, s, "/readyz")
		return code == 503 && strings.Contains(body, "draining")
	})
	// Liveness must not flip during the drain window.
	if code, body := get(t, s, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz during drain: %d %q", code, body)
	}
	pub.Close()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Still draining after shutdown completes: the flag is one-way.
	if code, _ := get(t, s, "/readyz"); code != 503 {
		t.Fatalf("readyz after shutdown: %d, want 503", code)
	}
}

// TestDebugEndpoint checks /debug/gasf serves a well-formed JSON dump
// of the live introspection state: sessions, counters, shard snapshots,
// and the telemetry quantiles.
func TestDebugEndpoint(t *testing.T) {
	s := startServer(t, Config{TelemetrySampleEvery: 1})
	addr := s.Addr().String()
	sr := stepSeries(t, 50, 0)
	pub, err := DialPublisher(addr, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := DialSubscriber(addr, "A", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < sr.Len(); i++ {
		if err := pub.Publish(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "tuples to be ingested", func() bool { return s.Counters().TuplesIn == uint64(sr.Len()) })

	code, body := get(t, s, "/debug/gasf")
	if code != 200 {
		t.Fatalf("/debug/gasf status %d", code)
	}
	var info DebugInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("debug payload not valid JSON: %v\n%s", err, body)
	}
	if info.Addr == "" || info.Policy == "" {
		t.Fatalf("debug payload missing addr/policy: %+v", info)
	}
	if info.Draining {
		t.Fatal("debug payload reports draining on a live server")
	}
	if len(info.Sources) != 1 || info.Sources[0].Name != "src" {
		t.Fatalf("debug sources %+v, want one named src", info.Sources)
	}
	if len(info.Subscribers) != 1 || info.Subscribers[0].App != "A" {
		t.Fatalf("debug subscribers %+v, want one app A", info.Subscribers)
	}
	if len(info.Shards) == 0 {
		t.Fatal("debug payload has no shard snapshots")
	}
	if info.Counters.TuplesIn != uint64(sr.Len()) {
		t.Fatalf("debug counters TuplesIn %d, want %d", info.Counters.TuplesIn, sr.Len())
	}
	if info.Telemetry == nil {
		t.Fatal("debug payload missing telemetry snapshot")
	}
	if info.Telemetry.SampleEvery != 1 {
		t.Fatalf("telemetry sample period %d, want 1", info.Telemetry.SampleEvery)
	}
}
