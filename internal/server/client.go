package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// withConnCtx runs one blocking connection operation under a context: if
// ctx fires mid-operation, an immediate deadline is armed on the
// connection so the operation unblocks, and the context error is
// reported instead of the deadline error. The fast path — a context that
// can never fire — costs nothing. set must arm the deadline relevant to
// op (read, write, or both).
func withConnCtx(ctx context.Context, set func(time.Time) error, op func() error) error {
	if ctx == nil || ctx.Done() == nil {
		return op()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	fired := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		set(time.Unix(1, 0))
		close(fired)
	})
	err := op()
	if !stop() {
		// The cancel func has started (perhaps after op finished); wait
		// for its deadline write to land before disarming, or the
		// disarm could be overwritten and poison every later call on
		// the session.
		<-fired
		set(time.Time{})
		if cerr := ctx.Err(); cerr != nil && err != nil {
			return cerr
		}
	}
	return err
}

// dialHello dials the server, sends one hello frame, and waits for the
// hello-ok (or error) answer, returning the ok payload.
func dialHello(addr string, kind byte, hello []byte, timeout time.Duration) (net.Conn, []byte, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, fmt.Errorf("server: %w", err)
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteFrame(conn, kind, hello); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("server: sending hello: %w", err)
	}
	k, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("server: reading hello answer: %w", err)
	}
	switch k {
	case FrameHelloOK:
		conn.SetDeadline(time.Time{})
		return conn, payload, nil
	case FrameError:
		conn.Close()
		return nil, nil, rejectedError(payload)
	default:
		conn.Close()
		return nil, nil, fmt.Errorf("server: unexpected hello answer kind %d", k)
	}
}

// Publisher is a client-side source session: it streams tuples of one
// schema to the server under an advertised source name.
type Publisher struct {
	conn   net.Conn
	schema *tuple.Schema
	source string
	// Resume hint from the handshake: the highest tuple sequence the
	// server's durable log holds for this source (resumeOK false against
	// a non-durable or pre-durability server; resumeSeq -1 on a durable
	// server whose log holds nothing for the source).
	resumeSeq int64
	resumeOK  bool

	mu      sync.Mutex
	buf     []byte
	lastTS  time.Time
	seq     int64
	pingSeq uint64
	closed  bool
}

// DialPublisher opens a source session. The schema travels in the
// handshake; every published tuple must use it.
func DialPublisher(addr, source string, schema *tuple.Schema) (*Publisher, error) {
	return DialPublisherTimeout(addr, source, schema, 0)
}

// DialPublisherTimeout is DialPublisher with an explicit dial-plus-
// handshake timeout; 0 means the 5s default.
func DialPublisherTimeout(addr, source string, schema *tuple.Schema, timeout time.Duration) (*Publisher, error) {
	hello, err := EncodeSourceHello(source, schema)
	if err != nil {
		return nil, err
	}
	conn, ok, err := dialHello(addr, FrameSourceHello, hello, timeout)
	if err != nil {
		return nil, err
	}
	p := &Publisher{conn: conn, schema: schema, source: source}
	if seq, durable, err := DecodeSourceHelloOK(ok); err != nil {
		conn.Close()
		return nil, err
	} else if durable {
		p.resumeSeq, p.resumeOK = seq, true
	}
	return p, nil
}

// Source returns the advertised source name.
func (p *Publisher) Source() string { return p.source }

// ResumeHint returns the highest tuple sequence the server's durable
// log already held for this source at the handshake (-1 for none), and
// whether the server provided a hint at all (only durable servers do).
// A reconnecting publisher republishes only the tuples of its unacked
// window with sequences above the hint, keeping the durable stream
// duplicate-free across the reconnect.
func (p *Publisher) ResumeHint() (maxSeq int64, ok bool) { return p.resumeSeq, p.resumeOK }

// Publish sends one tuple. Timestamps must be strictly increasing — the
// group-aware engine's region algebra depends on it — and the tuple must
// use the advertised schema. Publish applies backpressure: it blocks when
// the server's shard queue for this source is full.
func (p *Publisher) Publish(t *tuple.Tuple) error {
	if t == nil {
		return fmt.Errorf("server: nil tuple")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.publishLocked(t)
}

func (p *Publisher) publishLocked(t *tuple.Tuple) error {
	if p.closed {
		return fmt.Errorf("server: publisher closed")
	}
	if !p.lastTS.IsZero() && !t.TS.After(p.lastTS) {
		return fmt.Errorf("server: tuple %d timestamp %v not after previous %v", t.Seq, t.TS, p.lastTS)
	}
	// Encode the frame in place into the publisher's recycled buffer and
	// ship it with a single write: no per-publish allocation, one syscall.
	buf := beginFrame(p.buf[:0], FrameTuple)
	buf, err := wire.AppendTuple(buf, t)
	if err != nil {
		return err
	}
	p.buf = endFrame(buf)
	if _, err := p.conn.Write(p.buf); err != nil {
		return fmt.Errorf("server: publishing: %w", err)
	}
	p.lastTS = t.TS
	return nil
}

// PublishNow stamps the values with the current wall clock (strictly
// after the previous publish) and a fresh sequence number, then
// publishes. It is the convenient path for live feeds where the client
// does not manage timestamps itself; PublishNow and Publish may be mixed
// and called concurrently.
func (p *Publisher) PublishNow(values []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("server: publisher closed")
	}
	ts := time.Now()
	if !ts.After(p.lastTS) {
		ts = p.lastTS.Add(time.Nanosecond)
	}
	t, err := tuple.New(p.schema, int(p.seq), ts, values)
	if err != nil {
		return err
	}
	p.seq++
	return p.publishLocked(t)
}

// PublishNowBatch stamps and publishes a run of tuples with a single
// write: the frames are encoded back to back into the recycled buffer
// and cross the network — and, server-side, the shard ring — as one
// burst instead of one synchronization per tuple. Timestamps are the
// current wall clock, strictly increasing across the batch.
func (p *Publisher) PublishNowBatch(values [][]float64) error {
	if len(values) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("server: publisher closed")
	}
	// One clock read per batch; tuples step by a nanosecond so the
	// strictly-increasing timestamp contract holds within the burst.
	// Publisher state (seq, lastTS) is committed only once the whole
	// batch has validated and encoded, so a bad row leaves the session
	// exactly as it was — all-or-nothing, like Publish.
	ts := time.Now()
	seq, lastTS := p.seq, p.lastTS
	buf := p.buf[:0]
	for _, vals := range values {
		if !ts.After(lastTS) {
			ts = lastTS.Add(time.Nanosecond)
		}
		t, err := tuple.New(p.schema, int(seq), ts, vals)
		if err != nil {
			return err
		}
		// Frames after the first do not start at buf[0], so the length
		// patch is frame-relative rather than via beginFrame/endFrame.
		start := len(buf)
		buf = append(buf, FrameTuple, 0, 0, 0, 0)
		if buf, err = wire.AppendTuple(buf, t); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[start+1:], uint32(len(buf)-start-frameHeaderLen))
		seq++
		lastTS = ts
		ts = ts.Add(time.Nanosecond)
	}
	p.buf = buf
	if _, err := p.conn.Write(p.buf); err != nil {
		return fmt.Errorf("server: publishing batch: %w", err)
	}
	p.seq, p.lastTS = seq, lastTS
	return nil
}

// PublishBatch publishes a run of caller-timestamped tuples with a
// single write: the frames are encoded back to back into the recycled
// buffer and cross the network — and, server-side, the shard ring — as
// one burst. Timestamps must be strictly increasing across the batch and
// after the previous publish; a bad tuple leaves the session exactly as
// it was (all-or-nothing, like Publish). The slice is not retained.
func (p *Publisher) PublishBatch(tuples []*tuple.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("server: publisher closed")
	}
	lastTS := p.lastTS
	buf := p.buf[:0]
	for _, t := range tuples {
		if t == nil {
			return fmt.Errorf("server: nil tuple in batch")
		}
		if !t.TS.After(lastTS) {
			return fmt.Errorf("server: tuple %d timestamp %v not after previous %v", t.Seq, t.TS, lastTS)
		}
		// Frames after the first do not start at buf[0], so the length
		// patch is frame-relative rather than via beginFrame/endFrame.
		start := len(buf)
		buf = append(buf, FrameTuple, 0, 0, 0, 0)
		var err error
		if buf, err = wire.AppendTuple(buf, t); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[start+1:], uint32(len(buf)-start-frameHeaderLen))
		lastTS = t.TS
	}
	p.buf = buf
	if _, err := p.conn.Write(p.buf); err != nil {
		return fmt.Errorf("server: publishing batch: %w", err)
	}
	p.lastTS = lastTS
	return nil
}

// PublishContext is Publish bounded by ctx (the write unblocks when ctx
// fires).
func (p *Publisher) PublishContext(ctx context.Context, t *tuple.Tuple) error {
	return withConnCtx(ctx, p.conn.SetWriteDeadline, func() error { return p.Publish(t) })
}

// PublishBatchContext is PublishBatch bounded by ctx.
func (p *Publisher) PublishBatchContext(ctx context.Context, tuples []*tuple.Tuple) error {
	return withConnCtx(ctx, p.conn.SetWriteDeadline, func() error { return p.PublishBatch(tuples) })
}

// Sync is the publish barrier: it sends a ping and blocks until the
// server's pong, which the server only sends after submitting every
// previously published tuple to the shard runtime. When Sync returns,
// a membership change applied afterwards (a Subscribe or a subscriber
// departure) is ordered behind those tuples at the engine. It returns
// ErrServerDraining if the server is draining.
func (p *Publisher) Sync(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("server: publisher closed")
	}
	p.pingSeq++
	var nonce [8]byte
	binary.LittleEndian.PutUint64(nonce[:], p.pingSeq)
	return withConnCtx(ctx, p.conn.SetDeadline, func() error {
		if err := WriteFrame(p.conn, FramePing, nonce[:]); err != nil {
			return fmt.Errorf("server: sending ping: %w", err)
		}
		for {
			kind, payload, err := ReadFrame(p.conn)
			if err != nil {
				return fmt.Errorf("server: awaiting pong: %w", err)
			}
			switch kind {
			case FramePong:
				if len(payload) == len(nonce) && [8]byte(payload) == nonce {
					return nil
				}
				// A stale pong from an earlier timed-out Sync; keep
				// waiting for ours.
			case FrameGoodbye:
				return goodbyeEnd(payload)
			case FrameError:
				return fmt.Errorf("server: remote error: %s", payload)
			default:
				return fmt.Errorf("server: unexpected frame kind %d awaiting pong", kind)
			}
		}
	})
}

// Heartbeat tells the server the source is alive during a lull, resetting
// its flow-gap timer.
func (p *Publisher) Heartbeat() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("server: publisher closed")
	}
	return WriteFrame(p.conn, FrameHeartbeat, nil)
}

// Close ends the stream gracefully: the server finishes the source's
// engine, flushes the tail to its subscribers, and retires the session.
func (p *Publisher) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	_ = WriteFrame(p.conn, FrameGoodbye, nil)
	return p.conn.Close()
}

// Delivery is one transmission received by a subscriber: the tuple, the
// full destination label list the engine decided (this subscriber is one
// of them), and the client receive instant.
type Delivery struct {
	Tuple        *tuple.Tuple
	Destinations []string
	ReceivedAt   time.Time
	// Offset is the durable log offset of this transmission, valid when
	// the server runs with durability (offset-bearing frames). The
	// checkpoint contract: after processing the delivery at offset o,
	// resume with o+1 to continue exactly after it. Always 0 against a
	// non-durable server.
	Offset uint64
}

// Subscriber is a client-side application session: it joins a source's
// group with a quality spec and receives the filtered stream.
type Subscriber struct {
	conn   net.Conn
	br     *bufio.Reader
	buf    []byte
	schema *tuple.Schema
	app    string
	source string

	// RecvInto scratch: label views into the recycled payload buffer and
	// the session's interned label strings (destination sets repeat, so
	// steady-state receives allocate nothing; the interner's bounded
	// table keeps a long-lived session's memory flat even when the
	// destination labels churn without repeating).
	labelViews [][]byte
	labels     wire.Interner

	// qos holds the float64 bits of the last FrameQoS announcement
	// (0 until any arrives, read as scale 1).
	qos atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// DialSubscriber joins a source's group. spec is a quality specification
// in the paper's notation, e.g. "DC1(temperature, 0.5, 0.25)"; the
// returned subscriber carries the source schema from the handshake.
func DialSubscriber(addr, app, source, spec string) (*Subscriber, error) {
	return DialSubscriberBuffered(addr, app, source, spec, 0)
}

// DialSubscriberBuffered is DialSubscriber with an explicit server-side
// send-queue depth for this session (how many deliveries the server
// buffers before its slow-consumer policy applies); 0 accepts the server
// default.
func DialSubscriberBuffered(addr, app, source, spec string, queue int) (*Subscriber, error) {
	return DialSubscriberTimeout(addr, app, source, spec, queue, 0)
}

// DialSubscriberTimeout is DialSubscriberBuffered with an explicit
// dial-plus-handshake timeout; 0 means the 5s default.
func DialSubscriberTimeout(addr, app, source, spec string, queue int, timeout time.Duration) (*Subscriber, error) {
	return DialSubscriberOpts(addr, app, source, spec, SubDialOpts{Queue: queue, Timeout: timeout})
}

// SubDialOpts parameterizes a subscriber session dial beyond the
// required identity (app, source, spec).
type SubDialOpts struct {
	// Queue requests a server-side send-queue depth for this session;
	// 0 accepts the server default.
	Queue int
	// Resume requests replay of the source's durable log from
	// ResumeFrom before the live stream; the server splices the two at
	// a fenced cut-over so the session sees no gap and no duplicate.
	// Requires a durable server. Resume from 0 replays everything.
	Resume     bool
	ResumeFrom uint64
	// Timeout bounds the dial plus handshake; 0 means the 5s default.
	Timeout time.Duration
	// RecvBuffer, when positive, pins the connection's kernel receive
	// buffer to roughly this many bytes (and disables its autotuning).
	// By default the kernel grows the buffer by megabytes for a slow
	// reader, absorbing a large backlog before TCP backpressure reaches
	// the server — which delays the server's slow-consumer policy
	// (block, drop, degrade) from seeing a lagging consumer. A bounded
	// buffer makes consumer lag propagate promptly.
	RecvBuffer int
}

// DialSubscriberOpts joins a source's group with explicit session
// options, the full-control variant of DialSubscriber.
func DialSubscriberOpts(addr, app, source, spec string, o SubDialOpts) (*Subscriber, error) {
	hello, err := EncodeSubHelloResume(app, source, spec, o.Queue, o.Resume, o.ResumeFrom)
	if err != nil {
		return nil, err
	}
	conn, payload, err := dialHello(addr, FrameSubHello, hello, o.Timeout)
	if err != nil {
		return nil, err
	}
	schema, err := DecodeSchema(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if o.RecvBuffer > 0 {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(o.RecvBuffer)
		}
	}
	return &Subscriber{
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 32<<10),
		schema: schema,
		app:    app,
		source: source,
	}, nil
}

// Schema returns the source schema advertised in the handshake.
func (c *Subscriber) Schema() *tuple.Schema { return c.schema }

// App returns the application name of this session.
func (c *Subscriber) App() string { return c.app }

// Source returns the subscribed source name.
func (c *Subscriber) Source() string { return c.source }

// QoS returns the granularity scale the server last announced for this
// session with a FrameQoS frame: 1 until any announcement (and always 1
// outside the degrade slow-consumer policy), larger once the server has
// coarsened the session's effective spec to survive overload.
func (c *Subscriber) QoS() float64 {
	if bits := c.qos.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return 1
}

// Recv blocks for the next delivery. It returns io.EOF-wrapped errors on
// disconnect and a nil Delivery with ErrStreamEnded once the server ends
// the stream gracefully (source finished or server drained).
func (c *Subscriber) Recv() (*Delivery, error) {
	for {
		kind, payload, err := ReadFrameInto(c.br, c.buf)
		c.buf = payload[:cap(payload)]
		if err != nil {
			return nil, fmt.Errorf("server: receiving: %w", err)
		}
		switch kind {
		case FrameTransmission, FrameTransmissionOff:
			body, offset, err := splitOffset(kind, payload)
			if err != nil {
				return nil, err
			}
			t, dests, n, err := wire.DecodeTransmission(c.schema, body)
			if err != nil {
				return nil, err
			}
			if n != len(body) {
				return nil, fmt.Errorf("server: transmission frame carries %d trailing bytes", len(body)-n)
			}
			return &Delivery{Tuple: t, Destinations: dests, ReceivedAt: time.Now(), Offset: offset}, nil
		case FrameHeartbeat:
			continue
		case FrameQoS:
			if err := c.noteQoS(payload); err != nil {
				return nil, err
			}
			continue
		case FrameGoodbye:
			return nil, goodbyeEnd(payload)
		case FrameError:
			return nil, remoteError(payload)
		default:
			return nil, fmt.Errorf("server: unexpected frame kind %d", kind)
		}
	}
}

// RecvInto is the allocation-free Recv: it blocks for the next delivery
// and decodes it into d, reusing d.Tuple (allocated on first use), the
// Destinations backing array, and per-session interned label strings.
// Everything reachable from d is valid only until the next RecvInto with
// the same Delivery; consumers that retain tuples across receives must
// use Recv. It returns ErrStreamEnded like Recv.
func (c *Subscriber) RecvInto(d *Delivery) error {
	for {
		kind, payload, err := ReadFrameInto(c.br, c.buf)
		c.buf = payload[:cap(payload)]
		if err != nil {
			return fmt.Errorf("server: receiving: %w", err)
		}
		switch kind {
		case FrameTransmission, FrameTransmissionOff:
			body, offset, err := splitOffset(kind, payload)
			if err != nil {
				return err
			}
			if d.Tuple == nil {
				d.Tuple = new(tuple.Tuple)
			}
			views, n, err := wire.DecodeTransmissionInto(d.Tuple, c.schema, c.labelViews[:0], body)
			c.labelViews = views
			if err != nil {
				return err
			}
			if n != len(body) {
				return fmt.Errorf("server: transmission frame carries %d trailing bytes", len(body)-n)
			}
			d.Destinations = d.Destinations[:0]
			for _, v := range views {
				d.Destinations = append(d.Destinations, c.intern(v))
			}
			d.ReceivedAt = time.Now()
			d.Offset = offset
			return nil
		case FrameHeartbeat:
			continue
		case FrameQoS:
			if err := c.noteQoS(payload); err != nil {
				return err
			}
			continue
		case FrameGoodbye:
			return goodbyeEnd(payload)
		case FrameError:
			return remoteError(payload)
		default:
			return fmt.Errorf("server: unexpected frame kind %d", kind)
		}
	}
}

// intern maps a label view to a stable per-session string via the
// bounded interner: a resident label allocates nothing, and a churning
// label stream can never grow the session's memory without bound.
func (c *Subscriber) intern(b []byte) string { return c.labels.Intern(b) }

// splitOffset strips the durable log offset off an offset-bearing
// transmission payload; a plain transmission passes through with
// offset 0.
func splitOffset(kind byte, payload []byte) (body []byte, offset uint64, err error) {
	if kind != FrameTransmissionOff {
		return payload, 0, nil
	}
	if len(payload) < 8 {
		return nil, 0, fmt.Errorf("server: truncated offset in transmission frame")
	}
	return payload[8:], binary.LittleEndian.Uint64(payload), nil
}

// RecvContext is Recv bounded by ctx (the blocking read unblocks when
// ctx fires).
func (c *Subscriber) RecvContext(ctx context.Context) (*Delivery, error) {
	var d *Delivery
	err := withConnCtx(ctx, c.conn.SetReadDeadline, func() error {
		var e error
		d, e = c.Recv()
		return e
	})
	return d, err
}

// RecvIntoContext is RecvInto bounded by ctx.
func (c *Subscriber) RecvIntoContext(ctx context.Context, d *Delivery) error {
	return withConnCtx(ctx, c.conn.SetReadDeadline, func() error { return c.RecvInto(d) })
}

// Close leaves the group: the server removes this application's filter,
// re-deriving the group for the remaining members.
func (c *Subscriber) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	_ = WriteFrame(c.conn, FrameGoodbye, nil)
	return c.conn.Close()
}

// Leave is Close that waits for the server's acknowledgment: it sends
// the goodbye, then drains (and discards) the remaining stream until the
// server's final goodbye, which the server writes only after this
// application's filter has left the live group at a tuple boundary. When
// Leave returns nil, the group has been re-derived without this member.
// Leave must not race a concurrent Recv on the same session.
func (c *Subscriber) Leave(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := withConnCtx(ctx, c.conn.SetDeadline, func() error {
		if err := WriteFrame(c.conn, FrameGoodbye, nil); err != nil {
			// The server already tore the session down (stream ended or
			// drained); there is no group membership left to wait on.
			return nil
		}
		for {
			kind, payload, err := ReadFrameInto(c.br, c.buf)
			c.buf = payload[:cap(payload)]
			if err != nil {
				if errors.Is(err, io.EOF) {
					// The server closes without an ack when the stream
					// already ended server-side; the group is re-derived
					// either way.
					return nil
				}
				return fmt.Errorf("server: awaiting departure ack: %w", err)
			}
			switch kind {
			case FrameGoodbye:
				return nil
			case FrameError:
				return remoteError(payload)
			default:
				// Transmissions, heartbeats and QoS frames still in flight
				// are discarded; the application is leaving.
			}
		}
	})
	cerr := c.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}

// noteQoS records a FrameQoS announcement for QoS().
func (c *Subscriber) noteQoS(payload []byte) error {
	scale, err := DecodeQoS(payload)
	if err != nil {
		return err
	}
	c.qos.Store(math.Float64bits(scale))
	return nil
}

// remoteError types a server error-frame payload: slow-consumer
// eviction notices map onto ErrEvicted, everything else stays a generic
// remote error.
func remoteError(payload []byte) error {
	if msg, ok := strings.CutPrefix(string(payload), evictPrefix); ok {
		return fmt.Errorf("%w: %s", ErrEvicted, msg)
	}
	return fmt.Errorf("server: remote error: %s", payload)
}

// ErrResumeUnavailable reports a subscriber handshake rejected because
// the requested resume cannot be served: the server has no durable log,
// the offset lies beyond the log head, or an edge node delegates resume
// to its upstream relay leg. Reconnect-aware dialers fall back to a
// plain live re-subscription on it.
//
// The sentinel's message doubles as the machine-readable wire tag:
// servers wrap it with fmt.Errorf("%w: detail", ...), so the error
// frame renders as "resume unavailable: detail", and rejectedError
// re-types the payload by cutting that exact prefix. Match with
// errors.Is, never by prose.
var ErrResumeUnavailable = errors.New("resume unavailable")

// ErrAlreadySubscribed reports a subscriber handshake rejected because
// the (app, source) pair is already held by a live session. It is
// transient while a departure ack is in flight, so dialers re-creating
// a session for a departing one may retry it briefly. Tagged on the
// wire exactly like ErrResumeUnavailable.
var ErrAlreadySubscribed = errors.New("already subscribed")

// rejectedError types a handshake rejection payload: resume and
// subscription-conflict rejections carry their sentinel's message as a
// leading tag, so dialers classify them with errors.Is instead of
// matching prose that could be reworded.
func rejectedError(payload []byte) error {
	msg := string(payload)
	for _, sentinel := range []error{ErrResumeUnavailable, ErrAlreadySubscribed} {
		if rest, ok := strings.CutPrefix(msg, sentinel.Error()+": "); ok {
			return fmt.Errorf("server: rejected: %w: %s", sentinel, rest)
		}
	}
	return fmt.Errorf("server: rejected: %s", msg)
}

// ErrStreamEnded reports a graceful end of a subscription stream.
var ErrStreamEnded = fmt.Errorf("server: stream ended")

// ErrServerDraining reports a stream end caused by server shutdown or
// drain (a goodbye frame tagged "drain") rather than by the source
// finishing. It wraps ErrStreamEnded, so callers treating every graceful
// end alike keep working; reconnect-aware clients distinguish it to
// re-establish their sessions against a restarted server.
var ErrServerDraining = fmt.Errorf("%w: server draining", ErrStreamEnded)

// goodbyeEnd types a received goodbye frame by its payload tag: a
// shutdown/drain goodbye maps to ErrServerDraining, a plain stream end
// to ErrStreamEnded.
func goodbyeEnd(payload []byte) error {
	if string(payload) == goodbyeDrainTag {
		return ErrServerDraining
	}
	return ErrStreamEnded
}

// ErrEvicted reports that the server evicted this subscriber session
// under its slow-consumer policy (for example past EvictAfterDrops).
// Recv errors wrap it together with the server's reason; test with
// errors.Is.
var ErrEvicted = errors.New("server: subscriber evicted")
