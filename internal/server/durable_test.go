package server

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gasf/internal/tuple"
)

func ctxTimeout() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}

// TestSubHelloVersions pins the handshake compatibility contract: a
// version-1 payload (nothing after the queue depth) still decodes, the
// current encoder always stamps version 2, and the resume trailer
// round-trips exactly.
func TestSubHelloVersions(t *testing.T) {
	// Hand-rolled version-1 payload, as a pre-resume client would send.
	v1 := appendString(nil, "app")
	v1 = appendString(v1, "src")
	v1 = appendString(v1, "DC1(v, 0.5, 0)")
	v1 = binary.AppendUvarint(v1, 7)
	h, err := DecodeSubHello(v1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 1 || h.Resume || h.App != "app" || h.Source != "src" || h.Queue != 7 {
		t.Fatalf("v1 decode: %+v", h)
	}

	enc, err := EncodeSubHello("app", "src", "DC1(v, 0.5, 0)", 7)
	if err != nil {
		t.Fatal(err)
	}
	h, err = DecodeSubHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != SubProtoVersion || h.Resume || h.ResumeFrom != 0 {
		t.Fatalf("v2 decode: %+v", h)
	}

	enc, err = EncodeSubHelloResume("app", "src", "DC1(v, 0.5, 0)", 7, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	h, err = DecodeSubHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Resume || h.ResumeFrom != 42 || h.Version != SubProtoVersion {
		t.Fatalf("resume decode: %+v", h)
	}

	// Corrupted trailers must be rejected, not misread.
	if _, err := DecodeSubHello(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Fatal("trailing junk accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[len(enc)-9] = 2 // resume flag is neither 0 nor 1
	if _, err := DecodeSubHello(bad); err == nil {
		t.Fatal("bad resume flag accepted")
	}
}

// TestResumeRejections covers the handshake-time resume errors: asking a
// non-durable server for history, and asking for an offset the log does
// not reach.
func TestResumeRejections(t *testing.T) {
	plain := startServer(t, Config{})
	if _, err := DialSubscriberOpts(plain.Addr().String(), "a", "src", "DC1(v, 0.5, 0)",
		SubDialOpts{Resume: true}); err == nil {
		t.Fatal("resume against a non-durable server succeeded")
	}

	durable := startServer(t, Config{DataDir: t.TempDir()})
	addr := durable.Addr().String()
	sr := stepSeries(t, 10, 0)
	pub, err := DialPublisher(addr, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// No subscriber is live, so nothing is logged and the head stays 0;
	// any positive offset is beyond it.
	if _, err := DialSubscriberOpts(addr, "a", "src", "DC1(v, 0.5, 0)",
		SubDialOpts{Resume: true, ResumeFrom: 1}); err == nil {
		t.Fatal("resume beyond the log head succeeded")
	}
}

// TestResumeSplice is the server-side resume contract. App "b" stays
// subscribed for the whole stream, so every release is logged and the
// membership at each release is deterministic (Sync fences each wave
// ahead of the membership change that follows it). App "a" consumes a
// prefix, leaves, misses a wave addressed to "b" alone, then resumes
// from its checkpoint: the replay must deliver exactly the records that
// name "a" — its unconsumed remainder — and splice into the live stream
// with no gap, duplicate, or crossover, every delivery's offset equal to
// its position in the durable log.
func TestResumeSplice(t *testing.T) {
	srv := startServer(t, Config{DataDir: t.TempDir()})
	addr := srv.Addr().String()

	wave1 := stepSeries(t, 120, 0)
	wave2 := stepSeries(t, 120, 120)
	wave3 := stepSeries(t, 120, 240)
	total := wave1.Len() + wave2.Len() + wave3.Len()
	publish := func(sr *tuple.Series, pub *Publisher) {
		t.Helper()
		for i := 0; i < sr.Len(); i++ {
			if err := pub.Publish(sr.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := ctxTimeout()
		defer cancel()
		if err := pub.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}

	pub, err := DialPublisher(addr, "src", wave1.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// "b" anchors the group: it consumes everything concurrently (block
	// policy) and keeps at least one member live at every release.
	subB, err := DialSubscriber(addr, "b", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	bDone := make(chan int, 1)
	go func() {
		n := 0
		for {
			if _, err := subB.Recv(); err != nil {
				bDone <- n
				return
			}
			n++
		}
	}()
	subA, err := DialSubscriber(addr, "a", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}

	// Wave 1 is fenced into the engine while {a, b} are both members:
	// sets 0..118 release (the last tuple's set is held back until a
	// later tuple closes it), every record naming both apps.
	publish(wave1, pub)

	// "a" consumes a prefix, checkpoints, and leaves.
	const consumed = 50
	var checkpoint uint64
	for i := 0; i < consumed; i++ {
		d, err := subA.Recv()
		if err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		if d.Offset != uint64(i) {
			t.Fatalf("delivery %d carries offset %d", i, d.Offset)
		}
		checkpoint = d.Offset
	}
	leaveCtx, cancel := ctxTimeout()
	defer cancel()
	if err := subA.Leave(leaveCtx); err != nil {
		t.Fatal(err)
	}

	// Wave 2 releases to "b" alone — logged, but never addressed to "a".
	publish(wave2, pub)

	// Resume from the checkpoint; the fence is captured at the join.
	subA2, err := DialSubscriberOpts(addr, "a", "src", "DC1(v, 0.5, 0)",
		SubDialOpts{Resume: true, ResumeFrom: checkpoint + 1})
	if err != nil {
		t.Fatal(err)
	}
	publish(wave3, pub)
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}

	// "a" must see: replayed offsets 50..118 (wave 1's unconsumed
	// remainder, the records naming it), then live offsets 240..359 (wave
	// 3's sets, through the tail flushed at finish). Offsets 119..239
	// belong to "b" alone — wave 2's sets, including its held-back last,
	// whose destinations were decided while "a" was away — and must not
	// appear. In this stream offset == sequence throughout.
	all := recvAll(t, subA2)
	replayed := wave1.Len() - 1 - consumed
	live := wave3.Len()
	if len(all) != replayed+live {
		t.Fatalf("got %d deliveries, want %d replayed + %d live", len(all), replayed, live)
	}
	for i, d := range all {
		want := uint64(consumed + i)
		if i >= replayed {
			want = uint64(total - live + (i - replayed))
		}
		if d.Offset != want || uint64(d.Tuple.Seq) != want {
			t.Fatalf("delivery %d: offset %d seq %d, want %d", i, d.Offset, d.Tuple.Seq, want)
		}
	}
	if n := <-bDone; n != total {
		t.Fatalf("anchor subscriber saw %d deliveries, want %d", n, total)
	}

	c := srv.Counters()
	if c.ReplaysServed != 1 {
		t.Fatalf("ReplaysServed = %d, want 1", c.ReplaysServed)
	}
	if c.ReplayRecordsOut != uint64(replayed) {
		t.Fatalf("ReplayRecordsOut = %d, want %d", c.ReplayRecordsOut, replayed)
	}
	if c.LogAppendErrors != 0 {
		t.Fatalf("LogAppendErrors = %d", c.LogAppendErrors)
	}
}

// TestFramePoolBalancedUnderChurn is the frame-leak detector: with the
// pool ledger enabled, a drop-heavy churn storm (slow subscribers under
// the drop policy, joiners and leavers mid-stream) must return every
// frame and every batch to the pool by the time the server has shut
// down — gets == puts, or some path stranded a reference.
func TestFramePoolBalancedUnderChurn(t *testing.T) {
	frameStats.enabled.Store(true)
	t.Cleanup(func() { frameStats.enabled.Store(false) })
	baseFG, baseFP := frameStats.frameGets.Load(), frameStats.framePuts.Load()
	baseBG, baseBP := frameStats.batchGets.Load(), frameStats.batchPuts.Load()

	s, err := Start(Config{Policy: PolicyDrop, SubscriberQueue: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	const (
		sources      = 2
		tuplesPerSrc = 1200
		churners     = 3
	)
	var wg sync.WaitGroup
	errs := make(chan error, sources*(churners+2))
	for si := 0; si < sources; si++ {
		source := fmt.Sprintf("src%d", si)
		sr := stepSeries(t, tuplesPerSrc, 0)
		pub, err := DialPublisher(addr, source, sr.Schema())
		if err != nil {
			t.Fatal(err)
		}
		// A subscriber that never reads: its queue (depth 1) overflows
		// immediately, exercising the drop-release path all stream long.
		if _, err := DialSubscriber(addr, "stuck", source, "DC1(v, 0.5, 0)"); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(pub *Publisher, source string) {
			defer wg.Done()
			for i := 0; i < sr.Len(); i++ {
				if err := pub.Publish(sr.At(i)); err != nil {
					errs <- fmt.Errorf("%s publish %d: %w", source, i, err)
					return
				}
			}
			if err := pub.Close(); err != nil {
				errs <- fmt.Errorf("%s close: %w", source, err)
			}
		}(pub, source)
		for ci := 0; ci < churners; ci++ {
			wg.Add(1)
			go func(ci int, source string) {
				defer wg.Done()
				for round := 0; round < 4; round++ {
					sub, err := DialSubscriber(addr, fmt.Sprintf("churn%d", ci), source, "DC1(v, 0.5, 0)")
					if err != nil {
						// The source may already have finished.
						return
					}
					for i := 0; i < 40; i++ {
						if _, err := sub.Recv(); err != nil {
							break
						}
					}
					ctx, cancel := ctxTimeout()
					err = sub.Leave(ctx)
					cancel()
					if err != nil {
						errs <- fmt.Errorf("churn%d leave: %w", ci, err)
						return
					}
				}
			}(ci, source)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ctx, cancel := ctxTimeout()
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	fg, fp := frameStats.frameGets.Load()-baseFG, frameStats.framePuts.Load()-baseFP
	bg, bp := frameStats.batchGets.Load()-baseBG, frameStats.batchPuts.Load()-baseBP
	if fg != fp {
		t.Errorf("frame pool leak: %d gets, %d puts (%d stranded)", fg, fp, int64(fg)-int64(fp))
	}
	if bg != bp {
		t.Errorf("batch pool leak: %d gets, %d puts (%d stranded)", bg, bp, int64(bg)-int64(bp))
	}
	if fg == 0 || bg == 0 {
		t.Errorf("ledger recorded no traffic (frames %d, batches %d); the storm did not exercise the pool", fg, bg)
	}
}

// TestSyncedSourceSurvivesGapScan pins the liveness rule behind the
// flow-gap scan: a publisher whose session reader is parked inside a
// ring submit (the whole pipeline wedged behind a subscriber that is not
// consuming, block policy) is backpressured, not dead — the scan must
// not expire it however long the stall outlives SourceTimeout, and a
// Sync issued across the stall must complete once the pipeline drains.
func TestSyncedSourceSurvivesGapScan(t *testing.T) {
	const tuples = 6000
	srv := startServer(t, Config{
		Policy:            PolicyBlock,
		SubscriberQueue:   1,
		SourceTimeout:     200 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	addr := srv.Addr().String()
	sr := stepSeries(t, tuples, 0)

	pub, err := DialPublisher(addr, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// The wedge: a subscriber that never reads. Shrinking its receive
	// buffer caps how much the kernel absorbs, so the server's writer
	// blocks early and backpressure reaches the ring well within the
	// published volume.
	sub, err := DialSubscriber(addr, "slow", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if tc, ok := sub.conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	pubErr := make(chan error, 1)
	synced := make(chan error, 1)
	go func() {
		for i := 0; i < sr.Len(); i++ {
			if err := pub.Publish(sr.At(i)); err != nil {
				pubErr <- fmt.Errorf("publish %d: %w", i, err)
				return
			}
		}
		ctx, cancel := ctxTimeout()
		defer cancel()
		synced <- pub.Sync(ctx)
		pubErr <- pub.Close()
	}()

	// Let the stall outlive SourceTimeout several times over. The
	// publisher is parked (its tuples are wedged behind the unread
	// subscriber), so without the busy-flag liveness rule the scan would
	// reap it here.
	time.Sleep(4 * 200 * time.Millisecond)
	if c := srv.Counters(); c.SourcesExpired != 0 {
		t.Fatalf("blocked source expired during the stall (SourcesExpired = %d)", c.SourcesExpired)
	}

	// Drain the wedge: consuming releases the writer, the ring, the
	// parked submit and finally the publisher, whose Sync and graceful
	// close must then complete. The receive buffer goes back up first so
	// the drain is not clocked by a 4KiB window.
	if tc, ok := sub.conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(1 << 20)
	}
	got := len(recvAll(t, sub))
	if err := <-synced; err != nil {
		t.Fatalf("sync across the stall: %v", err)
	}
	if err := <-pubErr; err != nil {
		t.Fatal(err)
	}
	if got != tuples {
		t.Fatalf("delivered %d of %d tuples", got, tuples)
	}
	if c := srv.Counters(); c.SourcesExpired != 0 {
		t.Fatalf("SourcesExpired = %d after drain", c.SourcesExpired)
	}
}
