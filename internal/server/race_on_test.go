//go:build race

package server

// raceEnabled reports that this test binary was built with the race
// detector, which deliberately randomizes sync.Pool (Puts are dropped a
// quarter of the time) to shake out lifecycle races — so pooled paths
// allocate under -race even when they are allocation-free in a normal
// build.
const raceEnabled = true
