package server

import (
	"sync"
	"sync/atomic"

	"gasf/internal/telemetry"
)

// frame is one encoded output frame, shared immutably across every
// subscriber queue it fans out to. The sink encodes a released
// transmission exactly once, sets the reference count to the fan-out
// width, and each consumer releases its reference after writing (or
// dropping) the frame; the last release returns the buffer to the pool.
//
// Ownership rule (DESIGN.md §8): a subscriber may read fr.buf until it
// calls release, and never after; nobody mutates fr.buf once the frame is
// shared.
type frame struct {
	buf  []byte
	refs atomic.Int32
	// ts is the encoded tuple's source timestamp (UnixNano); egress
	// subtracts it from the write instant to observe delivery latency.
	// Zero means "do not observe" (telemetry disabled).
	ts int64
	// src points at the originating source's latency estimator pair, so
	// per-group quantiles can be fed from the egress side without a
	// registry lookup. Nil when telemetry is disabled.
	src *telemetry.LatencyPair
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// frameStats is the pool-traffic ledger behind the leak-detector tests:
// when enabled, every frame/batch checkout and final release is
// counted, so a quiesced server must show gets == puts — any imbalance
// is a reference leaked (or double-released) somewhere in the fan-out,
// drop, eviction or teardown paths. Disabled (the default) it costs one
// predictable-branch atomic load per event.
var frameStats struct {
	enabled   atomic.Bool
	frameGets atomic.Uint64
	framePuts atomic.Uint64
	batchGets atomic.Uint64
	batchPuts atomic.Uint64
}

// getFrame takes an empty frame from the pool.
func getFrame() *frame {
	if frameStats.enabled.Load() {
		frameStats.frameGets.Add(1)
	}
	fr := framePool.Get().(*frame)
	fr.buf = fr.buf[:0]
	fr.ts = 0
	fr.src = nil
	return fr
}

// retain sets the fan-out count before the frame is shared. It must be
// called exactly once, before any send.
func (fr *frame) retain(n int) { fr.refs.Store(int32(n)) }

// release drops one reference, recycling the frame when it was the last.
func (fr *frame) release() {
	if fr.refs.Add(-1) == 0 {
		if frameStats.enabled.Load() {
			frameStats.framePuts.Add(1)
		}
		framePool.Put(fr)
	}
}

// frameBatch is one release cycle's worth of shared frames for one
// subscriber: the sink stages a subscriber's frames into a pooled batch
// and hands the whole batch to the subscriber queue with a single
// channel operation, instead of one per frame. Ownership of the batch
// (the slice, not the frames' refcounts) moves with it: the sink owns it
// while staging, the writer (or the dropping sender) owns it after, and
// whoever releases the frames returns the batch to the pool.
type frameBatch struct {
	frames []*frame
}

var frameBatchPool = sync.Pool{New: func() any { return new(frameBatch) }}

// getBatch takes an empty batch from the pool.
func getBatch() *frameBatch {
	if frameStats.enabled.Load() {
		frameStats.batchGets.Add(1)
	}
	b := frameBatchPool.Get().(*frameBatch)
	b.frames = b.frames[:0]
	return b
}

// putBatch recycles a batch whose frames have been handed off (or
// released); it clears the frame pointers so the pool does not pin them.
func putBatch(b *frameBatch) {
	if frameStats.enabled.Load() {
		frameStats.batchPuts.Add(1)
	}
	clear(b.frames)
	b.frames = b.frames[:0]
	frameBatchPool.Put(b)
}

// releaseAll drops one reference per staged frame and recycles the
// batch — the drop/teardown path.
func (b *frameBatch) releaseAll() {
	for _, fr := range b.frames {
		fr.release()
	}
	putBatch(b)
}
