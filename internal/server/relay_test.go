package server

import (
	"testing"
)

// TestSubHelloRelayVersion pins the version-3 relay handshake: the relay
// section round-trips exactly, version-2 hellos keep decoding with no
// relay fields, and malformed relay sections are rejected rather than
// misread.
func TestSubHelloRelayVersion(t *testing.T) {
	enc, err := EncodeSubHelloRelay("app", "src", "DC1(v, 0.5, 0)", 7, true, 42, "edge-1")
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeSubHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != SubProtoVersionRelay || !h.Relay || h.RelayEdge != "edge-1" {
		t.Fatalf("relay decode: %+v", h)
	}
	if !h.Resume || h.ResumeFrom != 42 || h.App != "app" || h.Source != "src" || h.Queue != 7 {
		t.Fatalf("relay decode lost v2 fields: %+v", h)
	}

	// The non-resume form still carries the relay section.
	enc, err = EncodeSubHelloRelay("app", "src", "DC1(v, 0.5, 0)", 0, false, 0, "edge-2")
	if err != nil {
		t.Fatal(err)
	}
	h, err = DecodeSubHello(enc)
	if err != nil {
		t.Fatal(err)
	}
	if h.Resume || !h.Relay || h.RelayEdge != "edge-2" {
		t.Fatalf("non-resume relay decode: %+v", h)
	}

	// A version-2 hello decodes with the relay fields zero.
	v2, err := EncodeSubHelloResume("app", "src", "DC1(v, 0.5, 0)", 7, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err = DecodeSubHello(v2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Relay || h.RelayEdge != "" || h.Version != SubProtoVersion {
		t.Fatalf("v2 decode grew relay fields: %+v", h)
	}

	// Encode-time rejection: a relay hello must name its edge.
	if _, err := EncodeSubHelloRelay("app", "src", "DC1(v, 0.5, 0)", 0, false, 0, ""); err == nil {
		t.Fatal("empty edge name accepted at encode")
	}

	// Decode-time rejections: trailing junk, a bad relay flag, and a
	// relay flag with no edge name behind it.
	good, err := EncodeSubHelloRelay("app", "src", "DC1(v, 0.5, 0)", 0, false, 0, "e")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSubHello(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Fatal("trailing junk accepted")
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-3] = 2 // relay flag precedes the uvarint(1)+1-byte edge name
	if _, err := DecodeSubHello(bad); err == nil {
		t.Fatal("bad relay flag accepted")
	}
	if _, err := DecodeSubHello(good[:len(good)-2]); err == nil {
		t.Fatal("truncated relay edge name accepted")
	}
}
