package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// counters is the server's atomic counter block.
type counters struct {
	sourcesAccepted     atomic.Uint64
	sourcesFinished     atomic.Uint64
	sourcesExpired      atomic.Uint64
	sourcesFailed       atomic.Uint64
	subscribersAccepted atomic.Uint64
	subscriberDrops     atomic.Uint64
	handshakeRejects    atomic.Uint64
	tuplesIn            atomic.Uint64
	transmissionsOut    atomic.Uint64
	deliveriesOut       atomic.Uint64
	bytesIn             atomic.Uint64
	bytesOut            atomic.Uint64
	heartbeatsIn        atomic.Uint64
	logAppendErrors     atomic.Uint64
	replaysServed       atomic.Uint64
	replayRecordsOut    atomic.Uint64
}

// Counters is a point-in-time snapshot of the server session counters.
type Counters struct {
	// SourcesActive and SubscribersActive are gauges; the rest are
	// monotonic totals.
	SourcesActive, SubscribersActive                                int
	SourcesAccepted, SourcesFinished, SourcesExpired, SourcesFailed uint64
	SubscribersAccepted, SubscriberDrops                            uint64
	HandshakeRejects                                                uint64
	TuplesIn, TransmissionsOut, DeliveriesOut                       uint64
	BytesIn, BytesOut                                               uint64
	HeartbeatsIn                                                    uint64
	// LogAppendErrors counts failed durable-log appends (durability
	// degraded; delivery continued). ReplaysServed counts resume
	// sessions that completed their history replay; ReplayRecordsOut
	// counts the records those replays delivered.
	LogAppendErrors, ReplaysServed, ReplayRecordsOut uint64
}

// Counters snapshots the session counters.
func (s *Server) Counters() Counters {
	s.mu.RLock()
	srcs := len(s.sources)
	subs := 0
	for _, m := range s.subs {
		subs += len(m)
	}
	s.mu.RUnlock()
	return Counters{
		SourcesActive:       srcs,
		SubscribersActive:   subs,
		SourcesAccepted:     s.ctr.sourcesAccepted.Load(),
		SourcesFinished:     s.ctr.sourcesFinished.Load(),
		SourcesExpired:      s.ctr.sourcesExpired.Load(),
		SourcesFailed:       s.ctr.sourcesFailed.Load(),
		SubscribersAccepted: s.ctr.subscribersAccepted.Load(),
		SubscriberDrops:     s.ctr.subscriberDrops.Load(),
		HandshakeRejects:    s.ctr.handshakeRejects.Load(),
		TuplesIn:            s.ctr.tuplesIn.Load(),
		TransmissionsOut:    s.ctr.transmissionsOut.Load(),
		DeliveriesOut:       s.ctr.deliveriesOut.Load(),
		BytesIn:             s.ctr.bytesIn.Load(),
		BytesOut:            s.ctr.bytesOut.Load(),
		HeartbeatsIn:        s.ctr.heartbeatsIn.Load(),
		LogAppendErrors:     s.ctr.logAppendErrors.Load(),
		ReplaysServed:       s.ctr.replaysServed.Load(),
		ReplayRecordsOut:    s.ctr.replayRecordsOut.Load(),
	}
}

// MetricsHandler serves /metrics (Prometheus text exposition of the
// session counters and the per-shard runtime counters) and /healthz.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c := s.Counters()
		g := func(name, help string, v any) {
			fmt.Fprintf(w, "# HELP gasf_%s %s\n# TYPE gasf_%s %s\ngasf_%s %v\n",
				name, help, name, metricType(name), name, v)
		}
		g("sources_active", "Connected publisher sessions.", c.SourcesActive)
		g("subscribers_active", "Connected subscriber sessions.", c.SubscribersActive)
		g("sources_accepted_total", "Publisher sessions accepted.", c.SourcesAccepted)
		g("sources_finished_total", "Publisher sessions finished.", c.SourcesFinished)
		g("sources_expired_total", "Publisher sessions expired by gap detection.", c.SourcesExpired)
		g("sources_failed_total", "Publisher sessions ended by an error.", c.SourcesFailed)
		g("subscribers_accepted_total", "Subscriber sessions accepted.", c.SubscribersAccepted)
		g("subscriber_drops_total", "Deliveries dropped by the slow-consumer policy.", c.SubscriberDrops)
		g("handshake_rejects_total", "Connections rejected at handshake.", c.HandshakeRejects)
		g("tuples_in_total", "Tuples ingested from publishers.", c.TuplesIn)
		g("transmissions_out_total", "Released transmissions fanned out.", c.TransmissionsOut)
		g("deliveries_out_total", "Per-subscriber deliveries enqueued.", c.DeliveriesOut)
		g("bytes_in_total", "Frame bytes read from publishers.", c.BytesIn)
		g("bytes_out_total", "Frame bytes written to subscribers.", c.BytesOut)
		g("heartbeats_in_total", "Heartbeat frames received.", c.HeartbeatsIn)
		g("log_append_errors_total", "Failed durable-log appends.", c.LogAppendErrors)
		g("replays_served_total", "Resume sessions whose history replay completed.", c.ReplaysServed)
		g("replay_records_out_total", "Records delivered by history replays.", c.ReplayRecordsOut)
		for _, snap := range s.rt.Metrics() {
			l := fmt.Sprintf("{shard=\"%d\"}", snap.Shard)
			fmt.Fprintf(w, "gasf_shard_sources%s %d\n", l, snap.Sources)
			fmt.Fprintf(w, "gasf_shard_enqueued_total%s %d\n", l, snap.Enqueued)
			fmt.Fprintf(w, "gasf_shard_processed_total%s %d\n", l, snap.Processed)
			fmt.Fprintf(w, "gasf_shard_dropped_total%s %d\n", l, snap.Dropped)
			fmt.Fprintf(w, "gasf_shard_flushes_total%s %d\n", l, snap.Flushes)
			fmt.Fprintf(w, "gasf_shard_queue_depth%s %d\n", l, snap.QueueDepth)
			fmt.Fprintf(w, "gasf_shard_queue_depth_max%s %d\n", l, snap.MaxQueueDepth)
			fmt.Fprintf(w, "gasf_shard_ring_drains_total%s %d\n", l, snap.Drains)
			fmt.Fprintf(w, "gasf_shard_ring_drain_run_avg%s %g\n", l, snap.AvgDrainRun)
			fmt.Fprintf(w, "gasf_shard_ring_producer_parks_total%s %d\n", l, snap.ProducerParks)
			fmt.Fprintf(w, "gasf_shard_ring_consumer_parks_total%s %d\n", l, snap.ConsumerParks)
		}
	})
	return mux
}

// metricType says whether a metric name is a counter or a gauge, by the
// _total suffix convention.
func metricType(name string) string {
	if len(name) > 6 && name[len(name)-6:] == "_total" {
		return "counter"
	}
	return "gauge"
}
