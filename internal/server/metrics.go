package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync/atomic"

	"gasf/internal/federate"
	"gasf/internal/telemetry"
)

// counters is the server's atomic counter block.
type counters struct {
	sourcesAccepted     atomic.Uint64
	sourcesFinished     atomic.Uint64
	sourcesExpired      atomic.Uint64
	sourcesFailed       atomic.Uint64
	subscribersAccepted atomic.Uint64
	subscriberDrops     atomic.Uint64
	handshakeRejects    atomic.Uint64
	tuplesIn            atomic.Uint64
	transmissionsOut    atomic.Uint64
	deliveriesOut       atomic.Uint64
	bytesIn             atomic.Uint64
	bytesOut            atomic.Uint64
	heartbeatsIn        atomic.Uint64
	logAppendErrors     atomic.Uint64
	replaysServed       atomic.Uint64
	replayRecordsOut    atomic.Uint64
	// Session closures split by cause (one increment per finished
	// session, exactly one of these), plus the tier-2 detector's
	// gap-recovered reconnects.
	closedFlowGap    atomic.Uint64
	closedDisconnect atomic.Uint64
	closedDrain      atomic.Uint64
	closedFinished   atomic.Uint64
	gapReconnects    atomic.Uint64
	gapNotifications atomic.Uint64
	// Degrade-policy control actions and drop-threshold evictions.
	qosDegrades         atomic.Uint64
	qosRestores         atomic.Uint64
	subscriberEvictions atomic.Uint64
	// Federation: upstream-leg lifecycle on an edge (dials, redials,
	// resumed redials, relayed transmission frames) and relay-leg
	// sessions accepted on a core.
	fedLegDials    atomic.Uint64
	fedLegRedials  atomic.Uint64
	fedLegResumes  atomic.Uint64
	fedRelayFrames atomic.Uint64
	fedRelayLegsIn atomic.Uint64
}

// Counters is a point-in-time snapshot of the server session counters.
type Counters struct {
	// SourcesActive and SubscribersActive are gauges; the rest are
	// monotonic totals.
	SourcesActive, SubscribersActive                                int
	SourcesAccepted, SourcesFinished, SourcesExpired, SourcesFailed uint64
	SubscribersAccepted, SubscriberDrops                            uint64
	HandshakeRejects                                                uint64
	TuplesIn, TransmissionsOut, DeliveriesOut                       uint64
	BytesIn, BytesOut                                               uint64
	HeartbeatsIn                                                    uint64
	// LogAppendErrors counts failed durable-log appends (durability
	// degraded; delivery continued). ReplaysServed counts resume
	// sessions that completed their history replay; ReplayRecordsOut
	// counts the records those replays delivered.
	LogAppendErrors, ReplaysServed, ReplayRecordsOut uint64
	// Closed* split every source-session closure by its cause: expired
	// by the flow-gap detector, disconnected with an error, cut by a
	// drain, or cleanly finished. GapReconnects counts sources that
	// reconnected after the tier-2 sketch had last heard them longer
	// than SourceTimeout ago.
	ClosedFlowGap, ClosedDisconnect, ClosedDrain, ClosedFinished uint64
	GapReconnects                                                uint64
	// GapNotifications counts OnSourceGap hook invocations (deadman
	// notifications for flow-gap closures).
	GapNotifications uint64
	// QoSDegrades and QoSRestores count degrade-policy scale changes;
	// SubscriberEvictions counts sessions evicted past EvictAfterDrops.
	QoSDegrades, QoSRestores, SubscriberEvictions uint64
	// Federation: on an edge, upstream-leg dials/redials (and how many
	// redials resumed from the durable log) plus transmission frames
	// relayed; on a core, relay-leg sessions accepted from edges.
	FedLegDials, FedLegRedials, FedLegResumes uint64
	FedRelayFrames, FedRelayLegsIn            uint64
}

// Counters snapshots the session counters.
func (s *Server) Counters() Counters {
	s.mu.RLock()
	srcs := len(s.sources)
	subs := 0
	for _, m := range s.subs {
		subs += len(m)
	}
	s.mu.RUnlock()
	if s.fed != nil {
		// Relay members live outside the registry (they share app names
		// by design); the leg registry is their census.
		_, members := s.fed.counts()
		subs += members
	}
	return Counters{
		SourcesActive:       srcs,
		SubscribersActive:   subs,
		SourcesAccepted:     s.ctr.sourcesAccepted.Load(),
		SourcesFinished:     s.ctr.sourcesFinished.Load(),
		SourcesExpired:      s.ctr.sourcesExpired.Load(),
		SourcesFailed:       s.ctr.sourcesFailed.Load(),
		SubscribersAccepted: s.ctr.subscribersAccepted.Load(),
		SubscriberDrops:     s.ctr.subscriberDrops.Load(),
		HandshakeRejects:    s.ctr.handshakeRejects.Load(),
		TuplesIn:            s.ctr.tuplesIn.Load(),
		TransmissionsOut:    s.ctr.transmissionsOut.Load(),
		DeliveriesOut:       s.ctr.deliveriesOut.Load(),
		BytesIn:             s.ctr.bytesIn.Load(),
		BytesOut:            s.ctr.bytesOut.Load(),
		HeartbeatsIn:        s.ctr.heartbeatsIn.Load(),
		LogAppendErrors:     s.ctr.logAppendErrors.Load(),
		ReplaysServed:       s.ctr.replaysServed.Load(),
		ReplayRecordsOut:    s.ctr.replayRecordsOut.Load(),
		ClosedFlowGap:       s.ctr.closedFlowGap.Load(),
		ClosedDisconnect:    s.ctr.closedDisconnect.Load(),
		ClosedDrain:         s.ctr.closedDrain.Load(),
		ClosedFinished:      s.ctr.closedFinished.Load(),
		GapReconnects:       s.ctr.gapReconnects.Load(),
		GapNotifications:    s.ctr.gapNotifications.Load(),
		QoSDegrades:         s.ctr.qosDegrades.Load(),
		QoSRestores:         s.ctr.qosRestores.Load(),
		SubscriberEvictions: s.ctr.subscriberEvictions.Load(),
		FedLegDials:         s.ctr.fedLegDials.Load(),
		FedLegRedials:       s.ctr.fedLegRedials.Load(),
		FedLegResumes:       s.ctr.fedLegResumes.Load(),
		FedRelayFrames:      s.ctr.fedRelayFrames.Load(),
		FedRelayLegsIn:      s.ctr.fedRelayLegsIn.Load(),
	}
}

// WriteMetrics writes the full Prometheus text exposition: session
// counters, per-shard runtime series, stage-duration histograms, and
// the delivery-latency summaries. Every family carries HELP and TYPE
// and the output satisfies telemetry.Validate.
func (s *Server) WriteMetrics(w io.Writer) error {
	x := telemetry.NewWriter(w)
	c := s.Counters()
	policy := telemetry.Label{Name: "policy", Value: s.cfg.Policy.String()}

	x.Gauge("gasf_sources_active", "Connected publisher sessions.")
	x.SampleU(uint64(c.SourcesActive))
	x.Gauge("gasf_subscribers_active", "Connected subscriber sessions.")
	x.SampleU(uint64(c.SubscribersActive))
	x.Counter("gasf_sources_accepted_total", "Publisher sessions accepted.")
	x.SampleU(c.SourcesAccepted)
	x.Counter("gasf_sources_finished_total", "Publisher sessions finished.")
	x.SampleU(c.SourcesFinished)
	x.Counter("gasf_sources_expired_total", "Publisher sessions expired by gap detection.")
	x.SampleU(c.SourcesExpired)
	x.Counter("gasf_sources_failed_total", "Publisher sessions ended by an error.")
	x.SampleU(c.SourcesFailed)
	x.Counter("gasf_subscribers_accepted_total", "Subscriber sessions accepted.")
	x.SampleU(c.SubscribersAccepted)
	x.Counter("gasf_subscriber_drops_total", "Deliveries dropped by the slow-consumer policy.")
	x.SampleU(c.SubscriberDrops, policy)
	x.Counter("gasf_handshake_rejects_total", "Connections rejected at handshake.")
	x.SampleU(c.HandshakeRejects)
	x.Counter("gasf_tuples_in_total", "Tuples ingested from publishers.")
	x.SampleU(c.TuplesIn)
	x.Counter("gasf_transmissions_out_total", "Released transmissions fanned out.")
	x.SampleU(c.TransmissionsOut)
	x.Counter("gasf_deliveries_out_total", "Per-subscriber deliveries enqueued.")
	x.SampleU(c.DeliveriesOut)
	x.Counter("gasf_bytes_in_total", "Frame bytes read from publishers.")
	x.SampleU(c.BytesIn)
	x.Counter("gasf_bytes_out_total", "Frame bytes written to subscribers.")
	x.SampleU(c.BytesOut)
	x.Counter("gasf_heartbeats_in_total", "Heartbeat frames received.")
	x.SampleU(c.HeartbeatsIn)
	x.Counter("gasf_log_append_errors_total", "Failed durable-log appends.")
	x.SampleU(c.LogAppendErrors)
	x.Counter("gasf_replays_served_total", "Resume sessions whose history replay completed.")
	x.SampleU(c.ReplaysServed)
	x.Counter("gasf_replay_records_out_total", "Records delivered by history replays.")
	x.SampleU(c.ReplayRecordsOut)
	x.Counter("gasf_source_closures_total", "Publisher session closures by cause.")
	x.SampleU(c.ClosedFlowGap, telemetry.Label{Name: "reason", Value: "flow_gap"})
	x.SampleU(c.ClosedDisconnect, telemetry.Label{Name: "reason", Value: "disconnect"})
	x.SampleU(c.ClosedDrain, telemetry.Label{Name: "reason", Value: "drain"})
	x.SampleU(c.ClosedFinished, telemetry.Label{Name: "reason", Value: "finished"})
	x.Counter("gasf_source_gap_reconnects_total", "Sources that reconnected after a detected flow gap.")
	x.SampleU(c.GapReconnects)
	x.Counter("gasf_gap_notifications_total", "Deadman notifications issued for flow-gap source closures.")
	x.SampleU(c.GapNotifications)
	x.Counter("gasf_qos_degrades_total", "Degrade-policy scale increases (quality coarsened under pressure).")
	x.SampleU(c.QoSDegrades, policy)
	x.Counter("gasf_qos_restores_total", "Degrade-policy scale decreases (quality restored after calm).")
	x.SampleU(c.QoSRestores, policy)
	x.Counter("gasf_subscriber_evictions_total", "Subscriber sessions evicted by the slow-consumer policy.")
	x.SampleU(c.SubscriberEvictions, policy)

	if s.cfg.Federation.Role != federate.RoleSingle {
		role := telemetry.Label{Name: "role", Value: s.cfg.Federation.Role.String()}
		fs := s.FederationStats()
		x.Gauge("gasf_federation_upstream_legs", "Upstream subscriptions an edge holds against cores (one per source+group).")
		x.SampleU(uint64(fs.UpstreamLegs), role)
		x.Gauge("gasf_federation_local_subscribers", "Local subscriber sessions fanned out from upstream legs.")
		x.SampleU(uint64(fs.LocalSubscribers), role)
		x.Gauge("gasf_federation_dedup_ratio", "Local subscribers per upstream leg (group-aware inter-node dedup factor).")
		x.Sample(fs.DedupRatio, role)
		x.Counter("gasf_federation_leg_dials_total", "Upstream legs opened.")
		x.SampleU(c.FedLegDials, role)
		x.Counter("gasf_federation_leg_redials_total", "Upstream legs re-established after a drain, error or rebalance.")
		x.SampleU(c.FedLegRedials, role)
		x.Counter("gasf_federation_leg_resumes_total", "Upstream leg redials that resumed from the core's durable log.")
		x.SampleU(c.FedLegResumes, role)
		x.Counter("gasf_federation_relay_frames_total", "Transmission frames relayed from cores to local members.")
		x.SampleU(c.FedRelayFrames, role)
		x.Counter("gasf_federation_relay_legs_served_total", "Relay-leg sessions accepted from edges (core side).")
		x.SampleU(c.FedRelayLegsIn, role)
		if s.fed != nil && s.tel != nil {
			x.SummaryFamily("gasf_federation_relay_latency_seconds", "Relay delivery latency (tuple source timestamp to edge egress write), sampled, frugal-estimated quantiles.")
			x.WriteLatencySummary(fs.Relay, role)
		}
	}

	if s.wheel != nil {
		ws := s.wheel.Stats()
		x.Gauge("gasf_wheel_entries", "Sessions tracked by the flow-gap timer wheel.")
		x.SampleU(uint64(ws.Entries))
		x.Gauge("gasf_wheel_bucket_depth_max", "Deepest wheel bucket drained in one tick (high-water).")
		x.SampleU(uint64(ws.MaxBucketDepth))
		x.Counter("gasf_wheel_inspections_total", "Wheel entries inspected at their deadline.")
		x.SampleU(ws.Inspections)
		x.Counter("gasf_wheel_reschedules_total", "Inspected entries found live and re-armed.")
		x.SampleU(ws.Reschedules)
		x.Counter("gasf_wheel_cascades_total", "Entries redistributed from the coarse wheel level.")
		x.SampleU(ws.Cascades)
		sk := s.sketch.Stats()
		x.Gauge("gasf_gap_sketch_cells", "Cells in the tier-2 silence sketch.")
		x.SampleU(uint64(sk.Cells))
		x.Gauge("gasf_gap_sketch_occupied", "Occupied cells in the tier-2 silence sketch.")
		x.SampleU(uint64(sk.Occupied))
		x.Counter("gasf_gap_sketch_evictions_total", "Sketch cells evicted by row overflow.")
		x.SampleU(sk.Evictions)
		x.SummaryFamily("gasf_expiry_latency_seconds", "How far past its silence deadline each source expiry fired, frugal-estimated quantiles.")
		x.WriteLatencySummary(s.expiryLag.Snapshot())
	}

	// Per-shard runtime series: one family per metric, one labeled
	// sample per shard, each family with its own HELP/TYPE metadata.
	snaps := s.rt.Metrics()
	shardLabel := func(i int) telemetry.Label {
		return telemetry.Label{Name: "shard", Value: fmt.Sprintf("%d", snaps[i].Shard)}
	}
	x.Gauge("gasf_shard_sources", "Sources currently owned by the shard.")
	for i := range snaps {
		x.SampleU(uint64(snaps[i].Sources), shardLabel(i))
	}
	x.Counter("gasf_shard_enqueued_total", "Tasks enqueued to the shard ring.")
	for i := range snaps {
		x.SampleU(snaps[i].Enqueued, shardLabel(i))
	}
	x.Counter("gasf_shard_processed_total", "Tuples processed by the shard worker.")
	for i := range snaps {
		x.SampleU(snaps[i].Processed, shardLabel(i))
	}
	x.Counter("gasf_shard_dropped_total", "Tasks dropped by the shard (failed source or abort).")
	for i := range snaps {
		x.SampleU(snaps[i].Dropped, shardLabel(i))
	}
	x.Counter("gasf_shard_flushes_total", "Sink flushes issued by the shard worker.")
	for i := range snaps {
		x.SampleU(snaps[i].Flushes, shardLabel(i))
	}
	x.Gauge("gasf_shard_queue_depth", "Tasks currently queued in the shard ring.")
	for i := range snaps {
		x.Sample(float64(snaps[i].QueueDepth), shardLabel(i))
	}
	x.Gauge("gasf_shard_queue_depth_max", "High-water mark of the shard ring depth.")
	for i := range snaps {
		x.Sample(float64(snaps[i].MaxQueueDepth), shardLabel(i))
	}
	x.Counter("gasf_shard_ring_drains_total", "Consumer drain passes over the shard ring.")
	for i := range snaps {
		x.SampleU(snaps[i].Drains, shardLabel(i))
	}
	x.Gauge("gasf_shard_ring_drain_run_avg", "Mean tasks popped per ring drain pass.")
	for i := range snaps {
		x.Sample(snaps[i].AvgDrainRun, shardLabel(i))
	}
	x.Counter("gasf_shard_ring_producer_parks_total", "Producer parks on a full shard ring.")
	for i := range snaps {
		x.SampleU(snaps[i].ProducerParks, shardLabel(i))
	}
	x.Counter("gasf_shard_ring_consumer_parks_total", "Consumer parks on an empty shard ring.")
	for i := range snaps {
		x.SampleU(snaps[i].ConsumerParks, shardLabel(i))
	}

	if s.tel != nil {
		x.Gauge("gasf_telemetry_sample_period", "Stage-timing sampling period (one timed event per period per stage).")
		x.SampleU(uint64(s.tel.SampleEvery()))
		x.HistogramFamily("gasf_stage_duration_seconds", "Sampled hot-path stage durations (power-of-two nanosecond buckets).")
		for _, st := range telemetry.Stages() {
			x.WriteHistogram(s.tel.StageHist(st).Snapshot(), telemetry.Label{Name: "stage", Value: st.Name()})
		}
		x.SummaryFamily("gasf_delivery_latency_seconds", "End-to-end delivery latency (tuple source timestamp to egress write), frugal-estimated quantiles.")
		x.WriteLatencySummary(s.tel.Delivery().Snapshot(), policy)
		x.SummaryFamily("gasf_group_delivery_latency_seconds", "Per-source-group delivery latency, frugal-estimated quantiles.")
		for _, g := range s.groupLatencies() {
			x.WriteLatencySummary(g.snap, telemetry.Label{Name: "source", Value: g.name})
		}
	}
	return x.Err()
}

type groupLatency struct {
	name string
	snap telemetry.LatencySnapshot
}

// groupLatencies snapshots the per-source latency pairs in name order
// (deterministic exposition).
func (s *Server) groupLatencies() []groupLatency {
	s.mu.RLock()
	out := make([]groupLatency, 0, len(s.sources))
	for name, src := range s.sources {
		if src.lat != nil {
			out = append(out, groupLatency{name: name, snap: src.lat.Snapshot()})
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// MetricsHandler serves the observability surface: /metrics (strict
// Prometheus text exposition), /healthz (process liveness), /readyz
// (load-balancer readiness; 503 once a graceful drain has begun),
// /debug/gasf (live JSON introspection of sessions, queues, offsets and
// latency quantiles), and the standard /debug/pprof handlers.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.isDraining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			s.lg.Error("writing metrics", "err", err)
		}
	})
	mux.HandleFunc("/debug/gasf", func(w http.ResponseWriter, r *http.Request) {
		s.serveDebug(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
