package server

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// discardHandler drops every record (go 1.22 predates
// slog.DiscardHandler).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// logfHandler bridges structured records onto a printf-style sink, so
// the legacy Config.Logf (and t.Logf in tests) keeps receiving one line
// per session event after the server's logging moved to log/slog.
type logfHandler struct {
	f     func(format string, args ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= slog.LevelInfo }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString("server: ")
	b.WriteString(r.Message)
	emit := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
		return true
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(emit)
	h.f("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(h.attrs[:len(h.attrs):len(h.attrs)], attrs...)
	return h
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

// resolveLogger picks the session logger: an explicit Logger wins, a
// printf sink is bridged, silence is the default.
func (c Config) resolveLogger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	if c.Logf != nil {
		return slog.New(logfHandler{f: c.Logf})
	}
	return slog.New(discardHandler{})
}
