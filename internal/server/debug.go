package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"gasf/internal/federate"
	"gasf/internal/flowgap"
	"gasf/internal/shard"
	"gasf/internal/telemetry"
)

// DebugSource is the introspection view of one connected publisher.
type DebugSource struct {
	Name        string                     `json:"name"`
	Remote      string                     `json:"remote,omitempty"`
	LastSeen    time.Time                  `json:"last_seen"`
	Subscribers int                        `json:"subscribers"`
	NextOffset  uint64                     `json:"next_offset,omitempty"`
	Latency     *telemetry.LatencySnapshot `json:"delivery_latency,omitempty"`
}

// DebugSubscriber is the introspection view of one subscriber session.
type DebugSubscriber struct {
	App        string                     `json:"app"`
	Source     string                     `json:"source"`
	QueueLen   int                        `json:"queue_len"`
	QueueCap   int                        `json:"queue_cap"`
	Dropped    uint64                     `json:"dropped"`
	Resume     bool                       `json:"resume,omitempty"`
	ResumeFrom uint64                     `json:"resume_from,omitempty"`
	SpliceTo   uint64                     `json:"splice_to,omitempty"`
	RelayEdge  string                     `json:"relay_edge,omitempty"`
	Latency    *telemetry.LatencySnapshot `json:"delivery_latency,omitempty"`
}

// DebugLeg is the introspection view of one upstream relay leg on an
// edge node: the group it deduplicates, the core it streams from, and
// how many local members fan out from it.
type DebugLeg struct {
	Source     string `json:"source"`
	App        string `json:"app"`
	Spec       string `json:"spec"`
	Core       string `json:"core"`
	Members    int    `json:"members"`
	LastOffset uint64 `json:"last_offset,omitempty"`
	Durable    bool   `json:"durable,omitempty"`
}

// DebugFederation is the topology/placement section of /debug/gasf:
// the node's role, the core placement ring, and (on an edge) every
// live upstream leg with its local fan-out.
type DebugFederation struct {
	Role  string          `json:"role"`
	Self  string          `json:"self,omitempty"`
	Cores []federate.Node `json:"cores,omitempty"`
	Stats FederationStats `json:"stats"`
	Legs  []DebugLeg      `json:"legs,omitempty"`
}

// DebugFlowGap is the introspection view of the two-tier flow-gap
// detector: the timer wheel over connected sessions and the
// bounded-memory silence sketch over the whole source population.
type DebugFlowGap struct {
	ScanInterval  time.Duration              `json:"scan_interval_ns"`
	SourceTimeout time.Duration              `json:"source_timeout_ns"`
	Wheel         flowgap.WheelStats         `json:"wheel"`
	Sketch        flowgap.SketchStats        `json:"sketch"`
	ExpiryLag     *telemetry.LatencySnapshot `json:"expiry_lag,omitempty"`
}

// DebugInfo is the full /debug/gasf introspection dump: live sessions,
// queue depths, resume offsets, shard runtime state, and the frugal
// latency quantiles, as one JSON document.
type DebugInfo struct {
	Now         time.Time           `json:"now"`
	Addr        string              `json:"addr"`
	Draining    bool                `json:"draining"`
	Durable     bool                `json:"durable"`
	Policy      string              `json:"policy"`
	Counters    Counters            `json:"counters"`
	Telemetry   *telemetry.Snapshot `json:"telemetry,omitempty"`
	FlowGap     *DebugFlowGap       `json:"flow_gap,omitempty"`
	Shards      []shard.Snapshot    `json:"shards"`
	Sources     []DebugSource       `json:"sources"`
	Subscribers []DebugSubscriber   `json:"subscribers"`
	Federation  *DebugFederation    `json:"federation,omitempty"`
}

// Debug snapshots the live introspection state served at /debug/gasf.
func (s *Server) Debug() DebugInfo {
	info := DebugInfo{
		Now:      time.Now(),
		Addr:     s.ln.Addr().String(),
		Draining: s.isDraining(),
		Durable:  s.log != nil,
		Policy:   s.cfg.Policy.String(),
		Counters: s.Counters(),
		Shards:   s.rt.Metrics(),
	}
	if s.tel != nil {
		snap := s.tel.Snapshot()
		info.Telemetry = &snap
	}
	if s.wheel != nil {
		fg := &DebugFlowGap{
			ScanInterval:  s.cfg.ScanInterval,
			SourceTimeout: s.cfg.SourceTimeout,
			Wheel:         s.wheel.Stats(),
			Sketch:        s.sketch.Stats(),
		}
		lag := s.expiryLag.Snapshot()
		fg.ExpiryLag = &lag
		info.FlowGap = fg
	}
	s.mu.RLock()
	for name, src := range s.sources {
		d := DebugSource{
			Name: name,
			// Liveness is tracked in wheel ticks; the instant shown is
			// the start of the last-touch tick (zero when expiry is
			// disabled and liveness untracked).
			LastSeen:    s.wheel.TickTime(src.gap.LastTouch()),
			Subscribers: len(s.subs[name]),
		}
		if src.conn != nil {
			d.Remote = src.conn.RemoteAddr().String()
		}
		if s.log != nil {
			d.NextOffset = s.log.NextOffset(name)
		}
		if src.lat != nil {
			snap := src.lat.Snapshot()
			d.Latency = &snap
		}
		info.Sources = append(info.Sources, d)
	}
	for source, m := range s.subs {
		for app, sub := range m {
			d := DebugSubscriber{
				App:        app,
				Source:     source,
				QueueLen:   len(sub.out),
				QueueCap:   cap(sub.out),
				Dropped:    sub.droppedCount(),
				Resume:     sub.resume,
				ResumeFrom: sub.resumeFrom,
				SpliceTo:   sub.spliceTo,
			}
			if sub.relayEdge != "" {
				d.RelayEdge = sub.relayEdge
			}
			if sub.lat != nil {
				snap := sub.lat.Snapshot()
				d.Latency = &snap
			}
			info.Subscribers = append(info.Subscribers, d)
		}
	}
	s.mu.RUnlock()
	if s.cfg.Federation.Role != federate.RoleSingle {
		fed := &DebugFederation{
			Role:  s.cfg.Federation.Role.String(),
			Self:  s.cfg.Federation.Self,
			Stats: s.FederationStats(),
		}
		s.fedMu.RLock()
		if s.topo != nil {
			fed.Cores = s.topo.Nodes()
		}
		s.fedMu.RUnlock()
		if s.fed != nil {
			s.fed.mu.Lock()
			for _, leg := range s.fed.legs {
				leg.mu.Lock()
				fed.Legs = append(fed.Legs, DebugLeg{
					Source:     leg.key.source,
					App:        leg.key.app,
					Spec:       leg.key.spec,
					Core:       leg.coreName,
					Members:    len(leg.members),
					LastOffset: leg.lastOffset.Load(),
					Durable:    leg.durable.Load(),
				})
				leg.mu.Unlock()
			}
			s.fed.mu.Unlock()
			sort.Slice(fed.Legs, func(i, j int) bool {
				a, b := &fed.Legs[i], &fed.Legs[j]
				if a.Source != b.Source {
					return a.Source < b.Source
				}
				if a.App != b.App {
					return a.App < b.App
				}
				return a.Spec < b.Spec
			})
		}
		info.Federation = fed
	}
	sort.Slice(info.Sources, func(i, j int) bool { return info.Sources[i].Name < info.Sources[j].Name })
	sort.Slice(info.Subscribers, func(i, j int) bool {
		a, b := &info.Subscribers[i], &info.Subscribers[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.App < b.App
	})
	return info
}

// serveDebug writes the introspection dump as indented JSON.
func (s *Server) serveDebug(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Debug()); err != nil {
		s.lg.Error("writing debug dump", "err", err)
	}
}
