package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gasf/internal/tuple"
)

// syncServer starts a server with a single-shard engine for
// deterministic ordering tests.
func syncServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

func syncCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestPublisherSyncBarrier proves the ping/pong ordering guarantee: a
// subscriber joining after Sync returns sees only tuples published after
// the barrier, every time.
func TestPublisherSyncBarrier(t *testing.T) {
	srv := syncServer(t)
	addr := srv.Addr().String()
	ctx := syncCtx(t)
	schema := tuple.MustSchema("v")
	pub, err := DialPublisher(addr, "src", schema)
	if err != nil {
		t.Fatal(err)
	}

	const boundary = 64
	batch := make([]*tuple.Tuple, 0, boundary)
	mk := func(seq int) *tuple.Tuple {
		return tuple.MustNew(schema, seq, time.Unix(0, int64(seq+1)*int64(time.Millisecond)), []float64{float64(seq)})
	}
	for seq := 0; seq < boundary; seq++ {
		batch = append(batch, mk(seq))
	}
	if err := pub.PublishBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := pub.Sync(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// The join lands at the barrier: the server has submitted all 64
	// tuples to the ring before the subscriber's AddFilter control could
	// enqueue.
	sub, err := DialSubscriber(addr, "late", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	batch = batch[:0]
	for seq := boundary; seq < boundary+16; seq++ {
		batch = append(batch, mk(seq))
	}
	if err := pub.PublishBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		d, err := sub.Recv()
		if err != nil {
			if err != ErrStreamEnded {
				t.Fatalf("recv: %v", err)
			}
			break
		}
		if d.Tuple.Seq < boundary {
			t.Fatalf("post-barrier subscriber received pre-barrier tuple %d", d.Tuple.Seq)
		}
		got++
	}
	if got != 16 {
		t.Errorf("received %d deliveries, want the 16 post-barrier pass-all tuples", got)
	}
}

// TestSubscriberLeaveAck proves Leave blocks until the filter has left
// the group: the app name is immediately reusable, which the server only
// permits once the registry entry is gone — and the registry entry only
// goes after the engine-side RemoveFilter completed.
func TestSubscriberLeaveAck(t *testing.T) {
	srv := syncServer(t)
	addr := srv.Addr().String()
	ctx := syncCtx(t)
	schema := tuple.MustSchema("v")
	pub, err := DialPublisher(addr, "src", schema)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		sub, err := DialSubscriber(addr, "app", "src", "DC1(v, 0.5, 0)")
		if err != nil {
			t.Fatalf("round %d: subscribe: %v", round, err)
		}
		if err := pub.Publish(tuple.MustNew(schema, round, time.Unix(0, int64(round+1)*int64(time.Millisecond)), []float64{float64(round)})); err != nil {
			t.Fatalf("round %d: publish: %v", round, err)
		}
		if err := pub.Sync(ctx); err != nil {
			t.Fatalf("round %d: sync: %v", round, err)
		}
		if err := sub.Leave(ctx); err != nil {
			t.Fatalf("round %d: leave: %v", round, err)
		}
		// No retry loop: the acked leave means "app" is free right now.
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncAfterShutdownReportsEnd proves Sync surfaces the server's
// drain as a stream end, not a hang.
func TestSyncAfterShutdownReportsEnd(t *testing.T) {
	srv, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	schema := tuple.MustSchema("v")
	pub, err := DialPublisher(addr, "src", schema)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pub.Sync(ctx); err == nil {
		t.Error("sync against a drained server should fail")
	} else if err != ErrStreamEnded {
		// A goodbye race can also surface as a closed connection; both
		// are acceptable ends, a hang is not.
		t.Logf("sync after shutdown: %v", err)
	}
}

// TestLeaveManySubscribers shuffles joins and acked leaves across many
// apps to stress the writer/reader hand-off around the departure ack.
func TestLeaveManySubscribers(t *testing.T) {
	srv := syncServer(t)
	addr := srv.Addr().String()
	ctx := syncCtx(t)
	schema := tuple.MustSchema("v")
	pub, err := DialPublisher(addr, "src", schema)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*Subscriber, 12)
	for i := range subs {
		if subs[i], err = DialSubscriber(addr, fmt.Sprintf("app%d", i), "src", "DC1(v, 0.5, 0)"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 48; i++ {
		if err := pub.Publish(tuple.MustNew(schema, i, time.Unix(0, int64(i+1)*int64(time.Millisecond)), []float64{float64(i)})); err != nil {
			t.Fatal(err)
		}
		if i%4 == 3 {
			idx := i / 4
			if idx < len(subs) {
				if err := pub.Sync(ctx); err != nil {
					t.Fatal(err)
				}
				if err := subs[idx].Leave(ctx); err != nil {
					t.Fatalf("leave %d: %v", idx, err)
				}
			}
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
}
