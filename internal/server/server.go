package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"gasf/internal/adapt"
	"gasf/internal/core"
	"gasf/internal/federate"
	"gasf/internal/flowgap"
	"gasf/internal/intern"
	"gasf/internal/quality"
	"gasf/internal/seglog"
	"gasf/internal/shard"
	"gasf/internal/telemetry"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// Policy selects how the server treats a subscriber whose bounded send
// queue is full.
type Policy int

const (
	// PolicyBlock applies backpressure: the shard worker waits for queue
	// space, which eventually stalls the publishers feeding that shard.
	// Nothing is lost; the slowest consumer paces its sources.
	PolicyBlock Policy = iota
	// PolicyDrop discards the delivery and counts it, keeping fast
	// subscribers and publishers unaffected by a slow one.
	PolicyDrop
	// PolicyDegrade keeps PolicyBlock's zero-loss backpressure but adds
	// a per-subscriber adaptive controller: under sustained queue
	// pressure (or past the delivery-p99 watermark) a subscriber whose
	// filter implements adapt.Scalable has its effective quality spec
	// coarsened stepwise at tuple boundaries through the live control
	// path, each change announced with a FrameQoS frame, and restored
	// stepwise with hysteresis once pressure clears. A subscriber whose
	// filter is not Scalable degrades to plain blocking.
	PolicyDegrade
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDrop:
		return "drop"
	case PolicyDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy reads a policy name ("block", "drop" or "degrade").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return PolicyBlock, nil
	case "drop":
		return PolicyDrop, nil
	case "degrade":
		return PolicyDegrade, nil
	default:
		return 0, fmt.Errorf("server: unknown slow-consumer policy %q (want block, drop or degrade)", s)
	}
}

// Config parameterizes a Server. The zero value listens on an ephemeral
// loopback port with default engine options.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// Engine configures the group-aware engine deployed per source
	// (algorithm, cuts, output strategy) and the shard runtime knobs.
	Engine core.Options
	// SubscriberQueue bounds each subscriber's send queue, in release
	// cycles (one queued entry carries every frame a shard flush released
	// to that subscriber, itself bounded by the runtime's FlushBatch);
	// 0 means 256. A session may request its own depth in the hello,
	// clamped to MaxSubscriberQueue.
	SubscriberQueue int
	// MaxSubscriberQueue caps the per-session queue depth a subscriber
	// may request (memory protection); 0 means 65536.
	MaxSubscriberQueue int
	// Policy selects the slow-consumer policy (block, drop or degrade).
	Policy Policy
	// Degrade tunes the per-subscriber degrade controller used by
	// PolicyDegrade (watermarks, step, cooldown, restore hysteresis);
	// zero values take the adapt.Governor defaults. Ignored under other
	// policies.
	Degrade adapt.GovernorConfig
	// SubscriberSendBuffer, when positive, pins each subscriber
	// connection's kernel send buffer to roughly this many bytes (and
	// disables its autotuning). By default the kernel absorbs a large
	// backlog for a slow consumer before writes block, which delays the
	// slow-consumer policy — the delivery queue only backs up once TCP
	// backpressure reaches the write loop. A bounded buffer makes a
	// lagging consumer visible to the policy promptly, at the cost of
	// burst-absorption headroom. 0 keeps the OS default.
	SubscriberSendBuffer int
	// EvictAfterDrops, under PolicyDrop, evicts a subscriber once this
	// many of its deliveries have been dropped: the session ends with a
	// typed eviction notice (an error frame the client surfaces as
	// ErrEvicted) instead of thinning silently forever. 0 disables
	// drop-count eviction.
	EvictAfterDrops int
	// OnSourceGap, when set, is invoked once per flow-gap expiry — a
	// source closed because it went silent past SourceTimeout — with the
	// source name and how long it had been silent. It runs on its own
	// goroutine (the scan loop never waits on it), so it may block, e.g.
	// on a webhook POST. Invocations are counted in
	// gasf_gap_notifications_total.
	OnSourceGap func(source string, silentFor time.Duration)
	// HeartbeatInterval paces server->subscriber heartbeats and the
	// stalled-source scan; 0 means 2s.
	HeartbeatInterval time.Duration
	// SourceTimeout expires a source session that has sent nothing (not
	// even a heartbeat) for this long — the flow-gap detector. 0 means
	// 30s; negative disables expiry.
	SourceTimeout time.Duration
	// ScanInterval is the granularity of the flow-gap wheel: both the
	// cadence of its advance loop and the tick its liveness timestamps
	// are quantized to. Detection is therefore late by at most two
	// intervals past SourceTimeout, never early. 0 derives a default
	// from SourceTimeout (one eighth, clamped between 10ms and 1s);
	// ignored when SourceTimeout is negative.
	ScanInterval time.Duration
	// WriteTimeout bounds one frame write to a subscriber; a subscriber
	// that cannot absorb a frame within it is disconnected. 0 means 10s.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for a connection's hello frame;
	// 0 means 5s.
	HandshakeTimeout time.Duration
	// DrainGrace bounds how long a graceful Shutdown keeps reading from
	// connected publishers (draining tuples already in flight) before
	// cutting them; 0 means 1s.
	DrainGrace time.Duration
	// DataDir, when set, enables durability: every transmission released
	// to at least one live subscriber is appended to a per-source
	// segment log under this directory (internal/seglog) before fan-out,
	// deliveries carry their log offset, and subscribers may resume from
	// a checkpointed offset. Startup recovers the log, truncating any
	// torn tail left by a crash. Empty disables durability.
	DataDir string
	// Seglog tunes the segment log (rotation size, fsync policy); zero
	// values take the seglog defaults. Ignored unless DataDir is set.
	Seglog seglog.Options
	// TelemetrySampleEvery sets the stage-timing sampling period: one in
	// every N hot-path events per stage is timed against the monotonic
	// clock (rounded up to a power of two). 0 means
	// telemetry.DefaultSampleEvery; negative disables stage timing and
	// latency estimation entirely.
	TelemetrySampleEvery int
	// Logger, when set, receives structured session logs. When nil, a
	// non-nil Logf is bridged (one formatted line per event); when both
	// are nil, logging is discarded.
	Logger *slog.Logger
	// Logf, when set and Logger is nil, receives one line per session
	// event. Kept for printf-style sinks such as testing.T.Logf.
	Logf func(format string, args ...any)
	// Federation places the server in a multi-broker topology (core or
	// edge role, peer list). The zero value is the standalone broker.
	Federation FederationConfig
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.SubscriberQueue <= 0 {
		c.SubscriberQueue = 256
	}
	if c.MaxSubscriberQueue <= 0 {
		c.MaxSubscriberQueue = 65536
	}
	if c.SubscriberQueue > c.MaxSubscriberQueue {
		c.MaxSubscriberQueue = c.SubscriberQueue
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.SourceTimeout == 0 {
		c.SourceTimeout = 30 * time.Second
	}
	if c.ScanInterval <= 0 && c.SourceTimeout > 0 {
		c.ScanInterval = c.SourceTimeout / 8
		if c.ScanInterval < 10*time.Millisecond {
			c.ScanInterval = 10 * time.Millisecond
		}
		if c.ScanInterval > time.Second {
			c.ScanInterval = time.Second
		}
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
	return c
}

// errDraining rejects sessions arriving during shutdown.
var errDraining = errors.New("server is draining")

// sourceSession is one connected publisher. Sessions are pooled: at
// million-source scale the churn of connect/expire cycles would
// otherwise allocate a session, its sink caches and its latency pair
// per reconnect.
type sourceSession struct {
	// name is interned (Server.names): reconnect generations of the
	// same source share one heap copy instead of retaining one each.
	name   string
	conn   net.Conn
	schema *tuple.Schema
	// gap is the session's entry in the flow-gap wheel: the last-seen
	// tick (one atomic word, quantized to ScanInterval — no time.Time,
	// no clock read on the hot path) plus the busy bit that marks a
	// reader parked inside the runtime — a ring submit under
	// backpressure or a Sync barrier awaiting its pong. A busy source
	// publishes nothing by definition, so the flow-gap wheel must treat
	// the state as liveness, not silence: reaping it mid-barrier would
	// tear down a healthy session (and strand the client in Sync).
	gap flowgap.Entry
	// expired marks that the gap detector closed the connection, so the
	// reader attributes its exit correctly.
	expired atomicFlag
	// subEpoch counts subscriber-registry changes for this source; it is
	// written under Server.mu and read under its read side. The sink's
	// per-source caches are keyed by it, so a membership change can never
	// serve stale targets or labels.
	subEpoch uint64
	// sink-side state, owned by the source's shard worker (sink calls for
	// one source are serialized), so it needs no locking of its own.
	sink sinkState
	// lat estimates the per-group delivery-latency quantiles: every
	// egress write of a frame from this source feeds it. Nil when
	// telemetry is disabled. Each session generation gets a fresh pair:
	// queued frames retain the pointer past the session's end, so a
	// recycled session must never reuse its predecessor's.
	lat *telemetry.LatencyPair
}

var sourceSessionPool = sync.Pool{New: func() any { return new(sourceSession) }}

// newSourceSession checks a recycled session out of the pool and
// resets every field a previous generation could have dirtied.
func (s *Server) newSourceSession(name string, conn net.Conn, schema *tuple.Schema) *sourceSession {
	src := sourceSessionPool.Get().(*sourceSession)
	src.name, src.conn, src.schema = name, conn, schema
	src.gap.Reset()
	src.expired.clear()
	src.subEpoch = 0
	src.sink.reset()
	src.lat = nil
	if s.tel != nil {
		src.lat = telemetry.NewLatencyPair()
	}
	return src
}

// reset clears the sink-side caches for session reuse: stale subscriber
// pointers must not pin sessions in the pool, and the encoder's
// memoized destination prefix must not survive into a generation whose
// epochs restart at zero.
func (st *sinkState) reset() {
	st.epoch = 0
	st.inDests = nil
	clear(st.targets)
	st.targets = st.targets[:0]
	st.labels = st.labels[:0]
	st.enc = wire.TransmissionEncoder{}
}

// sinkState caches the per-source fan-out of the last released
// transmission: the engine-decided destination list is mapped to live
// subscriber targets and their labels once per (epoch, list) run instead
// of once per transmission, and the encoded destination prefix is
// memoized inside the wire encoder.
type sinkState struct {
	epoch   uint64
	inDests []string // engine destination list the cache was computed for
	targets []*subscriber
	labels  []string
	enc     wire.TransmissionEncoder
}

// Server is the networked streaming service. Create with Start, stop with
// Shutdown (graceful drain) or Close (abort).
type Server struct {
	cfg Config
	ln  net.Listener
	rt  *shard.Runtime
	// log is the durable segment log, nil unless Config.DataDir is set.
	log *seglog.Log

	// rtCancel aborts the shard runtime (hard stop only; a graceful
	// drain must leave the workers running until Drain returns).
	rtCancel context.CancelFunc

	// mu guards the session registries; the delivery fan-out (sink) and
	// metrics snapshots take the read side so shard workers do not
	// serialize against each other or against handshakes.
	mu       sync.RWMutex
	sources  map[string]*sourceSession
	subs     map[string]map[string]*subscriber // source -> app -> session
	draining bool

	// opsMu gates runtime operations against Drain: sessions hold the
	// read side across Feed/Control/FinishSource; Shutdown takes the
	// write side once all sources are gone, after which rtClosed rejects
	// stragglers.
	opsMu    sync.RWMutex
	rtClosed bool

	srcWG  sync.WaitGroup // source session readers
	connWG sync.WaitGroup // every session goroutine
	stop   chan struct{}  // closes background loops

	// lg is the resolved session logger; tel the stage-timing and
	// latency-estimation pipeline (nil when disabled).
	lg  *slog.Logger
	tel *telemetry.Pipeline

	// The flow-gap detector. wheel is tier 1 (connected sessions,
	// nil when SourceTimeout is negative); sketch is tier 2, the
	// bounded-memory last-heard record over the whole source population,
	// connected or not, used to label reconnects that follow a silence
	// gap. names interns source names across session generations, and
	// expiryLag tracks how far past their deadline expiries fire.
	wheel     *flowgap.Wheel
	sketch    *flowgap.Sketch
	names     *intern.Pool
	expiryLag *telemetry.LatencyPair

	// Federation state: topo is the core placement ring (nil on a
	// standalone node), swapped under fedMu by UpdatePeers; fed is the
	// edge's upstream-leg registry (nil unless RoleEdge).
	fedMu sync.RWMutex
	topo  *federate.Topology
	fed   *relayMgr

	ctr      counters
	shutOnce sync.Once
	shutErr  error
}

// Start listens and serves until Shutdown or Close.
func Start(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var topo *federate.Topology
	switch cfg.Federation.Role {
	case federate.RoleEdge:
		if cfg.Federation.Self == "" {
			return nil, fmt.Errorf("server: edge role needs Federation.Self (the node's name)")
		}
		if len(cfg.Federation.Peers) == 0 {
			return nil, fmt.Errorf("server: edge role needs Federation.Peers (the core tier)")
		}
		if cfg.DataDir != "" {
			// Durability lives at the cores, which own the sources and
			// their logs; an edge log would hold nothing.
			return nil, fmt.Errorf("server: edge role does not take a data dir (cores own the durable logs)")
		}
		t, err := federate.NewTopology(cfg.Federation.Peers)
		if err != nil {
			return nil, err
		}
		topo = t
	case federate.RoleCore:
		if len(cfg.Federation.Peers) > 0 {
			t, err := federate.NewTopology(cfg.Federation.Peers)
			if err != nil {
				return nil, err
			}
			topo = t
		}
	}
	if cfg.Policy == PolicyDegrade {
		// Surface a bad controller config here, not at the first
		// subscriber handshake.
		if _, err := adapt.NewGovernor(cfg.Degrade); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var log *seglog.Log
	if cfg.DataDir != "" {
		// Opening the log runs recovery: torn tails are truncated and
		// each source's next offset restored before any session connects.
		log, err = seglog.Open(cfg.DataDir, cfg.Seglog)
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var tel *telemetry.Pipeline
	if cfg.TelemetrySampleEvery >= 0 {
		tel = telemetry.New(cfg.TelemetrySampleEvery)
	}
	sc := shard.FromOptions(cfg.Engine)
	sc.Telemetry = tel
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		rt:       shard.New(sc),
		log:      log,
		rtCancel: cancel,
		sources:  make(map[string]*sourceSession),
		subs:     make(map[string]map[string]*subscriber),
		stop:     make(chan struct{}),
		lg:       cfg.resolveLogger(),
		tel:      tel,
		names:    intern.New(0),
		topo:     topo,
	}
	if cfg.Federation.Role == federate.RoleEdge {
		s.fed = newRelayMgr(s)
	}
	if cfg.SourceTimeout > 0 {
		s.wheel = flowgap.NewWheel(cfg.ScanInterval, cfg.SourceTimeout, s.expireSource)
		s.sketch = flowgap.NewSketch(gapSketchCells)
		s.expiryLag = telemetry.NewLatencyPair()
	}
	if err := s.rt.Start(ctx, s.sink); err != nil {
		cancel()
		ln.Close()
		if log != nil {
			log.Close()
		}
		return nil, err
	}
	s.connWG.Add(2)
	go s.acceptLoop()
	go s.scanLoop()
	s.lg.Info("listening",
		"addr", ln.Addr().String(),
		"policy", cfg.Policy.String(),
		"heartbeat", cfg.HeartbeatInterval,
		"source_timeout", cfg.SourceTimeout,
		"scan_interval", cfg.ScanInterval,
		"telemetry_sample", tel.SampleEvery())
	return s, nil
}

// Telemetry exposes the stage-timing pipeline (nil when disabled).
func (s *Server) Telemetry() *telemetry.Pipeline { return s.tel }

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Runtime exposes the shard runtime for metrics.
func (s *Server) Runtime() *shard.Runtime { return s.rt }

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// runtimeOp runs a runtime operation under the drain gate.
func (s *Server) runtimeOp(fn func() error) error {
	s.opsMu.RLock()
	defer s.opsMu.RUnlock()
	if s.rtClosed {
		return errDraining
	}
	return fn()
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// gapSketchCells sizes the tier-2 silence sketch: 2^18 cells x 8 bytes
// = 2MiB fixed, ~40% occupancy at a 100k-name population (see the
// flowgap property test for the occupancy/error trade-off) and never
// growing past it — larger populations degrade detection gracefully
// via oldest-first eviction rather than growing memory.
const gapSketchCells = 1 << 18

// scanLoop drives flow-gap detection: a publisher that neither streams
// nor heartbeats within SourceTimeout is presumed dead, its session is
// closed and its stream finished, so its subscribers see a clean end
// instead of silence. Each tick advances the timer wheel, which only
// inspects the sessions whose liveness deadline falls due — never the
// whole population, and never under the server mutex — so handshakes
// and ingest are unaffected by how many idle sources are tracked.
func (s *Server) scanLoop() {
	defer s.connWG.Done()
	if s.wheel == nil {
		return
	}
	tick := time.NewTicker(s.cfg.ScanInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		s.wheel.Advance(time.Now())
	}
}

// expireSource is the wheel's expiry callback (runs on the scan loop,
// outside every lock). Closing the connection unblocks the session
// reader, which finishes the stream and tears down the subscribers.
func (s *Server) expireSource(data any, lag time.Duration) {
	src := data.(*sourceSession)
	src.expired.set()
	s.ctr.sourcesExpired.Add(1)
	s.expiryLag.Observe(lag)
	s.lg.Warn("source expired", "source", src.name, "silent_for", s.cfg.SourceTimeout, "lag", lag)
	if s.cfg.OnSourceGap != nil {
		// Deadman notification, off the scan loop: the hook may block on
		// external delivery (webhook, pager) without stalling detection.
		s.ctr.gapNotifications.Add(1)
		go s.cfg.OnSourceGap(src.name, s.cfg.SourceTimeout+lag)
	}
	src.conn.Close()
}

// handleConn performs the handshake and dispatches the session.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	kind, payload, err := ReadFrame(conn)
	if err != nil {
		s.reject(conn, fmt.Errorf("reading hello: %w", err))
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch kind {
	case FrameSourceHello:
		s.serveSource(conn, payload)
	case FrameSubHello:
		s.serveSubscriber(conn, payload)
	default:
		s.reject(conn, fmt.Errorf("connection opened with frame kind %d, want a hello", kind))
	}
}

// reject answers a failed handshake with an error frame and closes.
func (s *Server) reject(conn net.Conn, err error) {
	s.ctr.handshakeRejects.Add(1)
	s.lg.Warn("handshake rejected", "remote", conn.RemoteAddr().String(), "err", err)
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_ = WriteFrame(conn, FrameError, []byte(err.Error()))
	conn.Close()
}

// serveSource runs a publisher session: register an engine for the
// source, stream its tuples into the shard runtime, and on any exit
// (goodbye, disconnect, expiry, protocol error) finish the stream, flush
// the tail to its subscribers, and tear the subscribers down.
func (s *Server) serveSource(conn net.Conn, hello []byte) {
	name, schema, err := DecodeSourceHello(hello)
	if err != nil {
		s.reject(conn, err)
		return
	}
	// Interning shares one heap copy of the name across reconnect
	// generations and with the long-lived registries keyed by it.
	name = s.names.Intern(name)

	if s.fed != nil {
		// Edges hold no sources; point the publisher at the owner.
		if owner, ok := s.ownerOf(name); ok {
			s.reject(conn, fmt.Errorf("edge node: source %q is owned by core %q at %s", name, owner.Name, owner.Addr))
		} else {
			s.reject(conn, fmt.Errorf("edge node: publishers connect to a core, not an edge"))
		}
		return
	}
	if self := s.cfg.Federation.Self; self != "" && s.cfg.Federation.Role == federate.RoleCore {
		// Placement enforcement: a core with a configured topology only
		// accepts the sources the ring assigns to it, so a misrouted
		// publisher learns the owner instead of silently splitting a
		// source across cores.
		if owner, ok := s.ownerOf(name); ok && owner.Name != self {
			s.reject(conn, fmt.Errorf("source %q is owned by core %q at %s (this is %q)", name, owner.Name, owner.Addr, self))
			return
		}
	}

	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		s.reject(conn, errDraining)
		return
	case s.sources[name] != nil:
		s.mu.Unlock()
		s.reject(conn, fmt.Errorf("source %q already connected", name))
		return
	}
	engine, err := core.NewDynamicEngine(s.cfg.Engine)
	if err == nil {
		err = s.runtimeOp(func() error { return s.rt.AddSourceLive(name, engine) })
	}
	if err != nil {
		s.mu.Unlock()
		s.reject(conn, err)
		return
	}
	src := s.newSourceSession(name, conn, schema)
	s.sources[name] = src
	s.srcWG.Add(1)
	s.mu.Unlock()

	if s.wheel != nil {
		// Tier 2 first: was this name silent past the timeout since we
		// last heard it (possibly sessions ago)? That is a gap-recovered
		// reconnect — the sketch remembers populations far larger than
		// the connected set, in bounded memory.
		now := s.wheel.NowTick()
		if last, known := s.sketch.LastSeen(name); known && now-last >= s.wheel.TimeoutTicks() {
			s.ctr.gapReconnects.Add(1)
			s.lg.Info("source returned after flow gap", "source", name,
				"silent_for", time.Duration(now-last)*s.wheel.Tick())
		}
		s.sketch.Record(name, now)
		s.wheel.Add(&src.gap, src)
	}
	s.ctr.sourcesAccepted.Add(1)
	s.lg.Info("source connected", "source", name, "remote", conn.RemoteAddr().String(), "schema", schema)
	if err := WriteFrame(conn, FrameHelloOK, s.sourceResumeHint(name, schema)); err != nil {
		s.finishSource(src, fmt.Errorf("hello-ok: %w", err))
		return
	}
	s.readSource(src)
}

// resumeHintTail bounds how many log-tail records the source hello-ok
// hint scans for the highest logged tuple sequence. Reconnecting
// publishers keep unacked windows far larger than this, but every tuple
// past the last Sync barrier that actually reached the log lands in the
// tail the publisher republishes next — so the maximum over a bounded
// tail is the maximum that matters.
const resumeHintTail = 32

// sourceResumeHint builds the source hello-ok payload: on a durable
// server it names the highest tuple sequence found near the log head for
// this source, so a reconnecting publisher can trim its republish window
// to the tuples the log never saw instead of double-logging the overlap.
// Best-effort: when the tail does not decode under this session's schema
// (the source came back shaped differently), no hint is sent — a wrong
// hint could silently drop tuples, a missing one only risks duplicates.
func (s *Server) sourceResumeHint(name string, schema *tuple.Schema) []byte {
	if s.log == nil {
		return nil
	}
	head := s.log.NextOffset(name)
	from := uint64(0)
	if head > resumeHintTail {
		from = head - resumeHintTail
	}
	maxSeq := int64(-1)
	err := s.log.Read(name, from, head, func(_ uint64, payload []byte) error {
		t, _, _, err := wire.DecodeTransmission(schema, payload)
		if err != nil {
			return err
		}
		if int64(t.Seq) > maxSeq {
			maxSeq = int64(t.Seq)
		}
		return nil
	})
	if err != nil && head > 0 {
		return nil
	}
	return EncodeSourceHelloOK(maxSeq, true)
}

// Ingest read-buffer sizing: every session starts on a small buffer —
// at scale most sources are idle heartbeaters, and a 32KiB buffer per
// idle session is the difference between ~3GiB and ~50MiB at 100k
// sources — and upgrades to the streaming size on its first tuple
// frame, when it has proven it is a streamer.
const (
	idleReadBuf   = 512
	streamReadBuf = 32 << 10
)

// readSource is the publisher read loop. Reads are buffered and the
// payload buffer is recycled across frames (decoded tuples copy what they
// keep), so steady-state ingest does not allocate per frame. Ingest is
// opportunistically batched: tuples whose frames are already sitting in
// the read buffer are submitted to the shard ring together, one
// synchronization per run, while a lone tuple still submits immediately —
// batching never waits for bytes that have not arrived.
func (s *Server) readSource(src *sourceSession) {
	var lastTS time.Time
	var readErr error
	br := bufio.NewReaderSize(src.conn, idleReadBuf)
	upgraded := false
	var payloadBuf []byte
	flushN := s.cfg.Engine.FlushBatch
	if flushN <= 0 {
		flushN = shard.DefaultFlushBatch
	}
	batch := make([]*tuple.Tuple, 0, flushN)
	// frameBuffered reports whether a whole frame — header and payload —
	// is already sitting in the read buffer. A buffered header alone is
	// not enough: continuing to accumulate would park staged tuples
	// behind a blocking read for a payload that may lag arbitrarily. The
	// Buffered() guard must come first — bufio's Peek otherwise BLOCKS
	// reading the connection for the missing header bytes, which would
	// hold the staged batch across an idle gap and cost a full pacing
	// interval of delivery latency.
	frameBuffered := func() bool {
		if br.Buffered() < frameHeaderLen {
			return false
		}
		hdr, err := br.Peek(frameHeaderLen)
		if err != nil {
			return false
		}
		n := binary.LittleEndian.Uint32(hdr[1:])
		return uint32(br.Buffered()-frameHeaderLen) >= n
	}
	submit := func() error {
		if len(batch) == 0 {
			return nil
		}
		// Stamping liveness once per submitted run (not per frame) keeps
		// even the wheel's one-atomic-store touch off the per-tuple
		// path; runs are far shorter than any sane SourceTimeout.
		s.wheel.Touch(&src.gap)
		// The submit may park arbitrarily long on a full shard ring
		// (block policy downstream); the busy flag keeps the flow-gap
		// wheel from mistaking that stall for a dead publisher, and the
		// fresh touch on return restarts the gap clock.
		src.gap.SetBusy(true)
		err := s.runtimeOp(func() error { return s.rt.SubmitBatch(src.name, batch) })
		src.gap.SetBusy(false)
		s.wheel.Touch(&src.gap)
		if err == nil {
			s.ctr.tuplesIn.Add(uint64(len(batch)))
		}
		batch = batch[:0]
		return err
	}
	for {
		kind, payload, err := ReadFrameInto(br, payloadBuf)
		payloadBuf = payload[:cap(payload)]
		if err != nil {
			// EOF, gap expiry and the drain deadline are orderly ends of
			// stream, not failures.
			if !errors.Is(err, io.EOF) && !src.expired.isSet() && !s.isDraining() {
				readErr = err
			}
			break
		}
		s.ctr.bytesIn.Add(uint64(frameHeaderLen + len(payload)))
		switch kind {
		case FrameTuple:
			if !upgraded {
				// First tuple: this session is a streamer, not an idle
				// heartbeater — move it to the full-size read buffer.
				// Bytes already buffered (frames behind this one) are
				// spliced ahead of the connection so nothing is lost.
				upgraded = true
				if n := br.Buffered(); n > 0 {
					pending, _ := br.Peek(n)
					br = bufio.NewReaderSize(
						io.MultiReader(bytes.NewReader(append([]byte(nil), pending...)), src.conn),
						streamReadBuf)
				} else {
					br = bufio.NewReaderSize(src.conn, streamReadBuf)
				}
			}
			var t *tuple.Tuple
			var n int
			var err error
			if s.tel.Sample(telemetry.StageIngestDecode) {
				t0 := time.Now()
				t, n, err = wire.DecodeTuple(src.schema, payload)
				s.tel.Observe(telemetry.StageIngestDecode, time.Since(t0))
			} else {
				t, n, err = wire.DecodeTuple(src.schema, payload)
			}
			if err == nil && n != len(payload) {
				err = fmt.Errorf("tuple frame carries %d trailing bytes", len(payload)-n)
			}
			if err == nil && !t.TS.After(lastTS) {
				err = fmt.Errorf("tuple %d timestamp %v not after previous %v", t.Seq, t.TS, lastTS)
			}
			if err != nil {
				readErr = err
				s.sendError(src.conn, err)
				break
			}
			lastTS = t.TS
			batch = append(batch, t)
			if len(batch) < flushN && frameBuffered() {
				// Another whole frame is already buffered: keep
				// accumulating.
				continue
			}
			if err := submit(); err != nil {
				readErr = err
				break
			}
			continue
		case FrameHeartbeat:
			s.wheel.Touch(&src.gap)
			s.ctr.heartbeatsIn.Add(1)
			continue
		case FramePing:
			// Publish barrier: everything read before the ping goes to the
			// shard ring before the pong leaves, so a client that has seen
			// the pong knows later membership changes order after those
			// tuples.
			s.wheel.Touch(&src.gap)
			if err := submit(); err != nil {
				readErr = err
				break
			}
			// The pong write closes the barrier; it is covered by the busy
			// flag like the submit so an outstanding ping can never expire
			// the source mid-barrier.
			src.gap.SetBusy(true)
			src.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			err := WriteFrame(src.conn, FramePong, payload)
			src.gap.SetBusy(false)
			s.wheel.Touch(&src.gap)
			if err != nil {
				readErr = fmt.Errorf("answering ping: %w", err)
				break
			}
			continue
		case FrameGoodbye:
		default:
			readErr = fmt.Errorf("unexpected frame kind %d from source", kind)
			s.sendError(src.conn, readErr)
		}
		break
	}
	// Submit the staged tail (tuples validated before the exit) ahead of
	// the finish marker, so a goodbye or disconnect never drops them.
	if err := submit(); err != nil && readErr == nil {
		readErr = err
	}
	s.finishSource(src, readErr)
}

// sendError best-effort ships a fatal error to the peer.
func (s *Server) sendError(conn net.Conn, err error) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_ = WriteFrame(conn, FrameError, []byte(err.Error()))
}

// finishSource ends a publisher session: finish the engine (flushing its
// final outputs through the sink), tear down the source's subscribers
// after the tail is delivered, and release the source name for reuse.
func (s *Server) finishSource(src *sourceSession, cause error) {
	defer s.srcWG.Done()
	src.conn.Close()
	// Leave the wheel first. clean=false means an expiry pass has
	// claimed this session and its callback may still be running — the
	// session must then not be recycled; the GC takes that rare loser.
	clean := true
	if s.wheel != nil {
		clean = s.wheel.Remove(&src.gap)
		// Tier-2 record of when this name was last heard, so a future
		// reconnect can be classified against the silence threshold.
		s.sketch.Record(src.name, s.wheel.NowTick())
	}
	switch {
	case src.expired.isSet():
		s.ctr.closedFlowGap.Add(1)
	case s.isDraining():
		s.ctr.closedDrain.Add(1)
	case cause != nil:
		s.ctr.closedDisconnect.Add(1)
	default:
		s.ctr.closedFinished.Add(1)
	}
	if cause != nil {
		s.ctr.sourcesFailed.Add(1)
		s.lg.Warn("source failed", "source", src.name, "err", cause)
	} else {
		s.lg.Info("source finished", "source", src.name)
	}
	if err := s.runtimeOp(func() error { return s.rt.FinishSourceWait(src.name) }); err != nil && !errors.Is(err, errDraining) {
		s.lg.Warn("finishing source", "source", src.name, "err", err)
	}
	// The runtime forgets the name before the server registry does, so a
	// publisher reconnecting under this name either sees the old session
	// (rejected, retryable) or a fully clean slate — never a half-freed
	// name whose AddSourceLive would fail.
	if err := s.runtimeOp(func() error { return s.rt.RemoveSource(src.name) }); err != nil && !errors.Is(err, errDraining) {
		s.lg.Warn("removing source", "source", src.name, "err", err)
	}
	s.mu.Lock()
	delete(s.sources, src.name)
	subs := s.subs[src.name]
	delete(s.subs, src.name)
	s.mu.Unlock()
	// The finish marker has been processed, so no further sink flush can
	// touch these subscribers: their queues are complete and may be
	// flushed and closed.
	for _, sub := range subs {
		sub.finishStream()
	}
	s.ctr.sourcesFinished.Add(1)
	// Safe to recycle: the session is out of every registry, the
	// runtime has drained its flushes (FinishSourceWait), and the wheel
	// reported no in-flight expiry claim.
	if clean {
		sourceSessionPool.Put(src)
	}
}

// serveSubscriber runs a subscriber session: parse and validate the
// quality spec, join the source's live group, then stream transmissions
// until the subscriber leaves or its source finishes.
func (s *Server) serveSubscriber(conn net.Conn, hello []byte) {
	h, err := DecodeSubHello(hello)
	if err != nil {
		s.reject(conn, err)
		return
	}
	app, source, queue := h.App, h.Source, h.Queue
	spec, err := quality.Parse(h.Spec)
	if err != nil {
		s.reject(conn, err)
		return
	}
	if s.fed != nil {
		s.serveEdgeSubscriber(conn, h, spec)
		return
	}
	f, err := spec.Build(app)
	if err != nil {
		s.reject(conn, err)
		return
	}
	if s.log == nil && h.Resume {
		s.reject(conn, fmt.Errorf("%w: the server has no durable log (start it with a data dir)", ErrResumeUnavailable))
		return
	}
	if s.log != nil && h.Version < 2 {
		// A durable server's encode-once fan-out produces only
		// offset-bearing transmission frames; a protocol-1 client would
		// not understand them, so the handshake is the place to fail.
		s.reject(conn, fmt.Errorf("durable server requires subscriber protocol version %d (client speaks %d)", SubProtoVersion, h.Version))
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject(conn, errDraining)
		return
	}
	src := s.sources[source]
	if src == nil {
		s.mu.Unlock()
		s.reject(conn, fmt.Errorf("unknown source %q", source))
		return
	}
	for _, attr := range spec.Attrs {
		if !src.schema.Has(attr) {
			s.mu.Unlock()
			s.reject(conn, fmt.Errorf("source %q has no attribute %q (schema %v)", source, attr, src.schema))
			return
		}
	}
	if s.subs[source][app] != nil {
		s.mu.Unlock()
		s.reject(conn, fmt.Errorf("%w: app %q holds a live session on %q", ErrAlreadySubscribed, app, source))
		return
	}
	// Transmissions label every destination on the wire (u8 count), so a
	// group larger than the encoding allows could never be delivered.
	if len(s.subs[source]) >= wire.MaxDestinations {
		s.mu.Unlock()
		s.reject(conn, fmt.Errorf("source %q already has %d subscribers (wire limit)", source, wire.MaxDestinations))
		return
	}
	if h.Resume && h.ResumeFrom > s.log.NextOffset(source) {
		head := s.log.NextOffset(source)
		s.mu.Unlock()
		s.reject(conn, fmt.Errorf("%w: resume offset %d is beyond the log head %d of source %q", ErrResumeUnavailable, h.ResumeFrom, head, source))
		return
	}
	if queue <= 0 {
		queue = s.cfg.SubscriberQueue
	}
	if queue > s.cfg.MaxSubscriberQueue {
		queue = s.cfg.MaxSubscriberQueue
	}
	if s.cfg.SubscriberSendBuffer > 0 {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(s.cfg.SubscriberSendBuffer)
		}
	}
	sub := newSubscriber(s, app, source, conn, queue)
	sub.resume, sub.resumeFrom = h.Resume, h.ResumeFrom
	if h.Relay {
		// An edge's upstream leg: the same session in every way, but
		// tagged with the edge it fans out on for metrics and debug.
		sub.relayEdge = h.RelayEdge
		s.ctr.fedRelayLegsIn.Add(1)
	}
	if s.cfg.Policy == PolicyDegrade {
		if sc, ok := f.(adapt.Scalable); ok {
			// Config validated at Start; a fresh governor per session keeps
			// each subscriber's trajectory independent.
			gov, gerr := adapt.NewGovernor(s.cfg.Degrade)
			if gerr != nil {
				s.mu.Unlock()
				s.reject(conn, gerr)
				return
			}
			sub.gov, sub.scalable = gov, sc
		}
	}
	if s.subs[source] == nil {
		s.subs[source] = make(map[string]*subscriber)
	}
	// Registered before the filter joins the group, so the first
	// delivery the engine decides for this app finds its queue.
	s.subs[source][app] = sub
	src.subEpoch++
	s.mu.Unlock()

	err = s.runtimeOp(func() error {
		return s.rt.Control(source, func(e *core.Engine) error {
			if err := e.AddFilter(f); err != nil {
				return err
			}
			if sub.resume {
				// The splice fence: this closure runs on the source's
				// owning worker at a tuple boundary, the same goroutine
				// that appends to the log, so every record below the fence
				// was released before this app joined the group and every
				// transmission addressed to it lands at or above the
				// fence. Replaying [resumeFrom, fence) and then streaming
				// live is gapless and duplicate-free by construction.
				sub.spliceTo = s.log.NextOffset(source)
			}
			return nil
		})
	})
	if err != nil {
		s.dropSubscriberEntry(sub)
		s.reject(conn, fmt.Errorf("joining group of %q: %w", source, err))
		return
	}

	schemaPayload, err := EncodeSchema(src.schema)
	if err == nil {
		err = WriteFrame(conn, FrameHelloOK, schemaPayload)
	}
	if err != nil {
		s.removeSubscriber(sub)
		conn.Close()
		return
	}
	s.ctr.subscribersAccepted.Add(1)
	s.lg.Info("subscriber joined", "app", app, "source", source, "spec", spec)
	s.connWG.Add(1)
	go sub.writeLoop()
	if sub.gov != nil {
		s.connWG.Add(1)
		go sub.scaleLoop()
	}
	sub.readLoop() // returns when the client leaves or the session ends
}

// dropSubscriberEntry removes a subscriber from the registry without
// touching the engine (used when the join itself failed).
func (s *Server) dropSubscriberEntry(sub *subscriber) {
	s.mu.Lock()
	if m := s.subs[sub.source]; m != nil && m[sub.app] == sub {
		delete(m, sub.app)
		if src := s.sources[sub.source]; src != nil {
			src.subEpoch++
		}
	}
	s.mu.Unlock()
}

// removeSubscriber detaches a departing subscriber: its filter leaves the
// live group (re-deriving the group for the remaining members) and its
// queue stops accepting deliveries. The registry entry is removed only
// after the filter has left the engine, so outputs the group still owed
// the old session cannot reach a new session reusing the app name — the
// name stays taken (duplicate-rejected) until the detach completes.
func (s *Server) removeSubscriber(sub *subscriber) {
	sub.leave() // unblocks any sink send first
	if sub.leg != nil {
		// Relay members live outside the engine and the registry: the
		// departure refcounts the leg down, and the last member's leave
		// tears the upstream subscription through the acked path.
		s.fed.detach(sub)
		s.lg.Info("subscriber left", "app", sub.app, "source", sub.source, "dropped", sub.droppedCount())
		return
	}
	err := s.runtimeOp(func() error {
		return s.rt.Control(sub.source, func(e *core.Engine) error { return e.RemoveFilter(sub.app) })
	})
	if err != nil && !errors.Is(err, errDraining) {
		// The source may have finished concurrently; its teardown already
		// retired the whole group.
		s.lg.Warn("detaching subscriber", "app", sub.app, "source", sub.source, "err", err)
	}
	s.dropSubscriberEntry(sub)
	s.lg.Info("subscriber left", "app", sub.app, "source", sub.source, "dropped", sub.droppedCount())
}

// sinkScratch is the per-sink-call staging state (the subscribers
// touched this cycle), pooled so concurrent shard workers each grab
// their own and the fan-out cycle stays allocation-free.
type sinkScratch struct {
	touched []*subscriber
}

var sinkScratchPool = sync.Pool{New: func() any { return new(sinkScratch) }}

// sink receives batched released transmissions from the shard workers and
// fans each out to the connected subscribers named in its destination
// list. Per-source calls are serialized by the owning worker, so each
// subscriber's stream arrives in release order.
//
// The fan-out path encodes each transmission exactly once into a pooled,
// refcounted frame shared by every target queue, labels it with the live
// targets only (departed subscribers stop consuming egress bytes), and
// reuses the per-source target/label/prefix caches while the subscription
// epoch and destination list repeat. Frames are staged per subscriber
// across the whole flush and handed over as one batch per subscriber —
// one queue operation per release cycle, not one per frame. Staging is
// safe without locks because a subscriber belongs to exactly one source
// and one worker owns all of a source's flushes.
func (s *Server) sink(batch []shard.Out) {
	var fanStart time.Time
	if s.tel.Sample(telemetry.StageFanout) {
		fanStart = time.Now()
	}
	sc := sinkScratchPool.Get().(*sinkScratch)
	for i := range batch {
		o := &batch[i]
		s.ctr.transmissionsOut.Add(1)

		s.mu.RLock()
		src := s.sources[o.Source]
		var st *sinkState
		if src != nil {
			st = &src.sink
			if st.epoch != src.subEpoch || !slices.Equal(st.inDests, o.Tr.Destinations) {
				// Membership or overlap pattern changed: recompute the
				// live targets and their labels. Label order follows the
				// engine's sorted destination list, so the encoding stays
				// deterministic.
				st.epoch, st.inDests = src.subEpoch, o.Tr.Destinations
				st.targets, st.labels = st.targets[:0], st.labels[:0]
				for _, app := range o.Tr.Destinations {
					if sub := s.subs[o.Source][app]; sub != nil {
						st.targets = append(st.targets, sub)
						st.labels = append(st.labels, app)
					}
				}
			}
		}
		s.mu.RUnlock()
		if st == nil || len(st.targets) == 0 {
			// The source is gone, or every addressee already left (their
			// owed outputs decided after the leave); nothing to encode.
			continue
		}

		fr := getFrame()
		kind := FrameTransmission
		if s.log != nil {
			kind = FrameTransmissionOff
		}
		buf := beginFrame(fr.buf, kind)
		payloadStart := len(buf)
		if s.log != nil {
			// Offset placeholder, patched after the append assigns it.
			buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		}
		buf, err := st.enc.AppendTransmission(buf, st.epoch, o.Tr.Tuple, st.labels)
		if err != nil {
			fr.buf = fr.buf[:0]
			fr.retain(1)
			fr.release()
			s.lg.Error("encoding transmission", "source", o.Source, "err", err)
			continue
		}
		fr.buf = endFrame(buf)
		if s.log != nil {
			// The durable record is the exact transmission fanned out to
			// the live targets — pruned labels included — so a replayed
			// stream is byte-identical to what a live subscriber received.
			// The append lands before any subscriber queue sees the frame:
			// a delivery can never report an offset the log does not hold.
			off, err := s.log.Append(o.Source, fr.buf[payloadStart+8:])
			if err != nil {
				// Durability is degraded, delivery is not: the live stream
				// continues and the failure is counted and logged. Recovery
				// truncates whatever half-record the error left behind.
				s.ctr.logAppendErrors.Add(1)
				s.lg.Error("segment log append", "source", o.Source, "err", err)
			}
			binary.LittleEndian.PutUint64(fr.buf[payloadStart:], off)
		}
		// The tuple's source timestamp rides on the frame so egress can
		// turn the write instant into an end-to-end delivery latency.
		fr.ts = o.Tr.Tuple.TS.UnixNano()
		fr.src = src.lat
		fr.retain(len(st.targets))
		for _, sub := range st.targets {
			if sub.stage == nil {
				sub.stage = getBatch()
				sc.touched = append(sc.touched, sub)
			}
			sub.stage.frames = append(sub.stage.frames, fr)
		}
	}
	// Hand each touched subscriber its whole cycle in one queue
	// operation; the stage pointer is cleared before the send so a
	// blocked hand-off never leaves worker-owned state behind.
	for i, sub := range sc.touched {
		b := sub.stage
		sub.stage = nil
		sc.touched[i] = nil
		sub.sendBatch(b)
	}
	sc.touched = sc.touched[:0]
	sinkScratchPool.Put(sc)
	if !fanStart.IsZero() {
		s.tel.Observe(telemetry.StageFanout, time.Since(fanStart))
	}
}

// Shutdown gracefully drains the server: stop accepting, close publisher
// sessions, flush every engine and subscriber queue, then close the
// subscriber sessions with a goodbye. The context bounds the drain; on
// expiry the remaining work is aborted.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() { s.shutErr = s.shutdown(ctx) })
	return s.shutErr
}

// Close aborts the server without draining.
func (s *Server) Close() error {
	s.shutOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		s.shutErr = s.shutdown(ctx)
	})
	return s.shutErr
}

func (s *Server) shutdown(ctx context.Context) error {
	s.lg.Info("shutting down")
	s.mu.Lock()
	s.draining = true
	srcs := make([]*sourceSession, 0, len(s.sources))
	for _, src := range s.sources {
		srcs = append(srcs, src)
	}
	s.mu.Unlock()
	s.ln.Close()
	close(s.stop)
	if s.fed != nil {
		// Tear down the upstream legs first: every local member's stream
		// then finishes with the drain-tagged goodbye, and the cores
		// clean their relay sessions on disconnect.
		s.fed.shutdown()
	}

	// Each publisher gets a drain-tagged goodbye and a read deadline: its
	// reader drains the tuples already in flight, then goes down the
	// normal finish path — engine Finish, tail flush, subscriber goodbye.
	// The tag lets a reconnect-aware publisher distinguish this forced
	// end from its own Finish and redial a restarted server.
	for _, src := range srcs {
		src.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		_ = WriteFrame(src.conn, FrameGoodbye, goodbyeDrainPayload)
		src.conn.SetReadDeadline(time.Now().Add(s.cfg.DrainGrace))
	}

	done := make(chan struct{})
	go func() { s.srcWG.Wait(); close(done) }()
	aborted := false
	select {
	case <-done:
	case <-ctx.Done():
		// Hard abort: cancel the runtime so blocked feeds and controls
		// unwind, and cut the connections under the readers.
		aborted = true
		s.rtCancel()
		for _, src := range srcs {
			src.conn.Close()
		}
		<-done
	}

	// All feeders have stopped; seal the runtime and drain it.
	s.opsMu.Lock()
	s.rtClosed = true
	s.opsMu.Unlock()
	if aborted {
		s.rtCancel()
	}
	drainErr := s.rt.Drain()
	s.rtCancel()
	if s.log != nil {
		// The workers are drained: no sink call can append anymore, so
		// the log can be sealed (final fsync under the sync policies).
		if err := s.log.Close(); err != nil {
			drainErr = errors.Join(drainErr, err)
		}
	}

	// Workers are gone, so no sink flush can race these closes; any
	// subscriber still connected gets its queue flushed and a goodbye.
	s.mu.Lock()
	var rest []*subscriber
	for _, m := range s.subs {
		for _, sub := range m {
			rest = append(rest, sub)
		}
	}
	s.subs = make(map[string]map[string]*subscriber)
	s.mu.Unlock()
	for _, sub := range rest {
		sub.finishStream()
	}

	waitDone := make(chan struct{})
	go func() { s.connWG.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-ctx.Done():
		if !aborted {
			drainErr = errors.Join(drainErr, ctx.Err())
		}
	}
	if aborted {
		// The abort cancelled the runtime on purpose; surfacing the
		// cancellation itself as an error would make every Close() fail.
		return stripCtxErrs(drainErr)
	}
	if drainErr != nil {
		return drainErr
	}
	s.lg.Info("drained")
	return nil
}

// stripCtxErrs removes context-cancellation errors from a (possibly
// joined) error tree, keeping real failures.
func stripCtxErrs(err error) error {
	if err == nil {
		return nil
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		var keep []error
		for _, e := range joined.Unwrap() {
			if e = stripCtxErrs(e); e != nil {
				keep = append(keep, e)
			}
		}
		return errors.Join(keep...)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}

// atomicFlag is a set-once boolean (clearable only for session reuse).
type atomicFlag struct{ v atomic.Bool }

func (a *atomicFlag) set()        { a.v.Store(true) }
func (a *atomicFlag) clear()      { a.v.Store(false) }
func (a *atomicFlag) isSet() bool { return a.v.Load() }
