package solar

import (
	"context"
	"sync"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/overlay"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

func testNet(t *testing.T) *overlay.Network {
	t.Helper()
	n, err := overlay.New(overlay.Config{Nodes: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func dcFilter(t *testing.T, id string, delta, slack float64) filter.Filter {
	t.Helper()
	f, err := filter.NewDC1(id, "temperature", delta, slack)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func buildSystem(t *testing.T, opts core.Options) (*System, *overlay.Network) {
	t.Helper()
	net := testNet(t)
	s, err := NewSystem(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSource("temp", net.NodeByIndex(0), opts); err != nil {
		t.Fatal(err)
	}
	subs := []struct {
		app          string
		delta, slack float64
	}{
		{"A", 50, 10}, {"B", 40, 5}, {"C", 80, 25},
	}
	for i, sub := range subs {
		err := s.Subscribe("temp", Subscription{
			App:    sub.app,
			Node:   net.NodeByIndex(i + 1),
			Filter: dcFilter(t, sub.app, sub.delta, sub.slack),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	return s, net
}

func TestRunSeriesDeliversPaperExample(t *testing.T) {
	s, _ := buildSystem(t, core.Options{Algorithm: core.RG})
	var mu sync.Mutex
	perApp := make(map[string][]float64)
	results, err := s.RunSeries(map[string]*tuple.Series{"temp": trace.PaperExample()},
		func(d Delivery) {
			mu.Lock()
			defer mu.Unlock()
			perApp[d.App] = append(perApp[d.App], d.Tuple.ValueAt(0))
			if d.Latency <= 0 {
				t.Errorf("non-positive latency for %s", d.App)
			}
			if d.Source != "temp" {
				t.Errorf("source = %q", d.Source)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	// Fig 2.8 outcome: A and B receive {0, 50, 100}; C receives {0, 100}.
	want := map[string][]float64{
		"A": {0, 50, 100},
		"B": {0, 50, 100},
		"C": {0, 100},
	}
	for app, w := range want {
		got := perApp[app]
		if len(got) != len(w) {
			t.Fatalf("app %s received %v, want %v", app, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("app %s delivery %d = %g, want %g", app, i, got[i], w[i])
			}
		}
	}
	if results["temp"].Stats.DistinctOutputs != 3 {
		t.Errorf("distinct outputs = %d, want 3", results["temp"].Stats.DistinctOutputs)
	}
	if s.Accounting().TotalBytes() == 0 {
		t.Error("no multicast traffic accounted")
	}
}

// TestBandwidthOrdering reproduces the Fig 1.3 trade-off: no filtering
// moves the most bytes, self-interested filtering fewer, group-aware
// filtering the fewest.
func TestBandwidthOrdering(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	mkFilters := func() []filter.Filter {
		f1, _ := filter.NewDC1("A", "fluoro", 0.10, 0.05)
		f2, _ := filter.NewDC1("B", "fluoro", 0.22, 0.10)
		f3, _ := filter.NewDC1("C", "fluoro", 0.16, 0.08)
		return []filter.Filter{f1, f2, f3}
	}
	run := func(transmissions []core.Transmission) int64 {
		net := testNet(t)
		s, err := NewSystem(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RegisterSource("buoy", net.NodeByIndex(0), core.Options{}); err != nil {
			t.Fatal(err)
		}
		for i, f := range mkFilters() {
			if err := s.Subscribe("buoy", Subscription{App: f.ID(), Node: net.NodeByIndex(i + 1), Filter: f}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Deploy(); err != nil {
			t.Fatal(err)
		}
		reg := s.sources["buoy"]
		for _, tr := range transmissions {
			if _, err := reg.tree.Multicast(tr.Destinations, TupleSizeBytes(tr.Tuple), s.acct); err != nil {
				t.Fatal(err)
			}
		}
		return s.Accounting().TotalBytes()
	}

	ga, err := core.Run(mkFilters(), sr, core.Options{Algorithm: core.RG})
	if err != nil {
		t.Fatal(err)
	}
	si, err := core.RunSelfInterested(mkFilters(), sr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No filtering: every tuple to every app.
	var raw []core.Transmission
	for i := 0; i < sr.Len(); i++ {
		raw = append(raw, core.Transmission{
			Tuple: sr.At(i), Destinations: []string{"A", "B", "C"}, ReleasedAt: sr.At(i).TS,
		})
	}
	rawBytes := run(raw)
	siBytes := run(si.Transmissions)
	gaBytes := run(ga.Transmissions)
	if !(gaBytes <= siBytes && siBytes < rawBytes) {
		t.Errorf("wired bandwidth ordering violated: GA %d, SI %d, raw %d", gaBytes, siBytes, rawBytes)
	}
}

// TestWirelessBandwidthOrdering checks the paper's actual medium model: on
// a shared wireless medium each forwarding node transmits a tuple once, so
// the source's send count equals the output union — where group-aware
// filtering strictly wins.
func TestWirelessBandwidthOrdering(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	mkFilters := func() []filter.Filter {
		f1, _ := filter.NewDC1("A", "fluoro", 0.10, 0.05)
		f2, _ := filter.NewDC1("B", "fluoro", 0.22, 0.10)
		f3, _ := filter.NewDC1("C", "fluoro", 0.16, 0.08)
		return []filter.Filter{f1, f2, f3}
	}
	wireless := func(transmissions []core.Transmission) int64 {
		net := testNet(t)
		s, err := NewSystem(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RegisterSource("buoy", net.NodeByIndex(0), core.Options{}); err != nil {
			t.Fatal(err)
		}
		for i, f := range mkFilters() {
			if err := s.Subscribe("buoy", Subscription{App: f.ID(), Node: net.NodeByIndex(i + 1), Filter: f}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Deploy(); err != nil {
			t.Fatal(err)
		}
		reg := s.sources["buoy"]
		for _, tr := range transmissions {
			if _, err := reg.tree.Multicast(tr.Destinations, TupleSizeBytes(tr.Tuple), s.acct); err != nil {
				t.Fatal(err)
			}
		}
		return s.Accounting().WirelessBytes()
	}
	ga, err := core.Run(mkFilters(), sr, core.Options{Algorithm: core.RG})
	if err != nil {
		t.Fatal(err)
	}
	si, err := core.RunSelfInterested(mkFilters(), sr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gaBytes, siBytes := wireless(ga.Transmissions), wireless(si.Transmissions)
	if gaBytes >= siBytes {
		t.Errorf("wireless bytes: GA %d not below SI %d", gaBytes, siBytes)
	}
}

func TestServeLiveStream(t *testing.T) {
	s, _ := buildSystem(t, core.Options{Algorithm: core.PS, Strategy: core.PerCandidateSet})
	in := make(chan *tuple.Tuple)
	go func() {
		sr := trace.PaperExample()
		for i := 0; i < sr.Len(); i++ {
			in <- sr.At(i)
		}
		close(in)
	}()
	var mu sync.Mutex
	count := 0
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.Serve(ctx, map[string]<-chan *tuple.Tuple{"temp": in}, func(d Delivery) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig 2.11: deliveries are 0->{A,B,C}, 50->{B}, 50->{A},
	// 100->{A,B,C} = 8 app deliveries.
	if count != 8 {
		t.Errorf("deliveries = %d, want 8", count)
	}
}

func TestServeCancellation(t *testing.T) {
	s, _ := buildSystem(t, core.Options{})
	in := make(chan *tuple.Tuple) // never fed, never closed
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- s.Serve(ctx, map[string]<-chan *tuple.Tuple{"temp": in}, nil)
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Serve should report cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}

func TestConfigurationErrors(t *testing.T) {
	net := testNet(t)
	s, err := NewSystem(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(nil); err == nil {
		t.Error("nil network should fail")
	}
	if err := s.Subscribe("ghost", Subscription{App: "A", Filter: dcFilter(t, "A", 1, 0.4)}); err == nil {
		t.Error("subscribe to unknown source should fail")
	}
	if err := s.RegisterSource("x", net.NodeByIndex(0), core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSource("x", net.NodeByIndex(0), core.Options{}); err == nil {
		t.Error("duplicate source should fail")
	}
	if err := s.Subscribe("x", Subscription{App: "A", Filter: dcFilter(t, "MISMATCH", 1, 0.4)}); err == nil {
		t.Error("filter/app id mismatch should fail")
	}
	if err := s.Subscribe("x", Subscription{App: "A"}); err == nil {
		t.Error("nil filter should fail")
	}
	if err := s.Deploy(); err == nil {
		t.Error("deploy with subscriber-less source should fail")
	}
	if err := s.Subscribe("x", Subscription{App: "A", Node: net.NodeByIndex(1), Filter: dcFilter(t, "A", 1, 0.4)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("x", Subscription{App: "A", Node: net.NodeByIndex(2), Filter: dcFilter(t, "A", 2, 0.9)}); err == nil {
		t.Error("duplicate app subscription should fail")
	}
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(); err == nil {
		t.Error("double deploy should fail")
	}
	if err := s.RegisterSource("late", net.NodeByIndex(0), core.Options{}); err == nil {
		t.Error("register after deploy should fail")
	}
	if _, err := s.RunSeries(map[string]*tuple.Series{"ghost": trace.PaperExample()}, nil); err == nil {
		t.Error("run with unknown source should fail")
	}
}
