package solar

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/overlay"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// buildMultiSystem deploys nSources sources, each with two DC1
// subscribers, spreading nodes over a larger overlay. The shard knobs are
// set through the per-source engine options to exercise the solar layer's
// config merge.
func buildMultiSystem(t *testing.T, nSources int, opts core.Options) (*System, []string) {
	t.Helper()
	net, err := overlay.New(overlay.Config{Nodes: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(net)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, nSources)
	for i := range names {
		names[i] = fmt.Sprintf("sensor%02d", i)
		if err := s.RegisterSource(names[i], net.NodeByIndex(i%12), opts); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			app := fmt.Sprintf("%s-app%d", names[i], j)
			f, err := filter.NewDC1(app, "temperature", 50/float64(j+1), 10/float64(j+1))
			if err != nil {
				t.Fatal(err)
			}
			err = s.Subscribe(names[i], Subscription{
				App:    app,
				Node:   net.NodeByIndex((i + j + 1) % 12),
				Filter: f,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	return s, names
}

// exampleStream writes the paper example's value pattern, n tuples long,
// to a fresh channel.
func exampleStream(t *testing.T, n int) (<-chan *tuple.Tuple, func()) {
	t.Helper()
	schema := tuple.MustSchema("temperature")
	ex := trace.PaperExample()
	ch := make(chan *tuple.Tuple)
	done := make(chan struct{})
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			v := ex.At(i % ex.Len()).ValueAt(0)
			tp := tuple.MustNew(schema, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v})
			select {
			case ch <- tp:
			case <-done:
				return
			}
		}
	}()
	return ch, func() { close(done) }
}

// TestServeConcurrentProducers streams several sources simultaneously to
// completion: deliveries never cross sources, arrive in release order per
// source, and every source's delivery count matches its engine result.
func TestServeConcurrentProducers(t *testing.T) {
	const nSources = 5
	opts := core.Options{
		Algorithm: core.PS, Strategy: core.PerCandidateSet,
		ShardCount: 3, QueueDepth: 4, FlushBatch: 2,
	}
	s, names := buildMultiSystem(t, nSources, opts)
	inputs := make(map[string]<-chan *tuple.Tuple, nSources)
	var stops []func()
	for _, name := range names {
		ch, stop := exampleStream(t, 60)
		inputs[name] = ch
		stops = append(stops, stop)
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	var mu sync.Mutex
	counts := make(map[string]map[string]int)
	lastSeq := make(map[string]int)
	disorder := 0
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := s.Serve(ctx, inputs, func(d Delivery) {
		mu.Lock()
		defer mu.Unlock()
		if counts[d.Source] == nil {
			counts[d.Source] = make(map[string]int)
		}
		counts[d.Source][d.App]++
		// Per-source release order: sequence numbers from one source
		// never run backwards at the sink (PS releases in step order).
		key := d.Source + "/" + d.App
		if d.Tuple.Seq < lastSeq[key] {
			disorder++
		}
		lastSeq[key] = d.Tuple.Seq
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if disorder != 0 {
		t.Errorf("%d out-of-order deliveries within a source/app stream", disorder)
	}
	results := s.Results()
	for _, name := range names {
		res, ok := results[name]
		if !ok {
			t.Fatalf("no result for %s", name)
		}
		total := 0
		for app, n := range counts[name] {
			if want := res.Stats.PerFilter[app]; n != want {
				t.Errorf("%s/%s: %d deliveries, engine counted %d", name, app, n, want)
			}
			total += n
		}
		if total != res.Stats.Deliveries {
			t.Errorf("%s: %d deliveries, engine counted %d", name, total, res.Stats.Deliveries)
		}
		if res.Stats.Inputs != 60 {
			t.Errorf("%s: consumed %d tuples, want 60", name, res.Stats.Inputs)
		}
	}
	// No cross-source deliveries: apps are namespaced by source.
	for src, apps := range counts {
		for app := range apps {
			if len(app) < len(src) || app[:len(src)] != src {
				t.Errorf("source %s delivered to foreign app %s", src, app)
			}
		}
	}
}

// TestServeConcurrentCancellationMidStream cancels while several sources
// are actively streaming and checks Serve unwinds promptly with the
// cancellation error.
func TestServeConcurrentCancellationMidStream(t *testing.T) {
	const nSources = 4
	s, names := buildMultiSystem(t, nSources, core.Options{
		Algorithm: core.PS, Strategy: core.PerCandidateSet,
		ShardCount: 2, QueueDepth: 2, FlushBatch: 1,
	})
	inputs := make(map[string]<-chan *tuple.Tuple, nSources)
	var stops []func()
	for _, name := range names {
		ch, stop := exampleStream(t, 1<<20) // effectively endless
		inputs[name] = ch
		stops = append(stops, stop)
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	delivered := make(chan string, 64)
	done := make(chan error, 1)
	go func() {
		done <- s.Serve(ctx, inputs, func(d Delivery) {
			select {
			case delivered <- d.Source:
			default:
			}
		})
	}()

	// Wait until at least two different sources have delivered
	// mid-stream, then cancel.
	seen := make(map[string]bool)
	timeout := time.After(20 * time.Second)
	for len(seen) < 2 {
		select {
		case src := <-delivered:
			seen[src] = true
		case <-timeout:
			t.Fatal("no concurrent deliveries before timeout")
		}
	}
	// The engines are single-run: starting another run while Serve is
	// still active must be rejected, not raced.
	if _, err := s.RunSeries(map[string]*tuple.Series{names[0]: trace.PaperExample()}, nil); err == nil {
		t.Error("RunSeries during an active Serve should fail")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve error = %v, want context.Canceled", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not return after mid-stream cancel")
	}
}
