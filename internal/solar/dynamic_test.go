package solar

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"testing"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// deliveryLog records deliveries concurrently and renders them as a
// deterministic fingerprint: sorted by (source, app, seq, latency).
type deliveryLog struct {
	mu   sync.Mutex
	recs []string
}

func (l *deliveryLog) deliver(d Delivery) {
	l.mu.Lock()
	l.recs = append(l.recs, fmt.Sprintf("%s|%s|%d|%d", d.Source, d.App, d.Tuple.Seq, d.Latency))
	l.mu.Unlock()
}

func (l *deliveryLog) fingerprint() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.Strings(l.recs)
	return fmt.Sprintf("%v", l.recs)
}

// resultBytes wire-encodes every transmission of the per-source results,
// in source order, for byte-identical comparison.
func resultBytes(t *testing.T, results map[string]*core.Result) []byte {
	t.Helper()
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	for _, name := range names {
		for _, tr := range results[name].Transmissions {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(tr.ReleasedAt.UnixNano()))
			var err error
			buf, err = wire.AppendTransmission(buf, tr.Tuple, tr.Destinations)
			if err != nil {
				t.Fatalf("encoding: %v", err)
			}
		}
	}
	return buf
}

func namosSeries(t *testing.T, n int) *tuple.Series {
	t.Helper()
	sr, err := trace.NAMOS(trace.Config{N: n, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// fluoroFilter builds a DC1 filter over the NAMOS fluorometer attribute.
func fluoroFilter(t *testing.T, id string, delta, slack float64) filter.Filter {
	t.Helper()
	f, err := filter.NewDC1(id, "fluoro", delta, slack)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

type liveSub struct {
	app          string
	delta, slack float64
}

var liveSubs = []liveSub{{"A", 0.30, 0.15}, {"B", 0.50, 0.25}, {"C", 0.20, 0.10}}

// TestLiveSubscribeEquivalence is the dynamic-membership acceptance test:
// a churn-free run whose subscriptions all arrive through the
// live-subscribe path (DeployDynamic + SubscribeLive) must produce
// wire-byte-identical output to the static Subscribe+Deploy path.
func TestLiveSubscribeEquivalence(t *testing.T) {
	series := map[string]*tuple.Series{"fluoro-src": namosSeries(t, 800)}
	opts := core.Options{Algorithm: core.RG}

	run := func(live bool) (string, []byte) {
		net := testNet(t)
		s, err := NewSystem(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RegisterSource("fluoro-src", net.NodeByIndex(0), opts); err != nil {
			t.Fatal(err)
		}
		mkSub := func(i int) Subscription {
			return Subscription{
				App:    liveSubs[i].app,
				Node:   net.NodeByIndex(i + 1),
				Filter: fluoroFilter(t, liveSubs[i].app, liveSubs[i].delta, liveSubs[i].slack),
			}
		}
		if live {
			if err := s.DeployDynamic(); err != nil {
				t.Fatal(err)
			}
			for i := range liveSubs {
				if err := s.SubscribeLive("fluoro-src", mkSub(i)); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := range liveSubs {
				if err := s.Subscribe("fluoro-src", mkSub(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Deploy(); err != nil {
				t.Fatal(err)
			}
		}
		log := &deliveryLog{}
		results, err := s.RunSeries(series, log.deliver)
		if err != nil {
			t.Fatal(err)
		}
		return log.fingerprint(), resultBytes(t, results)
	}

	staticFP, staticBytes := run(false)
	liveFP, liveBytes := run(true)
	if string(staticBytes) != string(liveBytes) {
		t.Fatalf("live-subscribe released bytes differ from static deploy (%d vs %d bytes)",
			len(liveBytes), len(staticBytes))
	}
	if len(staticBytes) == 0 {
		t.Fatal("degenerate case: static run released nothing")
	}
	if staticFP != liveFP {
		t.Fatal("live-subscribe deliveries differ from static deploy")
	}
}

// TestLiveChurnMidRun joins and removes a subscriber while Serve is
// feeding, and checks the stable subscriber streams on undisturbed while
// the churned subscriber only sees tuples between its join and leave.
func TestLiveChurnMidRun(t *testing.T) {
	net := testNet(t)
	s, err := NewSystem(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSource("fluoro-src", net.NodeByIndex(0), core.Options{Algorithm: core.RG}); err != nil {
		t.Fatal(err)
	}
	err = s.Subscribe("fluoro-src", Subscription{
		App: "A", Node: net.NodeByIndex(1), Filter: fluoroFilter(t, "A", 0.30, 0.15),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}

	sr := namosSeries(t, 600)
	in := make(chan *tuple.Tuple)
	log := &deliveryLog{}
	done := make(chan error, 1)
	go func() {
		done <- s.Serve(context.Background(), map[string]<-chan *tuple.Tuple{"fluoro-src": in}, log.deliver)
	}()

	joinAt, leaveAt := 200, 400
	for i := 0; i < sr.Len(); i++ {
		switch i {
		case joinAt:
			err := s.SubscribeLive("fluoro-src", Subscription{
				App: "B", Node: net.NodeByIndex(2), Filter: fluoroFilter(t, "B", 0.50, 0.25),
			})
			if err != nil {
				t.Fatal(err)
			}
		case leaveAt:
			if err := s.UnsubscribeLive("fluoro-src", "B"); err != nil {
				t.Fatal(err)
			}
		}
		in <- sr.At(i)
	}
	close(in)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	log.mu.Lock()
	defer log.mu.Unlock()
	aCount, firstB, lastB := 0, -1, -1
	for _, rec := range log.recs {
		var app string
		var seq int
		var lat int64
		if _, err := fmt.Sscanf(rec, "fluoro-src|%1s|%d|%d", &app, &seq, &lat); err != nil {
			t.Fatalf("bad record %q: %v", rec, err)
		}
		switch app {
		case "A":
			aCount++
		case "B":
			if firstB < 0 || seq < firstB {
				firstB = seq
			}
			if seq > lastB {
				lastB = seq
			}
		}
	}
	if aCount == 0 {
		t.Fatal("stable subscriber A received nothing")
	}
	if firstB < 0 {
		t.Fatal("joiner B received nothing between join and leave")
	}
	if firstB < joinAt {
		t.Fatalf("joiner B saw tuple %d from before its join at %d", firstB, joinAt)
	}
	if lastB >= leaveAt {
		t.Fatalf("departed B was delivered tuple %d from after its leave at %d", lastB, leaveAt)
	}
}

// TestLiveSubscribeErrors covers the live-path error surface.
func TestLiveSubscribeErrors(t *testing.T) {
	net := testNet(t)
	s, err := NewSystem(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterSource("src", net.NodeByIndex(0), core.Options{}); err != nil {
		t.Fatal(err)
	}
	mkSub := func() Subscription {
		return Subscription{App: "A", Node: net.NodeByIndex(1), Filter: fluoroFilter(t, "A", 0.3, 0.15)}
	}
	if err := s.SubscribeLive("src", mkSub()); err == nil {
		t.Fatal("SubscribeLive before Deploy succeeded")
	}
	if err := s.DeployDynamic(); err != nil {
		t.Fatal(err)
	}
	if err := s.SubscribeLive("nope", mkSub()); err == nil {
		t.Fatal("SubscribeLive on unknown source succeeded")
	}
	if err := s.SubscribeLive("src", mkSub()); err != nil {
		t.Fatal(err)
	}
	if err := s.SubscribeLive("src", mkSub()); err == nil {
		t.Fatal("duplicate SubscribeLive succeeded")
	}
	if err := s.UnsubscribeLive("src", "ghost"); err == nil {
		t.Fatal("UnsubscribeLive of unknown app succeeded")
	}
	if err := s.UnsubscribeLive("src", "A"); err != nil {
		t.Fatal(err)
	}
}
