// Package solar is a small data-dissemination middleware in the mold of
// the Solar system the prototype integrates with (§4.1.1): sources publish
// streams via source proxies on overlay nodes, applications subscribe with
// quality specifications, and the middleware deploys a group-aware
// filtering engine on each source node, multiplexes the filters' decided
// outputs, and disseminates them through Scribe-style application-level
// multicast trees.
//
// Two execution modes are provided: RunSeries replays finite traces to
// completion (deterministic per source, used by experiments), and Serve
// consumes live tuple channels until they close or the context is
// cancelled (used by the streaming examples). Both run on the sharded
// multi-source runtime (internal/shard): sources are hash-partitioned
// onto worker shards, so multi-source workloads scale across cores while
// every source keeps the paper's single-source semantics — its tuples
// are processed in order by one shard and its released sequence is
// identical to a sequential engine run.
//
// Solar models the *network* between source and application (overlay
// links, multicast trees, per-link byte accounting) and is the
// simulation surface the experiments measure bandwidth on. The
// production delivery path is internal/broker (the embedded session
// adapter behind the public gasf.Broker API) and internal/server (its
// TCP twin); see DESIGN.md §10 for how the layers relate.
package solar

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/multicast"
	"gasf/internal/overlay"
	"gasf/internal/shard"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// Delivery is one tuple arriving at one application.
type Delivery struct {
	Source string
	App    string
	Tuple  *tuple.Tuple
	// Latency is the end-to-end filtering-plus-network latency: release
	// delay at the source node plus the multicast path delay.
	Latency time.Duration
}

// Subscription describes one application's interest in a source.
type Subscription struct {
	App    string
	Node   overlay.NodeID
	Filter filter.Filter
}

// sourceReg is the per-source state.
type sourceReg struct {
	name   string
	node   overlay.NodeID
	opts   core.Options
	subs   []Subscription
	engine *core.Engine
	tree   *multicast.Tree
}

// System wires sources, subscriptions, engines and multicast trees
// together. Configure with RegisterSource/Subscribe, then call Deploy once;
// after that use RunSeries or Serve.
type System struct {
	net  *overlay.Network
	acct *multicast.Accounting

	mu       sync.Mutex
	sources  map[string]*sourceReg
	deployed bool
	// running serializes RunSeries/Serve: the engines are unguarded, so
	// only one run may drive them at a time.
	running bool
	// rt is the shard runtime of the active run; SubscribeLive routes
	// membership changes through it so they land on the source's owning
	// worker at a tuple boundary.
	rt *shard.Runtime
}

// NewSystem creates a system over the given overlay.
func NewSystem(net *overlay.Network) (*System, error) {
	if net == nil {
		return nil, fmt.Errorf("solar: nil network")
	}
	return &System{
		net:     net,
		acct:    multicast.NewAccounting(),
		sources: make(map[string]*sourceReg),
	}, nil
}

// Accounting exposes the link-traffic ledger.
func (s *System) Accounting() *multicast.Accounting { return s.acct }

// RegisterSource announces a source hosted on the given node. The engine
// options configure the group-aware filtering service deployed there.
func (s *System) RegisterSource(name string, node overlay.NodeID, opts core.Options) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployed {
		return fmt.Errorf("solar: cannot register source %q after Deploy", name)
	}
	if _, dup := s.sources[name]; dup {
		return fmt.Errorf("solar: source %q already registered", name)
	}
	s.sources[name] = &sourceReg{name: name, node: node, opts: opts}
	return nil
}

// Subscribe attaches an application's filter to a source. The filter's ID
// must equal the application name; it becomes the multicast destination
// label.
func (s *System) Subscribe(source string, sub Subscription) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployed {
		return fmt.Errorf("solar: cannot subscribe after Deploy")
	}
	reg, ok := s.sources[source]
	if !ok {
		return fmt.Errorf("solar: unknown source %q", source)
	}
	if sub.Filter == nil {
		return fmt.Errorf("solar: subscription for %q has no filter", sub.App)
	}
	if sub.Filter.ID() != sub.App {
		return fmt.Errorf("solar: filter id %q must match app name %q", sub.Filter.ID(), sub.App)
	}
	for _, existing := range reg.subs {
		if existing.App == sub.App {
			return fmt.Errorf("solar: app %q already subscribed to %q", sub.App, source)
		}
	}
	reg.subs = append(reg.subs, sub)
	return nil
}

// SubscribeLive attaches an application's filter to a deployed source,
// re-deriving the group (§4.3) without restarting it. While a run is
// active the change is applied by the source's owning shard worker at a
// tuple boundary, so other sources are undisturbed and the joiner sees
// exactly the tuples fed after the call returns; between runs it applies
// immediately. A run with no churn through this path releases output
// byte-identical to the static Subscribe+Deploy path.
func (s *System) SubscribeLive(source string, sub Subscription) error {
	if sub.Filter == nil {
		return fmt.Errorf("solar: subscription for %q has no filter", sub.App)
	}
	if sub.Filter.ID() != sub.App {
		return fmt.Errorf("solar: filter id %q must match app name %q", sub.Filter.ID(), sub.App)
	}
	apply := func(reg *sourceReg) func(*core.Engine) error {
		return func(e *core.Engine) error {
			for _, existing := range reg.subs {
				if existing.App == sub.App {
					return fmt.Errorf("solar: app %q already subscribed to %q", sub.App, reg.name)
				}
			}
			members := make(map[string]overlay.NodeID, len(reg.subs)+1)
			for _, x := range reg.subs {
				members[x.App] = x.Node
			}
			members[sub.App] = sub.Node
			tree, err := multicast.BuildTree(s.net, reg.node, members)
			if err != nil {
				return fmt.Errorf("solar: source %q: %w", reg.name, err)
			}
			if err := e.AddFilter(sub.Filter); err != nil {
				return fmt.Errorf("solar: source %q: %w", reg.name, err)
			}
			reg.subs = append(reg.subs, sub)
			reg.tree = tree
			return nil
		}
	}
	return s.applyLive(source, apply)
}

// UnsubscribeLive detaches an application from a deployed source. The
// departing filter's open candidate set is flushed through the engine's
// cut path; outputs the group still owes the departed application decide
// normally, and their deliveries to it are dropped at dissemination.
func (s *System) UnsubscribeLive(source, app string) error {
	apply := func(reg *sourceReg) func(*core.Engine) error {
		return func(e *core.Engine) error {
			idx := -1
			for i, x := range reg.subs {
				if x.App == app {
					idx = i
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("solar: app %q is not subscribed to %q", app, reg.name)
			}
			// The new tree is built first so a routing failure leaves the
			// subscription intact.
			var tree *multicast.Tree
			if len(reg.subs) > 1 {
				members := make(map[string]overlay.NodeID, len(reg.subs)-1)
				for i, x := range reg.subs {
					if i != idx {
						members[x.App] = x.Node
					}
				}
				var err error
				tree, err = multicast.BuildTree(s.net, reg.node, members)
				if err != nil {
					return fmt.Errorf("solar: source %q: %w", reg.name, err)
				}
			}
			if err := e.RemoveFilter(app); err != nil {
				return fmt.Errorf("solar: source %q: %w", reg.name, err)
			}
			reg.subs = append(reg.subs[:idx], reg.subs[idx+1:]...)
			reg.tree = tree
			return nil
		}
	}
	return s.applyLive(source, apply)
}

// applyLive runs a membership mutation against a deployed source: through
// the active runtime's control path when a run is live, directly when the
// system is quiescent (the lock excludes a run from starting mid-change).
func (s *System) applyLive(source string, apply func(*sourceReg) func(*core.Engine) error) error {
	s.mu.Lock()
	if !s.deployed {
		s.mu.Unlock()
		return fmt.Errorf("solar: SubscribeLive before Deploy")
	}
	reg, ok := s.sources[source]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("solar: unknown source %q", source)
	}
	fn := apply(reg)
	if rt := s.rt; rt != nil {
		s.mu.Unlock()
		return rt.Control(source, fn)
	}
	defer s.mu.Unlock()
	return fn(reg.engine)
}

// Deploy instantiates a group-aware engine on every source node and builds
// the multicast tree from the source node to the subscriber nodes.
func (s *System) Deploy() error { return s.deploy(false) }

// DeployDynamic is Deploy for systems whose group membership changes at
// run time: sources with no subscribers yet are allowed (they get an
// engine with an empty group that releases nothing until the first
// SubscribeLive re-derives the group).
func (s *System) DeployDynamic() error { return s.deploy(true) }

func (s *System) deploy(allowEmpty bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployed {
		return fmt.Errorf("solar: already deployed")
	}
	names := make([]string, 0, len(s.sources))
	for name := range s.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		reg := s.sources[name]
		if len(reg.subs) == 0 {
			if !allowEmpty {
				return fmt.Errorf("solar: source %q has no subscribers", name)
			}
			engine, err := core.NewDynamicEngine(reg.opts)
			if err != nil {
				return fmt.Errorf("solar: source %q: %w", name, err)
			}
			reg.engine, reg.tree = engine, nil
			continue
		}
		filters := make([]filter.Filter, len(reg.subs))
		members := make(map[string]overlay.NodeID, len(reg.subs))
		for i, sub := range reg.subs {
			filters[i] = sub.Filter
			members[sub.App] = sub.Node
		}
		engine, err := core.NewEngine(filters, reg.opts)
		if err != nil {
			return fmt.Errorf("solar: source %q: %w", name, err)
		}
		tree, err := multicast.BuildTree(s.net, reg.node, members)
		if err != nil {
			return fmt.Errorf("solar: source %q: %w", name, err)
		}
		reg.engine, reg.tree = engine, tree
	}
	s.deployed = true
	return nil
}

// TupleSizeBytes returns the wire size of an unlabeled tuple, using the
// dissemination layer's binary encoding.
func TupleSizeBytes(t *tuple.Tuple) int { return wire.TupleSize(t) }

// disseminate pushes one released transmission through the source's
// multicast tree, accounting the real encoded size of each labeled
// message. It is safe to call concurrently for different sources: trees
// are read-only after Deploy and the accounting ledger is mutex-guarded.
func (s *System) disseminate(reg *sourceReg, tr core.Transmission, deliver func(Delivery)) error {
	// Under dynamic membership a transmission may still carry the label
	// of a subscriber that has since left (its final owed outputs decide
	// after the leave); deliveries to departed members are dropped here.
	// reg.tree is only swapped by the worker that calls disseminate, so
	// the read is race-free.
	dests := tr.Destinations
	if reg.tree == nil {
		return nil
	}
	for _, d := range dests {
		if !reg.tree.HasMember(d) {
			dests = prunedDests(reg.tree, dests)
			break
		}
	}
	if len(dests) == 0 {
		return nil
	}
	ds, err := reg.tree.MulticastSized(dests, func(branch []string) int {
		// Forwarding nodes prune labels per branch.
		return wire.TransmissionSize(tr.Tuple, branch)
	}, s.acct)
	if err != nil {
		return fmt.Errorf("solar: source %q: %w", reg.name, err)
	}
	// Release delay at the source node: how long the tuple waited
	// for its group decision.
	wait := tr.ReleasedAt.Sub(tr.Tuple.TS)
	for _, d := range ds {
		deliver(Delivery{
			Source:  reg.name,
			App:     d.App,
			Tuple:   tr.Tuple,
			Latency: wait + d.Delay,
		})
	}
	return nil
}

// prunedDests returns the subset of dests that are members of the tree.
func prunedDests(tree *multicast.Tree, dests []string) []string {
	out := make([]string, 0, len(dests))
	for _, d := range dests {
		if tree.HasMember(d) {
			out = append(out, d)
		}
	}
	return out
}

// runtimeFor builds a shard runtime over the named deployed sources and
// marks the system running (released by endRun). The runtime
// configuration merges the shard knobs (ShardCount, QueueDepth,
// FlushBatch) of the sources' engine options, taking the maximum of each.
func (s *System) runtimeFor(names []string) (map[string]*sourceReg, *shard.Runtime, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.deployed {
		return nil, nil, fmt.Errorf("solar: run before Deploy")
	}
	if s.running {
		return nil, nil, fmt.Errorf("solar: a run is already in progress")
	}
	regs := make(map[string]*sourceReg, len(names))
	var cfg shard.Config
	for _, name := range names {
		reg, ok := s.sources[name]
		if !ok {
			return nil, nil, fmt.Errorf("solar: unknown source %q", name)
		}
		regs[name] = reg
		cfg = shard.Merge(cfg, shard.FromOptions(reg.opts))
	}
	rt := shard.New(cfg)
	for _, name := range names {
		if err := rt.AddSource(name, regs[name].engine); err != nil {
			return nil, nil, fmt.Errorf("solar: %w", err)
		}
	}
	s.running = true
	s.rt = rt
	return regs, rt, nil
}

// endRun releases the running latch taken by runtimeFor.
func (s *System) endRun() {
	s.mu.Lock()
	s.running = false
	s.rt = nil
	s.mu.Unlock()
}

// errCollector accumulates errors from feeders and the delivery sink.
type errCollector struct {
	mu   sync.Mutex
	errs []error
}

func (c *errCollector) record(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	c.errs = append(c.errs, err)
	c.mu.Unlock()
}

func (c *errCollector) join() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return errors.Join(c.errs...)
}

// sinkFor adapts the dissemination path to the shard runtime's batched
// delivery sink.
func (s *System) sinkFor(regs map[string]*sourceReg, deliver func(Delivery), ec *errCollector) shard.Sink {
	return func(batch []shard.Out) {
		for _, o := range batch {
			ec.record(s.disseminate(regs[o.Source], o.Tr, deliver))
		}
	}
}

// isCtxErr reports whether err stems from context cancellation.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunSeries replays one finite series per source through the deployed
// engines and multicast trees on the sharded runtime, invoking deliver
// for every application delivery, and returns the per-source engine
// results once every source has drained.
//
// Each source is fed in order by its own producer and processed by its
// owning shard, so per-source deliveries arrive in release order;
// different sources run concurrently, so deliver must be safe for
// concurrent use. At most one RunSeries/Serve may run at a time
// (concurrent runs fail with an error).
func (s *System) RunSeries(series map[string]*tuple.Series, deliver func(Delivery)) (map[string]*core.Result, error) {
	names := sortedNames(series)
	regs, rt, err := s.runtimeFor(names)
	if err != nil {
		return nil, err
	}
	defer s.endRun()
	if deliver == nil {
		deliver = func(Delivery) {}
	}
	ec := &errCollector{}
	if err := rt.Start(context.Background(), s.sinkFor(regs, deliver, ec)); err != nil {
		return nil, err
	}
	ec.record(rt.FeedAll(series))
	if err := ec.join(); err != nil {
		return nil, err
	}
	return rt.Results(), nil
}

// Serve consumes live tuples from the given channels until they close or
// ctx is cancelled, feeding them through the sharded runtime. deliver is
// invoked from shard workers — in release order per source, concurrently
// across sources — and must be safe for concurrent use. Serve returns
// after all sources drain; it reports a non-nil error when the context
// was cancelled or any engine failed.
func (s *System) Serve(ctx context.Context, inputs map[string]<-chan *tuple.Tuple, deliver func(Delivery)) error {
	names := sortedNames(inputs)
	regs, rt, err := s.runtimeFor(names)
	if err != nil {
		return err
	}
	defer s.endRun()
	if deliver == nil {
		deliver = func(Delivery) {}
	}
	ec := &errCollector{}
	if err := rt.Start(ctx, s.sinkFor(regs, deliver, ec)); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for _, name := range names {
		in := inputs[name]
		wg.Add(1)
		go func(name string, in <-chan *tuple.Tuple) {
			defer wg.Done()
			// Context errors are not recorded here: every feeder would
			// report the same cancellation, so the drain below carries
			// it once instead.
			for {
				select {
				case <-ctx.Done():
					return
				case t, ok := <-in:
					if !ok {
						if err := rt.FinishSource(name); err != nil && !isCtxErr(err) {
							ec.record(err)
						}
						return
					}
					if err := rt.Feed(name, t); err != nil {
						if !isCtxErr(err) {
							ec.record(err)
						}
						return
					}
				}
			}
		}(name, in)
	}
	wg.Wait()
	ec.record(rt.Drain())
	return ec.join()
}

// Results returns the per-source engine results accumulated so far.
func (s *System) Results() map[string]*core.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*core.Result, len(s.sources))
	for name, reg := range s.sources {
		if reg.engine != nil {
			out[name] = reg.engine.Result()
		}
	}
	return out
}
