// Package solar is a small data-dissemination middleware in the mold of
// the Solar system the prototype integrates with (§4.1.1): sources publish
// streams via source proxies on overlay nodes, applications subscribe with
// quality specifications, and the middleware deploys a group-aware
// filtering engine on each source node, multiplexes the filters' decided
// outputs, and disseminates them through Scribe-style application-level
// multicast trees.
//
// Two execution modes are provided: RunSeries replays finite traces
// synchronously (deterministic, used by experiments), and Serve runs one
// goroutine per source over live tuple channels (used by the streaming
// examples).
package solar

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/multicast"
	"gasf/internal/overlay"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// Delivery is one tuple arriving at one application.
type Delivery struct {
	Source string
	App    string
	Tuple  *tuple.Tuple
	// Latency is the end-to-end filtering-plus-network latency: release
	// delay at the source node plus the multicast path delay.
	Latency time.Duration
}

// Subscription describes one application's interest in a source.
type Subscription struct {
	App    string
	Node   overlay.NodeID
	Filter filter.Filter
}

// sourceReg is the per-source state.
type sourceReg struct {
	name   string
	node   overlay.NodeID
	opts   core.Options
	subs   []Subscription
	engine *core.Engine
	tree   *multicast.Tree
}

// System wires sources, subscriptions, engines and multicast trees
// together. Configure with RegisterSource/Subscribe, then call Deploy once;
// after that use RunSeries or Serve.
type System struct {
	net  *overlay.Network
	acct *multicast.Accounting

	mu       sync.Mutex
	sources  map[string]*sourceReg
	deployed bool
}

// NewSystem creates a system over the given overlay.
func NewSystem(net *overlay.Network) (*System, error) {
	if net == nil {
		return nil, fmt.Errorf("solar: nil network")
	}
	return &System{
		net:     net,
		acct:    multicast.NewAccounting(),
		sources: make(map[string]*sourceReg),
	}, nil
}

// Accounting exposes the link-traffic ledger.
func (s *System) Accounting() *multicast.Accounting { return s.acct }

// RegisterSource announces a source hosted on the given node. The engine
// options configure the group-aware filtering service deployed there.
func (s *System) RegisterSource(name string, node overlay.NodeID, opts core.Options) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployed {
		return fmt.Errorf("solar: cannot register source %q after Deploy", name)
	}
	if _, dup := s.sources[name]; dup {
		return fmt.Errorf("solar: source %q already registered", name)
	}
	s.sources[name] = &sourceReg{name: name, node: node, opts: opts}
	return nil
}

// Subscribe attaches an application's filter to a source. The filter's ID
// must equal the application name; it becomes the multicast destination
// label.
func (s *System) Subscribe(source string, sub Subscription) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployed {
		return fmt.Errorf("solar: cannot subscribe after Deploy")
	}
	reg, ok := s.sources[source]
	if !ok {
		return fmt.Errorf("solar: unknown source %q", source)
	}
	if sub.Filter == nil {
		return fmt.Errorf("solar: subscription for %q has no filter", sub.App)
	}
	if sub.Filter.ID() != sub.App {
		return fmt.Errorf("solar: filter id %q must match app name %q", sub.Filter.ID(), sub.App)
	}
	for _, existing := range reg.subs {
		if existing.App == sub.App {
			return fmt.Errorf("solar: app %q already subscribed to %q", sub.App, source)
		}
	}
	reg.subs = append(reg.subs, sub)
	return nil
}

// Deploy instantiates a group-aware engine on every source node and builds
// the multicast tree from the source node to the subscriber nodes.
func (s *System) Deploy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployed {
		return fmt.Errorf("solar: already deployed")
	}
	names := make([]string, 0, len(s.sources))
	for name := range s.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		reg := s.sources[name]
		if len(reg.subs) == 0 {
			return fmt.Errorf("solar: source %q has no subscribers", name)
		}
		filters := make([]filter.Filter, len(reg.subs))
		members := make(map[string]overlay.NodeID, len(reg.subs))
		for i, sub := range reg.subs {
			filters[i] = sub.Filter
			members[sub.App] = sub.Node
		}
		engine, err := core.NewEngine(filters, reg.opts)
		if err != nil {
			return fmt.Errorf("solar: source %q: %w", name, err)
		}
		tree, err := multicast.BuildTree(s.net, reg.node, members)
		if err != nil {
			return fmt.Errorf("solar: source %q: %w", name, err)
		}
		reg.engine, reg.tree = engine, tree
	}
	s.deployed = true
	return nil
}

// TupleSizeBytes returns the wire size of an unlabeled tuple, using the
// dissemination layer's binary encoding.
func TupleSizeBytes(t *tuple.Tuple) int { return wire.TupleSize(t) }

// disseminate pushes the engine's new transmissions through the source's
// multicast tree, accounting the real encoded size of each labeled
// message.
func (s *System) disseminate(reg *sourceReg, from int, deliver func(Delivery)) (int, error) {
	trs := reg.engine.Result().Transmissions
	for ; from < len(trs); from++ {
		tr := trs[from]
		ds, err := reg.tree.MulticastSized(tr.Destinations, func(branch []string) int {
			// Forwarding nodes prune labels per branch.
			return wire.TransmissionSize(tr.Tuple, branch)
		}, s.acct)
		if err != nil {
			return from, fmt.Errorf("solar: source %q: %w", reg.name, err)
		}
		// Release delay at the source node: how long the tuple waited
		// for its group decision.
		wait := tr.ReleasedAt.Sub(tr.Tuple.TS)
		for _, d := range ds {
			deliver(Delivery{
				Source:  reg.name,
				App:     d.App,
				Tuple:   tr.Tuple,
				Latency: wait + d.Delay,
			})
		}
	}
	return from, nil
}

// RunSeries synchronously replays one finite series per source through the
// deployed engines and multicast trees, invoking deliver for every
// application delivery. It returns the per-source engine results.
func (s *System) RunSeries(series map[string]*tuple.Series, deliver func(Delivery)) (map[string]*core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.deployed {
		return nil, fmt.Errorf("solar: RunSeries before Deploy")
	}
	if deliver == nil {
		deliver = func(Delivery) {}
	}
	results := make(map[string]*core.Result, len(series))
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		reg, ok := s.sources[name]
		if !ok {
			return nil, fmt.Errorf("solar: unknown source %q", name)
		}
		sr := series[name]
		sent := 0
		for i := 0; i < sr.Len(); i++ {
			if err := reg.engine.Step(sr.At(i)); err != nil {
				return nil, fmt.Errorf("solar: source %q: %w", name, err)
			}
			var err error
			sent, err = s.disseminate(reg, sent, deliver)
			if err != nil {
				return nil, err
			}
		}
		if err := reg.engine.Finish(); err != nil {
			return nil, fmt.Errorf("solar: source %q: %w", name, err)
		}
		if _, err := s.disseminate(reg, sent, deliver); err != nil {
			return nil, err
		}
		results[name] = reg.engine.Result()
	}
	return results, nil
}

// Serve runs one goroutine per source, consuming live tuples from the
// given channels until they close or ctx is cancelled. deliver is invoked
// from the source goroutines and must be safe for concurrent use (or the
// caller serializes by source). Serve returns after all sources drain.
func (s *System) Serve(ctx context.Context, inputs map[string]<-chan *tuple.Tuple, deliver func(Delivery)) error {
	s.mu.Lock()
	if !s.deployed {
		s.mu.Unlock()
		return fmt.Errorf("solar: Serve before Deploy")
	}
	regs := make([]*sourceReg, 0, len(inputs))
	for name := range inputs {
		reg, ok := s.sources[name]
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("solar: unknown source %q", name)
		}
		regs = append(regs, reg)
	}
	s.mu.Unlock()
	if deliver == nil {
		deliver = func(Delivery) {}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(regs))
	for _, reg := range regs {
		in := inputs[reg.name]
		wg.Add(1)
		go func(reg *sourceReg, in <-chan *tuple.Tuple) {
			defer wg.Done()
			sent := 0
			for {
				select {
				case <-ctx.Done():
					errs <- ctx.Err()
					return
				case t, ok := <-in:
					if !ok {
						if err := reg.engine.Finish(); err != nil {
							errs <- err
							return
						}
						if _, err := s.disseminate(reg, sent, deliver); err != nil {
							errs <- err
						}
						return
					}
					if err := reg.engine.Step(t); err != nil {
						errs <- err
						return
					}
					var err error
					sent, err = s.disseminate(reg, sent, deliver)
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}(reg, in)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Results returns the per-source engine results accumulated so far.
func (s *System) Results() map[string]*core.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*core.Result, len(s.sources))
	for name, reg := range s.sources {
		if reg.engine != nil {
			out[name] = reg.engine.Result()
		}
	}
	return out
}
