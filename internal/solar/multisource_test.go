package solar

import (
	"sync"
	"testing"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// TestMultiSourceSystem: two independent sources with separate subscriber
// groups coexist on one overlay; deliveries never cross sources.
func TestMultiSourceSystem(t *testing.T) {
	net := testNet(t)
	s, err := NewSystem(net)
	if err != nil {
		t.Fatal(err)
	}

	// Source 1: the temperature example with two apps.
	if err := s.RegisterSource("temp", net.NodeByIndex(0), core.Options{Algorithm: core.RG}); err != nil {
		t.Fatal(err)
	}
	for i, spec := range []struct {
		app          string
		delta, slack float64
	}{{"tA", 50, 10}, {"tB", 40, 5}} {
		f, err := filter.NewDC1(spec.app, "temperature", spec.delta, spec.slack)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Subscribe("temp", Subscription{App: spec.app, Node: net.NodeByIndex(i + 1), Filter: f}); err != nil {
			t.Fatal(err)
		}
	}

	// Source 2: a cow collar with one app under PS.
	if err := s.RegisterSource("cow", net.NodeByIndex(3), core.Options{Algorithm: core.PS}); err != nil {
		t.Fatal(err)
	}
	cf, err := filter.NewDC1("herd", "E-orient", 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("cow", Subscription{App: "herd", Node: net.NodeByIndex(4), Filter: cf}); err != nil {
		t.Fatal(err)
	}

	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}

	cow, err := trace.Cow(trace.Config{N: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	bySource := make(map[string]map[string]int)
	results, err := s.RunSeries(map[string]*tuple.Series{
		"temp": trace.PaperExample(),
		"cow":  cow,
	}, func(d Delivery) {
		mu.Lock()
		defer mu.Unlock()
		if bySource[d.Source] == nil {
			bySource[d.Source] = make(map[string]int)
		}
		bySource[d.Source][d.App]++
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results for %d sources, want 2", len(results))
	}
	if bySource["temp"]["herd"] != 0 || bySource["cow"]["tA"] != 0 {
		t.Errorf("cross-source delivery: %v", bySource)
	}
	if bySource["temp"]["tA"] == 0 || bySource["temp"]["tB"] == 0 {
		t.Errorf("temp apps missing deliveries: %v", bySource)
	}
	if bySource["cow"]["herd"] == 0 {
		t.Errorf("cow app missing deliveries: %v", bySource)
	}
}
