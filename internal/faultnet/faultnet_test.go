package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns a connected loopback TCP pair.
func tcpPair(t *testing.T) (client, srv net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); srv.Close() })
	return client, srv
}

// TestPartialWritesPreserveBytes tears writes into fragments and checks
// the peer still reads the exact byte stream.
func TestPartialWritesPreserveBytes(t *testing.T) {
	client, srv := tcpPair(t)
	c := Wrap(client, Faults{Seed: 7, PartialWrites: true})

	msg := bytes.Repeat([]byte("group-aware stream filtering "), 64)
	got := make([]byte, len(msg))
	readErr := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(srv, got)
		readErr <- err
	}()
	// Several writes, each torn independently.
	for off := 0; off < len(msg); off += 512 {
		end := min(off+512, len(msg))
		if n, err := c.Write(msg[off:end]); err != nil || n != end-off {
			t.Fatalf("Write = %d, %v; want %d, nil", n, err, end-off)
		}
	}
	if err := <-readErr; err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("byte stream corrupted by partial writes")
	}
}

// TestResetAfterTripsMidStream checks the connection dies once the byte
// budget is exhausted and stays dead.
func TestResetAfterTripsMidStream(t *testing.T) {
	client, srv := tcpPair(t)
	go io.Copy(io.Discard, srv)
	c := Wrap(client, Faults{Seed: 3, ResetAfter: 4096})

	buf := make([]byte, 256)
	var total int
	var lastErr error
	for i := 0; i < 1000; i++ {
		n, err := c.Write(buf)
		total += n
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		t.Fatalf("wrote %d bytes without a reset (budget 4096)", total)
	}
	if !errors.Is(lastErr, ErrInjectedReset) {
		t.Fatalf("reset error = %v, want ErrInjectedReset", lastErr)
	}
	if total > 4096+4096/4+256 {
		t.Fatalf("reset tripped after %d bytes, far past the jittered budget", total)
	}
	if _, err := c.Write(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write error = %v, want ErrInjectedReset", err)
	}
	if _, err := c.Read(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset read error = %v, want ErrInjectedReset", err)
	}
}

// TestLatencyEveryDelays checks periodic spikes actually delay I/O.
func TestLatencyEveryDelays(t *testing.T) {
	client, srv := tcpPair(t)
	go io.Copy(io.Discard, srv)
	c := Wrap(client, Faults{Seed: 1, LatencyEvery: 2, Spike: 5 * time.Millisecond})

	start := time.Now()
	buf := make([]byte, 16)
	for i := 0; i < 10; i++ {
		if _, err := c.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	// 10 ops at every-2nd = 5 spikes of 5ms.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("10 writes took %v; want >= 20ms of injected latency", elapsed)
	}
}

// echoServer accepts and echoes until closed; returns its address.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(conn, conn); conn.Close() }()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestProxyRelayAndRetarget drives an echo through the proxy, cuts every
// relay, swaps the backend, and checks a fresh dial against the same
// front address reaches the new backend.
func TestProxyRelayAndRetarget(t *testing.T) {
	addr1, stop1 := echoServer(t)
	defer stop1()
	p, err := NewProxy(addr1, Faults{Seed: 11, PartialWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	roundtrip := func() error {
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			return err
		}
		defer conn.Close()
		msg := []byte("hello through the proxy")
		if _, err := conn.Write(msg); err != nil {
			return err
		}
		got := make([]byte, len(msg))
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("echo corrupted through proxy")
		}
		return nil
	}
	if err := roundtrip(); err != nil {
		t.Fatalf("relay through proxy: %v", err)
	}

	// A held connection dies when the partition hits.
	held, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	if _, err := held.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	held.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(held, one); err != nil {
		t.Fatalf("echo before cut: %v", err)
	}
	p.CutAll()
	held.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := held.Read(one); err == nil {
		t.Fatal("held connection survived CutAll")
	}

	// Retarget: the old backend dies, a new one takes over behind the
	// same front address.
	stop1()
	addr2, stop2 := echoServer(t)
	defer stop2()
	p.SetBackend(addr2)
	if err := roundtrip(); err != nil {
		t.Fatalf("relay after retarget: %v", err)
	}
}

// TestSeedDeterminism checks two connections with the same seed make the
// same fragmentation decisions.
func TestSeedDeterminism(t *testing.T) {
	frags := func() []int {
		client, srv := tcpPair(t)
		defer client.Close()
		defer srv.Close()
		var sizes []int
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]byte, 8192)
			for {
				n, err := srv.Read(buf)
				if n > 0 {
					sizes = append(sizes, n)
				}
				if err != nil {
					return
				}
			}
		}()
		c := Wrap(client, Faults{Seed: 42, PartialWrites: true})
		msg := make([]byte, 4096)
		if _, err := c.Write(msg); err != nil {
			t.Fatal(err)
		}
		client.Close()
		<-done
		return sizes
	}
	a, b := frags(), frags()
	// TCP may coalesce reads, so compare the cumulative split points up
	// to the shorter sequence — identical seeds must not diverge.
	sum := func(s []int) int {
		n := 0
		for _, v := range s {
			n += v
		}
		return n
	}
	if sum(a) != sum(b) {
		t.Fatalf("total bytes differ: %d vs %d", sum(a), sum(b))
	}
}
