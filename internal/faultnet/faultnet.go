// Package faultnet injects deterministic network faults for testing:
// net.Conn and net.Listener wrappers that tear writes into fragments,
// add latency spikes and stalls, and reset connections mid-frame, all
// driven by a seeded per-connection RNG so a failing run replays
// exactly. A TCP Proxy gives a stable front address whose backend can be
// swapped (server kill/restart tests) and whose live connections can be
// cut in one call (partition tests).
//
// Fault classes and what they exercise:
//
//   - Partial writes: one Write becomes several smaller ones with yields
//     between them — the peer's reader sees torn frames and must
//     reassemble across arbitrary boundaries.
//   - Latency spikes and stalls: periodic injected delays — timeout and
//     heartbeat paths, and slow-consumer policies, under jitter.
//   - Resets: the connection is closed after a seeded byte budget,
//     usually mid-frame — recovery, reconnect and resume paths.
//
// Reads are delayed but never corrupted or dropped: byte loss on a
// stream is indistinguishable from a protocol bug, so loss is modeled at
// the connection level (resets, CutAll), as on real TCP.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults selects the fault classes to inject. The zero value injects
// nothing (wrappers become transparent).
type Faults struct {
	// Seed drives every random decision; the i'th connection of a
	// wrapper uses Seed+i, so one run's faults replay exactly.
	Seed int64
	// PartialWrites tears every Write larger than a few bytes into
	// several random fragments with scheduler yields between them.
	PartialWrites bool
	// LatencyEvery injects a Spike delay on every Nth I/O operation per
	// connection (0 disables).
	LatencyEvery int
	// Spike is the injected latency; 0 with LatencyEvery set means 2ms.
	Spike time.Duration
	// StallEvery injects a Stall delay on every Nth I/O operation per
	// connection (0 disables) — the long-pause counterpart of
	// LatencyEvery.
	StallEvery int
	// Stall is the injected pause; 0 with StallEvery set means 50ms.
	Stall time.Duration
	// ResetAfter closes the connection once about this many bytes have
	// crossed it in either direction (jittered ±25% per connection, so a
	// fleet of connections resets at different points — usually
	// mid-frame). 0 disables.
	ResetAfter int64
}

func (f Faults) withDefaults() Faults {
	if f.LatencyEvery > 0 && f.Spike == 0 {
		f.Spike = 2 * time.Millisecond
	}
	if f.StallEvery > 0 && f.Stall == 0 {
		f.Stall = 50 * time.Millisecond
	}
	return f
}

// ErrInjectedReset reports a connection torn down by the ResetAfter
// fault.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Conn wraps a net.Conn with fault injection. Create with Wrap.
type Conn struct {
	net.Conn
	f Faults

	mu      sync.Mutex
	rng     *rand.Rand
	resetAt int64 // byte budget; <=0 means no reset fault

	ops   atomic.Int64
	bytes atomic.Int64
	reset atomic.Bool
}

// Wrap returns conn with the faults injected, seeded by f.Seed alone —
// for a wrapper-managed sequence of connections use WrapListener or
// Proxy, which derive one seed per connection.
func Wrap(conn net.Conn, f Faults) *Conn { return wrap(conn, f, f.Seed) }

func wrap(conn net.Conn, f Faults, seed int64) *Conn {
	f = f.withDefaults()
	c := &Conn{Conn: conn, f: f, rng: rand.New(rand.NewSource(seed))}
	if f.ResetAfter > 0 {
		// ±25% jitter: connections sharing a config reset at different
		// byte positions, usually mid-frame.
		c.resetAt = f.ResetAfter + int64(float64(f.ResetAfter)*(c.rng.Float64()-0.5)/2)
		if c.resetAt < 1 {
			c.resetAt = 1
		}
	}
	return c
}

// delayFor applies the periodic latency and stall faults for one I/O
// operation.
func (c *Conn) delayFor() {
	op := c.ops.Add(1)
	if c.f.LatencyEvery > 0 && op%int64(c.f.LatencyEvery) == 0 {
		time.Sleep(c.f.Spike)
	}
	if c.f.StallEvery > 0 && op%int64(c.f.StallEvery) == 0 {
		time.Sleep(c.f.Stall)
	}
}

// account charges n transferred bytes against the reset budget and trips
// the reset once it is exhausted.
func (c *Conn) account(n int) bool {
	if c.resetAt <= 0 {
		return false
	}
	if c.bytes.Add(int64(n)) >= c.resetAt && !c.reset.Swap(true) {
		c.Conn.Close()
	}
	return c.reset.Load()
}

func (c *Conn) Read(b []byte) (int, error) {
	if c.reset.Load() {
		return 0, ErrInjectedReset
	}
	c.delayFor()
	n, err := c.Conn.Read(b)
	if c.account(n) && err != nil {
		err = ErrInjectedReset
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if c.reset.Load() {
		return 0, ErrInjectedReset
	}
	c.delayFor()
	if !c.f.PartialWrites || len(b) <= 4 {
		n, err := c.Conn.Write(b)
		if c.account(n) && err != nil {
			err = ErrInjectedReset
		}
		return n, err
	}
	// Tear the write into random fragments with yields between them, so
	// the peer's reader observes torn frames. The io.Writer contract is
	// kept: all bytes are written unless an error stops us.
	written := 0
	for written < len(b) {
		c.mu.Lock()
		frag := 1 + c.rng.Intn(len(b)-written)
		c.mu.Unlock()
		n, err := c.Conn.Write(b[written : written+frag])
		written += n
		tripped := c.account(n)
		if err != nil {
			if tripped {
				err = ErrInjectedReset
			}
			return written, err
		}
		if tripped {
			return written, ErrInjectedReset
		}
		if written < len(b) {
			time.Sleep(time.Microsecond) // yield so the peer can read a torn prefix
		}
	}
	return written, nil
}

// Listener wraps every accepted connection with faults, deriving one
// seed per connection. Create with WrapListener.
type Listener struct {
	net.Listener
	f   Faults
	idx atomic.Int64
}

// WrapListener returns ln with every accepted connection wrapped; the
// i'th accepted connection is seeded f.Seed+i.
func WrapListener(ln net.Listener, f Faults) *Listener {
	return &Listener{Listener: ln, f: f}
}

func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return wrap(conn, l.f, l.f.Seed+l.idx.Add(1)-1), nil
}

// Proxy is a faulty TCP relay with a stable front address: clients dial
// Addr, the proxy dials the current backend per connection and relays
// bytes through fault-injected conns. The backend can be swapped (a
// restarted server on a new port keeps the same front address for
// reconnecting clients), and CutAll resets every live relay at once.
type Proxy struct {
	f  Faults
	ln net.Listener
	wg sync.WaitGroup

	mu      sync.Mutex
	backend string
	conns   map[net.Conn]struct{}
	closed  bool
	idx     int64
}

// NewProxy starts a proxy in front of backend (a host:port) on an
// ephemeral localhost address.
func NewProxy(backend string, f Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: proxy listen: %w", err)
	}
	p := &Proxy{f: f, ln: ln, backend: backend, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's stable front address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetBackend points new connections at a different backend address;
// existing relays keep their old backend until they die (CutAll them to
// force the move).
func (p *Proxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// CutAll closes every live relayed connection — both legs — simulating
// a network partition or a crashed peer. New connections keep being
// accepted (against the current backend), so reconnecting clients heal.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	clear(p.conns)
	p.mu.Unlock()
}

// Close stops accepting, cuts every relay, and waits for the relay
// goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		front, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			front.Close()
			return
		}
		backend := p.backend
		seed := p.f.Seed + p.idx
		p.idx++
		p.mu.Unlock()

		back, err := net.Dial("tcp", backend)
		if err != nil {
			front.Close()
			continue
		}
		// Faults are injected on the front leg only; doubling them on the
		// back leg would halve every byte budget.
		faulty := wrap(front, p.f, seed)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			front.Close()
			back.Close()
			return
		}
		p.conns[front] = struct{}{}
		p.conns[back] = struct{}{}
		p.mu.Unlock()

		p.wg.Add(2)
		go p.relay(faulty, back, front, back)
		go p.relay(back, faulty, front, back)
	}
}

// relay copies src to dst until either side dies, then closes both legs
// and unregisters them.
func (p *Proxy) relay(dst io.Writer, src io.Reader, front, back net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	front.Close()
	back.Close()
	p.mu.Lock()
	delete(p.conns, front)
	delete(p.conns, back)
	p.mu.Unlock()
}
