package adapt

import (
	"testing"
	"time"
)

// tick advances a synthetic clock; the governor never reads a real one.
func tick(start time.Time, ms int) time.Time {
	return start.Add(time.Duration(ms) * time.Millisecond)
}

func TestGovernorDegradeLadder(t *testing.T) {
	g, err := NewGovernor(GovernorConfig{Step: 2, MaxScale: 8, Cooldown: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1000, 0)
	if s := g.Scale(); s != 1 {
		t.Fatalf("initial scale = %g, want 1", s)
	}

	// Full queue: first sample degrades immediately.
	s, changed := g.Observe(tick(start, 0), 100, 100, 0)
	if !changed || s != 2 {
		t.Fatalf("first pressured sample: scale=%g changed=%v, want 2, true", s, changed)
	}
	// Still pressured inside the cooldown: holds.
	if s, changed = g.Observe(tick(start, 50), 100, 100, 0); changed || s != 2 {
		t.Fatalf("inside cooldown: scale=%g changed=%v, want 2, false", s, changed)
	}
	// Cooldown elapsed: next step.
	if s, changed = g.Observe(tick(start, 100), 90, 100, 0); !changed || s != 4 {
		t.Fatalf("after cooldown: scale=%g changed=%v, want 4, true", s, changed)
	}
	if s, changed = g.Observe(tick(start, 200), 90, 100, 0); !changed || s != 8 {
		t.Fatalf("third step: scale=%g changed=%v, want 8, true", s, changed)
	}
	// Capped at MaxScale.
	if s, changed = g.Observe(tick(start, 300), 100, 100, 0); changed || s != 8 {
		t.Fatalf("at cap: scale=%g changed=%v, want 8, false", s, changed)
	}
}

func TestGovernorRestoreHysteresis(t *testing.T) {
	g, err := NewGovernor(GovernorConfig{
		Step: 2, MaxScale: 8,
		Cooldown: 10 * time.Millisecond, RestoreAfter: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(2000, 0)
	g.Observe(tick(start, 0), 100, 100, 0)
	g.Observe(tick(start, 10), 100, 100, 0) // scale 4

	// Calm begins; restore only after a full continuous RestoreAfter.
	if s, changed := g.Observe(tick(start, 20), 0, 100, 0); changed || s != 4 {
		t.Fatalf("calm start: scale=%g changed=%v, want 4, false", s, changed)
	}
	if s, changed := g.Observe(tick(start, 500), 0, 100, 0); changed || s != 4 {
		t.Fatalf("calm accruing: scale=%g changed=%v, want 4, false", s, changed)
	}
	// A sample in the hysteresis band (between LoFrac and HiFrac)
	// restarts the calm clock without degrading.
	if s, changed := g.Observe(tick(start, 600), 50, 100, 0); changed || s != 4 {
		t.Fatalf("hysteresis band: scale=%g changed=%v, want 4, false", s, changed)
	}
	if s, changed := g.Observe(tick(start, 700), 0, 100, 0); changed || s != 4 {
		t.Fatalf("calm restart: scale=%g changed=%v, want 4, false", s, changed)
	}
	// 1s after the restarted calm run: one restore step.
	if s, changed := g.Observe(tick(start, 1700), 0, 100, 0); !changed || s != 2 {
		t.Fatalf("first restore: scale=%g changed=%v, want 2, true", s, changed)
	}
	// The next step needs another full calm run.
	if s, changed := g.Observe(tick(start, 1800), 0, 100, 0); changed || s != 2 {
		t.Fatalf("between restores: scale=%g changed=%v, want 2, false", s, changed)
	}
	if s, changed := g.Observe(tick(start, 2700), 0, 100, 0); !changed || s != 1 {
		t.Fatalf("second restore: scale=%g changed=%v, want 1, true", s, changed)
	}
	// Back at 1: calm samples change nothing.
	if s, changed := g.Observe(tick(start, 3700), 0, 100, 0); changed || s != 1 {
		t.Fatalf("restored to 1: scale=%g changed=%v, want 1, false", s, changed)
	}
}

func TestGovernorLatencyWatermark(t *testing.T) {
	g, err := NewGovernor(GovernorConfig{LatencyHi: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(3000, 0)
	// Queue empty but p99 past the watermark: still pressure.
	if s, changed := g.Observe(start, 0, 100, 60*time.Millisecond); !changed || s != 2 {
		t.Fatalf("latency pressure: scale=%g changed=%v, want 2, true", s, changed)
	}
	// Latency still hot past the cooldown: pressure persists, next step.
	if s, changed := g.Observe(tick(start, 5000), 0, 100, 60*time.Millisecond); !changed || s != 4 {
		t.Fatalf("sustained latency pressure: scale=%g changed=%v, want 4, true", s, changed)
	}
	// Latency cools below the watermark with an empty queue: calm
	// accrues and restores after the default RestoreAfter (2s).
	if s, changed := g.Observe(tick(start, 5100), 0, 100, 40*time.Millisecond); changed || s != 4 {
		t.Fatalf("latency calm start: scale=%g changed=%v, want 4, false", s, changed)
	}
	if s, changed := g.Observe(tick(start, 7200), 0, 100, 40*time.Millisecond); !changed || s != 2 {
		t.Fatalf("latency restore: scale=%g changed=%v, want 2, true", s, changed)
	}
}

func TestGovernorConfigValidation(t *testing.T) {
	bad := []GovernorConfig{
		{Step: 0.5},
		{MaxScale: 0.5},
		{HiFrac: 1.5},
		{LoFrac: 0.9, HiFrac: 0.5},
		{LatencyHi: -time.Second},
		{Cooldown: -time.Second},
		{RestoreAfter: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewGovernor(cfg); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	if _, err := NewGovernor(GovernorConfig{}); err != nil {
		t.Errorf("zero config should take defaults: %v", err)
	}
}
