package adapt

import (
	"fmt"
	"time"
)

// GovernorConfig parameterizes a live degrade Governor: the per-
// subscriber control loop behind the "degrade" slow-consumer policy.
// Where DegradeConfig drives the offline, window-based controller
// (RunDegrading), the Governor reacts to live queue pressure and
// delivery latency, one sample per delivery hand-off.
type GovernorConfig struct {
	// Step is the multiplicative scale change per control action
	// (coarser by Step on a degrade, finer by Step on a restore);
	// 0 means 2.
	Step float64
	// MaxScale caps degradation; 0 means 8.
	MaxScale float64
	// HiFrac is the queue-occupancy fraction at or above which a
	// degrade step fires; 0 means 0.75.
	HiFrac float64
	// LoFrac is the occupancy fraction below which calm accrues toward
	// a restore step; occupancy between LoFrac and HiFrac is the
	// hysteresis band where the scale holds. 0 means 0.25.
	LoFrac float64
	// LatencyHi, when positive, is a delivery-p99 watermark that counts
	// as pressure even while the queue is shallow (a consumer can lag
	// on latency without ever filling its queue). Zero disables the
	// latency signal.
	LatencyHi time.Duration
	// Cooldown is the minimum interval between consecutive degrade
	// steps, so one sustained burst tightens the spec stepwise instead
	// of slamming straight to MaxScale; 0 means 250ms.
	Cooldown time.Duration
	// RestoreAfter is how long every pressure signal must stay below
	// its low watermark before one restore step — the hysteresis that
	// keeps a borderline consumer from flapping; 0 means 2s.
	RestoreAfter time.Duration
}

func (c GovernorConfig) withDefaults() (GovernorConfig, error) {
	if c.Step == 0 {
		c.Step = 2
	}
	if c.Step <= 1 {
		return c, fmt.Errorf("adapt: governor step must exceed 1, got %g", c.Step)
	}
	if c.MaxScale == 0 {
		c.MaxScale = 8
	}
	if c.MaxScale < 1 {
		return c, fmt.Errorf("adapt: governor max scale %g below 1", c.MaxScale)
	}
	if c.HiFrac == 0 {
		c.HiFrac = 0.75
	}
	if c.LoFrac == 0 {
		c.LoFrac = 0.25
	}
	if c.HiFrac <= 0 || c.HiFrac > 1 {
		return c, fmt.Errorf("adapt: governor high watermark %g outside (0, 1]", c.HiFrac)
	}
	if c.LoFrac <= 0 || c.LoFrac >= c.HiFrac {
		return c, fmt.Errorf("adapt: governor low watermark %g outside (0, %g)", c.LoFrac, c.HiFrac)
	}
	if c.LatencyHi < 0 {
		return c, fmt.Errorf("adapt: governor latency watermark %v negative", c.LatencyHi)
	}
	if c.Cooldown == 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.Cooldown < 0 {
		return c, fmt.Errorf("adapt: governor cooldown %v negative", c.Cooldown)
	}
	if c.RestoreAfter == 0 {
		c.RestoreAfter = 2 * time.Second
	}
	if c.RestoreAfter < 0 {
		return c, fmt.Errorf("adapt: governor restore-after %v negative", c.RestoreAfter)
	}
	return c, nil
}

// Governor is the degrade-policy state machine for one subscriber: it
// turns a stream of pressure samples (queue occupancy, delivery p99)
// into a granularity-scale trajectory with stepwise degradation under
// pressure and hysteretic stepwise restoration once pressure clears.
//
// The Governor is deterministic and holds no clock of its own — every
// decision is a pure function of the samples fed to Observe — so it is
// unit-testable without sleeping. It is not safe for concurrent use:
// the caller (one shard worker per source) serializes Observe.
type Governor struct {
	cfg   GovernorConfig
	scale float64
	// lastDegrade rate-limits consecutive degrade steps (Cooldown).
	lastDegrade time.Time
	// calmSince marks the start of the current continuous calm run;
	// valid only while calm is true.
	calmSince time.Time
	calm      bool
}

// NewGovernor validates the config and returns a governor at scale 1.
func NewGovernor(cfg GovernorConfig) (*Governor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Governor{cfg: cfg, scale: 1}, nil
}

// Scale returns the current granularity scale (1 = configured quality).
func (g *Governor) Scale() float64 { return g.scale }

// Observe feeds one pressure sample — the subscriber's queue occupancy
// out of its capacity and its delivery-p99 estimate (0 when latency is
// not tracked) — and returns the scale now in effect plus whether this
// sample changed it. Pressure at or above the high watermark degrades
// one Step (rate-limited by Cooldown); every signal below its low
// watermark for RestoreAfter restores one Step; in between the scale
// holds.
func (g *Governor) Observe(now time.Time, queueLen, queueCap int, p99 time.Duration) (float64, bool) {
	pressured := queueCap > 0 && float64(queueLen) >= g.cfg.HiFrac*float64(queueCap)
	if g.cfg.LatencyHi > 0 && p99 >= g.cfg.LatencyHi {
		pressured = true
	}
	calm := (queueCap <= 0 || float64(queueLen) < g.cfg.LoFrac*float64(queueCap)) &&
		(g.cfg.LatencyHi <= 0 || p99 < g.cfg.LatencyHi)

	switch {
	case pressured:
		g.calm = false
		if g.scale < g.cfg.MaxScale &&
			(g.lastDegrade.IsZero() || now.Sub(g.lastDegrade) >= g.cfg.Cooldown) {
			g.scale = min(g.scale*g.cfg.Step, g.cfg.MaxScale)
			g.lastDegrade = now
			return g.scale, true
		}
	case calm && g.scale > 1:
		if !g.calm {
			g.calm, g.calmSince = true, now
			break
		}
		if now.Sub(g.calmSince) >= g.cfg.RestoreAfter {
			g.scale = max(g.scale/g.cfg.Step, 1)
			// Stepwise restore: the next step needs a fresh calm run.
			g.calmSince = now
			return g.scale, true
		}
	default:
		// Hysteresis band (or nothing to restore): hold the scale and
		// restart the calm clock — restoration requires continuous calm.
		g.calm = false
	}
	return g.scale, false
}
