package adapt

import (
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

func namos(t *testing.T, n int) *tuple.Series {
	t.Helper()
	sr, err := trace.NAMOS(trace.Config{N: n, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

func dc(t *testing.T, id string, delta, slack float64) filter.Filter {
	t.Helper()
	f, err := filter.NewDC1(id, "tmpr4", delta, slack)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSelectivityOrdersByGranularity(t *testing.T) {
	sr := namos(t, 1500)
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		t.Fatal(err)
	}
	fine := dc(t, "fine", 1*stat, 0.5*stat)
	coarse := dc(t, "coarse", 10*stat, 5*stat)
	sf, err := Selectivity(fine, sr)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Selectivity(coarse, sr)
	if err != nil {
		t.Fatal(err)
	}
	if sf <= sc {
		t.Errorf("fine filter selectivity %.3f not above coarse %.3f", sf, sc)
	}
	if sf <= 0 || sf > 1 || sc <= 0 || sc > 1 {
		t.Errorf("selectivities out of range: %g, %g", sf, sc)
	}
	if _, err := Selectivity(fine, nil); err == nil {
		t.Error("nil sample should fail")
	}
}

func TestPartitionIsolatesBadFilter(t *testing.T) {
	sr := namos(t, 2000)
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		t.Fatal(err)
	}
	// The "bad" filter wants nearly every tuple (§4.8): delta far below
	// typical change.
	filters := []filter.Filter{
		dc(t, "good1", 2*stat, stat),
		dc(t, "good2", 3*stat, 1.5*stat),
		dc(t, "bad", 0.05*stat, 0.025*stat),
	}
	sample, err := sr.Slice(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	coordinated, direct, sel, err := Partition(filters, sample, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(coordinated) != 2 || len(direct) != 1 || direct[0].ID() != "bad" {
		t.Fatalf("partition wrong: coordinated %d, direct %v (selectivity %v)",
			len(coordinated), direct, sel)
	}
	if sel["bad"] < 0.5 {
		t.Errorf("bad filter selectivity %.3f unexpectedly low", sel["bad"])
	}

	res, err := RunPartitioned(coordinated, direct, sr, core.Options{Algorithm: core.RG})
	if err != nil {
		t.Fatal(err)
	}
	// Every filter still gets served: counts match the all-SI baseline.
	si, err := core.RunSelfInterested(filters, sr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range si.Stats.PerFilter {
		if res.Stats.PerFilter[id] != n {
			t.Errorf("filter %s deliveries = %d, want %d", id, res.Stats.PerFilter[id], n)
		}
	}
	// Transmissions are ordered by release time.
	for i := 1; i < len(res.Transmissions); i++ {
		if res.Transmissions[i].ReleasedAt.Before(res.Transmissions[i-1].ReleasedAt) {
			t.Fatal("merged transmissions out of order")
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	sr := namos(t, 100)
	if _, _, _, err := Partition(nil, sr, 0); err == nil {
		t.Error("zero threshold should fail")
	}
	if _, _, _, err := Partition(nil, sr, 1.5); err == nil {
		t.Error("threshold above 1 should fail")
	}
	if _, err := RunPartitioned(nil, nil, sr, core.Options{}); err == nil {
		t.Error("empty partition should fail")
	}
}

func TestDCSetScaleSemantics(t *testing.T) {
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	for i, v := range []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	f, err := filter.NewDC1("f", "v", 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetScale(0); err == nil {
		t.Error("non-positive scale should fail")
	}
	// At scale 1, every step of 10 triggers a reference.
	refs := 0
	for i := 0; i < 5; i++ {
		ev, err := f.Process(sr.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Closed != nil {
			refs++
		}
	}
	if refs == 0 {
		t.Fatal("no references at scale 1")
	}
	// Degrade 3x: effective delta 30, so two of every three steps stop
	// producing references.
	if err := f.SetScale(3); err != nil {
		t.Fatal(err)
	}
	if got := f.Scale(); got != 3 {
		t.Fatalf("Scale() = %g", got)
	}
	coarseRefs := 0
	for i := 5; i < sr.Len(); i++ {
		ev, err := f.Process(sr.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Closed != nil {
			coarseRefs++
		}
	}
	// Values 50..100 move 50 units: at delta 30 that is at most 2
	// references (vs 5 at scale 1).
	if coarseRefs > 2 {
		t.Errorf("degraded filter produced %d references over 50 units, want <= 2", coarseRefs)
	}
}

func TestRunDegradingRespondsToLoad(t *testing.T) {
	// A stream whose volatility jumps mid-way: quiet drift then violent
	// swings.
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	v := 0.0
	for i := 0; i < 2000; i++ {
		if i < 1000 {
			v += 0.1
		} else {
			// Strong moves each tuple.
			if i%2 == 0 {
				v += 6
			} else {
				v -= 3
			}
		}
		if err := sr.Append(tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	f1, err := filter.NewDC1("a", "v", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := filter.NewDC1("b", "v", 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDegrading([]filter.Filter{f1, f2}, sr, core.Options{Algorithm: core.RG},
		DegradeConfig{BudgetOI: 0.2, Window: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScaleTrajectory) != 10 {
		t.Fatalf("trajectory length = %d, want 10 windows", len(res.ScaleTrajectory))
	}
	// Quiet phase: scale stays at 1. Volatile phase: controller degrades.
	if res.ScaleTrajectory[3] != 1 {
		t.Errorf("scale %.2f during quiet phase, want 1", res.ScaleTrajectory[3])
	}
	final := res.ScaleTrajectory[len(res.ScaleTrajectory)-1]
	if final <= 1 {
		t.Errorf("controller never degraded under load: trajectory %v (window O/I %v)",
			res.ScaleTrajectory, res.WindowOI)
	}
	// The degraded windows must come back under (or near) budget.
	last := res.WindowOI[len(res.WindowOI)-1]
	if last > 3*0.2 {
		t.Errorf("final window O/I %.3f far above budget despite degradation", last)
	}
	if res.Result.Stats.DistinctOutputs == 0 {
		t.Error("no outputs")
	}
}

func TestRunDegradingValidation(t *testing.T) {
	sr := namos(t, 300)
	f := dc(t, "a", 1, 0.5)
	bad := []struct {
		name string
		cfg  DegradeConfig
	}{
		{"zero budget", DegradeConfig{Window: 10}},
		{"budget above 1", DegradeConfig{BudgetOI: 2, Window: 10}},
		{"zero window", DegradeConfig{BudgetOI: 0.5}},
		{"step below 1", DegradeConfig{BudgetOI: 0.5, Window: 10, Step: 0.5}},
		{"max scale below 1", DegradeConfig{BudgetOI: 0.5, Window: 10, MaxScale: 0.5}},
	}
	for _, tc := range bad {
		if _, err := RunDegrading([]filter.Filter{f}, sr, core.Options{}, tc.cfg); err == nil {
			t.Errorf("%s should fail", tc.name)
		}
	}
	// A group with no scalable filters is rejected.
	ss, err := filter.NewSS("ss", "tmpr4", time.Second, 1, 50, 20, filter.Random)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDegrading([]filter.Filter{ss}, sr, core.Options{}, DegradeConfig{BudgetOI: 0.5, Window: 10}); err == nil {
		t.Error("group without scalable filters should fail")
	}
}

// TestDegradationReducesOutput: a tight budget forces degradation and the
// degraded run transmits strictly less than the unconstrained run, while
// consecutive deliveries still move by at least the *configured*
// delta - slack (degradation only widens spacing, never narrows it).
func TestDegradationReducesOutput(t *testing.T) {
	sr := namos(t, 2000)
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := RunDegrading([]filter.Filter{dc(t, "a", 2*stat, stat)}, sr,
		core.Options{Algorithm: core.RG},
		DegradeConfig{BudgetOI: 0.02, Window: 250, MaxScale: 4})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Run([]filter.Filter{dc(t, "a", 2*stat, stat)}, sr, core.Options{Algorithm: core.RG})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Result.Stats.DistinctOutputs >= plain.Stats.DistinctOutputs {
		t.Errorf("degraded outputs %d not below unconstrained %d (trajectory %v)",
			degraded.Result.Stats.DistinctOutputs, plain.Stats.DistinctOutputs, degraded.ScaleTrajectory)
	}
}
