// Package adapt implements the adaptive-control extensions the paper
// sketches as future work:
//
//   - selectivity monitoring and group partitioning (§4.8: "It is desirable
//     to isolate those 'bad' filters from the rest, or not to apply
//     group-aware filtering when they are present");
//   - windowed quality degradation (§3.1: applications "are willing to
//     adapt their data requirements according to system conditions",
//     §3.5.3's self-tuning control loop applied to bandwidth).
package adapt

import (
	"fmt"
	"sort"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/tuple"
)

// Selectivity measures a filter's self-interested selectivity on a sample
// series: the fraction of input tuples its baseline selects. High
// selectivity means the filter wants most of the stream and leaves little
// room for group-aware savings.
func Selectivity(f filter.Filter, sample *tuple.Series) (float64, error) {
	if sample == nil || sample.Len() == 0 {
		return 0, fmt.Errorf("adapt: empty sample")
	}
	si := f.SelfInterested()
	selected := 0
	for i := 0; i < sample.Len(); i++ {
		selected += len(si.Process(sample.At(i)))
	}
	selected += len(si.Flush())
	return float64(selected) / float64(sample.Len()), nil
}

// Partition splits a group by measured selectivity: filters at or below
// the threshold join the coordinated (group-aware) set; the rest are
// served directly with self-interested filtering, so their near-raw demand
// neither inflates group CPU nor drags decisions. It returns the measured
// selectivities keyed by filter ID.
func Partition(filters []filter.Filter, sample *tuple.Series, threshold float64) (coordinated, direct []filter.Filter, selectivity map[string]float64, err error) {
	if threshold <= 0 || threshold > 1 {
		return nil, nil, nil, fmt.Errorf("adapt: threshold %g outside (0, 1]", threshold)
	}
	selectivity = make(map[string]float64, len(filters))
	for _, f := range filters {
		s, err := Selectivity(f, sample)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("adapt: measuring %s: %w", f.ID(), err)
		}
		selectivity[f.ID()] = s
		if s <= threshold {
			coordinated = append(coordinated, f)
		} else {
			direct = append(direct, f)
		}
	}
	return coordinated, direct, selectivity, nil
}

// RunPartitioned executes a partitioned group over a series: the
// coordinated filters run through the group-aware engine, the direct
// filters through the self-interested baseline, and the transmissions are
// merged into one result (union bandwidth accounting across both).
func RunPartitioned(coordinated, direct []filter.Filter, sr *tuple.Series, opts core.Options) (*core.Result, error) {
	if len(coordinated)+len(direct) == 0 {
		return nil, fmt.Errorf("adapt: no filters")
	}
	merged := &core.Result{Stats: core.Stats{PerFilter: make(map[string]int)}}
	distinct := make(map[int]bool)
	fold := func(res *core.Result) {
		merged.Transmissions = append(merged.Transmissions, res.Transmissions...)
		merged.Stats.Inputs = res.Stats.Inputs
		merged.Stats.Transmissions += res.Stats.Transmissions
		merged.Stats.Deliveries += res.Stats.Deliveries
		merged.Stats.CPU += res.Stats.CPU
		merged.Stats.GreedyCPU += res.Stats.GreedyCPU
		merged.Stats.Regions += res.Stats.Regions
		merged.Stats.RegionsCut += res.Stats.RegionsCut
		merged.Stats.RegionTupleSum += res.Stats.RegionTupleSum
		merged.Stats.Latencies = append(merged.Stats.Latencies, res.Stats.Latencies...)
		for id, n := range res.Stats.PerFilter {
			merged.Stats.PerFilter[id] += n
		}
		for _, tr := range res.Transmissions {
			if !distinct[tr.Tuple.Seq] {
				distinct[tr.Tuple.Seq] = true
				merged.Stats.DistinctOutputs++
			}
		}
	}
	if len(coordinated) > 0 {
		res, err := core.Run(coordinated, sr, opts)
		if err != nil {
			return nil, err
		}
		fold(res)
	}
	if len(direct) > 0 {
		res, err := core.RunSelfInterested(direct, sr, opts)
		if err != nil {
			return nil, err
		}
		fold(res)
	}
	sort.SliceStable(merged.Transmissions, func(i, j int) bool {
		if !merged.Transmissions[i].ReleasedAt.Equal(merged.Transmissions[j].ReleasedAt) {
			return merged.Transmissions[i].ReleasedAt.Before(merged.Transmissions[j].ReleasedAt)
		}
		return merged.Transmissions[i].Tuple.Seq < merged.Transmissions[j].Tuple.Seq
	})
	return merged, nil
}

// Scalable is implemented by filters whose granularity can be degraded at
// run time (the DC family).
type Scalable interface {
	SetScale(scale float64) error
	Scale() float64
}

// DegradeConfig parameterizes the bandwidth controller.
type DegradeConfig struct {
	// BudgetOI is the maximum tolerated output/input ratio per control
	// window; above it the controller degrades granularity.
	BudgetOI float64
	// Window is the control period in input tuples.
	Window int
	// Step is the multiplicative scale adjustment per control action;
	// 0 means 1.25.
	Step float64
	// MaxScale caps degradation; 0 means 8.
	MaxScale float64
}

func (c DegradeConfig) withDefaults() (DegradeConfig, error) {
	if c.BudgetOI <= 0 || c.BudgetOI > 1 {
		return c, fmt.Errorf("adapt: budget O/I %g outside (0, 1]", c.BudgetOI)
	}
	if c.Window <= 0 {
		return c, fmt.Errorf("adapt: window must be positive, got %d", c.Window)
	}
	if c.Step == 0 {
		c.Step = 1.25
	}
	if c.Step <= 1 {
		return c, fmt.Errorf("adapt: step must exceed 1, got %g", c.Step)
	}
	if c.MaxScale == 0 {
		c.MaxScale = 8
	}
	if c.MaxScale < 1 {
		return c, fmt.Errorf("adapt: max scale %g below 1", c.MaxScale)
	}
	return c, nil
}

// DegradeResult reports a degrading run.
type DegradeResult struct {
	Result *core.Result
	// ScaleTrajectory records the granularity scale at the end of each
	// control window.
	ScaleTrajectory []float64
	// WindowOI records the measured O/I of each window.
	WindowOI []float64
}

// RunDegrading drives the group through the engine under a bandwidth
// budget: at each window boundary it compares the window's output/input
// ratio to the budget and scales every Scalable filter's granularity up
// (coarser) when over budget, or back down toward the configured
// granularity when comfortably under (below 70% of budget) — the
// self-tuning control pattern of §3.5.3.
func RunDegrading(filters []filter.Filter, sr *tuple.Series, opts core.Options, cfg DegradeConfig) (*DegradeResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var scalables []Scalable
	for _, f := range filters {
		if s, ok := f.(Scalable); ok {
			scalables = append(scalables, s)
		}
	}
	if len(scalables) == 0 {
		return nil, fmt.Errorf("adapt: no scalable filters in the group")
	}
	e, err := core.NewEngine(filters, opts)
	if err != nil {
		return nil, err
	}
	out := &DegradeResult{}
	scale := 1.0
	lastOutputs := 0
	for i := 0; i < sr.Len(); i++ {
		if err := e.Step(sr.At(i)); err != nil {
			return nil, err
		}
		if (i+1)%cfg.Window != 0 {
			continue
		}
		produced := e.Result().Stats.DistinctOutputs - lastOutputs
		lastOutputs = e.Result().Stats.DistinctOutputs
		oi := float64(produced) / float64(cfg.Window)
		out.WindowOI = append(out.WindowOI, oi)
		switch {
		case oi > cfg.BudgetOI && scale < cfg.MaxScale:
			scale *= cfg.Step
			if scale > cfg.MaxScale {
				scale = cfg.MaxScale
			}
		case oi < 0.7*cfg.BudgetOI && scale > 1:
			scale /= cfg.Step
			if scale < 1 {
				scale = 1
			}
		}
		for _, s := range scalables {
			if err := s.SetScale(scale); err != nil {
				return nil, err
			}
		}
		out.ScaleTrajectory = append(out.ScaleTrajectory, scale)
	}
	if err := e.Finish(); err != nil {
		return nil, err
	}
	out.Result = e.Result()
	return out, nil
}
