package broker

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gasf/internal/adapt"
	"gasf/internal/trace"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// publishVal publishes one single-attribute tuple with an explicit
// value, so a test can steer the filter's delta decisions directly.
func publishVal(t *testing.T, ctx context.Context, src *Source, seq int, val float64) {
	t.Helper()
	tp := tuple.MustNew(src.Schema(), seq, trace.Epoch.Add(time.Duration(seq)*time.Millisecond), []float64{val})
	if err := src.Publish(ctx, tp); err != nil {
		t.Fatalf("publish seq %d: %v", seq, err)
	}
}

// degradeRec is one delivery fingerprint: the tuple's sequence number
// and its wire encoding (tuple bytes plus destinations).
type degradeRec struct {
	seq int
	fp  []byte
}

// collectDeliveries consumes sub until the stream ends, wire-encoding
// every delivery. perRecv, when nonzero, throttles the consumer — the
// pressure source for the degrade governor. slow can flip the throttle
// off mid-stream.
func collectDeliveries(t *testing.T, ctx context.Context, sub *Sub, slow *atomic.Bool, perRecv time.Duration) (<-chan struct{}, *sync.Mutex, *[]degradeRec) {
	var mu sync.Mutex
	recs := &[]degradeRec{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			d, err := sub.Recv(ctx)
			if errors.Is(err, ErrStreamEnded) {
				return
			}
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			buf, err := wire.AppendTransmission(nil, d.Tuple, d.Destinations)
			if err != nil {
				t.Errorf("encode: %v", err)
				return
			}
			mu.Lock()
			*recs = append(*recs, degradeRec{seq: d.Tuple.Seq, fp: buf})
			mu.Unlock()
			if perRecv > 0 && (slow == nil || slow.Load()) {
				time.Sleep(perRecv)
			}
		}
	}()
	return done, &mu, recs
}

// TestDegradeRestoreEquivalence drives a degrade subscriber through a
// full pressure cycle — degrade to MaxScale under a throttled consumer,
// then restore to scale 1 under a prompt one — and proves restoration
// is complete: past a fence tuple whose value jump resynchronizes the
// filter state in any run, the delivered bytes are identical to a
// block-policy run that never degraded. Degradation must leave no
// residue once pressure clears.
func TestDegradeRestoreEquivalence(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	gcfg := adapt.GovernorConfig{
		Step:         2,
		MaxScale:     4,
		HiFrac:       0.5,
		LoFrac:       0.25,
		Cooldown:     2 * time.Millisecond,
		RestoreAfter: 40 * time.Millisecond,
	}

	// Degrade run: the publish schedule is recorded so the reference run
	// can replay the identical series.
	b, err := New(Config{Policy: Degrade, Degrade: gcfg})
	if err != nil {
		t.Fatal(err)
	}
	src := openBench(t, b)
	sub, err := b.Subscribe(ctx, "a", "bench", passAllSpec(t), SubOptions{Queue: 4})
	if err != nil {
		t.Fatal(err)
	}
	var slow atomic.Bool
	slow.Store(true)
	done, mu, recs := collectDeliveries(t, ctx, sub, &slow, 8*time.Millisecond)

	// Phase 1: flood a throttled consumer until the governor has pushed
	// the scale to its cap.
	i := 0
	deadline := time.Now().Add(30 * time.Second)
	for sub.QoS() < gcfg.MaxScale {
		if time.Now().After(deadline) {
			t.Fatalf("governor never reached MaxScale (QoS=%g after %d tuples)", sub.QoS(), i)
		}
		publishVal(t, ctx, src, i, float64(i))
		i++
		time.Sleep(time.Millisecond)
	}
	// Phase 2: clear the pressure and keep a trickle flowing (Observe
	// samples ride on deliveries) until hysteresis restores scale 1.
	slow.Store(false)
	for sub.QoS() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("governor never restored to 1 (QoS=%g after %d tuples)", sub.QoS(), i)
		}
		publishVal(t, ctx, src, i, float64(i))
		i++
		time.Sleep(2 * time.Millisecond)
	}
	n1 := i
	// The fence: a value jump large enough to become a new reference in
	// any filter state, resynchronizing degraded and never-degraded runs.
	const fenceVal = 1e6
	const tail = 150
	publishVal(t, ctx, src, n1, fenceVal)
	for j := 1; j <= tail; j++ {
		publishVal(t, ctx, src, n1+j, fenceVal+float64(j))
	}
	if err := src.Finish(ctx); err != nil {
		t.Fatalf("finish: %v", err)
	}
	<-done
	if err := b.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reference run: a block broker replays the identical series with a
	// prompt consumer — the never-degraded baseline.
	b2, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	src2 := openBench(t, b2)
	sub2, err := b2.Subscribe(ctx, "a", "bench", passAllSpec(t), SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	done2, mu2, recs2 := collectDeliveries(t, ctx, sub2, nil, 0)
	for k := 0; k < n1; k++ {
		publishVal(t, ctx, src2, k, float64(k))
	}
	publishVal(t, ctx, src2, n1, fenceVal)
	for j := 1; j <= tail; j++ {
		publishVal(t, ctx, src2, n1+j, fenceVal+float64(j))
	}
	if err := src2.Finish(ctx); err != nil {
		t.Fatalf("reference finish: %v", err)
	}
	<-done2
	if err := b2.Close(ctx); err != nil {
		t.Fatalf("reference close: %v", err)
	}

	postFence := func(mu *sync.Mutex, recs *[]degradeRec) []byte {
		mu.Lock()
		defer mu.Unlock()
		var fp []byte
		for _, r := range *recs {
			if r.seq >= n1 {
				fp = append(fp, r.fp...)
			}
		}
		return fp
	}
	got, want := postFence(mu, recs), postFence(mu2, recs2)
	if len(want) == 0 {
		t.Fatal("reference run released nothing past the fence")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restore stream differs from never-degraded run (%d vs %d bytes past the fence)", len(got), len(want))
	}
	t.Logf("degrade run published %d pre-fence tuples; post-fence parity over %d bytes", n1, len(want))
}

// TestDegradeChurnScaleConsistency races the degrade control loop
// against live membership churn: while a throttled subscriber keeps its
// governor stepping, short-lived subscribers join and leave the same
// group, interleaving SetScale with AddFilter/RemoveFilter on the shard
// worker. The applied scale must stay a clean power of Step inside
// [1, MaxScale] at every observation. Run under -race this is also the
// memory-safety proof for the adaptive path.
func TestDegradeChurnScaleConsistency(t *testing.T) {
	ctx := testCtx(t)
	gcfg := adapt.GovernorConfig{
		HiFrac:       0.5,
		LoFrac:       0.25,
		Cooldown:     time.Millisecond,
		RestoreAfter: 10 * time.Millisecond,
	}
	b, err := New(Config{Policy: Degrade, Degrade: gcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)
	src := openBench(t, b)
	sub, err := b.Subscribe(ctx, "a", "bench", passAllSpec(t), SubOptions{Queue: 4})
	if err != nil {
		t.Fatal(err)
	}

	valid := map[float64]bool{1: true, 2: true, 4: true, 8: true}
	var violations atomic.Int64
	received := make(chan int, 1)
	go func() {
		n := 0
		for {
			_, err := sub.Recv(ctx)
			if errors.Is(err, ErrStreamEnded) {
				break
			}
			if err != nil {
				t.Errorf("recv: %v", err)
				break
			}
			n++
			if q := sub.QoS(); !valid[q] {
				violations.Add(1)
				t.Errorf("observed scale %g, want a power of %g in [1, %g]", q, 2.0, 8.0)
			}
			time.Sleep(time.Millisecond)
		}
		received <- n
	}()

	stop := make(chan struct{})
	churned := make(chan int, 1)
	go func() {
		k := 0
		for {
			select {
			case <-stop:
				churned <- k
				return
			default:
			}
			cs, err := b.Subscribe(ctx, fmt.Sprintf("churn%d", k), "bench", passAllSpec(t), SubOptions{Queue: 256})
			if err != nil {
				t.Errorf("churn join %d: %v", k, err)
				churned <- k
				return
			}
			time.Sleep(3 * time.Millisecond)
			if err := cs.Close(ctx); err != nil {
				t.Errorf("churn leave %d: %v", k, err)
				churned <- k
				return
			}
			k++
		}
	}()

	until := time.Now().Add(400 * time.Millisecond)
	i := 0
	for time.Now().Before(until) {
		publishSeq(t, ctx, src, i, 5)
		i += 5
		time.Sleep(time.Millisecond)
	}
	close(stop)
	joins := <-churned
	if err := src.Finish(ctx); err != nil {
		t.Fatalf("finish: %v", err)
	}
	n := <-received
	if n == 0 {
		t.Fatal("throttled subscriber received nothing")
	}
	if violations.Load() > 0 {
		t.Fatalf("%d inconsistent scale observations under churn", violations.Load())
	}
	t.Logf("published %d tuples, %d churn cycles, %d deliveries, final scale %g", i, joins, n, sub.QoS())
}
