// Package broker implements the embedded (in-process) streaming broker:
// dynamic sources and subscriptions multiplexed onto the sharded
// group-aware filtering runtime (internal/shard), with the same session
// semantics as the networked server (internal/server) but no sockets in
// the loop.
//
// The broker is the adapter layer behind the public gasf.Broker API's
// embedded implementation. It mirrors the server's lifecycle exactly so
// the two transports stay behaviorally interchangeable — the facade's
// parity suite asserts byte-identical released sequences per subscriber:
//
//   - A source opens with a name and schema, streams strictly
//     timestamp-ordered tuples, and finishes; finishing flushes the
//     engine's tail to its subscribers, then ends their streams.
//   - A subscriber joins a source's live group with a quality
//     specification at a tuple boundary (the paper's group re-derivation,
//     §4.3) and leaves the same way; membership changes are applied by
//     the source's owning shard worker, so other sources are undisturbed.
//   - Deliveries are fanned out per released transmission with the
//     destination labels pruned to the live subscribers, exactly as the
//     server's sink prunes departed sessions from the wire encoding.
//   - A bounded per-subscription delivery queue applies the block or
//     drop slow-consumer policy.
package broker

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"gasf/internal/adapt"
	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/flowgap"
	"gasf/internal/quality"
	"gasf/internal/seglog"
	"gasf/internal/shard"
	"gasf/internal/telemetry"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// Policy selects how a full subscription queue is treated.
type Policy int

const (
	// Block applies backpressure: the shard worker waits for queue space,
	// which eventually stalls the publishers feeding that shard.
	Block Policy = iota
	// Drop discards the delivery and counts it, keeping fast subscribers
	// and publishers unaffected by a slow one.
	Drop
	// Degrade blocks like Block but adaptively coarsens the precision of
	// pressured subscriptions whose filters support scaling
	// (adapt.Scalable): an adapt.Governor per subscription watches queue
	// occupancy and delivery p99 and widens the effective quality spec
	// under overload, restoring it stepwise once calm. Subscriptions whose
	// filters are not Scalable degrade to plain blocking.
	Degrade
)

// Config parameterizes a Broker. The zero value runs default engine
// options with blocking slow-consumer handling.
type Config struct {
	// Engine configures the group-aware engine deployed per source
	// (algorithm, cuts, output strategy) and the shard runtime knobs.
	Engine core.Options
	// SubscriberQueue bounds each subscription's delivery queue, in
	// deliveries; 0 means 256. A subscription may request its own depth,
	// clamped to MaxSubscriberQueue.
	SubscriberQueue int
	// MaxSubscriberQueue caps the per-subscription queue depth a
	// subscriber may request (memory protection); 0 means 65536.
	MaxSubscriberQueue int
	// Policy selects the slow-consumer policy (block or drop).
	Policy Policy
	// EvictTimeout bounds how long a blocking delivery waits on a full
	// subscription queue before the subscriber is treated as departed
	// and evicted — the in-process mirror of the server's WriteTimeout,
	// and what keeps an abandoned blocking subscription from wedging a
	// shard worker (and with it Finish and a graceful Close) forever.
	// 0 means 10s; negative disables eviction (unbounded blocking).
	EvictTimeout time.Duration
	// EvictAfterDrops evicts a Drop-policy subscription once its dropped
	// delivery count reaches this threshold: instead of silently losing
	// deliveries forever, the subscription is detached and Recv surfaces
	// ErrEvicted. 0 disables (the historical semantics: drop forever).
	EvictAfterDrops int
	// Degrade tunes the per-subscription governor used by the Degrade
	// policy (watermarks, step, cooldown). The zero value takes the
	// governor defaults. Ignored under other policies.
	Degrade adapt.GovernorConfig
	// SourceTimeout auto-finishes a silent source: one that neither
	// publishes nor sits in a backpressured submit for this long is
	// finished as if its owner had called Finish (engine tail flushed,
	// subscriber streams ended) — the in-process mirror of the server's
	// flow-gap expiry, for embedded publishers that abandon a stream
	// without finishing it. 0 (the default) and negative disable the
	// tracker entirely: an embedded source then lives until Finish or
	// Close, the historical semantics.
	SourceTimeout time.Duration
	// ScanInterval is the granularity of the flow-gap wheel when
	// SourceTimeout is set: silence is detected no earlier than
	// SourceTimeout and no later than about two intervals past it. 0
	// derives SourceTimeout/8 clamped to [10ms, 1s]. Ignored when
	// SourceTimeout leaves the tracker disabled.
	ScanInterval time.Duration
	// DataDir, when set, makes the broker durable: every delivered
	// transmission is appended to a per-source segment log under this
	// directory before fan-out, deliveries carry their log offsets, and
	// subscriptions may resume from a recorded offset. New recovers the
	// log (truncating any torn tail) before accepting work.
	DataDir string
	// Seglog tunes the durable log (segment size, fsync policy). Ignored
	// unless DataDir is set.
	Seglog seglog.Options
	// TelemetrySampleEvery sets the stage-timing sampling period: one in
	// every N hot-path events per stage is timed (rounded up to a power
	// of two). 0 means telemetry.DefaultSampleEvery; negative disables
	// stage timing and latency estimation entirely.
	TelemetrySampleEvery int
}

func (c Config) withDefaults() Config {
	if c.SubscriberQueue <= 0 {
		c.SubscriberQueue = 256
	}
	if c.MaxSubscriberQueue <= 0 {
		c.MaxSubscriberQueue = 65536
	}
	if c.SubscriberQueue > c.MaxSubscriberQueue {
		c.MaxSubscriberQueue = c.SubscriberQueue
	}
	if c.EvictTimeout == 0 {
		c.EvictTimeout = 10 * time.Second
	}
	if c.ScanInterval <= 0 && c.SourceTimeout > 0 {
		c.ScanInterval = c.SourceTimeout / 8
		if c.ScanInterval < 10*time.Millisecond {
			c.ScanInterval = 10 * time.Millisecond
		}
		if c.ScanInterval > time.Second {
			c.ScanInterval = time.Second
		}
	}
	return c
}

// ErrStreamEnded reports a graceful end of a subscription stream (the
// source finished or the broker closed).
var ErrStreamEnded = errors.New("broker: stream ended")

// ErrEvicted reports that the broker force-detached the subscription —
// it blocked past Config.EvictTimeout, or exceeded Config.EvictAfterDrops
// under the drop policy. Recv errors wrap it with the reason.
var ErrEvicted = errors.New("broker: subscriber evicted")

// errClosed rejects operations after Close.
var errClosed = errors.New("broker: closed")

// Delivery is one transmission received by a subscription: the tuple,
// the destination label list pruned to the subscribers that were live at
// release time (this subscription is one of them), and the receive
// instant stamped by Recv.
type Delivery struct {
	Tuple        *tuple.Tuple
	Destinations []string
	ReceivedAt   time.Time
	// Offset is the delivery's position in the source's durable log when
	// the broker runs with Config.DataDir (0 otherwise, and 0 for the log's
	// first record). A consumer that checkpointed offset o resumes with
	// SubOptions.ResumeFrom = o+1.
	Offset uint64
}

// Broker is the embedded streaming runtime. Create with New, open
// publishers with OpenSource, join groups with Subscribe, stop with
// Close.
type Broker struct {
	cfg    Config
	rt     *shard.Runtime
	cancel context.CancelFunc

	// log is the durable per-source segment log, nil unless Config.DataDir
	// was set. The sink appends before fan-out; replay goroutines read it
	// concurrently (reads work on snapshots, so they also tolerate Close).
	log           *seglog.Log
	logAppendErrs atomic.Uint64

	// mu guards the session registries; the delivery fan-out (sink) takes
	// the read side so shard workers do not serialize against each other
	// or against open/subscribe calls.
	mu      sync.RWMutex
	sources map[string]*Source
	subs    map[string]map[string]*Sub
	closed  bool

	// tel is the stage-timing and latency-estimation pipeline; nil when
	// Config.TelemetrySampleEvery is negative.
	tel *telemetry.Pipeline

	// wheel tracks per-source liveness when Config.SourceTimeout is set
	// (nil otherwise): publishes touch it off the lock, a background
	// loop advances it every ScanInterval, and expiry auto-finishes the
	// silent source. Shared design with the networked server's flow-gap
	// detector.
	wheel     *flowgap.Wheel
	evictStop chan struct{}
	evictWG   sync.WaitGroup
	evicted   atomic.Uint64

	// evictedSubs counts subscriptions force-detached (blocked past
	// EvictTimeout, or past EvictAfterDrops under the drop policy).
	evictedSubs atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

// New starts an embedded broker over a fresh shard runtime. With
// Config.DataDir set it first opens (and recovers) the durable log, so a
// failed recovery surfaces here rather than on the first publish.
func New(cfg Config) (*Broker, error) {
	cfg = cfg.withDefaults()
	if cfg.Policy == Degrade {
		// Surface a bad governor config here, not on the first Subscribe.
		if _, err := adapt.NewGovernor(cfg.Degrade); err != nil {
			return nil, fmt.Errorf("broker: %w", err)
		}
	}
	var log *seglog.Log
	if cfg.DataDir != "" {
		var err error
		if log, err = seglog.Open(cfg.DataDir, cfg.Seglog); err != nil {
			return nil, fmt.Errorf("broker: opening durable log: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var tel *telemetry.Pipeline
	if cfg.TelemetrySampleEvery >= 0 {
		tel = telemetry.New(cfg.TelemetrySampleEvery)
	}
	sc := shard.FromOptions(cfg.Engine)
	sc.Telemetry = tel
	b := &Broker{
		cfg:     cfg,
		rt:      shard.New(sc),
		cancel:  cancel,
		log:     log,
		sources: make(map[string]*Source),
		subs:    make(map[string]map[string]*Sub),
		tel:     tel,
	}
	if err := b.rt.Start(ctx, b.sink); err != nil {
		cancel()
		if log != nil {
			log.Close()
		}
		return nil, err
	}
	if cfg.SourceTimeout > 0 {
		b.wheel = flowgap.NewWheel(cfg.ScanInterval, cfg.SourceTimeout, b.expireSource)
		b.evictStop = make(chan struct{})
		b.evictWG.Add(1)
		go func() {
			defer b.evictWG.Done()
			tk := time.NewTicker(cfg.ScanInterval)
			defer tk.Stop()
			for {
				select {
				case <-b.evictStop:
					return
				case now := <-tk.C:
					b.wheel.Advance(now)
				}
			}
		}()
	}
	return b, nil
}

// expireSource is the wheel's expiry callback: the silent source is
// finished exactly as if its owner had called Finish, off the advance
// loop so a long tail flush cannot stall expiry of other sources.
func (b *Broker) expireSource(data any, _ time.Duration) {
	src := data.(*Source)
	b.evicted.Add(1)
	go src.Finish(context.Background())
}

// Evicted returns the count of sources auto-finished by flow-gap expiry
// (always 0 unless Config.SourceTimeout enabled the tracker).
func (b *Broker) Evicted() uint64 { return b.evicted.Load() }

// EvictedSubs returns the count of subscriptions force-detached for
// blocking past EvictTimeout or dropping past EvictAfterDrops.
func (b *Broker) EvictedSubs() uint64 { return b.evictedSubs.Load() }

// Durable reports whether the broker writes a durable log (Config.DataDir
// was set), i.e. whether resuming subscriptions are accepted.
func (b *Broker) Durable() bool { return b.log != nil }

// LogAppendErrors returns the count of failed durable-log appends
// (durability degraded; delivery continued).
func (b *Broker) LogAppendErrors() uint64 { return b.logAppendErrs.Load() }

// Runtime exposes the shard runtime for metrics.
func (b *Broker) Runtime() *shard.Runtime { return b.rt }

// Results returns the per-source engine results accumulated so far; call
// after the sources finished (or after Close) for settled results.
// Unlike the networked server, the embedded broker retains finished
// sources, so batch runs can read their results.
func (b *Broker) Results() map[string]*core.Result { return b.rt.Results() }

// Metrics returns the per-shard runtime counters.
func (b *Broker) Metrics() []shard.Snapshot { return b.rt.Metrics() }

// Telemetry snapshots the stage-timing histograms and delivery-latency
// quantiles (a zero snapshot when telemetry is disabled). The embedded
// delivery point is the queue hand-off in the sink, so delivery latency
// here spans publish to enqueue, not a socket write.
func (b *Broker) Telemetry() telemetry.Snapshot { return b.tel.Snapshot() }

// sinkState caches the per-source fan-out of the last released
// transmission: the engine-decided destination list is mapped to live
// subscription targets and their labels once per (epoch, list) run
// instead of once per transmission — the in-process mirror of the
// server's encode cache. targets/labels are reallocated (never trimmed
// in place) on recompute because queued Deliveries share the labels
// slice.
type sinkState struct {
	epoch   uint64
	inDests []string
	targets []*Sub
	labels  []string

	// enc and encBuf serve the durable log: on a durable broker the sink
	// encodes each delivered transmission (pruned labels — exactly the
	// bytes a networked subscriber would receive) and appends it before
	// fan-out. Owned by the source's shard worker like the rest of the
	// state, so no locking.
	enc    wire.TransmissionEncoder
	encBuf []byte
}

// Source is one open publisher session.
type Source struct {
	b      *Broker
	name   string
	schema *tuple.Schema

	// subEpoch counts subscriber-registry changes for this source; it is
	// written under Broker.mu and read under its read side. The sink's
	// cache is keyed by it, so a membership change can never serve stale
	// targets or labels.
	subEpoch uint64
	// sink is owned by the source's shard worker (sink calls for one
	// source are serialized), so it needs no locking of its own.
	sink sinkState

	// gap is the source's liveness entry in the broker's flow-gap wheel
	// (untracked when eviction is disabled). Publishes touch it and hold
	// its busy flag across the shard submit, so a source stalled in
	// backpressure is never mistaken for a silent one.
	gap flowgap.Entry

	mu       sync.Mutex
	lastTS   time.Time
	finished bool
	one      [1]*tuple.Tuple // Publish scratch

	// lat estimates the source group's delivery-latency quantiles; fed
	// by the sink at fan-out. Nil when telemetry is disabled.
	lat *telemetry.LatencyPair

	finOnce sync.Once
	finDone chan struct{}
	finErr  error
}

// OpenSource registers a live source: tuples may be published and
// subscribers may join as soon as the call returns. Source names are
// unique for the broker's lifetime (a finished source keeps its name and
// its result; reopening it is an error).
func (b *Broker) OpenSource(name string, schema *tuple.Schema) (*Source, error) {
	if name == "" {
		return nil, fmt.Errorf("broker: empty source name")
	}
	if schema == nil {
		return nil, fmt.Errorf("broker: nil schema for source %q", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errClosed
	}
	if b.sources[name] != nil {
		return nil, fmt.Errorf("broker: source %q already opened", name)
	}
	engine, err := core.NewDynamicEngine(b.cfg.Engine)
	if err != nil {
		return nil, err
	}
	if err := b.rt.AddSourceLive(name, engine); err != nil {
		return nil, err
	}
	src := &Source{b: b, name: name, schema: schema, finDone: make(chan struct{})}
	if b.tel != nil {
		src.lat = telemetry.NewLatencyPair()
	}
	b.sources[name] = src
	b.wheel.Add(&src.gap, src)
	return src, nil
}

// Name returns the source name.
func (s *Source) Name() string { return s.name }

// Schema returns the advertised schema.
func (s *Source) Schema() *tuple.Schema { return s.schema }

// Publish enqueues one tuple for the source's shard, blocking under
// backpressure until either ctx or the broker is done. Timestamps must
// be strictly increasing and the tuple must use the advertised schema —
// the same contract the networked server enforces at ingest.
func (s *Source) Publish(ctx context.Context, t *tuple.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.one[0] = t
	err := s.publishLocked(ctx, s.one[:])
	s.one[0] = nil
	return err
}

// PublishBatch publishes a run of tuples, crossing the shard boundary in
// one synchronization when the ring has room. Per-source calls must be
// serialized by the caller's use of one Source handle (the handle locks
// internally). The slice is not retained.
func (s *Source) PublishBatch(ctx context.Context, tuples []*tuple.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked(ctx, tuples)
}

func (s *Source) publishLocked(ctx context.Context, tuples []*tuple.Tuple) error {
	if s.finished {
		return fmt.Errorf("broker: source %q finished", s.name)
	}
	lastTS := s.lastTS
	for _, t := range tuples {
		if t == nil {
			return fmt.Errorf("broker: nil tuple for source %q", s.name)
		}
		if !t.Schema().Equal(s.schema) {
			return fmt.Errorf("broker: tuple %d does not use the schema %v advertised by source %q", t.Seq, s.schema, s.name)
		}
		if !t.TS.After(lastTS) {
			return fmt.Errorf("broker: tuple %d timestamp %v not after previous %v", t.Seq, t.TS, lastTS)
		}
		lastTS = t.TS
	}
	// The timestamp cursor advances past every validated tuple even if
	// the submit fails partway — mirroring the server, which has decoded
	// (and may have enqueued) them by the time an error surfaces.
	s.lastTS = lastTS
	if w := s.b.wheel; w != nil {
		w.Touch(&s.gap)
		s.gap.SetBusy(true)
		err := s.b.rt.SubmitBatchContext(ctx, s.name, tuples)
		s.gap.SetBusy(false)
		return err
	}
	return s.b.rt.SubmitBatchContext(ctx, s.name, tuples)
}

// Sync is the publish barrier: when it returns, every previously
// published tuple is ordered in the source's shard ring ahead of any
// later membership change. The embedded publish path is synchronous, so
// Sync only reports whether the source is still usable; the networked
// transport gives it real work.
func (s *Source) Sync(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return fmt.Errorf("broker: source %q finished", s.name)
	}
	// A barrier is proof of life even with nothing published.
	s.b.wheel.Touch(&s.gap)
	return nil
}

// Finish ends the stream: the engine's Finish runs on the owning shard,
// its tail is flushed to the subscribers, and their streams end. Finish
// is idempotent; concurrent calls wait for the same completion. If ctx
// expires first, finishing continues in the background and the
// subscribers' streams still end once the tail has flushed.
func (s *Source) Finish(ctx context.Context) error {
	s.finOnce.Do(func() {
		s.mu.Lock()
		s.finished = true
		s.mu.Unlock()
		// Drop the liveness entry; a finished source is not a silent one.
		// (Unclean removal — Finish racing the expiry callback — is fine:
		// sources are heap-allocated and never reused.)
		s.b.wheel.Remove(&s.gap)
		go func() {
			err := s.b.rt.FinishSourceWait(s.name)
			// The finish marker has been processed (or the runtime is
			// gone), so no further sink flush can touch these
			// subscriptions: their queues are complete and may be closed.
			s.b.mu.Lock()
			subs := s.b.subs[s.name]
			delete(s.b.subs, s.name)
			s.b.mu.Unlock()
			for _, sub := range subs {
				sub.finishStream()
			}
			s.finErr = err
			close(s.finDone)
		}()
	})
	select {
	case <-s.finDone:
		return s.finErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// AttachFilter joins a pre-built filter to a source's live group with no
// delivery session: the engine coordinates it and its outputs appear in
// the source's Result, but nothing is fanned out for it. The batch Run
// wrappers in the facade use it to drive finite runs without a delivery
// plane.
func (b *Broker) AttachFilter(ctx context.Context, source string, f filter.Filter) error {
	if f == nil {
		return fmt.Errorf("broker: nil filter for source %q", source)
	}
	return b.rt.ControlContext(ctx, source, func(e *core.Engine) error { return e.AddFilter(f) })
}

// Sub is one live subscription: a bounded queue of deliveries between
// the source's shard worker and the receiving application.
type Sub struct {
	b      *Broker
	app    string
	source string
	schema *tuple.Schema
	spec   quality.Spec

	out chan Delivery
	// fin signals end of stream (closed after the source's final flush,
	// or at broker teardown); out itself is never closed, so a worker's
	// in-flight send can never race the teardown. Buffered deliveries
	// remain receivable after fin closes.
	fin  chan struct{}
	done chan struct{}

	// Resume state. spliceTo is the fence captured inside the AddFilter
	// control closure — it runs on the owning shard worker at a tuple
	// boundary, the same goroutine that appends to the log, so every live
	// delivery for this subscription carries an offset >= spliceTo and the
	// replayed history [resumeFrom, spliceTo) tiles the log exactly.
	resume     bool
	resumeFrom uint64
	spliceTo   uint64
	// replay carries the history records; the replay goroutine closes it
	// at the fence (replayErr is written first, and is safe to read after
	// observing the close). Recv drains replay before touching live
	// deliveries; the consumer side of a Sub is single-threaded, as on
	// every other transport.
	replay    chan Delivery
	replayErr error

	leaveOnce sync.Once
	finOnce   sync.Once
	dropped   atomic.Uint64

	// Degrade-policy state (nil/zero under other policies, or when the
	// subscription's filter is not adapt.Scalable). The governor is driven
	// only by the source's shard worker (send calls are serialized), so it
	// needs no lock; the decided target crosses to scaleLoop — which must
	// be a separate goroutine, since Control from the worker would
	// deadlock — via targetScale + scaleKick, and the scale in effect is
	// published in applied for QoS.
	gov         *adapt.Governor
	scalable    adapt.Scalable
	scaleKick   chan struct{}
	targetScale atomic.Uint64 // float64 bits
	applied     atomic.Uint64 // float64 bits

	// evictMsg latches the eviction reason before done closes, so a
	// receiver unblocked by the close observes it (the close is the
	// happens-before edge).
	evictOnce sync.Once
	evictMsg  atomic.Pointer[string]

	// lat estimates this subscription's delivery-latency quantiles; fed
	// by the sink at enqueue. Nil when telemetry is disabled.
	lat *telemetry.LatencyPair
}

// Latency snapshots the subscription's delivery-latency quantiles (zero
// when telemetry is disabled).
func (s *Sub) Latency() telemetry.LatencySnapshot { return s.lat.Snapshot() }

// SubOptions parameterizes Subscribe.
type SubOptions struct {
	// Queue bounds the delivery queue; 0 accepts the broker default, and
	// requests are clamped to Config.MaxSubscriberQueue.
	Queue int
	// Resume asks for a catch-up subscription on a durable broker: the
	// source's log records in [ResumeFrom, fence) addressed to this app
	// are delivered first (in order, with their offsets), then the live
	// stream continues seamlessly from the fence.
	Resume     bool
	ResumeFrom uint64
}

// Subscribe joins a source's live filter group with a quality
// specification. The join is applied by the source's owning shard worker
// at a tuple boundary: the subscriber sees exactly the tuples published
// after Subscribe returns, and the group is re-derived without
// disturbing the source's other subscribers. With o.Resume set (durable
// brokers only) the subscription first replays the source's history from
// o.ResumeFrom up to the join fence, then continues live — gapless and
// duplicate-free.
func (b *Broker) Subscribe(ctx context.Context, app, source string, spec quality.Spec, o SubOptions) (*Sub, error) {
	if app == "" {
		return nil, fmt.Errorf("broker: empty app name")
	}
	queue := o.Queue
	if queue < 0 {
		return nil, fmt.Errorf("broker: negative queue depth %d", queue)
	}
	if o.Resume && b.log == nil {
		return nil, fmt.Errorf("broker: resume requested but the broker has no durable log (set Config.DataDir)")
	}
	f, err := spec.Build(app)
	if err != nil {
		return nil, err
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errClosed
	}
	if o.Resume {
		if head := b.log.NextOffset(source); o.ResumeFrom > head {
			b.mu.Unlock()
			return nil, fmt.Errorf("broker: resume offset %d is beyond the log head %d of source %q", o.ResumeFrom, head, source)
		}
	}
	src := b.sources[source]
	if src == nil {
		b.mu.Unlock()
		return nil, fmt.Errorf("broker: unknown source %q", source)
	}
	for _, attr := range spec.Attrs {
		if !src.schema.Has(attr) {
			b.mu.Unlock()
			return nil, fmt.Errorf("broker: source %q has no attribute %q (schema %v)", source, attr, src.schema)
		}
	}
	if b.subs[source][app] != nil {
		b.mu.Unlock()
		return nil, fmt.Errorf("broker: app %q already subscribed to %q", app, source)
	}
	// The wire protocol labels every destination with a u8 count; the
	// embedded broker mirrors the limit so a group accepted here stays
	// deliverable over any transport.
	if len(b.subs[source]) >= wire.MaxDestinations {
		b.mu.Unlock()
		return nil, fmt.Errorf("broker: source %q already has %d subscribers (wire limit)", source, wire.MaxDestinations)
	}
	if queue <= 0 {
		queue = b.cfg.SubscriberQueue
	}
	if queue > b.cfg.MaxSubscriberQueue {
		queue = b.cfg.MaxSubscriberQueue
	}
	sub := &Sub{
		b:          b,
		app:        app,
		source:     source,
		schema:     src.schema,
		spec:       spec,
		out:        make(chan Delivery, queue),
		fin:        make(chan struct{}),
		done:       make(chan struct{}),
		resume:     o.Resume,
		resumeFrom: o.ResumeFrom,
	}
	if b.tel != nil {
		sub.lat = telemetry.NewLatencyPair()
	}
	if b.cfg.Policy == Degrade {
		if sc, ok := f.(adapt.Scalable); ok {
			gov, gerr := adapt.NewGovernor(b.cfg.Degrade)
			if gerr != nil {
				b.mu.Unlock()
				return nil, fmt.Errorf("broker: %w", gerr)
			}
			sub.gov, sub.scalable = gov, sc
			sub.scaleKick = make(chan struct{}, 1)
			sub.targetScale.Store(math.Float64bits(1))
			sub.applied.Store(math.Float64bits(1))
		}
	}
	if sub.resume {
		sub.replay = make(chan Delivery)
	}
	if b.subs[source] == nil {
		b.subs[source] = make(map[string]*Sub)
	}
	// Registered before the filter joins the group, so the first delivery
	// the engine decides for this app finds its queue.
	b.subs[source][app] = sub
	src.subEpoch++
	b.mu.Unlock()

	err = b.rt.ControlContext(ctx, source, func(e *core.Engine) error {
		if err := e.AddFilter(f); err != nil {
			return err
		}
		if sub.resume {
			// The splice fence: this closure runs on the owning shard
			// worker at a tuple boundary, so no append for this source can
			// interleave — history is everything before this point, live is
			// everything after.
			sub.spliceTo = b.log.NextOffset(source)
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The cancelled wait may have left the AddFilter enqueued — it
			// will still run at its tuple boundary. Retract it behind it
			// (same ring, so the retraction is ordered after the join) so
			// no ghost member coordinates the group; the registry entry —
			// and with it the app name — is released only once the
			// retraction settled.
			go func() {
				_ = b.rt.Control(source, func(e *core.Engine) error { return e.RemoveFilter(app) })
				b.dropSubEntry(sub)
			}()
		} else {
			b.dropSubEntry(sub)
		}
		return nil, fmt.Errorf("broker: joining group of %q: %w", source, err)
	}
	if sub.resume {
		go sub.runReplay()
	}
	if sub.gov != nil {
		go sub.scaleLoop()
	}
	return sub, nil
}

// runReplay streams the log records of [resumeFrom, spliceTo) addressed
// to this app onto the replay channel, in offset order, then closes it.
// Records naming other apps only (delivered while this one was away) are
// skipped. A decode or read failure is recorded in replayErr before the
// close, so the consumer surfaces it instead of silently skipping to the
// live stream over a gap.
func (s *Sub) runReplay() {
	defer close(s.replay)
	err := s.b.log.Read(s.source, s.resumeFrom, s.spliceTo, func(off uint64, payload []byte) error {
		t, dests, _, err := wire.DecodeTransmission(s.schema, payload)
		if err != nil {
			return fmt.Errorf("broker: replaying %q at offset %d: %w", s.source, off, err)
		}
		if !slices.Contains(dests, s.app) {
			return nil
		}
		select {
		case s.replay <- Delivery{Tuple: t, Destinations: dests, Offset: off}:
			return nil
		case <-s.done:
			return errReplayAborted
		}
	})
	if err != nil && !errors.Is(err, errReplayAborted) {
		s.replayErr = err
	}
}

// errReplayAborted marks a replay cut short by the subscription's own
// departure — an orderly exit, not a failure.
var errReplayAborted = errors.New("broker: replay aborted by departure")

// dropSubEntry removes a subscription from the registry (the engine side
// has already been handled — or never joined).
func (b *Broker) dropSubEntry(sub *Sub) {
	b.mu.Lock()
	if m := b.subs[sub.source]; m != nil && m[sub.app] == sub {
		delete(m, sub.app)
		if src := b.sources[sub.source]; src != nil {
			src.subEpoch++
		}
	}
	b.mu.Unlock()
}

// App returns the application name of this subscription.
func (s *Sub) App() string { return s.app }

// Source returns the subscribed source name.
func (s *Sub) Source() string { return s.source }

// Schema returns the source schema.
func (s *Sub) Schema() *tuple.Schema { return s.schema }

// Spec returns the parsed quality specification the subscription joined
// with.
func (s *Sub) Spec() quality.Spec { return s.spec }

// QueueDepth returns the delivery queue depth in effect (the requested
// depth after defaulting and clamping).
func (s *Sub) QueueDepth() int { return cap(s.out) }

// Dropped returns the deliveries lost to the drop slow-consumer policy
// (or to departure).
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// QoS returns the quality scale currently applied to this subscription
// by the Degrade policy: 1 means full fidelity, larger means the
// effective spec has been coarsened by that factor. Always 1 under other
// policies or when the subscription's filter cannot scale.
func (s *Sub) QoS() float64 {
	if s.gov == nil {
		return 1
	}
	return math.Float64frombits(s.applied.Load())
}

// Recv blocks for the next delivery until ctx is done. It returns
// ErrStreamEnded once the stream ends gracefully (the source finished,
// the broker closed, or this subscription left the group).
func (s *Sub) Recv(ctx context.Context) (Delivery, error) {
	var d Delivery
	err := s.RecvInto(ctx, &d)
	return d, err
}

// RecvInto is Recv decoding into d. The embedded transport shares tuples
// and label slices immutably, so unlike the networked RecvInto there is
// no aliasing hazard; the variant exists so both transports satisfy one
// interface with the allocation profile each can offer.
func (s *Sub) RecvInto(ctx context.Context, d *Delivery) error {
	deliver := func(dv Delivery) {
		d.Tuple, d.Destinations, d.Offset = dv.Tuple, dv.Destinations, dv.Offset
		d.ReceivedAt = time.Now()
	}
	// History first: a resuming subscription drains the replay channel
	// before any live delivery. Live deliveries buffer in out meanwhile
	// (they all carry offsets >= spliceTo), so the two phases tile into
	// one seamless stream. The consumer side of a Sub is single-threaded,
	// so clearing s.replay after observing its close is safe — and the
	// close happens-before that read, making replayErr visible. replayErr
	// is only read once s.replay is nil (i.e. after the close was
	// observed), and a failed replay is terminal: falling through to the
	// live stream would silently cross the gap.
	if s.replay == nil && s.replayErr != nil {
		return s.replayErr
	}
	for s.replay != nil {
		select {
		case dv, ok := <-s.replay:
			if !ok {
				s.replay = nil
				if s.replayErr != nil {
					return s.replayErr
				}
				continue // fall through to the live stream
			}
			deliver(dv)
			return nil
		case <-s.done:
			return s.endErr()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	select {
	case dv := <-s.out:
		deliver(dv)
		return nil
	case <-s.fin:
		// The stream has ended; drain what is still buffered before
		// reporting the end.
		select {
		case dv := <-s.out:
			deliver(dv)
			return nil
		default:
			return s.endErr()
		}
	case <-s.done:
		return s.endErr()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// endErr reports why the stream ended: a wrapped ErrEvicted when the
// broker force-detached the subscription, plain ErrStreamEnded otherwise.
func (s *Sub) endErr() error {
	if msg := s.evictMsg.Load(); msg != nil {
		return fmt.Errorf("%w: %s", ErrEvicted, *msg)
	}
	return ErrStreamEnded
}

// Close leaves the group: the subscription's filter is removed from the
// live engine at a tuple boundary, re-deriving the group for the
// remaining members, and later deliveries stop. Outputs the group still
// owes the departed application decide normally; their labels are pruned
// from the remaining subscribers' deliveries, exactly as on the wire.
func (s *Sub) Close(ctx context.Context) error {
	s.leaveOnce.Do(func() { close(s.done) })
	s.b.mu.RLock()
	registered := s.b.subs[s.source][s.app] == s
	s.b.mu.RUnlock()
	if !registered {
		// Already detached — by eviction, a failed join's cleanup, or a
		// previous Close; the engine no longer knows this member.
		return nil
	}
	err := s.b.rt.ControlContext(ctx, s.source, func(e *core.Engine) error { return e.RemoveFilter(s.app) })
	s.b.dropSubEntry(s)
	if err != nil {
		// The source may have finished (or the broker drained)
		// concurrently; its teardown already retired the whole group.
		if errors.Is(err, shard.ErrSourceFinished) || errors.Is(err, shard.ErrUnknownSource) || errors.Is(err, shard.ErrDrained) {
			return nil
		}
		return err
	}
	return nil
}

// send enqueues one delivery under the slow-consumer policy. It is
// called from shard workers; deliveries for one source arrive from one
// worker at a time, in release order. A blocking send is bounded by
// Config.EvictTimeout: a subscriber that cannot absorb a delivery
// within it is evicted (marked departed and detached asynchronously),
// exactly as the server disconnects a subscriber that cannot absorb a
// frame within its write timeout — otherwise an abandoned subscription
// would park the worker forever.
func (s *Sub) send(d Delivery) {
	select {
	case <-s.done:
		s.dropped.Add(1)
		return
	default:
	}
	if s.b.cfg.Policy == Drop {
		select {
		case s.out <- d:
		default:
			s.dropDelivery()
		}
		return
	}
	if s.gov != nil {
		// Degrade: sample pressure before the (blocking) hand-off so a
		// filling queue coarsens the spec before it wedges the worker.
		s.observePressure()
	}
	select {
	case s.out <- d:
		return
	case <-s.done:
		s.dropped.Add(1)
		return
	default:
	}
	if s.b.cfg.EvictTimeout < 0 {
		select {
		case s.out <- d:
		case <-s.done:
			s.dropped.Add(1)
		}
		return
	}
	t := time.NewTimer(s.b.cfg.EvictTimeout)
	defer t.Stop()
	select {
	case s.out <- d:
	case <-s.done:
		s.dropped.Add(1)
	case <-t.C:
		s.dropped.Add(1)
		s.evictAsync(fmt.Sprintf("delivery blocked longer than EvictTimeout (%v)", s.b.cfg.EvictTimeout))
	}
}

// dropDelivery counts a drop-policy loss and evicts the subscription once
// the configured threshold is crossed — a consumer that persistently
// cannot keep up learns it was cut off instead of losing data silently.
func (s *Sub) dropDelivery() {
	n := s.dropped.Add(1)
	if limit := s.b.cfg.EvictAfterDrops; limit > 0 && n >= uint64(limit) {
		s.evictAsync(fmt.Sprintf("%d deliveries dropped (limit %d)", n, limit))
	}
}

// evictAsync force-detaches the subscription: the eviction reason is
// latched (so Recv surfaces ErrEvicted rather than a bare stream end),
// the subscription is marked departed, and the engine-side retraction is
// handed to a goroutine — it must not run on the calling shard worker,
// since Control would enqueue into the very ring that worker drains.
func (s *Sub) evictAsync(reason string) {
	s.evictOnce.Do(func() {
		select {
		case <-s.done:
			// Already departed (Close, or broker teardown); nothing to
			// report and nothing left to detach.
			return
		default:
		}
		msg := reason
		s.evictMsg.Store(&msg)
		s.b.evictedSubs.Add(1)
		s.leaveOnce.Do(func() { close(s.done) })
		go func() {
			err := s.b.rt.Control(s.source, func(e *core.Engine) error { return e.RemoveFilter(s.app) })
			_ = err // the source may already be finishing; teardown retires the group
			s.b.dropSubEntry(s)
		}()
	})
}

// observePressure feeds the degrade governor one sample (queue occupancy
// plus delivery p99) and, on a verdict, publishes the new target scale to
// scaleLoop. Called only from the source's shard worker, which serializes
// all sends for this subscription, so the governor needs no lock.
func (s *Sub) observePressure() {
	var p99 time.Duration
	if s.lat != nil {
		p99 = s.lat.Snapshot().P99
	}
	scale, changed := s.gov.Observe(time.Now(), len(s.out), cap(s.out), p99)
	if !changed {
		return
	}
	s.targetScale.Store(math.Float64bits(scale))
	select {
	case s.scaleKick <- struct{}{}:
	default: // a kick is already pending; it will read the newest target
	}
}

// scaleLoop applies governor verdicts to the live filter from its own
// goroutine: SetScale must run on the owning shard worker via Control at
// a tuple boundary, and calling Control from the worker itself (inside
// send) would deadlock. Targets are absolute, so coalesced kicks applying
// only the newest value are correct.
func (s *Sub) scaleLoop() {
	for {
		select {
		case <-s.done:
			return
		case <-s.fin:
			return
		case <-s.scaleKick:
		}
		target := math.Float64frombits(s.targetScale.Load())
		err := s.b.rt.Control(s.source, func(e *core.Engine) error { return s.scalable.SetScale(target) })
		if err != nil {
			continue // source finishing or broker draining; nothing to scale
		}
		s.applied.Store(math.Float64bits(target))
	}
}

// finishStream marks the end of the stream after the source's last
// flush: pending deliveries remain receivable, then Recv returns
// ErrStreamEnded. The delivery channel itself is never closed, so even
// an aborted teardown racing a blocked sink send stays safe.
func (s *Sub) finishStream() {
	s.finOnce.Do(func() { close(s.fin) })
}

// sink receives batched released transmissions from the shard workers
// and fans each out to the live subscriptions named in its destination
// list. Per-source calls are serialized by the owning worker, so each
// subscription's stream arrives in release order. The live-target cache
// mirrors the server's sink: targets and labels are recomputed only when
// the membership epoch or the destination pattern changes.
func (b *Broker) sink(batch []shard.Out) {
	var fanStart time.Time
	if b.tel.Sample(telemetry.StageFanout) {
		fanStart = time.Now()
	}
	for i := range batch {
		o := &batch[i]
		b.mu.RLock()
		src := b.sources[o.Source]
		var targets []*Sub
		var labels []string
		if src != nil {
			st := &src.sink
			if st.epoch != src.subEpoch || !slices.Equal(st.inDests, o.Tr.Destinations) {
				st.epoch, st.inDests = src.subEpoch, o.Tr.Destinations
				// Fresh slices on recompute: queued Deliveries alias the
				// previous labels slice, which must stay immutable.
				st.targets, st.labels = nil, nil
				for _, app := range o.Tr.Destinations {
					if sub := b.subs[o.Source][app]; sub != nil {
						st.targets = append(st.targets, sub)
						st.labels = append(st.labels, app)
					}
				}
			}
			targets, labels = st.targets, st.labels
		}
		b.mu.RUnlock()
		if len(targets) == 0 {
			continue
		}
		// Durable brokers append before fan-out (outside the registry lock;
		// sinkState is owned by this worker). The log carries exactly the
		// bytes a networked subscriber receives — the transmission with its
		// labels pruned to the live group — so replays are byte-equivalent
		// across transports. An append failure degrades durability, not
		// delivery: it is counted and the delivery proceeds offset-less.
		var off uint64
		if b.log != nil {
			st := &src.sink
			payload, err := st.enc.AppendTransmission(st.encBuf[:0], st.epoch, o.Tr.Tuple, labels)
			if err == nil {
				st.encBuf = payload
				off, err = b.log.Append(o.Source, payload)
			}
			if err != nil {
				b.logAppendErrs.Add(1)
				off = 0
			}
		}
		if b.tel != nil {
			// The embedded delivery point is the queue hand-off: one
			// clock read per transmission feeds the group and aggregate
			// estimators; each target's session estimator sees the same
			// instant (the enqueue loop below is non-blocking in the
			// common case).
			d := time.Since(o.Tr.Tuple.TS)
			src.lat.Observe(d)
			for range targets {
				b.tel.ObserveDelivery(d)
			}
			for _, sub := range targets {
				sub.lat.Observe(d)
			}
		}
		for _, sub := range targets {
			sub.send(Delivery{Tuple: o.Tr.Tuple, Destinations: labels, Offset: off})
		}
	}
	if !fanStart.IsZero() {
		b.tel.Observe(telemetry.StageFanout, time.Since(fanStart))
	}
}

// Close drains the broker: open sources are finished (flushing their
// tails through their subscribers), the shard runtime drains, and every
// remaining subscription stream ends. ctx bounds the graceful drain; on
// expiry the runtime is cancelled and the remaining work aborted.
// Publishes racing Close fail with an error rather than being silently
// dropped.
func (b *Broker) Close(ctx context.Context) error {
	b.closeOnce.Do(func() { b.closeErr = b.close(ctx) })
	return b.closeErr
}

func (b *Broker) close(ctx context.Context) error {
	// Stop flow-gap expiry first: Close owns the remaining finishes, and
	// an eviction racing the drain would only duplicate them.
	if b.wheel != nil {
		close(b.evictStop)
		b.evictWG.Wait()
	}
	b.mu.Lock()
	b.closed = true
	srcs := make([]*Source, 0, len(b.sources))
	for _, src := range b.sources {
		srcs = append(srcs, src)
	}
	b.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		var errs []error
		for _, src := range srcs {
			src.mu.Lock()
			finished := src.finished
			src.mu.Unlock()
			if finished {
				continue
			}
			if err := src.Finish(context.Background()); err != nil {
				errs = append(errs, err)
			}
		}
		if err := b.rt.Drain(); err != nil {
			errs = append(errs, err)
		}
		done <- errors.Join(errs...)
	}()

	var drainErr error
	aborted := false
	select {
	case drainErr = <-done:
	case <-ctx.Done():
		// Hard abort: cancel the runtime so blocked feeds, controls and
		// finish waits unwind, and mark every subscription departed so a
		// worker parked in a blocking send (full queue, no consumer) is
		// released — context cancellation alone cannot reach it.
		aborted = true
		b.cancel()
		b.leaveAll()
		drainErr = <-done
	}
	b.cancel()

	// The workers are gone, so no sink append can race the log close.
	// Replay goroutines may still be reading — reads work on snapshots
	// (os.ReadFile), so they are unaffected.
	if b.log != nil {
		if err := b.log.Close(); err != nil {
			drainErr = errors.Join(drainErr, err)
		}
	}

	// Workers are gone, so no sink flush can race these closes; any
	// subscription still open gets its stream ended.
	b.mu.Lock()
	var rest []*Sub
	for _, m := range b.subs {
		for _, sub := range m {
			rest = append(rest, sub)
		}
	}
	b.subs = make(map[string]map[string]*Sub)
	b.mu.Unlock()
	for _, sub := range rest {
		sub.finishStream()
	}
	if aborted {
		// The abort cancelled the runtime on purpose; surfacing the
		// cancellation itself would make every bounded Close fail.
		return stripCtxErrs(drainErr)
	}
	return drainErr
}

// leaveAll marks every subscription departed, releasing any shard worker
// blocked on a full delivery queue.
func (b *Broker) leaveAll() {
	b.mu.RLock()
	var all []*Sub
	for _, m := range b.subs {
		for _, sub := range m {
			all = append(all, sub)
		}
	}
	b.mu.RUnlock()
	for _, sub := range all {
		sub.leaveOnce.Do(func() { close(sub.done) })
	}
}

// stripCtxErrs removes context-cancellation errors from a (possibly
// joined) error tree, keeping real failures.
func stripCtxErrs(err error) error {
	if err == nil {
		return nil
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		var keep []error
		for _, e := range joined.Unwrap() {
			if e = stripCtxErrs(e); e != nil {
				keep = append(keep, e)
			}
		}
		return errors.Join(keep...)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}
