package broker

import (
	"context"
	"errors"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/quality"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func passAllSpec(t *testing.T) quality.Spec {
	t.Helper()
	// Slack 0 makes every tuple a closed singleton set: pass-all.
	return quality.MustParse("DC1(v, 0.5, 0)")
}

func openBench(t *testing.T, b *Broker) *Source {
	t.Helper()
	schema := tuple.MustSchema("v")
	src, err := b.OpenSource("bench", schema)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func publishSeq(t *testing.T, ctx context.Context, src *Source, start, n int) {
	t.Helper()
	schema := src.Schema()
	batch := make([]*tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		seq := start + i
		batch = append(batch, tuple.MustNew(schema, seq, trace.Epoch.Add(time.Duration(seq)*time.Millisecond), []float64{float64(seq)}))
	}
	if err := src.PublishBatch(ctx, batch); err != nil {
		t.Fatalf("publish: %v", err)
	}
}

// TestPubSubChurn drives the full dynamic lifecycle in-process: two
// subscribers, a mid-stream join at a Sync barrier, a mid-stream leave,
// and a graceful finish that ends every stream.
func TestPubSubChurn(t *testing.T) {
	ctx := testCtx(t)
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)
	src := openBench(t, b)

	subA, err := b.Subscribe(ctx, "a", "bench", passAllSpec(t), SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	subB, err := b.Subscribe(ctx, "b", "bench", passAllSpec(t), SubOptions{})
	if err != nil {
		t.Fatal(err)
	}

	type recvCount struct {
		name string
		n    int
	}
	done := make(chan recvCount, 3)
	consume := func(name string, sub *Sub) {
		go func() {
			n := 0
			for {
				_, err := sub.Recv(ctx)
				if errors.Is(err, ErrStreamEnded) {
					break
				}
				if err != nil {
					t.Errorf("%s: recv: %v", name, err)
					break
				}
				n++
			}
			done <- recvCount{name, n}
		}()
	}
	consume("a", subA)

	publishSeq(t, ctx, src, 0, 50)
	if err := src.Sync(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}
	subC, err := b.Subscribe(ctx, "c", "bench", passAllSpec(t), SubOptions{})
	if err != nil {
		t.Fatalf("mid-stream join: %v", err)
	}
	consume("c", subC)
	// b leaves without ever consuming; its queued deliveries are
	// discarded and the group re-derives for a and c.
	if err := subB.Close(ctx); err != nil {
		t.Fatalf("leave: %v", err)
	}
	publishSeq(t, ctx, src, 50, 50)
	if err := src.Finish(ctx); err != nil {
		t.Fatalf("finish: %v", err)
	}
	counts := make(map[string]int)
	for i := 0; i < 2; i++ {
		rc := <-done
		counts[rc.name] = rc.n
	}
	if counts["a"] != 100 {
		t.Errorf("a received %d deliveries, want 100 (pass-all over the whole stream)", counts["a"])
	}
	if counts["c"] != 50 {
		t.Errorf("c received %d deliveries, want 50 (joined at the barrier)", counts["c"])
	}
	res := b.Results()["bench"]
	if res == nil || res.Stats.Inputs != 100 {
		t.Fatalf("results missing or wrong inputs: %+v", res)
	}
}

// TestQueueDepthPropagation pins the subscription queue depth plumbing:
// explicit requests are honored, zero takes the broker default, and
// oversized requests clamp to the configured maximum.
func TestQueueDepthPropagation(t *testing.T) {
	ctx := testCtx(t)
	b, err := New(Config{SubscriberQueue: 7, MaxSubscriberQueue: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)
	openBench(t, b)

	sub, err := b.Subscribe(ctx, "explicit", "bench", passAllSpec(t), SubOptions{Queue: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.QueueDepth(); got != 3 {
		t.Errorf("explicit queue depth = %d, want 3", got)
	}
	sub, err = b.Subscribe(ctx, "default", "bench", passAllSpec(t), SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.QueueDepth(); got != 7 {
		t.Errorf("default queue depth = %d, want 7", got)
	}
	sub, err = b.Subscribe(ctx, "clamped", "bench", passAllSpec(t), SubOptions{Queue: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.QueueDepth(); got != 100 {
		t.Errorf("clamped queue depth = %d, want 100", got)
	}
}

// TestDropPolicy checks the drop slow-consumer policy: a subscriber that
// never consumes keeps at most its queue depth and the overflow is
// counted, while the publisher is never stalled.
func TestDropPolicy(t *testing.T) {
	ctx := testCtx(t)
	b, err := New(Config{Policy: Drop})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)
	src := openBench(t, b)
	sub, err := b.Subscribe(ctx, "slow", "bench", passAllSpec(t), SubOptions{Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	publishSeq(t, ctx, src, 0, 200)
	if err := src.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	received := 0
	for {
		if _, err := sub.Recv(ctx); err != nil {
			break
		}
		received++
	}
	if received > 2 {
		t.Errorf("received %d deliveries with queue depth 2", received)
	}
	if got := sub.Dropped(); got < 190 {
		t.Errorf("dropped = %d, want most of the 200 pass-all deliveries", got)
	}
}

// TestSubscribeValidation covers the rejection paths shared with the
// networked server.
func TestSubscribeValidation(t *testing.T) {
	ctx := testCtx(t)
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	src := openBench(t, b)
	if _, err := b.Subscribe(ctx, "a", "nope", passAllSpec(t), SubOptions{}); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := b.Subscribe(ctx, "a", "bench", quality.MustParse("DC1(other, 1, 0.5)"), SubOptions{}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := b.Subscribe(ctx, "a", "bench", passAllSpec(t), SubOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(ctx, "a", "bench", passAllSpec(t), SubOptions{}); err == nil {
		t.Error("duplicate app should fail")
	}
	if _, err := b.OpenSource("bench", src.Schema()); err == nil {
		t.Error("duplicate source should fail")
	}
	if err := b.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := b.Subscribe(ctx, "late", "bench", passAllSpec(t), SubOptions{}); err == nil {
		t.Error("subscribe after close should fail")
	}
	if _, err := b.OpenSource("late", src.Schema()); err == nil {
		t.Error("open after close should fail")
	}
}

// TestPublishValidation pins the ingest contract: schema binding and
// strictly increasing timestamps, as on the wire.
func TestPublishValidation(t *testing.T) {
	ctx := testCtx(t)
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)
	src := openBench(t, b)
	good := tuple.MustNew(src.Schema(), 0, trace.Epoch.Add(time.Second), []float64{1})
	if err := src.Publish(ctx, good); err != nil {
		t.Fatal(err)
	}
	stale := tuple.MustNew(src.Schema(), 1, trace.Epoch.Add(time.Second), []float64{2})
	if err := src.Publish(ctx, stale); err == nil {
		t.Error("non-increasing timestamp should fail")
	}
	other := tuple.MustNew(tuple.MustSchema("w"), 2, trace.Epoch.Add(2*time.Second), []float64{3})
	if err := src.Publish(ctx, other); err == nil {
		t.Error("foreign schema should fail")
	}
	// An equal schema built separately is fine — binding is by names.
	same := tuple.MustNew(tuple.MustSchema("v"), 3, trace.Epoch.Add(3*time.Second), []float64{4})
	if err := src.Publish(ctx, same); err != nil {
		t.Errorf("equal schema rejected: %v", err)
	}
	if err := src.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if err := src.Publish(ctx, good); err == nil {
		t.Error("publish after finish should fail")
	}
}

// TestBlockEvictionUnwedgesGracefulClose proves an abandoned blocking
// subscription cannot wedge the broker forever: after EvictTimeout the
// subscriber is treated as departed, the worker resumes, and a graceful
// Close with an unbounded context completes. The active subscriber is
// undisturbed.
func TestBlockEvictionUnwedgesGracefulClose(t *testing.T) {
	ctx := testCtx(t)
	b, err := New(Config{
		Policy:       Block,
		EvictTimeout: 100 * time.Millisecond,
		Engine:       core.Options{ShardCount: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := openBench(t, b)
	abandoned, err := b.Subscribe(ctx, "abandoned", "bench", passAllSpec(t), SubOptions{Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	active, err := b.Subscribe(ctx, "active", "bench", passAllSpec(t), SubOptions{Queue: 1024})
	if err != nil {
		t.Fatal(err)
	}
	publishSeq(t, ctx, src, 0, 32) // more than the abandoned queue holds
	start := time.Now()
	if err := b.Close(context.Background()); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("graceful close took %v despite eviction", elapsed)
	}
	// The evicted subscription may still drain what its queue buffered
	// before eviction, then reports the stream end.
	buffered := 0
	for {
		_, err := abandoned.Recv(ctx)
		if err != nil {
			if !errors.Is(err, ErrEvicted) {
				t.Errorf("evicted subscription Recv = %v, want ErrEvicted", err)
			}
			break
		}
		buffered++
	}
	if buffered > 1 {
		t.Errorf("evicted subscription drained %d deliveries, queue depth is 1", buffered)
	}
	got := 0
	for {
		if _, err := active.Recv(ctx); err != nil {
			break
		}
		got++
	}
	if got != 32 {
		t.Errorf("active subscriber received %d deliveries, want all 32", got)
	}
	if abandoned.Dropped() == 0 {
		t.Error("eviction should count dropped deliveries")
	}
}

// TestCloseAbortUnblocks proves a bounded Close aborts a drain wedged by
// a blocking subscriber that nobody consumes: the worker parked on the
// full queue is released and Close returns within the context bound.
func TestCloseAbortUnblocks(t *testing.T) {
	b, err := New(Config{Policy: Block, Engine: core.Options{ShardCount: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	src := openBench(t, b)
	if _, err := b.Subscribe(ctx, "stuck", "bench", passAllSpec(t), SubOptions{Queue: 1}); err != nil {
		t.Fatal(err)
	}
	// More pass-all tuples than the queue holds: the worker blocks
	// sending delivery #2.
	publishSeq(t, ctx, src, 0, 16)
	closeCtx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_ = b.Close(closeCtx)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("aborted close took %v", elapsed)
	}
}

// TestSourceEviction proves embedded flow-gap expiry: a source that
// goes silent past SourceTimeout is auto-finished (its subscriber's
// stream ends), while a source that keeps publishing — and one parked
// at Sync barriers — survive.
func TestSourceEviction(t *testing.T) {
	b, err := New(Config{
		Engine:        core.Options{ShardCount: 1},
		SourceTimeout: 150 * time.Millisecond,
		ScanInterval:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	defer b.Close(ctx)

	schema := tuple.MustSchema("v")
	silent, err := b.OpenSource("silent", schema)
	if err != nil {
		t.Fatal(err)
	}
	live, err := b.OpenSource("live", schema)
	if err != nil {
		t.Fatal(err)
	}
	barrier, err := b.OpenSource("barrier", schema)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe(ctx, "watcher", "silent", passAllSpec(t), SubOptions{})
	if err != nil {
		t.Fatal(err)
	}

	publishSeq(t, ctx, silent, 0, 4)
	// silent now goes quiet; live publishes and barrier Syncs through
	// several timeouts.
	deadline := time.Now().Add(600 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		publishSeq(t, ctx, live, i, 1)
		if err := barrier.Sync(ctx); err != nil {
			t.Fatalf("sync: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The silent source's stream must have ended: drain the deliveries,
	// then expect the end-of-stream sentinel.
	got := 0
	for {
		recvCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := sub.Recv(recvCtx)
		cancel()
		if err != nil {
			if !errors.Is(err, ErrStreamEnded) {
				t.Fatalf("Recv: %v, want ErrStreamEnded", err)
			}
			break
		}
		got++
	}
	if got == 0 {
		t.Error("published deliveries lost to eviction")
	}
	if n := b.Evicted(); n != 1 {
		t.Errorf("Evicted = %d, want 1 (only the silent source)", n)
	}
	// Survivors still work.
	publishSeq(t, ctx, live, 10_000, 1)
	if err := barrier.Sync(ctx); err != nil {
		t.Errorf("barrier source evicted despite Syncs: %v", err)
	}
}
