// Package seglog implements the durable, append-only, per-source
// segmented log behind resumable subscriptions (DESIGN.md §11). The
// dissemination layer already encodes every released transmission
// exactly once (the pooled fan-out frame); this package persists those
// encoded bytes on the publish path, assigning each record a dense
// per-source offset, so a subscriber can later replay the stream it
// missed and splice into the live feed without gaps or duplicates.
//
// Layout: one directory per source (the source name hex-encoded, so any
// name is a safe path component) holding segment files named by the
// offset of their first record:
//
//	<dir>/<hex(source)>/<%016x first-offset>.seg
//
// A segment file is an 8-byte magic followed by records:
//
//	record: u64 offset | u32 payload length | u32 CRC32 (IEEE) of payload | payload
//
// (integers little-endian). Offsets are dense (0, 1, 2, ...) per
// source; the offset is stored redundantly so recovery can verify the
// chain. Startup recovery scans every segment, keeps the longest valid
// prefix, truncates a torn tail in place, and drops segments stranded
// behind a corrupt one — the log is always a prefix of what was
// appended, never a sequence with holes.
//
// Appends for one source are serialized by the caller (the shard worker
// that owns the source's sink flushes); readers run concurrently with
// appends and observe a consistent snapshot taken at read start.
package seglog

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Magic opens every segment file; a file without it is not a segment.
const Magic = "gasfsg01"

// MaxPayload bounds one record payload, mirroring the wire protocol's
// frame limit: anything larger could never have crossed the fan-out.
const MaxPayload = 1 << 20

// recordHeaderLen is the encoded size of a record header.
const recordHeaderLen = 8 + 4 + 4

// Policy selects when appended records are forced to stable storage.
type Policy int

const (
	// SyncInterval fsyncs dirty segments from a background ticker every
	// Options.Interval — bounded data loss on power failure, negligible
	// cost on the publish path. The default.
	SyncInterval Policy = iota
	// SyncNever leaves persistence to the OS page cache. Crash-safe
	// against process death (the cache survives), not power loss.
	SyncNever
	// SyncAlways fsyncs after every append — no loss window, publish
	// path pays a disk flush per record.
	SyncAlways
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy reads a policy name ("interval", "never" or "always").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("seglog: unknown fsync policy %q (want interval, never or always)", s)
	}
}

// Options tunes a Log. The zero value rotates at 64 MiB and fsyncs
// every 200ms from the background syncer.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment whose size
	// reaches it is sealed and a new one started. 0 means 64 MiB.
	SegmentBytes int64
	// Fsync selects the durability policy.
	Fsync Policy
	// Interval paces the background syncer under SyncInterval; 0 means
	// 200ms.
	Interval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 200 * time.Millisecond
	}
	return o
}

// AppendRecord appends the framing of one log record to buf. It is the
// single encoder recovery, appends and the fuzz target share.
func AppendRecord(buf []byte, offset uint64, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, offset)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// DecodeRecord parses one record from the head of data, verifying the
// CRC, and returns the offset, a payload view into data, and the bytes
// consumed. Any framing violation — truncation, oversized length, CRC
// mismatch — is an error; recovery treats it as the torn tail.
func DecodeRecord(data []byte) (offset uint64, payload []byte, n int, err error) {
	if len(data) < recordHeaderLen {
		return 0, nil, 0, fmt.Errorf("seglog: truncated record header (%d bytes)", len(data))
	}
	offset = binary.LittleEndian.Uint64(data)
	size := binary.LittleEndian.Uint32(data[8:])
	sum := binary.LittleEndian.Uint32(data[12:])
	if size > MaxPayload {
		return 0, nil, 0, fmt.Errorf("seglog: record payload %d exceeds limit", size)
	}
	n = recordHeaderLen + int(size)
	if len(data) < n {
		return 0, nil, 0, fmt.Errorf("seglog: truncated record payload (%d of %d bytes)", len(data)-recordHeaderLen, size)
	}
	payload = data[recordHeaderLen:n]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, 0, fmt.Errorf("seglog: record %d fails CRC", offset)
	}
	return offset, payload, n, nil
}

// segment is one on-disk file of a source's log.
type segment struct {
	path  string
	first uint64 // offset of the segment's first record
}

// sourceLog is the per-source state: the segment chain and the active
// tail. mu guards everything; appends hold it briefly (the write
// itself included), readers hold it only to snapshot.
type sourceLog struct {
	mu    sync.Mutex
	dir   string
	segs  []segment
	f     *os.File // active (last) segment, opened lazily for append
	size  int64    // committed size of the active segment
	next  uint64   // next record offset
	buf   []byte   // append staging, recycled
	dirty bool     // has unsynced writes (SyncInterval)
}

// Log is a durable per-source segmented record log. Open recovers it,
// Append extends it, Read replays a half-open offset range, Close seals
// it. Appends for one source must be serialized by the caller; all
// other operations are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.RWMutex
	sources map[string]*sourceLog

	stop     chan struct{}
	syncerWG sync.WaitGroup
	closed   bool
}

// Open opens (creating if needed) the log rooted at dir and recovers
// every source found under it: torn tails are truncated in place and
// segments stranded behind a corrupt record are removed, so each
// source's NextOffset reflects exactly the records that survive.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seglog: %w", err)
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		sources: make(map[string]*sourceLog),
		stop:    make(chan struct{}),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("seglog: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		nameBytes, err := hex.DecodeString(e.Name())
		if err != nil {
			continue // not a source directory
		}
		sl, err := recoverSource(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("seglog: recovering source %q: %w", string(nameBytes), err)
		}
		l.sources[string(nameBytes)] = sl
	}
	if opts.Fsync == SyncInterval {
		l.syncerWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// recoverSource scans a source directory, validating every segment and
// keeping the longest valid record prefix: the chain must start at
// offset 0, stay dense across files, and every record must pass the
// CRC. The first violation ends the prefix — the torn segment is
// truncated in place and everything behind it removed.
func recoverSource(dir string) (*sourceLog, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		var first uint64
		if _, err := fmt.Sscanf(e.Name(), "%016x.seg", &first); err != nil {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, e.Name()), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	sl := &sourceLog{dir: dir}
	expect := uint64(0)
	for i, seg := range segs {
		keep := seg.first == expect
		var validSize int64
		var nextOff uint64
		var intact bool
		if keep {
			validSize, nextOff, intact, err = scanSegment(seg.path, seg.first)
			if err != nil {
				return nil, err
			}
			keep = validSize >= int64(len(Magic))
		}
		if !keep {
			// A gap before this segment, or not even the magic survived:
			// nothing from here on is reachable without a hole.
			for _, later := range segs[i:] {
				if err := os.Remove(later.path); err != nil {
					return nil, err
				}
			}
			break
		}
		if fi, err := os.Stat(seg.path); err != nil {
			return nil, err
		} else if fi.Size() != validSize {
			if err := os.Truncate(seg.path, validSize); err != nil {
				return nil, err
			}
		}
		sl.segs = append(sl.segs, seg)
		sl.size = validSize
		sl.next = nextOff
		expect = nextOff
		if !intact {
			// The valid prefix ends inside this segment; later segments
			// would leave a hole, so they are dropped.
			for _, later := range segs[i+1:] {
				if err := os.Remove(later.path); err != nil {
					return nil, err
				}
			}
			break
		}
	}
	return sl, nil
}

// scanSegment validates a segment file: the magic, then records with
// dense offsets starting at first. It returns the byte size of the
// valid prefix, the offset after the last valid record, and whether the
// whole file was valid (false means a torn or corrupt tail).
func scanSegment(path string, first uint64) (validSize int64, nextOff uint64, intact bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, first, false, err
	}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return 0, first, false, nil
	}
	pos := int64(len(Magic))
	next := first
	for int(pos) < len(data) {
		off, _, n, err := DecodeRecord(data[pos:])
		if err != nil || off != next {
			return pos, next, false, nil
		}
		pos += int64(n)
		next++
	}
	return pos, next, true, nil
}

// get returns the per-source state, creating it on demand.
func (l *Log) get(source string) *sourceLog {
	l.mu.RLock()
	sl := l.sources[source]
	l.mu.RUnlock()
	if sl != nil {
		return sl
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if sl = l.sources[source]; sl == nil {
		sl = &sourceLog{dir: filepath.Join(l.dir, hex.EncodeToString([]byte(source)))}
		l.sources[source] = sl
	}
	return sl
}

// NextOffset returns the offset the next Append for source will use —
// equivalently, the number of records the source's log holds. Captured
// at a tuple boundary it is the splice fence between replay and live.
func (l *Log) NextOffset(source string) uint64 {
	sl := l.get(source)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.next
}

// Sources returns the source names present in the log.
func (l *Log) Sources() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	names := make([]string, 0, len(l.sources))
	for name := range l.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Append writes one record and returns its offset. Appends for one
// source must be serialized by the caller. Under SyncAlways the record
// is on stable storage when Append returns; otherwise durability
// follows the policy and a crash may lose the tail — recovery then
// truncates back to the last intact record.
func (l *Log) Append(source string, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("seglog: payload %d exceeds limit", len(payload))
	}
	sl := l.get(source)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if err := sl.ensureOpen(l.opts); err != nil {
		return 0, err
	}
	off := sl.next
	sl.buf = AppendRecord(sl.buf[:0], off, payload)
	if _, err := sl.f.Write(sl.buf); err != nil {
		// The write may have landed partially; the in-memory size is not
		// advanced, and recovery truncates whatever half-record hit disk.
		return off, fmt.Errorf("seglog: appending to %q: %w", source, err)
	}
	sl.size += int64(len(sl.buf))
	sl.next++
	sl.dirty = true
	if l.opts.Fsync == SyncAlways {
		if err := sl.f.Sync(); err != nil {
			return off, fmt.Errorf("seglog: syncing %q: %w", source, err)
		}
		sl.dirty = false
	}
	if sl.size >= l.opts.SegmentBytes {
		if err := sl.rotate(l.opts); err != nil {
			return off, err
		}
	}
	return off, nil
}

// ensureOpen opens (or creates) the active segment for appending.
func (sl *sourceLog) ensureOpen(opts Options) error {
	if sl.f != nil {
		return nil
	}
	if len(sl.segs) == 0 {
		return sl.rotate(opts) // creates the first segment
	}
	f, err := os.OpenFile(sl.segs[len(sl.segs)-1].path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	if _, err := f.Seek(sl.size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("seglog: %w", err)
	}
	sl.f = f
	return nil
}

// rotate seals the active segment and starts a fresh one whose name is
// the next offset. Called with sl.mu held.
func (sl *sourceLog) rotate(opts Options) error {
	if sl.f != nil {
		if opts.Fsync != SyncNever {
			_ = sl.f.Sync()
		}
		sl.f.Close()
		sl.f = nil
		sl.dirty = false
	}
	if err := os.MkdirAll(sl.dir, 0o755); err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	path := filepath.Join(sl.dir, fmt.Sprintf("%016x.seg", sl.next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("seglog: %w", err)
	}
	if _, err := f.WriteString(Magic); err != nil {
		f.Close()
		return fmt.Errorf("seglog: %w", err)
	}
	if opts.Fsync != SyncNever {
		// Make the new file itself durable before records land in it.
		_ = f.Sync()
		if d, err := os.Open(sl.dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	sl.segs = append(sl.segs, segment{path: path, first: sl.next})
	sl.f = f
	sl.size = int64(len(Magic))
	return nil
}

// Read replays records with offsets in [from, to) in order, calling fn
// with each record's offset and payload. The payload view is valid only
// during the call. Read observes a snapshot taken at call time; records
// appended after Read starts are not visited, so a caller replaying up
// to a fence captured before the call sees exactly [from, to). A to of
// NextOffset-or-higher reads to the snapshot end. fn returning an error
// stops the replay and surfaces it.
func (l *Log) Read(source string, from, to uint64, fn func(offset uint64, payload []byte) error) error {
	sl := l.get(source)
	sl.mu.Lock()
	segs := append([]segment(nil), sl.segs...)
	end := sl.next
	activeSize := sl.size
	sl.mu.Unlock()
	if to > end {
		to = end
	}
	if from >= to {
		return nil
	}
	for i, seg := range segs {
		// Skip segments wholly before the range.
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue
		}
		if seg.first >= to {
			return nil
		}
		limit := int64(-1) // whole file
		if i == len(segs)-1 {
			limit = activeSize // never past the committed snapshot
		}
		done, err := readSegment(seg, limit, from, to, fn)
		if err != nil || done {
			return err
		}
	}
	return nil
}

// readSegment streams one segment's records through fn, honoring the
// [from, to) window; done reports that the window end was reached.
func readSegment(seg segment, limit int64, from, to uint64, fn func(uint64, []byte) error) (done bool, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return false, fmt.Errorf("seglog: %w", err)
	}
	if limit >= 0 && int64(len(data)) > limit {
		// The file grew past the snapshot (concurrent appends): read only
		// the committed prefix.
		data = data[:limit]
	}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return false, fmt.Errorf("seglog: segment %s lost its magic", seg.path)
	}
	pos := len(Magic)
	for pos < len(data) {
		off, payload, n, err := DecodeRecord(data[pos:])
		if err != nil {
			return false, fmt.Errorf("seglog: segment %s: %w", seg.path, err)
		}
		pos += n
		if off < from {
			continue
		}
		if off >= to {
			return true, nil
		}
		if err := fn(off, payload); err != nil {
			return true, err
		}
	}
	return false, nil
}

// syncLoop is the SyncInterval background syncer.
func (l *Log) syncLoop() {
	defer l.syncerWG.Done()
	tick := time.NewTicker(l.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-tick.C:
		}
		l.syncDirty()
	}
}

// syncDirty fsyncs every source with unsynced writes.
func (l *Log) syncDirty() {
	l.mu.RLock()
	all := make([]*sourceLog, 0, len(l.sources))
	for _, sl := range l.sources {
		all = append(all, sl)
	}
	l.mu.RUnlock()
	for _, sl := range all {
		sl.mu.Lock()
		if sl.dirty && sl.f != nil {
			_ = sl.f.Sync()
			sl.dirty = false
		}
		sl.mu.Unlock()
	}
}

// Close seals the log: dirty segments are synced (unless SyncNever) and
// every file handle released. The log must not be used after Close.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	all := make([]*sourceLog, 0, len(l.sources))
	for _, sl := range l.sources {
		all = append(all, sl)
	}
	l.mu.Unlock()
	close(l.stop)
	l.syncerWG.Wait()
	var firstErr error
	for _, sl := range all {
		sl.mu.Lock()
		if sl.f != nil {
			if l.opts.Fsync != SyncNever {
				if err := sl.f.Sync(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			if err := sl.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sl.f = nil
		}
		sl.mu.Unlock()
	}
	return firstErr
}
