package seglog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// payloadFor builds a distinguishable payload for record i.
func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-payload-with-some-body", i))
}

// fill appends n records for source and asserts the returned offsets
// are dense from the log's current head.
func fill(t *testing.T, l *Log, source string, n int) {
	t.Helper()
	base := l.NextOffset(source)
	for i := 0; i < n; i++ {
		off, err := l.Append(source, payloadFor(int(base)+i))
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if off != base+uint64(i) {
			t.Fatalf("Append returned offset %d, want %d", off, base+uint64(i))
		}
	}
}

// collect reads [from, to) and returns the visited offsets, asserting
// each payload matches what fill wrote.
func collect(t *testing.T, l *Log, source string, from, to uint64) []uint64 {
	t.Helper()
	var got []uint64
	err := l.Read(source, from, to, func(off uint64, payload []byte) error {
		if want := payloadFor(int(off)); !bytes.Equal(payload, want) {
			t.Fatalf("record %d payload = %q, want %q", off, payload, want)
		}
		got = append(got, off)
		return nil
	})
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func wantDense(t *testing.T, got []uint64, from, to uint64) {
	t.Helper()
	if uint64(len(got)) != to-from {
		t.Fatalf("read %d records, want %d", len(got), to-from)
	}
	for i, off := range got {
		if off != from+uint64(i) {
			t.Fatalf("record %d has offset %d, want %d", i, off, from+uint64(i))
		}
	}
}

func TestAppendReadRoundtrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, "alpha", 50)
	fill(t, l, "beta/../odd name", 10) // any name must be a safe path component
	wantDense(t, collect(t, l, "alpha", 0, 50), 0, 50)
	wantDense(t, collect(t, l, "alpha", 17, 40), 17, 40)
	wantDense(t, collect(t, l, "beta/../odd name", 0, 10), 0, 10)
	if got := collect(t, l, "alpha", 50, 100); len(got) != 0 {
		t.Fatalf("read past head returned %d records", len(got))
	}
	if got := l.NextOffset("alpha"); got != 50 {
		t.Fatalf("NextOffset = %d, want 50", got)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, "src", 40)
	segs, _ := filepath.Glob(filepath.Join(dir, sourceDir(dir, "src"), "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	wantDense(t, collect(t, l, "src", 0, 40), 0, 40)
	wantDense(t, collect(t, l, "src", 13, 29), 13, 29)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery must restore the head across all segments.
	l2, err := Open(dir, Options{SegmentBytes: 256, Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextOffset("src"); got != 40 {
		t.Fatalf("NextOffset after reopen = %d, want 40", got)
	}
	fill(t, l2, "src", 5)
	wantDense(t, collect(t, l2, "src", 0, 45), 0, 45)
}

// sourceDir resolves the on-disk directory name for a source (test
// helper mirroring the hex encoding).
func sourceDir(root, source string) string {
	return fmt.Sprintf("%x", source)
}

// lastSegment returns the path of the highest-offset segment file.
func lastSegment(t *testing.T, root, source string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(root, sourceDir(root, source), "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	last := segs[0]
	for _, s := range segs[1:] {
		if s > last {
			last = s
		}
	}
	return last
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	// Cut the final segment at every byte position inside its last
	// record: recovery must always surface the longest valid prefix.
	for _, cut := range []int64{1, recordHeaderLen - 1, recordHeaderLen, recordHeaderLen + 5} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			fill(t, l, "src", 20)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			seg := lastSegment(t, dir, "src")
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			lastLen := int64(recordHeaderLen + len(payloadFor(19)))
			if err := os.Truncate(seg, fi.Size()-lastLen+cut); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{Fsync: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if got := l2.NextOffset("src"); got != 19 {
				t.Fatalf("NextOffset after torn tail = %d, want 19", got)
			}
			wantDense(t, collect(t, l2, "src", 0, 19), 0, 19)
			// The log must accept new appends at the recovered head.
			fill(t, l2, "src", 2)
			wantDense(t, collect(t, l2, "src", 0, 21), 0, 21)
		})
	}
}

func TestRecoveryDropsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, "src", 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the payload of the last record.
	seg := lastSegment(t, dir, "src")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextOffset("src"); got != 9 {
		t.Fatalf("NextOffset after CRC corruption = %d, want 9", got)
	}
	wantDense(t, collect(t, l2, "src", 0, 9), 0, 9)
}

func TestRecoveryDropsSegmentsBehindCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, "src", 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, sourceDir(dir, "src"), "*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Corrupt a record in the middle segment: everything behind it must
	// be removed so the surviving log is a clean prefix.
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(Magic)+recordHeaderLen] ^= 0xFF
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 256, Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	head := l2.NextOffset("src")
	if head == 0 || head >= 40 {
		t.Fatalf("NextOffset after mid-log corruption = %d, want a proper prefix", head)
	}
	wantDense(t, collect(t, l2, "src", 0, head), 0, head)
	after, _ := filepath.Glob(filepath.Join(dir, sourceDir(dir, "src"), "*.seg"))
	if len(after) >= len(segs) {
		t.Fatalf("segments behind the corruption were kept (%d of %d)", len(after), len(segs))
	}
	// And the recovered head accepts appends.
	fill(t, l2, "src", 3)
	wantDense(t, collect(t, l2, "src", 0, head+3), 0, head+3)
}

func TestFsyncPolicies(t *testing.T) {
	for _, p := range []Policy{SyncNever, SyncInterval, SyncAlways} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: p, Interval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			fill(t, l, "src", 10)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{Fsync: p})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if got := l2.NextOffset("src"); got != 10 {
				t.Fatalf("NextOffset = %d, want 10", got)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"never", SyncNever}, {"interval", SyncInterval}, {"always", SyncAlways}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

func TestConcurrentReadDuringAppend(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 512, Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, "src", 30)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := l.Append("src", payloadFor(30+i)); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	// Readers race the appender; each must still see a consistent dense
	// window bounded by its own snapshot.
	for i := 0; i < 50; i++ {
		head := l.NextOffset("src")
		wantDense(t, collect(t, l, "src", 0, head), 0, head)
	}
	<-done
	wantDense(t, collect(t, l, "src", 0, 230), 0, 230)
}

func TestSources(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Fsync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, "b", 1)
	fill(t, l, "a", 1)
	got := l.Sources()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Sources = %v", got)
	}
}
