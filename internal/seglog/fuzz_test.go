package seglog

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord drives the record decoder with arbitrary bytes: it
// must never panic, never over-consume, and must round-trip every
// record AppendRecord produces. The decoder guards the recovery scan,
// so it sees literally whatever a crash left on disk.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(AppendRecord(nil, 0, []byte("hello")), uint64(0))
	f.Add(AppendRecord(nil, 1<<40, nil), uint64(7))
	f.Add([]byte{}, uint64(0))
	f.Add(bytes.Repeat([]byte{0xFF}, recordHeaderLen+3), uint64(2))
	f.Fuzz(func(t *testing.T, data []byte, off uint64) {
		gotOff, payload, n, err := DecodeRecord(data)
		if err == nil {
			if n < recordHeaderLen || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			if len(payload) != n-recordHeaderLen {
				t.Fatalf("payload %d bytes for %d consumed", len(payload), n)
			}
			// Whatever decoded must re-encode to the exact consumed bytes.
			re := AppendRecord(nil, gotOff, payload)
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode mismatch")
			}
		}
		// Round-trip: framing some prefix of the input at the fuzzed
		// offset must always decode back to itself.
		payloadIn := data
		if len(payloadIn) > MaxPayload {
			payloadIn = payloadIn[:MaxPayload]
		}
		rec := AppendRecord(nil, off, payloadIn)
		gotOff, gotPayload, n, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if gotOff != off || n != len(rec) || !bytes.Equal(gotPayload, payloadIn) {
			t.Fatalf("round-trip mismatch: off %d->%d, n %d/%d", off, gotOff, n, len(rec))
		}
	})
}
