// Package wire implements the binary encoding of tuples and labeled
// transmissions used by the dissemination layer. The paper's prototype
// serializes tuples for application-level multicast (§4.1.1); this package
// provides a compact, deterministic format so bandwidth accounting uses
// real wire sizes rather than estimates.
//
// Format (all integers little-endian):
//
//	tuple:        u32 seq | i64 unix-nano timestamp | u16 n | n × f64
//	transmission: u8 destination count | destinations (uvarint len + bytes) | tuple
//
// The schema travels out of band (it is part of the source advertisement),
// so attribute names are not repeated per tuple.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"gasf/internal/tuple"
)

// MaxDestinations bounds the destination list of one transmission.
const MaxDestinations = 255

// maxValues bounds the per-tuple value count (a u16 on the wire).
const maxValues = 1<<16 - 1

// AppendTuple appends the encoded tuple to buf and returns the extended
// slice.
func AppendTuple(buf []byte, t *tuple.Tuple) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("wire: nil tuple")
	}
	if len(t.Values) > maxValues {
		return nil, fmt.Errorf("wire: %d values exceed the u16 limit", len(t.Values))
	}
	if t.Seq < 0 || int64(t.Seq) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: sequence %d outside u32 range", t.Seq)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Seq))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.TS.UnixNano()))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Values)))
	for _, v := range t.Values {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf, nil
}

// TupleSize returns the encoded size of a tuple in bytes.
func TupleSize(t *tuple.Tuple) int { return 4 + 8 + 2 + 8*len(t.Values) }

// DecodeTuple decodes one tuple bound to the given schema, returning the
// tuple and the number of bytes consumed.
func DecodeTuple(s *tuple.Schema, data []byte) (*tuple.Tuple, int, error) {
	const header = 4 + 8 + 2
	if len(data) < header {
		return nil, 0, fmt.Errorf("wire: truncated tuple header (%d bytes)", len(data))
	}
	seq := binary.LittleEndian.Uint32(data)
	ts := time.Unix(0, int64(binary.LittleEndian.Uint64(data[4:])))
	n := int(binary.LittleEndian.Uint16(data[12:]))
	if s != nil && n != s.Len() {
		return nil, 0, fmt.Errorf("wire: tuple carries %d values, schema has %d", n, s.Len())
	}
	need := header + 8*n
	if len(data) < need {
		return nil, 0, fmt.Errorf("wire: truncated tuple body (%d of %d bytes)", len(data), need)
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[header+8*i:]))
	}
	if s == nil {
		return nil, 0, fmt.Errorf("wire: nil schema")
	}
	t, err := tuple.New(s, int(seq), ts, values)
	if err != nil {
		return nil, 0, err
	}
	return t, need, nil
}

// AppendTransmission appends a destination-labeled tuple (the paper's
// tuple-level multicast message: "the multicast protocol allows us to label
// each tuple with the list of the applications that should receive that
// tuple", §1.2).
func AppendTransmission(buf []byte, t *tuple.Tuple, dests []string) ([]byte, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("wire: transmission needs at least one destination")
	}
	if len(dests) > MaxDestinations {
		return nil, fmt.Errorf("wire: %d destinations exceed the u8 limit", len(dests))
	}
	buf = append(buf, byte(len(dests)))
	for _, d := range dests {
		if len(d) == 0 {
			return nil, fmt.Errorf("wire: empty destination label")
		}
		buf = binary.AppendUvarint(buf, uint64(len(d)))
		buf = append(buf, d...)
	}
	return AppendTuple(buf, t)
}

// TransmissionSize returns the encoded size of a labeled transmission.
func TransmissionSize(t *tuple.Tuple, dests []string) int {
	n := 1
	for _, d := range dests {
		n += uvarintLen(uint64(len(d))) + len(d)
	}
	return n + TupleSize(t)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeTransmission decodes a labeled transmission, returning the tuple,
// its destinations, and the bytes consumed.
func DecodeTransmission(s *tuple.Schema, data []byte) (*tuple.Tuple, []string, int, error) {
	if len(data) < 1 {
		return nil, nil, 0, fmt.Errorf("wire: empty transmission")
	}
	count := int(data[0])
	if count == 0 {
		return nil, nil, 0, fmt.Errorf("wire: transmission with zero destinations")
	}
	off := 1
	dests := make([]string, 0, count)
	for i := 0; i < count; i++ {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, nil, 0, fmt.Errorf("wire: bad destination length at offset %d", off)
		}
		off += n
		if l == 0 || uint64(len(data)-off) < l {
			return nil, nil, 0, fmt.Errorf("wire: truncated destination at offset %d", off)
		}
		dests = append(dests, string(data[off:off+int(l)]))
		off += int(l)
	}
	t, n, err := DecodeTuple(s, data[off:])
	if err != nil {
		return nil, nil, 0, err
	}
	return t, dests, off + n, nil
}
