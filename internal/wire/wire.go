// Package wire implements the binary encoding of tuples and labeled
// transmissions used by the dissemination layer. The paper's prototype
// serializes tuples for application-level multicast (§4.1.1); this package
// provides a compact, deterministic format so bandwidth accounting uses
// real wire sizes rather than estimates.
//
// Format (all integers little-endian):
//
//	tuple:        u32 seq | i64 unix-nano timestamp | u16 n | n × f64
//	transmission: u8 destination count | destinations (uvarint len + bytes) | tuple
//
// The schema travels out of band (it is part of the source advertisement),
// so attribute names are not repeated per tuple.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"gasf/internal/tuple"
)

// bufPool recycles encode buffers so per-transmission encoding does not
// heap-allocate in steady state. Buffers are held behind pointers to keep
// Put itself allocation-free.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuf returns an empty encode buffer from the pool. Return it with
// PutBuf once the encoded bytes have been flushed or copied.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf recycles an encode buffer.
func PutBuf(b *[]byte) {
	if b != nil {
		bufPool.Put(b)
	}
}

// MaxDestinations bounds the destination list of one transmission.
const MaxDestinations = 255

// maxValues bounds the per-tuple value count (a u16 on the wire).
const maxValues = 1<<16 - 1

// AppendTuple appends the encoded tuple to buf and returns the extended
// slice.
func AppendTuple(buf []byte, t *tuple.Tuple) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("wire: nil tuple")
	}
	if len(t.Values) > maxValues {
		return nil, fmt.Errorf("wire: %d values exceed the u16 limit", len(t.Values))
	}
	if t.Seq < 0 || int64(t.Seq) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: sequence %d outside u32 range", t.Seq)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Seq))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.TS.UnixNano()))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Values)))
	for _, v := range t.Values {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf, nil
}

// TupleSize returns the encoded size of a tuple in bytes.
func TupleSize(t *tuple.Tuple) int { return 4 + 8 + 2 + 8*len(t.Values) }

// tupleHeaderLen is the encoded size of a tuple header (seq + ts + count).
const tupleHeaderLen = 4 + 8 + 2

// decodeTupleHeader validates the header of an encoded tuple against the
// schema and returns seq, timestamp and total encoded size.
func decodeTupleHeader(s *tuple.Schema, data []byte) (seq uint32, ts time.Time, need int, err error) {
	if s == nil {
		return 0, time.Time{}, 0, fmt.Errorf("wire: nil schema")
	}
	if len(data) < tupleHeaderLen {
		return 0, time.Time{}, 0, fmt.Errorf("wire: truncated tuple header (%d bytes)", len(data))
	}
	seq = binary.LittleEndian.Uint32(data)
	ts = time.Unix(0, int64(binary.LittleEndian.Uint64(data[4:])))
	n := int(binary.LittleEndian.Uint16(data[12:]))
	if n != s.Len() {
		return 0, time.Time{}, 0, fmt.Errorf("wire: tuple carries %d values, schema has %d", n, s.Len())
	}
	need = tupleHeaderLen + 8*n
	if len(data) < need {
		return 0, time.Time{}, 0, fmt.Errorf("wire: truncated tuple body (%d of %d bytes)", len(data), need)
	}
	return seq, ts, need, nil
}

// DecodeTuple decodes one tuple bound to the given schema, returning the
// tuple and the number of bytes consumed.
func DecodeTuple(s *tuple.Schema, data []byte) (*tuple.Tuple, int, error) {
	seq, ts, need, err := decodeTupleHeader(s, data)
	if err != nil {
		return nil, 0, err
	}
	values := make([]float64, s.Len())
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[tupleHeaderLen+8*i:]))
	}
	t, err := tuple.New(s, int(seq), ts, values)
	if err != nil {
		return nil, 0, err
	}
	return t, need, nil
}

// DecodeTupleInto decodes one tuple in place into dst, reusing dst's
// Values backing array, and returns the bytes consumed. It is the
// allocation-free decode path for consumers that do not retain tuples
// between frames (replay drivers, benchmarks, client receive loops); see
// tuple.Reuse for the ownership contract.
func DecodeTupleInto(dst *tuple.Tuple, s *tuple.Schema, data []byte) (int, error) {
	seq, ts, need, err := decodeTupleHeader(s, data)
	if err != nil {
		return 0, err
	}
	values, err := tuple.Reuse(dst, s, int(seq), ts)
	if err != nil {
		return 0, err
	}
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[tupleHeaderLen+8*i:]))
	}
	return need, nil
}

// AppendDestinations appends the destination-list prefix of a labeled
// transmission (u8 count, then uvarint-length-prefixed labels).
func AppendDestinations(buf []byte, dests []string) ([]byte, error) {
	if len(dests) == 0 {
		return nil, fmt.Errorf("wire: transmission needs at least one destination")
	}
	if len(dests) > MaxDestinations {
		return nil, fmt.Errorf("wire: %d destinations exceed the u8 limit", len(dests))
	}
	buf = append(buf, byte(len(dests)))
	for _, d := range dests {
		if len(d) == 0 {
			return nil, fmt.Errorf("wire: empty destination label")
		}
		buf = binary.AppendUvarint(buf, uint64(len(d)))
		buf = append(buf, d...)
	}
	return buf, nil
}

// AppendTransmission appends a destination-labeled tuple (the paper's
// tuple-level multicast message: "the multicast protocol allows us to label
// each tuple with the list of the applications that should receive that
// tuple", §1.2).
func AppendTransmission(buf []byte, t *tuple.Tuple, dests []string) ([]byte, error) {
	buf, err := AppendDestinations(buf, dests)
	if err != nil {
		return nil, err
	}
	return AppendTuple(buf, t)
}

// TransmissionEncoder appends labeled transmissions while memoizing the
// encoded destination-list prefix. A dissemination fan-out typically
// releases runs of transmissions carrying an identical destination list
// (one group-membership epoch, one overlap pattern), so the steady state
// re-encodes the labels zero times. The zero value is ready to use; an
// encoder is not safe for concurrent use.
type TransmissionEncoder struct {
	epoch  uint64
	dests  []string
	prefix []byte
	valid  bool
}

// AppendTransmission appends the wire encoding of t labeled with dests.
// epoch identifies the group-membership epoch the destination list was
// derived under; the cached prefix is reused only when both the epoch and
// the list match the previous call, so a stale cache can never survive a
// membership change.
func (enc *TransmissionEncoder) AppendTransmission(buf []byte, epoch uint64, t *tuple.Tuple, dests []string) ([]byte, error) {
	if !enc.valid || enc.epoch != epoch || !slices.Equal(enc.dests, dests) {
		prefix, err := AppendDestinations(enc.prefix[:0], dests)
		if err != nil {
			enc.valid = false
			return nil, err
		}
		enc.prefix = prefix
		enc.dests = append(enc.dests[:0], dests...)
		enc.epoch, enc.valid = epoch, true
	}
	buf = append(buf, enc.prefix...)
	return AppendTuple(buf, t)
}

// TransmissionSize returns the encoded size of a labeled transmission.
func TransmissionSize(t *tuple.Tuple, dests []string) int {
	n := 1
	for _, d := range dests {
		n += uvarintLen(uint64(len(d))) + len(d)
	}
	return n + TupleSize(t)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeTransmissionInto decodes a labeled transmission in place: the
// tuple is decoded into dst (reusing its Values backing array, like
// DecodeTupleInto) and the destination labels are appended to labels as
// views into data. The views are valid only until the caller recycles
// data; consumers that retain labels must copy them out. It is the
// allocation-free receive path for client loops and benchmarks.
func DecodeTransmissionInto(dst *tuple.Tuple, s *tuple.Schema, labels [][]byte, data []byte) ([][]byte, int, error) {
	if len(data) < 1 {
		return labels, 0, fmt.Errorf("wire: empty transmission")
	}
	count := int(data[0])
	if count == 0 {
		return labels, 0, fmt.Errorf("wire: transmission with zero destinations")
	}
	off := 1
	for i := 0; i < count; i++ {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return labels, 0, fmt.Errorf("wire: bad destination length at offset %d", off)
		}
		off += n
		if l == 0 || uint64(len(data)-off) < l {
			return labels, 0, fmt.Errorf("wire: truncated destination at offset %d", off)
		}
		labels = append(labels, data[off:off+int(l)])
		off += int(l)
	}
	n, err := DecodeTupleInto(dst, s, data[off:])
	if err != nil {
		return labels, 0, err
	}
	return labels, off + n, nil
}

// TransmissionHasDestination reports whether the encoded transmission
// names app in its destination list, scanning only the label prefix —
// the tuple body is never touched. Replay sessions use it to filter a
// source's log down to one application's stream without decoding, so a
// malformed prefix simply reports false.
func TransmissionHasDestination(data []byte, app string) bool {
	if len(data) < 1 || len(app) == 0 {
		return false
	}
	count := int(data[0])
	off := 1
	for i := 0; i < count; i++ {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return false
		}
		off += n
		if l == 0 || uint64(len(data)-off) < l {
			return false
		}
		if int(l) == len(app) && string(data[off:off+int(l)]) == app {
			return true
		}
		off += int(l)
	}
	return false
}

// DefaultInternLimit bounds an Interner's table when SetLimit was not
// called.
const DefaultInternLimit = 1024

// Interner maps byte-slice label views to stable strings without
// allocating for labels it has seen before. Long-lived receive loops
// decode destination labels as views into a recycled frame buffer
// (DecodeTransmissionInto); interning converts them to strings the
// caller may retain, and the steady state — a closed working set of
// application names — costs zero allocations per delivery.
//
// The table is bounded: once it holds the limit, the next unseen label
// resets it wholesale (an epoch reset) instead of growing. A session
// fed unbounded distinct labels therefore re-allocates occasionally but
// never leaks, fixing the unbounded growth the per-session intern map
// used to exhibit under churning destination sets. The zero value is
// ready to use; an Interner is not safe for concurrent use.
type Interner struct {
	m     map[string]string
	limit int
}

// SetLimit caps the table at n entries (0 restores the default). It
// does not shrink an existing table until the next epoch reset.
func (in *Interner) SetLimit(n int) { in.limit = n }

// Len returns the current table size.
func (in *Interner) Len() int { return len(in.m) }

// Intern returns a string equal to b, reusing a previously interned
// string when possible. The map lookup with a []byte key compiles to a
// non-allocating probe, so hits cost nothing.
func (in *Interner) Intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	limit := in.limit
	if limit <= 0 {
		limit = DefaultInternLimit
	}
	if in.m == nil || len(in.m) >= limit {
		// Epoch reset: drop the whole table rather than grow past the
		// cap. The live working set re-interns within one epoch.
		in.m = make(map[string]string, min(limit, 16))
	}
	s := string(b)
	in.m[s] = s
	return s
}

// DecodeTransmission decodes a labeled transmission, returning the tuple,
// its destinations, and the bytes consumed.
func DecodeTransmission(s *tuple.Schema, data []byte) (*tuple.Tuple, []string, int, error) {
	if len(data) < 1 {
		return nil, nil, 0, fmt.Errorf("wire: empty transmission")
	}
	count := int(data[0])
	if count == 0 {
		return nil, nil, 0, fmt.Errorf("wire: transmission with zero destinations")
	}
	off := 1
	dests := make([]string, 0, count)
	for i := 0; i < count; i++ {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, nil, 0, fmt.Errorf("wire: bad destination length at offset %d", off)
		}
		off += n
		if l == 0 || uint64(len(data)-off) < l {
			return nil, nil, 0, fmt.Errorf("wire: truncated destination at offset %d", off)
		}
		dests = append(dests, string(data[off:off+int(l)]))
		off += int(l)
	}
	t, n, err := DecodeTuple(s, data[off:])
	if err != nil {
		return nil, nil, 0, err
	}
	return t, dests, off + n, nil
}
