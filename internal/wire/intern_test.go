package wire

import (
	"fmt"
	"testing"
	"time"

	"gasf/internal/tuple"
)

func TestInternerStableHits(t *testing.T) {
	var in Interner
	a := in.Intern([]byte("app-1"))
	b := in.Intern([]byte("app-1"))
	if a != "app-1" || b != "app-1" {
		t.Fatalf("Intern returned %q, %q", a, b)
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d, want 1", in.Len())
	}
}

func TestInternerBoundedUnderChurn(t *testing.T) {
	var in Interner
	in.SetLimit(64)
	// A churning stream of distinct labels must never grow the table
	// past the limit: each overflow resets the epoch.
	for i := 0; i < 10_000; i++ {
		label := fmt.Sprintf("churn-app-%d", i)
		if got := in.Intern([]byte(label)); got != label {
			t.Fatalf("Intern(%q) = %q", label, got)
		}
		if in.Len() > 64 {
			t.Fatalf("table grew to %d entries (limit 64) after %d inserts", in.Len(), i+1)
		}
	}
	// A stable label interned after the storm still round-trips.
	if got := in.Intern([]byte("steady")); got != "steady" {
		t.Fatalf("Intern(steady) = %q", got)
	}
	if got := in.Intern([]byte("steady")); got != "steady" {
		t.Fatalf("re-Intern(steady) = %q", got)
	}
}

func TestInternerSteadyStateAllocs(t *testing.T) {
	var in Interner
	labels := [][]byte{[]byte("app-a"), []byte("app-b"), []byte("app-c")}
	for _, l := range labels {
		in.Intern(l)
	}
	// Re-interning a resident working set is the per-delivery hot path
	// of a subscriber receive loop: it must not allocate.
	allocs := testing.AllocsPerRun(1000, func() {
		for _, l := range labels {
			in.Intern(l)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Intern allocates %.1f per run, want 0", allocs)
	}
}

func TestTransmissionHasDestination(t *testing.T) {
	s := tuple.MustSchema("v")
	tp := tuple.MustNew(s, 1, time.Unix(0, 42), []float64{1})
	data, err := AppendTransmission(nil, tp, []string{"alpha", "beta-longer", "g"})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"alpha", "beta-longer", "g"} {
		if !TransmissionHasDestination(data, app) {
			t.Fatalf("TransmissionHasDestination(%q) = false", app)
		}
	}
	for _, app := range []string{"", "alph", "alphaa", "beta", "gamma", "delta"} {
		if TransmissionHasDestination(data, app) {
			t.Fatalf("TransmissionHasDestination(%q) = true", app)
		}
	}
	// Malformed prefixes must report false, never panic.
	for _, bad := range [][]byte{nil, {}, {3}, {1, 200}, {2, 5, 'a'}} {
		if TransmissionHasDestination(bad, "alpha") {
			t.Fatalf("malformed %v matched", bad)
		}
	}
}
