package wire

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gasf/internal/tuple"
)

var schema = tuple.MustSchema("a", "b", "c")

func sample(t *testing.T) *tuple.Tuple {
	t.Helper()
	return tuple.MustNew(schema, 42, time.Unix(1234, 5678), []float64{1.5, -2.25, math.Pi})
}

func TestTupleRoundTrip(t *testing.T) {
	in := sample(t)
	buf, err := AppendTuple(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != TupleSize(in) {
		t.Errorf("encoded %d bytes, TupleSize says %d", len(buf), TupleSize(in))
	}
	out, n, err := DecodeTuple(schema, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if out.Seq != in.Seq || !out.TS.Equal(in.TS) {
		t.Errorf("header mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Values {
		if out.Values[i] != in.Values[i] {
			t.Errorf("value %d = %g, want %g", i, out.Values[i], in.Values[i])
		}
	}
}

func TestTupleSpecialFloats(t *testing.T) {
	in := tuple.MustNew(schema, 0, time.Unix(0, 0), []float64{math.Inf(1), math.NaN(), math.Copysign(0, -1)})
	buf, err := AppendTuple(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DecodeTuple(schema, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.Values[0], 1) || !math.IsNaN(out.Values[1]) || math.Signbit(out.Values[2]) != true {
		t.Errorf("special floats mangled: %v", out.Values)
	}
}

func TestTupleEncodeErrors(t *testing.T) {
	if _, err := AppendTuple(nil, nil); err == nil {
		t.Error("nil tuple should fail")
	}
	neg := tuple.MustNew(schema, 0, time.Unix(0, 0), []float64{0, 0, 0})
	neg.Seq = -1
	if _, err := AppendTuple(nil, neg); err == nil {
		t.Error("negative seq should fail")
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	in := sample(t)
	buf, err := AppendTuple(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeTuple(schema, buf[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
	// Schema arity mismatch.
	two := tuple.MustSchema("x", "y")
	if _, _, err := DecodeTuple(two, buf); err == nil {
		t.Error("schema arity mismatch should fail")
	}
	if _, _, err := DecodeTuple(nil, buf); err == nil {
		t.Error("nil schema should fail")
	}
}

func TestTransmissionRoundTrip(t *testing.T) {
	in := sample(t)
	dests := []string{"fire-prediction", "responder-safety", "A"}
	buf, err := AppendTransmission(nil, in, dests)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != TransmissionSize(in, dests) {
		t.Errorf("encoded %d bytes, TransmissionSize says %d", len(buf), TransmissionSize(in, dests))
	}
	out, gotDests, n, err := DecodeTransmission(schema, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if out.Seq != in.Seq || len(gotDests) != len(dests) {
		t.Fatalf("mismatch: %v %v", out, gotDests)
	}
	for i := range dests {
		if gotDests[i] != dests[i] {
			t.Errorf("dest %d = %q, want %q", i, gotDests[i], dests[i])
		}
	}
}

func TestTransmissionIntoMatchesDecode(t *testing.T) {
	in := sample(t)
	dests := []string{"fire-prediction", "responder-safety", "A"}
	buf, err := AppendTransmission(nil, in, dests)
	if err != nil {
		t.Fatal(err)
	}
	var dst tuple.Tuple
	views, n, err := DecodeTransmissionInto(&dst, schema, nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if dst.Seq != in.Seq || !dst.TS.Equal(in.TS) {
		t.Fatalf("header mismatch: %+v", dst)
	}
	if len(views) != len(dests) {
		t.Fatalf("got %d labels, want %d", len(views), len(dests))
	}
	for i := range dests {
		if string(views[i]) != dests[i] {
			t.Errorf("label %d = %q, want %q", i, views[i], dests[i])
		}
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeTransmissionInto(&dst, schema, nil, buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	if _, _, err := DecodeTransmissionInto(&dst, schema, nil, []byte{0}); err == nil {
		t.Error("zero destination count should fail")
	}
}

func TestTransmissionErrors(t *testing.T) {
	in := sample(t)
	if _, err := AppendTransmission(nil, in, nil); err == nil {
		t.Error("no destinations should fail")
	}
	if _, err := AppendTransmission(nil, in, []string{""}); err == nil {
		t.Error("empty destination should fail")
	}
	big := make([]string, 256)
	for i := range big {
		big[i] = "d"
	}
	if _, err := AppendTransmission(nil, in, big); err == nil {
		t.Error("256 destinations should fail")
	}
	buf, err := AppendTransmission(nil, in, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, _, err := DecodeTransmission(schema, buf[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	if _, _, _, err := DecodeTransmission(schema, []byte{0}); err == nil {
		t.Error("zero destination count should fail")
	}
}

// Property: encode/decode round-trips arbitrary values and destination
// labels, and consecutive transmissions concatenate cleanly (streaming).
func TestRoundTripProperty(t *testing.T) {
	f := func(seqRaw uint16, vsRaw [3]int32, destRaw [2]uint8) bool {
		vals := []float64{float64(vsRaw[0]) / 3, float64(vsRaw[1]) * 1e6, float64(vsRaw[2])}
		in := tuple.MustNew(schema, int(seqRaw), time.Unix(int64(seqRaw), 0), vals)
		dests := []string{
			strings.Repeat("a", 1+int(destRaw[0]%40)),
			"app-" + string(rune('A'+destRaw[1]%26)),
		}
		buf, err := AppendTransmission(nil, in, dests)
		if err != nil {
			return false
		}
		// Concatenate two messages; decode both.
		buf, err = AppendTransmission(buf, in, dests[:1])
		if err != nil {
			return false
		}
		t1, d1, n1, err := DecodeTransmission(schema, buf)
		if err != nil {
			return false
		}
		t2, d2, _, err := DecodeTransmission(schema, buf[n1:])
		if err != nil {
			return false
		}
		return t1.Seq == in.Seq && t2.Seq == in.Seq &&
			len(d1) == 2 && len(d2) == 1 &&
			t1.Values[0] == vals[0] && t2.Values[2] == vals[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The fuzz targets for the decoders (FuzzDecodeTuple,
// FuzzDecodeTransmission) live in fuzz_test.go; they also assert the
// round-trip property on accepted inputs.
