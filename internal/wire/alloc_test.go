package wire_test

import (
	"testing"
	"time"

	"gasf/internal/tuple"
	"gasf/internal/wire"
)

func allocTuple(t testing.TB) (*tuple.Schema, *tuple.Tuple) {
	t.Helper()
	s, err := tuple.NewSchema("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := tuple.New(s, 42, time.Unix(7, 12345), []float64{1.5, -2.25, 3})
	if err != nil {
		t.Fatal(err)
	}
	return s, tp
}

// TestAppendTupleZeroAllocs is the §8 regression gate: encoding into a
// pooled (pre-sized) buffer must not heap-allocate.
func TestAppendTupleZeroAllocs(t *testing.T) {
	_, tp := allocTuple(t)
	buf := make([]byte, 0, 256)
	avg := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = wire.AppendTuple(buf[:0], tp)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("AppendTuple allocates %.2f allocs/op into a sized buffer, want 0", avg)
	}
}

// TestAppendTransmissionZeroAllocs gates the labeled-transmission encode
// path, including the destination prefix.
func TestAppendTransmissionZeroAllocs(t *testing.T) {
	_, tp := allocTuple(t)
	dests := []string{"app-a", "app-b", "app-c"}
	buf := make([]byte, 0, 256)
	avg := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = wire.AppendTransmission(buf[:0], tp, dests)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("AppendTransmission allocates %.2f allocs/op into a sized buffer, want 0", avg)
	}
}

// TestTransmissionEncoderCachedZeroAllocs gates the epoch-cached prefix
// path used by the server's fan-out.
func TestTransmissionEncoderCachedZeroAllocs(t *testing.T) {
	_, tp := allocTuple(t)
	dests := []string{"app-a", "app-b"}
	var enc wire.TransmissionEncoder
	buf := make([]byte, 0, 256)
	var err error
	// First call populates the cache (and may grow the encoder's state).
	if buf, err = enc.AppendTransmission(buf[:0], 1, tp, dests); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		buf, err = enc.AppendTransmission(buf[:0], 1, tp, dests)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("cached transmission encode allocates %.2f allocs/op, want 0", avg)
	}
	// Sanity: the cached encoding matches the direct one.
	want, err := wire.AppendTransmission(nil, tp, dests)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Fatal("cached encoding diverges from AppendTransmission")
	}
}

// TestTransmissionEncoderEpochInvalidation checks a bumped epoch refreshes
// the cached prefix even for an equal-looking list.
func TestTransmissionEncoderEpochInvalidation(t *testing.T) {
	_, tp := allocTuple(t)
	var enc wire.TransmissionEncoder
	a, err := enc.AppendTransmission(nil, 1, tp, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.AppendTransmission(nil, 2, tp, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same destinations must encode identically across epochs")
	}
	if _, err := enc.AppendTransmission(nil, 2, tp, nil); err == nil {
		t.Fatal("empty destination list accepted")
	}
	// The encoder must recover after an error.
	c, err := enc.AppendTransmission(nil, 3, tp, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if string(c) != string(a) {
		t.Fatal("encoder did not recover after an error")
	}
}

// TestDecodeTupleIntoZeroAllocs gates the reuse decode path.
func TestDecodeTupleIntoZeroAllocs(t *testing.T) {
	s, tp := allocTuple(t)
	data, err := wire.AppendTuple(nil, tp)
	if err != nil {
		t.Fatal(err)
	}
	var dst tuple.Tuple
	// First decode sizes the values slice.
	if _, err := wire.DecodeTupleInto(&dst, s, data); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		if _, err := wire.DecodeTupleInto(&dst, s, data); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("DecodeTupleInto allocates %.2f allocs/op on reuse, want 0", avg)
	}
	if dst.Seq != tp.Seq || !dst.TS.Equal(tp.TS) || dst.Values[1] != tp.Values[1] {
		t.Fatalf("reuse decode mismatch: %+v vs %+v", dst, tp)
	}
	if dst.Schema() != s {
		t.Fatal("reuse decode did not bind the schema")
	}
}

// TestDecodeTransmissionIntoZeroAllocs gates the client receive path:
// decoding a labeled transmission into reused tuple and label storage
// must not heap-allocate in steady state.
func TestDecodeTransmissionIntoZeroAllocs(t *testing.T) {
	s, tp := allocTuple(t)
	dests := []string{"app-a", "app-b", "app-c"}
	data, err := wire.AppendTransmission(nil, tp, dests)
	if err != nil {
		t.Fatal(err)
	}
	var dst tuple.Tuple
	var views [][]byte
	// First decode sizes the values and label slices.
	if views, _, err = wire.DecodeTransmissionInto(&dst, s, views[:0], data); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		var err error
		views, _, err = wire.DecodeTransmissionInto(&dst, s, views[:0], data)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("DecodeTransmissionInto allocates %.2f allocs/op on reuse, want 0", avg)
	}
	if len(views) != len(dests) || string(views[0]) != "app-a" || dst.Seq != tp.Seq {
		t.Fatalf("reuse decode mismatch: %v %+v", views, dst)
	}
}

// TestDecodeTupleNilSchema pins the hoisted nil-schema validation: it must
// fail fast, before any header decode or allocation, for any input.
func TestDecodeTupleNilSchema(t *testing.T) {
	for _, data := range [][]byte{nil, {1, 2}, make([]byte, 64)} {
		if _, _, err := wire.DecodeTuple(nil, data); err == nil {
			t.Fatalf("nil schema accepted for %d-byte input", len(data))
		}
		var dst tuple.Tuple
		if _, err := wire.DecodeTupleInto(&dst, nil, data); err == nil {
			t.Fatalf("nil schema accepted by DecodeTupleInto for %d-byte input", len(data))
		}
	}
}

// TestBufPool covers the pooled encode buffers.
func TestBufPool(t *testing.T) {
	b := wire.GetBuf()
	if len(*b) != 0 {
		t.Fatal("pooled buffer not empty")
	}
	*b = append(*b, 1, 2, 3)
	wire.PutBuf(b)
	wire.PutBuf(nil) // must not panic
	c := wire.GetBuf()
	if len(*c) != 0 {
		t.Fatal("recycled buffer not reset")
	}
	wire.PutBuf(c)
}
