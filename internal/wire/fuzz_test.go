package wire

import (
	"bytes"
	"testing"
	"time"

	"gasf/internal/tuple"
)

// fuzzSchema is the schema malformed inputs are decoded against.
func fuzzSchema(t testing.TB) *tuple.Schema {
	t.Helper()
	s, err := tuple.NewSchema("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// seedTuple returns a valid encoded tuple for the fuzz corpora.
func seedTuple(t testing.TB, s *tuple.Schema) []byte {
	t.Helper()
	tp, err := tuple.New(s, 7, time.Unix(1, 500), []float64{1.5, -2.25, 3e300})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendTuple(nil, tp)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// FuzzDecodeTuple asserts DecodeTuple never panics on malformed input,
// and that every accepted input round-trips byte-identically.
func FuzzDecodeTuple(f *testing.F) {
	s := fuzzSchema(f)
	f.Add(seedTuple(f, s))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0x41}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, n, err := DecodeTuple(s, data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(tp.Values) != s.Len() {
			t.Fatalf("decoded %d values for schema of %d", len(tp.Values), s.Len())
		}
		re, err := AppendTuple(nil, tp)
		if err != nil {
			t.Fatalf("re-encoding accepted tuple: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", data[:n], re)
		}
	})
}

// FuzzDecodeTransmission asserts DecodeTransmission never panics on
// malformed input and accepted transmissions round-trip byte-identically.
func FuzzDecodeTransmission(f *testing.F) {
	s := fuzzSchema(f)
	tp, err := tuple.New(s, 1, time.Unix(2, 0), []float64{1, 2, 3})
	if err != nil {
		f.Fatal(err)
	}
	tr, err := AppendTransmission(nil, tp, []string{"A", "B"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tr)
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01, 0x41})
	f.Add([]byte{0xff, 0xfe, 0xfd})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, dests, n, err := DecodeTransmission(s, data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(dests) == 0 || len(dests) > MaxDestinations {
			t.Fatalf("accepted %d destinations", len(dests))
		}
		re, err := AppendTransmission(nil, tp, dests)
		if err != nil {
			t.Fatalf("re-encoding accepted transmission: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", data[:n], re)
		}
	})
}
