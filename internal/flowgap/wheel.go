// Package flowgap is the broker's two-tier liveness tracker for
// flow-gap detection at large source populations.
//
// Tier 1 (Wheel) tracks the connected sessions: a hierarchical timer
// wheel over coarse monotonic ticks. Touching an entry on the ingest
// hot path is one atomic load plus one atomic store — no lock, no
// clock read, no wheel mutation — because entries are scheduled
// lazily: a bucket coming due re-inspects its entries against their
// last-touch tick and reschedules the live ones instead of moving
// them on every touch. Expiry cost is proportional to the entries
// actually due, not to the population, and the wheel mutex is never
// held while expiry callbacks run.
//
// Tier 2 (Sketch) remembers when each member of a source population —
// including the sources not currently connected — was last heard, in
// bounded memory, so a reconnecting publisher can be classified as
// "returning after a silence gap" without keeping per-name state for
// millions of names. See sketch.go.
package flowgap

import (
	"sync"
	"sync/atomic"
	"time"
)

// Wheel geometry: 256 fine buckets of one tick each, cascading into 64
// coarse buckets of 256 ticks each, for a 16384-tick horizon. Deadlines
// beyond the horizon are clamped to its edge and re-examined there —
// inspection is driven by the entry's touch tick, so a clamped deadline
// only costs an extra look, never an early expiry.
const (
	l0Bits = 8
	l0Size = 1 << l0Bits
	l0Mask = l0Size - 1
	l1Bits = 6
	l1Size = 1 << l1Bits
	l1Mask = l1Size - 1
	span   = l0Size * l1Size
)

// Entry is one tracked session's liveness state, embedded in the
// session so tracking adds no allocation of its own. The touch word
// and busy bit are lock-free and writable from the session's own
// goroutines; everything else belongs to the wheel and is guarded by
// its mutex.
type Entry struct {
	// touch is the tick of the last observed liveness (frame read,
	// heartbeat, submit return). Written by Wheel.Touch, read by the
	// wheel when the entry's bucket comes due.
	touch atomic.Int64
	// busy marks a session parked inside the runtime — a ring submit
	// under backpressure or a Sync barrier awaiting its pong. A busy
	// source publishes nothing by definition, so the wheel treats the
	// state as liveness, not silence: reaping it mid-barrier would tear
	// down a healthy session.
	busy atomic.Bool

	// Wheel-owned intrusive state, guarded by Wheel.mu.
	data       any
	next, prev *Entry
	bucket     *bucket
	// claimed marks that an Advance pass has collected the entry for
	// expiry and its callback may be in flight; Remove reports it so
	// the owner knows the entry is not clean to recycle yet.
	claimed bool
}

// SetBusy flags or clears the parked-in-runtime state.
func (e *Entry) SetBusy(v bool) { e.busy.Store(v) }

// Busy reports the parked-in-runtime state.
func (e *Entry) Busy() bool { return e.busy.Load() }

// LastTouch returns the tick of the last recorded liveness.
func (e *Entry) LastTouch() int64 { return e.touch.Load() }

// Reset clears an entry for reuse. The entry must not be in a wheel.
func (e *Entry) Reset() {
	e.touch.Store(0)
	e.busy.Store(false)
	e.data, e.next, e.prev, e.bucket = nil, nil, nil, nil
	e.claimed = false
}

// bucket is an intrusive doubly-linked list head.
type bucket struct{ head *Entry }

func (b *bucket) push(e *Entry) {
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	e.bucket = b
}

func (b *bucket) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	e.next, e.prev, e.bucket = nil, nil, nil
}

// expiry is one collected expiration, copied out of the entry so the
// callback phase never reads wheel-owned fields without the lock.
type expiry struct {
	e    *Entry
	data any
	lag  time.Duration
}

// Wheel is the tier-1 tracker. Add/Remove/Touch are safe for
// concurrent use; Advance must be driven by a single goroutine (the
// scan loop). All methods are nil-safe so a disabled detector costs
// one branch.
type Wheel struct {
	tick         time.Duration
	timeoutTicks int64
	start        time.Time
	// now caches the current tick so Touch never reads the clock; it
	// advances only in Advance, making expiry strictly late relative to
	// the configured timeout (by up to two ticks), never early.
	now atomic.Int64

	onExpire func(data any, lag time.Duration)

	mu      sync.Mutex
	l0      [l0Size]bucket
	l1      [l1Size]bucket
	cur     int64 // next unprocessed tick; every queued deadline is >= cur
	size    int
	scratch []expiry

	// Stats, updated under mu or atomically.
	maxDepth    atomic.Int64
	inspections atomic.Uint64
	reschedules atomic.Uint64
	cascades    atomic.Uint64
	expirations atomic.Uint64
}

// WheelStats is a point-in-time snapshot of the wheel.
type WheelStats struct {
	Entries        int           `json:"entries"`
	NowTick        int64         `json:"now_tick"`
	Tick           time.Duration `json:"tick_ns"`
	TimeoutTicks   int64         `json:"timeout_ticks"`
	MaxBucketDepth int64         `json:"max_bucket_depth"`
	Inspections    uint64        `json:"inspections"`
	Reschedules    uint64        `json:"reschedules"`
	Cascades       uint64        `json:"cascades"`
	Expirations    uint64        `json:"expirations"`
}

// NewWheel returns a wheel with the given tick granularity and silence
// timeout. onExpire is invoked from Advance — outside the wheel mutex —
// once per expired entry, with the entry's data and how far past its
// deadline the expiry fired.
func NewWheel(tick, timeout time.Duration, onExpire func(data any, lag time.Duration)) *Wheel {
	if tick <= 0 {
		tick = time.Second
	}
	tt := int64((timeout + tick - 1) / tick)
	if tt < 1 {
		tt = 1
	}
	return &Wheel{
		tick:         tick,
		timeoutTicks: tt,
		start:        time.Now(),
		onExpire:     onExpire,
	}
}

// Tick returns the wheel granularity.
func (w *Wheel) Tick() time.Duration {
	if w == nil {
		return 0
	}
	return w.tick
}

// TimeoutTicks returns the silence threshold in ticks.
func (w *Wheel) TimeoutTicks() int64 {
	if w == nil {
		return 0
	}
	return w.timeoutTicks
}

// NowTick returns the cached current tick.
func (w *Wheel) NowTick() int64 {
	if w == nil {
		return 0
	}
	return w.now.Load()
}

// TickTime converts a tick to the wall instant of its start.
func (w *Wheel) TickTime(tick int64) time.Time {
	if w == nil {
		return time.Time{}
	}
	return w.start.Add(time.Duration(tick) * w.tick)
}

// Touch records liveness for e: one atomic load (the cached tick) and
// one atomic store. The wheel itself is untouched; the new tick is
// honored when the entry's bucket next comes due.
func (w *Wheel) Touch(e *Entry) {
	if w == nil {
		return
	}
	e.touch.Store(w.now.Load())
}

// Add inserts e with the given payload, due one timeout from now.
func (w *Wheel) Add(e *Entry, data any) {
	if w == nil {
		return
	}
	now := w.now.Load()
	e.touch.Store(now)
	w.mu.Lock()
	e.data = data
	e.claimed = false
	w.schedule(e, now+w.timeoutTicks)
	w.size++
	w.mu.Unlock()
}

// Remove takes e out of the wheel. It reports whether the entry is
// clean: false means an Advance pass has claimed it for expiry and its
// callback may still be running, so the owner must not recycle the
// entry (or whatever embeds it) — letting the garbage collector take
// that rare loser is the whole synchronization.
func (w *Wheel) Remove(e *Entry) bool {
	if w == nil {
		return true
	}
	w.mu.Lock()
	if e.bucket != nil {
		e.bucket.unlink(e)
		w.size--
	}
	clean := !e.claimed
	if clean {
		e.data = nil
	}
	w.mu.Unlock()
	return clean
}

// schedule queues e at the given absolute tick. Caller holds mu.
func (w *Wheel) schedule(e *Entry, deadline int64) {
	if deadline < w.cur {
		deadline = w.cur
	}
	if deadline-w.cur >= span {
		// Beyond the horizon: park at the edge and re-inspect there.
		deadline = w.cur + span - 1
	}
	if deadline-w.cur < l0Size {
		w.l0[deadline&l0Mask].push(e)
	} else {
		w.l1[(deadline>>l0Bits)&l1Mask].push(e)
	}
}

// Advance moves the wheel to the tick containing now, inspecting every
// bucket that came due: live entries (touched within the timeout, or
// busy) are rescheduled at their next possible deadline; silent ones
// are expired via the callback. Returns the number of expirations.
// Must be called from a single goroutine.
func (w *Wheel) Advance(now time.Time) int {
	if w == nil {
		return 0
	}
	target := int64(now.Sub(w.start) / w.tick)
	if target < 0 {
		target = 0
	}
	w.now.Store(target)
	w.mu.Lock()
	if w.size == 0 {
		// Empty wheel: nothing can be queued below cur, so the pass is
		// pure bookkeeping however long the wheel idled.
		if target >= w.cur {
			w.cur = target + 1
		}
	} else if target >= w.cur {
		// One full revolution visits every bucket, so a pass longer
		// than the horizon (a stalled scan loop, a suspended laptop)
		// can skip ahead: entries are inspected against their touch
		// tick, not their bucket position, so a late inspection is
		// still a correct one.
		if target-w.cur >= span {
			w.cur = target - span + 1
		}
		for t := w.cur; t <= target; t++ {
			// schedule() places buckets relative to cur, so it must track
			// the tick being processed: a mid-pass reschedule is relative
			// to t, not to where the pass started.
			w.cur = t
			if t&l0Mask == 0 {
				w.cascade(t)
			}
			w.drain(t, now)
		}
		w.cur = target + 1
	}
	out := w.scratch
	w.mu.Unlock()

	if len(out) == 0 {
		return 0
	}
	for i := range out {
		if w.onExpire != nil {
			w.onExpire(out[i].data, out[i].lag)
		}
	}
	// Callbacks done: release the claims so owners can recycle entries
	// removed from here on.
	w.mu.Lock()
	for i := range out {
		out[i].e.claimed = false
		out[i].e.data = nil
	}
	w.mu.Unlock()
	clear(out)
	w.scratch = out[:0]
	return len(out)
}

// cascade redistributes the coarse bucket whose window starts at tick t
// into the fine buckets. Caller holds mu.
func (w *Wheel) cascade(t int64) {
	b := &w.l1[(t>>l0Bits)&l1Mask]
	e := b.head
	b.head = nil
	for e != nil {
		next := e.next
		e.next, e.prev, e.bucket = nil, nil, nil
		// Entries in this window have deadlines in [t, t+l0Size), all
		// within fine range of cur (== t during the pass).
		due := e.touch.Load() + w.timeoutTicks
		w.schedule(e, due)
		w.cascades.Add(1)
		e = next
	}
}

// drain inspects the fine bucket for tick t. Caller holds mu.
func (w *Wheel) drain(t int64, now time.Time) {
	b := &w.l0[t&l0Mask]
	e := b.head
	b.head = nil
	depth := int64(0)
	for e != nil {
		next := e.next
		e.next, e.prev, e.bucket = nil, nil, nil
		depth++
		w.inspections.Add(1)
		due := e.touch.Load() + w.timeoutTicks
		switch {
		case e.busy.Load():
			// Parked in the runtime: liveness by definition. Re-arm a
			// full timeout out; the flag clearing refreshes touch.
			w.schedule(e, t+w.timeoutTicks)
			w.reschedules.Add(1)
		case due > t:
			// Touched since it was queued: sleep until the new deadline.
			w.schedule(e, due)
			w.reschedules.Add(1)
		default:
			e.claimed = true
			w.size--
			w.expirations.Add(1)
			lag := now.Sub(w.TickTime(due))
			if lag < 0 {
				lag = 0
			}
			w.scratch = append(w.scratch, expiry{e: e, data: e.data, lag: lag})
		}
		e = next
	}
	if depth > w.maxDepth.Load() {
		w.maxDepth.Store(depth)
	}
}

// Size returns the tracked-entry count.
func (w *Wheel) Size() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Stats snapshots the wheel counters.
func (w *Wheel) Stats() WheelStats {
	if w == nil {
		return WheelStats{}
	}
	w.mu.Lock()
	size := w.size
	w.mu.Unlock()
	return WheelStats{
		Entries:        size,
		NowTick:        w.now.Load(),
		Tick:           w.tick,
		TimeoutTicks:   w.timeoutTicks,
		MaxBucketDepth: w.maxDepth.Load(),
		Inspections:    w.inspections.Load(),
		Reschedules:    w.reschedules.Load(),
		Cascades:       w.cascades.Load(),
		Expirations:    w.expirations.Load(),
	}
}
