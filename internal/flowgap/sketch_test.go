package flowgap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestSketchRecordAndLastSeen(t *testing.T) {
	s := NewSketch(1024)
	if _, known := s.LastSeen("a"); known {
		t.Fatal("empty sketch knows a name")
	}
	if prev, known := s.Record("a", 5); known || prev != 0 {
		t.Fatalf("first record: prev=%d known=%v", prev, known)
	}
	if tick, known := s.LastSeen("a"); !known || tick != 5 {
		t.Fatalf("LastSeen = %d,%v want 5,true", tick, known)
	}
	if prev, known := s.Record("a", 9); !known || prev != 5 {
		t.Fatalf("second record: prev=%d known=%v want 5,true", prev, known)
	}
	if tick, known := s.LastSeen("a"); !known || tick != 9 {
		t.Fatalf("LastSeen after update = %d,%v", tick, known)
	}
	st := s.Stats()
	if st.Occupied != 1 || st.Records != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSketchTickZeroRoundTrips(t *testing.T) {
	s := NewSketch(256)
	s.Record("z", 0)
	if tick, known := s.LastSeen("z"); !known || tick != 0 {
		t.Fatalf("tick 0 round trip = %d,%v", tick, known)
	}
}

// TestSketchErrorBounds is the exact-vs-sketch property test: it replays
// the same stream of (name, tick) records into the sketch and into an
// exact map and pins the two failure modes.
//
//   - False negative (a recorded flow the sketch forgot or mis-ticks):
//     bounded by row-overflow eviction, negligible at low occupancy and
//     degrading gracefully as load grows.
//   - False positive (a never-recorded flow the sketch claims to know):
//     a fingerprint collision within one row, ~occupancy x 2^-16.
func TestSketchErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const cells = 1 << 12 // 4096 cells, 1024 rows
	for _, tc := range []struct {
		load       float64 // flows as a fraction of cells
		maxFNRate  float64
		maxFPRate  float64
		wantUsable bool
	}{
		{load: 0.25, maxFNRate: 0.01, maxFPRate: 0.001},
		{load: 0.50, maxFNRate: 0.10, maxFPRate: 0.001},
	} {
		t.Run(fmt.Sprintf("load=%.2f", tc.load), func(t *testing.T) {
			s := NewSketch(cells)
			exact := make(map[string]int64)
			n := int(tc.load * cells)
			// Record each flow once at a distinct tick, in random order,
			// with a few re-records mixed in (which must never hurt).
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("flow-%d-%d", i, rng.Int63())
				tick := int64(i + 1)
				s.Record(name, tick)
				exact[name] = tick
				if rng.Intn(4) == 0 {
					tick += int64(n)
					s.Record(name, tick)
					exact[name] = tick
				}
			}

			// False negatives: recorded flows the sketch lost or answers
			// with the wrong tick.
			fn := 0
			for name, want := range exact {
				got, known := s.LastSeen(name)
				if !known || got != want {
					fn++
				}
			}
			fnRate := float64(fn) / float64(len(exact))
			if fnRate > tc.maxFNRate {
				t.Errorf("false-negative rate %.4f > %.4f at load %.2f (evictions=%d)",
					fnRate, tc.maxFNRate, tc.load, s.Stats().Evictions)
			}

			// False positives: flows never recorded that the sketch
			// claims to know.
			const probes = 20000
			fp := 0
			for i := 0; i < probes; i++ {
				name := fmt.Sprintf("absent-%d-%d", i, rng.Int63())
				if _, known := s.LastSeen(name); known {
					fp++
				}
			}
			fpRate := float64(fp) / probes
			if fpRate > tc.maxFPRate {
				t.Errorf("false-positive rate %.5f > %.5f at load %.2f", fpRate, tc.maxFPRate, tc.load)
			}
			t.Logf("load %.2f: FN %.4f (cap %.4f), FP %.5f (cap %.5f), evictions %d, occupied %d/%d",
				tc.load, fnRate, tc.maxFNRate, fpRate, tc.maxFPRate,
				s.Stats().Evictions, s.Stats().Occupied, cells)
		})
	}
}

// TestSketchEvictsOldest pins the victim policy: overflowing a row must
// evict the stalest tick, keeping recent flows answerable.
func TestSketchEvictsOldest(t *testing.T) {
	s := NewSketch(256) // 64 rows
	// Find sketchWays+1 names landing in the same row with distinct
	// fingerprints.
	row := func(name string) uint64 { return fnv1a(name) & s.mask }
	var names []string
	var target uint64
	for i := 0; len(names) <= sketchWays; i++ {
		name := fmt.Sprintf("n%d", i)
		if len(names) == 0 {
			target = row(name)
			names = append(names, name)
			continue
		}
		if row(name) != target {
			continue
		}
		dup := false
		for _, prev := range names {
			if uint16(fnv1a(prev)>>48) == uint16(fnv1a(name)>>48) {
				dup = true
				break
			}
		}
		if !dup {
			names = append(names, name)
		}
	}
	for i, name := range names {
		s.Record(name, int64(i+1)) // names[0] is oldest
	}
	// The overflow (names[4] into a 4-way row) must have evicted
	// names[0] and kept the rest.
	if _, known := s.LastSeen(names[0]); known {
		t.Fatal("oldest cell survived an overflow eviction")
	}
	for i := 1; i < len(names); i++ {
		if tick, known := s.LastSeen(names[i]); !known || tick != int64(i+1) {
			t.Fatalf("recent flow %d lost (tick=%d known=%v)", i, tick, known)
		}
	}
}

// TestSketchConcurrent hammers the sketch from many goroutines; run
// with -race. Lossy interleavings are allowed, torn state is not: any
// answered tick must be one that was actually recorded for that name.
func TestSketchConcurrent(t *testing.T) {
	s := NewSketch(1 << 10)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", g)
			for i := 1; i <= perWorker; i++ {
				s.Record(name, int64(i))
				if tick, known := s.LastSeen(name); known && (tick < 0 || tick > perWorker) {
					t.Errorf("worker %d read out-of-range tick %d", g, tick)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < workers; g++ {
		name := fmt.Sprintf("w%d", g)
		if tick, known := s.LastSeen(name); !known || tick != perWorker {
			t.Fatalf("%s final tick = %d,%v want %d,true", name, tick, known, perWorker)
		}
	}
}
