package flowgap

import "sync/atomic"

// Sketch is the tier-2 gap detector: a bounded-memory map from flow
// name to last-seen tick, in the spirit of the flow-gap sketches of
// "Detecting Flow Gaps in Data Streams" — the population it remembers
// may be far larger than the sessions currently connected, and the
// memory never grows with it.
//
// Layout: a power-of-two array of rows, four cells per row, one atomic
// uint64 per cell packing a 16-bit fingerprint of the name with a
// 32-bit last-seen tick (stored +1 so a packed zero means empty). A
// record hashes to one row; within the row its fingerprint picks the
// cell, and when all four cells are foreign the oldest (minimum tick)
// is evicted — silence tracking wants the recently-heard flows, so
// age is the right victim ordering.
//
// Being a sketch, answers are approximate in two bounded ways:
//
//   - False positive: a different name with the same row and
//     fingerprint serves its tick as ours (probability ~ occupancy ×
//     2^-16 per lookup).
//   - False negative: our cell was evicted by row overflow, so a real
//     gap goes unreported (probability grows with row load; negligible
//     below ~25% global occupancy, see the property test).
//
// Both failure modes degrade detection quality, never correctness of
// the broker: a false positive mislabels a reconnect as gap-recovered,
// a false negative misses the label. Updates are lock-free and lossy
// under contention (a lost update re-records on the next touch).
type Sketch struct {
	mask  uint64
	cells []atomic.Uint64

	occupied  atomic.Int64
	records   atomic.Uint64
	evictions atomic.Uint64
}

// sketchWays is the row associativity.
const sketchWays = 4

// SketchStats is a point-in-time snapshot of the sketch.
type SketchStats struct {
	Cells     int    `json:"cells"`
	Occupied  int64  `json:"occupied"`
	Records   uint64 `json:"records"`
	Evictions uint64 `json:"evictions"`
}

// NewSketch returns a sketch with at least the given number of cells
// (rounded up to a power-of-two row count; minimum 256 cells). Size it
// at ~4x the expected population for negligible false negatives.
func NewSketch(cells int) *Sketch {
	rows := 64
	for rows*sketchWays < cells {
		rows <<= 1
	}
	return &Sketch{
		mask:  uint64(rows - 1),
		cells: make([]atomic.Uint64, rows*sketchWays),
	}
}

// fnv1a is FNV-1a 64: cheap, alloc-free, good enough dispersion for a
// fingerprinted cuckoo-style row.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func pack(fp uint16, tick int64) uint64 {
	// Stored tick is +1 so an empty cell (all zeroes) is unambiguous;
	// the low 32 bits wrap after ~4 billion ticks, beyond any plausible
	// process lifetime at sane tick granularities.
	return uint64(fp)<<48 | uint64(uint32(tick)+1)
}

func unpackTick(v uint64) int64 { return int64(uint32(v)) - 1 }
func unpackFP(v uint64) uint16  { return uint16(v >> 48) }

// Record notes that name was heard at tick. It returns the previously
// recorded tick, with known=false when the sketch had no cell for the
// name (first sight, or evicted since).
func (s *Sketch) Record(name string, tick int64) (prev int64, known bool) {
	if s == nil {
		return 0, false
	}
	s.records.Add(1)
	h := fnv1a(name)
	fp := uint16(h >> 48)
	row := (h & s.mask) * sketchWays
	packed := pack(fp, tick)

	var emptyIdx, minIdx = -1, -1
	var minVal uint64
	for i := 0; i < sketchWays; i++ {
		c := &s.cells[row+uint64(i)]
		v := c.Load()
		if v == 0 {
			if emptyIdx < 0 {
				emptyIdx = i
			}
			continue
		}
		if unpackFP(v) == fp {
			c.Store(packed)
			return unpackTick(v), true
		}
		if minIdx < 0 || v&0xffffffff < minVal&0xffffffff {
			minIdx, minVal = i, v
		}
	}
	if emptyIdx >= 0 {
		// Claim the empty cell with a CAS so two first-sight racers
		// cannot both count an occupation; the loser falls back to a
		// plain store (one lossy overwrite, self-healing on next touch).
		c := &s.cells[row+uint64(emptyIdx)]
		if c.CompareAndSwap(0, packed) {
			s.occupied.Add(1)
		} else {
			c.Store(packed)
		}
		return 0, false
	}
	// Row full of foreign flows: evict the oldest.
	s.cells[row+uint64(minIdx)].Store(packed)
	s.evictions.Add(1)
	return 0, false
}

// LastSeen returns the recorded last-seen tick for name, if any.
func (s *Sketch) LastSeen(name string) (tick int64, known bool) {
	if s == nil {
		return 0, false
	}
	h := fnv1a(name)
	fp := uint16(h >> 48)
	row := (h & s.mask) * sketchWays
	for i := 0; i < sketchWays; i++ {
		v := s.cells[row+uint64(i)].Load()
		if v != 0 && unpackFP(v) == fp {
			return unpackTick(v), true
		}
	}
	return 0, false
}

// Stats snapshots the sketch counters.
func (s *Sketch) Stats() SketchStats {
	if s == nil {
		return SketchStats{}
	}
	return SketchStats{
		Cells:     len(s.cells),
		Occupied:  s.occupied.Load(),
		Records:   s.records.Load(),
		Evictions: s.evictions.Load(),
	}
}
