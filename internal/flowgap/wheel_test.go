package flowgap

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// advanceTo drives the wheel tick-by-tick to the given tick using
// synthetic wall times, the way the scan loop would.
func advanceTo(w *Wheel, tick int64) int {
	n := 0
	n += w.Advance(w.start.Add(time.Duration(tick) * w.tick))
	return n
}

func newTestWheel(timeoutTicks int64, onExpire func(any, time.Duration)) *Wheel {
	return NewWheel(time.Millisecond, time.Duration(timeoutTicks)*time.Millisecond, onExpire)
}

func TestWheelExpiresSilentEntry(t *testing.T) {
	var expired []string
	w := newTestWheel(10, func(d any, lag time.Duration) {
		expired = append(expired, d.(string))
		if lag < 0 {
			t.Errorf("negative lag %v", lag)
		}
	})
	var e Entry
	w.Add(&e, "a")
	if n := advanceTo(w, 9); n != 0 {
		t.Fatalf("expired %d entries before the timeout elapsed: %v", n, expired)
	}
	if n := advanceTo(w, 10); n != 1 || len(expired) != 1 || expired[0] != "a" {
		t.Fatalf("expired=%v n=%d, want [a] at the deadline tick", expired, n)
	}
	if w.Size() != 0 {
		t.Fatalf("size %d after expiry", w.Size())
	}
}

func TestWheelTouchKeepsAlive(t *testing.T) {
	var expired atomic.Int64
	w := newTestWheel(10, func(any, time.Duration) { expired.Add(1) })
	var live, dead Entry
	w.Add(&live, "live")
	w.Add(&dead, "dead")
	for tick := int64(1); tick <= 100; tick++ {
		w.Touch(&live)
		advanceTo(w, tick)
	}
	if got := expired.Load(); got != 1 {
		t.Fatalf("expired %d entries, want only the silent one", got)
	}
	if w.Size() != 1 {
		t.Fatalf("size %d, want the touched entry still tracked", w.Size())
	}
}

func TestWheelBusyEntryImmune(t *testing.T) {
	var expired atomic.Int64
	w := newTestWheel(5, func(any, time.Duration) { expired.Add(1) })
	var e Entry
	w.Add(&e, "busy")
	e.SetBusy(true)
	advanceTo(w, 100)
	if got := expired.Load(); got != 0 {
		t.Fatalf("busy entry expired (%d)", got)
	}
	// Clearing busy without touching: expires one timeout after the
	// last re-arm.
	e.SetBusy(false)
	advanceTo(w, 200)
	if got := expired.Load(); got != 1 {
		t.Fatalf("entry did not expire after busy cleared (%d)", got)
	}
}

func TestWheelRemoveClean(t *testing.T) {
	w := newTestWheel(10, func(any, time.Duration) {})
	var e Entry
	w.Add(&e, "a")
	if !w.Remove(&e) {
		t.Fatal("unclaimed entry reported unclean")
	}
	if w.Size() != 0 {
		t.Fatalf("size %d after remove", w.Size())
	}
	// Removing twice is a no-op.
	if !w.Remove(&e) {
		t.Fatal("second remove reported unclean")
	}
}

func TestWheelRemoveDuringExpiryCallbackIsUnclean(t *testing.T) {
	w := NewWheel(time.Millisecond, 5*time.Millisecond, nil)
	var e Entry
	results := make(chan bool, 1)
	w.onExpire = func(d any, _ time.Duration) {
		// Concurrent removal while the callback runs: the claim must
		// deny the clean bill.
		results <- w.Remove(&e)
	}
	w.Add(&e, "a")
	advanceTo(w, 100)
	if clean := <-results; clean {
		t.Fatal("Remove during expiry callback reported clean")
	}
	// After Advance returned, the claim is released.
	if !w.Remove(&e) {
		t.Fatal("Remove after Advance completed reported unclean")
	}
}

// TestWheelLongTimeoutCascades exercises the coarse level: a timeout
// beyond the fine span must still expire (via cascade), and ahead of
// schedule never.
func TestWheelLongTimeoutCascades(t *testing.T) {
	var expired atomic.Int64
	timeout := int64(3*l0Size + 17)
	w := newTestWheel(timeout, func(any, time.Duration) { expired.Add(1) })
	var e Entry
	w.Add(&e, "far")
	advanceTo(w, timeout-1)
	if got := expired.Load(); got != 0 {
		t.Fatalf("expired %d ticks early", timeout-1)
	}
	advanceTo(w, timeout+1)
	if got := expired.Load(); got != 1 {
		t.Fatalf("long-timeout entry not expired (%d)", got)
	}
	if s := w.Stats(); s.Cascades == 0 {
		t.Fatal("no cascades recorded for a beyond-fine-span timeout")
	}
}

// TestWheelBeyondHorizon pins the clamp: a timeout past the whole wheel
// span parks at the horizon edge and is re-inspected, expiring late but
// never early and never lost.
func TestWheelBeyondHorizon(t *testing.T) {
	var expired atomic.Int64
	timeout := int64(span + 123)
	w := newTestWheel(timeout, func(any, time.Duration) { expired.Add(1) })
	var e Entry
	w.Add(&e, "huge")
	advanceTo(w, timeout-1)
	if got := expired.Load(); got != 0 {
		t.Fatal("expired before its timeout")
	}
	advanceTo(w, timeout+span)
	if got := expired.Load(); got != 1 {
		t.Fatalf("beyond-horizon entry lost (expired=%d)", got)
	}
}

// TestWheelStalledScanJump pins the skip-ahead: a scan loop stalled for
// many horizons still expires everything due, in one bounded pass.
func TestWheelStalledScanJump(t *testing.T) {
	var expired atomic.Int64
	w := newTestWheel(10, func(any, time.Duration) { expired.Add(1) })
	entries := make([]Entry, 100)
	for i := range entries {
		w.Add(&entries[i], i)
	}
	advanceTo(w, 10*span)
	if got := expired.Load(); got != 100 {
		t.Fatalf("expired %d of 100 after a stalled-scan jump", got)
	}
	if w.Size() != 0 {
		t.Fatalf("size %d after jump", w.Size())
	}
}

// TestWheelChurnRace hammers concurrent Add/Touch/Remove against an
// advancing wheel; run with -race. Every entry must end either removed
// by its owner or expired, never both leaked.
func TestWheelChurnRace(t *testing.T) {
	var expired atomic.Int64
	w := NewWheel(100*time.Microsecond, time.Millisecond, func(any, time.Duration) {
		expired.Add(1)
	})
	stop := make(chan struct{})
	var advWG sync.WaitGroup
	advWG.Add(1)
	go func() {
		defer advWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				w.Advance(time.Now())
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	var removedClean atomic.Int64
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var e Entry
				w.Add(&e, g*perWorker+i)
				for j := 0; j < 3; j++ {
					w.Touch(&e)
					e.SetBusy(j%2 == 0)
				}
				e.SetBusy(false)
				if i%3 == 0 {
					time.Sleep(2 * time.Millisecond) // let some expire
				}
				if w.Remove(&e) {
					removedClean.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	advWG.Wait()
	if w.Size() != 0 {
		t.Fatalf("size %d after churn, want 0", w.Size())
	}
	t.Logf("churn: %d removed clean, %d expired", removedClean.Load(), expired.Load())
}
