package tuple

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ts(ms int) time.Time {
	return time.Unix(0, 0).Add(time.Duration(ms) * time.Millisecond)
}

func TestNewSchemaValidation(t *testing.T) {
	tests := []struct {
		name    string
		attrs   []string
		wantErr bool
	}{
		{"empty", nil, true},
		{"single", []string{"a"}, false},
		{"duplicate", []string{"a", "b", "a"}, true},
		{"blank name", []string{"a", ""}, true},
		{"namos", []string{"tmpr1", "tmpr2", "tmpr3", "tmpr4", "tmpr5", "tmpr6", "fluoro"}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSchema(tc.attrs...)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewSchema(%v) error = %v, wantErr %v", tc.attrs, err, tc.wantErr)
			}
			if err == nil && s.Len() != len(tc.attrs) {
				t.Errorf("Len() = %d, want %d", s.Len(), len(tc.attrs))
			}
		})
	}
}

func TestSchemaIndexAndHas(t *testing.T) {
	s := MustSchema("x", "y", "z")
	for i, n := range []string{"x", "y", "z"} {
		got, err := s.Index(n)
		if err != nil {
			t.Fatalf("Index(%q) error: %v", n, err)
		}
		if got != i {
			t.Errorf("Index(%q) = %d, want %d", n, got, i)
		}
		if !s.Has(n) {
			t.Errorf("Has(%q) = false, want true", n)
		}
	}
	if _, err := s.Index("missing"); err == nil {
		t.Error("Index(missing) should fail")
	}
	if s.Has("missing") {
		t.Error("Has(missing) = true, want false")
	}
}

func TestSchemaNamesIsCopy(t *testing.T) {
	s := MustSchema("a", "b")
	names := s.Names()
	names[0] = "mutated"
	if got, _ := s.Index("a"); got != 0 {
		t.Error("mutating Names() result affected schema")
	}
	if s.Names()[0] != "a" {
		t.Error("schema names were mutated through Names()")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema with duplicate names should panic")
		}
	}()
	MustSchema("a", "a")
}

func TestNewTupleCopiesValues(t *testing.T) {
	s := MustSchema("v")
	buf := []float64{1.5}
	tp, err := New(s, 0, ts(0), buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	if tp.ValueAt(0) != 1.5 {
		t.Errorf("tuple value mutated through caller buffer: got %g", tp.ValueAt(0))
	}
}

func TestNewTupleValidation(t *testing.T) {
	s := MustSchema("a", "b")
	if _, err := New(nil, 0, ts(0), []float64{1}); err == nil {
		t.Error("nil schema should fail")
	}
	if _, err := New(s, 0, ts(0), []float64{1}); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := New(s, 0, ts(0), []float64{1, 2}); err != nil {
		t.Errorf("valid tuple failed: %v", err)
	}
}

func TestTupleValueByName(t *testing.T) {
	s := MustSchema("tmpr", "fluoro")
	tp := MustNew(s, 3, ts(30), []float64{21.5, 0.07})
	v, err := tp.Value("fluoro")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.07 {
		t.Errorf("Value(fluoro) = %g, want 0.07", v)
	}
	if _, err := tp.Value("nope"); err == nil {
		t.Error("Value(nope) should fail")
	}
}

func TestTupleString(t *testing.T) {
	s := MustSchema("a")
	tp := MustNew(s, 7, ts(10), []float64{42})
	got := tp.String()
	for _, want := range []string{"#7", "a=42"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestSeriesAppendOrdering(t *testing.T) {
	s := MustSchema("v")
	sr := NewSeries(s)
	if err := sr.Append(MustNew(s, 0, ts(10), []float64{1})); err != nil {
		t.Fatal(err)
	}
	if err := sr.Append(MustNew(s, 1, ts(5), []float64{2})); err == nil {
		t.Error("out-of-order append should fail")
	}
	if err := sr.Append(MustNew(s, 1, ts(10), []float64{2})); err != nil {
		t.Errorf("equal-timestamp append should succeed: %v", err)
	}
}

func TestSeriesRejectsForeignSchema(t *testing.T) {
	s1 := MustSchema("v")
	s2 := MustSchema("v")
	sr := NewSeries(s1)
	if err := sr.Append(MustNew(s2, 0, ts(0), []float64{1})); err == nil {
		t.Error("append with different schema instance should fail")
	}
}

func TestSeriesColumnAndSlice(t *testing.T) {
	s := MustSchema("a", "b")
	sr := NewSeries(s)
	for i := 0; i < 5; i++ {
		if err := sr.Append(MustNew(s, i, ts(i*10), []float64{float64(i), float64(i * i)})); err != nil {
			t.Fatal(err)
		}
	}
	col, err := sr.Column("b")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 4, 9, 16}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("Column(b)[%d] = %g, want %g", i, col[i], want[i])
		}
	}
	sub, err := sr.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.At(0).Seq != 1 {
		t.Errorf("Slice(1,3) wrong: len=%d first=%d", sub.Len(), sub.At(0).Seq)
	}
	if _, err := sr.Slice(3, 1); err == nil {
		t.Error("inverted slice should fail")
	}
	if _, err := sr.Slice(0, 99); err == nil {
		t.Error("overlong slice should fail")
	}
}

func TestMeanAbsChange(t *testing.T) {
	s := MustSchema("v")
	sr := NewSeries(s)
	vals := []float64{0, 35, 29, 45, 50, 59, 80, 97, 100}
	for i, v := range vals {
		if err := sr.Append(MustNew(s, i, ts(i*10), []float64{v})); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sr.MeanAbsChange("v")
	if err != nil {
		t.Fatal(err)
	}
	// |35|+|−6|+|16|+|5|+|9|+|21|+|17|+|3| = 112 over 8 gaps.
	want := 112.0 / 8.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanAbsChange = %g, want %g", got, want)
	}
}

func TestMeanAbsChangeTooShort(t *testing.T) {
	s := MustSchema("v")
	sr := NewSeries(s)
	if err := sr.Append(MustNew(s, 0, ts(0), []float64{1})); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.MeanAbsChange("v"); err == nil {
		t.Error("MeanAbsChange on 1-tuple series should fail")
	}
}

func TestTuplesReturnsCopy(t *testing.T) {
	s := MustSchema("v")
	sr := NewSeries(s)
	if err := sr.Append(MustNew(s, 0, ts(0), []float64{1})); err != nil {
		t.Fatal(err)
	}
	tps := sr.Tuples()
	tps[0] = nil
	if sr.At(0) == nil {
		t.Error("mutating Tuples() result affected series")
	}
}

// Property: MeanAbsChange is invariant under adding a constant to all values,
// and scales linearly with the values.
func TestMeanAbsChangeProperties(t *testing.T) {
	s := MustSchema("v")
	f := func(raw []int8, shiftRaw int8) bool {
		if len(raw) < 2 {
			return true
		}
		shift := float64(shiftRaw)
		base := NewSeries(s)
		shifted := NewSeries(s)
		scaled := NewSeries(s)
		for i, r := range raw {
			v := float64(r)
			_ = base.Append(MustNew(s, i, ts(i), []float64{v}))
			_ = shifted.Append(MustNew(s, i, ts(i), []float64{v + shift}))
			_ = scaled.Append(MustNew(s, i, ts(i), []float64{v * 3}))
		}
		b, _ := base.MeanAbsChange("v")
		sh, _ := shifted.MeanAbsChange("v")
		sc, _ := scaled.MeanAbsChange("v")
		return math.Abs(b-sh) < 1e-9 && math.Abs(sc-3*b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortedBySeq(t *testing.T) {
	s := MustSchema("v")
	sr := NewSeries(s)
	for i := 0; i < 4; i++ {
		if err := sr.Append(MustNew(s, i, ts(i), []float64{0})); err != nil {
			t.Fatal(err)
		}
	}
	if !sr.SortedBySeq() {
		t.Error("SortedBySeq = false for in-order series")
	}
}
