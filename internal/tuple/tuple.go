// Package tuple defines the data model shared by every layer of the
// group-aware stream filtering system: schemas, timestamped tuples, and
// finite series of tuples.
//
// The paper (§2.2.1) models a data source as an infinite, time-ordered
// series of self-describing tuples, each a collection of attribute-value
// pairs timestamped at the originating source. We fix a per-source Schema
// (ordered attribute names) so tuples can store values in a flat slice,
// which keeps the hot filtering path allocation-free.
package tuple

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Schema is an immutable, ordered set of attribute names for one source.
// A Schema must be created with NewSchema; the zero value is unusable.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from the given attribute names.
// Names must be unique and non-empty.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("tuple: schema needs at least one attribute")
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("tuple: empty attribute name at position %d", i)
		}
		if _, dup := idx[n]; dup {
			return nil, fmt.Errorf("tuple: duplicate attribute %q", n)
		}
		idx[n] = i
	}
	cp := make([]string, len(names))
	copy(cp, names)
	return &Schema{names: cp, index: idx}, nil
}

// MustSchema is NewSchema that panics on error; intended for tests,
// examples, and compile-time-constant schemas.
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Names returns a copy of the attribute names in schema order.
func (s *Schema) Names() []string {
	cp := make([]string, len(s.names))
	copy(cp, s.names)
	return cp
}

// Index returns the position of the named attribute, or an error if the
// attribute is not part of the schema.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("tuple: attribute %q not in schema [%s]", name, strings.Join(s.names, ", "))
	}
	return i, nil
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// String implements fmt.Stringer.
func (s *Schema) String() string {
	return "(" + strings.Join(s.names, ", ") + ")"
}

// Equal reports whether two schemas declare the same attributes in the
// same order. Distinct Schema values created from the same names are
// equal; tuples bound to either behave identically.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.names) != len(o.names) {
		return false
	}
	for i, n := range s.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

// Tuple is one item of a stream: a sequence number assigned by the source,
// a source timestamp, and one value per schema attribute.
//
// Tuples are treated as immutable once emitted by a source; filters do data
// selection only (§1.2) and never modify values (the data-accuracy
// requirement of §3.1).
type Tuple struct {
	// Seq is the 0-based position of the tuple in its source stream.
	Seq int
	// TS is the source timestamp.
	TS time.Time
	// Values holds one value per schema attribute, in schema order.
	Values []float64

	schema *Schema
}

// New creates a tuple bound to the given schema. The values slice is copied
// so the caller may reuse its buffer.
func New(s *Schema, seq int, ts time.Time, values []float64) (*Tuple, error) {
	if s == nil {
		return nil, fmt.Errorf("tuple: nil schema")
	}
	if len(values) != s.Len() {
		return nil, fmt.Errorf("tuple: got %d values for schema of %d attributes", len(values), s.Len())
	}
	v := make([]float64, len(values))
	copy(v, values)
	return &Tuple{Seq: seq, TS: ts, Values: v, schema: s}, nil
}

// Reuse reinitializes t in place: it binds t to the schema with the given
// sequence number and timestamp, recycles the Values backing array, and
// returns the values slice (length s.Len()) for the caller to fill. It is
// the zero-allocation counterpart of New for hot decode loops; the caller
// owns t exclusively and must not hand it to consumers that retain tuples
// (the engine does) while continuing to reuse it.
func Reuse(t *Tuple, s *Schema, seq int, ts time.Time) ([]float64, error) {
	if s == nil {
		return nil, fmt.Errorf("tuple: nil schema")
	}
	n := s.Len()
	if cap(t.Values) < n {
		t.Values = make([]float64, n)
	} else {
		t.Values = t.Values[:n]
	}
	t.Seq, t.TS, t.schema = seq, ts, s
	return t.Values, nil
}

// MustNew is New that panics on error.
func MustNew(s *Schema, seq int, ts time.Time, values []float64) *Tuple {
	t, err := New(s, seq, ts, values)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the tuple's schema.
func (t *Tuple) Schema() *Schema { return t.schema }

// Value returns the value of the named attribute.
func (t *Tuple) Value(name string) (float64, error) {
	i, err := t.schema.Index(name)
	if err != nil {
		return 0, err
	}
	return t.Values[i], nil
}

// ValueAt returns the value at schema position i.
func (t *Tuple) ValueAt(i int) float64 { return t.Values[i] }

// String implements fmt.Stringer; it prints the seq, timestamp offset and
// the attribute values.
func (t *Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d@%s{", t.Seq, t.TS.Format("15:04:05.000"))
	for i, n := range t.schema.names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%g", n, t.Values[i])
	}
	b.WriteString("}")
	return b.String()
}

// Series is a finite, time-ordered sequence of tuples sharing one schema.
type Series struct {
	schema *Schema
	tuples []*Tuple
}

// NewSeries creates an empty series for the schema.
func NewSeries(s *Schema) *Series {
	return &Series{schema: s}
}

// SeriesOf builds a series from existing tuples, validating ordering and
// schema consistency.
func SeriesOf(s *Schema, tuples []*Tuple) (*Series, error) {
	sr := NewSeries(s)
	for _, t := range tuples {
		if err := sr.Append(t); err != nil {
			return nil, err
		}
	}
	return sr, nil
}

// Append adds a tuple to the series. The tuple must use the series schema
// and must not move time backwards.
func (sr *Series) Append(t *Tuple) error {
	if t.schema != sr.schema {
		return fmt.Errorf("tuple: tuple schema %v differs from series schema %v", t.schema, sr.schema)
	}
	if n := len(sr.tuples); n > 0 && t.TS.Before(sr.tuples[n-1].TS) {
		return fmt.Errorf("tuple: out-of-order tuple %d (ts %v before %v)", t.Seq, t.TS, sr.tuples[n-1].TS)
	}
	sr.tuples = append(sr.tuples, t)
	return nil
}

// Len returns the number of tuples in the series.
func (sr *Series) Len() int { return len(sr.tuples) }

// At returns the i-th tuple.
func (sr *Series) At(i int) *Tuple { return sr.tuples[i] }

// Schema returns the series schema.
func (sr *Series) Schema() *Schema { return sr.schema }

// Tuples returns a copy of the underlying tuple slice. Tuples themselves are
// shared (they are immutable by convention).
func (sr *Series) Tuples() []*Tuple {
	cp := make([]*Tuple, len(sr.tuples))
	copy(cp, sr.tuples)
	return cp
}

// Slice returns the sub-series [from, to).
func (sr *Series) Slice(from, to int) (*Series, error) {
	if from < 0 || to > len(sr.tuples) || from > to {
		return nil, fmt.Errorf("tuple: slice [%d,%d) out of range 0..%d", from, to, len(sr.tuples))
	}
	return &Series{schema: sr.schema, tuples: sr.tuples[from:to]}, nil
}

// Column extracts the values of one attribute across the whole series.
func (sr *Series) Column(name string) ([]float64, error) {
	i, err := sr.schema.Index(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(sr.tuples))
	for j, t := range sr.tuples {
		out[j] = t.Values[i]
	}
	return out, nil
}

// MeanAbsChange computes srcStatistics for one attribute: the mean absolute
// change between consecutive tuples (§4.3). It is the quantity the paper
// uses to pick delta values for delta-compression filters.
func (sr *Series) MeanAbsChange(name string) (float64, error) {
	col, err := sr.Column(name)
	if err != nil {
		return 0, err
	}
	if len(col) < 2 {
		return 0, fmt.Errorf("tuple: series too short (%d tuples) for change statistics", len(col))
	}
	sum := 0.0
	for i := 1; i < len(col); i++ {
		d := col[i] - col[i-1]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(col)-1), nil
}

// SortedBySeq reports whether tuple sequence numbers are strictly increasing;
// every source generator must guarantee this.
func (sr *Series) SortedBySeq() bool {
	return sort.SliceIsSorted(sr.tuples, func(i, j int) bool {
		return sr.tuples[i].Seq < sr.tuples[j].Seq
	})
}
