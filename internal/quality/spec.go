// Package quality implements the quality-specification manager of the
// prototype (§4.1.1, Fig 4.1): a textual format for filter specifications
// ("DC1(fluoro, 0.0301, 0.0150)"), a parser, builders that instantiate
// group-aware filters from specs, and the construction of the paper's
// evaluation groups (Tables 4.1 and 5.2, Fig 4.19) from measured source
// statistics exactly as §4.3 prescribes.
package quality

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"gasf/internal/filter"
)

// Kind enumerates the filter types of Table 5.1.
type Kind int

const (
	// DC1 is single-attribute delta compression.
	DC1 Kind = iota + 1
	// DC2 is trend (rate-of-change) delta compression.
	DC2
	// DC3 is multi-attribute-average delta compression.
	DC3
	// SS is stratified sampling.
	SS
	// SDC is stateful delta compression (§2.3.3).
	SDC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DC1:
		return "DC1"
	case DC2:
		return "DC2"
	case DC3:
		return "DC3"
	case SS:
		return "SS"
	case SDC:
		return "SDC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is a parsed filter specification: the type plus its parameters.
type Spec struct {
	Kind  Kind
	Attrs []string
	// Delta and Slack parameterize the DC family.
	Delta, Slack float64
	// Interval, Threshold, HighPct and LowPct parameterize SS.
	Interval        time.Duration
	Threshold       float64
	HighPct, LowPct float64
	Prescription    filter.Prescription
}

// fnum renders a float with the shortest representation that parses back
// to exactly the same value, so rendered specs relay losslessly.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the spec in the paper's notation. The rendering is
// lossless: ParseSpec(s.String()) reproduces s exactly (numbers use the
// shortest round-trippable form, the SS interval is fractional
// milliseconds, and a non-default SS prescription is appended as a
// trailing top/bottom token), so specs can be relayed through the
// broker API and the wire protocol without drift.
func (s Spec) String() string {
	switch s.Kind {
	case DC1, DC2, SDC:
		return fmt.Sprintf("%s(%s, %s, %s)", s.Kind, s.Attrs[0], fnum(s.Delta), fnum(s.Slack))
	case DC3:
		return fmt.Sprintf("DC3(%s, %s, %s)", strings.Join(s.Attrs, ", "), fnum(s.Delta), fnum(s.Slack))
	case SS:
		ms := float64(s.Interval) / float64(time.Millisecond)
		base := fmt.Sprintf("SS(%s, %s, %s, %s, %s", s.Attrs[0], fnum(ms), fnum(s.Threshold), fnum(s.HighPct), fnum(s.LowPct))
		if s.Prescription != filter.Random {
			return base + ", " + s.Prescription.String() + ")"
		}
		return base + ")"
	default:
		return fmt.Sprintf("Spec(%d)", int(s.Kind))
	}
}

// Equal reports whether two specs describe the same filter, field for
// field. It is the equality the String/Parse round-trip preserves.
func (s Spec) Equal(o Spec) bool {
	if s.Kind != o.Kind || s.Delta != o.Delta || s.Slack != o.Slack ||
		s.Interval != o.Interval || s.Threshold != o.Threshold ||
		s.HighPct != o.HighPct || s.LowPct != o.LowPct ||
		s.Prescription != o.Prescription || len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if s.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	return true
}

// Build instantiates the group-aware filter described by the spec.
func (s Spec) Build(id string) (filter.Filter, error) {
	switch s.Kind {
	case DC1:
		if len(s.Attrs) != 1 {
			return nil, fmt.Errorf("quality: DC1 needs one attribute, got %v", s.Attrs)
		}
		return filter.NewDC1(id, s.Attrs[0], s.Delta, s.Slack)
	case DC2:
		if len(s.Attrs) != 1 {
			return nil, fmt.Errorf("quality: DC2 needs one attribute, got %v", s.Attrs)
		}
		return filter.NewDC2(id, s.Attrs[0], s.Delta, s.Slack, time.Second)
	case DC3:
		if len(s.Attrs) < 2 {
			return nil, fmt.Errorf("quality: DC3 needs at least two attributes, got %v", s.Attrs)
		}
		return filter.NewDC3(id, s.Attrs, s.Delta, s.Slack)
	case SS:
		if len(s.Attrs) != 1 {
			return nil, fmt.Errorf("quality: SS needs one attribute, got %v", s.Attrs)
		}
		return filter.NewSS(id, s.Attrs[0], s.Interval, s.Threshold, s.HighPct, s.LowPct, s.Prescription)
	case SDC:
		if len(s.Attrs) != 1 {
			return nil, fmt.Errorf("quality: SDC needs one attribute, got %v", s.Attrs)
		}
		return filter.NewStatefulDC(id, s.Attrs[0], s.Delta, s.Slack)
	default:
		return nil, fmt.Errorf("quality: unknown filter kind %d", int(s.Kind))
	}
}

// Parse reads a spec in the paper's notation, e.g.
//
//	DC1(fluoro, 0.0301, 0.0150)
//	DC2(fluoro, 11.59, 5.79)
//	DC3(tmpr2, tmpr4, tmpr6, 0.03, 0.015)
//	SS(tmpr4, 1000, 0.15, 50, 20)
//	SDC(tmpr4, 0.03, 0.015)
//
// SS's second argument is the segment interval in milliseconds.
func Parse(text string) (Spec, error) {
	text = strings.TrimSpace(text)
	open := strings.IndexByte(text, '(')
	if open < 0 || !strings.HasSuffix(text, ")") {
		return Spec{}, fmt.Errorf("quality: malformed spec %q", text)
	}
	name := strings.TrimSpace(text[:open])
	var kind Kind
	switch strings.ToUpper(name) {
	case "DC1", "DC":
		kind = DC1
	case "DC2":
		kind = DC2
	case "DC3":
		kind = DC3
	case "SS":
		kind = SS
	case "SDC":
		kind = SDC
	default:
		return Spec{}, fmt.Errorf("quality: unknown filter type %q", name)
	}
	var args []string
	for _, a := range strings.Split(text[open+1:len(text)-1], ",") {
		args = append(args, strings.TrimSpace(a))
	}
	sp := Spec{Kind: kind}
	// An SS spec may end with an output prescription token (top, bottom,
	// or the default random).
	if kind == SS && len(args) > 0 {
		switch strings.ToLower(args[len(args)-1]) {
		case "random":
			args = args[:len(args)-1]
		case "top":
			sp.Prescription = filter.Top
			args = args[:len(args)-1]
		case "bottom":
			sp.Prescription = filter.Bottom
			args = args[:len(args)-1]
		}
	}
	// Split leading attribute names from trailing numbers.
	numStart := len(args)
	for i, a := range args {
		if _, err := strconv.ParseFloat(a, 64); err == nil {
			numStart = i
			break
		}
	}
	attrs := args[:numStart]
	nums := make([]float64, 0, len(args)-numStart)
	for _, a := range args[numStart:] {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("quality: bad numeric argument %q in %q", a, text)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Spec{}, fmt.Errorf("quality: non-finite argument %q in %q", a, text)
		}
		nums = append(nums, v)
	}
	sp.Attrs = attrs
	switch kind {
	case DC1, DC2, SDC:
		if len(attrs) != 1 || len(nums) != 2 {
			return Spec{}, fmt.Errorf("quality: %s needs (attr, delta, slack): %q", kind, text)
		}
		sp.Delta, sp.Slack = nums[0], nums[1]
	case DC3:
		if len(attrs) < 2 || len(nums) != 2 {
			return Spec{}, fmt.Errorf("quality: DC3 needs (attrs..., delta, slack): %q", text)
		}
		sp.Delta, sp.Slack = nums[0], nums[1]
	case SS:
		if len(attrs) != 1 || len(nums) != 4 {
			return Spec{}, fmt.Errorf("quality: SS needs (attr, intervalMs, threshold, highPct, lowPct[, top|bottom|random]): %q", text)
		}
		// Bounded so the ms <-> ns conversion round-trips exactly (the
		// product stays well under 2^50 ns, where one float64 rounding
		// step is still smaller than half a nanosecond).
		if nums[0] <= 0 || nums[0] > 1e9 {
			return Spec{}, fmt.Errorf("quality: SS interval %gms out of range (0, 1e9]: %q", nums[0], text)
		}
		sp.Interval = time.Duration(math.Round(nums[0] * float64(time.Millisecond)))
		sp.Threshold, sp.HighPct, sp.LowPct = nums[1], nums[2], nums[3]
	}
	return sp, nil
}

// MustParse is Parse that panics on error; for tests and static tables.
func MustParse(text string) Spec {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Group is a named set of filter specifications subscribing to one source
// (one row of Table 4.1 / Table 5.2).
type Group struct {
	Name  string
	Specs []Spec
}

// Build instantiates the group's filters with ids "<name>/1"..."<name>/n".
func (g Group) Build() ([]filter.Filter, error) {
	out := make([]filter.Filter, 0, len(g.Specs))
	for i, sp := range g.Specs {
		f, err := sp.Build(fmt.Sprintf("%s/%d", g.Name, i+1))
		if err != nil {
			return nil, fmt.Errorf("quality: group %s filter %d: %w", g.Name, i+1, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// String lists the group's specs.
func (g Group) String() string {
	parts := make([]string, len(g.Specs))
	for i, sp := range g.Specs {
		parts[i] = sp.String()
	}
	return g.Name + ": " + strings.Join(parts, "; ")
}
