package quality

import (
	"testing"
)

// FuzzSpecRoundTrip asserts the lossless-relay invariant over arbitrary
// input: any text Parse accepts must render (String) to a text that
// parses back to the identical Spec. The seeds cover every kind, the
// paper's short form, whitespace/case normalization, fractional SS
// intervals and prescription tokens.
func FuzzSpecRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"DC1(fluoro, 0.0301, 0.0150)",
		"DC(fluoro, 1, 0.5)",
		"DC2(fluoro, 11.59, 5.79)",
		"DC3(tmpr2, tmpr4, tmpr6, 0.03, 0.015)",
		"SS(tmpr4, 1000, 0.15, 50, 20)",
		"SS(tmpr4, 0.5, 0.15, 50, 20, top)",
		"SS(tmpr4, 1234.25, 0.15, 50, 20, bottom)",
		"SDC(tmpr4, 0.03, 0.015)",
		"  dc1( fluoro , 1 , 0.5 ) ",
		"DC1(a, 1e-300, 5e300)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		sp, err := Parse(text)
		if err != nil {
			return // malformed input is fine; only accepted specs must relay
		}
		rendered := sp.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-Parse(%q) failed: %v", text, rendered, err)
		}
		if !again.Equal(sp) {
			t.Fatalf("round trip changed spec:\n input    %q\n rendered %q\n before   %+v\n after    %+v", text, rendered, sp, again)
		}
	})
}
