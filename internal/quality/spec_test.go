package quality

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		text string
		kind Kind
	}{
		{"DC1(fluoro, 0.0301, 0.0150)", DC1},
		{"DC(fluoro, 0.0301, 0.0150)", DC1}, // paper's short form
		{"DC2(fluoro, 11.59, 5.79)", DC2},
		{"DC3(tmpr2, tmpr4, tmpr6, 0.03, 0.015)", DC3},
		{"SS(tmpr4, 1000, 0.15, 50, 20)", SS},
		{"SDC(tmpr4, 0.03, 0.015)", SDC},
		{"  dc1( fluoro , 1 , 0.5 ) ", DC1}, // whitespace and case
	}
	for _, tc := range tests {
		t.Run(tc.text, func(t *testing.T) {
			sp, err := Parse(tc.text)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if sp.Kind != tc.kind {
				t.Errorf("Kind = %v, want %v", sp.Kind, tc.kind)
			}
			// Round trip: the rendered spec parses back to itself.
			again, err := Parse(sp.String())
			if err != nil {
				t.Fatalf("re-Parse(%q): %v", sp.String(), err)
			}
			if again.Kind != sp.Kind || again.Delta != sp.Delta || again.Slack != sp.Slack ||
				again.Interval != sp.Interval || len(again.Attrs) != len(sp.Attrs) {
				t.Errorf("round trip changed spec: %+v vs %+v", sp, again)
			}
		})
	}
}

// TestSpecStringRoundTripProperty is the lossless-relay property: for
// randomized specs across every kind, parameter range and prescription,
// Parse(s.String()) reproduces s exactly. The broker API and the wire
// protocol relay specs as strings, so any loss here would silently
// change a subscription's quality contract in transit.
func TestSpecStringRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	attrs := []string{"fluoro", "tmpr2", "tmpr4", "tmpr6", "E-orient", "hrr q"}
	randFloat := func() float64 {
		// Mix magnitudes: subnormal-ish through large, many digits.
		v := (rng.Float64() - 0.3) * math.Pow(10, float64(rng.Intn(13)-6))
		if rng.Intn(8) == 0 {
			v = math.Float64frombits(rng.Uint64() & 0x7fefffffffffffff) // any finite positive
		}
		return v
	}
	for i := 0; i < 500; i++ {
		var sp Spec
		switch rng.Intn(5) {
		case 0:
			sp = Spec{Kind: DC1}
		case 1:
			sp = Spec{Kind: DC2}
		case 2:
			sp = Spec{Kind: SDC}
		case 3:
			sp = Spec{Kind: DC3, Attrs: []string{attrs[rng.Intn(len(attrs))], attrs[rng.Intn(len(attrs))]}}
		default:
			sp = Spec{
				Kind:         SS,
				Interval:     time.Duration(1+rng.Int63n(int64(1e15))) * time.Nanosecond,
				Threshold:    randFloat(),
				HighPct:      randFloat(),
				LowPct:       randFloat(),
				Prescription: []filter.Prescription{filter.Random, filter.Top, filter.Bottom}[rng.Intn(3)],
			}
		}
		if len(sp.Attrs) == 0 {
			sp.Attrs = []string{attrs[rng.Intn(len(attrs))]}
		}
		if sp.Kind != SS {
			sp.Delta, sp.Slack = randFloat(), randFloat()
		}
		text := sp.String()
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("case %d: Parse(%q): %v (from %+v)", i, text, err, sp)
		}
		if !again.Equal(sp) {
			t.Fatalf("case %d: round trip changed spec:\n rendered %q\n before %+v\n after  %+v", i, text, sp, again)
		}
	}
}

// TestParsePrescriptionToken pins the trailing SS prescription token.
func TestParsePrescriptionToken(t *testing.T) {
	sp, err := Parse("SS(tmpr4, 1000, 0.15, 50, 20, top)")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Prescription != filter.Top {
		t.Errorf("Prescription = %v, want top", sp.Prescription)
	}
	sp, err = Parse("SS(tmpr4, 1000, 0.15, 50, 20, Bottom)")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Prescription != filter.Bottom {
		t.Errorf("Prescription = %v, want bottom", sp.Prescription)
	}
	sp, err = Parse("SS(tmpr4, 1000, 0.15, 50, 20, random)")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Prescription != filter.Random {
		t.Errorf("Prescription = %v, want random", sp.Prescription)
	}
	if sp.String() != "SS(tmpr4, 1000, 0.15, 50, 20)" {
		t.Errorf("random prescription should render in canonical form, got %q", sp.String())
	}
}

func TestParseSSParameters(t *testing.T) {
	sp, err := Parse("SS(tmpr4, 1000, 0.15, 50, 20)")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Interval != time.Second {
		t.Errorf("Interval = %v, want 1s", sp.Interval)
	}
	if sp.Threshold != 0.15 || sp.HighPct != 50 || sp.LowPct != 20 {
		t.Errorf("SS params = %+v", sp)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DC1",
		"DC1(fluoro, 1, 0.5",
		"XX(fluoro, 1, 0.5)",
		"DC1(fluoro, one, 0.5)",
		"DC1(fluoro, 1)",
		"DC3(tmpr2, 1, 0.5)",        // too few attrs
		"SS(tmpr4, 1000, 0.15, 50)", // too few numbers
		"DC1(a, b, 1, 0.5)",         // too many attrs
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestSpecBuildAndRun(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"DC1(fluoro, 3.0, 1.5)",
		"DC2(fluoro, 100, 50)",
		"DC3(tmpr2, tmpr4, tmpr6, 0.03, 0.015)",
		"SS(tmpr4, 1000, 0.15, 50, 20)",
		"SDC(tmpr4, 0.05, 0.02)",
	}
	for _, text := range specs {
		t.Run(text, func(t *testing.T) {
			f, err := MustParse(text).Build("f")
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			for i := 0; i < sr.Len(); i++ {
				ev, err := f.Process(sr.At(i))
				if err != nil {
					t.Fatalf("Process(%d): %v", i, err)
				}
				// Stateful sets must be resolved like the engine does.
				for ev.Closed != nil && f.Stateful() {
					ev = f.ObserveChosen([]*tuple.Tuple{ev.Closed.Members[0]})
				}
			}
		})
	}
}

func TestGroupBuildIDs(t *testing.T) {
	g := Group{Name: "DC_Tmpr", Specs: []Spec{
		MustParse("DC1(tmpr4, 0.031, 0.0155)"),
		MustParse("DC1(tmpr4, 0.062, 0.031)"),
	}}
	fs, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if fs[0].ID() != "DC_Tmpr/1" || fs[1].ID() != "DC_Tmpr/2" {
		t.Errorf("ids = %s, %s", fs[0].ID(), fs[1].ID())
	}
	if !strings.Contains(g.String(), "DC_Tmpr") {
		t.Error("Group.String missing name")
	}
}

func TestTable41GroupsRunnable(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Table41(sr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("Table41 groups = %d, want 3", len(groups))
	}
	names := map[string]int{"DC_Fluoro": 4, "DC_Hybrid": 3, "DC_Tmpr": 3}
	for _, g := range groups {
		want, ok := names[g.Name]
		if !ok {
			t.Errorf("unexpected group %s", g.Name)
			continue
		}
		if len(g.Specs) != want {
			t.Errorf("group %s has %d specs, want %d", g.Name, len(g.Specs), want)
		}
		fs, err := g.Build()
		if err != nil {
			t.Fatalf("group %s: %v", g.Name, err)
		}
		res, err := core.Run(fs, sr, core.Options{})
		if err != nil {
			t.Fatalf("group %s run: %v", g.Name, err)
		}
		if res.Stats.DistinctOutputs == 0 {
			t.Errorf("group %s produced no output", g.Name)
		}
		if res.Stats.OIRatio() >= 1 {
			t.Errorf("group %s O/I ratio %.3f >= 1: filters not compressing", g.Name, res.Stats.OIRatio())
		}
	}
}

func TestTable52GroupsRunnable(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Table52(sr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 10 {
		t.Fatalf("Table52 groups = %d, want 10", len(groups))
	}
	for _, g := range groups {
		fs, err := g.Build()
		if err != nil {
			t.Fatalf("group %s build: %v", g.Name, err)
		}
		if len(fs) != 3 {
			t.Errorf("group %s has %d filters, want 3", g.Name, len(fs))
		}
		res, err := core.Run(fs, sr, core.Options{})
		if err != nil {
			t.Fatalf("group %s run: %v", g.Name, err)
		}
		si, err := core.RunSelfInterested(fs, sr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DistinctOutputs > si.Stats.DistinctOutputs {
			t.Errorf("group %s: GA %d > SI %d", g.Name, res.Stats.DistinctOutputs, si.Stats.DistinctOutputs)
		}
	}
}

func TestSourceGroupAndGroupSize(t *testing.T) {
	cow, err := trace.Cow(trace.Config{N: 1000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	g, err := SourceGroup("DC_cow", "E-orient", cow, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Specs) != 3 {
		t.Fatalf("SourceGroup specs = %d", len(g.Specs))
	}
	for _, sp := range g.Specs {
		if sp.Slack != 0.5*sp.Delta {
			t.Errorf("slack %g != delta/2 (%g)", sp.Slack, sp.Delta/2)
		}
	}

	namos, err := trace.NAMOS(trace.Config{N: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3, 7, 20} {
		gg, err := GroupSizeGroup("tmpr4", namos, n, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(gg.Specs) != n {
			t.Errorf("GroupSizeGroup(%d) specs = %d", n, len(gg.Specs))
		}
		for _, sp := range gg.Specs {
			if sp.Slack > sp.Delta/2 {
				t.Errorf("GroupSizeGroup(%d): slack %g exceeds delta/2 (%g)", n, sp.Slack, sp.Delta/2)
			}
		}
	}
	if _, err := GroupSizeGroup("tmpr4", namos, 0, 5); err == nil {
		t.Error("group size 0 should fail")
	}
}
