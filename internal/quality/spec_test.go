package quality

import (
	"strings"
	"testing"
	"time"

	"gasf/internal/core"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		text string
		kind Kind
	}{
		{"DC1(fluoro, 0.0301, 0.0150)", DC1},
		{"DC(fluoro, 0.0301, 0.0150)", DC1}, // paper's short form
		{"DC2(fluoro, 11.59, 5.79)", DC2},
		{"DC3(tmpr2, tmpr4, tmpr6, 0.03, 0.015)", DC3},
		{"SS(tmpr4, 1000, 0.15, 50, 20)", SS},
		{"SDC(tmpr4, 0.03, 0.015)", SDC},
		{"  dc1( fluoro , 1 , 0.5 ) ", DC1}, // whitespace and case
	}
	for _, tc := range tests {
		t.Run(tc.text, func(t *testing.T) {
			sp, err := Parse(tc.text)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if sp.Kind != tc.kind {
				t.Errorf("Kind = %v, want %v", sp.Kind, tc.kind)
			}
			// Round trip: the rendered spec parses back to itself.
			again, err := Parse(sp.String())
			if err != nil {
				t.Fatalf("re-Parse(%q): %v", sp.String(), err)
			}
			if again.Kind != sp.Kind || again.Delta != sp.Delta || again.Slack != sp.Slack ||
				again.Interval != sp.Interval || len(again.Attrs) != len(sp.Attrs) {
				t.Errorf("round trip changed spec: %+v vs %+v", sp, again)
			}
		})
	}
}

func TestParseSSParameters(t *testing.T) {
	sp, err := Parse("SS(tmpr4, 1000, 0.15, 50, 20)")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Interval != time.Second {
		t.Errorf("Interval = %v, want 1s", sp.Interval)
	}
	if sp.Threshold != 0.15 || sp.HighPct != 50 || sp.LowPct != 20 {
		t.Errorf("SS params = %+v", sp)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DC1",
		"DC1(fluoro, 1, 0.5",
		"XX(fluoro, 1, 0.5)",
		"DC1(fluoro, one, 0.5)",
		"DC1(fluoro, 1)",
		"DC3(tmpr2, 1, 0.5)",        // too few attrs
		"SS(tmpr4, 1000, 0.15, 50)", // too few numbers
		"DC1(a, b, 1, 0.5)",         // too many attrs
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestSpecBuildAndRun(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"DC1(fluoro, 3.0, 1.5)",
		"DC2(fluoro, 100, 50)",
		"DC3(tmpr2, tmpr4, tmpr6, 0.03, 0.015)",
		"SS(tmpr4, 1000, 0.15, 50, 20)",
		"SDC(tmpr4, 0.05, 0.02)",
	}
	for _, text := range specs {
		t.Run(text, func(t *testing.T) {
			f, err := MustParse(text).Build("f")
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			for i := 0; i < sr.Len(); i++ {
				ev, err := f.Process(sr.At(i))
				if err != nil {
					t.Fatalf("Process(%d): %v", i, err)
				}
				// Stateful sets must be resolved like the engine does.
				for ev.Closed != nil && f.Stateful() {
					ev = f.ObserveChosen([]*tuple.Tuple{ev.Closed.Members[0]})
				}
			}
		})
	}
}

func TestGroupBuildIDs(t *testing.T) {
	g := Group{Name: "DC_Tmpr", Specs: []Spec{
		MustParse("DC1(tmpr4, 0.031, 0.0155)"),
		MustParse("DC1(tmpr4, 0.062, 0.031)"),
	}}
	fs, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if fs[0].ID() != "DC_Tmpr/1" || fs[1].ID() != "DC_Tmpr/2" {
		t.Errorf("ids = %s, %s", fs[0].ID(), fs[1].ID())
	}
	if !strings.Contains(g.String(), "DC_Tmpr") {
		t.Error("Group.String missing name")
	}
}

func TestTable41GroupsRunnable(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Table41(sr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("Table41 groups = %d, want 3", len(groups))
	}
	names := map[string]int{"DC_Fluoro": 4, "DC_Hybrid": 3, "DC_Tmpr": 3}
	for _, g := range groups {
		want, ok := names[g.Name]
		if !ok {
			t.Errorf("unexpected group %s", g.Name)
			continue
		}
		if len(g.Specs) != want {
			t.Errorf("group %s has %d specs, want %d", g.Name, len(g.Specs), want)
		}
		fs, err := g.Build()
		if err != nil {
			t.Fatalf("group %s: %v", g.Name, err)
		}
		res, err := core.Run(fs, sr, core.Options{})
		if err != nil {
			t.Fatalf("group %s run: %v", g.Name, err)
		}
		if res.Stats.DistinctOutputs == 0 {
			t.Errorf("group %s produced no output", g.Name)
		}
		if res.Stats.OIRatio() >= 1 {
			t.Errorf("group %s O/I ratio %.3f >= 1: filters not compressing", g.Name, res.Stats.OIRatio())
		}
	}
}

func TestTable52GroupsRunnable(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := Table52(sr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 10 {
		t.Fatalf("Table52 groups = %d, want 10", len(groups))
	}
	for _, g := range groups {
		fs, err := g.Build()
		if err != nil {
			t.Fatalf("group %s build: %v", g.Name, err)
		}
		if len(fs) != 3 {
			t.Errorf("group %s has %d filters, want 3", g.Name, len(fs))
		}
		res, err := core.Run(fs, sr, core.Options{})
		if err != nil {
			t.Fatalf("group %s run: %v", g.Name, err)
		}
		si, err := core.RunSelfInterested(fs, sr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DistinctOutputs > si.Stats.DistinctOutputs {
			t.Errorf("group %s: GA %d > SI %d", g.Name, res.Stats.DistinctOutputs, si.Stats.DistinctOutputs)
		}
	}
}

func TestSourceGroupAndGroupSize(t *testing.T) {
	cow, err := trace.Cow(trace.Config{N: 1000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	g, err := SourceGroup("DC_cow", "E-orient", cow, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Specs) != 3 {
		t.Fatalf("SourceGroup specs = %d", len(g.Specs))
	}
	for _, sp := range g.Specs {
		if sp.Slack != 0.5*sp.Delta {
			t.Errorf("slack %g != delta/2 (%g)", sp.Slack, sp.Delta/2)
		}
	}

	namos, err := trace.NAMOS(trace.Config{N: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3, 7, 20} {
		gg, err := GroupSizeGroup("tmpr4", namos, n, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(gg.Specs) != n {
			t.Errorf("GroupSizeGroup(%d) specs = %d", n, len(gg.Specs))
		}
		for _, sp := range gg.Specs {
			if sp.Slack > sp.Delta/2 {
				t.Errorf("GroupSizeGroup(%d): slack %g exceeds delta/2 (%g)", n, sp.Slack, sp.Delta/2)
			}
		}
	}
	if _, err := GroupSizeGroup("tmpr4", namos, 0, 5); err == nil {
		t.Error("group size 0 should fail")
	}
}
