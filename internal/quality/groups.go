package quality

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"gasf/internal/filter"
	"gasf/internal/tuple"
)

// SrcStatistics computes the paper's srcStatistics measure for the signal
// of a (single-attribute or averaged) spec kind: the mean absolute change
// between consecutive tuples of the monitored signal (§4.3).
func SrcStatistics(sr *tuple.Series, attr string) (float64, error) {
	return sr.MeanAbsChange(attr)
}

// trendStatistics computes srcStatistics of the trend signal used by DC2.
func trendStatistics(sr *tuple.Series, attr string) (float64, error) {
	sig := filter.NewTrendSignal(attr, time.Second)
	vals, err := filter.SignalOverSeries(sig, sr)
	if err != nil {
		return 0, err
	}
	return filter.MeanAbsChange(vals)
}

// avgStatistics computes srcStatistics of the averaged signal used by DC3.
func avgStatistics(sr *tuple.Series, attrs ...string) (float64, error) {
	sig, err := filter.NewAvgSignal(attrs...)
	if err != nil {
		return 0, err
	}
	vals, err := filter.SignalOverSeries(sig, sr)
	if err != nil {
		return 0, err
	}
	return filter.MeanAbsChange(vals)
}

// dcSpec builds a DC spec with delta = mult*stat and slack = frac*delta.
func dcSpec(kind Kind, attrs []string, stat, mult, frac float64) Spec {
	delta := mult * stat
	return Spec{Kind: kind, Attrs: attrs, Delta: delta, Slack: frac * delta}
}

// Table41 builds the three groups of Table 4.1 — DC_Fluoro (four fluoro
// DC filters), DC_Hybrid (mixed thermistor filters), DC_Tmpr (three tmpr4
// filters) — deriving deltas from the series' srcStatistics the way §4.3
// does: "randomly picked delta values between the range of srcStatistics
// and 3*srcStatistics ... slack values to be about 50% of the
// corresponding delta values". The random draws are seeded for
// reproducibility.
func Table41(sr *tuple.Series, seed int64) ([]Group, error) {
	rng := rand.New(rand.NewSource(seed))
	draw := func(stat float64) float64 { return stat * (1 + 2*rng.Float64()) } // [1,3]*stat

	fluoroStat, err := SrcStatistics(sr, "fluoro")
	if err != nil {
		return nil, fmt.Errorf("quality: Table41: %w", err)
	}
	t2, err := SrcStatistics(sr, "tmpr2")
	if err != nil {
		return nil, err
	}
	t4, err := SrcStatistics(sr, "tmpr4")
	if err != nil {
		return nil, err
	}

	mk := func(attr string, delta float64) Spec {
		return Spec{Kind: DC1, Attrs: []string{attr}, Delta: delta, Slack: 0.5 * delta}
	}
	// The fourth DC_Fluoro filter of Table 4.1 uses a tighter slack
	// (DC(fluoro, 0.0702, 0.0100): ~14% of delta).
	tightDelta := draw(fluoroStat)
	fluoro := Group{Name: "DC_Fluoro", Specs: []Spec{
		mk("fluoro", draw(fluoroStat)),
		mk("fluoro", draw(fluoroStat)),
		mk("fluoro", draw(fluoroStat)),
		{Kind: DC1, Attrs: []string{"fluoro"}, Delta: tightDelta, Slack: 0.14 * tightDelta},
	}}
	// DC_Hybrid draws deltas from [1, 20]*srcStatistics with slack below
	// 50% of delta (§4.3).
	drawWide := func(stat float64) float64 { return stat * (1 + 19*rng.Float64()) }
	hybrid := Group{Name: "DC_Hybrid", Specs: []Spec{
		{Kind: DC1, Attrs: []string{"tmpr2"}, Delta: drawWide(t2), Slack: 0},
		{Kind: DC1, Attrs: []string{"tmpr4"}, Delta: drawWide(t4), Slack: 0},
		{Kind: DC1, Attrs: []string{"tmpr4"}, Delta: drawWide(t4), Slack: 0},
	}}
	for i := range hybrid.Specs {
		hybrid.Specs[i].Slack = hybrid.Specs[i].Delta * (0.2 + 0.3*rng.Float64()) // <50%
	}
	tmpr := Group{Name: "DC_Tmpr", Specs: []Spec{
		mk("tmpr4", draw(t4)),
		mk("tmpr4", draw(t4)),
		mk("tmpr4", draw(t4)),
	}}
	return []Group{fluoro, hybrid, tmpr}, nil
}

// Table52 builds the ten groups of Table 5.2 over a NAMOS-like series:
// seven homogeneous groups (DC1 on fluoro/tmpr2/tmpr4/tmpr6, DC3, DC2, SS)
// and three heterogeneous ones. Deltas follow the paper's recipe: ASC,
// 2*ASC, and a random draw between them; slack = 50% of delta.
func Table52(sr *tuple.Series, seed int64) ([]Group, error) {
	rng := rand.New(rand.NewSource(seed))

	fluoro, err := SrcStatistics(sr, "fluoro")
	if err != nil {
		return nil, fmt.Errorf("quality: Table52: %w", err)
	}
	t2, err := SrcStatistics(sr, "tmpr2")
	if err != nil {
		return nil, err
	}
	t4, err := SrcStatistics(sr, "tmpr4")
	if err != nil {
		return nil, err
	}
	t5, err := SrcStatistics(sr, "tmpr5")
	if err != nil {
		return nil, err
	}
	t6, err := SrcStatistics(sr, "tmpr6")
	if err != nil {
		return nil, err
	}
	avg, err := avgStatistics(sr, "tmpr2", "tmpr4", "tmpr6")
	if err != nil {
		return nil, err
	}
	trend, err := trendStatistics(sr, "fluoro")
	if err != nil {
		return nil, err
	}

	trio := func(kind Kind, attrs []string, stat float64) []Spec {
		return []Spec{
			dcSpec(kind, attrs, stat, 1, 0.5),
			dcSpec(kind, attrs, stat, 2, 0.5),
			dcSpec(kind, attrs, stat, 1+rng.Float64(), 0.5),
		}
	}
	// SS thresholds sit at quantiles of the observed per-segment sample
	// range, so the three filters disagree on which segments are dynamic
	// — the disagreement is where multi-degree sharing pays off.
	rangeQ, err := segmentRangeQuantiles(sr, "tmpr4", time.Second, []float64{0.3, 0.4, 0.5, 0.6})
	if err != nil {
		return nil, err
	}
	ssSpec := func(threshold, hi, lo float64) Spec {
		return Spec{
			Kind: SS, Attrs: []string{"tmpr4"},
			Interval: time.Second, Threshold: threshold, HighPct: hi, LowPct: lo,
		}
	}
	avgAttrs := []string{"tmpr2", "tmpr4", "tmpr6"}
	groups := []Group{
		{Name: "G1", Specs: trio(DC1, []string{"fluoro"}, fluoro)},
		{Name: "G2", Specs: trio(DC1, []string{"tmpr2"}, t2)},
		{Name: "G3", Specs: trio(DC1, []string{"tmpr4"}, t4)},
		{Name: "G4", Specs: trio(DC1, []string{"tmpr6"}, t6)},
		{Name: "G5", Specs: trio(DC3, avgAttrs, avg)},
		{Name: "G6", Specs: trio(DC2, []string{"fluoro"}, trend)},
		{Name: "G7", Specs: []Spec{
			ssSpec(rangeQ[1], 50, 20), ssSpec(rangeQ[3], 50, 20), ssSpec(rangeQ[2], 50, 20),
		}},
		{Name: "G8", Specs: []Spec{
			dcSpec(DC1, []string{"tmpr4"}, t4, 1, 0.5),
			dcSpec(DC3, avgAttrs, avg, 1, 0.5),
			dcSpec(DC1, []string{"tmpr5"}, t5, 1, 0.5),
		}},
		{Name: "G9", Specs: []Spec{
			dcSpec(DC1, []string{"tmpr4"}, t4, 1, 0.5),
			dcSpec(DC3, avgAttrs, avg, 1, 0.5),
			dcSpec(DC2, []string{"fluoro"}, trend, 1, 0.5),
		}},
		{Name: "G10", Specs: []Spec{
			dcSpec(DC1, []string{"tmpr4"}, t4, 1, 0.5),
			dcSpec(DC3, avgAttrs, avg, 1, 0.5),
			ssSpec(rangeQ[0], 90, 50),
		}},
	}
	return groups, nil
}

// SourceGroup builds the per-source groups of Fig 4.19 (DC_cow,
// DC_volcano, DC_fireExp): three DC1 filters on the source's attribute
// with deltas drawn from [1,3]*srcStatistics and slack = 50% of delta.
func SourceGroup(name, attr string, sr *tuple.Series, seed int64) (Group, error) {
	stat, err := SrcStatistics(sr, attr)
	if err != nil {
		return Group{}, fmt.Errorf("quality: SourceGroup %s: %w", name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	specs := make([]Spec, 3)
	for i := range specs {
		specs[i] = dcSpec(DC1, []string{attr}, stat, 1+2*rng.Float64(), 0.5)
	}
	return Group{Name: name, Specs: specs}, nil
}

// segmentRangeQuantiles computes quantiles of the per-segment sample range
// (max-min of attr over consecutive interval-long windows); used to place
// stratified-sampling thresholds where segment classification actually
// varies.
func segmentRangeQuantiles(sr *tuple.Series, attr string, interval time.Duration, qs []float64) ([]float64, error) {
	col, err := sr.Column(attr)
	if err != nil {
		return nil, err
	}
	if sr.Len() < 2 {
		return nil, fmt.Errorf("quality: series too short for segment ranges")
	}
	var ranges []float64
	segStart := sr.At(0).TS
	lo, hi := col[0], col[0]
	for i := 1; i < sr.Len(); i++ {
		if sr.At(i).TS.Sub(segStart) >= interval {
			ranges = append(ranges, hi-lo)
			segStart = sr.At(i).TS
			lo, hi = col[i], col[i]
			continue
		}
		if col[i] < lo {
			lo = col[i]
		}
		if col[i] > hi {
			hi = col[i]
		}
	}
	ranges = append(ranges, hi-lo)
	sort.Float64s(ranges)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(ranges)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ranges) {
			idx = len(ranges) - 1
		}
		out[i] = ranges[idx]
	}
	return out, nil
}

// GroupSizeGroup builds a group of n DC1 filters on one attribute for the
// group-size experiment (§4.7.3): fixed slack, deltas random in
// [1,6]*srcStatistics.
func GroupSizeGroup(attr string, sr *tuple.Series, n int, seed int64) (Group, error) {
	if n < 1 {
		return Group{}, fmt.Errorf("quality: group size %d < 1", n)
	}
	stat, err := SrcStatistics(sr, attr)
	if err != nil {
		return Group{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	specs := make([]Spec, n)
	slack := 0.5 * stat
	for i := range specs {
		delta := stat * (1 + 5*rng.Float64())
		if slack > delta/2 {
			// Keep Axiom 1 intact for small draws.
			delta = 2 * slack
		}
		specs[i] = Spec{Kind: DC1, Attrs: []string{attr}, Delta: delta, Slack: slack}
	}
	return Group{Name: fmt.Sprintf("DC_n%d", n), Specs: specs}, nil
}
