package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// randomWalk builds a bounded random walk series with dwell segments, the
// regime where candidate sets have interesting shapes.
func randomWalk(seed int64, n int) *tuple.Series {
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	rng := rand.New(rand.NewSource(seed))
	v, drift := 0.0, 0.0
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.05 {
			drift = (rng.Float64()*2 - 1) * 2
		}
		v += drift + 0.3*(rng.Float64()*2-1)
		t := tuple.MustNew(s, i, trace.Epoch.Add(time.Duration(i)*trace.DefaultInterval), []float64{v})
		if err := sr.Append(t); err != nil {
			panic(err)
		}
	}
	return sr
}

// randomGroup builds 2-5 DC filters with random deltas and slacks.
func randomGroup(rng *rand.Rand) []filter.Filter {
	n := 2 + rng.Intn(4)
	out := make([]filter.Filter, 0, n)
	for i := 0; i < n; i++ {
		delta := 1 + rng.Float64()*8
		slack := rng.Float64() * delta / 2
		f, err := filter.NewDC1(string(rune('A'+i)), "v", delta, slack)
		if err != nil {
			panic(err)
		}
		out = append(out, f)
	}
	return out
}

// TestEngineInvariantsProperty drives random groups over random walks under
// every algorithm/strategy/cut combination and checks the engine's global
// invariants:
//
//  1. GA distinct outputs <= SI distinct outputs (the bottom line);
//  2. per-filter delivery counts equal the SI baseline's (one output per
//     owed reference — completeness);
//  3. utilities and decision state drain to zero at Finish;
//  4. no latency sample is negative;
//  5. transmissions are released in non-decreasing time order.
func TestEngineInvariantsProperty(t *testing.T) {
	combos := []Options{
		{Algorithm: RG},
		{Algorithm: RG, Cuts: true, MaxDelay: 50 * time.Millisecond},
		{Algorithm: RG, Strategy: Batched, BatchSize: 64},
		{Algorithm: PS},
		{Algorithm: PS, Strategy: PerCandidateSet},
		{Algorithm: PS, Cuts: true, MaxDelay: 50 * time.Millisecond, Strategy: PerCandidateSet},
	}
	check := func(seed int64, comboIdx uint8) bool {
		opts := combos[int(comboIdx)%len(combos)]
		sr := randomWalk(seed, 500)
		rng := rand.New(rand.NewSource(seed + 7))
		filters := randomGroup(rng)

		e, err := NewEngine(filters, opts)
		if err != nil {
			return false
		}
		for i := 0; i < sr.Len(); i++ {
			if err := e.Step(sr.At(i)); err != nil {
				return false
			}
		}
		if err := e.Finish(); err != nil {
			return false
		}
		res := e.Result()

		// Rebuild an identical group for the baseline.
		rng2 := rand.New(rand.NewSource(seed + 7))
		si, err := RunSelfInterested(randomGroupFrom(rng2), sr, Options{})
		if err != nil {
			return false
		}
		if res.Stats.DistinctOutputs > si.Stats.DistinctOutputs {
			return false
		}
		for id, n := range si.Stats.PerFilter {
			if res.Stats.PerFilter[id] != n {
				return false
			}
		}
		if e.util.Len() != 0 || len(e.attached) != 0 || len(e.decidedPicks) != 0 {
			return false
		}
		for _, l := range res.Stats.Latencies {
			if l < 0 {
				return false
			}
		}
		for i := 1; i < len(res.Transmissions); i++ {
			if res.Transmissions[i].ReleasedAt.Before(res.Transmissions[i-1].ReleasedAt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomGroupFrom mirrors randomGroup for baseline reconstruction.
func randomGroupFrom(rng *rand.Rand) []filter.Filter { return randomGroup(rng) }

// TestSSTopPrescriptionAtEngine: a Top-restricted sampler only ever
// receives its top-valued tuples, even when coordinated.
func TestSSTopPrescriptionAtEngine(t *testing.T) {
	sr := randomWalk(3, 600)
	top, err := filter.NewSS("top", "v", time.Second, 0, 20, 10, filter.Top)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := filter.NewDC1("dc", "v", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]filter.Filter{top, dc}, sr, Options{Algorithm: RG})
	if err != nil {
		t.Fatal(err)
	}
	// Verify every delivery to "top" is among the top-20% values of its
	// 100-tuple segment.
	for _, tr := range res.Transmissions {
		for _, d := range tr.Destinations {
			if d != "top" {
				continue
			}
			seg := tr.Tuple.Seq / 100
			lo, hi := seg*100, (seg+1)*100
			if hi > sr.Len() {
				hi = sr.Len()
			}
			better := 0
			for i := lo; i < hi; i++ {
				if sr.At(i).ValueAt(0) > tr.Tuple.ValueAt(0) {
					better++
				}
			}
			// PickDegree is 10-20% of the segment; ties may extend
			// eligibility slightly. Allow the boundary.
			if better > (hi-lo)*25/100 {
				t.Errorf("tuple %d delivered to top-sampler ranks %d/%d in its segment",
					tr.Tuple.Seq, better, hi-lo)
			}
		}
	}
}

// TestChosenHorizonPruning: PS's first heuristic forgets chosen tuples
// beyond the horizon, bounding memory.
func TestChosenHorizonPruning(t *testing.T) {
	sr := randomWalk(5, 2000)
	f1, err := filter.NewDC1("A", "v", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := filter.NewDC1("B", "v", 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine([]filter.Filter{f1, f2}, Options{
		Algorithm:     PS,
		ChosenHorizon: 200 * time.Millisecond, // 20 tuples
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.Len(); i++ {
		if err := e.Step(sr.At(i)); err != nil {
			t.Fatal(err)
		}
		if len(e.chosen) > 256 {
			t.Fatalf("chosen memory grew to %d entries at step %d", len(e.chosen), i)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestMixedKindsGroup: DC1, DC2, DC3, SS and stateful DC coexist in one
// group under both algorithms without losing anyone's deliveries.
func TestMixedKindsGroup(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		t.Fatal(err)
	}
	build := func() []filter.Filter {
		dc1, _ := filter.NewDC1("dc1", "tmpr4", 2*stat, stat)
		dc2, _ := filter.NewDC2("dc2", "fluoro", 100, 50, time.Second)
		dc3, _ := filter.NewDC3("dc3", []string{"tmpr2", "tmpr4", "tmpr6"}, 2*stat, stat)
		ss, _ := filter.NewSS("ss", "tmpr4", time.Second, 10*stat, 40, 15, filter.Random)
		sdc, _ := filter.NewStatefulDC("sdc", "tmpr4", 2*stat, stat)
		return []filter.Filter{dc1, dc2, dc3, ss, sdc}
	}
	for _, alg := range []Algorithm{RG, PS} {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(build(), sr, Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range []string{"dc1", "dc2", "dc3", "ss", "sdc"} {
				if res.Stats.PerFilter[id] == 0 {
					t.Errorf("filter %s received nothing", id)
				}
			}
			si, err := RunSelfInterested(build(), sr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.DistinctOutputs > si.Stats.DistinctOutputs {
				t.Errorf("GA %d > SI %d", res.Stats.DistinctOutputs, si.Stats.DistinctOutputs)
			}
		})
	}
}

// TestCutBudgetHonored: with RG cuts at budget B and multicast delay 0, no
// delivery waits substantially longer than B plus one tuple interval (the
// cut check granularity).
func TestCutBudgetHonored(t *testing.T) {
	sr := randomWalk(9, 1500)
	f1, err := filter.NewDC1("A", "v", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := filter.NewDC1("B", "v", 7, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	budget := 60 * time.Millisecond
	res, err := Run([]filter.Filter{f1, f2}, sr, Options{Algorithm: RG, Cuts: true, MaxDelay: budget})
	if err != nil {
		t.Fatal(err)
	}
	slackAllowance := budget + 3*trace.DefaultInterval
	for i, l := range res.Stats.Latencies {
		if l > slackAllowance {
			t.Fatalf("delivery %d latency %v exceeds budget %v (+allowance)", i, l, budget)
		}
	}
}
