package core

// Reusable engine state for the allocation-free steady-state tuple path.
// The structures here replace the per-step map and slice churn the engine
// used to do: a generational dense sequence→count index instead of a
// map[int]int rebuilt entry by entry, and a free list for pendingOut
// buffers so decided-output staging recycles memory after each release.

// seqCounts is a generational index from tuple sequence number to a small
// counter (the group utility). Sources emit strictly increasing sequence
// numbers and the engine's live window — open admissions plus pending
// regions — trails the stream head closely, so the counts live in a dense
// slice keyed by seq-base. Slots are reclaimed from the front as counts
// drain to zero; the backing array is compacted in place once the dead
// prefix dominates, keeping memory proportional to the live window.
//
// A sequence whose distance from the window start would make the dense
// slice disproportionate — sparse numbering, or an adversarial publisher
// sending far-apart sequence numbers over the network — spills into an
// overflow map instead, so memory stays bounded by the number of live
// entries in the worst case (the behavior of the map this index
// replaced). The logical count of a sequence is dense + overflow.
type seqCounts struct {
	// base is the sequence number of buf[head].
	base int
	// head indexes the first active slot of buf.
	head int
	buf  []int32
	// live counts the non-zero dense slots.
	live int
	// overflow holds sparse entries (always > 0); nil until first needed,
	// so steady-state streams pay one nil check.
	overflow map[int]int32
}

// maxDenseSpan caps the dense window span (256 KiB of counters); entries
// further out spill to the overflow map.
const maxDenseSpan = 1 << 16

// get returns the count for seq, zero when absent.
func (u *seqCounts) get(seq int) int {
	n := 0
	if i := seq - u.base; i >= 0 && u.head+i < len(u.buf) {
		n = int(u.buf[u.head+i])
	}
	if u.overflow != nil {
		n += int(u.overflow[seq])
	}
	return n
}

// inc increments the count for seq, growing the window as the stream
// advances.
func (u *seqCounts) inc(seq int) {
	if u.live == 0 && u.head == len(u.buf) {
		// Empty dense window: rebase on the new head of stream.
		u.head, u.buf, u.base = 0, u.buf[:0], seq
	}
	i := seq - u.base
	if i < 0 || i+1 > maxDenseSpan {
		// Below the window (sources never rewind, but stay correct if one
		// does) or too far ahead of it: count sparsely.
		if u.overflow == nil {
			u.overflow = make(map[int]int32)
		}
		u.overflow[seq]++
		return
	}
	pos := u.head + i
	if pos >= len(u.buf) {
		u.buf = append(u.buf, make([]int32, pos+1-len(u.buf))...)
	}
	if u.buf[pos] == 0 {
		u.live++
	}
	u.buf[pos]++
}

// dec decrements the count for seq, deleting it at zero (mirroring the
// old map's delete-on-zero) and reclaiming the dead prefix.
func (u *seqCounts) dec(seq int) {
	i := seq - u.base
	pos := u.head + i
	if i < 0 || pos >= len(u.buf) || u.buf[pos] == 0 {
		// Not in the dense window; drain the overflow entry if any.
		if u.overflow != nil {
			if n := u.overflow[seq]; n > 1 {
				u.overflow[seq] = n - 1
			} else {
				delete(u.overflow, seq)
			}
		}
		return
	}
	u.buf[pos]--
	if u.buf[pos] != 0 {
		return
	}
	u.live--
	if pos != u.head {
		return
	}
	// Advance past the dead prefix.
	for u.head < len(u.buf) && u.buf[u.head] == 0 {
		u.head++
		u.base++
	}
	if u.head == len(u.buf) {
		u.head, u.buf = 0, u.buf[:0]
		return
	}
	// Compact once the dead prefix dominates the array, so memory stays
	// proportional to the live window rather than the stream length.
	if u.head >= 1024 && u.head > len(u.buf)-u.head {
		n := copy(u.buf, u.buf[u.head:])
		u.buf, u.head = u.buf[:n], 0
	}
}

// Len returns the number of live (non-zero) entries.
func (u *seqCounts) Len() int { return u.live + len(u.overflow) }

// getPOBuf takes a pendingOut buffer from the engine's free list; the
// buffers cycle through attached-output staging and are recycled once
// their outputs release.
func (e *Engine) getPOBuf() []pendingOut {
	if n := len(e.poFree); n > 0 {
		buf := e.poFree[n-1]
		e.poFree[n-1] = nil
		e.poFree = e.poFree[:n-1]
		return buf
	}
	return nil
}

// putPOBuf recycles a pendingOut buffer after its outputs were released.
// Entries are zeroed so recycled buffers do not pin released tuples.
func (e *Engine) putPOBuf(buf []pendingOut) {
	if cap(buf) == 0 || len(e.poFree) >= 32 {
		return
	}
	e.poFree = append(e.poFree, clearPending(buf))
}

// clearPending zeroes a pendingOut buffer and truncates it, so reused
// capacity does not pin released tuples or destination lists.
func clearPending(buf []pendingOut) []pendingOut {
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = pendingOut{}
	}
	return buf[:0]
}
