package core

import (
	"testing"
	"time"

	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// TestEmptyStream: a run over zero tuples is valid and empty.
func TestEmptyStream(t *testing.T) {
	f, err := filter.NewDC1("f", "v", 1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	sr := tuple.NewSeries(tuple.MustSchema("v"))
	res, err := Run([]filter.Filter{f}, sr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Inputs != 0 || res.Stats.DistinctOutputs != 0 || len(res.Transmissions) != 0 {
		t.Errorf("empty stream produced %+v", res.Stats)
	}
}

// TestSingleTupleStream: one tuple yields exactly one output to every
// filter (the first tuple is always a reference).
func TestSingleTupleStream(t *testing.T) {
	f1, _ := filter.NewDC1("a", "v", 1, 0.4)
	f2, _ := filter.NewDC1("b", "v", 5, 2)
	s := tuple.MustSchema("v")
	sr := tuple.NewSeries(s)
	if err := sr.Append(tuple.MustNew(s, 0, trace.Epoch, []float64{3})); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{RG, PS} {
		res, err := Run([]filter.Filter{f1, f2}, sr, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.DistinctOutputs != 1 {
			t.Errorf("%v: distinct = %d, want 1", alg, res.Stats.DistinctOutputs)
		}
		if res.Stats.PerFilter["a"] != 1 || res.Stats.PerFilter["b"] != 1 {
			t.Errorf("%v: per-filter = %v", alg, res.Stats.PerFilter)
		}
		f1.Reset()
		f2.Reset()
	}
}

// TestSingleFilterGroupMatchesBaselineCount: with one filter there is no
// sharing, so GA and SI output counts coincide exactly (GA may pick
// different tuples within slack, but one per reference).
func TestSingleFilterGroupMatchesBaselineCount(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1200, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() filter.Filter {
		f, _ := filter.NewDC1("solo", "tmpr4", 2*stat, stat)
		return f
	}
	ga, err := Run([]filter.Filter{mk()}, sr, Options{Algorithm: RG})
	if err != nil {
		t.Fatal(err)
	}
	si, err := RunSelfInterested([]filter.Filter{mk()}, sr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ga.Stats.DistinctOutputs != si.Stats.DistinctOutputs {
		t.Errorf("solo GA %d != SI %d", ga.Stats.DistinctOutputs, si.Stats.DistinctOutputs)
	}
}

// TestFinishReleasesBatchedTail: outputs stuck behind a batch boundary are
// flushed by Finish.
func TestFinishReleasesBatchedTail(t *testing.T) {
	f, _ := filter.NewDC1("f", "temperature", 50, 10)
	res, err := Run([]filter.Filter{f}, trace.PaperExample(),
		Options{Algorithm: RG, Strategy: Batched, BatchSize: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DistinctOutputs == 0 {
		t.Error("batched tail never released")
	}
	// Everything released at the last tuple's timestamp.
	last := trace.PaperExample().At(9).TS
	for _, tr := range res.Transmissions {
		if !tr.ReleasedAt.Equal(last) {
			t.Errorf("batched release at %v, want %v", tr.ReleasedAt, last)
		}
	}
}

// TestMulticastDelayAppliesUniformly: the constant shifts every latency
// sample.
func TestMulticastDelayAppliesUniformly(t *testing.T) {
	f, _ := filter.NewDC1("f", "temperature", 50, 10)
	base, err := Run([]filter.Filter{f}, trace.PaperExample(), Options{Algorithm: RG})
	if err != nil {
		t.Fatal(err)
	}
	const mc = 30 * time.Millisecond
	f2, _ := filter.NewDC1("f", "temperature", 50, 10)
	with, err := Run([]filter.Filter{f2}, trace.PaperExample(), Options{Algorithm: RG, MulticastDelay: mc})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Stats.Latencies) != len(with.Stats.Latencies) {
		t.Fatal("sample counts differ")
	}
	for i := range base.Stats.Latencies {
		if with.Stats.Latencies[i]-base.Stats.Latencies[i] != mc {
			t.Errorf("sample %d: %v vs %v, want +%v", i, with.Stats.Latencies[i], base.Stats.Latencies[i], mc)
		}
	}
}
