package core

import (
	"encoding/binary"
	"testing"

	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
	"gasf/internal/wire"
)

// wireFingerprint serializes a result's released sequence with the wire
// encoding so equivalence is byte-for-byte.
func wireFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf []byte
	for _, tr := range res.Transmissions {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(tr.ReleasedAt.UnixNano()))
		var err error
		buf, err = wire.AppendTransmission(buf, tr.Tuple, tr.Destinations)
		if err != nil {
			t.Fatalf("encoding transmission: %v", err)
		}
	}
	return buf
}

func dynGroup(t *testing.T) []filter.Filter {
	t.Helper()
	params := []struct {
		id           string
		delta, slack float64
	}{{"A", 0.30, 0.15}, {"B", 0.50, 0.25}, {"C", 0.20, 0.10}}
	out := make([]filter.Filter, len(params))
	for i, p := range params {
		f, err := filter.NewDC1(p.id, "fluoro", p.delta, p.slack)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = f
	}
	return out
}

func dynSeries(t *testing.T, n int) *tuple.Series {
	t.Helper()
	sr, err := trace.NAMOS(trace.Config{N: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestDynamicEngineEquivalence proves a churn-free dynamic engine (empty
// construction plus AddFilter before the first tuple) releases a byte-
// identical sequence to a statically constructed engine.
func TestDynamicEngineEquivalence(t *testing.T) {
	sr := dynSeries(t, 500)
	for _, alg := range []Algorithm{RG, PS} {
		opts := Options{Algorithm: alg}

		static, err := Run(dynGroup(t), sr, opts)
		if err != nil {
			t.Fatalf("%v static: %v", alg, err)
		}

		dyn, err := NewDynamicEngine(opts)
		if err != nil {
			t.Fatalf("%v dynamic: %v", alg, err)
		}
		for _, f := range dynGroup(t) {
			if err := dyn.AddFilter(f); err != nil {
				t.Fatalf("%v AddFilter: %v", alg, err)
			}
		}
		for i := 0; i < sr.Len(); i++ {
			if err := dyn.Step(sr.At(i)); err != nil {
				t.Fatalf("%v Step: %v", alg, err)
			}
		}
		if err := dyn.Finish(); err != nil {
			t.Fatalf("%v Finish: %v", alg, err)
		}

		a, b := wireFingerprint(t, static), wireFingerprint(t, dyn.Result())
		if string(a) != string(b) {
			t.Fatalf("%v: dynamic output differs from static (%d vs %d bytes)", alg, len(b), len(a))
		}
		if len(a) == 0 {
			t.Fatalf("%v: degenerate case, no transmissions released", alg)
		}
	}
}

// TestEmptyDynamicEngineConsumesSilently checks an engine with no members
// accepts tuples and releases nothing.
func TestEmptyDynamicEngineConsumesSilently(t *testing.T) {
	e, err := NewDynamicEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := dynSeries(t, 50)
	for i := 0; i < sr.Len(); i++ {
		if err := e.Step(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if n := len(e.Result().Transmissions); n != 0 {
		t.Fatalf("empty engine released %d transmissions", n)
	}
	if got := e.Result().Stats.Inputs; got != sr.Len() {
		t.Fatalf("inputs %d, want %d", got, sr.Len())
	}
}

// TestAddFilterMidStream verifies a late joiner only sees tuples fed after
// it joined, and that incumbents are undisturbed by the join: the
// incumbent's delivered tuple set must equal its deliveries in a solo run.
func TestAddFilterMidStream(t *testing.T) {
	sr := dynSeries(t, 400)
	opts := Options{Algorithm: RG}

	incumbent, err := filter.NewDC1("A", "fluoro", 0.30, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine([]filter.Filter{incumbent}, opts)
	if err != nil {
		t.Fatal(err)
	}
	joinAt := sr.Len() / 2
	for i := 0; i < sr.Len(); i++ {
		if i == joinAt {
			late, err := filter.NewDC1("B", "fluoro", 0.50, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.AddFilter(late); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Step(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}

	var firstB = -1
	for _, tr := range e.Result().Transmissions {
		for _, d := range tr.Destinations {
			if d == "B" && firstB < 0 {
				firstB = tr.Tuple.Seq
			}
		}
	}
	if firstB < joinAt {
		t.Fatalf("late joiner received tuple %d from before its join at %d", firstB, joinAt)
	}
	if firstB < 0 {
		t.Fatal("late joiner received nothing")
	}
}

// TestRemoveFilterMidStream verifies a leaver's open set is flushed and
// the rest of the group keeps streaming.
func TestRemoveFilterMidStream(t *testing.T) {
	sr := dynSeries(t, 400)
	e, err := NewEngine(dynGroup(t), Options{Algorithm: RG})
	if err != nil {
		t.Fatal(err)
	}
	leaveAt := sr.Len() / 2
	for i := 0; i < sr.Len(); i++ {
		if i == leaveAt {
			if err := e.RemoveFilter("B"); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Step(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	lastB, lastA := -1, -1
	for _, tr := range e.Result().Transmissions {
		for _, d := range tr.Destinations {
			switch d {
			case "B":
				if tr.Tuple.Seq > lastB {
					lastB = tr.Tuple.Seq
				}
			case "A":
				if tr.Tuple.Seq > lastA {
					lastA = tr.Tuple.Seq
				}
			}
		}
	}
	if lastB >= leaveAt {
		t.Fatalf("departed filter B was delivered tuple %d from after its leave at %d", lastB, leaveAt)
	}
	if lastA < leaveAt {
		t.Fatalf("incumbent A stalled after the leave (last delivery %d, leave at %d)", lastA, leaveAt)
	}
	if got, want := e.FilterIDs(), []string{"A", "C"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("FilterIDs = %v, want %v", got, want)
	}
}

// TestDynamicMembershipErrors covers the error surface.
func TestDynamicMembershipErrors(t *testing.T) {
	e, err := NewDynamicEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddFilter(nil); err == nil {
		t.Fatal("AddFilter(nil) succeeded")
	}
	f, err := filter.NewDC1("A", "fluoro", 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddFilter(f); err != nil {
		t.Fatal(err)
	}
	dup, err := filter.NewDC1("A", "fluoro", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddFilter(dup); err == nil {
		t.Fatal("duplicate AddFilter succeeded")
	}
	if err := e.RemoveFilter("nope"); err == nil {
		t.Fatal("RemoveFilter of unknown id succeeded")
	}
	if err := e.RemoveFilter("A"); err != nil {
		t.Fatal(err)
	}
	// A departed ID may rejoin.
	if err := e.AddFilter(dup); err != nil {
		t.Fatalf("rejoin after leave: %v", err)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFilter(f); err == nil {
		t.Fatal("AddFilter after Finish succeeded")
	}
	if err := e.RemoveFilter("A"); err == nil {
		t.Fatal("RemoveFilter after Finish succeeded")
	}
}
